package audit

import (
	"github.com/hetmem/hetmem/internal/sim"
)

// Counters is a cheap point-in-time view of the metrics counters, the
// feedback vector the adaptive layer samples at iteration barriers.
// Copying it is a handful of loads — no allocation, no invariant
// checking — so a controller can take one every iteration without
// paying the auditor's cost.
type Counters struct {
	Fetches         int64
	Evictions       int64
	BytesFetched    int64
	BytesEvicted    int64
	StageRetries    int64
	ForcedEvictions int64
	Refetches       int64
	HBMHighWater    int64
	ReservedPeak    int64
}

// PolicyCounters attributes eviction activity to the victim-selection
// policy that was active when it happened, so policy switches mid-run
// (the adaptive controller's victim-upgrade rule) keep a before/after
// split and fixed-policy runs get per-policy totals to compare.
type PolicyCounters struct {
	Evictions       int64 `json:"evictions"`
	ForcedEvictions int64 `json:"forced_evictions"`
	Refetches       int64 `json:"refetches"`
}

// Metrics is the counter half of the audit layer, split out of the
// invariant Auditor so runtime feedback (histograms, peaks, retry
// counts) can be collected without the shadow ledger and its
// conservation checks. Like the Auditor, a nil *Metrics is valid and
// every method on it is a no-op, so the hot paths in internal/core
// carry a single pointer check when metrics are off.
//
// The Auditor holds a *Metrics and fills snapshots from it; enabling
// audit therefore always enables metrics, but not vice versa.
type Metrics struct {
	eng *sim.Engine

	fetches         int64
	evictions       int64
	bytesFetched    int64
	bytesEvicted    int64
	stageRetries    int64
	forcedEvictions int64
	refetches       int64
	hbmHighWater    int64
	reservedPeak    int64
	queueDepthPeak  []int
	inflightPeak    []int
	fetchHist       Histogram
	evictHist       Histogram
	// policy attributes evictions to victim-selection policies. A run
	// uses a handful of policy names at most, and the active one
	// repeats for long stretches, so a first-use-order slice with a
	// last-hit memo beats a map lookup per eviction event.
	policy     []policyEntry
	lastPolicy int
	// edges attributes moved bytes to the directed tier edge they
	// crossed ("SRC->DST" by node name) — same first-use-order slice
	// scheme as policy: a chain of t tiers has at most 2(t-1) edges.
	edges    []edgeEntry
	lastEdge int
}

// policyEntry pairs a policy name with its counters in first-use order.
type policyEntry struct {
	name string
	pc   PolicyCounters
}

// edgeEntry pairs a directed tier edge with its byte count.
type edgeEntry struct {
	key   string
	bytes int64
}

// NewMetrics builds a metrics collector tracking queue-depth and
// inflight peaks for queues wait queues / PEs.
func NewMetrics(eng *sim.Engine, queues int) *Metrics {
	if queues < 0 {
		queues = 0
	}
	return &Metrics{
		eng:            eng,
		queueDepthPeak: make([]int, queues),
		inflightPeak:   make([]int, queues),
		fetchHist:      newDurationHist(),
		evictHist:      newDurationHist(),
	}
}

// FetchDone records a completed fetch of n bytes taking d virtual
// seconds.
func (m *Metrics) FetchDone(n int64, d sim.Time) {
	if m == nil {
		return
	}
	m.fetches++
	m.bytesFetched += n
	m.fetchHist.observe(d)
}

// EvictDone records a completed eviction of n bytes taking d virtual
// seconds; forced marks an eviction of a block a queued task still
// needed.
func (m *Metrics) EvictDone(n int64, d sim.Time, forced bool) {
	if m == nil {
		return
	}
	m.evictions++
	m.bytesEvicted += n
	if forced {
		m.forcedEvictions++
	}
	m.evictHist.observe(d)
}

// Refetch records a fetch of a block that had been resident before,
// attributed to the named eviction policy (the policy that bounced it).
func (m *Metrics) Refetch(policy string) {
	if m == nil {
		return
	}
	m.refetches++
	m.policyCounters(policy).Refetches++
}

// PolicyEvict attributes a completed eviction to the named
// victim-selection policy.
func (m *Metrics) PolicyEvict(policy string, forced bool) {
	if m == nil {
		return
	}
	pc := m.policyCounters(policy)
	pc.Evictions++
	if forced {
		pc.ForcedEvictions++
	}
}

func (m *Metrics) policyCounters(name string) *PolicyCounters {
	if m.lastPolicy < len(m.policy) && m.policy[m.lastPolicy].name == name {
		return &m.policy[m.lastPolicy].pc
	}
	for i := range m.policy {
		if m.policy[i].name == name {
			m.lastPolicy = i
			return &m.policy[i].pc
		}
	}
	m.policy = append(m.policy, policyEntry{name: name})
	m.lastPolicy = len(m.policy) - 1
	return &m.policy[m.lastPolicy].pc
}

// PolicyCountersFor returns the counters attributed to the named
// policy (zero counters when it never acted).
func (m *Metrics) PolicyCountersFor(name string) PolicyCounters {
	if m == nil {
		return PolicyCounters{}
	}
	for i := range m.policy {
		if m.policy[i].name == name {
			return m.policy[i].pc
		}
	}
	return PolicyCounters{}
}

// EdgeMove attributes n moved bytes to the directed tier edge from src
// to dst (memory node names). Each moved byte lands on exactly one
// edge, so the sums over edges into and out of the near tier equal
// BytesFetched and BytesEvicted; CheckQuiescent verifies that.
func (m *Metrics) EdgeMove(src, dst string, n int64) {
	if m == nil {
		return
	}
	key := src + "->" + dst
	if m.lastEdge < len(m.edges) && m.edges[m.lastEdge].key == key {
		m.edges[m.lastEdge].bytes += n
		return
	}
	for i := range m.edges {
		if m.edges[i].key == key {
			m.lastEdge = i
			m.edges[i].bytes += n
			return
		}
	}
	m.edges = append(m.edges, edgeEntry{key: key, bytes: n})
	m.lastEdge = len(m.edges) - 1
}

// EdgeBytes returns the byte count attributed to the src→dst edge.
func (m *Metrics) EdgeBytes(src, dst string) int64 {
	if m == nil {
		return 0
	}
	for i := range m.edges {
		if m.edges[i].key == src+"->"+dst {
			return m.edges[i].bytes
		}
	}
	return 0
}

// StageRetry records a staging attempt aborted for lack of capacity.
func (m *Metrics) StageRetry() {
	if m == nil {
		return
	}
	m.stageRetries++
}

// Pressure records a point-in-time reading of HBM usage and outstanding
// reservation, tracking the high-water marks. The owner calls it
// wherever either counter changes.
func (m *Metrics) Pressure(used, reserved int64) {
	if m == nil {
		return
	}
	if used > m.hbmHighWater {
		m.hbmHighWater = used
	}
	if reserved > m.reservedPeak {
		m.reservedPeak = reserved
	}
}

// QueueDepth records the depth of wait queue q after a push, tracking
// the high-water mark.
func (m *Metrics) QueueDepth(q, depth int) {
	if m == nil || q < 0 {
		return
	}
	for len(m.queueDepthPeak) <= q {
		m.queueDepthPeak = append(m.queueDepthPeak, 0)
	}
	if depth > m.queueDepthPeak[q] {
		m.queueDepthPeak[q] = depth
	}
}

// Inflight records PE pe's staged-but-uncompleted task count after a
// change, tracking the peak. The prefetch-depth bound itself is an
// invariant and lives on the Auditor (CheckInflight).
func (m *Metrics) Inflight(pe, depth int) {
	if m == nil || pe < 0 {
		return
	}
	for len(m.inflightPeak) <= pe {
		m.inflightPeak = append(m.inflightPeak, 0)
	}
	if depth > m.inflightPeak[pe] {
		m.inflightPeak[pe] = depth
	}
}

// Counters returns the cheap counter view.
func (m *Metrics) Counters() Counters {
	if m == nil {
		return Counters{}
	}
	return Counters{
		Fetches:         m.fetches,
		Evictions:       m.evictions,
		BytesFetched:    m.bytesFetched,
		BytesEvicted:    m.bytesEvicted,
		StageRetries:    m.stageRetries,
		ForcedEvictions: m.forcedEvictions,
		Refetches:       m.refetches,
		HBMHighWater:    m.hbmHighWater,
		ReservedPeak:    m.reservedPeak,
	}
}

// fill copies the metrics state into a snapshot.
func (m *Metrics) fill(s *Snapshot) {
	if m == nil {
		return
	}
	if m.eng != nil {
		s.Time = m.eng.Now()
	}
	s.HBMHighWater = m.hbmHighWater
	s.ReservedPeak = m.reservedPeak
	s.Fetches = m.fetches
	s.Evictions = m.evictions
	s.BytesFetched = m.bytesFetched
	s.BytesEvicted = m.bytesEvicted
	s.StageRetries = m.stageRetries
	s.ForcedEvictions = m.forcedEvictions
	s.Refetches = m.refetches
	if len(m.policy) > 0 {
		s.PolicyStats = make(map[string]PolicyCounters, len(m.policy))
		for i := range m.policy {
			s.PolicyStats[m.policy[i].name] = m.policy[i].pc
		}
	}
	if len(m.edges) > 0 {
		s.TierEdges = make(map[string]int64, len(m.edges))
		for i := range m.edges {
			s.TierEdges[m.edges[i].key] = m.edges[i].bytes
		}
	}
	s.QueueDepthPeak = append([]int(nil), m.queueDepthPeak...)
	s.InflightPeak = append([]int(nil), m.inflightPeak...)
	s.FetchHist = m.fetchHist.Clone()
	s.EvictHist = m.evictHist.Clone()
}

// Snapshot exports the metrics state alone (no audit fields). Owners
// with an Auditor use its Snapshot instead, which includes the same
// fields plus violations.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	m.fill(&s)
	return s
}
