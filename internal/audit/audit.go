// Package audit implements the opt-in invariant-audit and metrics layer
// for the staging protocol. It keeps a shadow ledger of every HBM
// reservation, pin, claim and pending-use the OOC layer reports, checks
// the conservation invariants continuously (reserved + resident never
// exceeds the HBM budget, the ledger never goes negative, the shadow
// reservation counter always matches the manager's), and exports
// structured metrics snapshots as JSON.
//
// The auditor is nil-safe: every recording method on a nil *Auditor is
// a no-op, so the hot paths in internal/core carry a single pointer
// check when auditing is disabled.
//
// The watchdog half lives in the caller: internal/core registers an
// engine quiesce hook that, when the event queue drains with staged
// work still parked in wait queues, files a StallReport here naming the
// stuck tasks and their blocking handles — turning a silent starvation
// hang into a diagnostic instead of a test timeout.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hetmem/hetmem/internal/sim"
)

// Probe is a point-in-time reading of the runtime counters under audit,
// supplied by the owner (the core.Manager) so the auditor can
// cross-check its shadow ledger against the real state.
type Probe struct {
	// HBMUsed is the bytes currently allocated on the HBM node.
	HBMUsed int64
	// Reserved is the manager's outstanding staging reservation.
	Reserved int64
}

// Config parameterises an Auditor.
type Config struct {
	// Budget is the HBM bytes available to data blocks (capacity minus
	// the reserve headroom).
	Budget int64
	// Queues is the number of wait queues / PEs to track depth peaks
	// for.
	Queues int
	// Probe reads the live counters; required for capacity checks.
	Probe func() Probe
	// Metrics is the counter collector snapshots are filled from. New
	// creates one when nil, so an auditor always has metrics behind it;
	// owners that share a collector with other consumers (the adaptive
	// controller) pass their own.
	Metrics *Metrics
	// MaxViolations caps the stored violation list (default 64); the
	// total count keeps incrementing past the cap.
	MaxViolations int
	// NearTier is the name of the near memory node (the tier every
	// fetch ends on and every evict leaves). When set, CheckQuiescent
	// cross-checks the per-edge byte attribution against the aggregate
	// fetch/evict totals: each moved byte must land on exactly one
	// edge, so a one-level demotion cannot also be counted against the
	// bottom tier.
	NearTier string
}

// Violation is one detected invariant breach, stamped with the virtual
// time at which it was observed.
type Violation struct {
	Time   float64 `json:"time_s"`
	Rule   string  `json:"rule"`
	Detail string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[t=%.6f] %s: %s", v.Time, v.Rule, v.Detail)
}

// Histogram is a fixed-bucket histogram of virtual-time durations in
// seconds. Counts has one entry per bound plus a final overflow bucket.
type Histogram struct {
	Bounds []float64 `json:"bounds_s"`
	Counts []int64   `json:"counts"`
	N      int64     `json:"n"`
	Sum    float64   `json:"sum_s"`
	Max    float64   `json:"max_s"`
}

// newDurationHist covers microseconds to hundreds of seconds, decade
// buckets — fetch/evict times span this range across scales.
func newDurationHist() Histogram {
	bounds := []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}
	return Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

func (h *Histogram) observe(d float64) {
	i := sort.SearchFloat64s(h.Bounds, d)
	h.Counts[i]++
	h.N++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
}

// Clone returns a deep copy. A plain struct copy shares the Bounds and
// Counts slice headers with the live histogram, so later observe()
// calls would mutate what the caller believes is a frozen snapshot.
func (h Histogram) Clone() Histogram {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

// StuckTask describes one task parked in a wait queue at quiescence.
type StuckTask struct {
	Task  string      `json:"task"`
	PE    int         `json:"pe"`
	Queue int         `json:"queue"`
	Deps  []BlockInfo `json:"deps"`
}

// BlockInfo is the audit view of a data block a stuck task is waiting
// on.
type BlockInfo struct {
	Name        string `json:"name"`
	Size        int64  `json:"size_bytes"`
	State       string `json:"state"`
	Refs        int    `json:"refs"`
	Claims      int    `json:"claims"`
	PendingUses int    `json:"pending_uses"`
}

// StallReport is the watchdog's diagnostic for a silent hang: the event
// queue drained while wait queues still held staged tasks.
type StallReport struct {
	Time         float64     `json:"time_s"`
	BlockedProcs []string    `json:"blocked_procs"`
	Stuck        []StuckTask `json:"stuck_tasks"`
	PEQueueMsgs  []int       `json:"pe_msg_queue_depths"`
	PEQueueRuns  []int       `json:"pe_run_queue_depths"`
	HBMUsed      int64       `json:"hbm_used_bytes"`
	Reserved     int64       `json:"reserved_bytes"`
	Budget       int64       `json:"budget_bytes"`
}

// String renders the report for error messages and logs.
func (r *StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall at t=%.6f: %d task(s) stuck, HBM used %d / budget %d, reserved %d\n",
		r.Time, len(r.Stuck), r.HBMUsed, r.Budget, r.Reserved)
	for _, st := range r.Stuck {
		fmt.Fprintf(&b, "  %s (PE %d, queue %d) waiting on:\n", st.Task, st.PE, st.Queue)
		for _, d := range st.Deps {
			fmt.Fprintf(&b, "    %s: %d bytes, %s, refs=%d claims=%d pendingUses=%d\n",
				d.Name, d.Size, d.State, d.Refs, d.Claims, d.PendingUses)
		}
	}
	fmt.Fprintf(&b, "  blocked procs: %s", strings.Join(r.BlockedProcs, ", "))
	return b.String()
}

// Snapshot is the exported metrics state, JSON-serialisable. The owner
// fills in the fields it knows (Mode, Label, task counts); the auditor
// fills in everything it tracked.
type Snapshot struct {
	Label           string  `json:"label,omitempty"`
	Mode            string  `json:"mode,omitempty"`
	Time            float64 `json:"virtual_time_s"`
	HBMBudget       int64   `json:"hbm_budget_bytes"`
	HBMHighWater    int64   `json:"hbm_high_water_bytes"`
	ReservedPeak    int64   `json:"reserved_peak_bytes"`
	Fetches         int64   `json:"fetches"`
	Evictions       int64   `json:"evictions"`
	BytesFetched    int64   `json:"bytes_fetched"`
	BytesEvicted    int64   `json:"bytes_evicted"`
	StageRetries    int64   `json:"stage_retries"`
	ForcedEvictions int64   `json:"forced_evictions"`
	Refetches       int64   `json:"refetches"`
	EvictPolicy     string  `json:"evict_policy,omitempty"`
	// PolicyStats splits eviction activity by the victim-selection
	// policy active when it happened. encoding/json renders map keys
	// sorted, so snapshots stay byte-deterministic.
	PolicyStats map[string]PolicyCounters `json:"evict_policy_stats,omitempty"`
	// TierEdges attributes moved bytes to the directed tier edge they
	// crossed, keyed "SRC->DST" by memory node name. Empty on runs
	// recorded before per-edge accounting (and in snapshots of
	// movement-free modes), keeping older fixtures byte-identical.
	TierEdges      map[string]int64 `json:"tier_edges,omitempty"`
	TasksStaged    int64            `json:"tasks_staged"`
	TasksInline    int64            `json:"tasks_inline"`
	QueueDepthPeak []int            `json:"queue_depth_peak"`
	InflightPeak   []int            `json:"inflight_peak"`
	FetchHist      Histogram        `json:"fetch_hist"`
	EvictHist      Histogram        `json:"evict_hist"`
	ViolationCount int64            `json:"violation_count"`
	Violations     []Violation      `json:"violations,omitempty"`
	Stall          *StallReport     `json:"stall,omitempty"`
}

// Auditor tracks the shadow ledger and the invariants for one manager.
// The cheap metrics counters live in the companion Metrics type (the
// adaptive layer samples those without the ledger); the auditor only
// reads them to fill snapshots. All methods are safe on a nil receiver
// (no-ops), so callers hold a plain possibly-nil pointer.
type Auditor struct {
	eng *sim.Engine
	cfg Config

	// Shadow ledger, maintained purely from reported events.
	reserved      int64 // mirror of the manager's reservation counter
	pins          int64 // outstanding pin balance across all handles
	claims        int64 // outstanding claim balance
	pendingUses   int64 // outstanding pending-use balance
	bytesReserved int64 // total bytes ever granted by reserveCapacity
	bytesConsumed int64 // reservation bytes converted into fetches
	bytesRefunded int64 // reservation bytes returned by aborts

	violationCount int64
	violations     []Violation
	stall          *StallReport
}

// New builds an auditor on eng. cfg.Probe may be nil, in which case the
// capacity cross-checks are skipped (ledger checks still run).
func New(eng *sim.Engine, cfg Config) *Auditor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	if cfg.Queues < 0 {
		cfg.Queues = 0
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(eng, cfg.Queues)
	}
	return &Auditor{eng: eng, cfg: cfg}
}

// Metrics returns the counter collector behind this auditor.
func (a *Auditor) Metrics() *Metrics {
	if a == nil {
		return nil
	}
	return a.cfg.Metrics
}

// now returns the current virtual time.
func (a *Auditor) now() float64 {
	if a.eng == nil {
		return 0
	}
	return a.eng.Now()
}

// Violate records an invariant breach.
func (a *Auditor) Violate(rule, format string, args ...interface{}) {
	if a == nil {
		return
	}
	a.violationCount++
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, Violation{
			Time:   a.now(),
			Rule:   rule,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// CheckNow runs the continuous invariants against the live probe:
// shadow/real reservation agreement, non-negative ledger balances, and
// reserved + resident within the HBM budget.
func (a *Auditor) CheckNow() {
	if a == nil {
		return
	}
	if a.pins < 0 {
		a.Violate("pin-balance", "pin balance went negative: %d", a.pins)
	}
	if a.claims < 0 {
		a.Violate("claim-balance", "claim balance went negative: %d", a.claims)
	}
	if a.pendingUses < 0 {
		a.Violate("pending-use-balance", "pending-use balance went negative: %d", a.pendingUses)
	}
	if a.cfg.Probe == nil {
		return
	}
	pr := a.cfg.Probe()
	if pr.Reserved != a.reserved {
		a.Violate("reservation-ledger", "manager reserved=%d but ledger says %d", pr.Reserved, a.reserved)
	}
	if pr.Reserved < 0 {
		a.Violate("reservation-negative", "reserved=%d", pr.Reserved)
	}
	if pr.HBMUsed+pr.Reserved > a.cfg.Budget {
		a.Violate("capacity", "used %d + reserved %d exceeds budget %d",
			pr.HBMUsed, pr.Reserved, a.cfg.Budget)
	}
}

// Reserve records a successful capacity reservation of n bytes.
func (a *Auditor) Reserve(n int64) {
	if a == nil {
		return
	}
	a.reserved += n
	a.bytesReserved += n
	a.CheckNow()
}

// ConsumeReservation records n reserved bytes converted into an HBM
// allocation by a fetch.
func (a *Auditor) ConsumeReservation(n int64) {
	if a == nil {
		return
	}
	a.reserved -= n
	a.bytesConsumed += n
	a.CheckNow()
}

// RefundReservation records n reserved bytes returned unused by an
// aborted staging attempt.
func (a *Auditor) RefundReservation(n int64) {
	if a == nil {
		return
	}
	a.reserved -= n
	a.bytesRefunded += n
	a.CheckNow()
}

// Pin adjusts the outstanding pin balance.
func (a *Auditor) Pin(delta int) {
	if a == nil {
		return
	}
	a.pins += int64(delta)
	if a.pins < 0 {
		a.Violate("pin-balance", "pin balance went negative: %d", a.pins)
	}
}

// Claim adjusts the outstanding claim balance.
func (a *Auditor) Claim(delta int) {
	if a == nil {
		return
	}
	a.claims += int64(delta)
	if a.claims < 0 {
		a.Violate("claim-balance", "claim balance went negative: %d", a.claims)
	}
}

// PendingUse adjusts the outstanding pending-use balance.
func (a *Auditor) PendingUse(delta int) {
	if a == nil {
		return
	}
	a.pendingUses += int64(delta)
	if a.pendingUses < 0 {
		a.Violate("pending-use-balance", "pending-use balance went negative: %d", a.pendingUses)
	}
}

// CheckInflight verifies PE pe's staged-but-uncompleted task count
// against the configured prefetch-depth limit (bound > 0), whose
// violation is the X6 invariant. Peak tracking lives on Metrics.
func (a *Auditor) CheckInflight(pe, depth, bound int) {
	if a == nil {
		return
	}
	if bound > 0 && depth > bound {
		a.Violate("prefetch-depth", "PE %d has %d tasks in flight, bound %d", pe, depth, bound)
	}
}

// Stall files the watchdog's diagnostic for a silent hang.
func (a *Auditor) Stall(r *StallReport) {
	if a == nil {
		return
	}
	a.stall = r
	a.Violate("starvation", "event queue drained with %d task(s) stuck in wait queues", len(r.Stuck))
}

// CheckQuiescent verifies the at-quiescence conservation laws: the
// reservation counter drained and every granted byte was consumed or
// refunded exactly once. Handle-level balances are verified by the
// owner, which can see the handles.
func (a *Auditor) CheckQuiescent() {
	if a == nil {
		return
	}
	a.CheckNow()
	if a.reserved != 0 {
		a.Violate("quiescence-reserved", "reservation counter %d at quiescence, want 0", a.reserved)
	}
	if a.bytesReserved != a.bytesConsumed+a.bytesRefunded {
		a.Violate("quiescence-ledger",
			"reserved %d bytes but consumed %d + refunded %d — a reservation leaked or double-spent",
			a.bytesReserved, a.bytesConsumed, a.bytesRefunded)
	}
	if a.pins != 0 {
		a.Violate("quiescence-pins", "pin balance %d at quiescence, want 0", a.pins)
	}
	if a.claims != 0 {
		a.Violate("quiescence-claims", "claim balance %d at quiescence, want 0", a.claims)
	}
	if a.pendingUses != 0 {
		a.Violate("quiescence-pending", "pending-use balance %d at quiescence, want 0", a.pendingUses)
	}
	a.checkEdgeConservation()
}

// checkEdgeConservation verifies the per-edge byte attribution against
// the aggregate counters: every fetched byte crossed exactly one edge
// into the near tier, every evicted byte exactly one edge out of it,
// and no edge bypasses the near tier (managed blocks only ever move to
// or from HBM). Before per-edge accounting, a one-level demotion would
// have been indistinguishable from a full drop to the bottom tier and
// the HBM↔far totals double-counted it; these sums pin the attribution
// down.
func (a *Auditor) checkEdgeConservation() {
	m := a.cfg.Metrics
	if a.cfg.NearTier == "" || m == nil {
		return
	}
	var in, out int64
	for i := range m.edges {
		key, n := m.edges[i].key, m.edges[i].bytes
		src, dst, ok := strings.Cut(key, "->")
		if !ok {
			a.Violate("edge-key", "malformed tier edge key %q", key)
			continue
		}
		switch a.cfg.NearTier {
		case dst:
			in += n
		case src:
			out += n
		default:
			a.Violate("edge-bypass", "tier edge %s (%d bytes) bypasses near tier %s", key, n, a.cfg.NearTier)
		}
	}
	if in != m.bytesFetched {
		a.Violate("edge-fetch-conservation",
			"edges into %s carry %d bytes but %d were fetched — bytes counted on no or multiple edges",
			a.cfg.NearTier, in, m.bytesFetched)
	}
	if out != m.bytesEvicted {
		a.Violate("edge-evict-conservation",
			"edges out of %s carry %d bytes but %d were evicted — bytes counted on no or multiple edges",
			a.cfg.NearTier, out, m.bytesEvicted)
	}
}

// Ok reports whether no violation has been detected.
func (a *Auditor) Ok() bool { return a == nil || a.violationCount == 0 }

// Violations returns the recorded violations (capped at
// Config.MaxViolations; ViolationCount in the snapshot has the total).
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	// Copy: the auditor keeps appending, and a shared backing array
	// would let a later violation overwrite the caller's view.
	return append([]Violation(nil), a.violations...)
}

// StallReport returns the watchdog diagnostic, or nil if no stall was
// detected.
func (a *Auditor) StallReport() *StallReport {
	if a == nil {
		return nil
	}
	return a.stall
}

// Err summarises the violations as a single error, or nil when clean.
func (a *Auditor) Err() error {
	if a.Ok() {
		return nil
	}
	first := a.violations[0]
	return fmt.Errorf("audit: %d invariant violation(s), first: %s", a.violationCount, first)
}

// Snapshot exports the audit state with the metrics counters filled in
// from the companion collector. The caller may fill Label, Mode and the
// task counters it owns.
func (a *Auditor) Snapshot() Snapshot {
	if a == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Time:           a.now(),
		HBMBudget:      a.cfg.Budget,
		ViolationCount: a.violationCount,
		Violations:     append([]Violation(nil), a.violations...),
		Stall:          a.stall,
	}
	a.cfg.Metrics.fill(&s)
	return s
}
