package audit

import "testing"

// TestNilMetricsIsSafe: every method on a nil *Metrics must be a no-op,
// mirroring the nil-auditor contract, so core and the adaptive layer
// hold a plain possibly-nil pointer.
func TestNilMetricsIsSafe(t *testing.T) {
	var m *Metrics
	m.FetchDone(1, 0.5)
	m.EvictDone(1, 0.5, true)
	m.StageRetry()
	m.Pressure(10, 20)
	m.QueueDepth(0, 3)
	m.Inflight(0, 3)
	if c := m.Counters(); c != (Counters{}) {
		t.Fatalf("nil metrics counters must be zero: %+v", c)
	}
	if s := m.Snapshot(); s.Fetches != 0 {
		t.Fatal("nil metrics snapshot must be zero")
	}
}

// TestMetricsCounters: the cheap counter view tracks every event and
// the pressure high-water marks.
func TestMetricsCounters(t *testing.T) {
	m := NewMetrics(nil, 2)
	m.FetchDone(100, 0.02)
	m.FetchDone(50, 0.01)
	m.EvictDone(100, 0.01, true)
	m.StageRetry()
	m.Pressure(80, 20)
	m.Pressure(40, 60)
	c := m.Counters()
	want := Counters{
		Fetches: 2, Evictions: 1,
		BytesFetched: 150, BytesEvicted: 100,
		StageRetries: 1, ForcedEvictions: 1,
		HBMHighWater: 80, ReservedPeak: 60,
	}
	if c != want {
		t.Fatalf("counters = %+v, want %+v", c, want)
	}
	if s := m.Snapshot(); s.FetchHist.N != 2 || s.EvictHist.N != 1 {
		t.Fatalf("histograms not filled: %+v", s)
	}
}

// TestAuditorSharesMetrics: an auditor built over an external collector
// reports that collector's counters in its snapshot (the adaptive
// controller and the auditor see one set of numbers).
func TestAuditorSharesMetrics(t *testing.T) {
	m := NewMetrics(nil, 1)
	a := New(nil, Config{Budget: 100, Metrics: m})
	if a.Metrics() != m {
		t.Fatal("auditor must expose the shared collector")
	}
	m.FetchDone(10, 0.1)
	if s := a.Snapshot(); s.Fetches != 1 || s.BytesFetched != 10 {
		t.Fatalf("snapshot missed shared counters: %+v", s)
	}
}
