package audit

import (
	"reflect"
	"testing"
)

// These are regression tests for the live-escape class: accessors that
// hand out snapshots must not share mutable backing storage with the
// collector, or a "frozen" view silently drifts as the run continues.

// TestSnapshotHistogramsIsolated pins the Histogram deep-copy in
// Metrics.fill: a plain struct copy shares the Counts slice header, so
// observations recorded after the snapshot would mutate it.
func TestSnapshotHistogramsIsolated(t *testing.T) {
	m := NewMetrics(nil, 1)
	m.FetchDone(64, 0.5)
	m.EvictDone(64, 0.25, false)

	s := m.Snapshot()
	fetchBefore := append([]int64(nil), s.FetchHist.Counts...)
	evictBefore := append([]int64(nil), s.EvictHist.Counts...)

	m.FetchDone(64, 0.5)
	m.EvictDone(64, 0.25, true)

	if !reflect.DeepEqual(s.FetchHist.Counts, fetchBefore) {
		t.Fatalf("snapshot FetchHist drifted after later observations: %v -> %v",
			fetchBefore, s.FetchHist.Counts)
	}
	if !reflect.DeepEqual(s.EvictHist.Counts, evictBefore) {
		t.Fatalf("snapshot EvictHist drifted after later observations: %v -> %v",
			evictBefore, s.EvictHist.Counts)
	}

	// The other direction: scribbling on the snapshot must not corrupt
	// the live collector.
	s.FetchHist.Counts[0] = 999
	if got := m.Snapshot().FetchHist.Counts[0]; got == 999 {
		t.Fatal("mutating a snapshot histogram reached the live collector")
	}
}

// TestViolationsReturnsCopy pins the Auditor.Violations copy: the
// returned slice must not alias the auditor's internal record.
func TestViolationsReturnsCopy(t *testing.T) {
	a := New(nil, Config{Budget: 1 << 20})
	a.Violate("test-rule", "first violation")

	vs := a.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	vs[0].Rule = "scribbled"

	if got := a.Violations()[0].Rule; got != "test-rule" {
		t.Fatalf("mutating the returned slice reached the auditor: rule = %q", got)
	}

	// Appending to the returned slice must not interleave with the
	// auditor's own appends.
	vs = append(vs, Violation{Rule: "caller-local"})
	a.Violate("test-rule-2", "second violation")
	if got := a.Violations()[1].Rule; got != "test-rule-2" {
		t.Fatalf("auditor record corrupted by caller append: rule = %q", got)
	}
}
