package audit

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNilAuditorIsSafe: every method on a nil *Auditor must be a no-op,
// since core holds one possibly-nil pointer and calls through it on the
// hot paths.
func TestNilAuditorIsSafe(t *testing.T) {
	var a *Auditor
	a.Violate("x", "y")
	a.CheckNow()
	a.Reserve(1)
	a.ConsumeReservation(1)
	a.RefundReservation(1)
	a.Pin(1)
	a.Claim(-1)
	a.PendingUse(1)
	a.CheckInflight(0, 3, 2)
	a.Stall(&StallReport{})
	a.CheckQuiescent()
	if a.Metrics() != nil {
		t.Fatal("nil auditor must have nil metrics")
	}
	if !a.Ok() {
		t.Fatal("nil auditor must be Ok")
	}
	if a.Err() != nil {
		t.Fatal("nil auditor must have nil Err")
	}
	if a.Violations() != nil || a.StallReport() != nil {
		t.Fatal("nil auditor must return nil slices")
	}
	if s := a.Snapshot(); s.ViolationCount != 0 {
		t.Fatal("nil auditor snapshot must be zero")
	}
}

// TestHistogramBuckets checks decade bucketing including the underflow
// and overflow edges.
func TestHistogramBuckets(t *testing.T) {
	h := newDurationHist()
	cases := []struct {
		d    float64
		want int // bucket index
	}{
		{1e-6, 0},             // below the first bound
		{1e-5, 0},             // exactly on a bound lands in its bucket
		{5e-4, 2},             // between 1e-4 and 1e-3
		{0.5, 5},              // between 0.1 and 1: bucket bounded above by 1
		{1000, len(h.Bounds)}, // overflow bucket
	}
	for _, c := range cases {
		h.observe(c.d)
		if h.Counts[c.want] == 0 {
			t.Fatalf("d=%g did not land in bucket %d: %v", c.d, c.want, h.Counts)
		}
		h.Counts[c.want] = 0
	}
	if h.N != int64(len(cases)) {
		t.Fatalf("N=%d want %d", h.N, len(cases))
	}
	if h.Max != 1000 {
		t.Fatalf("Max=%g want 1000", h.Max)
	}
}

// TestLedgerViolations drives the shadow ledger into each violation via
// a fake probe.
func TestLedgerViolations(t *testing.T) {
	var pr Probe
	a := New(nil, Config{Budget: 100, Queues: 2, Probe: func() Probe { return pr }})

	// Clean path: reserve 60, consume 60, probe agrees throughout.
	pr = Probe{HBMUsed: 0, Reserved: 60}
	a.Reserve(60)
	pr = Probe{HBMUsed: 60, Reserved: 0}
	a.ConsumeReservation(60)
	a.CheckQuiescent() // reserved 0, bytes balance — but pins etc are 0 too
	if !a.Ok() {
		t.Fatalf("clean sequence flagged: %v", a.Err())
	}
	// Peaks come from the companion metrics collector (the owner calls
	// Pressure wherever the counters move) and flow into the snapshot.
	a.Metrics().Pressure(0, 60)
	a.Metrics().Pressure(60, 0)
	if s := a.Snapshot(); s.HBMHighWater != 60 || s.ReservedPeak != 60 {
		t.Fatalf("peaks not tracked: %+v", s)
	}

	// Capacity breach: used + reserved > budget.
	pr = Probe{HBMUsed: 80, Reserved: 30}
	a.Reserve(30)
	if a.Ok() {
		t.Fatal("capacity breach not flagged")
	}
	if a.Violations()[0].Rule != "capacity" {
		t.Fatalf("rule = %q", a.Violations()[0].Rule)
	}
}

// TestLedgerMismatch: the probe disagreeing with the shadow counter is
// the signature of a double-spend or leak.
func TestLedgerMismatch(t *testing.T) {
	a := New(nil, Config{Budget: 100, Probe: func() Probe { return Probe{Reserved: 7} }})
	a.CheckNow()
	if a.Ok() {
		t.Fatal("ledger mismatch not flagged")
	}
	if a.Violations()[0].Rule != "reservation-ledger" {
		t.Fatalf("rule = %q", a.Violations()[0].Rule)
	}
}

// TestQuiescenceChecks seeds each conservation law separately.
func TestQuiescenceChecks(t *testing.T) {
	cases := []struct {
		name string
		prep func(a *Auditor)
		rule string
	}{
		{"leaked reservation", func(a *Auditor) { a.Reserve(5) }, "quiescence-reserved"},
		{"double refund", func(a *Auditor) {
			a.Reserve(5)
			a.ConsumeReservation(5)
			a.RefundReservation(0)
			a.bytesRefunded += 5
			a.reserved = 0
		}, "quiescence-ledger"},
		{"pin leak", func(a *Auditor) { a.Pin(2) }, "quiescence-pins"},
		{"claim leak", func(a *Auditor) { a.Claim(1) }, "quiescence-claims"},
		{"pending-use leak", func(a *Auditor) { a.PendingUse(3) }, "quiescence-pending"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := New(nil, Config{Budget: 100})
			c.prep(a)
			a.CheckQuiescent()
			var found bool
			for _, v := range a.Violations() {
				if v.Rule == c.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("rule %q not raised; got %v", c.rule, a.Violations())
			}
		})
	}
}

// TestNegativeBalances: decrementing past zero fires immediately, not
// just at quiescence.
func TestNegativeBalances(t *testing.T) {
	a := New(nil, Config{})
	a.Pin(-1)
	a.Claim(-1)
	a.PendingUse(-1)
	if a.Snapshot().ViolationCount != 3 {
		t.Fatalf("want 3 violations, got %v", a.Violations())
	}
}

// TestViolationCap: the stored list is bounded but the count is not.
func TestViolationCap(t *testing.T) {
	a := New(nil, Config{MaxViolations: 3})
	for i := 0; i < 10; i++ {
		a.Violate("test", "violation %d", i)
	}
	if len(a.Violations()) != 3 {
		t.Fatalf("stored %d, want 3", len(a.Violations()))
	}
	if a.Snapshot().ViolationCount != 10 {
		t.Fatalf("counted %d, want 10", a.Snapshot().ViolationCount)
	}
}

// TestInflightBound: exceeding a positive bound is a violation; bound 0
// means unlimited.
func TestInflightBound(t *testing.T) {
	a := New(nil, Config{Queues: 2})
	m := a.Metrics()
	m.Inflight(0, 2)
	a.CheckInflight(0, 2, 2)
	m.Inflight(1, 50)
	a.CheckInflight(1, 50, 0) // unlimited
	if !a.Ok() {
		t.Fatalf("within-bound flagged: %v", a.Err())
	}
	m.Inflight(0, 3)
	a.CheckInflight(0, 3, 2)
	if a.Ok() {
		t.Fatal("over-bound not flagged")
	}
	s := a.Snapshot()
	if s.InflightPeak[0] != 3 || s.InflightPeak[1] != 50 {
		t.Fatalf("peaks %v", s.InflightPeak)
	}
}

// TestQueueDepthGrows: recording a queue index beyond the configured
// count grows the peak slice instead of panicking.
func TestQueueDepthGrows(t *testing.T) {
	m := NewMetrics(nil, 1)
	m.QueueDepth(4, 7)
	m.QueueDepth(4, 3) // lower depth must not shrink the peak
	s := m.Snapshot()
	if len(s.QueueDepthPeak) != 5 || s.QueueDepthPeak[4] != 7 {
		t.Fatalf("peaks %v", s.QueueDepthPeak)
	}
}

// TestStallReportString: the rendered diagnostic names tasks, handles
// and the capacity picture.
func TestStallReportString(t *testing.T) {
	a := New(nil, Config{})
	r := &StallReport{
		Time:         12.5,
		BlockedProcs: []string{"IO-0"},
		Stuck: []StuckTask{{
			Task: "kern[3]", PE: 1, Queue: 1,
			Deps: []BlockInfo{{Name: "blkA", Size: 1 << 30, State: "in-ddr", Refs: 0, Claims: 1}},
		}},
		HBMUsed: 900, Reserved: 100, Budget: 1000,
	}
	a.Stall(r)
	if a.Ok() {
		t.Fatal("stall must be a violation")
	}
	out := a.StallReport().String()
	for _, want := range []string{"kern[3]", "blkA", "IO-0", "budget 1000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if snap := a.Snapshot(); snap.Stall == nil {
		t.Fatal("snapshot must carry the stall report")
	}
}

// TestSnapshotJSONRoundTrip: the snapshot survives marshal/unmarshal
// with every field intact.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	a := New(nil, Config{Budget: 1 << 30, Queues: 2})
	a.Reserve(100)
	a.ConsumeReservation(100)
	a.Metrics().FetchDone(100, 0.02)
	a.Metrics().EvictDone(100, 0.01, true)
	a.Metrics().StageRetry()
	a.Metrics().QueueDepth(1, 4)
	s := a.Snapshot()
	s.Label = "unit"
	s.Mode = "multi-io"

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label != "unit" || back.Mode != "multi-io" ||
		back.Fetches != 1 || back.Evictions != 1 ||
		back.ForcedEvictions != 1 || back.StageRetries != 1 ||
		back.FetchHist.N != 1 || back.QueueDepthPeak[1] != 4 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
