package cachemode

import (
	"testing"
	"testing/quick"

	"github.com/hetmem/hetmem/internal/topology"
)

// TestQuickHitRateBounds: for any working set, the hit rate is in
// [0,1], and it never increases when the working set grows.
func TestQuickHitRateBounds(t *testing.T) {
	c := DefaultConfig()
	check := func(rawA, rawB uint32) bool {
		a := int64(rawA)%(128<<10) + 1 // up to ~128K "MB units"
		b := int64(rawB)%(128<<10) + 1
		wA := a * (1 << 20)
		wB := b * (1 << 20)
		hA, hB := c.HitRate(wA), c.HitRate(wB)
		if hA < 0 || hA > 1 || hB < 0 || hB > 1 {
			return false
		}
		if wA <= wB {
			return hA >= hB
		}
		return hB >= hA
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEffectiveBandwidthBounds: effective cache-mode bandwidth is
// positive, never exceeds the MCDRAM bus, and never drops below what
// an all-miss stream through the DDR bus would achieve.
func TestQuickEffectiveBandwidthBounds(t *testing.T) {
	c := DefaultConfig()
	spec := topology.KNL7250()
	f := 0.93 // all-to-all factor
	hbm := spec.HBMTotalBW * f
	ddr := spec.DDRTotalBW * f
	check := func(raw uint32) bool {
		w := (int64(raw)%(256<<10) + 1) * (1 << 20)
		bw := c.EffectiveBandwidth(spec, w)
		if bw <= 0 || bw > hbm*(1+1e-9) {
			return false
		}
		// All-miss floor: every byte at least crosses the DDR bus.
		return bw >= ddr*(1-1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
