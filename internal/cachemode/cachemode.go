// Package cachemode models KNL's cache memory mode, where MCDRAM acts
// as a direct-mapped cache in front of DDR4. The paper defers a
// quantitative comparison with cache mode to future work but argues
// qualitatively that "caching could result in increased latency from
// conflict misses or capacity misses"; this package provides that
// comparison (experiment X1) with an analytic hit-rate model validated
// against the known behaviour of KNL cache mode:
//
//   - working sets under 16 GB still suffer some conflict misses,
//     because the direct-mapped cache indexes physical addresses and
//     the OS page allocator scatters pages (Intel measured a few
//     percent loss vs flat mode);
//   - once the working set exceeds MCDRAM, streaming reuse collapses
//     and performance falls towards DDR4 speed, with misses paying for
//     both the DDR4 access and the MCDRAM fill.
package cachemode

import (
	"fmt"
	"math"

	"github.com/hetmem/hetmem/internal/topology"
)

// Config parameterises the direct-mapped cache model.
type Config struct {
	// CacheBytes is the MCDRAM capacity used as cache.
	CacheBytes int64
	// ConflictAlpha is the fractional hit-rate loss from conflict
	// misses when the working set just fits (physical-address
	// direct mapping with scattered pages).
	ConflictAlpha float64
	// ReuseBeta is the fraction of ideal C/W reuse a tiled access
	// pattern still captures once the working set exceeds the cache.
	ReuseBeta float64
	// MissFillFactor is the extra MCDRAM-write traffic per miss byte
	// (every miss fills a cache line).
	MissFillFactor float64
}

// DefaultConfig returns the model calibrated for a 16 GB MCDRAM cache.
func DefaultConfig() Config {
	return Config{
		CacheBytes:     16 * topology.GB,
		ConflictAlpha:  0.08,
		ReuseBeta:      0.80,
		MissFillFactor: 1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.CacheBytes <= 0:
		return fmt.Errorf("cachemode: non-positive cache size")
	case c.ConflictAlpha < 0 || c.ConflictAlpha >= 1:
		return fmt.Errorf("cachemode: ConflictAlpha %v outside [0,1)", c.ConflictAlpha)
	case c.ReuseBeta < 0 || c.ReuseBeta > 1:
		return fmt.Errorf("cachemode: ReuseBeta %v outside [0,1]", c.ReuseBeta)
	case c.MissFillFactor < 0:
		return fmt.Errorf("cachemode: negative MissFillFactor")
	}
	return nil
}

// HitRate estimates the cache hit rate for a streaming workload with
// working set w bytes.
//
//	w <= C : 1 - alpha*(w/C)      (conflict misses grow with occupancy)
//	w >  C : beta * (C/w)         (capacity-dominated reuse)
//
// The two branches meet near w = C at 1-alpha vs beta; with the default
// calibration the transition is a drop — exactly the cliff KNL cache
// mode shows when a working set stops fitting.
func (c Config) HitRate(w int64) float64 {
	if w <= 0 {
		return 1
	}
	cf := float64(c.CacheBytes)
	wf := float64(w)
	if wf <= cf {
		return 1 - c.ConflictAlpha*(wf/cf)
	}
	return c.ReuseBeta * (cf / wf)
}

// EffectiveBandwidth estimates the aggregate streaming bandwidth (in
// bytes/second) the machine sustains in cache mode for a working set of
// w bytes. Hits stream at MCDRAM bus speed; misses pay the DDR4 bus
// AND the MCDRAM line fill, so the MCDRAM bus carries (h + fill*(1-h))
// of the traffic while the DDR4 bus carries (1-h).
func (c Config) EffectiveBandwidth(spec topology.MachineSpec, w int64) float64 {
	f := 1.0
	switch spec.ClusterMode {
	case topology.AllToAll:
		f = 0.93
	case topology.SNC4:
		f = 1.02
	}
	hbm := spec.HBMTotalBW * f
	ddr := spec.DDRTotalBW * f
	h := c.HitRate(w)
	// Per byte of application demand: (h + fill*(1-h))/hbm seconds of
	// MCDRAM bus time and (1-h)/ddr seconds of DDR bus time. The buses
	// operate concurrently, so the slower one limits throughput.
	hbmTime := (h + c.MissFillFactor*(1-h)) / hbm
	ddrTime := (1 - h) / ddr
	return 1 / math.Max(hbmTime, ddrTime)
}

// StreamTime returns the time to stream bytes of application traffic
// with working set w in cache mode.
func (c Config) StreamTime(spec topology.MachineSpec, w int64, bytes float64) float64 {
	return bytes / c.EffectiveBandwidth(spec, w)
}
