package cachemode

import (
	"testing"

	"github.com/hetmem/hetmem/internal/topology"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{CacheBytes: 0},
		{CacheBytes: 1, ConflictAlpha: -0.1},
		{CacheBytes: 1, ConflictAlpha: 1.0},
		{CacheBytes: 1, ReuseBeta: 1.5},
		{CacheBytes: 1, MissFillFactor: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHitRateRegimes(t *testing.T) {
	c := DefaultConfig()
	if h := c.HitRate(0); h != 1 {
		t.Fatalf("empty working set hit rate %v", h)
	}
	// Small working set: high hit rate but not perfect (conflicts).
	small := c.HitRate(4 * topology.GB)
	if small >= 1 || small < 0.95 {
		t.Fatalf("4GB hit rate %v, want high but < 1", small)
	}
	// Just fitting: 1 - alpha.
	fit := c.HitRate(16 * topology.GB)
	if fit < 0.91 || fit > 0.93 {
		t.Fatalf("16GB hit rate %v, want 0.92", fit)
	}
	// 2x over capacity: beta/2.
	over := c.HitRate(32 * topology.GB)
	if over < 0.39 || over > 0.41 {
		t.Fatalf("32GB hit rate %v, want 0.40", over)
	}
	// Monotone decrease.
	prev := 1.1
	for _, w := range []int64{1, 8, 15, 16, 17, 32, 64, 96} {
		h := c.HitRate(w * topology.GB)
		if h > prev {
			t.Fatalf("hit rate not monotone at %dGB: %v > %v", w, h, prev)
		}
		prev = h
	}
}

func TestEffectiveBandwidthCliff(t *testing.T) {
	c := DefaultConfig()
	spec := topology.KNL7250()
	fits := c.EffectiveBandwidth(spec, 8*topology.GB)
	over := c.EffectiveBandwidth(spec, 32*topology.GB)
	way := c.EffectiveBandwidth(spec, 96*topology.GB)
	if fits <= over || over <= way {
		t.Fatalf("bandwidth not decreasing: %v, %v, %v", fits, over, way)
	}
	// Fitting working set: near MCDRAM speed (>300 GB/s effective).
	if fits < 300*topology.GBf {
		t.Fatalf("fitting working set only %v GB/s", fits/topology.GBf)
	}
	// Far over capacity: approaching DDR-limited behaviour; misses pay
	// the DDR bus, so effective bandwidth is within ~2x of DDR.
	ddr := spec.DDRTotalBW * 0.93
	if way > 1.6*ddr {
		t.Fatalf("96GB working set bandwidth %v GB/s, want near DDR %v", way/topology.GBf, ddr/topology.GBf)
	}
}

func TestCacheModeVsFlatModeTradeoff(t *testing.T) {
	// The shape the paper predicts: when the working set fits, cache
	// mode is close to flat-mode HBM; when it does not, cache mode
	// collapses much further than 1 - overflow fraction.
	c := DefaultConfig()
	spec := topology.KNL7250()
	hbmBW := spec.HBMTotalBW * 0.93
	fits := c.EffectiveBandwidth(spec, 12*topology.GB)
	if fits < 0.7*hbmBW {
		t.Fatalf("fitting cache-mode bandwidth %.0f GB/s too far below flat HBM %.0f",
			fits/topology.GBf, hbmBW/topology.GBf)
	}
	over := c.EffectiveBandwidth(spec, 32*topology.GB)
	if over > 0.5*hbmBW {
		t.Fatalf("2x-oversubscribed cache mode at %.0f GB/s suspiciously close to flat HBM", over/topology.GBf)
	}
}

func TestStreamTime(t *testing.T) {
	c := DefaultConfig()
	spec := topology.KNL7250()
	bw := c.EffectiveBandwidth(spec, 8*topology.GB)
	if got := c.StreamTime(spec, 8*topology.GB, bw); got < 0.999 || got > 1.001 {
		t.Fatalf("StreamTime inverse of bandwidth broken: %v", got)
	}
}

func TestClusterModeAffectsBandwidth(t *testing.T) {
	c := DefaultConfig()
	a2a := topology.KNL7250()
	quad := a2a
	quad.ClusterMode = topology.Quadrant
	if c.EffectiveBandwidth(a2a, 8*topology.GB) >= c.EffectiveBandwidth(quad, 8*topology.GB) {
		t.Fatal("all-to-all should be slower than quadrant")
	}
}
