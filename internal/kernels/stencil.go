// Package kernels implements the paper's two evaluation applications as
// chare programs on the runtime: Stencil3D (a 7-point 3-D stencil with
// ghost exchange, the kernel of MIMD-lattice-style codes) and blocked
// dense matrix multiplication with read-only block sharing through a
// nodegroup. Both declare their blocks through the OOC manager and mark
// their compute kernels [prefetch], exactly as the paper's .ci excerpt
// shows:
//
//	entry [prefetch] void compute_kernel() [readwrite:A, writeonly:B]
package kernels

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
)

// StencilConfig sizes a Stencil3D run.
type StencilConfig struct {
	// TotalBytes is the full grid working set (both copies of the
	// grid). The paper uses 32 GB.
	TotalBytes int64
	// ReducedBytes is the over-decomposed working set: the bytes the
	// concurrently-executing wave of chares needs resident (the paper
	// varies 2-8 GB). Per-chare block size is ReducedBytes/NumPEs.
	ReducedBytes int64
	// Iterations is the number of outer iterations (communication
	// rounds) the benchmark runs and reports times for.
	Iterations int
	// Sweeps is the temporal-tiling depth: how many times one
	// compute_kernel invocation sweeps its resident blocks. The paper
	// performs "20 iterations to mimic tiling patterns that increase
	// computation to reduce the overhead incurred by data
	// communication" — this reuse while resident is what lets
	// prefetching pay for its migration traffic.
	Sweeps int
	// NumPEs is the worker count (paper: 64).
	NumPEs int
	// FlopsPerByte is the arithmetic intensity of the update loop
	// (7-point stencil: ~1 flop per byte streamed).
	FlopsPerByte float64
	// GhostFraction is the ghost-face volume relative to a block
	// (communication payload per neighbour exchange).
	GhostFraction float64

	// Weight, if non-nil, scales chare i's arithmetic work (an
	// imbalanced physics load, e.g. AMR hot spots). Uniform when nil.
	Weight func(i int) float64
	// BlockMapping places contiguous chare ranges on each PE instead
	// of round-robin — with a skewed Weight this concentrates heavy
	// chares on few PEs, the configuration the load balancer fixes.
	BlockMapping bool
	// LoadBalance runs a greedy measurement-based rebalance after the
	// first iteration (experiment X7).
	LoadBalance bool
}

// DefaultStencilConfig returns the paper's headline configuration:
// 32 GB total, 4 GB reduced working set, 20 iterations, 64 PEs.
func DefaultStencilConfig() StencilConfig {
	return StencilConfig{
		TotalBytes:    32 * (1 << 30),
		ReducedBytes:  4 * (1 << 30),
		Iterations:    4,
		Sweeps:        20,
		NumPEs:        64,
		FlopsPerByte:  1.0,
		GhostFraction: 0.05,
	}
}

// Validate reports configuration errors.
func (c StencilConfig) Validate() error {
	switch {
	case c.TotalBytes <= 0 || c.ReducedBytes <= 0:
		return fmt.Errorf("kernels: stencil needs positive working set sizes")
	case c.ReducedBytes > c.TotalBytes:
		return fmt.Errorf("kernels: reduced WS %d exceeds total %d", c.ReducedBytes, c.TotalBytes)
	case c.Iterations <= 0:
		return fmt.Errorf("kernels: stencil needs iterations")
	case c.Sweeps <= 0:
		return fmt.Errorf("kernels: stencil needs a positive tiling depth (Sweeps)")
	case c.NumPEs <= 0:
		return fmt.Errorf("kernels: stencil needs PEs")
	case c.ReducedBytes%int64(c.NumPEs) != 0:
		return fmt.Errorf("kernels: reduced WS %d not divisible by %d PEs", c.ReducedBytes, c.NumPEs)
	}
	return nil
}

// ChareBytes returns the per-chare block footprint (A plus B copy).
func (c StencilConfig) ChareBytes() int64 { return c.ReducedBytes / int64(c.NumPEs) }

// NumChares returns the over-decomposition width.
func (c StencilConfig) NumChares() int {
	n := int(c.TotalBytes / c.ChareBytes())
	if n < 1 {
		n = 1
	}
	return n
}

// stencilChare holds one chare's two grid copies and its ghost
// bookkeeping.
type stencilChare struct {
	a, b        *core.Handle // current and next grid copy
	ghostsSeen  int
	ghostsWant  int
	neighbours  []int
	ghostBuffer float64 // bytes received this iteration (diagnostics)
}

// StencilApp is an instantiated Stencil3D benchmark.
type StencilApp struct {
	Cfg StencilConfig
	mg  *core.Manager
	arr *charm.Array

	exchange *charm.Entry
	compute  *charm.Entry

	red  *charm.Reduction
	done bool

	// IterEnd records the completion time of each iteration.
	IterEnd []sim.Time
	// Migrations counts chares moved by the load balancer.
	Migrations int
	started    sim.Time

	// OnIteration, when non-nil, is invoked at each iteration
	// boundary instead of immediately starting the next iteration;
	// the application continues when resume is called. The cluster
	// layer uses this hook to exchange inter-node halos between
	// iterations.
	OnIteration func(iter int, resume func())
}

// NewStencil builds the application on an existing runtime+manager.
// The manager's mode decides placement and movement.
func NewStencil(mg *core.Manager, cfg StencilConfig) (*StencilApp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := mg.Runtime()
	if rt.NumPEs() != cfg.NumPEs {
		return nil, fmt.Errorf("kernels: runtime has %d PEs, config wants %d", rt.NumPEs(), cfg.NumPEs)
	}
	app := &StencilApp{Cfg: cfg, mg: mg}
	n := cfg.NumChares()
	half := cfg.ChareBytes() / 2

	var mapFn func(i int) int
	if cfg.BlockMapping {
		mapFn = charm.MapBlock(n, cfg.NumPEs)
	}
	app.arr = rt.NewArray("stencil3d", n, func(i int) charm.Chare {
		ch := &stencilChare{
			a: mg.NewHandle(fmt.Sprintf("st.A[%d]", i), half),
			b: mg.NewHandle(fmt.Sprintf("st.B[%d]", i), half),
		}
		// 6 neighbours on a 1-D embedding of the 3-D chare grid
		// (±1, ±stride, ±stride²); clipped at the boundary.
		stride := cubeSide(n)
		for _, d := range []int{1, -1, stride, -stride, stride * stride, -stride * stride} {
			if j := i + d; j >= 0 && j < n && j != i {
				ch.neighbours = append(ch.neighbours, j)
			}
		}
		return ch
	}, mapFn)

	// Ghost counting: each chare receives one message per neighbour
	// that lists it (boundaries make this asymmetric, so compute the
	// expected counts exactly).
	incoming := make([]int, n)
	for i := 0; i < n; i++ {
		for _, j := range app.arr.Elem(i).Obj.(*stencilChare).neighbours {
			incoming[j]++
		}
	}
	for i := 0; i < n; i++ {
		app.arr.Elem(i).Obj.(*stencilChare).ghostsWant = incoming[i]
	}

	app.compute = app.arr.Register(charm.Entry{
		Name:     "compute_kernel",
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			ch := el.Obj.(*stencilChare)
			return []charm.DataDep{
				{Handle: ch.a, Mode: charm.ReadWrite},
				{Handle: ch.b, Mode: charm.WriteOnly},
			}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			ch := el.Obj.(*stencilChare)
			deps := []charm.DataDep{
				{Handle: ch.a, Mode: charm.ReadWrite},
				{Handle: ch.b, Mode: charm.WriteOnly},
			}
			// Per sweep the kernel streams A (read+write) and B
			// (write): 3 block-sizes of traffic, repeated Sweeps
			// times over the resident blocks (temporal tiling).
			bytesPerSweep := float64(ch.a.Size()) * 3
			w := 1.0
			if cfg.Weight != nil {
				w = cfg.Weight(el.Index)
			}
			mg.RunKernel(p, deps, core.KernelSpec{
				Flops:        w * bytesPerSweep * float64(cfg.Sweeps) * cfg.FlopsPerByte,
				TrafficScale: float64(cfg.Sweeps),
			})
			app.red.Contribute()
		},
	})

	app.exchange = app.arr.Register(charm.Entry{
		Name: "recv_ghost",
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			ch := el.Obj.(*stencilChare)
			ch.ghostsSeen++
			ch.ghostBuffer += msg.Data.(float64)
			if ch.ghostsSeen == ch.ghostsWant {
				// "update all grid elements with received data":
				// all ghosts in, schedule the bandwidth-sensitive
				// kernel.
				ch.ghostsSeen = 0
				app.arr.Send(el.Index, el.Index, app.compute, nil)
			}
		},
	})

	app.red = rt.NewReduction(n, func() {
		app.IterEnd = append(app.IterEnd, rt.Engine().Now())
		if cfg.LoadBalance && len(app.IterEnd) == 1 {
			// Measurement-based rebalancing at the first iteration
			// boundary, the quiescent point chare migration requires.
			app.Migrations = charm.GreedyRebalance(app.arr, cfg.NumPEs)
		}
		if len(app.IterEnd) < cfg.Iterations {
			if app.OnIteration != nil {
				app.OnIteration(len(app.IterEnd), app.sendGhosts)
			} else {
				app.sendGhosts()
			}
		} else {
			app.done = true
		}
	})
	return app, nil
}

// cubeSide returns the side of the smallest cube holding n chares.
func cubeSide(n int) int {
	s := 1
	for s*s*s < n {
		s++
	}
	return s
}

// sendGhosts starts one iteration: every chare sends its faces to its
// neighbours ("send updated data to neighbors").
func (app *StencilApp) sendGhosts() {
	ghost := float64(app.Cfg.ChareBytes()/2) * app.Cfg.GhostFraction
	for i := 0; i < app.arr.Len(); i++ {
		ch := app.arr.Elem(i).Obj.(*stencilChare)
		for _, j := range ch.neighbours {
			app.arr.Send(i, j, app.exchange, ghost)
		}
	}
}

// Start seeds the first iteration without driving the engine, for
// callers that run several applications on one engine (the cluster).
func (app *StencilApp) Start() {
	rt := app.mg.Runtime()
	app.started = rt.Engine().Now()
	rt.Main(func(p *sim.Proc) { app.sendGhosts() })
}

// Run executes the configured iterations and returns the total time.
// It must be called on a fresh engine; it drives the engine itself.
func (app *StencilApp) Run() (sim.Time, error) {
	rt := app.mg.Runtime()
	app.Start()
	rt.Engine().RunAll()
	if !app.done {
		return 0, fmt.Errorf("kernels: stencil deadlocked after %d/%d iterations (blocked: %v)",
			len(app.IterEnd), app.Cfg.Iterations, rt.Engine().BlockedProcNames())
	}
	return app.TotalTime(), nil
}

// TotalTime returns the wall time of all iterations.
func (app *StencilApp) TotalTime() sim.Time {
	if len(app.IterEnd) == 0 {
		return 0
	}
	return app.IterEnd[len(app.IterEnd)-1] - app.started
}

// AvgIterTime returns the mean per-iteration time.
func (app *StencilApp) AvgIterTime() sim.Time {
	if len(app.IterEnd) == 0 {
		return 0
	}
	return app.TotalTime() / sim.Time(len(app.IterEnd))
}

// Done reports whether all iterations completed.
func (app *StencilApp) Done() bool { return app.done }

// Manager exposes the OOC manager (stats, tracer access).
func (app *StencilApp) Manager() *core.Manager { return app.mg }
