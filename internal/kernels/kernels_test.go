package kernels

import (
	"testing"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

const gb = int64(1) << 30
const mb = int64(1) << 20

// smallKNL is a 1/8 slice of KNL: 8 cores, 2 GB MCDRAM, 16 GB DDR, and
// node bandwidths divided by 8 so per-core bandwidth pressure matches
// the 64-core machine (DDR ~1.3 GB/s per core, HBM ~6.7 GB/s).
func smallKNL() topology.MachineSpec {
	s := topology.KNL7250()
	s.Cores = 8
	s.TilesL2 = 4
	s.HBMCap = 2 * gb
	s.DDRCap = 16 * gb
	s.HBMReadBW /= 8
	s.HBMWriteBW /= 8
	s.HBMTotalBW /= 8
	s.DDRReadBW /= 8
	s.DDRWriteBW /= 8
	s.DDRTotalBW /= 8
	return s
}

func smallOpts(mode core.Mode) core.Options {
	o := core.DefaultOptions(mode)
	o.HBMReserve = 256 * mb
	return o
}

func stencilEnv(t *testing.T, mode core.Mode, cfg StencilConfig) (*Env, *StencilApp) {
	t.Helper()
	env := NewEnv(EnvConfig{Spec: smallKNL(), NumPEs: cfg.NumPEs, Opts: smallOpts(mode)})
	t.Cleanup(env.Close)
	app, err := NewStencil(env.MG, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env, app
}

// smallStencil: 4 GB total, 1 GB reduced over 8 PEs -> 128 MB chares,
// 32 chares.
func smallStencil() StencilConfig {
	return StencilConfig{
		TotalBytes:    4 * gb,
		ReducedBytes:  1 * gb,
		Iterations:    3,
		Sweeps:        10,
		NumPEs:        8,
		FlopsPerByte:  1.0,
		GhostFraction: 0.05,
	}
}

func TestStencilConfigDerived(t *testing.T) {
	cfg := smallStencil()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.ChareBytes() != 128*mb {
		t.Fatalf("chare bytes %d", cfg.ChareBytes())
	}
	if cfg.NumChares() != 32 {
		t.Fatalf("num chares %d", cfg.NumChares())
	}
}

func TestStencilConfigValidation(t *testing.T) {
	bad := []func(*StencilConfig){
		func(c *StencilConfig) { c.TotalBytes = 0 },
		func(c *StencilConfig) { c.ReducedBytes = c.TotalBytes * 2 },
		func(c *StencilConfig) { c.Iterations = 0 },
		func(c *StencilConfig) { c.Sweeps = 0 },
		func(c *StencilConfig) { c.NumPEs = 0 },
		func(c *StencilConfig) { c.ReducedBytes = 1<<30 + 3 },
	}
	for i, mut := range bad {
		c := smallStencil()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultStencilMatchesPaper(t *testing.T) {
	c := DefaultStencilConfig()
	if c.TotalBytes != 32*gb || c.Sweeps != 20 || c.NumPEs != 64 {
		t.Fatal("default stencil config drifted from the paper's setup")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStencilRunsToCompletionAllModes(t *testing.T) {
	for _, mode := range []core.Mode{core.DDROnly, core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
		t.Run(mode.String(), func(t *testing.T) {
			_, app := stencilEnv(t, mode, smallStencil())
			total, err := app.Run()
			if err != nil {
				t.Fatal(err)
			}
			if total <= 0 || len(app.IterEnd) != 3 {
				t.Fatalf("total=%v iters=%d", total, len(app.IterEnd))
			}
			if app.AvgIterTime() <= 0 {
				t.Fatal("no average iteration time")
			}
		})
	}
}

func TestStencilMovementBeatsNaive(t *testing.T) {
	// The headline claim (Fig. 8): with the working set 2x over HBM,
	// MultiIO beats the Naive baseline.
	cfg := smallStencil() // 4 GB total vs 1.75 GB HBM budget
	run := func(mode core.Mode) sim.Time {
		_, app := stencilEnv(t, mode, cfg)
		total, err := app.Run()
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	naive := run(core.Baseline)
	multi := run(core.MultiIO)
	if multi >= naive {
		t.Fatalf("MultiIO (%v) not faster than Naive (%v)", multi, naive)
	}
}

func TestStencilFitsInHBMFastPath(t *testing.T) {
	// Working set within HBM: baseline serves everything from HBM and
	// strategies should not be dramatically slower.
	cfg := smallStencil()
	cfg.TotalBytes = 1 * gb
	cfg.ReducedBytes = 1 * gb
	naiveEnv, app := stencilEnv(t, core.Baseline, cfg)
	naive, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if used := naiveEnv.Mach.DDR().Used(); used != 0 {
		t.Fatalf("fitting baseline spilled %d bytes to DDR", used)
	}
	_, app2 := stencilEnv(t, core.DDROnly, cfg)
	ddr, err := app2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(ddr) / float64(naive); ratio < 2.0 {
		t.Fatalf("Fig 2 shape: DDR/HBM iteration ratio %.2f, want >= 2 (paper ~3x)", ratio)
	}
}

func TestStencilGhostProtocolExactlyOneKernelPerIteration(t *testing.T) {
	env, app := stencilEnv(t, core.Baseline, smallStencil())
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	// Each chare runs compute once per iteration; plus ghost messages.
	wantKernels := int64(app.Cfg.NumChares() * app.Cfg.Iterations)
	var kernels int64
	for i := 0; i < app.arr.Len(); i++ {
		_ = i
	}
	kernels = env.RT.Stats.TasksExecuted - int64(app.ghostMessages())
	if kernels != wantKernels {
		t.Fatalf("kernel executions %d, want %d", kernels, wantKernels)
	}
}

// ghostMessages counts the ghost deliveries of a finished run.
func (app *StencilApp) ghostMessages() int {
	total := 0
	for i := 0; i < app.arr.Len(); i++ {
		total += app.arr.Elem(i).Obj.(*stencilChare).ghostsWant
	}
	return total * app.Cfg.Iterations
}

func TestCubeSide(t *testing.T) {
	cases := map[int]int{1: 1, 8: 2, 9: 3, 27: 3, 28: 4, 64: 4, 1024: 11}
	for n, want := range cases {
		if got := cubeSide(n); got != want {
			t.Errorf("cubeSide(%d) = %d, want %d", n, got, want)
		}
	}
}

// --- MatMul ---

// smallMatMul: 3 GB total (1 GB per matrix), 8x8 staged grid, 8 PEs.
// Blocks are 16 MB; one stage task touches 3 blocks (48 MB) and a wave
// of 8 concurrent tasks a few hundred MB — well inside the 1.75 GB
// budget, the paper's precondition that the reduced working set fits.
func smallMatMul() MatMulConfig {
	return MatMulConfig{
		TotalBytes:          3 * gb,
		Grid:                8,
		NumPEs:              8,
		TrafficScale:        3,
		ArithmeticIntensity: 8,
	}
}

func matmulEnv(t *testing.T, mode core.Mode, cfg MatMulConfig) (*Env, *MatMulApp) {
	t.Helper()
	env := NewEnv(EnvConfig{Spec: smallKNL(), NumPEs: cfg.NumPEs, Opts: smallOpts(mode)})
	t.Cleanup(env.Close)
	app, err := NewMatMul(env.MG, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env, app
}

func TestMatMulConfigDerived(t *testing.T) {
	cfg := smallMatMul()
	if cfg.MatrixBytes() != 1*gb {
		t.Fatalf("matrix bytes %d", cfg.MatrixBytes())
	}
	if cfg.BlockBytes() != 16*mb {
		t.Fatalf("block bytes %d", cfg.BlockBytes())
	}
	if cfg.TaskDepBytes() != 3*16*mb {
		t.Fatalf("task dep bytes %d", cfg.TaskDepBytes())
	}
	if cfg.Tasks() != 512 {
		t.Fatalf("tasks %d, want 512 (G^3)", cfg.Tasks())
	}
	// Reduced WS: 1 row + 8 cols + 8 C blocks = 17 blocks.
	if cfg.ReducedBytes() != 17*16*mb {
		t.Fatalf("reduced bytes %d", cfg.ReducedBytes())
	}
	if n := cfg.N(); n < 11585 || n > 11586 {
		t.Fatalf("N = %v, want ~11585 (sqrt(1GB/8))", n)
	}
}

func TestMatMulValidation(t *testing.T) {
	for i, c := range []MatMulConfig{
		{TotalBytes: 0, Grid: 4, NumPEs: 4, TrafficScale: 1, ArithmeticIntensity: 1},
		{TotalBytes: gb, Grid: 0, NumPEs: 4, TrafficScale: 1, ArithmeticIntensity: 1},
		{TotalBytes: gb, Grid: 4, NumPEs: 0, TrafficScale: 1, ArithmeticIntensity: 1},
		{TotalBytes: gb, Grid: 4, NumPEs: 4, TrafficScale: 0, ArithmeticIntensity: 1},
		{TotalBytes: gb, Grid: 4, NumPEs: 4, TrafficScale: 1, ArithmeticIntensity: 0},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMatMulRunsToCompletionAllModes(t *testing.T) {
	for _, mode := range []core.Mode{core.DDROnly, core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
		t.Run(mode.String(), func(t *testing.T) {
			env, app := matmulEnv(t, mode, smallMatMul())
			total, err := app.Run()
			if err != nil {
				t.Fatal(err)
			}
			if total <= 0 {
				t.Fatal("zero time")
			}
			if env.RT.Stats.TasksExecuted != int64(smallMatMul().Tasks()) {
				t.Fatalf("executed %d tasks, want %d", env.RT.Stats.TasksExecuted, smallMatMul().Tasks())
			}
		})
	}
}

func TestMatMulReadOnlyReuse(t *testing.T) {
	// With FIFO scheduling and shared read-only blocks, blocks are
	// fetched far fewer times than they are used: 512 tasks x 3 deps =
	// 1536 uses over 192 blocks.
	_, app := matmulEnv(t, core.SingleIO, smallMatMul())
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	st := app.Manager().Stats
	if st.Fetches >= 1200 {
		t.Fatalf("fetches = %d for 1536 dependence uses — no read-only reuse", st.Fetches)
	}
	if st.Fetches == 0 {
		t.Fatal("no fetches at all")
	}
}

func TestMatMulMovementBeatsNaiveWhenOversubscribed(t *testing.T) {
	// 6 GB total vs 1.75 GB budget: heavy DDR overflow for Naive.
	cfg := smallMatMul()
	cfg.TotalBytes = 6 * gb
	run := func(mode core.Mode) sim.Time {
		_, app := matmulEnv(t, mode, cfg)
		total, err := app.Run()
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	naive := run(core.Baseline)
	single := run(core.SingleIO)
	if single >= naive {
		t.Fatalf("SingleIO (%v) not faster than Naive (%v)", single, naive)
	}
}

func TestMatMulSingleIOCompetitiveWithMultiIO(t *testing.T) {
	// Fig. 9's observation: with high read-only reuse, Single IO
	// performs about as well as Multiple IO threads (within ~25%).
	cfg := smallMatMul()
	cfg.TotalBytes = 6 * gb
	run := func(mode core.Mode) sim.Time {
		_, app := matmulEnv(t, mode, cfg)
		total, err := app.Run()
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	single := run(core.SingleIO)
	multi := run(core.MultiIO)
	if ratio := float64(single) / float64(multi); ratio > 1.4 {
		t.Fatalf("SingleIO/MultiIO = %.2f; paper says they should be comparable for matmul", ratio)
	}
}

func TestMatMulDDROnlySlowest(t *testing.T) {
	cfg := smallMatMul()
	run := func(mode core.Mode) sim.Time {
		_, app := matmulEnv(t, mode, cfg)
		total, err := app.Run()
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	ddr := run(core.DDROnly)
	multi := run(core.MultiIO)
	if ddr <= multi {
		t.Fatalf("DDR4only (%v) should be slower than MultiIO (%v)", ddr, multi)
	}
}
