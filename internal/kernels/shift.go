package kernels

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
)

// ShiftConfig sizes a working-set-shift run (experiment X10): an
// iterative chare program whose declared dependences change mid-run.
// For the first PreIters iterations every chare touches only its hot
// block; from iteration PreIters on, each task additionally declares a
// cold block it has never used. Sized so the hot set fits HBM and the
// widened set does not, the shift turns a steady in-memory phase into
// an out-of-core phase at a known iteration — the scenario the
// adaptive controller's settled-phase guard and the eviction victim
// policies are tested against.
type ShiftConfig struct {
	// HotBytes is the phase-1 working set (all hot blocks).
	HotBytes int64
	// ColdBytes is the extra working set the shift adds.
	ColdBytes int64
	// NumChares is the over-decomposition width; each chare owns one
	// hot and one cold block.
	NumChares int
	// PreIters is the number of hot-only iterations before the shift.
	PreIters int
	// PostIters is the number of widened iterations after it.
	PostIters int
	// Sweeps is the temporal-tiling depth per kernel invocation.
	Sweeps int
	// NumPEs is the worker count.
	NumPEs int
	// FlopsPerByte is the arithmetic intensity of the kernel.
	FlopsPerByte float64
}

// Validate reports configuration errors.
func (c ShiftConfig) Validate() error {
	switch {
	case c.HotBytes <= 0 || c.ColdBytes <= 0:
		return fmt.Errorf("kernels: shift needs positive working-set sizes")
	case c.NumChares <= 0:
		return fmt.Errorf("kernels: shift needs chares")
	case c.PreIters <= 0 || c.PostIters <= 0:
		return fmt.Errorf("kernels: shift needs iterations on both sides of the shift")
	case c.Sweeps <= 0:
		return fmt.Errorf("kernels: shift needs a positive tiling depth (Sweeps)")
	case c.NumPEs <= 0:
		return fmt.Errorf("kernels: shift needs PEs")
	case c.HotBytes%int64(c.NumChares) != 0:
		return fmt.Errorf("kernels: hot WS %d not divisible by %d chares", c.HotBytes, c.NumChares)
	case c.ColdBytes%int64(c.NumChares) != 0:
		return fmt.Errorf("kernels: cold WS %d not divisible by %d chares", c.ColdBytes, c.NumChares)
	}
	return nil
}

// Iterations returns the total iteration count.
func (c ShiftConfig) Iterations() int { return c.PreIters + c.PostIters }

// shiftChare owns one hot and one cold block.
type shiftChare struct {
	hot, cold *core.Handle
}

// ShiftApp is an instantiated working-set-shift benchmark.
type ShiftApp struct {
	Cfg ShiftConfig
	mg  *core.Manager
	arr *charm.Array

	compute *charm.Entry
	red     *charm.Reduction
	done    bool

	// IterEnd records the completion time of each iteration.
	IterEnd []sim.Time
	started sim.Time

	// OnIteration, when non-nil, is invoked at each iteration boundary
	// instead of immediately starting the next iteration; the
	// application continues when resume is called. X10's adaptive run
	// wires the controller's Barrier in here.
	OnIteration func(iter int, resume func())
}

// NewShift builds the application on an existing runtime+manager.
func NewShift(mg *core.Manager, cfg ShiftConfig) (*ShiftApp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := mg.Runtime()
	if rt.NumPEs() != cfg.NumPEs {
		return nil, fmt.Errorf("kernels: runtime has %d PEs, config wants %d", rt.NumPEs(), cfg.NumPEs)
	}
	app := &ShiftApp{Cfg: cfg, mg: mg}
	n := cfg.NumChares
	hot := cfg.HotBytes / int64(n)
	cold := cfg.ColdBytes / int64(n)

	app.arr = rt.NewArray("shift", n, func(i int) charm.Chare {
		return &shiftChare{
			hot:  mg.NewHandle(fmt.Sprintf("sh.H[%d]", i), hot),
			cold: mg.NewHandle(fmt.Sprintf("sh.C[%d]", i), cold),
		}
	}, nil)

	// Deps closures are resolved at Send time, so the dependence list
	// widens exactly at the first post-shift iteration's sends.
	deps := func(el *charm.Element) []charm.DataDep {
		ch := el.Obj.(*shiftChare)
		d := []charm.DataDep{{Handle: ch.hot, Mode: charm.ReadWrite}}
		if app.Shifted() {
			d = append(d, charm.DataDep{Handle: ch.cold, Mode: charm.ReadOnly})
		}
		return d
	}
	app.compute = app.arr.Register(charm.Entry{
		Name:     "compute_kernel",
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return deps(el)
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			d := deps(el)
			var bytesPerSweep float64
			for _, dep := range d {
				bytesPerSweep += float64(dep.Handle.Size())
			}
			mg.RunKernel(p, d, core.KernelSpec{
				Flops:        bytesPerSweep * float64(cfg.Sweeps) * cfg.FlopsPerByte,
				TrafficScale: float64(cfg.Sweeps),
			})
			app.red.Contribute()
		},
	})

	app.red = rt.NewReduction(n, func() {
		app.IterEnd = append(app.IterEnd, rt.Engine().Now())
		if len(app.IterEnd) < cfg.Iterations() {
			if app.OnIteration != nil {
				app.OnIteration(len(app.IterEnd), app.broadcast)
			} else {
				app.broadcast()
			}
		} else {
			app.done = true
		}
	})
	return app, nil
}

// Shifted reports whether the next iteration's tasks use the widened
// dependence set (the shift has happened).
func (app *ShiftApp) Shifted() bool { return len(app.IterEnd) >= app.Cfg.PreIters }

// broadcast starts one iteration: every chare schedules its kernel.
func (app *ShiftApp) broadcast() {
	for i := 0; i < app.arr.Len(); i++ {
		app.arr.Send(i, i, app.compute, nil)
	}
}

// Start seeds the first iteration without driving the engine.
func (app *ShiftApp) Start() {
	rt := app.mg.Runtime()
	app.started = rt.Engine().Now()
	rt.Main(func(p *sim.Proc) { app.broadcast() })
}

// Run executes the configured iterations and returns the total time.
// It must be called on a fresh engine; it drives the engine itself.
func (app *ShiftApp) Run() (sim.Time, error) {
	rt := app.mg.Runtime()
	app.Start()
	rt.Engine().RunAll()
	if !app.done {
		return 0, fmt.Errorf("kernels: shift deadlocked after %d/%d iterations (blocked: %v)",
			len(app.IterEnd), app.Cfg.Iterations(), rt.Engine().BlockedProcNames())
	}
	return app.TotalTime(), nil
}

// TotalTime returns the wall time of all iterations.
func (app *ShiftApp) TotalTime() sim.Time {
	if len(app.IterEnd) == 0 {
		return 0
	}
	return app.IterEnd[len(app.IterEnd)-1] - app.started
}

// PostShiftTime returns the wall time of the post-shift iterations —
// the phase the eviction policies differentiate on.
func (app *ShiftApp) PostShiftTime() sim.Time {
	if len(app.IterEnd) <= app.Cfg.PreIters {
		return 0
	}
	return app.IterEnd[len(app.IterEnd)-1] - app.IterEnd[app.Cfg.PreIters-1]
}

// Done reports whether all iterations completed.
func (app *ShiftApp) Done() bool { return app.done }

// Manager exposes the OOC manager.
func (app *ShiftApp) Manager() *core.Manager { return app.mg }
