package kernels

import (
	"fmt"
	"math"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
)

// MatMulConfig sizes a blocked dense matrix multiplication C = A x B.
//
// The multiply is staged: matrices are split into Grid x Grid blocks,
// chare (i,j) owns C[i,j] and runs Grid entry-method tasks, one per
// stage k, each depending on exactly {A[i,k] readonly, B[k,j] readonly,
// C[i,j] readwrite}. This fine-grained decomposition is what keeps the
// paper's "reduced working set size constant at 6GB" while the total
// working set grows 24->54 GB: the blocks touched by one wave of
// concurrent tasks are a few rows of A, one stage-column of B and the
// running chares' C blocks, independent of total matrix size. A and B
// blocks are shared read-only across the chares of a row/column through
// the node-level block cache (the paper's nodegroup), which is why
// "when a data block is fetched into HBM, it is consequently reused
// before eviction".
type MatMulConfig struct {
	// TotalBytes is the combined footprint of A, B and C (paper:
	// 24-54 GB).
	TotalBytes int64
	// Grid is the chare/block grid side G.
	Grid int
	// NumPEs is the worker count (paper: 64).
	NumPEs int
	// TrafficScale is how many times one stage task streams its three
	// blocks (sub-block panel re-reads inside dgemm). Default 3.
	TrafficScale float64
	// Pipeline is the number of chares kept in flight per PE. Depth 1
	// is strict depth-first (minimum resident C, but the IO thread
	// has nothing to prefetch while a stage computes); depth 2 lets
	// the runtime stage one chare's blocks while another computes,
	// hiding the migration latency. Zero means 2.
	Pipeline int
	// ArithmeticIntensity is the dgemm flops executed per byte
	// streamed. The paper observes that "matrix multiplication with
	// optimizations for Xeon Phi KNL and with vectorization becomes
	// bandwidth sensitive as a result of several threads
	// simultaneously accessing data from memory"; ~5 flop/byte puts
	// the 64-thread kernel on the bandwidth-bound side of the
	// roofline against DDR4 while staying near the compute roof on
	// MCDRAM, matching that observation.
	ArithmeticIntensity float64
}

// DefaultMatMulConfig returns the paper's smallest configuration:
// 24 GB total (8 GB per matrix) on 64 PEs, a 16x16 block grid. Chares
// are scheduled depth-first (at most one active chare per PE; the next
// chare starts when the previous finishes all its stages), so each C
// block is fetched once and stays resident for all its accumulation
// stages, and the active working set — 64 C blocks plus the A/B
// panels in flight — stays constant (the paper's "reduced working set
// size constant at 6GB") as the total grows from 24 to 54 GB.
func DefaultMatMulConfig() MatMulConfig {
	return MatMulConfig{
		TotalBytes:          24 * (1 << 30),
		Grid:                16,
		NumPEs:              64,
		TrafficScale:        3,
		Pipeline:            2,
		ArithmeticIntensity: 5,
	}
}

// GridFor picks the block grid for a total working set on a machine
// with the given HBM budget: the smallest grid (largest blocks, best
// fixed-cost amortisation) whose active C working set — one C block
// per PE under depth-first chare scheduling — still fits comfortably.
func GridFor(totalBytes, hbmBudget int64, numPEs int) int {
	for g := 8; ; g *= 2 {
		// Under depth-first chaining at most one C block per PE is
		// active at a time.
		activeC := int64(numPEs) * (totalBytes / 3) / int64(g*g)
		// Leave a third of the budget for A/B panels and staging.
		if activeC <= hbmBudget*2/3 || int64(g*g) >= totalBytes/3 {
			return g
		}
	}
}

// Validate reports configuration errors.
func (c MatMulConfig) Validate() error {
	switch {
	case c.TotalBytes <= 0:
		return fmt.Errorf("kernels: matmul needs positive working set")
	case c.Grid <= 0:
		return fmt.Errorf("kernels: matmul needs a positive block grid")
	case c.NumPEs <= 0:
		return fmt.Errorf("kernels: matmul needs PEs")
	case c.TrafficScale <= 0:
		return fmt.Errorf("kernels: matmul needs a positive traffic scale")
	case c.Pipeline < 0:
		return fmt.Errorf("kernels: matmul pipeline depth cannot be negative")
	case c.ArithmeticIntensity <= 0:
		return fmt.Errorf("kernels: matmul needs a positive arithmetic intensity")
	}
	return nil
}

// MatrixBytes returns one matrix's footprint.
func (c MatMulConfig) MatrixBytes() int64 { return c.TotalBytes / 3 }

// BlockBytes returns one block's footprint.
func (c MatMulConfig) BlockBytes() int64 {
	return c.MatrixBytes() / int64(c.Grid*c.Grid)
}

// N returns the matrix dimension implied by the footprint.
func (c MatMulConfig) N() float64 {
	return math.Sqrt(float64(c.MatrixBytes()) / 8)
}

// TaskDepBytes returns the dependence footprint of one stage task:
// one A block, one B block, one C block.
func (c MatMulConfig) TaskDepBytes() int64 { return 3 * c.BlockBytes() }

// ReducedBytes estimates the resident working set of one wave of
// NumPEs concurrent stage tasks: the A blocks of the rows spanned, the
// B blocks of the stage column shared within the wave, and one C block
// per running task.
func (c MatMulConfig) ReducedBytes() int64 {
	rows := (c.NumPEs + c.Grid - 1) / c.Grid
	if rows < 1 {
		rows = 1
	}
	cols := c.NumPEs
	if cols > c.Grid {
		cols = c.Grid
	}
	blocks := rows + cols + c.NumPEs
	return int64(blocks) * c.BlockBytes()
}

// Tasks returns the total stage-task count (G^3: G^2 chares x G
// stages).
func (c MatMulConfig) Tasks() int { return c.Grid * c.Grid * c.Grid }

// blockCache is the Charm++ nodegroup the paper uses "in order to share
// the common input readonly blocks across tasks depending on them ...
// which allows caching of data at node-level". It exposes the shared A
// and B block handles to every chare.
type blockCache struct {
	A [][]*core.Handle // A[i][k]
	B [][]*core.Handle // B[k][j]
}

// matmulChare owns one output block and tracks its stage progress.
type matmulChare struct {
	i, j  int
	c     *core.Handle
	stage int
}

// MatMulApp is an instantiated blocked-matmul benchmark.
type MatMulApp struct {
	Cfg   MatMulConfig
	mg    *core.Manager
	arr   *charm.Array
	cache *blockCache
	dgemm *charm.Entry

	done bool
	End  sim.Time
	red  *charm.Reduction
}

// NewMatMul builds the application on an existing runtime+manager.
//
// Note on MKL: the paper calls cblas_dgemm and sets
// MEMKIND_HBW_NODES=0 so MKL's internal allocations land on DDR4,
// keeping placement of A, B and C the only variable. Our roofline dgemm
// cost model has no hidden allocations, so it is equivalent to that
// neutralised configuration by construction.
func NewMatMul(mg *core.Manager, cfg MatMulConfig) (*MatMulApp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := mg.Runtime()
	if rt.NumPEs() != cfg.NumPEs {
		return nil, fmt.Errorf("kernels: runtime has %d PEs, config wants %d", rt.NumPEs(), cfg.NumPEs)
	}
	app := &MatMulApp{Cfg: cfg, mg: mg}
	g := cfg.Grid
	bb := cfg.BlockBytes()

	// Declare all blocks. Declaration order interleaves A, B and C so
	// the Naive mode fills HBM with a representative mix, as
	// numa_alloc_onnode in allocation order does in the paper.
	cache := &blockCache{}
	cache.A = make([][]*core.Handle, g)
	cache.B = make([][]*core.Handle, g)
	for i := 0; i < g; i++ {
		cache.A[i] = make([]*core.Handle, g)
		cache.B[i] = make([]*core.Handle, g)
	}
	cs := make([][]*core.Handle, g)
	for i := 0; i < g; i++ {
		cs[i] = make([]*core.Handle, g)
		for j := 0; j < g; j++ {
			cache.A[i][j] = mg.NewHandle(fmt.Sprintf("A[%d,%d]", i, j), bb)
			cache.B[i][j] = mg.NewHandle(fmt.Sprintf("B[%d,%d]", i, j), bb)
			cs[i][j] = mg.NewHandle(fmt.Sprintf("C[%d,%d]", i, j), bb)
		}
	}
	app.cache = cache
	rt.RegisterGroup("matmul.blockCache", cache)

	app.arr = rt.NewArray("matmul", g*g, func(idx int) charm.Chare {
		return &matmulChare{i: idx / g, j: idx % g, c: cs[idx/g][idx%g]}
	}, nil)

	// Stage-k dependences: A[i,k] and B[k,j] read-only (shared),
	// C[i,j] read-write (accumulated in place).
	deps := func(el *charm.Element, msg *charm.Message) []charm.DataDep {
		ch := el.Obj.(*matmulChare)
		k := msg.Data.(int)
		bc := rt.Group("matmul.blockCache").(*blockCache)
		return []charm.DataDep{
			{Handle: bc.A[ch.i][k], Mode: charm.ReadOnly},
			{Handle: bc.B[k][ch.j], Mode: charm.ReadOnly},
			{Handle: ch.c, Mode: charm.ReadWrite},
		}
	}

	// One stage task streams its blocks TrafficScale times and
	// executes ArithmeticIntensity flops per streamed byte.
	// Streamed bytes per scale pass: A + B reads, C read+write.
	taskBytes := cfg.TrafficScale * 4 * float64(bb)
	taskFlops := cfg.ArithmeticIntensity * taskBytes

	app.dgemm = app.arr.Register(charm.Entry{
		Name:     "dgemm",
		Prefetch: true,
		Deps:     deps,
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			ch := el.Obj.(*matmulChare)
			mg.RunKernel(p, deps(el, msg), core.KernelSpec{
				Flops:        taskFlops,
				TrafficScale: cfg.TrafficScale,
			})
			ch.stage++
			if ch.stage < g {
				// Next accumulation stage for this output block.
				app.arr.Send(el.Index, el.Index, app.dgemm, ch.stage)
			} else {
				// Depth-first chare chaining: this PE's next chare
				// starts only now, so at most Pipeline C blocks per
				// PE are active at a time.
				if next := el.Index + app.seedCount(); next < g*g {
					app.arr.Send(el.Index, next, app.dgemm, 0)
				}
				app.red.Contribute()
			}
		},
	})

	app.red = rt.NewReduction(g*g, func() {
		app.done = true
		app.End = rt.Engine().Now()
	})
	return app, nil
}

// seedCount returns how many chares start immediately: Pipeline per
// PE, so the IO threads always have a queued chare to stage while
// another computes.
func (app *MatMulApp) seedCount() int {
	depth := app.Cfg.Pipeline
	if depth == 0 {
		depth = 2
	}
	seed := depth * app.Cfg.NumPEs
	if n := app.arr.Len(); seed > n {
		seed = n
	}
	return seed
}

// Start seeds Pipeline chares per PE (the rest chain depth-first)
// without driving the engine, for callers that schedule the engine
// themselves (the serve session scheduler).
func (app *MatMulApp) Start() {
	rt := app.mg.Runtime()
	rt.Main(func(p *sim.Proc) {
		for i := 0; i < app.seedCount(); i++ {
			app.arr.Send(-1, i, app.dgemm, 0)
		}
	})
}

// Run seeds the pipeline and drives the engine to completion,
// returning the multiply's wall time.
func (app *MatMulApp) Run() (sim.Time, error) {
	rt := app.mg.Runtime()
	start := rt.Engine().Now()
	app.Start()
	rt.Engine().RunAll()
	if !app.done {
		return 0, fmt.Errorf("kernels: matmul deadlocked (blocked: %v)", rt.Engine().BlockedProcNames())
	}
	return app.End - start, nil
}

// Done reports completion.
func (app *MatMulApp) Done() bool { return app.done }

// Manager exposes the OOC manager.
func (app *MatMulApp) Manager() *core.Manager { return app.mg }
