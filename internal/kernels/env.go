package kernels

import (
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// Env bundles one simulated experiment instance: engine, machine,
// runtime, OOC manager and (optionally) a tracer. Every experiment run
// uses a fresh Env so state never leaks between configurations.
type Env struct {
	Eng    *sim.Engine
	Mach   *topology.Machine
	RT     *charm.Runtime
	MG     *core.Manager
	Tracer *projections.Tracer
}

// EnvConfig parameterises NewEnv.
type EnvConfig struct {
	Spec   topology.MachineSpec
	NumPEs int
	Opts   core.Options
	Params charm.Params
	Trace  bool
	Seed   int64
}

// NewEnv builds a ready environment. Zero Params fields fall back to
// charm.DefaultParams; Seed 0 uses a fixed default seed.
func NewEnv(cfg EnvConfig) *Env {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	params := cfg.Params
	if params == (charm.Params{}) {
		params = charm.DefaultParams()
	}
	e := sim.NewEngine(seed)
	mach := cfg.Spec.MustBuild(e)
	var tr *projections.Tracer
	if cfg.Trace {
		tr = projections.NewTracer(e, cfg.NumPEs)
	}
	rt := charm.NewRuntime(mach, cfg.NumPEs, params, tr)
	mg := core.NewManager(rt, cfg.Opts)
	return &Env{Eng: e, Mach: mach, RT: rt, MG: mg, Tracer: tr}
}

// Close reaps all still-parked simulation processes.
func (v *Env) Close() { v.Eng.Close() }
