package sim

import (
	"fmt"
	"sort"
	"testing"
)

// TestCancelReclaimsHeapSlot is the regression test for the unbounded
// heap bug: Cancel used to mark the event dead but leave it in the heap,
// so a workload scheduling and cancelling timeouts (the condvar-timeout
// pattern) grew the heap without bound. Cancelled events must leave the
// heap immediately.
func TestCancelReclaimsHeapSlot(t *testing.T) {
	e := NewEngine(1)
	const rounds = 10_000
	var fired int
	var tick func()
	remaining := rounds
	tick = func() {
		// Guard timeout far in the future, cancelled before the next
		// tick fires — exactly the Cond-wait-with-timeout shape.
		guard := e.After(1e6, func() { t.Error("cancelled guard fired") })
		fired++
		remaining--
		if remaining > 0 {
			e.After(1e-6, tick)
		}
		guard.Cancel()
	}
	e.After(0, tick)
	e.RunAll()
	if fired != rounds {
		t.Fatalf("fired %d ticks, want %d", fired, rounds)
	}
	if n := e.PendingEvents(); n != 0 {
		t.Fatalf("PendingEvents = %d after drain, want 0", n)
	}
	st := e.EventStats()
	if st.Cancelled != rounds {
		t.Fatalf("Cancelled = %d, want %d", st.Cancelled, rounds)
	}
	// The free list bounds live event objects: after warm-up every
	// Schedule should be served by reuse, not allocation.
	if st.Reused < st.Scheduled-64 {
		t.Fatalf("Reused = %d of %d scheduled; pool not recycling", st.Reused, st.Scheduled)
	}
}

// TestHeapStaysBounded asserts the heap length never exceeds the number
// of genuinely pending events even while cancels churn.
func TestHeapStaysBounded(t *testing.T) {
	e := NewEngine(1)
	const lanes = 8
	const steps = 2_000
	guards := make([]EventHandle, lanes)
	maxHeap := 0
	remaining := steps
	var tick func(lane int)
	tick = func(lane int) {
		guards[lane].Cancel()
		guards[lane] = e.After(1e3, func() {})
		remaining--
		if remaining > 0 {
			lane := lane
			e.After(1e-6, func() { tick(lane) })
		}
		if n := e.PendingEvents(); n > maxHeap {
			maxHeap = n
		}
	}
	for i := 0; i < lanes; i++ {
		i := i
		e.After(0, func() { tick(i) })
	}
	e.RunAll()
	// At any instant there are at most lanes pending ticks + lanes live
	// guards (+ a small constant); anything near `steps` means dead
	// events are accumulating again.
	if maxHeap > 4*lanes {
		t.Fatalf("heap grew to %d entries with only %d lanes; cancelled events are lingering", maxHeap, lanes)
	}
}

// TestCancelRandomizedOrdering drives the intrusive heap's remove path
// hard: schedule events at pseudo-random times, cancel a deterministic
// subset, and check the survivors fire in exactly (t, seq) order.
func TestCancelRandomizedOrdering(t *testing.T) {
	e := NewEngine(42)
	rng := e.Rand()
	type rec struct {
		at  Time
		seq int
	}
	var want []rec
	var got []rec
	handles := make([]EventHandle, 0, 500)
	times := make([]Time, 0, 500)
	for i := 0; i < 500; i++ {
		i := i
		at := Time(rng.Intn(50)) * 0.5
		handles = append(handles, e.Schedule(at, func() { got = append(got, rec{at, i}) }))
		times = append(times, at)
	}
	for i := range handles {
		if i%3 == 0 {
			handles[i].Cancel()
		} else {
			want = append(want, rec{times[i], i})
		}
	}
	sort.SliceStable(want, func(a, b int) bool {
		if want[a].at != want[b].at {
			return want[a].at < want[b].at
		}
		return want[a].seq < want[b].seq
	})
	e.RunAll()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCancelAfterFire: cancelling a fired event is a no-op even when the
// underlying object has been recycled by a later Schedule.
func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	h1 := e.Schedule(1, func() {})
	e.RunAll()
	// Recycle the object h1 pointed at.
	fired := false
	h2 := e.Schedule(2, func() { fired = true })
	h1.Cancel() // stale handle: must not disturb h2's event
	e.RunAll()
	if !fired {
		t.Fatal("stale Cancel cancelled a recycled event")
	}
	if h2.Cancelled() {
		t.Fatal("h2 reads cancelled")
	}
	if !h1.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel on fired handle")
	}
}

// TestDoubleCancel: cancelling twice releases the event only once (a
// double release would corrupt the free list / double-fire on reuse).
func TestDoubleCancel(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(1, func() { t.Error("cancelled event fired") })
	h.Cancel()
	h.Cancel()
	survivors := 0
	e.Schedule(2, func() { survivors++ })
	e.Schedule(3, func() { survivors++ })
	e.RunAll()
	if survivors != 2 {
		t.Fatalf("survivors = %d, want 2", survivors)
	}
}

// TestRunAdvancesClockToUntil pins the Run(until) contract: when Run
// stops short of a finite until (future event or drained queue), the
// clock lands on until, so a follow-up After(d) means "d after until".
func TestRunAdvancesClockToUntil(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(1, func() {})
	e.Schedule(10, func() {})
	if end := e.Run(2.5); end != 2.5 {
		t.Fatalf("Run(2.5) = %v, want 2.5 (stop on future event)", end)
	}
	if e.Now() != 2.5 {
		t.Fatalf("Now = %v after Run(2.5), want 2.5", e.Now())
	}
	var firedAt Time
	e.After(1, func() { firedAt = e.Now() })
	e.Run(4)
	if firedAt != 3.5 {
		t.Fatalf("After(1) from Run-advanced clock fired at %v, want 3.5", firedAt)
	}
	if e.Now() != 4 {
		t.Fatalf("Now = %v after Run(4) draining the near queue, want 4 (drained-queue advance)", e.Now())
	}
	// RunAll must NOT advance to Infinity.
	e.RunAll()
	if e.Now() != 10 {
		t.Fatalf("Now = %v after RunAll, want 10 (last event, not Infinity)", e.Now())
	}
}

// TestRunBeforeStrictHorizon: RunBefore fires strictly-earlier events
// only and leaves the clock on the last fired event.
func TestRunBeforeStrictHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, ts := range []Time{1, 2, 3} {
		ts := ts
		e.Schedule(ts, func() { fired = append(fired, ts) })
	}
	e.RunBefore(2)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("RunBefore(2) fired %v, want [1] (t=2 is excluded)", fired)
	}
	if e.Now() != 1 {
		t.Fatalf("Now = %v after RunBefore(2), want 1 (no clock advance)", e.Now())
	}
	if ts, ok := e.PeekTime(); !ok || ts != 2 {
		t.Fatalf("PeekTime = %v,%v, want 2,true", ts, ok)
	}
	e.RunAll()
	if len(fired) != 3 {
		t.Fatalf("fired %v after RunAll", fired)
	}
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime ok on drained engine")
	}
}

// TestPoolPreservesDeterminism: heavy schedule/cancel churn through the
// pool must not perturb ordering — two identical runs produce identical
// logs.
func TestPoolPreservesDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine(9)
		var log []string
		for i := 0; i < 200; i++ {
			i := i
			h := e.Schedule(Time(i%7)+0.25, func() { log = append(log, fmt.Sprintf("a%d", i)) })
			if i%2 == 0 {
				h.Cancel()
			}
			e.Schedule(Time(i%5)+0.5, func() { log = append(log, fmt.Sprintf("b%d", i)) })
		}
		e.RunAll()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
