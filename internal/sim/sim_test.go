package sim

import (
	"fmt"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(2.0, func() { got = append(got, 2) })
	e.Schedule(1.0, func() { got = append(got, 1) })
	e.Schedule(3.0, func() { got = append(got, 3) })
	end := e.RunAll()
	if end != 3.0 {
		t.Fatalf("end time = %v, want 3.0", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5.0, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of insertion order: %v", got)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.RunAll()
}

func TestAfterNegativePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancelEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.Schedule(1, func() { fired = true })
	h.Cancel()
	e.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	if !h.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, ts := range []Time{1, 2, 3, 4} {
		ts := ts
		e.Schedule(ts, func() { fired = append(fired, ts) })
	}
	e.Run(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	e.RunAll()
	if len(fired) != 4 {
		t.Fatalf("fired %v after RunAll, want all 4", fired)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		wake = p.Now()
	})
	e.RunAll()
	if wake != 2.5 {
		t.Fatalf("woke at %v, want 2.5", wake)
	}
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("LiveProcs = %d, want 0", n)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := NewEngine(1)
	var ts []Time
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(1)
			ts = append(ts, p.Now())
		}
	})
	e.RunAll()
	want := []Time{1, 2, 3}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("sleep times %v, want %v", ts, want)
		}
	}
}

func TestInterleavedProcsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine(7)
		var log []string
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("p%d", i)
			d := Time(i+1) * 0.5
			e.Spawn(name, func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%s@%.2f", p.Name(), p.Now()))
				}
			})
		}
		e.RunAll()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 12 {
		t.Fatalf("lengths %d vs %d, want 12", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSuspendResume(t *testing.T) {
	e := NewEngine(1)
	var order []string
	var waiter *Proc
	waiter = e.Spawn("waiter", func(p *Proc) {
		order = append(order, "wait-start")
		p.Suspend()
		order = append(order, fmt.Sprintf("resumed@%v", p.Now()))
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(3)
		waiter.Resume()
	})
	e.RunAll()
	if len(order) != 2 || order[1] != "resumed@3" {
		t.Fatalf("order = %v", order)
	}
}

func TestSpawnChild(t *testing.T) {
	e := NewEngine(1)
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Spawn("child", func(q *Proc) {
			q.Sleep(1)
			childRan = true
		})
		p.Sleep(2)
	})
	e.RunAll()
	if !childRan {
		t.Error("child did not run")
	}
}

func TestCloseReapsBlockedProcs(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", func(p *Proc) {
		p.Suspend() // never resumed
	})
	e.RunAll()
	if n := e.LiveProcs(); n != 1 {
		t.Fatalf("LiveProcs = %d, want 1 blocked", n)
	}
	names := e.BlockedProcNames()
	if len(names) != 1 || names[0] != "stuck" {
		t.Fatalf("BlockedProcNames = %v", names)
	}
	e.Close()
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("LiveProcs after Close = %d, want 0", n)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bomb", func(p *Proc) {
		p.Sleep(1)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("process panic did not propagate to Run")
		}
	}()
	e.RunAll()
}

func TestZeroSleepYields(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.RunAll()
	// a starts first, yields; b must run before a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineRandDeterministic(t *testing.T) {
	a, b := NewEngine(5), NewEngine(5)
	for i := 0; i < 10; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same-seed engines disagree")
		}
	}
	if NewEngine(1).Rand().Int63() == NewEngine(2).Rand().Int63() {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestEngineIdle(t *testing.T) {
	e := NewEngine(1)
	if !e.Idle() {
		t.Fatal("fresh engine not idle")
	}
	e.Schedule(1, func() {})
	if e.Idle() {
		t.Fatal("engine with pending event is idle")
	}
	e.RunAll()
	if !e.Idle() {
		t.Fatal("drained engine not idle")
	}
}

func TestProcIdentity(t *testing.T) {
	e := NewEngine(1)
	var p1, p2 *Proc
	p1 = e.Spawn("alpha", func(p *Proc) {
		if p != p1 || p.Name() != "alpha" || p.Engine() != e {
			t.Error("proc identity broken")
		}
	})
	p2 = e.Spawn("beta", func(p *Proc) {})
	if p1.ID() == p2.ID() {
		t.Fatal("proc ids must be unique")
	}
	e.RunAll()
}

func TestNilEventHandleCancelled(t *testing.T) {
	var h *EventHandle
	if !h.Cancelled() {
		t.Fatal("nil handle should read as cancelled")
	}
	h.Cancel() // must not panic
}
