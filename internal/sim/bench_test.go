package sim

import "testing"

// BenchmarkSchedulePop measures the core schedule→fire cycle with a
// steady heap of 64 in-flight events (one per simulated PE lane).
func BenchmarkSchedulePop(b *testing.B) {
	e := NewEngine(1)
	const lanes = 64
	remaining := b.N
	var tick func()
	tick = func() {
		remaining--
		if remaining > 0 {
			e.After(1e-6, tick)
		}
	}
	for i := 0; i < lanes && remaining > 0; i++ {
		e.After(1e-6, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
}

// BenchmarkScheduleCancel measures the condvar-timeout pattern: every
// fired event schedules a far-future guard that is cancelled on the next
// tick. Before cancel-reclaim, the dead guards accumulated in the heap
// and this benchmark degraded superlinearly with b.N.
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	var guard EventHandle
	remaining := b.N
	var tick func()
	tick = func() {
		guard.Cancel()
		guard = e.After(1e3, func() {})
		remaining--
		if remaining > 0 {
			e.After(1e-6, tick)
		}
	}
	e.After(1e-6, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
}

// BenchmarkProcHandoff measures the coroutine grant/park round-trip that
// every task execution pays.
func BenchmarkProcHandoff(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1e-6)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
}
