package sim

// Virtual-time synchronisation primitives mirroring the pthread
// mutex/condvar protocol the paper's runtime uses. All waits are FIFO,
// which keeps simulations deterministic and matches the paper's
// fairness assumptions ("the IO thread locks each wait queue one by
// one").

// Mutex is a virtual-time mutual-exclusion lock with FIFO hand-off.
// AcquireCost, when non-zero, charges that much virtual time to every
// successful acquisition (contended or not), modelling the constant cost
// of a lock operation that the paper's Projections traces show as
// "delays caused by waiting for queue locks and data block locks".
type Mutex struct {
	AcquireCost Time

	owner   *Proc
	waiters []*Proc
}

// Lock acquires m, parking p until the lock is available. Locks are
// granted in FIFO order.
func (m *Mutex) Lock(p *Proc) {
	if m.owner == p {
		panic("sim: recursive Mutex.Lock by " + p.name)
	}
	if m.owner != nil {
		m.waiters = append(m.waiters, p)
		p.park()
		if m.owner != p {
			panic("sim: mutex handoff error")
		}
	} else {
		m.owner = p
	}
	if m.AcquireCost > 0 {
		p.Sleep(m.AcquireCost)
	}
}

// TryLock acquires m if it is free and reports whether it did. It never
// parks and never charges AcquireCost on failure.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner != nil {
		return false
	}
	m.owner = p
	if m.AcquireCost > 0 {
		p.Sleep(m.AcquireCost)
	}
	return true
}

// Unlock releases m, handing it to the oldest waiter if any. Unlocking a
// mutex not held by p panics, as with sync.Mutex misuse.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: Mutex.Unlock by non-owner " + p.name)
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.owner = next
	next.Resume()
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// HeldBy reports whether p currently owns the mutex.
func (m *Mutex) HeldBy(p *Proc) bool { return m.owner == p }

// Cond is a virtual-time condition variable bound to a Mutex, mirroring
// pthread_cond_t. Waiters are woken in FIFO order.
type Cond struct {
	M       *Mutex
	waiters []*Proc
}

// NewCond returns a condition variable using m.
func NewCond(m *Mutex) *Cond { return &Cond{M: m} }

// Wait atomically releases the mutex and parks p; on wake-up it
// re-acquires the mutex before returning. As with pthreads, callers must
// re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	if c.M.owner != p {
		panic("sim: Cond.Wait without holding mutex, proc " + p.name)
	}
	c.waiters = append(c.waiters, p)
	c.M.Unlock(p)
	p.park()
	c.M.Lock(p)
}

// Signal wakes the oldest waiter, if any. The caller does not need to
// hold the mutex (matching pthreads).
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	w.Resume()
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.Resume()
	}
}

// NumWaiters returns how many processes are parked in Wait.
func (c *Cond) NumWaiters() int { return len(c.waiters) }

// Semaphore is a counting semaphore with FIFO wake-up.
type Semaphore struct {
	n       int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{n: n} }

// Acquire takes one permit, parking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.n > 0 {
		s.n--
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// Release returns one permit, waking the oldest waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		w.Resume()
		return
	}
	s.n++
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.n }

// WaitGroup waits for a collection of processes or operations to finish,
// mirroring sync.WaitGroup in virtual time.
type WaitGroup struct {
	n       int
	waiters []*Proc
}

// Add adds delta to the counter. A negative resulting counter panics.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, w := range ws {
			w.Resume()
		}
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.waiters = append(wg.waiters, p)
		p.park()
	}
}

// Pending returns the current counter value.
func (wg *WaitGroup) Pending() int { return wg.n }
