package sim

import (
	"fmt"
	"testing"
)

func TestMutexExclusion(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 8; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(1)
			inside--
			m.Unlock(p)
		})
	}
	end := e.RunAll()
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if end != 8 {
		t.Fatalf("end = %v, want 8 (serialised critical sections)", end)
	}
}

func TestMutexFIFO(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i) * 0.001) // arrive in index order
			m.Lock(p)
			order = append(order, i)
			p.Sleep(1)
			m.Unlock(p)
		})
	}
	e.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("lock grant order %v, want FIFO", order)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	var got []bool
	e.Spawn("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(2)
		m.Unlock(p)
	})
	e.Spawn("prober", func(p *Proc) {
		p.Sleep(1)
		got = append(got, m.TryLock(p)) // held -> false
		p.Sleep(2)
		got = append(got, m.TryLock(p)) // free -> true
		m.Unlock(p)
	})
	e.RunAll()
	if len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("TryLock results = %v, want [false true]", got)
	}
}

func TestMutexAcquireCost(t *testing.T) {
	e := NewEngine(1)
	m := Mutex{AcquireCost: 0.5}
	var locked Time
	e.Spawn("p", func(p *Proc) {
		m.Lock(p)
		locked = p.Now()
		m.Unlock(p)
	})
	e.RunAll()
	if locked != 0.5 {
		t.Fatalf("uncontended lock completed at %v, want 0.5", locked)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	e.Spawn("a", func(p *Proc) { m.Lock(p) })
	e.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		m.Unlock(p) // not the owner
	})
	defer func() {
		if recover() == nil {
			t.Fatal("unlock by non-owner did not panic")
		}
	}()
	e.RunAll()
}

func TestMutexRecursiveLockPanics(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	e.Spawn("a", func(p *Proc) {
		m.Lock(p)
		m.Lock(p)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("recursive lock did not panic")
		}
	}()
	e.RunAll()
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	c := NewCond(&m)
	ready := 0
	var woken []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		e.Spawn(name, func(p *Proc) {
			m.Lock(p)
			for ready == 0 {
				c.Wait(p)
			}
			ready--
			woken = append(woken, p.Name())
			m.Unlock(p)
		})
	}
	e.Spawn("signaller", func(p *Proc) {
		p.Sleep(1)
		m.Lock(p)
		ready = 1
		m.Unlock(p)
		c.Signal()
	})
	e.Run(10)
	if len(woken) != 1 || woken[0] != "w0" {
		t.Fatalf("woken = %v, want [w0] (FIFO signal)", woken)
	}
	if c.NumWaiters() != 2 {
		t.Fatalf("NumWaiters = %d, want 2", c.NumWaiters())
	}
	e.Close()
}

func TestCondBroadcast(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	c := NewCond(&m)
	start := false
	done := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			for !start {
				c.Wait(p)
			}
			done++
			m.Unlock(p)
		})
	}
	e.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		m.Lock(p)
		start = true
		m.Unlock(p)
		c.Broadcast()
	})
	e.RunAll()
	if done != 5 {
		t.Fatalf("done = %d, want 5", done)
	}
}

func TestCondWaitWithoutMutexPanics(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	c := NewCond(&m)
	e.Spawn("w", func(p *Proc) { c.Wait(p) })
	defer func() {
		if recover() == nil {
			t.Fatal("Cond.Wait without mutex did not panic")
		}
	}()
	e.RunAll()
}

func TestCondProducerConsumer(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	notEmpty := NewCond(&m)
	var queue []int
	var consumed []int
	const n = 20
	e.Spawn("consumer", func(p *Proc) {
		for len(consumed) < n {
			m.Lock(p)
			for len(queue) == 0 {
				notEmpty.Wait(p)
			}
			v := queue[0]
			queue = queue[1:]
			m.Unlock(p)
			consumed = append(consumed, v)
			p.Sleep(0.1)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(0.05)
			m.Lock(p)
			queue = append(queue, i)
			m.Unlock(p)
			notEmpty.Signal()
		}
	})
	e.RunAll()
	if len(consumed) != n {
		t.Fatalf("consumed %d items, want %d", len(consumed), n)
	}
	for i, v := range consumed {
		if v != i {
			t.Fatalf("consumed out of order: %v", consumed)
		}
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(2)
	inside, maxIn := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > maxIn {
				maxIn = inside
			}
			p.Sleep(1)
			inside--
			s.Release()
		})
	}
	end := e.RunAll()
	if maxIn != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxIn)
	}
	if end != 3 {
		t.Fatalf("end = %v, want 3 (6 tasks, width 2)", end)
	}
	if s.Available() != 2 {
		t.Fatalf("Available = %d, want 2", s.Available())
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	var wg WaitGroup
	var doneAt Time
	wg.Add(3)
	for i := 0; i < 3; i++ {
		d := Time(i + 1)
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.RunAll()
	if doneAt != 3 {
		t.Fatalf("waiter released at %v, want 3", doneAt)
	}
	if wg.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", wg.Pending())
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative WaitGroup did not panic")
		}
	}()
	var wg WaitGroup
	wg.Done()
}
