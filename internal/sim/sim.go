// Package sim implements a deterministic discrete-event simulation engine
// with coroutine-style processes and virtual-time synchronisation
// primitives (Mutex, Cond, Semaphore, WaitGroup).
//
// The engine executes exactly one process at a time and orders
// same-timestamp events by insertion sequence, so a simulation run is a
// pure function of its inputs: re-running any experiment yields identical
// numbers. This is the substrate on which the heterogeneous-memory model
// (internal/memsim), the Charm-like runtime (internal/charm) and the
// prefetch/evict strategies (internal/core) execute.
//
// Processes are real goroutines, but control is handed off one at a time
// through channels: the engine resumes a process, the process runs until
// it parks (Sleep, lock wait, condition wait, ...) and control returns to
// the engine. No two processes ever run concurrently, so simulation state
// needs no host-level locking.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Time is a point in virtual time, in seconds. Durations are plain
// float64 seconds as well.
type Time = float64

// Infinity is a time later than any event the engine will ever execute.
const Infinity Time = math.MaxFloat64

// event is a scheduled callback. Events with equal timestamps fire in
// insertion (seq) order, which is what makes runs deterministic.
type event struct {
	t    Time
	seq  int64
	fn   func()
	dead bool // cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     Time
	seed    int64
	seq     int64
	events  eventHeap
	handoff chan struct{} // procs signal the engine here when they park or exit
	current *Proc
	procs   map[int]*Proc
	nextPID int
	rng     *rand.Rand
	failure interface{} // panic value propagated out of a process
	nlive   int         // processes spawned and not yet finished

	// quiesceHook runs whenever Run drains the event queue. With live
	// processes still parked this is the only moment a silent hang can
	// be observed, so the audit layer uses it as its watchdog: nothing
	// will ever run again unless an external Schedule arrives.
	quiesceHook func()
}

// NewEngine returns an engine with virtual time 0 and a deterministic
// random source seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		handoff: make(chan struct{}),
		procs:   make(map[int]*Proc),
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine's random source was created with, so
// a recorded run can be re-instantiated bit-for-bit (trace replay).
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule registers fn to run at absolute virtual time t. Scheduling in
// the past is an error and panics (it would break causality). The
// returned handle can cancel the event before it fires.
func (e *Engine) Schedule(t Time, fn func()) *EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &EventHandle{ev: ev}
}

// After registers fn to run d seconds from now.
func (e *Engine) After(d Time, fn func()) *EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// EventHandle allows cancelling a scheduled event.
type EventHandle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h *EventHandle) Cancel() {
	if h != nil && h.ev != nil {
		h.ev.dead = true
	}
}

// Cancelled reports whether the event was cancelled before firing.
func (h *EventHandle) Cancelled() bool { return h == nil || h.ev == nil || h.ev.dead }

// Spawn creates a process executing body and schedules it to start at the
// current virtual time. The returned Proc is also passed to body.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		id:     e.nextPID,
		name:   name,
		resume: make(chan struct{}),
	}
	e.nextPID++
	e.procs[p.id] = p
	e.nlive++
	go func() {
		defer func() {
			p.done = true
			e.nlive--
			delete(e.procs, p.id)
			if r := recover(); r != nil && r != errKilled {
				e.failure = procPanic{proc: p.name, value: r}
			}
			e.handoff <- struct{}{}
		}()
		<-p.resume // wait for the engine's first grant
		if p.killed {
			panic(errKilled)
		}
		body(p)
	}()
	e.Schedule(e.now, func() { e.grant(p) })
	return p
}

// procPanic wraps a panic raised inside a process so Run can re-panic
// with attribution.
type procPanic struct {
	proc  string
	value interface{}
}

func (pp procPanic) String() string {
	return fmt.Sprintf("sim: process %q panicked: %v", pp.proc, pp.value)
}

// grant hands control to p and blocks until p parks or exits. It must
// only be called from the engine loop (inside an event callback).
func (e *Engine) grant(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.waking = false
	p.resume <- struct{}{}
	<-e.handoff
	e.current = prev
	if e.failure != nil {
		f := e.failure.(procPanic)
		e.failure = nil
		panic(f.String())
	}
}

// wake schedules p to resume at the current time. It is idempotent while
// the wake is pending: waking an already-waking process is a no-op, which
// lets Signal/Broadcast and timeouts race safely.
func (e *Engine) wake(p *Proc) {
	if p.done || p.waking {
		return
	}
	p.waking = true
	e.Schedule(e.now, func() { e.grant(p) })
}

// WakeAt schedules p to resume at absolute time t (used for timeouts).
func (e *Engine) wakeAt(t Time, p *Proc) *EventHandle {
	return e.Schedule(t, func() {
		if p.done || p.waking {
			return
		}
		p.waking = true
		e.grant(p)
	})
}

// SetQuiesceHook registers fn to run each time Run drains the event
// queue (including at normal completion). The hook must not schedule
// new events; it is a read-only observation point for deadlock and
// invariant diagnostics.
func (e *Engine) SetQuiesceHook(fn func()) { e.quiesceHook = fn }

// Run executes events until the event queue is empty or the virtual
// clock would pass until. It returns the virtual time at which it
// stopped. Processes still blocked when the queue drains are left parked
// (a subsequent Schedule/wake can revive them); call Close to reap them.
func (e *Engine) Run(until Time) Time {
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.t > until {
			break
		}
		heap.Pop(&e.events)
		if ev.dead {
			continue
		}
		if ev.t < e.now {
			panic("sim: event time went backwards")
		}
		e.now = ev.t
		ev.fn()
	}
	if len(e.events) == 0 && e.quiesceHook != nil {
		e.quiesceHook()
	}
	return e.now
}

// RunAll executes events until the queue is empty.
func (e *Engine) RunAll() Time { return e.Run(Infinity) }

// Idle reports whether no events are pending.
func (e *Engine) Idle() bool { return len(e.events) == 0 }

// LiveProcs returns the number of processes that have been spawned and
// have not finished. After RunAll, a non-zero value with an empty event
// queue indicates blocked (potentially deadlocked) processes.
func (e *Engine) LiveProcs() int { return e.nlive }

// BlockedProcNames returns the names of processes that are still alive
// (parked) — useful in deadlock diagnostics and tests.
func (e *Engine) BlockedProcNames() []string {
	names := make([]string, 0, len(e.procs))
	for _, p := range e.procs {
		if !p.done {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Close kills all still-parked processes so their goroutines exit. The
// engine must not be used afterwards. Victims die in id (spawn) order
// so teardown is as deterministic as the run itself.
func (e *Engine) Close() {
	for {
		ids := make([]int, 0, len(e.procs))
		for id := range e.procs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var victim *Proc
		for _, id := range ids {
			if p := e.procs[id]; !p.done {
				victim = p
				break
			}
		}
		if victim == nil {
			return
		}
		victim.killed = true
		victim.resume <- struct{}{}
		<-e.handoff
	}
}
