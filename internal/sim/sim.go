// Package sim implements a deterministic discrete-event simulation engine
// with coroutine-style processes and virtual-time synchronisation
// primitives (Mutex, Cond, Semaphore, WaitGroup).
//
// The engine executes exactly one process at a time and orders
// same-timestamp events by insertion sequence, so a simulation run is a
// pure function of its inputs: re-running any experiment yields identical
// numbers. This is the substrate on which the heterogeneous-memory model
// (internal/memsim), the Charm-like runtime (internal/charm) and the
// prefetch/evict strategies (internal/core) execute.
//
// Processes are real goroutines, but control is handed off one at a time
// through channels: the engine resumes a process, the process runs until
// it parks (Sleep, lock wait, condition wait, ...) and control returns to
// the engine. No two processes ever run concurrently, so simulation state
// needs no host-level locking.
//
// The hot path is allocation-free at steady state: fired and cancelled
// events return to a free list and are reused by later Schedule calls
// (generation counters keep stale handles harmless), the event heap is
// intrusive (each event knows its own heap slot, so Cancel removes it in
// O(log n) instead of leaving a dead entry behind), and processes live in
// a dense slice indexed by pid rather than a map.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Time is a point in virtual time, in seconds. Durations are plain
// float64 seconds as well.
type Time = float64

// Infinity is a time later than any event the engine will ever execute.
const Infinity Time = math.MaxFloat64

// event is a scheduled callback. Events with equal timestamps fire in
// insertion (seq) order, which is what makes runs deterministic. Event
// objects are pooled: gen increments each time the object is released
// (fired or cancelled), invalidating any EventHandle minted for a
// previous incarnation; idx is the object's current slot in the heap
// (-1 when not queued), maintained by every sift so cancellation can
// remove the entry directly.
type event struct {
	t   Time
	seq int64
	fn  func()
	idx int
	gen uint64
}

// eventHeap is a binary min-heap ordered by (t, seq). The sift routines
// are hand-rolled (rather than container/heap) so they can maintain the
// intrusive idx field and skip interface dispatch on the hot path.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if p.t < ev.t || (p.t == ev.t && p.seq < ev.seq) {
			break
		}
		h[i] = p
		p.idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

func (h eventHeap) down(i int) {
	n := len(h)
	ev := h[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		c := h[child]
		if ev.t < c.t || (ev.t == c.t && ev.seq < c.seq) {
			break
		}
		h[i] = c
		c.idx = i
		i = child
	}
	h[i] = ev
	ev.idx = i
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	ev.idx = len(*h) - 1
	h.up(ev.idx)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() *event {
	old := *h
	n := len(old)
	ev := old[0]
	last := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		old[0] = last
		(*h).down(0)
	}
	ev.idx = -1
	return ev
}

// remove deletes the event at slot i (used by Cancel).
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old)
	ev := old[i]
	last := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	if i < n-1 {
		old[i] = last
		(*h).down(i)
		if last.idx == i {
			(*h).up(i)
		}
	}
	ev.idx = -1
}

// EventStats counts engine activity since creation; used by the X12
// throughput benchmark and by tests asserting pool behaviour.
type EventStats struct {
	Scheduled int64 // Schedule/After calls
	Fired     int64 // events whose callback ran
	Cancelled int64 // events removed from the heap by Cancel
	Reused    int64 // Schedule calls served from the free list
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     Time
	seed    int64
	seq     int64
	events  eventHeap
	free    []*event      // released event objects awaiting reuse
	handoff chan struct{} // procs signal the engine here when they park or exit
	current *Proc
	procs   []*Proc // indexed by pid; nil once the process finishes
	rng     *rand.Rand
	failure interface{} // panic value propagated out of a process
	nlive   int         // processes spawned and not yet finished
	stats   EventStats

	// quiesceHook runs whenever Run drains the event queue. With live
	// processes still parked this is the only moment a silent hang can
	// be observed, so the audit layer uses it as its watchdog: nothing
	// will ever run again unless an external Schedule arrives.
	// RunBefore never fires it — a windowed engine that is locally idle
	// may still receive cross-engine messages at the next barrier.
	quiesceHook func()
}

// NewEngine returns an engine with virtual time 0 and a deterministic
// random source seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		handoff: make(chan struct{}),
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine's random source was created with, so
// a recorded run can be re-instantiated bit-for-bit (trace replay).
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventStats returns cumulative engine activity counters.
func (e *Engine) EventStats() EventStats { return e.stats }

// PendingEvents returns the number of events currently in the heap.
// Cancelled events leave the heap immediately, so a workload that
// schedules and cancels timeouts in a loop keeps this bounded.
func (e *Engine) PendingEvents() int { return len(e.events) }

// Schedule registers fn to run at absolute virtual time t. Scheduling in
// the past is an error and panics (it would break causality). The
// returned handle can cancel the event before it fires.
func (e *Engine) Schedule(t Time, fn func()) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.stats.Reused++
	} else {
		ev = &event{}
	}
	ev.t, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	e.stats.Scheduled++
	e.events.push(ev)
	return EventHandle{eng: e, ev: ev, gen: ev.gen}
}

// After registers fn to run d seconds from now.
func (e *Engine) After(d Time, fn func()) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// release returns an event object to the free list, invalidating all
// handles minted for its current incarnation.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// EventHandle allows cancelling a scheduled event. It is a value, not a
// pointer — Schedule mints one without allocating. The zero value reads
// as cancelled and Cancel on it is a no-op.
type EventHandle struct {
	eng       *Engine
	ev        *event
	gen       uint64
	cancelled bool
}

// Cancel prevents the event from firing and removes it from the event
// heap immediately (the object is recycled). Cancelling an already-fired
// or already-cancelled event is a no-op.
func (h *EventHandle) Cancel() {
	if h == nil || h.ev == nil || h.cancelled {
		return
	}
	h.cancelled = true
	if h.ev.gen != h.gen {
		return // already fired, cancelled elsewhere, or recycled
	}
	h.eng.events.remove(h.ev.idx)
	h.eng.stats.Cancelled++
	h.eng.release(h.ev)
}

// Cancelled reports whether Cancel was called on this handle (the nil
// and zero handles read as cancelled).
func (h *EventHandle) Cancelled() bool { return h == nil || h.ev == nil || h.cancelled }

// Spawn creates a process executing body and schedules it to start at the
// current virtual time. The returned Proc is also passed to body.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	e.nlive++
	go func() {
		defer func() {
			p.done = true
			e.nlive--
			e.procs[p.id] = nil
			if r := recover(); r != nil && r != errKilled {
				e.failure = procPanic{proc: p.name, value: r}
			}
			e.handoff <- struct{}{}
		}()
		<-p.resume // wait for the engine's first grant
		if p.killed {
			panic(errKilled)
		}
		body(p)
	}()
	e.Schedule(e.now, func() { e.grant(p) })
	return p
}

// procPanic wraps a panic raised inside a process so Run can re-panic
// with attribution.
type procPanic struct {
	proc  string
	value interface{}
}

func (pp procPanic) String() string {
	return fmt.Sprintf("sim: process %q panicked: %v", pp.proc, pp.value)
}

// grant hands control to p and blocks until p parks or exits. It must
// only be called from the engine loop (inside an event callback).
func (e *Engine) grant(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.waking = false
	p.resume <- struct{}{}
	<-e.handoff
	e.current = prev
	if e.failure != nil {
		f := e.failure.(procPanic)
		e.failure = nil
		panic(f.String())
	}
}

// wake schedules p to resume at the current time. It is idempotent while
// the wake is pending: waking an already-waking process is a no-op, which
// lets Signal/Broadcast and timeouts race safely.
func (e *Engine) wake(p *Proc) {
	if p.done || p.waking {
		return
	}
	p.waking = true
	e.Schedule(e.now, func() { e.grant(p) })
}

// WakeAt schedules p to resume at absolute time t (used for timeouts).
func (e *Engine) wakeAt(t Time, p *Proc) EventHandle {
	return e.Schedule(t, func() {
		if p.done || p.waking {
			return
		}
		p.waking = true
		e.grant(p)
	})
}

// SetQuiesceHook registers fn to run each time Run drains the event
// queue (including at normal completion). The hook must not schedule
// new events; it is a read-only observation point for deadlock and
// invariant diagnostics.
func (e *Engine) SetQuiesceHook(fn func()) { e.quiesceHook = fn }

// step fires the earliest event: pops it, advances the clock, releases
// the object for reuse and runs the callback. The object is released
// before the callback runs so the callback can recycle it immediately;
// handles to the fired incarnation are invalidated by the gen bump.
func (e *Engine) step(ev *event) {
	e.events.pop()
	if ev.t < e.now {
		panic("sim: event time went backwards")
	}
	e.now = ev.t
	fn := ev.fn
	e.release(ev)
	e.stats.Fired++
	fn()
}

// Run executes events until the event queue is empty or the virtual
// clock would pass until. It returns the virtual time at which it
// stopped. When Run stops short of a finite until — on a future event or
// a drained queue — the clock advances to until, so callers mixing
// Run(t) with After(d) measure delays from t, not from the last fired
// event. Processes still blocked when the queue drains are left parked
// (a subsequent Schedule/wake can revive them); call Close to reap them.
func (e *Engine) Run(until Time) Time {
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.t > until {
			break
		}
		e.step(ev)
	}
	if until < Infinity && e.now < until {
		e.now = until
	}
	if len(e.events) == 0 && e.quiesceHook != nil {
		e.quiesceHook()
	}
	return e.now
}

// RunBefore executes events strictly earlier than horizon and returns
// the current time (that of the last fired event; the clock is NOT
// advanced to the horizon, since a windowed caller will deliver new
// events from other engines before running the next window). It never
// fires the quiesce hook: a locally idle engine is not globally
// quiescent while barrier messages may still arrive. This is the
// building block for conservative parallel DES (internal/cluster).
func (e *Engine) RunBefore(horizon Time) Time {
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.t >= horizon {
			break
		}
		e.step(ev)
	}
	return e.now
}

// PeekTime returns the timestamp of the earliest pending event, or
// (0, false) when the queue is empty.
func (e *Engine) PeekTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].t, true
}

// RunAll executes events until the queue is empty.
func (e *Engine) RunAll() Time { return e.Run(Infinity) }

// Idle reports whether no events are pending.
func (e *Engine) Idle() bool { return len(e.events) == 0 }

// LiveProcs returns the number of processes that have been spawned and
// have not finished. After RunAll, a non-zero value with an empty event
// queue indicates blocked (potentially deadlocked) processes.
func (e *Engine) LiveProcs() int { return e.nlive }

// BlockedProcNames returns the names of processes that are still alive
// (parked) — useful in deadlock diagnostics and tests.
func (e *Engine) BlockedProcNames() []string {
	names := make([]string, 0, e.nlive)
	for _, p := range e.procs {
		if p != nil && !p.done {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Close kills all still-parked processes so their goroutines exit. The
// engine must not be used afterwards. Victims die in id (spawn) order
// so teardown is as deterministic as the run itself.
func (e *Engine) Close() {
	for {
		var victim *Proc
		for _, p := range e.procs {
			if p != nil && !p.done {
				victim = p
				break
			}
		}
		if victim == nil {
			return
		}
		victim.killed = true
		victim.resume <- struct{}{}
		<-e.handoff
	}
}
