package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickEventOrdering: for any random set of event times, events
// fire in non-decreasing time order, same-time events fire in
// insertion order, and the clock never goes backwards.
func TestQuickEventOrdering(t *testing.T) {
	check := func(rawTimes []uint16) bool {
		e := NewEngine(1)
		type fired struct {
			t   Time
			seq int
		}
		var log []fired
		for i, rt := range rawTimes {
			i := i
			ts := Time(rt) / 100
			e.Schedule(ts, func() {
				log = append(log, fired{t: e.Now(), seq: i})
			})
		}
		e.RunAll()
		if len(log) != len(rawTimes) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].t < log[i-1].t {
				return false
			}
			if log[i].t == log[i-1].t && log[i].seq < log[i-1].seq {
				return false
			}
		}
		// The firing times are exactly the scheduled times, sorted.
		want := make([]Time, len(rawTimes))
		for i, rt := range rawTimes {
			want[i] = Time(rt) / 100
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if log[i].t != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSleepAccumulates: any sequence of random sleeps in one
// process ends at exactly the sum of the sleeps.
func TestQuickSleepAccumulates(t *testing.T) {
	check := func(raw []uint8) bool {
		e := NewEngine(1)
		var want Time
		for _, r := range raw {
			want += Time(r) / 16
		}
		ok := false
		e.Spawn("sleeper", func(p *Proc) {
			for _, r := range raw {
				p.Sleep(Time(r) / 16)
			}
			ok = p.Now() == want
		})
		e.RunAll()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMutexSerialises: random lock-hold durations across random
// process counts always serialise: total time equals the sum of the
// critical sections, and the lock ends free.
func TestQuickMutexSerialises(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine(1)
		var m Mutex
		n := 1 + r.Intn(10)
		var want Time
		for i := 0; i < n; i++ {
			d := Time(1+r.Intn(100)) / 10
			want += d
			e.Spawn("w", func(p *Proc) {
				m.Lock(p)
				p.Sleep(d)
				m.Unlock(p)
			})
		}
		end := e.RunAll()
		defer e.Close()
		return end == want && !m.Locked() && e.LiveProcs() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSemaphoreWidth: with permit width w and n unit-time tasks,
// the makespan is ceil(n/w).
func TestQuickSemaphoreWidth(t *testing.T) {
	check := func(rawN, rawW uint8) bool {
		n := 1 + int(rawN)%20
		w := 1 + int(rawW)%8
		e := NewEngine(1)
		s := NewSemaphore(w)
		for i := 0; i < n; i++ {
			e.Spawn("w", func(p *Proc) {
				s.Acquire(p)
				p.Sleep(1)
				s.Release()
			})
		}
		end := e.RunAll()
		defer e.Close()
		want := Time((n + w - 1) / w)
		return end == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
