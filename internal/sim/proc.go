package sim

import "errors"

// errKilled is the sentinel panic value used to unwind a process
// goroutine when the engine is closed.
var errKilled = errors.New("sim: process killed")

// Proc is a simulation process: a coroutine that runs in virtual time.
// All Proc methods must be called from within the process's own body
// function; the engine guarantees only one process runs at a time.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan struct{}
	done   bool
	killed bool
	waking bool // a wake event for this proc is pending
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the engine-unique process id.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// park yields control to the engine and blocks until some event wakes
// this process. Callers must have arranged for a wake (timer, queue
// position, signal, ...) or the process sleeps forever.
func (p *Proc) park() {
	p.e.handoff <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// Sleep advances the process by d seconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		// Still yield: a zero sleep lets same-time events scheduled
		// earlier run first, matching a thread yield.
		p.e.wake(p)
		p.park()
		return
	}
	p.e.wakeAt(p.e.now+d, p)
	p.park()
}

// SleepUntil parks the process until absolute virtual time t. A target
// at or before the current time degenerates to a yield, so replaying a
// recorded timeline can always sleep to the next timestamp without
// checking for zero gaps.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.e.now {
		p.Yield()
		return
	}
	p.e.wakeAt(t, p)
	p.park()
}

// Yield gives other same-time events a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }

// Suspend parks the process until another process (or event callback)
// calls Resume on it. It is the low-level building block for the
// synchronisation primitives.
func (p *Proc) Suspend() { p.park() }

// Resume wakes a process parked in Suspend (or any park). Safe to call
// from event callbacks or other processes; waking an already-runnable
// process is a no-op.
func (p *Proc) Resume() { p.e.wake(p) }

// Spawn starts a child process at the current virtual time.
func (p *Proc) Spawn(name string, body func(q *Proc)) *Proc {
	return p.e.Spawn(name, body)
}
