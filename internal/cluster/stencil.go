package cluster

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/sim"
)

// StencilConfig sizes a distributed Stencil3D: every node runs the
// per-node configuration on its own subdomain and exchanges boundary
// halos with its ±1 neighbours (1-D node decomposition) at each
// iteration boundary.
type StencilConfig struct {
	PerNode kernels.StencilConfig
	Nodes   int
	// HaloBytes is the per-direction boundary surface exchanged per
	// iteration; 0 derives it as one chare block per face.
	HaloBytes int64
}

// Validate reports configuration errors.
func (c StencilConfig) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: need nodes")
	}
	if c.HaloBytes < 0 {
		return fmt.Errorf("cluster: negative halo")
	}
	return c.PerNode.Validate()
}

// halo returns the effective per-direction halo volume.
func (c StencilConfig) halo() int64 {
	if c.HaloBytes > 0 {
		return c.HaloBytes
	}
	return c.PerNode.ChareBytes()
}

// StencilResult is one distributed run's outcome.
type StencilResult struct {
	Nodes int
	// Total is the wall time of all iterations (global virtual time).
	Total sim.Time
	// AvgIter is the mean iteration time across the whole cluster.
	AvgIter sim.Time
	// NetBytes is the total halo traffic.
	NetBytes float64
	// NetMessages is the halo message count.
	NetMessages int64
}

// nodeState tracks one node's halo synchronisation for one iteration
// boundary.
type nodeState struct {
	app      *kernels.StencilApp
	resume   func()
	haloSeen int
	haloWant int
}

// RunStencil runs the distributed stencil to completion and returns
// cluster-level timings. All nodes execute the same per-node working
// set (weak scaling).
func RunStencil(c *Cluster, cfg StencilConfig) (*StencilResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(c.Nodes) != cfg.Nodes {
		return nil, fmt.Errorf("cluster: config wants %d nodes, cluster has %d", cfg.Nodes, len(c.Nodes))
	}
	states := make([]*nodeState, cfg.Nodes)

	// tryResume continues node i's next iteration once its local
	// barrier has fired AND both halos arrived.
	tryResume := func(i int) {
		st := states[i]
		if st.resume != nil && st.haloSeen >= st.haloWant {
			r := st.resume
			st.resume = nil
			st.haloSeen -= st.haloWant
			r()
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		i := i
		app, err := kernels.NewStencil(c.Nodes[i].MG, cfg.PerNode)
		if err != nil {
			return nil, err
		}
		st := &nodeState{app: app}
		// Neighbours under the 1-D node decomposition.
		var neighbours []int
		if i > 0 {
			neighbours = append(neighbours, i-1)
		}
		if i < cfg.Nodes-1 {
			neighbours = append(neighbours, i+1)
		}
		st.haloWant = len(neighbours)
		states[i] = st
		app.OnIteration = func(iter int, resume func()) {
			st.resume = resume
			// "send updated data to neighbors" across the fabric.
			for _, nb := range neighbours {
				nb := nb
				c.Send(i, nb, float64(cfg.halo()), func() {
					states[nb].haloSeen++
					tryResume(nb)
				})
			}
			tryResume(i)
		}
	}

	start := c.Eng.Now()
	for _, st := range states {
		st.app.Start()
	}
	c.Eng.RunAll()
	for i, st := range states {
		if !st.app.Done() {
			return nil, fmt.Errorf("cluster: node %d deadlocked after %d/%d iterations",
				i, len(st.app.IterEnd), cfg.PerNode.Iterations)
		}
	}
	var end sim.Time
	for _, st := range states {
		if t := st.app.IterEnd[len(st.app.IterEnd)-1]; t > end {
			end = t
		}
	}
	total := end - start
	return &StencilResult{
		Nodes:       cfg.Nodes,
		Total:       total,
		AvgIter:     total / sim.Time(cfg.PerNode.Iterations),
		NetBytes:    c.Stats.Bytes,
		NetMessages: c.Stats.Messages,
	}, nil
}
