package cluster

import (
	"testing"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

const gb = topology.GB

// smallNode is the 1/8-slice KNL used by the node-level tests.
func smallNode() topology.MachineSpec {
	s := topology.KNL7250()
	s.Cores = 8
	s.TilesL2 = 4
	s.HBMCap = 2 * gb
	s.DDRCap = 12 * gb
	s.HBMReadBW /= 8
	s.HBMWriteBW /= 8
	s.HBMTotalBW /= 8
	s.DDRReadBW /= 8
	s.DDRWriteBW /= 8
	s.DDRTotalBW /= 8
	s.MemcpyBW /= 8
	return s
}

func smallClusterCfg(nodes int, mode core.Mode) Config {
	opts := core.DefaultOptions(mode)
	opts.HBMReserve = gb / 8
	return Config{
		Nodes:  nodes,
		Spec:   smallNode(),
		NumPEs: 8,
		Opts:   opts,
		Net:    DefaultNetwork(),
	}
}

func perNodeStencil() kernels.StencilConfig {
	return kernels.StencilConfig{
		TotalBytes:    4 * gb,
		ReducedBytes:  gb / 2,
		Iterations:    3,
		Sweeps:        10,
		NumPEs:        8,
		FlopsPerByte:  1,
		GhostFraction: 0.05,
	}
}

func TestNetworkValidation(t *testing.T) {
	if err := (NetworkSpec{Latency: -1, NICBandwidth: 1}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := (NetworkSpec{Latency: 0, NICBandwidth: 0}).Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if err := DefaultNetwork().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, Spec: smallNode(), NumPEs: 1, Net: DefaultNetwork()}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad := smallNode()
	bad.Cores = 0
	if _, err := New(Config{Nodes: 1, Spec: bad, NumPEs: 1, Net: DefaultNetwork()}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSendLatencyAndBandwidth(t *testing.T) {
	c, err := New(smallClusterCfg(2, core.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var arrived sim.Time
	c.Send(0, 1, 12.5e9, func() { arrived = c.Eng.Now() }) // 1s at 12.5 GB/s
	c.Eng.RunAll()
	want := 1.0 + DefaultNetwork().Latency
	if arrived < want*0.999 || arrived > want*1.001 {
		t.Fatalf("message arrived at %v, want ~%v", arrived, want)
	}
	if c.Stats.Messages != 1 || c.Stats.Bytes != 12.5e9 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestSendLoopbackSkipsNIC(t *testing.T) {
	c, err := New(smallClusterCfg(1, core.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var arrived sim.Time = -1
	c.Send(0, 0, 1e12, func() { arrived = c.Eng.Now() })
	c.Eng.RunAll()
	if arrived != 0 {
		t.Fatalf("loopback took %v, want 0", arrived)
	}
	if c.Stats.Messages != 0 {
		t.Fatal("loopback counted as fabric traffic")
	}
}

func TestNICContention(t *testing.T) {
	// Two concurrent messages out of node 0 share its egress NIC.
	c, err := New(smallClusterCfg(3, core.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var t1, t2 sim.Time
	c.Send(0, 1, 12.5e9, func() { t1 = c.Eng.Now() })
	c.Send(0, 2, 12.5e9, func() { t2 = c.Eng.Now() })
	c.Eng.RunAll()
	// Each 1s-alone message takes ~2s sharing the 12.5 GB/s egress.
	if t1 < 1.9 || t2 < 1.9 {
		t.Fatalf("egress contention not modelled: %v %v", t1, t2)
	}
}

func TestDistributedStencilRuns(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		c, err := New(smallClusterCfg(nodes, core.MultiIO))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunStencil(c, StencilConfig{PerNode: perNodeStencil(), Nodes: nodes})
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if res.Total <= 0 || res.AvgIter <= 0 {
			t.Fatalf("%d nodes: bad timings %+v", nodes, res)
		}
		if nodes > 1 && res.NetMessages == 0 {
			t.Fatalf("%d nodes: no halo traffic", nodes)
		}
		if nodes == 1 && res.NetMessages != 0 {
			t.Fatal("single node should not use the fabric")
		}
		c.Close()
	}
}

func TestWeakScaling(t *testing.T) {
	// Weak scaling: per-node work constant, so iteration time should
	// grow only mildly with node count (halo exchange overhead).
	times := map[int]sim.Time{}
	for _, nodes := range []int{1, 4} {
		c, err := New(smallClusterCfg(nodes, core.MultiIO))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunStencil(c, StencilConfig{PerNode: perNodeStencil(), Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		times[nodes] = res.AvgIter
		c.Close()
	}
	if over := float64(times[4]) / float64(times[1]); over > 1.25 {
		t.Fatalf("weak-scaling overhead %.2fx at 4 nodes, want <= 1.25x", over)
	}
}

func TestDistributedStrategiesOrdering(t *testing.T) {
	// The node-level result survives distribution: MultiIO beats
	// Naive on every node count.
	run := func(nodes int, mode core.Mode) sim.Time {
		c, err := New(smallClusterCfg(nodes, mode))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := RunStencil(c, StencilConfig{PerNode: perNodeStencil(), Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		return res.Total
	}
	for _, nodes := range []int{2, 4} {
		naive := run(nodes, core.Baseline)
		multi := run(nodes, core.MultiIO)
		if multi >= naive {
			t.Fatalf("%d nodes: MultiIO (%v) not faster than Naive (%v)", nodes, multi, naive)
		}
	}
}

func TestDistributedDeterminism(t *testing.T) {
	run := func() sim.Time {
		c, err := New(smallClusterCfg(2, core.MultiIO))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := RunStencil(c, StencilConfig{PerNode: perNodeStencil(), Nodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.Total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic cluster run: %v vs %v", a, b)
	}
}

func TestStencilConfigValidation(t *testing.T) {
	if err := (StencilConfig{Nodes: 0, PerNode: perNodeStencil()}).Validate(); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if err := (StencilConfig{Nodes: 1, HaloBytes: -1, PerNode: perNodeStencil()}).Validate(); err == nil {
		t.Fatal("negative halo accepted")
	}
	cfg := StencilConfig{Nodes: 2, PerNode: perNodeStencil()}
	if cfg.halo() != perNodeStencil().ChareBytes() {
		t.Fatal("derived halo wrong")
	}
	cfg.HaloBytes = 42
	if cfg.halo() != 42 {
		t.Fatal("explicit halo ignored")
	}
}

func TestRunStencilNodeMismatch(t *testing.T) {
	c, err := New(smallClusterCfg(2, core.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := RunStencil(c, StencilConfig{PerNode: perNodeStencil(), Nodes: 3}); err == nil {
		t.Fatal("node mismatch accepted")
	}
}
