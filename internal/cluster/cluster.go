// Package cluster extends the node-level runtime to multi-node
// settings — the last future-work item in the paper's conclusion ("We
// will also perform comparisons ... in multi-node cluster settings").
//
// A Cluster couples several independent node instances (each with its
// own heterogeneous memory system, Charm-like runtime and OOC manager)
// on one simulation engine, connected by a network fabric. The fabric
// reuses the memsim bandwidth allocator: each node's NIC is a memsim
// node whose read side is its egress and write side its ingress, so
// concurrent messages contend for NIC bandwidth exactly like memory
// flows contend for a bus, and a message's cost is
// latency + serialisation at the max-min fair share.
package cluster

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// NetworkSpec describes the interconnect.
type NetworkSpec struct {
	// Latency is the one-way message latency (seconds).
	Latency sim.Time
	// NICBandwidth is each node's injection/ejection bandwidth in
	// bytes/second (e.g. ~12.5e9 for 100 Gb/s).
	NICBandwidth float64
}

// DefaultNetwork returns a 100 Gb/s, 1.5 µs fabric, typical of the
// Omni-Path interconnect on Stampede 2.0's KNL partition.
func DefaultNetwork() NetworkSpec {
	return NetworkSpec{Latency: 1.5e-6, NICBandwidth: 12.5e9}
}

// Validate reports configuration errors.
func (n NetworkSpec) Validate() error {
	if n.Latency < 0 || n.NICBandwidth <= 0 {
		return fmt.Errorf("cluster: invalid network spec %+v", n)
	}
	return nil
}

// Config sizes a cluster.
type Config struct {
	Nodes  int
	Spec   topology.MachineSpec
	NumPEs int // per node
	Opts   core.Options
	Params charm.Params
	Net    NetworkSpec
	Trace  bool
	Seed   int64
}

// Node is one machine of the cluster with its runtime and OOC manager.
type Node struct {
	ID     int
	Mach   *topology.Machine
	RT     *charm.Runtime
	MG     *core.Manager
	Tracer *projections.Tracer

	nic *memsim.Node
}

// Cluster is a set of nodes on one engine plus the fabric.
type Cluster struct {
	Eng   *sim.Engine
	Nodes []*Node

	net    NetworkSpec
	fabric *memsim.System

	// Stats counts fabric traffic.
	Stats struct {
		Messages int64
		Bytes    float64
	}
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	params := cfg.Params
	if params == (charm.Params{}) {
		params = charm.DefaultParams()
	}
	eng := sim.NewEngine(seed)

	// The fabric: one memsim node per NIC. Capacity is irrelevant
	// (nothing is allocated); read = egress, write = ingress.
	nicSpecs := make([]memsim.NodeSpec, cfg.Nodes)
	for i := range nicSpecs {
		nicSpecs[i] = memsim.NodeSpec{
			Name:    fmt.Sprintf("nic%d", i),
			Kind:    memsim.DDR,
			Cap:     1,
			ReadBW:  cfg.Net.NICBandwidth,
			WriteBW: cfg.Net.NICBandwidth,
			TotalBW: 2 * cfg.Net.NICBandwidth, // full duplex
		}
	}
	c := &Cluster{Eng: eng, net: cfg.Net, fabric: memsim.NewSystem(eng, nicSpecs)}

	for i := 0; i < cfg.Nodes; i++ {
		mach, err := cfg.Spec.Build(eng)
		if err != nil {
			return nil, err
		}
		var tr *projections.Tracer
		if cfg.Trace {
			tr = projections.NewTracer(eng, cfg.NumPEs)
		}
		rt := charm.NewRuntime(mach, cfg.NumPEs, params, tr)
		mg := core.NewManager(rt, cfg.Opts)
		c.Nodes = append(c.Nodes, &Node{
			ID: i, Mach: mach, RT: rt, MG: mg, Tracer: tr,
			nic: c.fabric.Node(i),
		})
	}
	return c, nil
}

// Close reaps all simulation processes.
func (c *Cluster) Close() { c.Eng.Close() }

// Send transfers bytes from node src to node dst over the fabric and
// runs deliver (an engine callback, typically an Array.Send on the
// destination runtime) when the message lands. Messages contend for
// the source's egress and the destination's ingress bandwidth.
func (c *Cluster) Send(src, dst int, bytes float64, deliver func()) {
	if src == dst {
		// Loopback skips the NIC.
		c.Eng.Schedule(c.Eng.Now(), deliver)
		return
	}
	c.Stats.Messages++
	c.Stats.Bytes += bytes
	lat := c.net.Latency
	c.Eng.After(lat, func() {
		c.fabric.StartFlow(memsim.FlowSpec{
			Bytes: bytes,
			Demands: []memsim.Demand{
				{Node: c.Nodes[src].nic, Access: memsim.Read},
				{Node: c.Nodes[dst].nic, Access: memsim.Write},
			},
			OnDone: deliver,
		})
	})
}
