package cluster

import (
	"testing"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
)

// runParallelStencil builds a fresh parallel cluster and runs the
// distributed stencil, returning the run signature.
func runParallelStencil(t *testing.T, nodes int, mode core.Mode, parallel bool) string {
	t.Helper()
	pc, err := NewParallel(smallClusterCfg(nodes, mode), parallel)
	if err != nil {
		t.Fatalf("NewParallel: %v", err)
	}
	defer pc.Close()
	res, err := RunStencilParallel(pc, StencilConfig{PerNode: perNodeStencil(), Nodes: nodes})
	if err != nil {
		t.Fatalf("RunStencilParallel(%d nodes, parallel=%v): %v", nodes, parallel, err)
	}
	return pc.Signature(res)
}

// TestParallelMatchesSerial is the acceptance gate for the conservative
// engine: goroutine-parallel window execution must be byte-identical to
// serial execution of the same windows, across node counts and modes.
func TestParallelMatchesSerial(t *testing.T) {
	for _, nodes := range []int{1, 2, 4, 8} {
		for _, mode := range []core.Mode{core.Baseline, core.MultiIO} {
			serial := runParallelStencil(t, nodes, mode, false)
			parallel := runParallelStencil(t, nodes, mode, true)
			if serial != parallel {
				t.Errorf("%d nodes, %v: serial and parallel runs diverge\n--- serial\n%s--- parallel\n%s",
					nodes, mode, serial, parallel)
			}
		}
	}
}

// TestParallelRepeatStable runs the goroutine-parallel path repeatedly;
// under -race this doubles as the data-race check on the window
// barriers and outbox handling.
func TestParallelRepeatStable(t *testing.T) {
	first := runParallelStencil(t, 4, core.MultiIO, true)
	for i := 0; i < 2; i++ {
		if again := runParallelStencil(t, 4, core.MultiIO, true); again != first {
			t.Fatalf("parallel run %d diverged\n--- first\n%s--- again\n%s", i+2, first, again)
		}
	}
}

// TestParallelSendTiming pins the store-and-forward fabric model: an
// uncontended message costs egress serialisation + latency + ingress
// serialisation.
func TestParallelSendTiming(t *testing.T) {
	cfg := smallClusterCfg(2, core.Baseline)
	pc, err := NewParallel(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	const bytes = 12.5e9 // one second of egress at the default NIC
	var arrived sim.Time
	pc.Nodes[0].Eng.Schedule(0, func() {
		pc.Send(0, 1, bytes, func() {
			arrived = pc.Nodes[1].Eng.Now()
		})
	})
	pc.Run()
	want := 1.0 + cfg.Net.Latency + 1.0 // egress + latency + ingress
	if diff := arrived - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("message arrived at %v, want ~%v", arrived, want)
	}
	if pc.Stats.Messages != 1 || pc.Stats.Bytes != bytes {
		t.Fatalf("stats = %+v", pc.Stats)
	}
}

// TestParallelLoopback: same-node sends skip the NIC and deliver at the
// current time on the local engine.
func TestParallelLoopback(t *testing.T) {
	pc, err := NewParallel(smallClusterCfg(1, core.Baseline), true)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	var at sim.Time = -1
	pc.Nodes[0].Eng.Schedule(2.5, func() {
		pc.Send(0, 0, 1e9, func() { at = pc.Nodes[0].Eng.Now() })
	})
	pc.Run()
	if at != 2.5 {
		t.Fatalf("loopback delivered at %v, want 2.5", at)
	}
	if pc.Stats.Messages != 0 {
		t.Fatalf("loopback counted as fabric traffic: %+v", pc.Stats)
	}
}

// TestParallelNeedsPositiveLatency: zero lookahead admits no window.
func TestParallelNeedsPositiveLatency(t *testing.T) {
	cfg := smallClusterCfg(2, core.Baseline)
	cfg.Net.Latency = 0
	if _, err := NewParallel(cfg, true); err == nil {
		t.Fatal("zero-latency parallel cluster accepted")
	}
}
