package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// Conservative parallel DES for the cluster path.
//
// The single-engine Cluster interleaves every node's events in one
// queue; at scale the engine itself becomes the bottleneck, and one
// queue cannot use more than one host core. PCluster gives every node
// its own sim.Engine and runs them in synchronized windows:
//
//	window k executes, on every node, all events with t < horizon_k,
//	where horizon_k = (earliest pending event across nodes) + L
//
// and L is the inter-node message latency — the classic conservative
// lookahead (Chandy/Misra/Bryant): a message created by an event at
// t1 >= T_min cannot be delivered before t1 + L >= T_min + L =
// horizon_k, so no event inside the window can affect another node
// within the same window. Engines share no state; cross-node messages
// buffer in per-node outboxes and are merged at the barrier in a
// deterministic (deliver-time, source, sequence) order. Serial and
// parallel execution of the windows are therefore byte-identical —
// hmlint's determinism analyzer and the serial-vs-parallel tests in
// parallel_test.go guard this.
//
// The fabric model differs from the single-engine Cluster's: a
// coupled max-min flow over source egress and destination ingress
// cannot be decomposed across engines, so PCluster is store-and-forward
// — a message serialises through its source NIC (egress flows on the
// source engine contend), travels for L, then serialises through the
// destination NIC (ingress flows on the destination engine contend).
// Uncontended cost is 2*bytes/BW + L instead of bytes/BW + L.
type PCluster struct {
	Nodes []*PNode

	net      NetworkSpec
	parallel bool

	// Stats aggregates fabric traffic and coordinator activity; valid
	// after Run (per-node counters are summed at the barrier).
	Stats struct {
		Messages int64
		Bytes    float64
		Windows  int64
	}
}

// PNode is one machine of a parallel cluster: a full node stack on its
// own engine plus a single-node memsim system acting as its NIC.
type PNode struct {
	ID     int
	Eng    *sim.Engine
	Mach   *topology.Machine
	RT     *charm.Runtime
	MG     *core.Manager
	Tracer *projections.Tracer

	nic     *memsim.System
	nicNode *memsim.Node

	outbox []pmsg
	msgSeq int64

	messages int64
	bytes    float64
}

// pmsg is a cross-node message parked in its source node's outbox
// between egress completion and the next barrier.
type pmsg struct {
	src, dst  int
	bytes     float64
	deliverAt sim.Time
	seq       int64 // per-source sequence, for deterministic merge order
	deliver   func()
}

// NewParallel builds a per-node-engine cluster. parallel selects
// whether windows run on goroutines (one per node) or sequentially;
// both produce byte-identical results. The network latency must be
// positive — it is the conservative lookahead, and a zero lookahead
// admits no parallel window.
func NewParallel(cfg Config, parallel bool) (*PCluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Net.Latency <= 0 {
		return nil, fmt.Errorf("cluster: parallel cluster needs positive network latency (the lookahead)")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	params := cfg.Params
	if params == (charm.Params{}) {
		params = charm.DefaultParams()
	}
	pc := &PCluster{net: cfg.Net, parallel: parallel}
	for i := 0; i < cfg.Nodes; i++ {
		eng := sim.NewEngine(seed + int64(i))
		mach, err := cfg.Spec.Build(eng)
		if err != nil {
			return nil, err
		}
		var tr *projections.Tracer
		if cfg.Trace {
			tr = projections.NewTracer(eng, cfg.NumPEs)
		}
		rt := charm.NewRuntime(mach, cfg.NumPEs, params, tr)
		mg := core.NewManager(rt, cfg.Opts)
		nic := memsim.NewSystem(eng, []memsim.NodeSpec{{
			Name:    fmt.Sprintf("nic%d", i),
			Kind:    memsim.DDR,
			Cap:     1,
			ReadBW:  cfg.Net.NICBandwidth,
			WriteBW: cfg.Net.NICBandwidth,
			TotalBW: 2 * cfg.Net.NICBandwidth, // full duplex
		}})
		pc.Nodes = append(pc.Nodes, &PNode{
			ID: i, Eng: eng, Mach: mach, RT: rt, MG: mg, Tracer: tr,
			//hmlint:ignore tierchain the NIC system is a single-node bandwidth model built three lines up, not a tier chain; node 0 is its only node by construction
			nic: nic, nicNode: nic.Node(0),
		})
	}
	return pc, nil
}

// Close reaps all simulation processes on every node engine.
func (pc *PCluster) Close() {
	for _, nd := range pc.Nodes {
		nd.Eng.Close()
	}
}

// Send transfers bytes from node src to node dst and runs deliver on
// dst's engine when the message lands. Must be called from src's
// engine context (an event callback or process on that engine). The
// message serialises through src's egress NIC, waits in src's outbox
// until the window barrier, then serialises through dst's ingress NIC
// starting at egress-end + latency.
func (pc *PCluster) Send(src, dst int, bytes float64, deliver func()) {
	sn := pc.Nodes[src]
	if src == dst {
		// Loopback skips the NIC.
		sn.Eng.Schedule(sn.Eng.Now(), deliver)
		return
	}
	sn.messages++
	sn.bytes += bytes
	lat := pc.net.Latency
	sn.nic.StartFlow(memsim.FlowSpec{
		Bytes:   bytes,
		Demands: []memsim.Demand{{Node: sn.nicNode, Access: memsim.Read}},
		OnDone: func() {
			sn.outbox = append(sn.outbox, pmsg{
				src: src, dst: dst, bytes: bytes,
				deliverAt: sn.Eng.Now() + lat,
				seq:       sn.msgSeq,
				deliver:   deliver,
			})
			sn.msgSeq++
		},
	})
}

// ingress schedules the arrival half of m on its destination engine:
// an ingress flow starting at deliverAt whose completion runs the
// deliver callback.
func (pc *PCluster) ingress(m pmsg) {
	dn := pc.Nodes[m.dst]
	deliver := m.deliver
	bytes := m.bytes
	dn.Eng.Schedule(m.deliverAt, func() {
		dn.nic.StartFlow(memsim.FlowSpec{
			Bytes:   bytes,
			Demands: []memsim.Demand{{Node: dn.nicNode, Access: memsim.Write}},
			OnDone:  deliver,
		})
	})
}

// Run executes all node engines to global quiescence using
// conservative windows. It returns the largest node-local virtual time
// reached. Safe to call once per cluster; node processes left parked
// afterwards are reaped by Close.
func (pc *PCluster) Run() sim.Time {
	var wg sync.WaitGroup
	var batch []pmsg
	for {
		tmin := sim.Infinity
		for _, nd := range pc.Nodes {
			if t, ok := nd.Eng.PeekTime(); ok && t < tmin {
				tmin = t
			}
		}
		if tmin == sim.Infinity {
			break
		}
		horizon := tmin + pc.net.Latency
		if pc.parallel && len(pc.Nodes) > 1 {
			for _, nd := range pc.Nodes {
				nd := nd
				wg.Add(1)
				go func() {
					defer wg.Done()
					nd.Eng.RunBefore(horizon)
				}()
			}
			wg.Wait()
		} else {
			for _, nd := range pc.Nodes {
				nd.Eng.RunBefore(horizon)
			}
		}
		pc.Stats.Windows++

		// Barrier: merge every node's outbox in deterministic order
		// and materialise the arrivals on the destination engines.
		// deliverAt >= horizon for every message (egress completed at
		// t1 >= tmin, so t1+L >= horizon > every engine's clock) —
		// scheduling can never be in an engine's past.
		batch = batch[:0]
		for _, nd := range pc.Nodes {
			batch = append(batch, nd.outbox...)
			nd.outbox = nd.outbox[:0]
		}
		sort.Slice(batch, func(a, b int) bool {
			if batch[a].deliverAt != batch[b].deliverAt {
				return batch[a].deliverAt < batch[b].deliverAt
			}
			if batch[a].src != batch[b].src {
				return batch[a].src < batch[b].src
			}
			return batch[a].seq < batch[b].seq
		})
		for _, m := range batch {
			pc.ingress(m)
		}
	}
	var end sim.Time
	for _, nd := range pc.Nodes {
		pc.Stats.Messages += nd.messages
		pc.Stats.Bytes += nd.bytes
		nd.messages, nd.bytes = 0, 0
		if t := nd.Eng.Now(); t > end {
			end = t
		}
	}
	return end
}

// Signature renders everything observable about a finished run into a
// string: per-node scheduler and manager counters, final clocks and
// engine event counts, plus the cluster-level result. Two runs are
// byte-identical iff their signatures are equal — the determinism tests
// and X12's serial-vs-parallel check both compare these.
func (pc *PCluster) Signature(res *StencilResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "result=%+v\nstats=%+v\n", *res, pc.Stats)
	for _, nd := range pc.Nodes {
		st := nd.Eng.EventStats()
		fmt.Fprintf(&b, "node%d now=%.12e fired=%d sched=%d tasks=%d msgs=%d fetches=%d evictions=%d bytesF=%d bytesE=%d\n",
			nd.ID, nd.Eng.Now(), st.Fired, st.Scheduled,
			nd.RT.Stats.TasksExecuted, nd.RT.Stats.MessagesSent,
			nd.MG.Stats.Fetches, nd.MG.Stats.Evictions,
			nd.MG.Stats.BytesFetched, nd.MG.Stats.BytesEvicted)
	}
	return b.String()
}

// RunStencilParallel runs the distributed stencil of RunStencil on a
// parallel cluster. The halo-exchange wiring is identical; only the
// fabric and engine substrate differ. Node i's state is touched solely
// by events on node i's engine, which is what makes the windows safe.
func RunStencilParallel(pc *PCluster, cfg StencilConfig) (*StencilResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pc.Nodes) != cfg.Nodes {
		return nil, fmt.Errorf("cluster: config wants %d nodes, cluster has %d", cfg.Nodes, len(pc.Nodes))
	}
	states := make([]*nodeState, cfg.Nodes)

	tryResume := func(i int) {
		st := states[i]
		if st.resume != nil && st.haloSeen >= st.haloWant {
			r := st.resume
			st.resume = nil
			st.haloSeen -= st.haloWant
			r()
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		i := i
		app, err := kernels.NewStencil(pc.Nodes[i].MG, cfg.PerNode)
		if err != nil {
			return nil, err
		}
		st := &nodeState{app: app}
		var neighbours []int
		if i > 0 {
			neighbours = append(neighbours, i-1)
		}
		if i < cfg.Nodes-1 {
			neighbours = append(neighbours, i+1)
		}
		st.haloWant = len(neighbours)
		states[i] = st
		app.OnIteration = func(iter int, resume func()) {
			st.resume = resume
			for _, nb := range neighbours {
				nb := nb
				pc.Send(i, nb, float64(cfg.halo()), func() {
					states[nb].haloSeen++
					tryResume(nb)
				})
			}
			tryResume(i)
		}
	}

	for _, st := range states {
		st.app.Start()
	}
	pc.Run()
	for i, st := range states {
		if !st.app.Done() {
			return nil, fmt.Errorf("cluster: node %d deadlocked after %d/%d iterations",
				i, len(st.app.IterEnd), cfg.PerNode.Iterations)
		}
	}
	var end sim.Time
	for _, st := range states {
		if t := st.app.IterEnd[len(st.app.IterEnd)-1]; t > end {
			end = t
		}
	}
	return &StencilResult{
		Nodes:       cfg.Nodes,
		Total:       end,
		AvgIter:     end / sim.Time(cfg.PerNode.Iterations),
		NetBytes:    pc.Stats.Bytes,
		NetMessages: pc.Stats.Messages,
	}, nil
}
