// Package projections is a performance-tracing facility modelled on the
// Charm++ Projections tool the paper uses for Figures 5 and 6. Runtime
// components record typed activity spans per PE; the package produces
// per-category summaries, ASCII timelines and JSON dumps, which is how
// the reproduction renders the paper's "red = wait/overhead" timeline
// comparisons.
package projections

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/hetmem/hetmem/internal/sim"
)

// Category classifies what a PE (or IO thread) is doing during a span.
type Category int

const (
	// Compute is application kernel execution (white/useful in
	// Projections).
	Compute Category = iota
	// Fetch is data prefetch from far memory into HBM.
	Fetch
	// Evict is data eviction from HBM back to far memory.
	Evict
	// LockWait is time blocked acquiring queue or data-block locks.
	LockWait
	// IdleWait is time with no runnable task (the dominant "red" in
	// the paper's single-IO-thread timeline).
	IdleWait
	// Overhead is scheduling/pre/post-processing bookkeeping.
	Overhead
	// Comm is communication (ghost exchange message handling).
	Comm

	numCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Compute:
		return "compute"
	case Fetch:
		return "fetch"
	case Evict:
		return "evict"
	case LockWait:
		return "lockwait"
	case IdleWait:
		return "idle"
	case Overhead:
		return "overhead"
	case Comm:
		return "comm"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// glyph is the timeline character for the category.
func (c Category) glyph() byte {
	switch c {
	case Compute:
		return '#'
	case Fetch:
		return 'f'
	case Evict:
		return 'e'
	case LockWait:
		return 'L'
	case IdleWait:
		return '.'
	case Overhead:
		return 'o'
	case Comm:
		return 'c'
	default:
		return '?'
	}
}

// Categories lists all categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Span is one recorded activity interval on a PE lane.
type Span struct {
	PE    int      `json:"pe"`
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
	Cat   Category `json:"category"`
	Label string   `json:"label,omitempty"`
}

// Duration returns the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Tracer collects spans. A nil *Tracer is valid and drops everything,
// so runtime code can trace unconditionally.
type Tracer struct {
	eng   *sim.Engine
	lanes int
	spans []Span
}

// NewTracer returns a tracer for lanes PE lanes on engine e.
func NewTracer(e *sim.Engine, lanes int) *Tracer {
	return &Tracer{eng: e, lanes: lanes}
}

// Lanes returns the number of PE lanes.
func (t *Tracer) Lanes() int {
	if t == nil {
		return 0
	}
	return t.lanes
}

// Add records a completed span. Zero-length spans are dropped.
func (t *Tracer) Add(pe int, start, end sim.Time, cat Category, label string) {
	if t == nil || end <= start {
		return
	}
	if pe >= t.lanes {
		t.lanes = pe + 1
	}
	t.spans = append(t.spans, Span{PE: pe, Start: start, End: end, Cat: cat, Label: label})
}

// Begin opens a span at the current virtual time and returns a closure
// that closes it. Usage: defer t.Begin(pe, projections.Compute, "kern")().
func (t *Tracer) Begin(pe int, cat Category, label string) func() {
	if t == nil {
		return func() {}
	}
	start := t.eng.Now()
	return func() { t.Add(pe, start, t.eng.Now(), cat, label) }
}

// Spans returns a copy of all recorded spans in recording order. The
// copy matters: Reset truncates the backing array in place, so an
// aliased return would be silently overwritten by post-Reset spans.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return append([]Span(nil), t.spans...)
}

// Reset discards all recorded spans (e.g. after warm-up iterations).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.spans = t.spans[:0]
}

// Summary aggregates span time by category, per PE and in total.
type Summary struct {
	Start, End sim.Time
	PerPE      []map[Category]sim.Time
	Totals     map[Category]sim.Time
}

// Summarize computes a Summary over all recorded spans.
func (t *Tracer) Summarize() Summary {
	s := Summary{Totals: make(map[Category]sim.Time)}
	if t == nil || len(t.spans) == 0 {
		return s
	}
	s.Start, s.End = t.spans[0].Start, t.spans[0].End
	s.PerPE = make([]map[Category]sim.Time, t.lanes)
	for i := range s.PerPE {
		s.PerPE[i] = make(map[Category]sim.Time)
	}
	for _, sp := range t.spans {
		if sp.Start < s.Start {
			s.Start = sp.Start
		}
		if sp.End > s.End {
			s.End = sp.End
		}
		d := sp.Duration()
		s.Totals[sp.Cat] += d
		s.PerPE[sp.PE][sp.Cat] += d
	}
	return s
}

// Wall returns the wall-clock extent of the summary.
func (s Summary) Wall() sim.Time { return s.End - s.Start }

// Fraction returns category time as a fraction of total PE-time
// (lanes x wall clock).
func (s Summary) Fraction(c Category, lanes int) float64 {
	w := s.Wall() * sim.Time(lanes)
	if w <= 0 {
		return 0
	}
	return s.Totals[c] / w
}

// Utilization is the Compute fraction of total PE-time: the quantity
// the paper's Projections timelines visualise (non-red share).
func (s Summary) Utilization(lanes int) float64 { return s.Fraction(Compute, lanes) }

// OverheadShare sums the non-compute, non-comm categories (the "red"):
// fetch + evict + lockwait + idle + overhead.
func (s Summary) OverheadShare(lanes int) float64 {
	return s.Fraction(Fetch, lanes) + s.Fraction(Evict, lanes) +
		s.Fraction(LockWait, lanes) + s.Fraction(IdleWait, lanes) +
		s.Fraction(Overhead, lanes)
}

// Table renders the summary as an aligned text table, one row per
// category with absolute seconds and percentage of PE-time.
func (s Summary) Table(lanes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %8s\n", "category", "pe-seconds", "share")
	for _, c := range Categories() {
		if s.Totals[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %12.4f %7.2f%%\n", c, s.Totals[c], 100*s.Fraction(c, lanes))
	}
	fmt.Fprintf(&b, "%-10s %12.4f\n", "wallclock", s.Wall())
	return b.String()
}

// Timeline renders an ASCII timeline, one row per PE lane and width
// character bins across [Start, End]. Each bin shows the glyph of the
// category with the most time in that bin; empty bins print '-'.
func (t *Tracer) Timeline(width int) string {
	if t == nil || len(t.spans) == 0 || width <= 0 {
		return ""
	}
	s := t.Summarize()
	span := s.Wall()
	if span <= 0 {
		return ""
	}
	binDur := span / sim.Time(width)
	// weights[pe][bin][cat]
	weights := make([][][numCategories]sim.Time, t.lanes)
	for i := range weights {
		weights[i] = make([][numCategories]sim.Time, width)
	}
	for _, sp := range t.spans {
		b0 := int((sp.Start - s.Start) / binDur)
		b1 := int((sp.End - s.Start) / binDur)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			lo := s.Start + sim.Time(b)*binDur
			hi := lo + binDur
			if sp.Start > lo {
				lo = sp.Start
			}
			if sp.End < hi {
				hi = sp.End
			}
			if hi > lo {
				weights[sp.PE][b][sp.Cat] += hi - lo
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=[%.4fs .. %.4fs], %d bins of %.5fs\n", s.Start, s.End, width, binDur)
	for pe := 0; pe < t.lanes; pe++ {
		fmt.Fprintf(&b, "PE%3d |", pe)
		for bin := 0; bin < width; bin++ {
			best, bestW := byte('-'), sim.Time(0)
			for c := 0; c < int(numCategories); c++ {
				if w := weights[pe][bin][c]; w > bestW {
					bestW = w
					best = Category(c).glyph()
				}
			}
			b.WriteByte(best)
		}
		b.WriteString("|\n")
	}
	b.WriteString("legend: #=compute f=fetch e=evict L=lockwait .=idle o=overhead c=comm -=empty\n")
	return b.String()
}

// WriteJSON dumps all spans as a JSON array (Projections log export).
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].PE < sorted[j].PE
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}

// CategoryJSON round-trips Category through its name for readability.
func (c Category) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON parses a category name.
func (c *Category) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for _, cand := range Categories() {
		if cand.String() == s {
			*c = cand
			return nil
		}
	}
	return fmt.Errorf("projections: unknown category %q", s)
}
