package projections

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/hetmem/hetmem/internal/sim"
)

// spanSet is a random batch of spans for property tests.
type spanSet struct{ spans []Span }

// Generate implements quick.Generator.
func (spanSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(40)
	s := spanSet{}
	for i := 0; i < n; i++ {
		start := sim.Time(r.Intn(1000)) / 10
		s.spans = append(s.spans, Span{
			PE:    r.Intn(6),
			Start: start,
			End:   start + sim.Time(1+r.Intn(100))/10,
			Cat:   Category(r.Intn(int(numCategories))),
		})
	}
	return reflect.ValueOf(s)
}

// TestQuickSummarizeConservation: the summary's per-category totals
// equal the sum of the recorded span durations, the per-PE totals sum
// to the grand totals, and the window covers every span.
func TestQuickSummarizeConservation(t *testing.T) {
	check := func(set spanSet) bool {
		e := sim.NewEngine(1)
		tr := NewTracer(e, 1)
		want := make(map[Category]sim.Time)
		for _, sp := range set.spans {
			tr.Add(sp.PE, sp.Start, sp.End, sp.Cat, "")
			want[sp.Cat] += sp.End - sp.Start
		}
		sum := tr.Summarize()
		for c, w := range want {
			if diff := sum.Totals[c] - w; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		perPE := make(map[Category]sim.Time)
		for _, m := range sum.PerPE {
			for c, v := range m {
				perPE[c] += v
			}
		}
		for c, w := range sum.Totals {
			if diff := perPE[c] - w; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		for _, sp := range set.spans {
			if sp.Start < sum.Start || sp.End > sum.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFractionsBounded: every category fraction lies in [0,1]
// when spans do not overlap within a lane, and utilization plus
// non-compute categories never exceed the number of lanes.
func TestQuickFractionsBounded(t *testing.T) {
	check := func(raw []uint8) bool {
		e := sim.NewEngine(1)
		tr := NewTracer(e, 1)
		// Build non-overlapping spans per lane.
		var cursor [4]sim.Time
		for i, r := range raw {
			lane := i % 4
			d := sim.Time(1+int(r)%50) / 10
			tr.Add(lane, cursor[lane], cursor[lane]+d, Category(int(r)%int(numCategories)), "")
			cursor[lane] += d
		}
		sum := tr.Summarize()
		lanes := tr.Lanes()
		if lanes == 0 {
			return true
		}
		var total float64
		for _, c := range Categories() {
			f := sum.Fraction(c, lanes)
			if f < 0 || f > 1+1e-9 {
				return false
			}
			total += f
		}
		return total <= 1+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
