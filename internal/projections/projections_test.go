package projections

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/sim"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Add(0, 0, 1, Compute, "x")
	end := tr.Begin(0, Compute, "x")
	end()
	if tr.Spans() != nil || tr.Lanes() != 0 {
		t.Fatal("nil tracer should drop everything")
	}
	tr.Reset()
	s := tr.Summarize()
	if s.Wall() != 0 {
		t.Fatal("nil tracer summary should be empty")
	}
	if tr.Timeline(10) != "" {
		t.Fatal("nil tracer timeline should be empty")
	}
}

func TestAddAndSummarize(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 2)
	tr.Add(0, 0, 2, Compute, "k")
	tr.Add(0, 2, 3, Fetch, "f")
	tr.Add(1, 0, 1, IdleWait, "")
	tr.Add(1, 1, 3, Compute, "k")
	s := tr.Summarize()
	if s.Wall() != 3 {
		t.Fatalf("wall = %v, want 3", s.Wall())
	}
	if s.Totals[Compute] != 4 || s.Totals[Fetch] != 1 || s.Totals[IdleWait] != 1 {
		t.Fatalf("totals = %v", s.Totals)
	}
	if s.PerPE[0][Compute] != 2 || s.PerPE[1][Compute] != 2 {
		t.Fatal("per-PE totals wrong")
	}
	// Utilization: 4 compute seconds of 2 lanes x 3 s = 6.
	if got := s.Utilization(2); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestZeroLengthSpanDropped(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 1)
	tr.Add(0, 5, 5, Compute, "")
	tr.Add(0, 5, 4, Compute, "")
	if len(tr.Spans()) != 0 {
		t.Fatal("zero/negative spans should be dropped")
	}
}

func TestBeginEnd(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 1)
	e.Spawn("p", func(p *sim.Proc) {
		end := tr.Begin(0, Compute, "kernel")
		p.Sleep(2.5)
		end()
	})
	e.RunAll()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Duration() != 2.5 || spans[0].Cat != Compute {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestLaneGrowth(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 1)
	tr.Add(5, 0, 1, Compute, "")
	if tr.Lanes() != 6 {
		t.Fatalf("lanes = %d, want 6", tr.Lanes())
	}
}

func TestOverheadShare(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 1)
	tr.Add(0, 0, 1, Compute, "")
	tr.Add(0, 1, 2, Fetch, "")
	tr.Add(0, 2, 3, LockWait, "")
	tr.Add(0, 3, 4, IdleWait, "")
	s := tr.Summarize()
	if got := s.OverheadShare(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("overhead share = %v, want 0.75", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 2)
	tr.Add(0, 0, 5, Compute, "")
	tr.Add(0, 5, 10, Fetch, "")
	tr.Add(1, 0, 10, IdleWait, "")
	tl := tr.Timeline(10)
	if !strings.Contains(tl, "PE  0 |#####fffff|") {
		t.Fatalf("timeline PE0 unexpected:\n%s", tl)
	}
	if !strings.Contains(tl, "PE  1 |..........|") {
		t.Fatalf("timeline PE1 unexpected:\n%s", tl)
	}
	if !strings.Contains(tl, "legend:") {
		t.Fatal("missing legend")
	}
}

func TestTimelineDominantCategory(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 1)
	// In a 1-bin timeline, compute (0.7) dominates fetch (0.3).
	tr.Add(0, 0, 0.7, Compute, "")
	tr.Add(0, 0.7, 1.0, Fetch, "")
	tl := tr.Timeline(1)
	if !strings.Contains(tl, "|#|") {
		t.Fatalf("dominant category not compute:\n%s", tl)
	}
}

func TestSummaryTable(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 1)
	tr.Add(0, 0, 1, Compute, "")
	tab := tr.Summarize().Table(1)
	if !strings.Contains(tab, "compute") || !strings.Contains(tab, "100.00%") {
		t.Fatalf("table:\n%s", tab)
	}
	if strings.Contains(tab, "fetch") {
		t.Fatal("zero categories should be omitted")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 1)
	tr.Add(0, 1, 2, Fetch, "blockA")
	tr.Add(0, 0, 1, Compute, "kern")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	if err := json.Unmarshal(buf.Bytes(), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Sorted by start time.
	if spans[0].Cat != Compute || spans[1].Cat != Fetch {
		t.Fatalf("unexpected order/categories: %+v", spans)
	}
	if spans[1].Label != "blockA" {
		t.Fatal("label lost in round trip")
	}
}

func TestCategoryJSONUnknown(t *testing.T) {
	var c Category
	if err := c.UnmarshalJSON([]byte(`"nonsense"`)); err == nil {
		t.Fatal("unknown category accepted")
	}
	if err := c.UnmarshalJSON([]byte(`"evict"`)); err != nil || c != Evict {
		t.Fatalf("evict parse: %v %v", c, err)
	}
}

func TestReset(t *testing.T) {
	e := sim.NewEngine(1)
	tr := NewTracer(e, 1)
	tr.Add(0, 0, 1, Compute, "")
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Compute: "compute", Fetch: "fetch", Evict: "evict",
		LockWait: "lockwait", IdleWait: "idle", Overhead: "overhead", Comm: "comm",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), w)
		}
	}
	if !strings.HasPrefix(Category(99).String(), "Category(") {
		t.Error("unknown category string")
	}
}
