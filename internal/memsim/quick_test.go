package memsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/hetmem/hetmem/internal/sim"
)

// flowPlan is a randomly generated workload for the bandwidth
// allocator.
type flowPlan struct {
	flows []plannedFlow
}

type plannedFlow struct {
	start sim.Time
	bytes float64
	cap   float64
	src   int // node index
	dst   int // -1 = read-only stream
}

// Generate implements quick.Generator.
func (flowPlan) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(12)
	p := flowPlan{}
	for i := 0; i < n; i++ {
		f := plannedFlow{
			start: sim.Time(r.Float64() * 0.5),
			bytes: float64(1+r.Intn(64)) * float64(1<<26), // 64MB..4GB
			cap:   0,
			src:   r.Intn(2),
			dst:   -1,
		}
		if r.Intn(2) == 0 {
			f.cap = float64(1+r.Intn(16)) * float64(1<<30) // 1..16 GB/s
		}
		if r.Intn(2) == 0 {
			f.dst = r.Intn(2)
		}
		p.flows = append(p.flows, f)
	}
	return reflect.ValueOf(p)
}

// TestQuickFlowInvariants drives random flow mixes through the
// max-min allocator and checks the physical invariants:
//
//  1. every flow completes;
//  2. no flow beats its own best-case time (its cap, or the tightest
//     resource it uses alone);
//  3. per-node byte accounting matches the flow volumes exactly.
func TestQuickFlowInvariants(t *testing.T) {
	check := func(plan flowPlan) bool {
		e := sim.NewEngine(99)
		s := NewSystem(e, []NodeSpec{
			{Name: "DDR", Kind: DDR, Cap: 1 << 40, ReadBW: 95 * float64(1<<30), WriteBW: 80 * float64(1<<30), TotalBW: 90 * float64(1<<30)},
			{Name: "HBM", Kind: HBM, Cap: 1 << 40, ReadBW: 450 * float64(1<<30), WriteBW: 385 * float64(1<<30), TotalBW: 465 * float64(1<<30)},
		})
		type outcome struct {
			dur   sim.Time
			lower sim.Time
		}
		outcomes := make([]outcome, len(plan.flows))
		var wantRead, wantWrite [2]float64
		for i, pf := range plan.flows {
			i, pf := i, pf
			src := s.Node(pf.src)
			// Best case: alone on every resource.
			best := 0.0
			demands := []Demand{{Node: src, Access: Read}}
			rate := math.Min(src.ReadBW(), src.TotalBW())
			wantRead[pf.src] += pf.bytes
			if pf.dst >= 0 {
				dst := s.Node(pf.dst)
				demands = append(demands, Demand{Node: dst, Access: Write})
				rate = math.Min(rate, math.Min(dst.WriteBW(), dst.TotalBW()))
				if pf.dst == pf.src {
					// Same-node copy crosses the bus twice.
					rate = math.Min(rate, src.TotalBW()/2)
				}
				wantWrite[pf.dst] += pf.bytes
			}
			if pf.cap > 0 {
				rate = math.Min(rate, pf.cap)
			}
			best = pf.bytes / rate
			outcomes[i].lower = sim.Time(best)
			e.Schedule(pf.start, func() {
				f := s.StartFlow(FlowSpec{Bytes: pf.bytes, Demands: demands, RateCap: pf.cap})
				start := e.Now()
				e.Spawn("w", func(p *sim.Proc) {
					f.Wait(p)
					outcomes[i].dur = p.Now() - start
				})
			})
		}
		e.RunAll()
		defer e.Close()
		if s.ActiveFlows() != 0 {
			return false
		}
		for _, o := range outcomes {
			if o.dur <= 0 {
				return false // did not complete
			}
			if o.dur < o.lower*(1-1e-9) {
				return false // faster than physics allows
			}
		}
		for n := 0; n < 2; n++ {
			if math.Abs(s.Node(n).BytesRead-wantRead[n]) > 1 {
				return false
			}
			if math.Abs(s.Node(n).BytesWritten-wantWrite[n]) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReserveRelease checks capacity accounting over random
// alloc/free sequences: usage is always within [0, Cap] and returns to
// zero.
func TestQuickReserveRelease(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(1)
		s := NewSystem(e, []NodeSpec{
			{Name: "N", Kind: HBM, Cap: 16 << 30, ReadBW: 1, WriteBW: 1},
		})
		n := s.Node(0)
		var live []int64
		for i := 0; i < 200; i++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				sz := int64(1+r.Intn(1<<20)) * 512
				if n.Reserve(sz) {
					live = append(live, sz)
				} else if n.Used()+sz <= n.Cap {
					return false // refused an allocation that fits
				}
			} else {
				k := r.Intn(len(live))
				n.Release(live[k])
				live = append(live[:k], live[k+1:]...)
			}
			if n.Used() < 0 || n.Used() > n.Cap {
				return false
			}
		}
		for _, sz := range live {
			n.Release(sz)
		}
		return n.Used() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
