// Package memsim models a node-local heterogeneous memory system: a set
// of memory nodes (HBM/MCDRAM, DDR4, optionally NVM) with individual
// capacity and read/write bandwidth, shared max-min fairly among
// concurrent flows.
//
// A Flow is a byte stream (a compute kernel streaming its working set,
// or a memcpy migrating a block between nodes) that simultaneously
// consumes one or more bandwidth resources at a single rate, optionally
// capped (e.g. by a core's maximum streaming rate). Rates are assigned
// by progressive filling (max-min fairness) and recomputed whenever a
// flow starts or finishes, so contention between prefetch traffic and
// kernel traffic — the effect the paper's overlap argument depends on —
// falls out of the model.
//
// The model runs in virtual time on a sim.Engine and is fully
// deterministic.
package memsim

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/sim"
)

// NodeKind classifies a memory node.
type NodeKind int

const (
	// DDR is high-capacity, low-bandwidth far memory (DDR4 on KNL).
	// It is the zero value, so an unset far-memory kind means DDR.
	DDR NodeKind = iota
	// HBM is high-bandwidth, low-capacity in-package memory (MCDRAM on
	// KNL).
	HBM
	// NVM is non-volatile memory: both bandwidth- and
	// latency-restricted. Included for the paper's "other kinds of
	// memory heterogeneity" extension point.
	NVM
	// Remote is a disaggregated pool reached over a network or CXL
	// link (DOLMA-style). Its TotalBW models the shared link: reads
	// and writes from every client contend for the same cap.
	Remote
)

// String returns the conventional name of the kind.
func (k NodeKind) String() string {
	switch k {
	case HBM:
		return "HBM"
	case DDR:
		return "DDR"
	case NVM:
		return "NVM"
	case Remote:
		return "Remote"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// TierRank orders kinds along the memory chain, nearest (fastest,
// smallest) first: HBM < DDR < NVM < Remote. Node lookup goes through
// this ordering rather than node IDs, so the chain position of a node
// never depends on the order specs were listed in.
func (k NodeKind) TierRank() int {
	switch k {
	case HBM:
		return 0
	case DDR:
		return 1
	case NVM:
		return 2
	case Remote:
		return 3
	default:
		panic(fmt.Sprintf("memsim: no tier rank for %v", k))
	}
}

// resource is one direction of a node's memory bandwidth. The remCap
// and users fields are scratch state for the progressive-filling rate
// allocator.
type resource struct {
	name     string
	capacity float64 // bytes/second
	remCap   float64
	users    int
	seen     bool
}

// Node is a memory node with capacity and directional bandwidth.
type Node struct {
	ID      int
	Name    string
	Kind    NodeKind
	Cap     int64 // capacity in bytes
	Latency sim.Time

	read  resource
	write resource
	// total models the shared bus: every byte read or written also
	// passes through it, so mixed read/write streams (STREAM copy,
	// kernels with write-back) cannot exceed the bus rate even when
	// the directional pools individually have headroom.
	total resource

	used int64

	// Cumulative statistics.
	BytesRead    float64
	BytesWritten float64
	AllocCount   int64
	FreeCount    int64
	FailedAllocs int64
	PeakUsed     int64
}

// NodeSpec describes a memory node to attach to a System.
type NodeSpec struct {
	Name    string
	Kind    NodeKind
	Cap     int64   // bytes
	ReadBW  float64 // bytes/second
	WriteBW float64 // bytes/second
	// TotalBW caps combined read+write traffic (the memory bus). When
	// zero it defaults to ReadBW+WriteBW, i.e. directions are
	// independent.
	TotalBW float64
	Latency sim.Time // fixed per-transfer setup latency
}

// Used returns the bytes currently allocated on the node.
func (n *Node) Used() int64 { return n.used }

// Free returns the bytes still allocatable on the node.
func (n *Node) Free() int64 { return n.Cap - n.used }

// ReadBW returns the node's aggregate read bandwidth in bytes/second.
func (n *Node) ReadBW() float64 { return n.read.capacity }

// WriteBW returns the node's aggregate write bandwidth in bytes/second.
func (n *Node) WriteBW() float64 { return n.write.capacity }

// TotalBW returns the node's bus bandwidth in bytes/second.
func (n *Node) TotalBW() float64 { return n.total.capacity }

// Reserve claims size bytes of capacity. It reports false (and records a
// failed allocation) when the node cannot hold them.
func (n *Node) Reserve(size int64) bool {
	if size < 0 {
		panic("memsim: negative allocation")
	}
	if n.used+size > n.Cap {
		n.FailedAllocs++
		return false
	}
	n.used += size
	n.AllocCount++
	if n.used > n.PeakUsed {
		n.PeakUsed = n.used
	}
	return true
}

// Release returns size bytes of capacity.
func (n *Node) Release(size int64) {
	if size < 0 {
		panic("memsim: negative free")
	}
	if n.used < size {
		panic(fmt.Sprintf("memsim: freeing %d bytes with only %d used on %s", size, n.used, n.Name))
	}
	n.used -= size
	n.FreeCount++
}

// System is the set of memory nodes plus the bandwidth allocator.
type System struct {
	e     *sim.Engine
	nodes []*Node

	flows      []*Flow // in start order; removal preserves order
	lastUpdate sim.Time
	completion sim.EventHandle
}

// NewSystem builds a memory system on e from specs. Node IDs are the
// indices into specs, matching the paper's convention (DDR4 is "memory
// node 0", HBM is "memory node 1" on flat-mode KNL).
func NewSystem(e *sim.Engine, specs []NodeSpec) *System {
	s := &System{e: e}
	for i, sp := range specs {
		if sp.Cap <= 0 || sp.ReadBW <= 0 || sp.WriteBW <= 0 {
			panic(fmt.Sprintf("memsim: node %q must have positive capacity and bandwidth", sp.Name))
		}
		total := sp.TotalBW
		if total <= 0 {
			total = sp.ReadBW + sp.WriteBW
		}
		n := &Node{
			ID:      i,
			Name:    sp.Name,
			Kind:    sp.Kind,
			Cap:     sp.Cap,
			Latency: sp.Latency,
			read:    resource{name: sp.Name + ".read", capacity: sp.ReadBW},
			write:   resource{name: sp.Name + ".write", capacity: sp.WriteBW},
			total:   resource{name: sp.Name + ".bus", capacity: total},
		}
		s.nodes = append(s.nodes, n)
	}
	return s
}

// Engine returns the simulation engine the system runs on.
func (s *System) Engine() *sim.Engine { return s.e }

// Node returns the node with the given id.
func (s *System) Node(id int) *Node {
	if id < 0 || id >= len(s.nodes) {
		panic(fmt.Sprintf("memsim: no node %d", id))
	}
	return s.nodes[id]
}

// Nodes returns a copy of the node list in id order; mutating it does
// not affect the system. Use NumNodes for allocation-free sizing.
func (s *System) Nodes() []*Node { return append([]*Node(nil), s.nodes...) }

// NumNodes returns the number of nodes in the system.
func (s *System) NumNodes() int { return len(s.nodes) }

// NodeByKind returns the first node of the given kind, or nil.
func (s *System) NodeByKind(k NodeKind) *Node {
	for _, n := range s.nodes {
		if n.Kind == k {
			return n
		}
	}
	return nil
}

// Chain returns the nodes ordered near to far by tier rank (HBM first,
// then DDR, NVM, Remote), with ID order breaking ties. This, not the
// node ID, is the authoritative chain order: specs may list nodes in
// any order without swapping near and far memory.
func (s *System) Chain() []*Node {
	chain := make([]*Node, len(s.nodes))
	copy(chain, s.nodes)
	// Insertion sort: the chain has at most a handful of nodes, and a
	// stable sort keeps ID order within a rank without importing sort.
	for i := 1; i < len(chain); i++ {
		for j := i; j > 0 && chain[j].Kind.TierRank() < chain[j-1].Kind.TierRank(); j-- {
			chain[j], chain[j-1] = chain[j-1], chain[j]
		}
	}
	return chain
}

// ActiveFlows returns the number of in-flight flows.
func (s *System) ActiveFlows() int { return len(s.flows) }
