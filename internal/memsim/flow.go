package memsim

import (
	"fmt"
	"math"

	"github.com/hetmem/hetmem/internal/sim"
)

// Access selects which bandwidth direction of a node a flow consumes.
type Access int

const (
	// Read consumes a node's read bandwidth.
	Read Access = iota
	// Write consumes a node's write bandwidth.
	Write
)

// Demand names one (node, direction) bandwidth resource.
type Demand struct {
	Node   *Node
	Access Access
}

// resources returns the bandwidth pools a demand drains: its direction
// pool plus the node's shared bus. A flow reading and writing the same
// node therefore consumes bus capacity twice per byte-rate, as a real
// same-node memcpy does.
func (d Demand) resources() [2]*resource {
	if d.Access == Read {
		return [2]*resource{&d.Node.read, &d.Node.total}
	}
	return [2]*resource{&d.Node.write, &d.Node.total}
}

// Flow is an in-flight byte stream. All of its demands are consumed at
// the flow's single current rate.
type Flow struct {
	sys       *System
	demands   []Demand
	remaining float64 // bytes
	total     float64
	cap       float64 // bytes/second; +Inf when uncapped
	rate      float64 // current granted rate
	frozen    bool    // allocator scratch
	started   sim.Time
	finished  sim.Time
	done      bool
	waiters   []*sim.Proc
	onDone    func()
}

// FlowSpec describes a flow to start.
type FlowSpec struct {
	// Bytes is the volume to move. Zero-byte flows complete
	// immediately.
	Bytes float64
	// Demands lists every bandwidth resource the flow occupies
	// simultaneously (e.g. source read + destination write for a
	// migration memcpy).
	Demands []Demand
	// RateCap bounds the flow's rate in bytes/second; <= 0 means
	// uncapped. Use the per-core streaming rate for kernel flows.
	RateCap float64
	// OnDone, if non-nil, runs (as an engine callback) when the flow
	// completes.
	OnDone func()
}

const byteEps = 1e-3 // bytes below which a flow counts as complete

// StartFlow begins a flow and returns it. The caller can Wait on it or
// rely on OnDone.
func (s *System) StartFlow(spec FlowSpec) *Flow {
	if spec.Bytes < 0 {
		panic("memsim: negative flow size")
	}
	f := &Flow{
		sys:       s,
		demands:   append([]Demand(nil), spec.Demands...),
		remaining: spec.Bytes,
		total:     spec.Bytes,
		cap:       spec.RateCap,
		started:   s.e.Now(),
		onDone:    spec.OnDone,
	}
	if f.cap <= 0 {
		f.cap = math.Inf(1)
	}
	if len(f.demands) == 0 {
		panic("memsim: flow with no demands")
	}
	for _, d := range f.demands {
		if d.Node == nil {
			panic("memsim: flow demand with nil node")
		}
	}
	if spec.Bytes <= byteEps {
		// Trivially complete; fire OnDone asynchronously for
		// consistency with real flows.
		f.done = true
		f.finished = s.e.Now()
		if f.onDone != nil {
			s.e.Schedule(s.e.Now(), f.onDone)
		}
		return f
	}
	s.advance()
	s.flows = append(s.flows, f)
	s.reallocate()
	return f
}

// Wait parks p until the flow completes and returns its duration.
func (f *Flow) Wait(p *sim.Proc) sim.Time {
	for !f.done {
		f.waiters = append(f.waiters, p)
		p.Suspend()
	}
	return f.finished - f.started
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Rate returns the flow's current granted rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to move (advanced to current time).
func (f *Flow) Remaining() float64 {
	f.sys.advance()
	return f.remaining
}

// Duration returns how long the flow ran; valid only after completion.
func (f *Flow) Duration() sim.Time {
	if !f.done {
		panic("memsim: Duration of unfinished flow")
	}
	return f.finished - f.started
}

// advance integrates all flow progress from lastUpdate to now.
func (s *System) advance() {
	now := s.e.Now()
	dt := now - s.lastUpdate
	if dt <= 0 {
		s.lastUpdate = now
		return
	}
	for _, f := range s.flows {
		moved := f.rate * dt
		f.remaining -= moved
		if f.remaining < 0 {
			moved += f.remaining
			f.remaining = 0
		}
		for _, d := range f.demands {
			if d.Access == Read {
				d.Node.BytesRead += moved
			} else {
				d.Node.BytesWritten += moved
			}
		}
	}
	s.lastUpdate = now
}

// reallocate recomputes max-min fair rates for all flows (progressive
// filling), completes any finished flows, and schedules the next
// completion event. Iteration is in flow start order, so the computation
// is bit-for-bit deterministic.
func (s *System) reallocate() {
	// Complete flows that have drained, preserving order of the rest.
	live := s.flows[:0]
	for _, f := range s.flows {
		if f.remaining <= byteEps {
			s.finish(f)
		} else {
			live = append(live, f)
		}
	}
	for i := len(live); i < len(s.flows); i++ {
		s.flows[i] = nil
	}
	s.flows = live

	s.completion.Cancel()
	s.completion = sim.EventHandle{}
	if len(s.flows) == 0 {
		return
	}

	// Gather the distinct resources in first-use order.
	var resources []*resource
	for _, f := range s.flows {
		f.rate = 0
		f.frozen = false
		for _, d := range f.demands {
			for _, r := range d.resources() {
				if !r.seen {
					r.seen = true
					r.remCap = r.capacity
					r.users = 0
					resources = append(resources, r)
				}
				r.users++
			}
		}
	}
	defer func() {
		for _, r := range resources {
			r.seen = false
		}
	}()

	// Progressive filling: raise all unfrozen flows' rates together
	// until each hits its cap or saturates one of its resources.
	unfrozen := len(s.flows)
	for unfrozen > 0 {
		inc := math.Inf(1)
		for _, r := range resources {
			if r.users > 0 {
				if v := r.remCap / float64(r.users); v < inc {
					inc = v
				}
			}
		}
		for _, f := range s.flows {
			if !f.frozen {
				if v := f.cap - f.rate; v < inc {
					inc = v
				}
			}
		}
		if inc < 0 {
			inc = 0
		}
		for _, f := range s.flows {
			if f.frozen {
				continue
			}
			f.rate += inc
			for _, d := range f.demands {
				for _, r := range d.resources() {
					r.remCap -= inc
				}
			}
		}
		progressed := false
		for _, f := range s.flows {
			if f.frozen {
				continue
			}
			saturated := f.rate >= f.cap-1e-9*f.cap
			if !saturated {
			scan:
				for _, d := range f.demands {
					for _, r := range d.resources() {
						if r.remCap <= 1e-9*r.capacity {
							saturated = true
							break scan
						}
					}
				}
			}
			if saturated {
				f.frozen = true
				unfrozen--
				progressed = true
				for _, d := range f.demands {
					for _, r := range d.resources() {
						r.users--
					}
				}
			}
		}
		if !progressed {
			panic("memsim: progressive filling failed to converge")
		}
	}

	// Schedule the next completion.
	next := math.Inf(1)
	for _, f := range s.flows {
		if f.rate <= 0 {
			panic(fmt.Sprintf("memsim: flow starved (rate 0, %g bytes left)", f.remaining))
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	s.completion = s.e.After(next, func() {
		s.advance()
		s.reallocate()
	})
}

// finish marks f complete and releases its waiters.
func (s *System) finish(f *Flow) {
	f.done = true
	f.rate = 0
	f.remaining = 0
	f.finished = s.e.Now()
	for _, w := range f.waiters {
		w.Resume()
	}
	f.waiters = nil
	if f.onDone != nil {
		cb := f.onDone
		s.e.Schedule(s.e.Now(), cb)
	}
}

// Transfer moves bytes from src to dst as a blocking memcpy-style flow,
// consuming src read bandwidth and dst write bandwidth simultaneously
// (plus both nodes' fixed latency once up front). It returns the elapsed
// virtual time. This is the data-movement primitive behind the paper's
// numa_alloc_onnode + memcpy + numa_free migration routine.
func (s *System) Transfer(p *sim.Proc, bytes float64, src, dst *Node, rateCap float64) sim.Time {
	t0 := s.e.Now()
	if lat := src.Latency + dst.Latency; lat > 0 {
		p.Sleep(lat)
	}
	f := s.StartFlow(FlowSpec{
		Bytes:   bytes,
		Demands: []Demand{{Node: src, Access: Read}, {Node: dst, Access: Write}},
		RateCap: rateCap,
	})
	f.Wait(p)
	return s.e.Now() - t0
}

// ReadStream streams bytes from node as a blocking flow consuming read
// bandwidth only (a load-dominated kernel).
func (s *System) ReadStream(p *sim.Proc, bytes float64, node *Node, rateCap float64) sim.Time {
	t0 := s.e.Now()
	f := s.StartFlow(FlowSpec{
		Bytes:   bytes,
		Demands: []Demand{{Node: node, Access: Read}},
		RateCap: rateCap,
	})
	f.Wait(p)
	return s.e.Now() - t0
}
