package memsim

import (
	"fmt"
	"math"
	"testing"

	"github.com/hetmem/hetmem/internal/sim"
)

const (
	gb = 1 << 30
)

// testSystem builds a two-node HBM+DDR system with round numbers:
// DDR 100 GB/s read, 80 GB/s write, 96 GB; HBM 400 GB/s read, 380 GB/s
// write, 16 GB.
func testSystem(e *sim.Engine) *System {
	return NewSystem(e, []NodeSpec{
		{Name: "DDR4", Kind: DDR, Cap: 96 * gb, ReadBW: 100 * gb, WriteBW: 80 * gb},
		{Name: "MCDRAM", Kind: HBM, Cap: 16 * gb, ReadBW: 400 * gb, WriteBW: 380 * gb},
	})
}

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Fatalf("%s = %g, want %g (±%.2g rel)", what, got, want, tol)
	}
}

func TestNodeLookup(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	if s.Node(0).Kind != DDR || s.Node(1).Kind != HBM {
		t.Fatal("node id convention broken: want DDR=0, HBM=1")
	}
	if s.NodeByKind(HBM).Name != "MCDRAM" {
		t.Fatal("NodeByKind(HBM) wrong")
	}
	if s.NodeByKind(NVM) != nil {
		t.Fatal("NodeByKind(NVM) should be nil")
	}
	if len(s.Nodes()) != 2 {
		t.Fatal("Nodes() length")
	}
}

func TestNodeKindString(t *testing.T) {
	if HBM.String() != "HBM" || DDR.String() != "DDR" || NVM.String() != "NVM" {
		t.Fatal("NodeKind.String broken")
	}
	if NodeKind(42).String() != "NodeKind(42)" {
		t.Fatal("unknown kind string")
	}
}

func TestReserveRelease(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	hbm := s.Node(1)
	if !hbm.Reserve(10 * gb) {
		t.Fatal("reserve 10GB failed")
	}
	if hbm.Used() != 10*gb || hbm.Free() != 6*gb {
		t.Fatalf("used=%d free=%d", hbm.Used(), hbm.Free())
	}
	if hbm.Reserve(7 * gb) {
		t.Fatal("over-reserve succeeded")
	}
	if hbm.FailedAllocs != 1 {
		t.Fatalf("FailedAllocs = %d, want 1", hbm.FailedAllocs)
	}
	hbm.Release(10 * gb)
	if hbm.Used() != 0 {
		t.Fatal("release did not restore")
	}
	if hbm.PeakUsed != 10*gb {
		t.Fatalf("PeakUsed = %d", hbm.PeakUsed)
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	s.Node(0).Release(1)
}

func TestSingleFlowFullBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	var dur sim.Time
	e.Spawn("reader", func(p *sim.Proc) {
		dur = s.ReadStream(p, 100*gb, s.Node(0), 0)
	})
	e.RunAll()
	almost(t, dur, 1.0, 1e-6, "uncontended 100GB read at 100GB/s")
}

func TestFlowRateCap(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	var dur sim.Time
	e.Spawn("reader", func(p *sim.Proc) {
		dur = s.ReadStream(p, 10*gb, s.Node(0), 10*gb) // capped at 10 GB/s
	})
	e.RunAll()
	almost(t, dur, 1.0, 1e-6, "capped read")
}

func TestFairShareTwoFlows(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	var d1, d2 sim.Time
	e.Spawn("r1", func(p *sim.Proc) { d1 = s.ReadStream(p, 50*gb, s.Node(0), 0) })
	e.Spawn("r2", func(p *sim.Proc) { d2 = s.ReadStream(p, 50*gb, s.Node(0), 0) })
	e.RunAll()
	// Both share 100 GB/s -> 50 GB/s each -> 1 s each.
	almost(t, d1, 1.0, 1e-6, "flow1")
	almost(t, d2, 1.0, 1e-6, "flow2")
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	var dLong sim.Time
	e.Spawn("long", func(p *sim.Proc) { dLong = s.ReadStream(p, 100*gb, s.Node(0), 0) })
	e.Spawn("short", func(p *sim.Proc) { s.ReadStream(p, 25*gb, s.Node(0), 0) })
	e.RunAll()
	// Phase 1: both at 50 GB/s until short finishes at t=0.5 (25GB).
	// Long has 75 GB left, then runs at 100 GB/s -> 0.75 s more.
	almost(t, dLong, 1.25, 1e-6, "long flow duration")
}

func TestTransferUsesBothNodes(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	var toHBM, toDDR sim.Time
	e.Spawn("mover", func(p *sim.Proc) {
		// DDR->HBM: min(DDR read 100, HBM write 380) = 100 GB/s.
		toHBM = s.Transfer(p, 100*gb, s.Node(0), s.Node(1), 0)
		// HBM->DDR: min(HBM read 400, DDR write 80) = 80 GB/s.
		toDDR = s.Transfer(p, 100*gb, s.Node(1), s.Node(0), 0)
	})
	e.RunAll()
	almost(t, toHBM, 1.0, 1e-6, "DDR->HBM transfer")
	almost(t, toDDR, 100.0/80.0, 1e-6, "HBM->DDR transfer")
	if toDDR <= toHBM {
		t.Fatal("HBM->DDR should be slower than DDR->HBM (Fig 7 asymmetry)")
	}
}

func TestTransferLatency(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewSystem(e, []NodeSpec{
		{Name: "A", Kind: DDR, Cap: gb, ReadBW: gb, WriteBW: gb, Latency: 0.25},
		{Name: "B", Kind: HBM, Cap: gb, ReadBW: gb, WriteBW: gb, Latency: 0.25},
	})
	var dur sim.Time
	e.Spawn("mover", func(p *sim.Proc) {
		dur = s.Transfer(p, gb/2, s.Node(0), s.Node(1), 0)
	})
	e.RunAll()
	almost(t, dur, 1.0, 1e-6, "0.5s transfer + 0.5s latency")
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	fired := false
	var dur sim.Time
	e.Spawn("p", func(p *sim.Proc) {
		f := s.StartFlow(FlowSpec{
			Bytes:   0,
			Demands: []Demand{{Node: s.Node(0), Access: Read}},
			OnDone:  func() { fired = true },
		})
		dur = f.Wait(p)
	})
	e.RunAll()
	if dur != 0 {
		t.Fatalf("zero flow duration %v", dur)
	}
	if !fired {
		t.Fatal("OnDone not fired for zero-byte flow")
	}
}

func TestManyCappedFlowsAggregate(t *testing.T) {
	// 64 cores each capped at 10 GB/s reading from DDR (100 GB/s):
	// aggregate pinned at node bandwidth; each core gets 100/64.
	e := sim.NewEngine(1)
	s := testSystem(e)
	durs := make([]sim.Time, 64)
	for i := 0; i < 64; i++ {
		i := i
		e.Spawn(fmt.Sprintf("core%d", i), func(p *sim.Proc) {
			durs[i] = s.ReadStream(p, gb, s.Node(0), 10*gb)
		})
	}
	e.RunAll()
	want := 64.0 / 100.0 // 1GB at 100/64 GB/s
	for i, d := range durs {
		almost(t, d, want, 1e-6, fmt.Sprintf("core %d duration", i))
	}
}

func TestCappedFlowsUnderSubscribed(t *testing.T) {
	// 4 flows capped at 10 GB/s on a 100 GB/s node: each runs at its
	// cap, not at 25 GB/s.
	e := sim.NewEngine(1)
	s := testSystem(e)
	var dur sim.Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			dur = s.ReadStream(p, 10*gb, s.Node(0), 10*gb)
		})
	}
	e.RunAll()
	almost(t, dur, 1.0, 1e-6, "capped under-subscribed flow")
}

func TestHBMvsDDRBandwidthRatio(t *testing.T) {
	// The headline hardware property: with 64 streaming cores, HBM
	// aggregate ~4x DDR aggregate.
	e := sim.NewEngine(1)
	s := testSystem(e)
	measure := func(node *Node) float64 {
		var total float64
		var wg sim.WaitGroup
		wg.Add(64)
		start := e.Now()
		done := make(chan struct{})
		_ = done
		for i := 0; i < 64; i++ {
			e.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
				s.ReadStream(p, gb, node, 12*gb)
				wg.Done()
			})
		}
		e.Spawn("join", func(p *sim.Proc) {
			wg.Wait(p)
			total = 64 * float64(gb) / (p.Now() - start)
		})
		e.RunAll()
		return total
	}
	ddr := measure(s.Node(0))
	hbm := measure(s.Node(1))
	ratio := hbm / ddr
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("HBM/DDR aggregate ratio = %.2f, want ~4", ratio)
	}
}

func TestMigrationContendsWithKernel(t *testing.T) {
	// A kernel streaming from DDR while a migration reads DDR too:
	// they share DDR read bandwidth, so the kernel slows down. This is
	// the interference that makes "when to prefetch" interesting.
	e := sim.NewEngine(1)
	s := testSystem(e)
	var alone, contended sim.Time
	e.Spawn("alone", func(p *sim.Proc) {
		alone = s.ReadStream(p, 50*gb, s.Node(0), 0)
	})
	e.RunAll()
	e2 := sim.NewEngine(1)
	s2 := testSystem(e2)
	e2.Spawn("kernel", func(p *sim.Proc) {
		contended = s2.ReadStream(p, 50*gb, s2.Node(0), 0)
	})
	e2.Spawn("migration", func(p *sim.Proc) {
		s2.Transfer(p, 50*gb, s2.Node(0), s2.Node(1), 0)
	})
	e2.RunAll()
	if contended <= alone {
		t.Fatalf("contended kernel (%.3f) not slower than alone (%.3f)", contended, alone)
	}
}

func TestFlowAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	e.Spawn("mover", func(p *sim.Proc) {
		s.Transfer(p, 10*gb, s.Node(0), s.Node(1), 0)
	})
	e.RunAll()
	almost(t, s.Node(0).BytesRead, 10*gb, 1e-6, "DDR bytes read")
	almost(t, s.Node(1).BytesWritten, 10*gb, 1e-6, "HBM bytes written")
	if s.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after completion", s.ActiveFlows())
	}
}

func TestFlowRemainingAndDone(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	var f *Flow
	e.Spawn("starter", func(p *sim.Proc) {
		f = s.StartFlow(FlowSpec{
			Bytes:   100 * gb,
			Demands: []Demand{{Node: s.Node(0), Access: Read}},
		})
		p.Sleep(0.5)
		rem := f.Remaining()
		almost(t, rem, 50*gb, 1e-6, "remaining at t=0.5")
		if f.Done() {
			t.Error("flow done too early")
		}
		f.Wait(p)
		if !f.Done() {
			t.Error("flow not done after Wait")
		}
		almost(t, f.Duration(), 1.0, 1e-6, "duration")
	})
	e.RunAll()
}

func TestDeterministicRates(t *testing.T) {
	run := func() []sim.Time {
		e := sim.NewEngine(3)
		s := testSystem(e)
		out := make([]sim.Time, 10)
		for i := 0; i < 10; i++ {
			i := i
			e.Spawn(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
				p.Sleep(sim.Time(i) * 0.01)
				if i%2 == 0 {
					out[i] = s.ReadStream(p, gb*float64(i+1), s.Node(0), 15*gb)
				} else {
					out[i] = s.Transfer(p, gb*float64(i+1), s.Node(0), s.Node(1), 15*gb)
				}
			})
		}
		e.RunAll()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNegativeFlowPanics(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	defer func() {
		if recover() == nil {
			t.Fatal("negative flow did not panic")
		}
	}()
	s.StartFlow(FlowSpec{Bytes: -1, Demands: []Demand{{Node: s.Node(0), Access: Read}}})
}

func TestNoDemandsPanics(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	defer func() {
		if recover() == nil {
			t.Fatal("flow without demands did not panic")
		}
	}()
	s.StartFlow(FlowSpec{Bytes: 1})
}

func TestBusLimitsMixedTraffic(t *testing.T) {
	// A node with read 95, write 80, bus 90: a read flow and a write
	// flow together cannot exceed 90 GB/s combined.
	e := sim.NewEngine(1)
	s := NewSystem(e, []NodeSpec{
		{Name: "DDR4", Kind: DDR, Cap: 96 * gb, ReadBW: 95 * gb, WriteBW: 80 * gb, TotalBW: 90 * gb},
	})
	var rDur, wDur sim.Time
	e.Spawn("r", func(p *sim.Proc) { rDur = s.ReadStream(p, 45*gb, s.Node(0), 0) })
	e.Spawn("w", func(p *sim.Proc) {
		f := s.StartFlow(FlowSpec{Bytes: 45 * gb, Demands: []Demand{{Node: s.Node(0), Access: Write}}})
		wDur = f.Wait(p)
	})
	e.RunAll()
	// Fair share of the 90 bus: 45 each -> 1 s each.
	almost(t, rDur, 1.0, 1e-6, "read under bus limit")
	almost(t, wDur, 1.0, 1e-6, "write under bus limit")
}

func TestBusDefaultsToSumOfDirections(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e) // no TotalBW set
	if got, want := s.Node(0).TotalBW(), 180.0*gb; got != want {
		t.Fatalf("default bus = %g, want %g", got, want)
	}
	// Read and write can then proceed at full directional rates.
	var rDur sim.Time
	e.Spawn("r", func(p *sim.Proc) { rDur = s.ReadStream(p, 100*gb, s.Node(0), 0) })
	e.Spawn("w", func(p *sim.Proc) {
		f := s.StartFlow(FlowSpec{Bytes: 80 * gb, Demands: []Demand{{Node: s.Node(0), Access: Write}}})
		f.Wait(p)
	})
	e.RunAll()
	almost(t, rDur, 1.0, 1e-6, "read at full rate despite concurrent write")
}

func TestSameNodeCopyChargesBusTwice(t *testing.T) {
	// An intra-node memcpy reads and writes the same bus: 10 GB copied
	// moves 20 GB across a 90 GB/s bus when read/write pools allow.
	e := sim.NewEngine(1)
	s := NewSystem(e, []NodeSpec{
		{Name: "DDR4", Kind: DDR, Cap: 96 * gb, ReadBW: 95 * gb, WriteBW: 80 * gb, TotalBW: 90 * gb},
	})
	var dur sim.Time
	e.Spawn("cp", func(p *sim.Proc) {
		dur = s.Transfer(p, 10*gb, s.Node(0), s.Node(0), 0)
	})
	e.RunAll()
	almost(t, dur, 20.0/90.0, 1e-6, "same-node copy limited by bus both ways")
}

func TestFlowRateObservable(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	var rates []float64
	e.Spawn("watch", func(p *sim.Proc) {
		f1 := s.StartFlow(FlowSpec{Bytes: 100 * gb, Demands: []Demand{{Node: s.Node(0), Access: Read}}})
		p.Sleep(0.1)
		rates = append(rates, f1.Rate()) // alone: 100 GB/s
		f2 := s.StartFlow(FlowSpec{Bytes: 100 * gb, Demands: []Demand{{Node: s.Node(0), Access: Read}}})
		p.Sleep(0.1)
		rates = append(rates, f1.Rate(), f2.Rate()) // shared: 50 each
		f1.Wait(p)
		f2.Wait(p)
	})
	e.RunAll()
	almost(t, rates[0], 100*gb, 1e-9, "solo rate")
	almost(t, rates[1], 50*gb, 1e-9, "shared rate f1")
	almost(t, rates[2], 50*gb, 1e-9, "shared rate f2")
}

func TestDurationPanicsOnUnfinished(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	f := s.StartFlow(FlowSpec{Bytes: gb, Demands: []Demand{{Node: s.Node(0), Access: Read}}})
	defer func() {
		if recover() == nil {
			t.Fatal("Duration on unfinished flow did not panic")
		}
	}()
	f.Duration()
}

func TestBadNodeSpecPanics(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-bandwidth node accepted")
		}
	}()
	NewSystem(e, []NodeSpec{{Name: "bad", Cap: 1, ReadBW: 0, WriteBW: 1}})
}

func TestNodeLookupOutOfRangePanics(t *testing.T) {
	e := sim.NewEngine(1)
	s := testSystem(e)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node id accepted")
		}
	}()
	s.Node(7)
}

// TestChainOrderIgnoresSpecOrder builds a three-node system in every
// spec order and checks Chain and NodeByKind resolve nodes by kind —
// the regression for the positional "DDR is node 0, HBM is node 1"
// lookups, which swapped near and far memory whenever a spec listed
// nodes in a different order.
func TestChainOrderIgnoresSpecOrder(t *testing.T) {
	specs := []NodeSpec{
		{Name: "MCDRAM", Kind: HBM, Cap: 16 * gb, ReadBW: 400 * gb, WriteBW: 380 * gb},
		{Name: "DDR4", Kind: DDR, Cap: 96 * gb, ReadBW: 100 * gb, WriteBW: 80 * gb},
		{Name: "NVDIMM", Kind: NVM, Cap: 384 * gb, ReadBW: 32 * gb, WriteBW: 12 * gb},
	}
	want := []string{"MCDRAM", "DDR4", "NVDIMM"}
	for _, p := range [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		order := []NodeSpec{specs[p[0]], specs[p[1]], specs[p[2]]}
		s := NewSystem(sim.NewEngine(1), order)
		chain := s.Chain()
		for i, name := range want {
			if chain[i].Name != name {
				t.Fatalf("spec order %v: chain[%d] = %s, want %s", p, i, chain[i].Name, name)
			}
		}
		if s.NodeByKind(HBM).Name != "MCDRAM" || s.NodeByKind(NVM).Name != "NVDIMM" {
			t.Fatalf("spec order %v: NodeByKind resolves wrong nodes", p)
		}
		// IDs still follow spec order — only chain position is semantic.
		for i := range order {
			if s.Node(i).Name != order[i].Name {
				t.Fatalf("spec order %v: node IDs no longer match spec indices", p)
			}
		}
	}
}

// TestTierRank pins the chain ordering of the kinds.
func TestTierRank(t *testing.T) {
	ranks := []NodeKind{HBM, DDR, NVM, Remote}
	for i, k := range ranks {
		if k.TierRank() != i {
			t.Fatalf("%s rank = %d, want %d", k, k.TierRank(), i)
		}
	}
	if Remote.String() != "Remote" {
		t.Fatal("Remote kind string")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TierRank on unknown kind should panic")
		}
	}()
	NodeKind(42).TierRank()
}
