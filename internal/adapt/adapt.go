// Package adapt implements an online adaptive controller that tunes
// the OOC manager's strategy knobs from runtime feedback — the loop the
// paper leaves open when it remarks that "a more optimal number of IO
// threads" exists, plans a memory-pool eviction optimisation, and asks
// "when to prefetch" without choosing values. The X3/X4/X6 ablations
// show those optima shift with workload shape; the controller finds
// them per run instead of per offline sweep.
//
// A Controller attaches to a core.Manager and samples a Feedback struct
// at window boundaries: per-category worker-lane time shares from the
// projections tracer (compute/wait/fetch/evict), HBM pressure and
// retry/forced-eviction counters from the audit metrics collector
// (split out of the invariant auditor so feedback costs no audit
// overhead). Windows come from two sources:
//
//   - iteration barriers (Barrier, wired to the application's
//     OnIteration hook) — the quiescent points where even
//     whole-strategy switches are legal;
//   - task completions (the core.Observer TaskDone hook) every
//     Config.SampleEvery tasks, for applications with no barrier
//     structure (MatMul's single reduction).
//
// Policies, in the order they engage:
//
//  1. Strategy switch: while SingleIO's wait share (or NoIO's
//     fetch+evict share) stays >= WaitDominant for K consecutive
//     windows, switch to MultiIO at the next barrier (Manager.Retune
//     refuses the switch outside quiescence).
//  2. Knob hill-climb: IOThreads (SingleIO) or PrefetchDepth (MultiIO)
//     move along a power-of-two ladder; a probe step is kept only if
//     the window score (virtual seconds per completed task) improves by
//     Epsilon, otherwise it is reverted. After the climb settles it
//     stays settled — short runs need convergence, not exploration.
//  3. Eviction policy, by pressure threshold: when cumulative HBM
//     pressure sits below PressureHi and the window saw no capacity
//     retries or forced evictions, lazy eviction (the paper's planned
//     memory-pool optimisation) is adopted outright — deferring
//     evictions is free while capacity is uncontended, and score
//     probes cannot judge it (its payoff is cumulative and program
//     phases confound single-window comparisons). If retries or
//     forced evictions later appear under lazy mode, the controller
//     reverts to eager immediately.
//
// Determinism: the controller runs in virtual time, samples only at
// deterministic points, and breaks its single heuristic tie (initial
// probe direction from mid-ladder) with a seeded RNG — two runs with
// the same seed take identical decisions, which the determinism
// regression tests assert.
package adapt

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/hetmem/hetmem/internal/audit"
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/projections"
)

// Config parameterises a Controller.
type Config struct {
	// Seed feeds the decision RNG (default 1).
	Seed int64
	// SampleEvery samples a window every N task completions, for
	// applications without iteration barriers. 0 disables completion
	// sampling (barrier-driven applications).
	SampleEvery int
	// WarmupWindows are observed but trigger no tuning (default 1: the
	// first window carries cold-start fetches).
	WarmupWindows int
	// K is how many consecutive wait-dominant windows trigger a
	// strategy switch (default 2).
	K int
	// WaitDominant is the wait-share threshold for the switch rule
	// (default 0.35).
	WaitDominant float64
	// Epsilon is the relative score improvement a probe must deliver
	// to be kept (default 0.03).
	Epsilon float64
	// PressureHi gates the lazy-eviction probe: cumulative HBM
	// high-water above this fraction of the budget means capacity is
	// contended and eager eviction stands (default 0.9).
	PressureHi float64
	// LowWait is the wait share below which the knob climb does not
	// even probe: with workers never starved and no capacity retries,
	// the current transfer aggressiveness is already sufficient and a
	// probe window is pure disturbance (default 0.05).
	LowWait float64
	// MaxIOThreads caps the SingleIO thread ladder (default 8, never
	// above the PE count).
	MaxIOThreads int
	// MaxPrefetchDepth caps the bounded rungs of the MultiIO depth
	// ladder; the ladder always ends at 0 = unlimited (default 8).
	MaxPrefetchDepth int
	// DisableModeSwitch turns whole-strategy switching off; by default
	// it is on (switches still only happen at barriers). Inverted so
	// the zero Config behaves like DefaultConfig.
	DisableModeSwitch bool
	// MaxModeSwitches bounds strategy switches per run (default 1), so
	// the controller converges instead of oscillating.
	MaxModeSwitches int
	// DisableVictimUpgrade turns off the victim-policy rule: by
	// default, the first post-warmup window showing forced evictions
	// switches Options.EvictPolicy to core.Lookahead — forced
	// evictions mean the victim order bounced a block a queued task
	// needed, and Lookahead is the policy that consults the queues.
	// Inverted so the zero Config behaves like DefaultConfig.
	DisableVictimUpgrade bool
	// ReopenFactor is the relative score degradation versus the
	// settled baseline that, sustained for two consecutive windows,
	// makes the settled-phase guard re-open the climb — a mid-run
	// working-set shift invalidates the settled verdicts (default
	// 0.5, i.e. 50% slower per task).
	ReopenFactor float64
	// Warm seeds the controller with a recommended configuration (an
	// offline tune verdict, or a settled verdict from an earlier
	// session). New applies the retunable knobs — Mode, IOThreads,
	// PrefetchDepth, EvictLazily, EvictPolicy — before the run starts,
	// and the controller settles at the first post-warmup window
	// instead of probing from scratch. The settled-phase guard stays
	// armed: a mid-run shift that invalidates the warm verdict reopens
	// a full climb, exactly as it would for a settled cold start.
	// Non-retunable fields (HBMReserve, SharedWaitQueue, Audit,
	// Metrics) are ignored — they belong to the run, not the
	// recommendation.
	Warm *core.Options
}

// DefaultConfig returns the defaults described on the fields.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		WarmupWindows:    1,
		K:                2,
		WaitDominant:     0.35,
		Epsilon:          0.03,
		PressureHi:       0.9,
		LowWait:          0.05,
		MaxIOThreads:     8,
		MaxPrefetchDepth: 8,
		MaxModeSwitches:  1,
		ReopenFactor:     0.5,
	}
}

// Feedback is one sampled window of runtime signals: time shares over
// the worker lanes (IO-thread lanes excluded — their fetch time is the
// overlap the strategies exist to create) and counter deltas from the
// metrics collector.
type Feedback struct {
	Window  int     `json:"window"`
	Time    float64 `json:"time_s"`
	Elapsed float64 `json:"elapsed_s"`
	Tasks   int64   `json:"tasks"`

	ComputeShare float64 `json:"compute_share"`
	WaitShare    float64 `json:"wait_share"` // idle + lock wait
	FetchShare   float64 `json:"fetch_share"`
	EvictShare   float64 `json:"evict_share"`

	// Pressure is the cumulative HBM high-water mark as a fraction of
	// the budget.
	Pressure        float64 `json:"pressure"`
	StageRetries    int64   `json:"stage_retries"`    // delta this window
	ForcedEvictions int64   `json:"forced_evictions"` // delta this window
	Refetches       int64   `json:"refetches"`        // delta this window
}

// Decision is one controller action, stamped with the feedback that
// drove it — the convergence trace the X9 driver prints.
type Decision struct {
	Window   int      `json:"window"`
	Time     float64  `json:"time_s"`
	Action   string   `json:"action"`
	Feedback Feedback `json:"feedback"`
}

func (d Decision) String() string {
	return fmt.Sprintf("w%d[t=%.3f] %s", d.Window, d.Time, d.Action)
}

// climb phases.
const (
	pWarm = iota
	pBase
	pProbe
	pSettled
)

// Controller closes the feedback loop for one manager. It implements
// core.Observer; install it with Attach (or wire Barrier/TaskDone
// manually).
type Controller struct {
	mg  *core.Manager
	tr  *projections.Tracer
	met *audit.Metrics
	cfg Config
	rng *rand.Rand
	ds  DecisionSink

	numPEs int
	budget int64

	// window accounting
	window    int
	tasks     int64 // completions since start
	lastTasks int64
	lastTime  float64
	lastCat   [int(numShareCats)]float64
	lastCtr   audit.Counters

	// policy state
	phase        int
	warmLeft     int
	waitRuns     int
	modeSwitches int

	ladder   []int // knob values, "more aggressive" last
	idx      int   // current rung
	knobBase float64
	dir      int  // active probe direction
	moved    bool // accepted at least one step in dir
	triedUp  bool
	triedDn  bool

	// warmPending marks a warm-started controller that has not settled
	// yet: the first post-warmup window adopts the warm verdict as its
	// baseline and settles outright. Cleared on first settle, so a
	// guard-triggered reopen climbs normally — the shift proved the
	// warm verdict stale.
	warmPending bool

	settledAt int // window the climb settled, -1 while running
	// settledTime is the virtual time of the first settle — the
	// time-to-settle metric X15 compares across warm and cold starts.
	// -1 until the controller first settles.
	settledTime float64
	// shift detector state (settled-phase guard)
	settledScore float64 // knob baseline captured at settle time
	shiftRuns    int     // consecutive windows past the reopen bar
	reopens      int     // times the guard re-opened the climb
	reopenAt     int     // window of the last reopen, -1 if never

	trace []Decision
}

// share categories tracked per window (indices into lastCat).
const (
	sCompute = iota
	sWait
	sFetch
	sEvict
	numShareCats
)

// New builds a controller over mg. The manager must run a movement
// strategy, carry a metrics collector (Options.Metrics or Audit) and
// its runtime a projections tracer — the two feedback sources.
func New(mg *core.Manager, cfg Config) (*Controller, error) {
	if !mg.Mode().Moves() {
		return nil, fmt.Errorf("adapt: mode %v moves no data; nothing to tune", mg.Mode())
	}
	if mg.Metrics() == nil {
		return nil, fmt.Errorf("adapt: manager has no metrics collector (set Options.Metrics)")
	}
	if mg.Runtime().Tracer() == nil {
		return nil, fmt.Errorf("adapt: runtime has no projections tracer")
	}
	def := DefaultConfig()
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.WarmupWindows <= 0 {
		cfg.WarmupWindows = def.WarmupWindows
	}
	if cfg.K <= 0 {
		cfg.K = def.K
	}
	if cfg.WaitDominant <= 0 {
		cfg.WaitDominant = def.WaitDominant
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = def.Epsilon
	}
	if cfg.PressureHi <= 0 {
		cfg.PressureHi = def.PressureHi
	}
	if cfg.LowWait <= 0 {
		cfg.LowWait = def.LowWait
	}
	if cfg.MaxIOThreads <= 0 {
		cfg.MaxIOThreads = def.MaxIOThreads
	}
	if cfg.MaxIOThreads > mg.Runtime().NumPEs() {
		cfg.MaxIOThreads = mg.Runtime().NumPEs()
	}
	if cfg.MaxPrefetchDepth <= 0 {
		cfg.MaxPrefetchDepth = def.MaxPrefetchDepth
	}
	if cfg.MaxModeSwitches <= 0 {
		cfg.MaxModeSwitches = def.MaxModeSwitches
	}
	if cfg.ReopenFactor <= 0 {
		cfg.ReopenFactor = def.ReopenFactor
	}
	c := &Controller{
		mg:          mg,
		tr:          mg.Runtime().Tracer(),
		met:         mg.Metrics(),
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		numPEs:      mg.Runtime().NumPEs(),
		budget:      mg.HBMBudget(),
		phase:       pWarm,
		warmLeft:    cfg.WarmupWindows,
		settledAt:   -1,
		settledTime: -1,
		reopenAt:    -1,
	}
	if cfg.Warm != nil {
		// Overlay only the retunable knobs onto the run's own options,
		// so a recommendation computed under different HBMReserve /
		// Audit / Metrics settings cannot trip Retune's invariants.
		o := mg.Options()
		o.Mode = cfg.Warm.Mode
		o.IOThreads = cfg.Warm.IOThreads
		o.PrefetchDepth = cfg.Warm.PrefetchDepth
		o.EvictLazily = cfg.Warm.EvictLazily
		o.EvictPolicy = cfg.Warm.EvictPolicy
		if err := mg.Retune(o); err != nil {
			return nil, fmt.Errorf("adapt: warm start: %w", err)
		}
		c.warmPending = true
	}
	c.buildLadder()
	return c, nil
}

// Attach adds the controller to the manager's observer list so TaskDone
// fires; barrier-driven applications additionally wire Barrier into
// their iteration hook. Other observers (a trace recorder, say) keep
// firing alongside the controller.
func (c *Controller) Attach() { c.mg.AddObserver(c) }

// DecisionSink receives each Decision as it is recorded, in addition to
// the controller's own trace. The trace recorder uses it to interleave
// retune decisions with runtime events on the captured timeline.
type DecisionSink interface {
	Decided(d Decision)
}

// SetDecisionSink installs (or, with nil, removes) the decision sink.
func (c *Controller) SetDecisionSink(ds DecisionSink) { c.ds = ds }

// TaskDone implements core.Observer: count completions and, in
// completion-sampling mode, close a window every SampleEvery tasks.
func (c *Controller) TaskDone(t *charm.Task) {
	c.tasks++
	if c.cfg.SampleEvery > 0 && c.tasks%int64(c.cfg.SampleEvery) == 0 {
		c.sample(false)
	}
}

// Barrier closes a window at an application iteration barrier — the
// quiescent point where strategy switches are legal.
func (c *Controller) Barrier() { c.sample(true) }

// Trace returns a copy of the decisions taken so far.
func (c *Controller) Trace() []Decision {
	return append([]Decision(nil), c.trace...)
}

// TraceString renders the decision trace compactly, one action per
// line.
func (c *Controller) TraceString() string {
	var b strings.Builder
	for _, d := range c.trace {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// Converged reports whether the climb has settled.
func (c *Controller) Converged() bool { return c.phase == pSettled }

// ConvergedWindow returns the window at which the climb settled, or -1.
func (c *Controller) ConvergedWindow() int { return c.settledAt }

// SettledTime returns the virtual time at which the controller first
// settled — the time-to-settle metric X15 compares between warm and
// cold starts — or -1 if it never settled.
func (c *Controller) SettledTime() float64 { return c.settledTime }

// WarmStarted reports whether the controller was seeded with a warm
// configuration (Config.Warm).
func (c *Controller) WarmStarted() bool { return c.cfg.Warm != nil }

// Reopens returns how many times the settled-phase guard re-opened the
// climb (mid-run workload shifts detected).
func (c *Controller) Reopens() int { return c.reopens }

// ReopenWindow returns the window of the most recent reopen, or -1.
func (c *Controller) ReopenWindow() int { return c.reopenAt }

// FinalOptions returns the manager's current (tuned) option set.
func (c *Controller) FinalOptions() core.Options { return c.mg.Options() }

// buildLadder sets the knob ladder for the current mode and positions
// idx at the current knob value.
func (c *Controller) buildLadder() {
	c.ladder = nil
	c.dir = 0
	c.moved = false
	c.triedUp = false
	c.triedDn = false
	opts := c.mg.Options()
	switch opts.Mode {
	case core.SingleIO:
		for v := 1; v <= c.cfg.MaxIOThreads; v *= 2 {
			c.ladder = append(c.ladder, v)
		}
		cur := opts.IOThreads
		if cur <= 0 {
			cur = 1
		}
		c.idx = nearestRung(c.ladder, cur)
	case core.MultiIO:
		for v := 1; v <= c.cfg.MaxPrefetchDepth; v *= 2 {
			c.ladder = append(c.ladder, v)
		}
		c.ladder = append(c.ladder, 0) // unlimited: the most aggressive rung
		if opts.PrefetchDepth == 0 {
			c.idx = len(c.ladder) - 1
		} else {
			c.idx = nearestRung(c.ladder[:len(c.ladder)-1], opts.PrefetchDepth)
		}
	default: // NoIO has no ladder knob
		c.idx = 0
	}
}

// nearestRung returns the index of the closest ladder value.
func nearestRung(ladder []int, v int) int {
	best, bestDist := 0, 1<<62
	for i, r := range ladder {
		d := r - v
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// applyKnob retunes the mode's ladder knob to the value at rung i.
func (c *Controller) applyKnob(i int) error {
	o := c.mg.Options()
	switch o.Mode {
	case core.SingleIO:
		o.IOThreads = c.ladder[i]
	case core.MultiIO:
		o.PrefetchDepth = c.ladder[i]
	default:
		return nil
	}
	return c.mg.Retune(o)
}

// applyEvict retunes the eviction policy.
func (c *Controller) applyEvict(lazy bool) error {
	o := c.mg.Options()
	o.EvictLazily = lazy
	return c.mg.Retune(o)
}

// knobName names the active ladder knob for trace actions.
func (c *Controller) knobName() string {
	if c.mg.Mode() == core.SingleIO {
		return "io-threads"
	}
	return "prefetch-depth"
}

// record appends a decision.
func (c *Controller) record(f Feedback, format string, args ...interface{}) {
	d := Decision{
		Window:   f.Window,
		Time:     f.Time,
		Action:   fmt.Sprintf(format, args...),
		Feedback: f,
	}
	c.trace = append(c.trace, d)
	if c.ds != nil {
		c.ds.Decided(d)
	}
}

// sample closes the current window: compute feedback, then run the
// policy. atBarrier marks quiescent windows where strategy switches are
// legal.
func (c *Controller) sample(atBarrier bool) {
	f, ok := c.feedback()
	if !ok {
		return
	}
	c.window++
	f.Window = c.window

	// Score: virtual seconds per completed task, lower is better. At
	// iteration barriers every window holds one iteration of identical
	// work, so this is the per-iteration time; in completion sampling
	// the task count per window is fixed by construction.
	score := f.Elapsed / float64(f.Tasks)

	// The strategy watch runs in every phase — a wrong strategy choice
	// dominates any knob setting, so it may preempt a climb in progress
	// (the climb restarts under the new strategy) or reopen a settled
	// one.
	if c.modeWatch(f, atBarrier) {
		return
	}

	// The victim watch also runs in every post-warmup phase: forced
	// evictions say the victim order is wrong regardless of where the
	// climb stands, and the fix needs no score window to judge.
	c.victimWatch(f)

	switch c.phase {
	case pWarm:
		c.warmLeft--
		c.record(f, "warmup (wait %.2f fetch %.2f pressure %.2f)", f.WaitShare, f.FetchShare, f.Pressure)
		if c.warmLeft <= 0 {
			c.phase = pBase
		}
	case pBase:
		c.knobBase = score
		if c.warmPending {
			// Warm start: adopt the recommended config as the settled
			// verdict without spending probe windows. The settled-phase
			// guard takes over from here — a shift that invalidates the
			// recommendation reopens a normal climb.
			c.record(f, "warm-adopt %s=%d score %.4g (wait %.2f)", c.knobName(), c.knob(), score, f.WaitShare)
			c.settle(f)
			return
		}
		c.record(f, "baseline %s=%d score %.4g (wait %.2f)", c.knobName(), c.knob(), score, f.WaitShare)
		c.startProbe(f)
	case pProbe:
		c.stepProbe(f, score)
	case pSettled:
		c.settledGuard(f, score)
	}
}

// victimWatch upgrades the eviction victim policy when capacity
// pressure forces the eviction of blocks queued tasks still need:
// forced evictions mean declaration order is picking wrong victims,
// and Lookahead is the policy that consults the queues. A one-way
// ratchet per run — the upgrade never costs anything a downgrade would
// win back, so no probe window is spent judging it.
func (c *Controller) victimWatch(f Feedback) {
	if c.cfg.DisableVictimUpgrade || c.phase == pWarm || f.ForcedEvictions == 0 {
		return
	}
	o := c.mg.Options()
	if o.EvictPolicy == core.Lookahead {
		return
	}
	o.EvictPolicy = core.Lookahead
	if err := c.mg.Retune(o); err == nil {
		c.record(f, "victim-upgrade evict-policy=lookahead (forced %d refetches %d)",
			f.ForcedEvictions, f.Refetches)
	}
}

// knob returns the current ladder value (for traces).
func (c *Controller) knob() int {
	if len(c.ladder) == 0 {
		return 0
	}
	return c.ladder[c.idx]
}

// modeWatch runs the strategy-switch rule; reports true when a switch
// happened (the window is consumed by it).
func (c *Controller) modeWatch(f Feedback, atBarrier bool) bool {
	if c.cfg.DisableModeSwitch || c.modeSwitches >= c.cfg.MaxModeSwitches {
		return false
	}
	mode := c.mg.Mode()
	var signal float64
	switch mode {
	case core.SingleIO:
		// Workers starved behind one IO thread show up as idle time.
		signal = f.WaitShare
	case core.NoIO:
		// Workers moving their own data show up as on-lane fetch/evict.
		signal = f.FetchShare + f.EvictShare
	default:
		return false
	}
	if signal < c.cfg.WaitDominant {
		c.waitRuns = 0
		return false
	}
	c.waitRuns++
	if c.waitRuns < c.cfg.K || !atBarrier {
		return false
	}
	o := c.mg.Options()
	o.Mode = core.MultiIO
	o.IOThreads = 0
	o.PrefetchDepth = 0
	if err := c.mg.Retune(o); err != nil {
		// Not quiescent after all; keep watching.
		c.record(f, "switch %v->multi refused: %v", mode, err)
		return false
	}
	c.modeSwitches++
	c.waitRuns = 0
	c.record(f, "switch %v->MultiIO (signal %.2f for %d windows)", mode, signal, c.cfg.K)
	// Re-warm under the new strategy, then climb its ladder; the new
	// strategy makes its own eviction decision when it settles.
	c.buildLadder()
	c.phase = pWarm
	c.warmLeft = 1
	return true
}

// startProbe launches the first knob probe from the baseline rung, or
// falls through to the eviction probe / settles when there is nothing
// to climb.
func (c *Controller) startProbe(f Feedback) {
	if f.WaitShare < c.cfg.LowWait && f.StageRetries == 0 {
		// Workers are never starved and staging never hit capacity:
		// there is no transfer bottleneck for the knob to fix, so a
		// probe window would be pure disturbance.
		c.record(f, "keep %s=%d (wait %.2f, no bottleneck)", c.knobName(), c.knob(), f.WaitShare)
		c.startEvictOrSettle(f)
		return
	}
	up := c.idx+1 < len(c.ladder)
	down := c.idx > 0
	switch {
	case up && down:
		// Mid-ladder with no gradient yet: seeded tie-break.
		if c.rng.Intn(2) == 0 {
			c.dir = 1
		} else {
			c.dir = -1
		}
	case up:
		c.dir = 1
	case down:
		c.dir = -1
	default:
		c.startEvictOrSettle(f)
		return
	}
	c.probeStep(f)
}

// probeStep applies the next rung in c.dir.
func (c *Controller) probeStep(f Feedback) {
	if c.dir > 0 {
		c.triedUp = true
	} else {
		c.triedDn = true
	}
	next := c.idx + c.dir
	if err := c.applyKnob(next); err != nil {
		c.record(f, "probe %s=%d refused: %v", c.knobName(), c.ladder[next], err)
		c.startEvictOrSettle(f)
		return
	}
	c.record(f, "probe %s=%d", c.knobName(), c.ladder[next])
	c.phase = pProbe
}

// stepProbe scores an active knob probe.
func (c *Controller) stepProbe(f Feedback, score float64) {
	next := c.idx + c.dir
	if score <= c.knobBase*(1-c.cfg.Epsilon) {
		// Keep the step and continue climbing the same way.
		c.idx = next
		c.knobBase = score
		c.moved = true
		c.record(f, "accept %s=%d score %.4g (wait %.2f)", c.knobName(), c.ladder[c.idx], score, f.WaitShare)
		if c.idx+c.dir >= 0 && c.idx+c.dir < len(c.ladder) {
			c.probeStep(f)
			return
		}
		c.startEvictOrSettle(f)
		return
	}
	// No improvement: revert.
	if err := c.applyKnob(c.idx); err != nil {
		c.record(f, "revert %s=%d refused: %v", c.knobName(), c.ladder[c.idx], err)
	} else {
		c.record(f, "revert %s=%d (score %.4g vs %.4g)", c.knobName(), c.ladder[c.idx], score, c.knobBase)
	}
	other := -c.dir
	tried := c.triedUp
	if other < 0 {
		tried = c.triedDn
	}
	if !c.moved && !tried && c.idx+other >= 0 && c.idx+other < len(c.ladder) {
		c.dir = other
		c.probeStep(f)
		return
	}
	c.startEvictOrSettle(f)
}

// startEvictOrSettle applies the pressure-threshold eviction policy,
// then settles. Lazy eviction is adopted outright — not score-probed —
// when capacity is demonstrably uncontended: deferring evictions then
// strictly removes work from the critical path, while its cumulative
// payoff and program-phase noise make a single probe window a
// misleading judge. The settled-phase guard reverts it the moment
// contention appears.
func (c *Controller) startEvictOrSettle(f Feedback) {
	o := c.mg.Options()
	if !o.EvictLazily && f.Pressure < c.cfg.PressureHi &&
		f.StageRetries == 0 && f.ForcedEvictions == 0 {
		if err := c.applyEvict(true); err == nil {
			c.record(f, "adopt evict=lazy (pressure %.2f < %.2f)", f.Pressure, c.cfg.PressureHi)
		}
	}
	c.settle(f)
}

// settle ends the climb, capturing the score baseline the settled-phase
// shift detector compares against.
func (c *Controller) settle(f Feedback) {
	c.phase = pSettled
	c.settledAt = f.Window
	if c.settledTime < 0 {
		c.settledTime = f.Time
	}
	c.warmPending = false
	c.settledScore = c.knobBase
	c.shiftRuns = 0
	o := c.mg.Options()
	victim := "decl"
	if o.EvictPolicy != nil {
		victim = o.EvictPolicy.Name()
	}
	c.record(f, "settled: mode=%v io=%d depth=%d lazy=%v victim=%s",
		o.Mode, o.IOThreads, o.PrefetchDepth, o.EvictLazily, victim)
}

// settledGuard keeps two runtime safety valves after settling. Lazy
// eviction that starts thrashing (capacity retries or forced evictions)
// reverts to eager immediately. And a sustained score collapse — the
// per-task score degrading past ReopenFactor versus the settled
// baseline for two consecutive windows, each carrying fresh capacity
// contention — means the working set shifted under the settled
// verdicts (X10's scenario), so the guard re-opens the climb: back to
// pBase, re-baseline, re-probe. The contention requirement keeps
// workload-shape noise (a parallel tail draining, uneven task weights)
// from reopening a climb that capacity knobs could not improve anyway.
func (c *Controller) settledGuard(f Feedback, score float64) {
	if c.mg.Options().EvictLazily && (f.StageRetries > 0 || f.ForcedEvictions > 0) {
		if err := c.applyEvict(false); err == nil {
			c.record(f, "pressure-revert evict=eager (retries %d forced %d)", f.StageRetries, f.ForcedEvictions)
		}
	}
	contended := f.StageRetries > 0 || f.ForcedEvictions > 0
	if c.settledScore <= 0 || !contended || score <= c.settledScore*(1+c.cfg.ReopenFactor) {
		c.shiftRuns = 0
		return
	}
	c.shiftRuns++
	if c.shiftRuns < 2 {
		return
	}
	c.shiftRuns = 0
	c.reopens++
	c.reopenAt = f.Window
	c.settledAt = -1
	c.record(f, "reopen climb (score %.4g vs settled %.4g, retries %d forced %d)",
		score, c.settledScore, f.StageRetries, f.ForcedEvictions)
	c.buildLadder()
	c.phase = pBase
}

// feedback computes the window's Feedback; ok is false when the window
// is empty (no time passed or no task finished).
func (c *Controller) feedback() (Feedback, bool) {
	now := c.mg.Runtime().Engine().Now()
	elapsed := now - c.lastTime
	tasks := c.tasks - c.lastTasks
	if elapsed <= 0 || tasks <= 0 {
		return Feedback{}, false
	}

	// Sum the projection categories by direct lookup (missing keys read
	// as zero) rather than ranging the map: IdleWait and LockWait fold
	// into one float slot, so the addition order must be fixed.
	var cat [int(numShareCats)]float64
	s := c.tr.Summarize()
	for pe := 0; pe < c.numPEs && pe < len(s.PerPE); pe++ {
		m := s.PerPE[pe]
		cat[sCompute] += m[projections.Compute]
		cat[sWait] += m[projections.IdleWait] + m[projections.LockWait]
		cat[sFetch] += m[projections.Fetch]
		cat[sEvict] += m[projections.Evict]
	}
	ctr := c.met.Counters()

	denom := elapsed * float64(c.numPEs)
	f := Feedback{
		Time:            now,
		Elapsed:         elapsed,
		Tasks:           tasks,
		ComputeShare:    (cat[sCompute] - c.lastCat[sCompute]) / denom,
		WaitShare:       (cat[sWait] - c.lastCat[sWait]) / denom,
		FetchShare:      (cat[sFetch] - c.lastCat[sFetch]) / denom,
		EvictShare:      (cat[sEvict] - c.lastCat[sEvict]) / denom,
		Pressure:        float64(ctr.HBMHighWater) / float64(c.budget),
		StageRetries:    ctr.StageRetries - c.lastCtr.StageRetries,
		ForcedEvictions: ctr.ForcedEvictions - c.lastCtr.ForcedEvictions,
		Refetches:       ctr.Refetches - c.lastCtr.Refetches,
	}
	c.lastTime = now
	c.lastTasks = c.tasks
	c.lastCat = cat
	c.lastCtr = ctr
	return f, true
}
