package adapt_test

import (
	"testing"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
)

// stencilRun runs the Small-scale Fig 8 stencil under an adaptive
// controller starting from the given options, returning the controller
// and the environment (audit enabled, not yet checked).
func stencilRun(t *testing.T, opts core.Options, cfg adapt.Config) (*adapt.Controller, *kernels.Env, float64) {
	t.Helper()
	opts.Audit = true
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: 8,
		Opts:   opts,
		Trace:  true,
	})
	t.Cleanup(env.Close)
	scfg := exp.Small.StencilConfig(exp.GB / 2)
	scfg.Iterations = 10
	app, err := kernels.NewStencil(env.MG, scfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := adapt.New(env.MG, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Attach()
	app.OnIteration = func(_ int, resume func()) {
		ctl.Barrier()
		resume()
	}
	total, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	return ctl, env, total
}

// assertClean fails on any invariant violation or stall.
func assertClean(t *testing.T, env *kernels.Env) {
	t.Helper()
	env.MG.Auditor().CheckQuiescent()
	if err := env.MG.Auditor().Err(); err != nil {
		t.Fatalf("adaptive run not audit-clean: %v", err)
	}
}

// TestStencilConvergesFromSingleIO: starting from the paper's weakest
// movement config (SingleIO, one thread, eager eviction), the
// controller must converge within the run, stay audit-clean, and record
// a non-trivial decision trace.
func TestStencilConvergesFromSingleIO(t *testing.T) {
	ctl, env, _ := stencilRun(t, core.DefaultOptions(core.SingleIO), adapt.Config{})
	assertClean(t, env)
	if !ctl.Converged() {
		t.Fatalf("controller did not converge; trace:\n%s", ctl.TraceString())
	}
	if ctl.ConvergedWindow() <= 0 {
		t.Fatalf("settled window = %d, want > 0", ctl.ConvergedWindow())
	}
	if len(ctl.Trace()) < 3 {
		t.Fatalf("suspiciously short trace:\n%s", ctl.TraceString())
	}
	final := ctl.FinalOptions()
	if !final.Mode.Moves() {
		t.Fatalf("controller left a non-movement mode: %+v", final)
	}
	t.Logf("final %+v\n%s", final, ctl.TraceString())
}

// TestStencilDeterministic: two identical adaptive runs take identical
// decisions and finish at the identical virtual time.
func TestStencilDeterministic(t *testing.T) {
	ctl1, env1, total1 := stencilRun(t, core.DefaultOptions(core.SingleIO), adapt.Config{})
	assertClean(t, env1)
	ctl2, env2, total2 := stencilRun(t, core.DefaultOptions(core.SingleIO), adapt.Config{})
	assertClean(t, env2)
	if total1 != total2 {
		t.Fatalf("total time diverged: %v vs %v", total1, total2)
	}
	if ctl1.TraceString() != ctl2.TraceString() {
		t.Fatalf("decision traces diverged:\n--- run 1\n%s--- run 2\n%s",
			ctl1.TraceString(), ctl2.TraceString())
	}
	if ctl1.FinalOptions() != ctl2.FinalOptions() {
		t.Fatalf("final options diverged: %+v vs %+v", ctl1.FinalOptions(), ctl2.FinalOptions())
	}
}

// TestWarmStartSkipsClimb: seeding a controller with a previous run's
// converged options must adopt them at the first scored window — the
// warm run settles strictly earlier than the cold climb, lands on the
// warm configuration, and stays audit-clean.
func TestWarmStartSkipsClimb(t *testing.T) {
	cold, env, _ := stencilRun(t, core.DefaultOptions(core.SingleIO), adapt.Config{})
	assertClean(t, env)
	if !cold.Converged() {
		t.Fatalf("cold run did not converge; trace:\n%s", cold.TraceString())
	}
	if cold.SettledTime() < 0 {
		t.Fatalf("cold run converged but reports no settle time")
	}
	verdict := cold.FinalOptions()

	warm, wenv, _ := stencilRun(t, core.DefaultOptions(core.SingleIO),
		adapt.Config{Warm: &verdict})
	assertClean(t, wenv)
	if !warm.WarmStarted() {
		t.Fatalf("controller does not report its warm start")
	}
	if !warm.Converged() {
		t.Fatalf("warm run did not settle; trace:\n%s", warm.TraceString())
	}
	if warm.SettledTime() >= cold.SettledTime() {
		t.Fatalf("warm start settled at %v, cold at %v; want strictly earlier:\n%s",
			warm.SettledTime(), cold.SettledTime(), warm.TraceString())
	}
	got := warm.FinalOptions()
	if got.Mode != verdict.Mode || got.IOThreads != verdict.IOThreads ||
		got.PrefetchDepth != verdict.PrefetchDepth || got.EvictLazily != verdict.EvictLazily ||
		got.EvictPolicy != verdict.EvictPolicy {
		t.Fatalf("warm run drifted from the verdict before its guard saw a shift:\ngot  %+v\nwant %+v\n%s",
			got, verdict, warm.TraceString())
	}
}

// TestWarmStartRejectsIllegalOptions: a warm verdict naming an invalid
// retunable combination must fail construction, not corrupt the run.
func TestWarmStartRejectsIllegalOptions(t *testing.T) {
	opts := core.DefaultOptions(core.SingleIO)
	opts.Audit = true
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: 8,
		Opts:   opts,
		Trace:  true,
	})
	defer env.Close()
	bad := core.DefaultOptions(core.SingleIO)
	bad.IOThreads = -3
	if _, err := adapt.New(env.MG, adapt.Config{Warm: &bad}); err == nil {
		t.Fatal("accepted a warm verdict with an illegal thread count")
	}
}

// TestMatMulObserverSampling: with no barrier structure, the controller
// samples windows from task completions and still converges cleanly.
func TestMatMulObserverSampling(t *testing.T) {
	opts := core.DefaultOptions(core.MultiIO)
	opts.Audit = true
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: 8,
		Opts:   opts,
		Trace:  true,
	})
	defer env.Close()
	mcfg := exp.Small.MatMulConfig(3 * exp.GB)
	app, err := kernels.NewMatMul(env.MG, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := adapt.New(env.MG, adapt.Config{SampleEvery: 4 * 8})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Attach()
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	assertClean(t, env)
	if !ctl.Converged() {
		t.Fatalf("controller did not converge; trace:\n%s", ctl.TraceString())
	}
	final := ctl.FinalOptions()
	if final.Mode != core.MultiIO {
		t.Fatalf("observer sampling must never switch strategy (no barriers): %+v", final)
	}
	t.Logf("final %+v\n%s", final, ctl.TraceString())
}

// TestNewRejectsUnusableManagers: the controller refuses managers it
// cannot steer or observe.
func TestNewRejectsUnusableManagers(t *testing.T) {
	// Non-movement mode.
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec: exp.Small.Machine(), NumPEs: 2,
		Opts: core.DefaultOptions(core.DDROnly), Trace: true,
	})
	defer env.Close()
	if _, err := adapt.New(env.MG, adapt.Config{}); err == nil {
		t.Fatal("accepted a manager that moves no data")
	}

	// No metrics collector.
	env2 := kernels.NewEnv(kernels.EnvConfig{
		Spec: exp.Small.Machine(), NumPEs: 2,
		Opts: core.DefaultOptions(core.SingleIO), Trace: true,
	})
	defer env2.Close()
	if _, err := adapt.New(env2.MG, adapt.Config{}); err == nil {
		t.Fatal("accepted a manager without metrics")
	}

	// No tracer.
	opts := core.DefaultOptions(core.SingleIO)
	opts.Metrics = true
	env3 := kernels.NewEnv(kernels.EnvConfig{
		Spec: exp.Small.Machine(), NumPEs: 2, Opts: opts,
	})
	defer env3.Close()
	if _, err := adapt.New(env3.MG, adapt.Config{}); err == nil {
		t.Fatal("accepted a runtime without a tracer")
	}
}
