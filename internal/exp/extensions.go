package exp

import (
	"fmt"
	"math"

	"github.com/hetmem/hetmem/internal/cachemode"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
)

// --- X1: cache-mode comparison (the paper's future work) ---

// CacheModeRow compares flat-mode MultiIO against the analytic
// cache-mode model for one total working set.
type CacheModeRow struct {
	TotalBytes    int64
	FlatIterTime  sim.Time // measured, MultiIO in flat mode
	CacheIterTime sim.Time // analytic direct-mapped cache model
	HitRate       float64
}

// CacheModeResult is experiment X1.
type CacheModeResult struct {
	Scale Scale
	Rows  []CacheModeRow
}

// RunCacheMode sweeps stencil working sets across the HBM capacity
// boundary and compares runtime-managed flat mode with hardware cache
// mode.
func RunCacheMode(s Scale) (*CacheModeResult, error) {
	spec := s.Machine()
	cacheCfg := cachemode.DefaultConfig()
	cacheCfg.CacheBytes = spec.HBMCap
	res := &CacheModeResult{Scale: s}

	totals := []int64{8 * GB, 16 * GB, 32 * GB, 48 * GB}
	if s == Small {
		totals = []int64{GB, 2 * GB, 4 * GB, 6 * GB}
	}
	for _, total := range totals {
		cfg := s.StencilConfig(s.StencilReducedSizes()[1])
		cfg.TotalBytes = total
		if cfg.ReducedBytes > total {
			cfg.ReducedBytes = total
		}
		env := s.newEnv(s.options(core.MultiIO), false)
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			env.Close()
			return nil, err
		}
		if _, err := app.Run(); err != nil {
			env.Close()
			return nil, fmt.Errorf("exp: cachemode at %s: %w", gbs(total), err)
		}
		flat := app.AvgIterTime()
		env.Close()

		// Analytic cache mode: the iteration streams the same bytes
		// the kernels do, at the effective cache-mode bandwidth for
		// this working set.
		perIter := float64(cfg.TotalBytes) / 2 * 3 * float64(cfg.Sweeps)
		cache := sim.Time(cacheCfg.StreamTime(spec, total, perIter))
		res.Rows = append(res.Rows, CacheModeRow{
			TotalBytes:    total,
			FlatIterTime:  flat,
			CacheIterTime: cache,
			HitRate:       cacheCfg.HitRate(total),
		})
	}
	return res, nil
}

// Table renders X1.
func (r *CacheModeResult) Table() Table {
	t := Table{
		Title:  "X1: flat mode + runtime prefetch vs hardware cache mode (Stencil3D)",
		Header: []string{"total WS", "flat+MultiIO iter (s)", "cache-mode iter (s)", "cache hit rate"},
		Notes: []string{
			"extension: the comparison the paper defers to future work;",
			"cache mode degrades as the working set outgrows MCDRAM",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			gbs(row.TotalBytes), f3(row.FlatIterTime), f3(row.CacheIterTime), f3(row.HitRate),
		})
	}
	return t
}

// --- X2: wait-queue topology ablation ---

// QueueAblationResult compares SingleIO with per-PE wait queues (the
// paper's design) against a single shared wait queue (the load-
// imbalance strawman the paper argues against).
type QueueAblationResult struct {
	Scale      Scale
	PerPETime  sim.Time
	SharedTime sim.Time
	// IdleStdDev measures load imbalance: the standard deviation of
	// per-PE idle time.
	PerPEIdleStd  sim.Time
	SharedIdleStd sim.Time
}

// RunAblationQueues runs the stencil under both queue topologies.
func RunAblationQueues(s Scale) (*QueueAblationResult, error) {
	run := func(shared bool) (sim.Time, sim.Time, error) {
		opts := s.options(core.SingleIO)
		opts.SharedWaitQueue = shared
		cfg := s.StencilConfig(s.StencilReducedSizes()[0])
		env := s.newEnv(opts, true)
		defer env.Close()
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			return 0, 0, err
		}
		total, err := app.Run()
		if err != nil {
			return 0, 0, err
		}
		return total, idleStdDev(env, s.NumPEs()), nil
	}
	perPE, perStd, err := run(false)
	if err != nil {
		return nil, err
	}
	shared, sharedStd, err := run(true)
	if err != nil {
		return nil, err
	}
	return &QueueAblationResult{
		Scale: s, PerPETime: perPE, SharedTime: shared,
		PerPEIdleStd: perStd, SharedIdleStd: sharedStd,
	}, nil
}

// idleStdDev computes the stddev of per-worker idle time, the load-
// imbalance measure for X2.
func idleStdDev(env *kernels.Env, workers int) sim.Time {
	sum := env.Tracer.Summarize()
	var mean float64
	vals := make([]float64, 0, workers)
	for pe := 0; pe < len(sum.PerPE) && pe < workers; pe++ {
		vals = append(vals, float64(sum.PerPE[pe][projections.IdleWait]))
		mean += vals[len(vals)-1]
	}
	if len(vals) == 0 {
		return 0
	}
	mean /= float64(len(vals))
	var acc float64
	for _, v := range vals {
		acc += (v - mean) * (v - mean)
	}
	return sim.Time(math.Sqrt(acc / float64(len(vals))))
}

// Table renders X2.
func (r *QueueAblationResult) Table() Table {
	return Table{
		Title:  "X2 (ablation): SingleIO wait-queue topology (Stencil3D)",
		Header: []string{"queues", "total (s)", "per-PE idle stddev (s)"},
		Rows: [][]string{
			{"one per PE (paper)", f2(r.PerPETime), f3(r.PerPEIdleStd)},
			{"single shared", f2(r.SharedTime), f3(r.SharedIdleStd)},
		},
		Notes: []string{
			"paper: per-PE queues avoid the IO thread serving n tasks on one",
			"PE before any other ('serving all PEs equally')",
		},
	}
}

// --- X3: IO thread count sweep ---

// IOThreadsRow is one point of the IO-thread-count sweep.
type IOThreadsRow struct {
	Threads int
	Time    sim.Time
	Speedup float64 // vs 1 thread
}

// IOThreadsResult is experiment X3: the paper plans "finding more
// optimal IO thread count such that one IO thread can be assigned to a
// subgroup of wait queues".
type IOThreadsResult struct {
	Scale Scale
	Rows  []IOThreadsRow
}

// RunAblationIOThreads sweeps the SingleIO strategy's thread count.
func RunAblationIOThreads(s Scale) (*IOThreadsResult, error) {
	res := &IOThreadsResult{Scale: s}
	counts := []int{1, 2, 4, 8, 16, 32}
	if s == Small {
		counts = []int{1, 2, 4, 8}
	}
	var base sim.Time
	for _, n := range counts {
		opts := s.options(core.SingleIO)
		opts.IOThreads = n
		cfg := s.StencilConfig(s.StencilReducedSizes()[0])
		env := s.newEnv(opts, false)
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			env.Close()
			return nil, err
		}
		total, err := app.Run()
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("exp: io threads %d: %w", n, err)
		}
		if n == 1 {
			base = total
		}
		res.Rows = append(res.Rows, IOThreadsRow{
			Threads: n, Time: total, Speedup: float64(base) / float64(total),
		})
	}
	return res, nil
}

// Table renders X3.
func (r *IOThreadsResult) Table() Table {
	t := Table{
		Title:  "X3 (ablation): IO thread count for the staging pool (Stencil3D)",
		Header: []string{"IO threads", "total (s)", "speedup vs 1"},
		Notes: []string{
			"the paper's planned 'more optimal IO thread count' study:",
			"between one global IO thread and one per PE",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(row.Threads), f2(row.Time), f2(row.Speedup)})
	}
	return t
}

// --- X4: eviction policy ablation ---

// EvictionRow compares eager vs lazy eviction for one application.
type EvictionRow struct {
	App       string
	EagerTime sim.Time
	LazyTime  sim.Time
	EagerFet  int64
	LazyFet   int64
}

// EvictionResult is experiment X4: the paper's planned memory-pool
// optimisation ("the creating of space in destination memory could be
// avoided if we maintain a memory pool in each memory type").
type EvictionResult struct {
	Scale Scale
	Rows  []EvictionRow
}

// RunAblationEviction compares eviction policies under MultiIO.
func RunAblationEviction(s Scale) (*EvictionResult, error) {
	res := &EvictionResult{Scale: s}

	runStencil := func(lazy bool) (sim.Time, int64, error) {
		opts := s.options(core.MultiIO)
		opts.EvictLazily = lazy
		cfg := s.StencilConfig(s.StencilReducedSizes()[1])
		env := s.newEnv(opts, false)
		defer env.Close()
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			return 0, 0, err
		}
		total, err := app.Run()
		if err != nil {
			return 0, 0, err
		}
		return total, env.MG.Stats.Fetches, nil
	}
	runMatMul := func(lazy bool) (sim.Time, int64, error) {
		opts := s.options(core.MultiIO)
		opts.EvictLazily = lazy
		cfg := s.MatMulConfig(s.MatMulTotalSizes()[0])
		env := s.newEnv(opts, false)
		defer env.Close()
		app, err := kernels.NewMatMul(env.MG, cfg)
		if err != nil {
			return 0, 0, err
		}
		total, err := app.Run()
		if err != nil {
			return 0, 0, err
		}
		return total, env.MG.Stats.Fetches, nil
	}

	se, sef, err := runStencil(false)
	if err != nil {
		return nil, err
	}
	sl, slf, err := runStencil(true)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, EvictionRow{App: "Stencil3D", EagerTime: se, LazyTime: sl, EagerFet: sef, LazyFet: slf})

	me, mef, err := runMatMul(false)
	if err != nil {
		return nil, err
	}
	ml, mlf, err := runMatMul(true)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, EvictionRow{App: "MatMul", EagerTime: me, LazyTime: ml, EagerFet: mef, LazyFet: mlf})
	return res, nil
}

// Table renders X4.
func (r *EvictionResult) Table() Table {
	t := Table{
		Title:  "X4 (ablation): eager vs lazy (memory-pool) eviction under MultiIO",
		Header: []string{"app", "eager (s)", "lazy (s)", "eager fetches", "lazy fetches"},
		Notes: []string{
			"lazy eviction is the paper's planned memory-pool optimisation:",
			"dead blocks stay in HBM until capacity is needed",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.App, f2(row.EagerTime), f2(row.LazyTime),
			fmt.Sprint(row.EagerFet), fmt.Sprint(row.LazyFet),
		})
	}
	return t
}
