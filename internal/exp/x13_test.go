package exp

import (
	"encoding/json"
	"math"
	"testing"
)

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{3, 3, 3}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

// TestX13Small runs the full figure at small scale and checks every
// acceptance property: sessions complete, symmetric tenants land a
// high Jain index, load makespans are monotone in arrival rate, and
// the isolation gate holds (it is only *enforced* by hmrepro at full
// scale, but it should hold at small scale too).
func TestX13Small(t *testing.T) {
	r, err := RunX13(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.CalibrationS <= 0 {
		t.Fatalf("calibration makespan = %v", r.CalibrationS)
	}
	if len(r.Load) != len(x13GapFactors) {
		t.Fatalf("load rows = %d, want %d", len(r.Load), len(x13GapFactors))
	}
	for _, row := range r.Load {
		if row.P50 <= 0 || row.P99 < row.P50 || row.Mean <= 0 {
			t.Fatalf("load row %s has degenerate stats: %+v", row.Label, row)
		}
		if row.Jain < 0.8 {
			t.Fatalf("load row %s: Jain %.4f below 0.8 despite symmetric tenants", row.Label, row.Jain)
		}
	}
	// Queueing theory sanity: heavier load cannot reduce p99.
	for i := 1; i < len(r.Load); i++ {
		if r.Load[i].P99 < r.Load[i-1].P99-1e-9 {
			t.Fatalf("p99 fell from %v (%s) to %v (%s) as load increased",
				r.Load[i-1].P99, r.Load[i-1].Label, r.Load[i].P99, r.Load[i].Label)
		}
	}
	if !r.FairWithinBound {
		t.Fatalf("fair p99 %v exceeds bound %v (alone %v)", r.Fair.P99, r.BoundS, r.Alone.P99)
	}
	if !r.FairBeatsUnfair {
		t.Fatalf("fair p99 %v not better than unfair %v", r.Fair.P99, r.Unfair.P99)
	}
	if !r.Pass() {
		t.Fatal("Pass() false with both gates holding")
	}
	if r.Table().String() == "" {
		t.Fatal("empty table")
	}
}

// TestX13Deterministic: the whole figure — HTTP submissions included —
// must be a pure function of the scale. The bench JSON is compared so
// every emitted number is covered.
func TestX13Deterministic(t *testing.T) {
	assertDeterministic(t, "x13", func() (string, error) {
		r, err := RunX13(Small)
		if err != nil {
			return "", err
		}
		raw, err := json.Marshal(r.Bench())
		if err != nil {
			return "", err
		}
		return r.Table().String() + string(raw), nil
	})
}

// TestX12ServeLeg covers the serve row of BENCH_engine.json at the
// small machine: the session mix must push all 1M tasks through and
// report a sane throughput.
func TestX12ServeLeg(t *testing.T) {
	leg, err := x12ServeRun(Small, &X12EngineRow{TasksPerSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 8 sessions x 64 lanes x floor(125000/64) tasks.
	if want := int64(8 * 64 * (125_000 / 64)); leg.Tasks != want {
		t.Fatalf("tasks = %d, want %d", leg.Tasks, want)
	}
	if leg.TasksPerSec <= 0 || leg.WallSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", leg)
	}
	if leg.Windows == 0 {
		t.Fatal("no windows stepped")
	}
}
