package exp

import "testing"

// The simulation's claim to reproducibility: every driver is a pure
// function of (scale, seed). Running a figure twice must produce
// byte-identical result tables — any divergence means nondeterminism
// crept into the event engine, the staging protocol, or the adaptive
// controller's decisions.

func assertDeterministic(t *testing.T, name string, run func() (string, error)) {
	t.Helper()
	first, err := run()
	if err != nil {
		t.Fatalf("%s (run 1): %v", name, err)
	}
	second, err := run()
	if err != nil {
		t.Fatalf("%s (run 2): %v", name, err)
	}
	if first != second {
		t.Fatalf("%s: runs diverged\n--- run 1\n%s\n--- run 2\n%s", name, first, second)
	}
}

func TestFig8Deterministic(t *testing.T) {
	SetAudit(false)
	assertDeterministic(t, "fig8", func() (string, error) {
		r, err := RunFig8(Small)
		if err != nil {
			return "", err
		}
		return r.Table().String(), nil
	})
}

func TestFig9Deterministic(t *testing.T) {
	SetAudit(false)
	assertDeterministic(t, "fig9", func() (string, error) {
		r, err := RunFig9(Small)
		if err != nil {
			return "", err
		}
		return r.Table().String(), nil
	})
}

// TestX9Deterministic covers the adaptive controller end to end: the
// rendered table embeds every decision trace, so a single flipped
// probe or switch shows up as a diff.
func TestX9Deterministic(t *testing.T) {
	SetAudit(false)
	assertDeterministic(t, "x9", func() (string, error) {
		r, err := RunX9(Small)
		if err != nil {
			return "", err
		}
		return r.Table().String(), nil
	})
}
