package exp

import (
	"fmt"
	"runtime"
	"time"

	"github.com/hetmem/hetmem/internal/cluster"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/serve"
	"github.com/hetmem/hetmem/internal/sim"
)

// X12 benchmarks the engine hot path itself rather than a paper figure:
// every number here is host wall-clock, not virtual time, so X12 is
// deliberately excluded from the determinism suite and from hmrepro's
// default figure list (it runs only under -engine / -bench-engine).
//
// Two legs:
//
//   - Engine throughput: a synthetic scheduler-stress workload (64
//     lanes, each task fires one work event and replaces a far-future
//     guard timeout, so every task exercises Schedule, Cancel and the
//     free-list) at 10k/100k/1M tasks. Reported against a recorded
//     pre-overhaul baseline to keep the speedup claim honest across
//     future sessions.
//
//   - Cluster substrate: the X8 distributed stencil on the per-node
//     engine cluster, windows executed serially vs on goroutines.
//     The byte-identity of the two runs is asserted (and reported),
//     alongside both wall times. On a single-core host the parallel
//     wall time will not beat serial; the identity bit is the result
//     that must hold everywhere.

// X12BaselineTasksPerSec is the 1M-task throughput of this exact
// workload measured on the pre-overhaul engine (median of three runs on
// the reference container, recorded immediately before the pooled-event
// engine landed). Bench() reports current/baseline as the speedup.
const X12BaselineTasksPerSec = 673175.0

// x12TaskCounts are the engine-leg sweep points.
var x12TaskCounts = []int{10_000, 100_000, 1_000_000}

// X12EngineRow is one engine-throughput measurement.
type X12EngineRow struct {
	Tasks         int64
	WallSec       float64
	TasksPerSec   float64
	EventsPerSec  float64
	BytesPerEvent float64
	Scheduled     int64
	Cancelled     int64
	Reused        int64
}

// X12ClusterLeg compares serial vs goroutine-parallel window execution
// of the same parallel-cluster stencil run.
type X12ClusterLeg struct {
	Nodes           int
	SerialWallSec   float64
	ParallelWallSec float64
	Identical       bool
	VirtualTotal    float64
	Messages        int64
	Windows         int64
}

// X12ServeLeg measures the same 1M-task stress workload pushed through
// the serve scheduler as a multi-tenant session mix: the tasks are
// split across sessions on private engines, stepped in lockstep
// windows with budget accounting and IO-share recomputation between
// them. RelativeToRaw is serve's tasks/sec over the raw single-engine
// 1M row — the cost of the multi-tenant machinery on the hot path.
type X12ServeLeg struct {
	Sessions      int
	Tenants       int
	Tasks         int64
	WallSec       float64
	TasksPerSec   float64
	RelativeToRaw float64
	Windows       int64
}

// X12Result holds all three legs.
type X12Result struct {
	Scale   Scale
	Engine  []X12EngineRow
	Serve   X12ServeLeg
	Cluster X12ClusterLeg
}

// x12EngineRun drives the scheduler-stress workload for n tasks on a
// fresh engine. Per task: cancel the lane's previous guard, do the
// work, schedule the next work event and a new far-future guard. The
// guards are the point — they force one Schedule+Cancel pair per task,
// the pattern that used to leak dead events into the heap.
func x12EngineRun(n int) X12EngineRow {
	eng := sim.NewEngine(1)
	defer eng.Close()
	const lanes = 64
	const period = 1e-6
	const guardDelay = 1e3
	guards := make([]sim.EventHandle, lanes)
	remaining := make([]int, lanes)
	for i := range remaining {
		remaining[i] = n / lanes
	}

	var tasks int64
	var step func(lane int)
	step = func(lane int) {
		guards[lane].Cancel()
		tasks++
		remaining[lane]--
		if remaining[lane] > 0 {
			lane := lane
			eng.After(period, func() { step(lane) })
		}
		guards[lane] = eng.After(guardDelay, func() {})
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now() //hmlint:ignore determinism X12 measures host wall-clock by design

	for i := 0; i < lanes; i++ {
		lane := i
		eng.After(period, func() { step(lane) })
	}
	eng.RunAll()

	wall := time.Since(start).Seconds() //hmlint:ignore determinism X12 measures host wall-clock by design
	runtime.ReadMemStats(&after)
	st := eng.EventStats()
	fired := float64(st.Fired)
	return X12EngineRow{
		Tasks:         tasks,
		WallSec:       wall,
		TasksPerSec:   float64(tasks) / wall,
		EventsPerSec:  fired / wall,
		BytesPerEvent: float64(after.TotalAlloc-before.TotalAlloc) / fired,
		Scheduled:     st.Scheduled,
		Cancelled:     st.Cancelled,
		Reused:        st.Reused,
	}
}

// x12StressApp adapts the engine-leg stress workload to the serve App
// interface: the same 64-lane Schedule+Cancel pattern, running on a
// session's private engine under the multi-tenant scheduler.
type x12StressApp struct {
	eng       *sim.Engine
	total     int64
	tasks     int64
	end       sim.Time
	guards    []sim.EventHandle
	remaining []int
}

func newX12StressApp(eng *sim.Engine, n int) *x12StressApp {
	const lanes = 64
	a := &x12StressApp{
		eng:       eng,
		guards:    make([]sim.EventHandle, lanes),
		remaining: make([]int, lanes),
	}
	for i := range a.remaining {
		a.remaining[i] = n / lanes
		a.total += int64(n / lanes)
	}
	return a
}

func (a *x12StressApp) Start() {
	const period = 1e-6
	const guardDelay = 1e3
	var step func(lane int)
	step = func(lane int) {
		a.guards[lane].Cancel()
		a.tasks++
		a.remaining[lane]--
		if a.tasks >= a.total {
			a.end = a.eng.Now()
		}
		if a.remaining[lane] > 0 {
			lane := lane
			a.eng.After(period, func() { step(lane) })
		}
		a.guards[lane] = a.eng.After(guardDelay, func() {})
	}
	for i := range a.remaining {
		lane := i
		a.eng.After(period, func() { step(lane) })
	}
}

func (a *x12StressApp) Done() bool           { return a.total > 0 && a.tasks >= a.total }
func (a *x12StressApp) FinishedAt() sim.Time { return a.end }

// x12ServeRun pushes the 1M-task point through the serve scheduler as
// 8 sessions across 4 tenants and measures wall-clock throughput.
func x12ServeRun(s Scale, raw *X12EngineRow) (X12ServeLeg, error) {
	const nSessions = 8
	const nTenants = 4
	leg := X12ServeLeg{Sessions: nSessions, Tenants: nTenants}
	perSession := 1_000_000 / nSessions

	sched, err := serve.NewScheduler(serve.Config{
		Spec:    s.Machine(),
		NumPEs:  s.NumPEs(),
		Reserve: s.HBMReserve(),
		Fair:    true,
	})
	if err != nil {
		return leg, err
	}
	sched.RegisterKernel("stress", func(env *kernels.Env, spec serve.WorkloadSpec) (serve.App, error) {
		return newX12StressApp(env.Eng, perSession), nil
	})

	start := time.Now() //hmlint:ignore determinism X12 measures host wall-clock by design
	for i := 0; i < nSessions; i++ {
		sess, err := sched.Submit(serve.WorkloadSpec{
			Tenant:    fmt.Sprintf("t%d", i%nTenants),
			Kernel:    "stress",
			Bytes:     32 << 20,
			Reduced:   8 << 20,
			Footprint: 16 << 20,
		})
		if err != nil {
			return leg, fmt.Errorf("stress session %d: %w", i, err)
		}
		if sess.State != serve.Running {
			return leg, fmt.Errorf("stress session %d queued; budgets must admit all %d", i, nSessions)
		}
	}
	if err := sched.RunUntilIdle(0); err != nil {
		return leg, err
	}
	leg.WallSec = time.Since(start).Seconds() //hmlint:ignore determinism X12 measures host wall-clock by design

	for _, sess := range sched.Sessions() {
		if sess.State != serve.Done {
			return leg, fmt.Errorf("stress session %s ended %s: %s", sess.ID, sess.State, sess.Err)
		}
	}
	// Each session runs lanes*(perSession/lanes) tasks (64 lanes).
	leg.Tasks = int64(nSessions * (perSession / 64) * 64)
	leg.TasksPerSec = float64(leg.Tasks) / leg.WallSec
	if raw != nil && raw.TasksPerSec > 0 {
		leg.RelativeToRaw = leg.TasksPerSec / raw.TasksPerSec
	}
	leg.Windows = sched.StatsSnapshot().Windows
	return leg, nil
}

// x12ClusterRun executes the X8 stencil on a parallel cluster and
// returns its signature, result and wall time.
func x12ClusterRun(s Scale, nodes int, parallel bool) (string, *cluster.StencilResult, *cluster.PCluster, float64, error) {
	perNode := s.StencilConfig(s.StencilReducedSizes()[1])
	perNode.Iterations = 3
	pc, err := cluster.NewParallel(cluster.Config{
		Nodes:  nodes,
		Spec:   s.Machine(),
		NumPEs: s.NumPEs(),
		Opts:   s.options(core.MultiIO),
		Net:    cluster.DefaultNetwork(),
	}, parallel)
	if err != nil {
		return "", nil, nil, 0, err
	}
	start := time.Now() //hmlint:ignore determinism X12 measures host wall-clock by design
	res, err := cluster.RunStencilParallel(pc, cluster.StencilConfig{PerNode: perNode, Nodes: nodes})
	wall := time.Since(start).Seconds() //hmlint:ignore determinism X12 measures host wall-clock by design
	if err != nil {
		pc.Close()
		return "", nil, nil, 0, err
	}
	for i, nd := range pc.Nodes {
		nd.MG.Auditor().CheckQuiescent()
		if aerr := nd.MG.Auditor().Err(); aerr != nil {
			pc.Close()
			return "", nil, nil, 0, fmt.Errorf("node %d: %w", i, aerr)
		}
	}
	return pc.Signature(res), res, pc, wall, nil
}

// RunX12 runs both legs at the given scale.
func RunX12(s Scale) (*X12Result, error) {
	res := &X12Result{Scale: s}
	for _, n := range x12TaskCounts {
		res.Engine = append(res.Engine, x12EngineRun(n))
	}

	serveLeg, err := x12ServeRun(s, res.row1M())
	if err != nil {
		return nil, fmt.Errorf("exp: x12 serve leg: %w", err)
	}
	res.Serve = serveLeg

	nodes := 8
	if s == Full {
		nodes = 4
	}
	serialSig, _, spc, serialWall, err := x12ClusterRun(s, nodes, false)
	if err != nil {
		return nil, fmt.Errorf("exp: x12 serial cluster: %w", err)
	}
	defer spc.Close()
	parallelSig, pres, ppc, parallelWall, err := x12ClusterRun(s, nodes, true)
	if err != nil {
		return nil, fmt.Errorf("exp: x12 parallel cluster: %w", err)
	}
	defer ppc.Close()
	res.Cluster = X12ClusterLeg{
		Nodes:           nodes,
		SerialWallSec:   serialWall,
		ParallelWallSec: parallelWall,
		Identical:       serialSig == parallelSig,
		VirtualTotal:    float64(pres.Total),
		Messages:        ppc.Stats.Messages,
		Windows:         ppc.Stats.Windows,
	}
	return res, nil
}

// row1M returns the largest engine sweep point (the one the baseline
// and the acceptance speedup are pinned to).
func (r *X12Result) row1M() *X12EngineRow {
	if len(r.Engine) == 0 {
		return nil
	}
	best := &r.Engine[0]
	for i := range r.Engine {
		if r.Engine[i].Tasks > best.Tasks {
			best = &r.Engine[i]
		}
	}
	return best
}

// Speedup is the 1M-point throughput over the recorded pre-overhaul
// baseline.
func (r *X12Result) Speedup() float64 {
	if row := r.row1M(); row != nil {
		return row.TasksPerSec / X12BaselineTasksPerSec
	}
	return 0
}

// Table renders X12. Unlike every other table, the numbers are host
// wall-clock: this is a benchmark of the simulator, not a simulation.
func (r *X12Result) Table() Table {
	verdict := "BYTE-IDENTICAL"
	if !r.Cluster.Identical {
		verdict = "DIVERGED"
	}
	t := Table{
		Title: "X12: engine hot-path throughput (host wall-clock, not virtual time)",
		Header: []string{"tasks", "wall (s)", "tasks/sec", "events/sec",
			"bytes/event", "pool reuse"},
		Notes: []string{
			"workload: 64 lanes, one work event + one cancelled guard timeout per task",
			fmt.Sprintf("recorded pre-overhaul baseline: %.0f tasks/sec at 1M; current speedup %.1fx",
				X12BaselineTasksPerSec, r.Speedup()),
			fmt.Sprintf("serve leg: same 1M tasks as %d sessions / %d tenants through the multi-tenant scheduler: %.0f tasks/sec (%.2fx raw engine, %d windows)",
				r.Serve.Sessions, r.Serve.Tenants, r.Serve.TasksPerSec, r.Serve.RelativeToRaw, r.Serve.Windows),
			fmt.Sprintf("cluster leg: %d-node stencil, serial %.3fs vs goroutine-parallel %.3fs windows: %s",
				r.Cluster.Nodes, r.Cluster.SerialWallSec, r.Cluster.ParallelWallSec, verdict),
			fmt.Sprintf("  %d windows, %d fabric messages, virtual makespan %s s",
				r.Cluster.Windows, r.Cluster.Messages, f3(r.Cluster.VirtualTotal)),
		},
	}
	for _, row := range r.Engine {
		reuse := 0.0
		if row.Scheduled > 0 {
			reuse = float64(row.Reused) / float64(row.Scheduled) * 100
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Tasks),
			f3(row.WallSec),
			fmt.Sprintf("%.0f", row.TasksPerSec),
			fmt.Sprintf("%.0f", row.EventsPerSec),
			f2(row.BytesPerEvent),
			fmt.Sprintf("%.1f%%", reuse),
		})
	}
	return t
}

// X12EngineBenchRow is one sweep point in BENCH_engine.json.
type X12EngineBenchRow struct {
	Tasks         int64   `json:"tasks"`
	WallSec       float64 `json:"wall_s"`
	TasksPerSec   float64 `json:"tasks_per_sec"`
	EventsPerSec  float64 `json:"events_per_sec"`
	BytesPerEvent float64 `json:"bytes_per_event"`
	Scheduled     int64   `json:"events_scheduled"`
	Cancelled     int64   `json:"events_cancelled"`
	Reused        int64   `json:"events_reused"`
}

// X12ClusterBench is the cluster leg in BENCH_engine.json.
type X12ClusterBench struct {
	Nodes           int     `json:"nodes"`
	SerialWallSec   float64 `json:"serial_wall_s"`
	ParallelWallSec float64 `json:"parallel_wall_s"`
	Identical       bool    `json:"byte_identical"`
	VirtualTotal    float64 `json:"virtual_makespan_s"`
	Messages        int64   `json:"fabric_messages"`
	Windows         int64   `json:"windows"`
}

// X12ServeBench is the serve leg in BENCH_engine.json.
type X12ServeBench struct {
	Sessions      int     `json:"sessions"`
	Tenants       int     `json:"tenants"`
	Tasks         int64   `json:"tasks"`
	WallSec       float64 `json:"wall_s"`
	TasksPerSec   float64 `json:"tasks_per_sec"`
	RelativeToRaw float64 `json:"relative_to_raw_engine"`
	Windows       int64   `json:"windows"`
}

// X12Bench is the JSON snapshot written by hmrepro -bench-engine.
type X12Bench struct {
	Scale             string              `json:"scale"`
	Engine            []X12EngineBenchRow `json:"engine"`
	BaselineTasksPerS float64             `json:"baseline_1m_tasks_per_sec"`
	SpeedupVsBaseline float64             `json:"speedup_1m_vs_baseline"`
	Serve             X12ServeBench       `json:"serve"`
	Cluster           X12ClusterBench     `json:"cluster"`
}

// Bench converts the result for JSON emission.
func (r *X12Result) Bench() X12Bench {
	b := X12Bench{
		Scale:             r.Scale.String(),
		BaselineTasksPerS: X12BaselineTasksPerSec,
		SpeedupVsBaseline: r.Speedup(),
		Serve: X12ServeBench{
			Sessions:      r.Serve.Sessions,
			Tenants:       r.Serve.Tenants,
			Tasks:         r.Serve.Tasks,
			WallSec:       r.Serve.WallSec,
			TasksPerSec:   r.Serve.TasksPerSec,
			RelativeToRaw: r.Serve.RelativeToRaw,
			Windows:       r.Serve.Windows,
		},
		Cluster: X12ClusterBench{
			Nodes:           r.Cluster.Nodes,
			SerialWallSec:   r.Cluster.SerialWallSec,
			ParallelWallSec: r.Cluster.ParallelWallSec,
			Identical:       r.Cluster.Identical,
			VirtualTotal:    r.Cluster.VirtualTotal,
			Messages:        r.Cluster.Messages,
			Windows:         r.Cluster.Windows,
		},
	}
	for _, row := range r.Engine {
		b.Engine = append(b.Engine, X12EngineBenchRow{
			Tasks:         row.Tasks,
			WallSec:       row.WallSec,
			TasksPerSec:   row.TasksPerSec,
			EventsPerSec:  row.EventsPerSec,
			BytesPerEvent: row.BytesPerEvent,
			Scheduled:     row.Scheduled,
			Cancelled:     row.Cancelled,
			Reused:        row.Reused,
		})
	}
	return b
}
