package exp

import "testing"

// TestX9AdaptiveAcceptance enforces the experiment's acceptance bar at
// the test scale: the controller converges within every run, lands
// within 5% of the best fixed configuration at every point of both
// sweeps, beats the worst fixed configuration by at least 1.3x
// somewhere, and every adaptive run is audit-clean (RunX9 fails on any
// violation or stall, so err == nil covers that).
func TestX9AdaptiveAcceptance(t *testing.T) {
	SetAudit(false)
	r, err := RunX9(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("expected 6 points (3 stencil + 3 matmul), got %d", len(r.Points))
	}
	bigWin := false
	for _, p := range r.Points {
		if p.ConvergedWindow < 0 {
			t.Errorf("%s %s: controller never settled\n%s", p.App, gbs(p.Size), r.Table())
		}
		if v := p.VsBest(); v > 1.05 {
			t.Errorf("%s %s: adaptive %.4g is %.2fx the best fixed %q %.4g (bar: 1.05)",
				p.App, gbs(p.Size), p.Adaptive, v, p.Best, p.BestVal)
		}
		if p.VsWorst() >= 1.3 {
			bigWin = true
		}
	}
	if !bigWin {
		t.Errorf("adaptive never beat the worst fixed configuration by 1.3x")
	}
	t.Logf("\n%s", r.Table())
}
