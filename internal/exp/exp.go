// Package exp contains one driver per table/figure of the paper's
// evaluation (Figs. 1, 2, 5, 6, 7, 8, 9) plus the extension experiments
// from DESIGN.md (cache-mode comparison X1 and the ablations X2-X4).
// Every driver builds fresh simulated machines, runs the workloads at
// the requested scale and returns structured rows that render as text
// tables mirroring the paper's plots.
package exp

import (
	"fmt"
	"strings"

	"github.com/hetmem/hetmem/internal/audit"
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/topology"
)

// GB re-exports the byte unit used throughout.
const GB = topology.GB

// Scale selects experiment sizing.
type Scale int

const (
	// Full runs the paper's configurations: a 64-PE KNL, 32 GB
	// stencil grids, 24-54 GB matrices. A full figure takes seconds
	// of wall time.
	Full Scale = iota
	// Small runs a 1/8 slice (8 PEs, 2 GB MCDRAM, bandwidths / 8)
	// with proportionally scaled working sets — same shapes, fast
	// enough for unit tests.
	Small
)

// String names the scale.
func (s Scale) String() string {
	if s == Small {
		return "small"
	}
	return "full"
}

// Machine returns the machine spec for the scale.
func (s Scale) Machine() topology.MachineSpec {
	spec := topology.KNL7250()
	if s == Small {
		spec.Cores = 8
		spec.TilesL2 = 4
		spec.HBMCap = 2 * GB
		spec.DDRCap = 12 * GB
		spec.HBMReadBW /= 8
		spec.HBMWriteBW /= 8
		spec.HBMTotalBW /= 8
		spec.DDRReadBW /= 8
		spec.DDRWriteBW /= 8
		spec.DDRTotalBW /= 8
		// The slice also has 1/8 the IO-thread capability per worker
		// population: a single IO thread serving 8 PEs here must be
		// as relatively starved as one serving 64 PEs on the full
		// machine, or Fig. 8's Single-IO slowdown disappears.
		spec.MemcpyBW /= 8
	}
	return spec
}

// TieredMachine returns the machine spec extended to the given memory
// chain depth (2..4, per topology.TieredKNL). At Small scale the extra
// tiers are cut to the same 1/8 slice as the base machine — capacities
// and bandwidths divided by 8 — so the pressure ratios between tiers
// match the full machine's.
func (s Scale) TieredMachine(depth int) (topology.MachineSpec, error) {
	full, err := topology.TieredKNL(depth)
	if err != nil {
		return topology.MachineSpec{}, err
	}
	spec := s.Machine()
	spec.Name = full.Name
	tiers := make([]topology.TierSpec, len(full.ExtraTiers))
	copy(tiers, full.ExtraTiers)
	if s == Small {
		for i := range tiers {
			tiers[i].Cap /= 8
			tiers[i].ReadBW /= 8
			tiers[i].WriteBW /= 8
			tiers[i].TotalBW /= 8
		}
	}
	spec.ExtraTiers = tiers
	return spec, nil
}

// NumPEs returns the worker count for the scale (the paper uses 64 of
// the 68 cores).
func (s Scale) NumPEs() int {
	if s == Small {
		return 8
	}
	return 64
}

// HBMReserve returns the headroom kept free on HBM.
func (s Scale) HBMReserve() int64 {
	if s == Small {
		return GB / 8
	}
	return GB
}

// auditOn enables the invariant auditor on every environment the
// drivers build; auditEnvs collects those environments so DrainAudit
// can report their metrics and violations after the figures run. All
// drivers are single-threaded, so plain package state suffices.
var (
	auditOn   bool
	auditEnvs []*kernels.Env
)

// SetAudit switches invariant auditing on or off for subsequent driver
// runs and resets the collected-environment registry.
func SetAudit(on bool) {
	auditOn = on
	auditEnvs = nil
}

// DrainAudit returns one metrics snapshot per audited environment
// created since SetAudit, labelled, plus the total violation count
// across them. The registry is cleared.
func DrainAudit() ([]audit.Snapshot, int64) {
	var snaps []audit.Snapshot
	var violations int64
	for _, env := range auditEnvs {
		snap, ok := env.MG.AuditSnapshot()
		if !ok {
			continue
		}
		violations += snap.ViolationCount
		snaps = append(snaps, snap)
	}
	auditEnvs = nil
	return snaps, violations
}

// evictPolicy, when non-nil, is applied to every movement-mode
// environment the drivers build — the -evict-policy flag and the
// per-policy determinism/audit sweeps set it. Placement-only modes
// never evict, so they stay unconfigured (Validate rejects the combo).
var evictPolicy core.EvictPolicy

// SetEvictPolicy selects the eviction victim policy for subsequent
// driver runs (nil restores the DeclOrder default).
func SetEvictPolicy(p core.EvictPolicy) { evictPolicy = p }

// options returns paper-faithful manager options for a mode at this
// scale.
func (s Scale) options(mode core.Mode) core.Options {
	o := core.DefaultOptions(mode)
	o.HBMReserve = s.HBMReserve()
	o.Audit = auditOn
	if evictPolicy != nil && mode.Moves() {
		o.EvictPolicy = evictPolicy
	}
	return o
}

// newEnv builds a fresh environment for one run.
func (s Scale) newEnv(opts core.Options, trace bool) *kernels.Env {
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   s.Machine(),
		NumPEs: s.NumPEs(),
		Opts:   opts,
		Params: charm.DefaultParams(),
		Trace:  trace,
	})
	registerAudit(env)
	return env
}

// registerAudit enrols an environment in the DrainAudit registry;
// drivers that build environments directly (custom machine specs) call
// it themselves.
func registerAudit(env *kernels.Env) {
	if auditOn && env.MG.Auditor() != nil {
		auditEnvs = append(auditEnvs, env)
	}
}

// StencilConfig returns the scale's Stencil3D configuration with the
// given reduced working set.
func (s Scale) StencilConfig(reduced int64) kernels.StencilConfig {
	cfg := kernels.DefaultStencilConfig()
	cfg.NumPEs = s.NumPEs()
	if s == Small {
		cfg.TotalBytes = 4 * GB
	}
	cfg.ReducedBytes = reduced
	return cfg
}

// StencilReducedSizes returns the x-axis of Fig. 8 at this scale.
func (s Scale) StencilReducedSizes() []int64 {
	if s == Small {
		return []int64{GB / 4, GB / 2, GB}
	}
	return []int64{2 * GB, 4 * GB, 8 * GB}
}

// MatMulConfig returns the scale's MatMul configuration with the given
// total working set.
func (s Scale) MatMulConfig(total int64) kernels.MatMulConfig {
	cfg := kernels.DefaultMatMulConfig()
	cfg.NumPEs = s.NumPEs()
	cfg.TotalBytes = total
	if s == Small {
		// Keep the block-size-to-HBM proportion of the full machine.
		cfg.Grid = 8
	}
	return cfg
}

// MatMulTotalSizes returns the x-axis of Fig. 9 at this scale.
func (s Scale) MatMulTotalSizes() []int64 {
	if s == Small {
		return []int64{3 * GB, 9 * GB / 2, 27 * GB / 4}
	}
	return []int64{24 * GB, 36 * GB, 54 * GB}
}

// StrategyModes lists the data-movement strategies of §IV-B in figure
// order.
func StrategyModes() []core.Mode {
	return []core.Mode{core.SingleIO, core.NoIO, core.MultiIO}
}

// Table is a renderable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f2, f3 format floats for table cells.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// gbs formats a byte count in GB.
func gbs(b int64) string { return fmt.Sprintf("%.2g GB", float64(b)/float64(GB)) }
