package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"github.com/hetmem/hetmem/internal/serve"
)

// X13 evaluates the multi-tenant service (internal/serve + hetmemd):
// sessions submitted over the real HTTP API (in-process httptest — no
// sockets, no wall clock anywhere in scheduling), scheduled in lockstep
// on the shared virtual clock with per-tenant HBM budgets and
// weighted-fair IO lanes. All numbers are virtual time, so X13 joins
// the byte-identical determinism suite — unlike X12, two consecutive
// runs must produce identical tables.
//
// Two legs:
//
//   - Load sweep: three symmetric tenants submit identical session
//     mixes (stencil/shift alternating) with seeded-exponential
//     interarrivals at low/medium/high rates. Reported: p50/p99/mean
//     session makespan (arrival to finish, queue wait included) and
//     Jain's fairness index across the per-tenant mean makespans —
//     symmetric demand should land J near 1.
//
//   - Budget isolation: a small tenant runs a closed-loop session
//     sequence while a hog tenant keeps several staging-heavy sessions
//     running. Per-tenant budgets guarantee the small tenant always
//     admits immediately; the question is bandwidth. With fair lanes
//     the small tenant's p99 must stay within BoundFactor of its
//     alone-run p99 (equal weights, two tenants: fair share is half
//     the fabric, plus scheduling slack); with fairness off the hog's
//     session count grabs the fabric and the small tenant degrades.
//     hmrepro gates the full-scale run on both conditions.

// X13BoundFactor is the isolation acceptance bound: the small tenant's
// fair-mode p99 must stay within this factor of its alone-run p99.
// With equal weights and two tenants the fair share is half the
// staging fabric; compute is unshared, so 2x is the worst case — the
// extra slack covers lane quantisation and window-boundary effects.
const X13BoundFactor = 2.2

// x13Seed seeds the arrival process of the load sweep.
const x13Seed = 42

// x13LoadSessions is the session count per load-sweep point (divisible
// by the tenant count so demand is symmetric).
const x13LoadSessions = 18

// x13SmallSessions is the closed-loop session count of the isolation
// leg's small tenant.
const x13SmallSessions = 4

// x13Hogs is how many hog sessions the isolation leg keeps running.
const x13Hogs = 4

// x13GapFactors scale the calibration makespan into the load sweep's
// mean interarrival gaps: 1.5x is underload (sessions mostly run
// alone), 0.25x queues moderately, 0.0625x saturates.
var x13GapFactors = []struct {
	Label  string
	Factor float64
}{
	{"low", 1.5},
	{"med", 0.25},
	{"high", 0.0625},
}

// x13Tenants is the load sweep's symmetric tenant set.
var x13Tenants = []string{"alpha", "beta", "gamma"}

// x13Workload is the standard session submission at the scale: an
// out-of-core stencil (or shift) sized so three can run concurrently
// per tenant.
func (s Scale) x13Workload(tenant, kernel string) serve.WorkloadSpec {
	unit := int64(1) << 20 // 1 MB
	if s == Full {
		unit = 8 << 20
	}
	return serve.WorkloadSpec{
		Tenant:     tenant,
		Kernel:     kernel,
		Bytes:      384 * unit,
		Reduced:    128 * unit,
		Footprint:  192 * unit,
		Iterations: 2,
		Sweeps:     4,
	}
}

// x13Hog is the isolation leg's staging-heavy session: the footprint
// is below the active set, so the run refetches continuously and lives
// on the IO fabric.
func (s Scale) x13Hog() serve.WorkloadSpec {
	unit := int64(1) << 20
	if s == Full {
		unit = 8 << 20
	}
	return serve.WorkloadSpec{
		Tenant:     "hog",
		Kernel:     "stencil",
		Bytes:      768 * unit,
		Reduced:    256 * unit,
		Footprint:  160 * unit,
		Iterations: 2,
		Sweeps:     2,
	}
}

// x13Config builds the service config: three symmetric tenants for the
// load sweep plus the isolation pair, each with a third (resp. a
// dedicated slice) of the grantable budget.
func (s Scale) x13Config(fair bool) serve.Config {
	unit := int64(1) << 20
	if s == Full {
		unit = 8 << 20
	}
	grantable := s.Machine().HBMCap - s.HBMReserve()
	return serve.Config{
		Spec:    s.Machine(),
		NumPEs:  s.NumPEs(),
		Reserve: s.HBMReserve(),
		Fair:    fair,
		Audit:   auditOn,
		Tenants: []serve.TenantConfig{
			{Name: "alpha", Budget: grantable / 5, Weight: 1},
			{Name: "beta", Budget: grantable / 5, Weight: 1},
			{Name: "gamma", Budget: grantable / 5, Weight: 1},
			{Name: "small", Budget: 192 * unit, Weight: 1},
			{Name: "hog", Budget: int64(x13Hogs) * 160 * unit, Weight: 1},
		},
	}
}

// x13Srv wraps a serve.Server behind an in-process httptest server so
// the experiment exercises the real HTTP surface.
type x13Srv struct {
	ts  *httptest.Server
	srv *serve.Server
}

func newX13Srv(cfg serve.Config) (*x13Srv, error) {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	return &x13Srv{ts: httptest.NewServer(srv.Handler()), srv: srv}, nil
}

func (c *x13Srv) close() { c.ts.Close() }

// submit POSTs the spec and returns the created session id.
func (c *x13Srv) submit(spec serve.WorkloadSpec) (string, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := c.ts.Client().Post(c.ts.URL+"/v1/sessions", "application/json", bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, body.Error)
	}
	return body.ID, nil
}

// session resolves an id. The driver is single-threaded (no Loop
// goroutine), so reading scheduler state directly is race-free.
func (c *x13Srv) session(id string) (*serve.Session, error) {
	return c.srv.Scheduler().Session(id)
}

// Jain computes Jain's fairness index (sum x)^2 / (n * sum x^2):
// 1 when all shares are equal, 1/n when one party holds everything.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// X13LoadRow is one arrival-rate point of the load sweep.
type X13LoadRow struct {
	Label    string
	MeanGapS float64
	Sessions int
	P50      float64
	P99      float64
	Mean     float64
	Jain     float64
	SpanS    float64 // virtual time from first arrival to last finish
}

// X13IsoRow is one isolation-leg run of the small tenant.
type X13IsoRow struct {
	Label    string
	Sessions int
	Mean     float64
	P99      float64
}

// X13Result holds both legs.
type X13Result struct {
	Scale Scale
	// CalibrationS is one standard session's alone makespan; the load
	// sweep's gaps are multiples of it.
	CalibrationS float64
	Load         []X13LoadRow

	Alone  X13IsoRow
	Fair   X13IsoRow
	Unfair X13IsoRow
	// BoundS is the isolation acceptance threshold:
	// X13BoundFactor * Alone.P99.
	BoundS          float64
	FairWithinBound bool
	FairBeatsUnfair bool
}

// Pass reports the isolation acceptance: fair-mode p99 within the
// bound AND better than unfair mode.
func (r *X13Result) Pass() bool { return r.FairWithinBound && r.FairBeatsUnfair }

// x13Calibrate measures one standard session's makespan on an idle
// service.
func x13Calibrate(s Scale) (float64, error) {
	c, err := newX13Srv(s.x13Config(true))
	if err != nil {
		return 0, err
	}
	defer c.close()
	id, err := c.submit(s.x13Workload("alpha", "stencil"))
	if err != nil {
		return 0, err
	}
	if err := c.srv.RunUntilIdle(0); err != nil {
		return 0, err
	}
	sess, err := c.session(id)
	if err != nil {
		return 0, err
	}
	if sess.State != serve.Done {
		return 0, fmt.Errorf("calibration session %s: %s", sess.State, sess.Err)
	}
	return float64(sess.Makespan()), nil
}

// x13RunLoad drives one arrival-rate point: open-loop submissions with
// seeded-exponential interarrivals, quantised to window boundaries
// (submissions happen between steps, never mid-window).
func x13RunLoad(s Scale, label string, meanGap float64) (X13LoadRow, error) {
	row := X13LoadRow{Label: label, MeanGapS: meanGap, Sessions: x13LoadSessions}
	c, err := newX13Srv(s.x13Config(true))
	if err != nil {
		return row, err
	}
	defer c.close()

	rng := rand.New(rand.NewSource(x13Seed))
	arrivals := make([]float64, x13LoadSessions)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() * meanGap
		arrivals[i] = t
	}
	kernelMix := []string{"stencil", "shift"}
	ids := make([]string, 0, x13LoadSessions)
	for i, at := range arrivals {
		for float64(c.srv.Scheduler().Now()) < at {
			c.srv.Step()
		}
		spec := s.x13Workload(x13Tenants[i%len(x13Tenants)], kernelMix[i%len(kernelMix)])
		id, err := c.submit(spec)
		if err != nil {
			return row, fmt.Errorf("x13 %s arrival %d: %w", label, i, err)
		}
		ids = append(ids, id)
	}
	if err := c.srv.RunUntilIdle(0); err != nil {
		return row, err
	}

	makespans := make([]float64, 0, len(ids))
	perTenant := make(map[string][]float64)
	var lastFinish float64
	for _, id := range ids {
		sess, err := c.session(id)
		if err != nil {
			return row, err
		}
		if sess.State != serve.Done {
			return row, fmt.Errorf("x13 %s: session %s ended %s: %s", label, id, sess.State, sess.Err)
		}
		m := float64(sess.Makespan())
		makespans = append(makespans, m)
		perTenant[sess.Tenant] = append(perTenant[sess.Tenant], m)
		if f := float64(sess.Finished); f > lastFinish {
			lastFinish = f
		}
	}
	row.P50 = serve.Percentile(makespans, 0.50)
	row.P99 = serve.Percentile(makespans, 0.99)
	var sum float64
	for _, m := range makespans {
		sum += m
	}
	row.Mean = sum / float64(len(makespans))
	row.SpanS = lastFinish - arrivals[0]

	// Jain over the per-tenant mean makespans, tenant walk in the
	// fixed registration order (determinism).
	var tenantMeans []float64
	for _, name := range x13Tenants {
		ms := perTenant[name]
		if len(ms) == 0 {
			continue
		}
		var acc float64
		for _, m := range ms {
			acc += m
		}
		tenantMeans = append(tenantMeans, acc/float64(len(ms)))
	}
	row.Jain = Jain(tenantMeans)
	return row, nil
}

// x13HogPressure counts the hog tenant's live (queued or running)
// sessions.
func x13HogPressure(c *x13Srv) int {
	n := 0
	for _, sess := range c.srv.Scheduler().Sessions() {
		if sess.Tenant == "hog" && !sess.State.Finished() {
			n++
		}
	}
	return n
}

// x13RunIso drives the isolation leg: the small tenant submits
// closed-loop (next session after the previous finishes) while the
// driver keeps nHogs hog sessions alive. Returns the small tenant's
// makespan stats.
func x13RunIso(s Scale, label string, fair bool, nHogs int) (X13IsoRow, error) {
	row := X13IsoRow{Label: label, Sessions: x13SmallSessions}
	c, err := newX13Srv(s.x13Config(fair))
	if err != nil {
		return row, err
	}
	defer c.close()

	hogBudget := 256 // submission cap: runaway guard, far above need
	topUpHogs := func() error {
		for x13HogPressure(c) < nHogs && hogBudget > 0 {
			hogBudget--
			if _, err := c.submit(s.x13Hog()); err != nil {
				return fmt.Errorf("x13 %s: hog submit: %w", label, err)
			}
		}
		return nil
	}

	var makespans []float64
	kernelMix := []string{"stencil", "shift"}
	for i := 0; i < x13SmallSessions; i++ {
		if err := topUpHogs(); err != nil {
			return row, err
		}
		id, err := c.submit(s.x13Workload("small", kernelMix[i%len(kernelMix)]))
		if err != nil {
			return row, fmt.Errorf("x13 %s: small submit %d: %w", label, i, err)
		}
		for w := 0; ; w++ {
			sess, err := c.session(id)
			if err != nil {
				return row, err
			}
			if sess.State.Finished() {
				if sess.State != serve.Done {
					return row, fmt.Errorf("x13 %s: small session %s ended %s: %s", label, id, sess.State, sess.Err)
				}
				makespans = append(makespans, float64(sess.Makespan()))
				break
			}
			if err := topUpHogs(); err != nil {
				return row, err
			}
			c.srv.Step()
			if w > 10_000_000 {
				return row, fmt.Errorf("x13 %s: small session %s stuck", label, id)
			}
		}
	}
	// Wind the hogs down without simulating them to completion: cancel
	// live hog sessions, then drain whatever is left.
	for _, sess := range c.srv.Scheduler().Sessions() {
		if sess.Tenant == "hog" && !sess.State.Finished() {
			req, err := http.NewRequest(http.MethodDelete, c.ts.URL+"/v1/sessions/"+sess.ID, nil)
			if err != nil {
				return row, err
			}
			resp, err := c.ts.Client().Do(req)
			if err != nil {
				return row, err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return row, fmt.Errorf("x13 %s: cancel %s: status %d", label, sess.ID, resp.StatusCode)
			}
		}
	}
	if err := c.srv.RunUntilIdle(0); err != nil {
		return row, err
	}

	row.P99 = serve.Percentile(makespans, 0.99)
	var sum float64
	for _, m := range makespans {
		sum += m
	}
	row.Mean = sum / float64(len(makespans))
	return row, nil
}

// RunX13 runs both legs at the scale.
func RunX13(s Scale) (*X13Result, error) {
	res := &X13Result{Scale: s}
	cal, err := x13Calibrate(s)
	if err != nil {
		return nil, fmt.Errorf("exp: x13 calibration: %w", err)
	}
	res.CalibrationS = cal

	for _, g := range x13GapFactors {
		row, err := x13RunLoad(s, g.Label, g.Factor*cal)
		if err != nil {
			return nil, fmt.Errorf("exp: x13 load %s: %w", g.Label, err)
		}
		res.Load = append(res.Load, row)
	}

	if res.Alone, err = x13RunIso(s, "alone", true, 0); err != nil {
		return nil, fmt.Errorf("exp: x13 isolation: %w", err)
	}
	if res.Fair, err = x13RunIso(s, "fair", true, x13Hogs); err != nil {
		return nil, fmt.Errorf("exp: x13 isolation: %w", err)
	}
	if res.Unfair, err = x13RunIso(s, "unfair", false, x13Hogs); err != nil {
		return nil, fmt.Errorf("exp: x13 isolation: %w", err)
	}
	res.BoundS = X13BoundFactor * res.Alone.P99
	res.FairWithinBound = res.Fair.P99 <= res.BoundS
	res.FairBeatsUnfair = res.Fair.P99 < res.Unfair.P99
	return res, nil
}

// Table renders X13.
func (r *X13Result) Table() Table {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	t := Table{
		Title: fmt.Sprintf("X13 (%s): multi-tenant service — load sweep and budget isolation (virtual seconds)", r.Scale),
		Header: []string{"load", "mean gap", "sessions", "p50 makespan",
			"p99 makespan", "mean", "Jain"},
		Notes: []string{
			fmt.Sprintf("calibration: one session alone takes %s s; gaps are multiples of it", f3(r.CalibrationS)),
			"sessions arrive over the in-process HTTP API; makespans include queue wait",
			fmt.Sprintf("isolation (small tenant, %d sessions closed-loop vs %d staging-heavy hog sessions):",
				r.Alone.Sessions, x13Hogs),
			fmt.Sprintf("  alone p99 %s s | fair p99 %s s | unfair p99 %s s",
				f3(r.Alone.P99), f3(r.Fair.P99), f3(r.Unfair.P99)),
			fmt.Sprintf("  bound %.2fx alone = %s s; fair within bound: %v; fair beats unfair: %v -> %s",
				X13BoundFactor, f3(r.BoundS), r.FairWithinBound, r.FairBeatsUnfair, verdict),
		},
	}
	for _, row := range r.Load {
		t.Rows = append(t.Rows, []string{
			row.Label,
			f3(row.MeanGapS),
			fmt.Sprint(row.Sessions),
			f3(row.P50),
			f3(row.P99),
			f3(row.Mean),
			fmt.Sprintf("%.4f", row.Jain),
		})
	}
	return t
}

// X13LoadBenchRow is one load point in BENCH_serve.json.
type X13LoadBenchRow struct {
	Label    string  `json:"label"`
	MeanGapS float64 `json:"mean_gap_s"`
	Sessions int     `json:"sessions"`
	P50      float64 `json:"p50_makespan_s"`
	P99      float64 `json:"p99_makespan_s"`
	Mean     float64 `json:"mean_makespan_s"`
	Jain     float64 `json:"jain_index"`
	SpanS    float64 `json:"span_s"`
}

// X13IsoBench is the isolation leg in BENCH_serve.json.
type X13IsoBench struct {
	Sessions        int     `json:"sessions"`
	Hogs            int     `json:"hogs"`
	AloneP99        float64 `json:"alone_p99_s"`
	AloneMean       float64 `json:"alone_mean_s"`
	FairP99         float64 `json:"fair_p99_s"`
	FairMean        float64 `json:"fair_mean_s"`
	UnfairP99       float64 `json:"unfair_p99_s"`
	UnfairMean      float64 `json:"unfair_mean_s"`
	BoundFactor     float64 `json:"bound_factor"`
	BoundS          float64 `json:"bound_s"`
	FairWithinBound bool    `json:"fair_within_bound"`
	FairBeatsUnfair bool    `json:"fair_beats_unfair"`
	Pass            bool    `json:"pass"`
}

// X13Bench is the JSON snapshot written by hmrepro -bench-serve.
type X13Bench struct {
	Scale        string            `json:"scale"`
	CalibrationS float64           `json:"calibration_makespan_s"`
	Load         []X13LoadBenchRow `json:"load"`
	Isolation    X13IsoBench       `json:"isolation"`
}

// Bench converts the result for JSON emission.
func (r *X13Result) Bench() X13Bench {
	b := X13Bench{
		Scale:        r.Scale.String(),
		CalibrationS: r.CalibrationS,
		Isolation: X13IsoBench{
			Sessions:        r.Alone.Sessions,
			Hogs:            x13Hogs,
			AloneP99:        r.Alone.P99,
			AloneMean:       r.Alone.Mean,
			FairP99:         r.Fair.P99,
			FairMean:        r.Fair.Mean,
			UnfairP99:       r.Unfair.P99,
			UnfairMean:      r.Unfair.Mean,
			BoundFactor:     X13BoundFactor,
			BoundS:          r.BoundS,
			FairWithinBound: r.FairWithinBound,
			FairBeatsUnfair: r.FairBeatsUnfair,
			Pass:            r.Pass(),
		},
	}
	for _, row := range r.Load {
		b.Load = append(b.Load, X13LoadBenchRow{
			Label:    row.Label,
			MeanGapS: row.MeanGapS,
			Sessions: row.Sessions,
			P50:      row.P50,
			P99:      row.P99,
			Mean:     row.Mean,
			Jain:     row.Jain,
			SpanS:    row.SpanS,
		})
	}
	return b
}
