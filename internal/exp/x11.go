package exp

import (
	"fmt"
	"sort"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
)

// X11 validates the trace capture/replay engine on two legs:
//
//   - Fidelity: the Fig 8 sweep's overflow point (the largest reduced
//     working set) is run under MultiIO with a recorder attached, the
//     capture is reconstructed into a workload, and the workload is
//     re-driven through the real scheduler under identical knobs. The
//     acceptance bar is byte-identical schedules: every task's send,
//     run-start and run-end time agrees to the last bit
//     (Capture.ScheduleString equality), and the makespans match.
//
//   - What-if: the X10 working-set-shift program is captured once under
//     declaration-order eviction, then replayed under each victim
//     policy — no new workload runs, just the capture re-driven with
//     different knobs. The replayed policy deltas must agree
//     directionally with X10's real fixed-policy runs: lookahead forces
//     no more evictions of still-needed blocks than declaration order,
//     in the replay exactly as on the real runs.
//
// Together the legs justify trusting what-if numbers: leg 1 shows the
// replayer reproduces reality exactly when nothing changes, leg 2 shows
// its deltas point the same way as ground truth when something does.

// x11Options is the fidelity-leg configuration: the Fig 8 MultiIO
// setup with metrics on (the capture's stats footer reads them).
func x11Options(s Scale) core.Options {
	o := s.options(core.MultiIO)
	o.Metrics = true
	return o
}

// x11CaptureStencil records the Fig 8 overflow point. The returned
// capture's stats footer carries the makespan (engine time at capture
// finish, the same instant a replay's footer is stamped at).
func x11CaptureStencil(s Scale) (*trace.Capture, error) {
	env := s.newEnv(x11Options(s), false)
	defer env.Close()
	rec := trace.NewRecorder(env.MG)
	rec.Attach()
	sizes := s.StencilReducedSizes()
	app, err := kernels.NewStencil(env.MG, s.StencilConfig(sizes[len(sizes)-1]))
	if err != nil {
		return nil, err
	}
	if _, err := app.Run(); err != nil {
		return nil, fmt.Errorf("exp: x11 stencil capture: %w", err)
	}
	return rec.Capture(), nil
}

// x11Untraced runs the fidelity-leg workload with no recorder and
// returns the engine time at the same instant a capture footer would
// be stamped — the baseline for the capture-overhead measurement.
func x11Untraced(s Scale) (float64, error) {
	env := s.newEnv(x11Options(s), false)
	defer env.Close()
	sizes := s.StencilReducedSizes()
	app, err := kernels.NewStencil(env.MG, s.StencilConfig(sizes[len(sizes)-1]))
	if err != nil {
		return 0, err
	}
	if _, err := app.Run(); err != nil {
		return 0, fmt.Errorf("exp: x11 untraced baseline: %w", err)
	}
	return float64(env.Eng.Now()), nil
}

// x11CaptureShift records the shift program under declaration-order
// eviction (the X10 fixed-run configuration).
func x11CaptureShift(s Scale) (*trace.Capture, error) {
	env := s.newEnv(x10Options(s, core.DeclOrder), false)
	defer env.Close()
	rec := trace.NewRecorder(env.MG)
	rec.Attach()
	app, err := kernels.NewShift(env.MG, s.ShiftConfig())
	if err != nil {
		return nil, err
	}
	if _, err := app.Run(); err != nil {
		return nil, fmt.Errorf("exp: x11 shift capture: %w", err)
	}
	return rec.Capture(), nil
}

// X11WhatIfRow compares one victim policy's replayed outcome against
// the real fixed run of the same policy on the shift workload.
type X11WhatIfRow struct {
	Policy string

	// Replayed outcome (whole-run counters from the replay capture).
	ReplayTime      float64
	ReplayRefetches int64
	ReplayForced    int64
	ReplayEvictions int64

	// Real fixed-run outcome (X10 counters; Time is post-shift).
	RealTime      float64
	RealRefetches int64
	RealForced    int64
	RealEvictions int64
}

// X11Result is the replay validation outcome.
type X11Result struct {
	Scale Scale

	// Fidelity leg.
	Tasks            int64
	Events           int
	RecordedMakespan float64
	ReplayedMakespan float64
	Identical        bool

	// Capture-overhead leg: the same workload untraced. Recording adds
	// zero virtual time by construction, so OverheadPct should be 0.
	UntracedMakespan float64
	OverheadPct      float64

	// What-if leg, one row per victim policy.
	WhatIf []X11WhatIfRow

	// Sample is the fidelity leg's capture, kept for -trace emission.
	Sample *trace.Capture `json:"-"`
}

// Row returns the what-if row for a policy, or nil.
func (r *X11Result) Row(policy string) *X11WhatIfRow {
	for i := range r.WhatIf {
		if r.WhatIf[i].Policy == policy {
			return &r.WhatIf[i]
		}
	}
	return nil
}

// Consistent reports whether the replayed policy deltas agree
// directionally with the real runs: lookahead's forced evictions and
// refetches do not exceed declaration order's, on both sides.
func (r *X11Result) Consistent() bool {
	decl, look := r.Row(core.DeclOrder.Name()), r.Row(core.Lookahead.Name())
	if decl == nil || look == nil {
		return false
	}
	return look.ReplayForced <= decl.ReplayForced &&
		look.RealForced <= decl.RealForced &&
		look.ReplayRefetches <= decl.ReplayRefetches &&
		look.RealRefetches <= decl.RealRefetches
}

// RunX11 runs both legs at the given scale.
func RunX11(s Scale) (*X11Result, error) {
	res := &X11Result{Scale: s}

	// Leg 1: fidelity on the Fig 8 overflow point.
	cap, err := x11CaptureStencil(s)
	if err != nil {
		return nil, err
	}
	res.Sample = cap
	res.Events = len(cap.Events)
	if st := cap.Stats(); st != nil {
		res.Tasks = st.Tasks
		res.RecordedMakespan = float64(st.Makespan)
	}
	w, err := trace.Reconstruct(cap)
	if err != nil {
		return nil, fmt.Errorf("exp: x11 reconstruct: %w", err)
	}
	rep, err := w.Replay(trace.ReplayConfig{})
	if err != nil {
		return nil, fmt.Errorf("exp: x11 fidelity replay: %w", err)
	}
	res.ReplayedMakespan = float64(rep.Makespan)
	res.Identical = rep.Capture.ScheduleString() == cap.ScheduleString() &&
		res.ReplayedMakespan == res.RecordedMakespan

	// Overhead leg: the same workload with no recorder attached.
	untraced, err := x11Untraced(s)
	if err != nil {
		return nil, err
	}
	res.UntracedMakespan = untraced
	if untraced > 0 {
		res.OverheadPct = (res.RecordedMakespan - untraced) / untraced * 100
	}

	// Leg 2: what-if on the shift workload, one capture, every policy.
	shiftCap, err := x11CaptureShift(s)
	if err != nil {
		return nil, err
	}
	sw, err := trace.Reconstruct(shiftCap)
	if err != nil {
		return nil, fmt.Errorf("exp: x11 reconstruct shift: %w", err)
	}
	for _, pol := range core.EvictPolicies() {
		knobs := sw.Meta.Knobs
		knobs.EvictPolicy = pol.Name()
		repl, err := sw.Replay(trace.ReplayConfig{Knobs: &knobs})
		if err != nil {
			return nil, fmt.Errorf("exp: x11 what-if %s: %w", pol.Name(), err)
		}
		st := repl.Capture.Stats()
		if st == nil {
			return nil, fmt.Errorf("exp: x11 what-if %s: replay capture has no stats footer", pol.Name())
		}
		real, err := runX10Shift(s, pol)
		if err != nil {
			return nil, err
		}
		res.WhatIf = append(res.WhatIf, X11WhatIfRow{
			Policy:          pol.Name(),
			ReplayTime:      float64(st.Makespan),
			ReplayRefetches: st.Refetches,
			ReplayForced:    st.ForcedEvictions,
			ReplayEvictions: st.Evictions,
			RealTime:        real.Time,
			RealRefetches:   real.Refetches,
			RealForced:      real.Forced,
			RealEvictions:   real.Evictions,
		})
	}
	return res, nil
}

// Table renders the validation outcome.
func (r *X11Result) Table() Table {
	verdict := "BYTE-IDENTICAL"
	if !r.Identical {
		verdict = "DIVERGED"
	}
	t := Table{
		Title: "X11: trace replay fidelity + what-if consistency",
		Header: []string{"policy", "replay time (s)", "re-refetch", "re-forced",
			"real time (s)", "refetch", "forced"},
		Notes: []string{
			fmt.Sprintf("fidelity: fig8 overflow capture (%d tasks, %d events) replayed under identical knobs: %s",
				r.Tasks, r.Events, verdict),
			fmt.Sprintf("  recorded makespan %s s, replayed %s s", f3(r.RecordedMakespan), f3(r.ReplayedMakespan)),
			fmt.Sprintf("capture overhead: %.3f%% virtual-time delta vs untraced (%s s)",
				r.OverheadPct, f3(r.UntracedMakespan)),
			"what-if: one shift capture under decl, replayed per policy vs real fixed runs",
			"  replay time is whole-run makespan; real time is post-shift (the X10 metric)",
		},
	}
	for _, row := range r.WhatIf {
		t.Rows = append(t.Rows, []string{
			row.Policy,
			f3(row.ReplayTime),
			fmt.Sprintf("%d", row.ReplayRefetches),
			fmt.Sprintf("%d", row.ReplayForced),
			f3(row.RealTime),
			fmt.Sprintf("%d", row.RealRefetches),
			fmt.Sprintf("%d", row.RealForced),
		})
	}
	consistency := "replayed deltas agree directionally with real runs"
	if !r.Consistent() {
		consistency = "INCONSISTENT: replayed deltas disagree with real runs"
	}
	t.Notes = append(t.Notes, consistency)
	return t
}

// X11BenchRow is one what-if policy comparison in BENCH_trace.json.
type X11BenchRow struct {
	Policy          string  `json:"policy"`
	ReplayTime      float64 `json:"replay_time_s"`
	ReplayRefetches int64   `json:"replay_refetches"`
	ReplayForced    int64   `json:"replay_forced"`
	RealTime        float64 `json:"real_time_s"`
	RealRefetches   int64   `json:"real_refetches"`
	RealForced      int64   `json:"real_forced"`
}

// X11Bench is the JSON snapshot of the replay validation.
type X11Bench struct {
	Scale            string        `json:"scale"`
	Tasks            int64         `json:"tasks"`
	Events           int           `json:"events"`
	RecordedMakespan float64       `json:"recorded_makespan_s"`
	ReplayedMakespan float64       `json:"replayed_makespan_s"`
	Identical        bool          `json:"replay_identical"`
	UntracedMakespan float64       `json:"untraced_makespan_s"`
	OverheadPct      float64       `json:"capture_overhead_pct"`
	Consistent       bool          `json:"whatif_consistent"`
	WhatIf           []X11BenchRow `json:"whatif"`
}

// Bench converts the result for JSON emission.
func (r *X11Result) Bench() X11Bench {
	b := X11Bench{
		Scale:            r.Scale.String(),
		Tasks:            r.Tasks,
		Events:           r.Events,
		RecordedMakespan: r.RecordedMakespan,
		ReplayedMakespan: r.ReplayedMakespan,
		Identical:        r.Identical,
		UntracedMakespan: r.UntracedMakespan,
		OverheadPct:      r.OverheadPct,
		Consistent:       r.Consistent(),
	}
	for _, row := range r.WhatIf {
		b.WhatIf = append(b.WhatIf, X11BenchRow{
			Policy:          row.Policy,
			ReplayTime:      row.ReplayTime,
			ReplayRefetches: row.ReplayRefetches,
			ReplayForced:    row.ReplayForced,
			RealTime:        row.RealTime,
			RealRefetches:   row.RealRefetches,
			RealForced:      row.RealForced,
		})
	}
	sort.SliceStable(b.WhatIf, func(i, j int) bool { return b.WhatIf[i].Policy < b.WhatIf[j].Policy })
	return b
}
