package exp

import (
	"fmt"
	"io"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
)

// ProjectionsRun is one traced stencil run: the quantities behind the
// paper's Projections screenshots.
type ProjectionsRun struct {
	Mode core.Mode

	TotalTime sim.Time
	// Utilization is the compute share of worker PE-time (the
	// non-red portion of the paper's timelines).
	Utilization float64
	// OverheadShare is the fetch+evict+lockwait+idle+overhead share
	// of worker PE-time (the red portion).
	OverheadShare float64
	// WorkerFetchPerTask is the average synchronous pre-processing
	// (fetch) time each task spends on its worker PE — Fig. 6's
	// "preprocessing time before compute kernels ... of order of
	// 20 ms" for the synchronous strategy, ~0 for the asynchronous.
	WorkerFetchPerTask sim.Time
	// IdleShare is the wait (idle) share of worker PE-time alone.
	IdleShare float64
	// Timeline is an ASCII rendering of the first worker lanes.
	Timeline string

	tracer *projections.Tracer
}

// WriteSpans exports the run's raw activity spans as JSON (the
// Projections log export).
func (r *ProjectionsRun) WriteSpans(w io.Writer) error {
	return r.tracer.WriteJSON(w)
}

// Fig56Result compares the traced behaviour of the strategies:
// Fig. 5 contrasts Single IO vs Multiple IO overhead ("single IO
// thread has a lot more overhead (red) than multiple IO threads");
// Fig. 6 contrasts synchronous (No IO) vs asynchronous (Multiple IO)
// prefetch overhead on the worker lanes.
type Fig56Result struct {
	Scale Scale
	Runs  map[core.Mode]*ProjectionsRun
}

// RunFig56 traces one stencil configuration under Baseline, SingleIO,
// NoIO and MultiIO.
func RunFig56(s Scale) (*Fig56Result, error) {
	res := &Fig56Result{Scale: s, Runs: make(map[core.Mode]*ProjectionsRun)}
	red := s.StencilReducedSizes()[1] // the middle (4 GB at full scale)
	for _, mode := range []core.Mode{core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
		cfg := s.StencilConfig(red)
		env := s.newEnv(s.options(mode), true)
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			env.Close()
			return nil, err
		}
		total, err := app.Run()
		if err != nil {
			env.Close()
			return nil, fmt.Errorf("exp: fig5/6 %v: %w", mode, err)
		}
		sum := env.Tracer.Summarize()
		workers := s.NumPEs()
		// All shares are computed over the WORKER lanes only (lanes
		// below NumPEs); IO threads live on the hyperthread lanes and
		// their activity must not be charged to the workers.
		lane := func(cat projections.Category) sim.Time {
			var v sim.Time
			for pe := 0; pe < len(sum.PerPE) && pe < workers; pe++ {
				v += sum.PerPE[pe][cat]
			}
			return v
		}
		wall := sum.Wall() * sim.Time(workers)
		overhead := lane(projections.Fetch) + lane(projections.Evict) +
			lane(projections.LockWait) + lane(projections.IdleWait) +
			lane(projections.Overhead)
		tasks := cfg.NumChares() * cfg.Iterations
		run := &ProjectionsRun{
			Mode:               mode,
			TotalTime:          total,
			Utilization:        float64(lane(projections.Compute) / wall),
			OverheadShare:      float64(overhead / wall),
			WorkerFetchPerTask: lane(projections.Fetch) / sim.Time(tasks),
			IdleShare:          float64(lane(projections.IdleWait) / wall),
			Timeline:           env.Tracer.Timeline(96),
			tracer:             env.Tracer,
		}
		res.Runs[mode] = run
		env.Close()
	}
	return res, nil
}

// Table renders the comparison (Figs. 5 and 6 as one table).
func (r *Fig56Result) Table() Table {
	t := Table{
		Title: "Figs 5-6: Projections of Stencil3D — utilization and overheads",
		Header: []string{"strategy", "total (s)", "utilization",
			"overhead", "idle", "sync fetch/task (ms)"},
		Notes: []string{
			"Fig 5: Single IO thread has far more wait (red) than Multiple IO",
			"Fig 6: synchronous prefetch shows ~20ms pre-processing per task;",
			"asynchronous masks it (0 on worker lanes)",
		},
	}
	for _, mode := range []core.Mode{core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
		run := r.Runs[mode]
		t.Rows = append(t.Rows, []string{
			mode.String(),
			f2(run.TotalTime),
			f3(run.Utilization),
			f3(run.OverheadShare),
			f3(run.IdleShare),
			f2(float64(run.WorkerFetchPerTask) * 1e3),
		})
	}
	return t
}
