package exp

import (
	"fmt"
	"sort"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
)

// X10 compares the eviction victim-selection policies (DeclOrder, LRU,
// Lookahead) where they actually disagree — under capacity pressure
// with queued work — and then checks that the adaptive controller
// survives a mid-run working-set shift. Two fixed-policy workloads:
//
//   - fig8-stencil: the Fig 8 sweep's overflow point (largest reduced
//     working set) under MultiIO with lazy eviction, where the resident
//     set cycles through a grid larger than HBM every iteration.
//   - shift: the working-set-shift program (kernels.ShiftApp) whose
//     declared dependences widen mid-run from a hot set that fits HBM
//     to one a third larger than it.
//
// The acceptance bar is that Lookahead — which ranks victims by
// declared next use, walking the wait queues — forces strictly fewer
// evictions of still-needed blocks and causes strictly fewer refetches
// than declaration order on both workloads.
//
// The adaptive run starts the shift workload on MultiIO eager with the
// default controller. It must settle during the hot phase, detect the
// shift (settled-phase guard: score collapse plus contention for two
// consecutive windows), upgrade the victim policy to Lookahead, re-open
// the climb and settle again — all audit-clean.

// x10PreIters/x10PostIters size the shift program: enough hot windows
// for the controller to settle, enough widened windows to re-settle
// after the reopen.
const (
	x10PreIters  = 8
	x10PostIters = 10
)

// ShiftConfig sizes the working-set-shift program for the scale: the
// hot set is 2/3 of the HBM block budget (fits comfortably), the shift
// doubles it to 4/3 (cannot fit), split over 8 chares per PE — deep
// enough wait queues that "k tasks ahead of this block's consumer" is
// real temporal information for the lookahead policy.
func (s Scale) ShiftConfig() kernels.ShiftConfig {
	budget := s.Machine().HBMCap - s.HBMReserve()
	n := 8 * s.NumPEs()
	block := budget / int64(12*s.NumPEs())
	return kernels.ShiftConfig{
		HotBytes:     block * int64(n),
		ColdBytes:    block * int64(n),
		NumChares:    n,
		PreIters:     x10PreIters,
		PostIters:    x10PostIters,
		Sweeps:       10,
		NumPEs:       s.NumPEs(),
		FlopsPerByte: 1.0,
	}
}

// X10Row is one fixed-policy run of one workload.
type X10Row struct {
	Workload string // "fig8-stencil" or "shift"
	Policy   string
	// Time is the phase the policies differentiate on: total time for
	// the stencil, post-shift time for the shift program (the hot
	// phase is identical across policies by construction).
	Time      float64
	Fetches   int64
	Refetches int64
	Evictions int64
	Forced    int64
	Retries   int64
}

// X10Result is the policy comparison plus the adaptive shift run.
type X10Result struct {
	Scale Scale
	Rows  []X10Row

	// Adaptive-run outcome on the shift workload.
	AdaptiveTime    float64
	Reopens         int
	ReopenWindow    int
	ConvergedWindow int
	Final           core.Options
	Trace           []adapt.Decision
}

// Row returns the row for a workload/policy pair, or nil.
func (r *X10Result) Row(workload, policy string) *X10Row {
	for i := range r.Rows {
		if r.Rows[i].Workload == workload && r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// FinalPolicy names the victim policy the adaptive run ended on.
func (r *X10Result) FinalPolicy() string {
	if r.Final.EvictPolicy == nil {
		return core.DeclOrder.Name()
	}
	return r.Final.EvictPolicy.Name()
}

// x10Options is the fixed-run configuration: MultiIO with lazy
// eviction (resident blocks persist across iterations, so reclaim has
// real choices), a bounded prefetch depth, and metrics on for the
// eviction counters. The depth bound matters: with unlimited prefetch
// every queued task is staged as soon as capacity allows, so queue
// position carries no temporal information and no victim choice can
// dodge the staging wave. Bounded staging is where declared-dependence
// lookahead has real signal — a block deep in a queue truly is not
// needed until the tasks ahead of it complete.
func x10Options(s Scale, pol core.EvictPolicy) core.Options {
	o := s.options(core.MultiIO)
	o.EvictLazily = true
	o.EvictPolicy = pol
	o.PrefetchDepth = 1
	o.Metrics = true
	return o
}

// x10Snapshot reads the counters of a finished fixed run into a row.
func x10Snapshot(env *kernels.Env, row *X10Row) error {
	snap, ok := env.MG.MetricsSnapshot()
	if !ok {
		return fmt.Errorf("exp: x10 %s/%s ran without metrics", row.Workload, row.Policy)
	}
	row.Fetches = snap.Fetches
	row.Refetches = snap.Refetches
	row.Evictions = snap.Evictions
	row.Forced = snap.ForcedEvictions
	row.Retries = snap.StageRetries
	return nil
}

// runX10Stencil runs the Fig 8 overflow point under one policy.
func runX10Stencil(s Scale, pol core.EvictPolicy) (X10Row, error) {
	row := X10Row{Workload: "fig8-stencil", Policy: pol.Name()}
	sizes := s.StencilReducedSizes()
	cfg := s.StencilConfig(sizes[len(sizes)-1])

	env := s.newEnv(x10Options(s, pol), false)
	defer env.Close()
	app, err := kernels.NewStencil(env.MG, cfg)
	if err != nil {
		return row, err
	}
	t, err := app.Run()
	if err != nil {
		return row, fmt.Errorf("exp: x10 stencil %s: %w", pol.Name(), err)
	}
	row.Time = float64(t)
	return row, x10Snapshot(env, &row)
}

// runX10Shift runs the shift program under one policy.
func runX10Shift(s Scale, pol core.EvictPolicy) (X10Row, error) {
	row := X10Row{Workload: "shift", Policy: pol.Name()}
	env := s.newEnv(x10Options(s, pol), false)
	defer env.Close()
	app, err := kernels.NewShift(env.MG, s.ShiftConfig())
	if err != nil {
		return row, err
	}
	if _, err := app.Run(); err != nil {
		return row, fmt.Errorf("exp: x10 shift %s: %w", pol.Name(), err)
	}
	row.Time = float64(app.PostShiftTime())
	return row, x10Snapshot(env, &row)
}

// RunX10 runs the full comparison at the given scale.
func RunX10(s Scale) (*X10Result, error) {
	res := &X10Result{Scale: s, ReopenWindow: -1, ConvergedWindow: -1}
	for _, pol := range core.EvictPolicies() {
		row, err := runX10Stencil(s, pol)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	for _, pol := range core.EvictPolicies() {
		row, err := runX10Shift(s, pol)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	// Adaptive run: default controller, barrier sampling, starting on
	// MultiIO eager with the default victim policy.
	env := adaptiveEnv(s, s.options(core.MultiIO))
	defer env.Close()
	app, err := kernels.NewShift(env.MG, s.ShiftConfig())
	if err != nil {
		return nil, err
	}
	ctl, err := adapt.New(env.MG, adapt.Config{})
	if err != nil {
		return nil, err
	}
	ctl.Attach()
	app.OnIteration = func(_ int, resume func()) {
		ctl.Barrier()
		resume()
	}
	t, err := app.Run()
	if err != nil {
		return nil, fmt.Errorf("exp: x10 adaptive shift: %w", err)
	}
	env.MG.Auditor().CheckQuiescent()
	if err := env.MG.Auditor().Err(); err != nil {
		return nil, fmt.Errorf("exp: x10 adaptive shift: %w", err)
	}
	res.AdaptiveTime = float64(t)
	res.Reopens = ctl.Reopens()
	res.ReopenWindow = ctl.ReopenWindow()
	res.ConvergedWindow = ctl.ConvergedWindow()
	res.Final = ctl.FinalOptions()
	res.Trace = ctl.Trace()
	return res, nil
}

// Table renders the comparison with the adaptive trace in the notes.
func (r *X10Result) Table() Table {
	t := Table{
		Title: "X10: eviction victim selection under capacity pressure + mid-run shift",
		Header: []string{"workload", "policy", "time (s)", "fetches", "refetches",
			"evictions", "forced", "retries"},
		Notes: []string{
			"fixed runs: multi-io, lazy eviction; stencil time is total, shift time is post-shift",
			"forced = evictions of blocks a queued task had declared (wrong victim)",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload,
			row.Policy,
			f3(row.Time),
			fmt.Sprintf("%d", row.Fetches),
			fmt.Sprintf("%d", row.Refetches),
			fmt.Sprintf("%d", row.Evictions),
			fmt.Sprintf("%d", row.Forced),
			fmt.Sprintf("%d", row.Retries),
		})
	}
	settled := "no"
	if r.ConvergedWindow >= 0 {
		settled = fmt.Sprintf("w%d", r.ConvergedWindow)
	}
	reopened := "never"
	if r.ReopenWindow >= 0 {
		reopened = fmt.Sprintf("w%d", r.ReopenWindow)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"adaptive shift run: %.3f s total, reopened %s (%d reopens), re-settled %s, landed on %s victim=%s",
		r.AdaptiveTime, reopened, r.Reopens, settled, describeOptions(r.Final), r.FinalPolicy()))
	t.Notes = append(t.Notes, "adaptive trace:")
	for _, d := range r.Trace {
		t.Notes = append(t.Notes, "  "+d.String())
	}
	return t
}

// X10BenchRow is the JSON snapshot of one fixed run for
// BENCH_evict.json.
type X10BenchRow struct {
	Workload  string  `json:"workload"`
	Policy    string  `json:"policy"`
	Time      float64 `json:"time_s"`
	Fetches   int64   `json:"fetches"`
	Refetches int64   `json:"refetches"`
	Evictions int64   `json:"evictions"`
	Forced    int64   `json:"forced_evictions"`
	Retries   int64   `json:"stage_retries"`
}

// X10Bench is the benchmark snapshot emitted by hmrepro -bench-evict.
type X10Bench struct {
	Scale           string        `json:"scale"`
	Rows            []X10BenchRow `json:"rows"`
	AdaptiveTime    float64       `json:"adaptive_time_s"`
	Reopens         int           `json:"reopens"`
	ReopenWindow    int           `json:"reopen_window"`
	ConvergedWindow int           `json:"converged_window"`
	FinalPolicy     string        `json:"final_policy"`
	Landed          string        `json:"landed_on"`
}

// Bench converts the result for JSON emission.
func (r *X10Result) Bench() X10Bench {
	b := X10Bench{
		Scale:           r.Scale.String(),
		AdaptiveTime:    r.AdaptiveTime,
		Reopens:         r.Reopens,
		ReopenWindow:    r.ReopenWindow,
		ConvergedWindow: r.ConvergedWindow,
		FinalPolicy:     r.FinalPolicy(),
		Landed:          describeOptions(r.Final),
	}
	for _, row := range r.Rows {
		b.Rows = append(b.Rows, X10BenchRow{
			Workload:  row.Workload,
			Policy:    row.Policy,
			Time:      row.Time,
			Fetches:   row.Fetches,
			Refetches: row.Refetches,
			Evictions: row.Evictions,
			Forced:    row.Forced,
			Retries:   row.Retries,
		})
	}
	sort.SliceStable(b.Rows, func(i, j int) bool {
		if b.Rows[i].Workload != b.Rows[j].Workload {
			return b.Rows[i].Workload < b.Rows[j].Workload
		}
		return b.Rows[i].Policy < b.Rows[j].Policy
	})
	return b
}
