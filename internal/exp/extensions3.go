package exp

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/cluster"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
)

// --- X8: multi-node cluster (the paper's last future-work item) ---

// ClusterRow is one node-count point of the weak-scaling sweep.
type ClusterRow struct {
	Nodes      int
	NaiveIter  sim.Time
	MultiIter  sim.Time
	Speedup    float64
	HaloBytes  float64
	WeakSlowdn float64 // MultiIO iter time vs 1 node
}

// ClusterResult is experiment X8: the distributed Stencil3D under weak
// scaling ("we will also perform comparisons ... in multi-node cluster
// settings").
type ClusterResult struct {
	Scale Scale
	Rows  []ClusterRow
}

// RunCluster sweeps node counts with a constant per-node working set.
func RunCluster(s Scale) (*ClusterResult, error) {
	res := &ClusterResult{Scale: s}
	perNode := s.StencilConfig(s.StencilReducedSizes()[1])
	perNode.Iterations = 3
	counts := []int{1, 2, 4, 8}
	if s == Full {
		counts = []int{1, 2, 4}
	}
	run := func(nodes int, mode core.Mode) (*cluster.StencilResult, error) {
		c, err := cluster.New(cluster.Config{
			Nodes:  nodes,
			Spec:   s.Machine(),
			NumPEs: s.NumPEs(),
			Opts:   s.options(mode),
			Net:    cluster.DefaultNetwork(),
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		res, err := cluster.RunStencil(c, cluster.StencilConfig{PerNode: perNode, Nodes: nodes})
		if err != nil {
			return nil, err
		}
		for i, nd := range c.Nodes {
			nd.MG.Auditor().CheckQuiescent()
			if aerr := nd.MG.Auditor().Err(); aerr != nil {
				return nil, fmt.Errorf("node %d: %w", i, aerr)
			}
		}
		return res, nil
	}
	var base sim.Time
	for _, n := range counts {
		naive, err := run(n, core.Baseline)
		if err != nil {
			return nil, fmt.Errorf("exp: cluster naive %d nodes: %w", n, err)
		}
		multi, err := run(n, core.MultiIO)
		if err != nil {
			return nil, fmt.Errorf("exp: cluster multi %d nodes: %w", n, err)
		}
		if n == counts[0] {
			base = multi.AvgIter
		}
		res.Rows = append(res.Rows, ClusterRow{
			Nodes:      n,
			NaiveIter:  naive.AvgIter,
			MultiIter:  multi.AvgIter,
			Speedup:    float64(naive.AvgIter) / float64(multi.AvgIter),
			HaloBytes:  multi.NetBytes,
			WeakSlowdn: float64(multi.AvgIter) / float64(base),
		})
	}
	return res, nil
}

// Table renders X8.
func (r *ClusterResult) Table() Table {
	t := Table{
		Title: "X8: multi-node weak scaling (distributed Stencil3D, halos over 100Gb/s fabric)",
		Header: []string{"nodes", "naive iter (s)", "MultiIO iter (s)",
			"speedup", "weak-scaling overhead", "halo GB"},
		Notes: []string{
			"paper conclusion: comparisons 'in multi-node cluster settings';",
			"per-node working set constant, MultiIO advantage survives distribution",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Nodes),
			f3(row.NaiveIter), f3(row.MultiIter),
			f2(row.Speedup), f2(row.WeakSlowdn),
			f2(row.HaloBytes / float64(GB)),
		})
	}
	return t
}
