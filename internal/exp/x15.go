package exp

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
	"github.com/hetmem/hetmem/internal/tune"
)

// X15 closes the offline/online tuning loop.
//
// Offline half: capture the X10 working-set-shift workload under the
// default (declaration-order) victim policy, run the trace-driven
// autotuner (internal/tune) over the capture — scoped to the captured
// movement strategy — and check that the search independently reaches
// the verdict X10 measures directly: the lookahead victim policy. The offline search never touches the live
// run; it replays the capture through the real scheduler, so agreement
// here is evidence the replay-driven objective ranks configurations
// like reality does.
//
// Online half: for every X9 point (both app sweeps), run the adaptive
// controller exactly as X9 does — cold — and then again warm-started
// from the cold run's settled verdict (adapt.Config.Warm, the same
// handshake hetmemd uses to seed a tenant's next session). The metric
// is time-to-settle in virtual time; the acceptance gate requires the
// warm start to settle strictly earlier on every point.

// X15Point is one X9 operating point's cold-vs-warm comparison.
type X15Point struct {
	App  string // "stencil" or "matmul"
	Size int64

	// ColdSettle/WarmSettle are virtual times-to-settle; -1 = the
	// controller never settled within the run.
	ColdSettle float64
	WarmSettle float64

	ColdLanded core.Options // where the cold climb converged
	WarmLanded core.Options // where the warm-started run settled
}

// Speedup returns cold/warm time-to-settle (>1 = warm start pays off);
// 0 when either run failed to settle.
func (p X15Point) Speedup() float64 {
	if p.ColdSettle <= 0 || p.WarmSettle <= 0 {
		return 0
	}
	return p.ColdSettle / p.WarmSettle
}

// X15Tune summarises the offline search verdict over the shift capture.
type X15Tune struct {
	CaptureDigest string
	Recommended   trace.Knobs
	PredictedS    float64
	RecordedS     float64
	Candidates    int
	Replays       int
	Abandoned     int
	MemoHits      int
}

// X15Result is the closed-loop tuning experiment.
type X15Result struct {
	Scale  Scale
	Points []X15Point
	Tune   X15Tune
}

// Pass checks the acceptance gates: the warm start must settle strictly
// earlier than the cold climb on every point, and the offline search
// must recommend the lookahead victim policy on the shift capture.
func (r *X15Result) Pass() error {
	for _, p := range r.Points {
		if p.WarmSettle < 0 {
			return fmt.Errorf("%s at %s: warm-started run never settled", p.App, gbs(p.Size))
		}
		if p.ColdSettle >= 0 && p.WarmSettle >= p.ColdSettle {
			return fmt.Errorf("%s at %s: warm settle %.6fs did not beat cold %.6fs",
				p.App, gbs(p.Size), p.WarmSettle, p.ColdSettle)
		}
	}
	if want := core.Lookahead.Name(); r.Tune.Recommended.EvictPolicy != want {
		return fmt.Errorf("offline tune on the shift capture recommends victim=%s, want %s",
			r.Tune.Recommended.EvictPolicy, want)
	}
	return nil
}

// x15Settle runs one adaptive app and reports the controller. warm=nil
// is the cold X9 configuration; otherwise the run is seeded with the
// verdict exactly like hetmemd seeds a tenant's next session.
func x15AdaptiveStencil(s Scale, red int64, warm *core.Options) (*adapt.Controller, error) {
	cfg := s.StencilConfig(red)
	cfg.Iterations = x9Iterations
	env := adaptiveEnv(s, s.options(core.SingleIO))
	defer env.Close()
	app, err := kernels.NewStencil(env.MG, cfg)
	if err != nil {
		return nil, err
	}
	ctl, err := adapt.New(env.MG, adapt.Config{Warm: warm})
	if err != nil {
		return nil, err
	}
	ctl.Attach()
	app.OnIteration = func(_ int, resume func()) {
		ctl.Barrier()
		resume()
	}
	if _, err := app.Run(); err != nil {
		return nil, fmt.Errorf("exp: x15 stencil at %s: %w", gbs(red), err)
	}
	env.MG.Auditor().CheckQuiescent()
	if err := env.MG.Auditor().Err(); err != nil {
		return nil, fmt.Errorf("exp: x15 stencil at %s: %w", gbs(red), err)
	}
	return ctl, nil
}

func x15AdaptiveMatMul(s Scale, total int64, warm *core.Options) (*adapt.Controller, error) {
	cfg := s.MatMulConfig(total)
	// MatMul has no barriers, so the strategy is fixed (as in X9) — but
	// the controller starts at the bottom staging rung, not X9's
	// already-favourable unlimited depth. From d0 the first scored
	// window sees no bottleneck and the cold run settles immediately,
	// making cold-vs-warm a comparison of float noise; from d1 the cold
	// climb has the depth ladder to walk, which is exactly the work the
	// warm start is supposed to skip.
	opts := s.options(core.MultiIO)
	opts.PrefetchDepth = 1
	env := adaptiveEnv(s, opts)
	defer env.Close()
	app, err := kernels.NewMatMul(env.MG, cfg)
	if err != nil {
		return nil, err
	}
	ctl, err := adapt.New(env.MG, adapt.Config{SampleEvery: s.NumPEs(), Warm: warm})
	if err != nil {
		return nil, err
	}
	ctl.Attach()
	if _, err := app.Run(); err != nil {
		return nil, fmt.Errorf("exp: x15 matmul at %s: %w", gbs(total), err)
	}
	env.MG.Auditor().CheckQuiescent()
	if err := env.MG.Auditor().Err(); err != nil {
		return nil, fmt.Errorf("exp: x15 matmul at %s: %w", gbs(total), err)
	}
	return ctl, nil
}

// x15Point runs the cold climb, seeds the warm run with its verdict and
// assembles the point.
func x15Point(app string, size int64,
	run func(warm *core.Options) (*adapt.Controller, error)) (X15Point, error) {
	p := X15Point{App: app, Size: size}
	cold, err := run(nil)
	if err != nil {
		return p, err
	}
	p.ColdSettle = cold.SettledTime()
	p.ColdLanded = cold.FinalOptions()
	verdict := p.ColdLanded
	warm, err := run(&verdict)
	if err != nil {
		return p, err
	}
	p.WarmSettle = warm.SettledTime()
	p.WarmLanded = warm.FinalOptions()
	return p, nil
}

// x15ShiftCapture records the X10 shift workload under the default
// declaration-order victim policy — the capture the offline search has
// to improve on.
func x15ShiftCapture(s Scale) (*trace.Capture, error) {
	env := s.newEnv(x10Options(s, core.DeclOrder), false)
	defer env.Close()
	rec := trace.NewRecorder(env.MG)
	rec.Attach()
	app, err := kernels.NewShift(env.MG, s.ShiftConfig())
	if err != nil {
		return nil, err
	}
	if _, err := app.Run(); err != nil {
		return nil, fmt.Errorf("exp: x15 shift capture: %w", err)
	}
	rec.Finish()
	return rec.Capture(), nil
}

// RunX15 runs the closed-loop tuning experiment at the given scale.
func RunX15(s Scale) (*X15Result, error) {
	res := &X15Result{Scale: s}
	for _, red := range s.StencilReducedSizes() {
		p, err := x15Point("stencil", red, func(w *core.Options) (*adapt.Controller, error) {
			return x15AdaptiveStencil(s, red, w)
		})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	for _, total := range s.MatMulTotalSizes() {
		p, err := x15Point("matmul", total, func(w *core.Options) (*adapt.Controller, error) {
			return x15AdaptiveMatMul(s, total, w)
		})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}

	c, err := x15ShiftCapture(s)
	if err != nil {
		return nil, err
	}
	// The search is scoped to the captured strategy: X10 measures the
	// victim-policy effect directly under Multi-IO (the strategy the
	// fixed sweeps already favour for this workload class), and the gate
	// asks whether the replay-driven objective reproduces that ranking.
	// Cross-strategy choice is X3/X9's subject, judged by live
	// measurement; an unscoped search may surface a different strategy
	// by a hair and say nothing about victim ordering either way.
	rc, err := tune.Tune(c, tune.Config{Space: tune.Space{
		Modes: []string{core.MultiIO.String()},
	}})
	if err != nil {
		return nil, fmt.Errorf("exp: x15 tune: %w", err)
	}
	res.Tune = X15Tune{
		CaptureDigest: rc.CaptureDigest,
		Recommended:   rc.Knobs,
		PredictedS:    rc.PredictedMakespanS,
		RecordedS:     rc.RecordedMakespanS,
		Candidates:    len(rc.Trace),
		Replays:       rc.Replays,
		Abandoned:     rc.Abandoned,
		MemoHits:      rc.MemoHits,
	}
	return res, nil
}

// x15Knobs renders a replayed knob set like describeOptions renders
// live options.
func x15Knobs(k trace.Knobs) string {
	s := k.Mode
	if k.IOThreads > 0 {
		s += fmt.Sprintf(" io%d", k.IOThreads)
	}
	if k.PrefetchDepth > 0 {
		s += fmt.Sprintf(" d%d", k.PrefetchDepth)
	}
	s += " victim=" + k.EvictPolicy
	if k.EvictLazily {
		s += " lazy"
	}
	return s
}

// settleCell renders a time-to-settle for the table.
func settleCell(v float64) string {
	if v < 0 {
		return "never"
	}
	return fmt.Sprintf("%.4f", v)
}

// Table renders the cold-vs-warm sweep with the offline verdict in the
// notes.
func (r *X15Result) Table() Table {
	t := Table{
		Title: "X15: offline autotuner + warm-started online adaptation",
		Header: []string{"app", "size", "cold settle (s)", "warm settle (s)",
			"speedup", "cold landed", "warm landed"},
		Notes: []string{
			"settle = virtual time at which the controller first entered its settled phase",
			"warm runs are seeded with the cold run's verdict (adapt.Config.Warm)",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.App,
			gbs(p.Size),
			settleCell(p.ColdSettle),
			settleCell(p.WarmSettle),
			f2(p.Speedup()),
			describeOptions(p.ColdLanded),
			describeOptions(p.WarmLanded),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"offline tune on the shift capture: recommends %s, predicted %.3f s vs recorded %.3f s",
		x15Knobs(r.Tune.Recommended), r.Tune.PredictedS, r.Tune.RecordedS))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"search: %d candidates, %d replays (%d abandoned early, %d memo hits), capture %.12s",
		r.Tune.Candidates, r.Tune.Replays, r.Tune.Abandoned, r.Tune.MemoHits, r.Tune.CaptureDigest))
	return t
}

// X15BenchPoint is the JSON snapshot of one point for BENCH_tune.json.
type X15BenchPoint struct {
	App        string  `json:"app"`
	SizeBytes  int64   `json:"size_bytes"`
	ColdSettle float64 `json:"cold_settle_s"`
	WarmSettle float64 `json:"warm_settle_s"`
	Speedup    float64 `json:"settle_speedup"`
	ColdLanded string  `json:"cold_landed"`
	WarmLanded string  `json:"warm_landed"`
}

// X15BenchTune is the offline-search half of the snapshot.
type X15BenchTune struct {
	CaptureDigest string  `json:"capture_digest"`
	Recommended   string  `json:"recommended"`
	VictimPolicy  string  `json:"victim_policy"`
	PredictedS    float64 `json:"predicted_makespan_s"`
	RecordedS     float64 `json:"recorded_makespan_s"`
	Candidates    int     `json:"candidates"`
	Replays       int     `json:"replays"`
	Abandoned     int     `json:"abandoned"`
	MemoHits      int     `json:"memo_hits"`
}

// X15Bench is the benchmark snapshot emitted by hmrepro -bench-tune.
type X15Bench struct {
	Scale  string          `json:"scale"`
	Metric string          `json:"metric"`
	Points []X15BenchPoint `json:"points"`
	Tune   X15BenchTune    `json:"tune"`
}

// Bench converts the result for JSON emission.
func (r *X15Result) Bench() X15Bench {
	b := X15Bench{
		Scale:  r.Scale.String(),
		Metric: "virtual time-to-settle (s), cold vs warm-started controller",
		Tune: X15BenchTune{
			CaptureDigest: r.Tune.CaptureDigest,
			Recommended:   x15Knobs(r.Tune.Recommended),
			VictimPolicy:  r.Tune.Recommended.EvictPolicy,
			PredictedS:    r.Tune.PredictedS,
			RecordedS:     r.Tune.RecordedS,
			Candidates:    r.Tune.Candidates,
			Replays:       r.Tune.Replays,
			Abandoned:     r.Tune.Abandoned,
			MemoHits:      r.Tune.MemoHits,
		},
	}
	for _, p := range r.Points {
		b.Points = append(b.Points, X15BenchPoint{
			App:        p.App,
			SizeBytes:  p.Size,
			ColdSettle: p.ColdSettle,
			WarmSettle: p.WarmSettle,
			Speedup:    p.Speedup(),
			ColdLanded: describeOptions(p.ColdLanded),
			WarmLanded: describeOptions(p.WarmLanded),
		})
	}
	return b
}
