package exp

import (
	"fmt"
	"sort"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
)

// X9 pits the online adaptive controller against a grid of fixed
// configurations over the Fig 8 stencil sweep and the Fig 9 MatMul
// sweep. The paper tunes its strategy choice, IO-thread count and
// prefetch depth offline per workload ("a more optimal number of IO
// threads", "when to prefetch"); the controller must find an equivalent
// operating point within a single run, from a deliberately weak
// starting configuration, with zero invariant violations.
//
// Metric: stencil runs report the steady-state iteration time (mean of
// the last x9SteadyIters per-iteration deltas — steady state is what an
// HPC run pays for hours, and it excludes neither strategy's cold
// start); MatMul has no iteration structure, so it reports total time,
// adaptation cost included.

// x9Iterations gives the stencil controller room to adapt and then a
// measured steady tail; fixed configurations run the same length so the
// steady windows are directly comparable.
const x9Iterations = 12

// x9SteadyIters is the steady-tail length averaged into the metric.
const x9SteadyIters = 3

// x9Fixed is one fixed configuration in the comparison grid.
type x9Fixed struct {
	name      string
	mode      core.Mode
	ioThreads int
	depth     int
	lazy      bool
}

// x9Grid spans the knob space the controller searches: both SingleIO
// pool sizes, NoIO, and MultiIO across depth and eviction policy.
func x9Grid() []x9Fixed {
	return []x9Fixed{
		{name: "single io1", mode: core.SingleIO},
		{name: "single io4", mode: core.SingleIO, ioThreads: 4},
		{name: "no-io", mode: core.NoIO},
		{name: "multi d1", mode: core.MultiIO, depth: 1},
		{name: "multi d0 eager", mode: core.MultiIO},
		{name: "multi d0 lazy", mode: core.MultiIO, lazy: true},
	}
}

// options builds the manager options for a fixed grid entry.
func (f x9Fixed) options(s Scale) core.Options {
	o := s.options(f.mode)
	o.IOThreads = f.ioThreads
	o.PrefetchDepth = f.depth
	o.EvictLazily = f.lazy
	return o
}

// X9Point is one size point of one application sweep.
type X9Point struct {
	App  string // "stencil" or "matmul"
	Size int64

	Fixed    map[string]float64 // steady metric per fixed config
	Adaptive float64

	Best, Worst       string // best/worst fixed config names
	BestVal, WorstVal float64

	Final           core.Options // where the controller landed
	ConvergedWindow int
	Trace           []adapt.Decision
}

// VsBest returns adaptive/best-fixed (1.0 = matched the offline
// optimum; the acceptance bar is <= 1.05).
func (p X9Point) VsBest() float64 { return p.Adaptive / p.BestVal }

// VsWorst returns worst-fixed/adaptive (how badly an unlucky static
// choice would have lost; the bar is >= 1.3 on at least one point).
func (p X9Point) VsWorst() float64 { return p.WorstVal / p.Adaptive }

// X9Result is the adaptive-vs-fixed comparison over both sweeps.
type X9Result struct {
	Scale  Scale
	Points []X9Point
}

// RunX9 runs the full comparison at the given scale.
func RunX9(s Scale) (*X9Result, error) {
	res := &X9Result{Scale: s}
	for _, red := range s.StencilReducedSizes() {
		p, err := runX9Stencil(s, red)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	for _, total := range s.MatMulTotalSizes() {
		p, err := runX9MatMul(s, total)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// stencilSteady returns the mean of the last x9SteadyIters iteration
// deltas.
func stencilSteady(app *kernels.StencilApp) float64 {
	n := len(app.IterEnd)
	k := x9SteadyIters
	if n < k+1 {
		k = n - 1
	}
	if k < 1 {
		return float64(app.TotalTime())
	}
	return float64(app.IterEnd[n-1]-app.IterEnd[n-1-k]) / float64(k)
}

// adaptiveEnv builds the environment for an adaptive run: tracing,
// metrics and the full invariant auditor are always on — the acceptance
// bar requires every adaptive run to be audit-clean, not just the ones
// under -audit.
func adaptiveEnv(s Scale, opts core.Options) *kernels.Env {
	opts.Audit = true
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   s.Machine(),
		NumPEs: s.NumPEs(),
		Opts:   opts,
		Trace:  true,
	})
	registerAudit(env)
	return env
}

// finishAdaptive audit-checks an adaptive run and fills the
// controller-side fields of the point.
func finishAdaptive(p *X9Point, env *kernels.Env, ctl *adapt.Controller, metric float64) error {
	env.MG.Auditor().CheckQuiescent()
	if err := env.MG.Auditor().Err(); err != nil {
		return fmt.Errorf("exp: x9 adaptive %s at %s: %w", p.App, gbs(p.Size), err)
	}
	p.Adaptive = metric
	p.Final = ctl.FinalOptions()
	p.ConvergedWindow = ctl.ConvergedWindow()
	p.Trace = ctl.Trace()
	return nil
}

// rank fills Best/Worst from the fixed grid results. Iterating the
// names in sorted order makes the lexicographic tie-break implicit: the
// first name seen at a given value wins.
func (p *X9Point) rank() {
	names := make([]string, 0, len(p.Fixed))
	for name := range p.Fixed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := p.Fixed[name]
		if p.Best == "" || v < p.BestVal {
			p.Best, p.BestVal = name, v
		}
		if p.Worst == "" || v > p.WorstVal {
			p.Worst, p.WorstVal = name, v
		}
	}
}

func runX9Stencil(s Scale, red int64) (X9Point, error) {
	p := X9Point{App: "stencil", Size: red, Fixed: make(map[string]float64)}
	cfg := s.StencilConfig(red)
	cfg.Iterations = x9Iterations

	for _, f := range x9Grid() {
		env := s.newEnv(f.options(s), false)
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			env.Close()
			return p, err
		}
		_, err = app.Run()
		steady := stencilSteady(app)
		env.Close()
		if err != nil {
			return p, fmt.Errorf("exp: x9 stencil %s at %s: %w", f.name, gbs(red), err)
		}
		p.Fixed[f.name] = steady
	}
	p.rank()

	// Adaptive run, from the weakest movement configuration the paper
	// evaluates: one IO thread serving every PE, eager eviction.
	env := adaptiveEnv(s, s.options(core.SingleIO))
	defer env.Close()
	app, err := kernels.NewStencil(env.MG, cfg)
	if err != nil {
		return p, err
	}
	ctl, err := adapt.New(env.MG, adapt.Config{})
	if err != nil {
		return p, err
	}
	ctl.Attach()
	app.OnIteration = func(_ int, resume func()) {
		ctl.Barrier()
		resume()
	}
	if _, err := app.Run(); err != nil {
		return p, fmt.Errorf("exp: x9 adaptive stencil at %s: %w", gbs(red), err)
	}
	return p, finishAdaptive(&p, env, ctl, stencilSteady(app))
}

func runX9MatMul(s Scale, total int64) (X9Point, error) {
	p := X9Point{App: "matmul", Size: total, Fixed: make(map[string]float64)}
	cfg := s.MatMulConfig(total)

	for _, f := range x9Grid() {
		env := s.newEnv(f.options(s), false)
		app, err := kernels.NewMatMul(env.MG, cfg)
		if err != nil {
			env.Close()
			return p, err
		}
		t, err := app.Run()
		env.Close()
		if err != nil {
			return p, fmt.Errorf("exp: x9 matmul %s at %s: %w", f.name, gbs(total), err)
		}
		p.Fixed[f.name] = float64(t)
	}
	p.rank()

	// Adaptive run: MatMul has no barriers, so the controller samples
	// completion windows; strategy switching needs quiescence, so it
	// starts on the movement strategy Fig 9 already favours and tunes
	// depth and eviction within it.
	env := adaptiveEnv(s, s.options(core.MultiIO))
	defer env.Close()
	app, err := kernels.NewMatMul(env.MG, cfg)
	if err != nil {
		return p, err
	}
	// One task per PE and window: small enough that the climb finishes
	// in the first tenth of the run (adaptation cost lands in the
	// total-time metric), and still stable — MatMul's tasks are
	// uniform, so even a one-task-per-PE window scores cleanly.
	ctl, err := adapt.New(env.MG, adapt.Config{SampleEvery: s.NumPEs()})
	if err != nil {
		return p, err
	}
	ctl.Attach()
	t, err := app.Run()
	if err != nil {
		return p, fmt.Errorf("exp: x9 adaptive matmul at %s: %w", gbs(total), err)
	}
	return p, finishAdaptive(&p, env, ctl, float64(t))
}

// describeOptions summarises where the controller landed.
func describeOptions(o core.Options) string {
	s := "single"
	switch o.Mode {
	case core.MultiIO:
		s = "multi"
	case core.NoIO:
		s = "no-io"
	}
	if o.Mode == core.SingleIO {
		io := o.IOThreads
		if io <= 0 {
			io = 1
		}
		s = fmt.Sprintf("%s io%d", s, io)
	}
	if o.Mode == core.MultiIO {
		s = fmt.Sprintf("%s d%d", s, o.PrefetchDepth)
	}
	if o.EvictLazily {
		s += " lazy"
	} else if o.Mode.Moves() {
		s += " eager"
	}
	return s
}

// Table renders both sweeps with per-point convergence traces in the
// notes.
func (r *X9Result) Table() Table {
	t := Table{
		Title: "X9: online adaptive controller vs fixed configurations",
		Header: []string{"app", "size", "adaptive (s)", "best fixed", "vs best",
			"worst fixed", "vs worst", "landed on", "settled"},
		Notes: []string{
			"stencil metric: steady-state s/iteration (mean of last " +
				fmt.Sprintf("%d", x9SteadyIters) + "); matmul metric: total s",
			"adaptive stencil starts at 'single io1', matmul at 'multi d0 eager'",
			"vs best = adaptive/best (1.00 matches the offline optimum); " +
				"vs worst = worst/adaptive",
		},
	}
	for _, p := range r.Points {
		settled := "no"
		if p.ConvergedWindow >= 0 {
			settled = fmt.Sprintf("w%d", p.ConvergedWindow)
		}
		t.Rows = append(t.Rows, []string{
			p.App,
			gbs(p.Size),
			f3(p.Adaptive),
			fmt.Sprintf("%s (%s)", p.Best, f3(p.BestVal)),
			f2(p.VsBest()),
			fmt.Sprintf("%s (%s)", p.Worst, f3(p.WorstVal)),
			f2(p.VsWorst()),
			describeOptions(p.Final),
			settled,
		})
	}
	for _, p := range r.Points {
		t.Notes = append(t.Notes, fmt.Sprintf("%s %s trace:", p.App, gbs(p.Size)))
		for _, d := range p.Trace {
			t.Notes = append(t.Notes, "  "+d.String())
		}
	}
	return t
}

// X9BenchPoint is the JSON snapshot of one point for BENCH_adapt.json.
type X9BenchPoint struct {
	App             string             `json:"app"`
	SizeBytes       int64              `json:"size_bytes"`
	Adaptive        float64            `json:"adaptive_s"`
	Best            string             `json:"best_fixed"`
	BestVal         float64            `json:"best_fixed_s"`
	Worst           string             `json:"worst_fixed"`
	WorstVal        float64            `json:"worst_fixed_s"`
	VsBest          float64            `json:"adaptive_vs_best"`
	VsWorst         float64            `json:"worst_vs_adaptive"`
	Landed          string             `json:"landed_on"`
	ConvergedWindow int                `json:"converged_window"`
	Fixed           map[string]float64 `json:"fixed_s"`
}

// X9Bench is the benchmark snapshot emitted by hmrepro -bench-adapt.
type X9Bench struct {
	Scale  string         `json:"scale"`
	Metric string         `json:"metric"`
	Points []X9BenchPoint `json:"points"`
}

// Bench converts the result for JSON emission.
func (r *X9Result) Bench() X9Bench {
	b := X9Bench{
		Scale:  r.Scale.String(),
		Metric: "stencil: steady s/iter; matmul: total s",
	}
	for _, p := range r.Points {
		bp := X9BenchPoint{
			App:             p.App,
			SizeBytes:       p.Size,
			Adaptive:        p.Adaptive,
			Best:            p.Best,
			BestVal:         p.BestVal,
			Worst:           p.Worst,
			WorstVal:        p.WorstVal,
			VsBest:          p.VsBest(),
			VsWorst:         p.VsWorst(),
			Landed:          describeOptions(p.Final),
			ConvergedWindow: p.ConvergedWindow,
			Fixed:           p.Fixed,
		}
		b.Points = append(b.Points, bp)
	}
	sort.SliceStable(b.Points, func(i, j int) bool {
		if b.Points[i].App != b.Points[j].App {
			return b.Points[i].App < b.Points[j].App
		}
		return b.Points[i].SizeBytes < b.Points[j].SizeBytes
	})
	return b
}
