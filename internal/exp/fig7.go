package exp

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// Fig7Point is one x-position of the memcpy-cost figure.
type Fig7Point struct {
	TotalBytes int64
	DDRToHBM   sim.Time
	HBMToDDR   sim.Time
}

// Fig7Result is the data-migration memcpy cost (Fig. 7): 64 threads
// simultaneously copying blocks between the memory nodes, for a range
// of total volumes and both directions. As in the paper, only the
// memcpy step is timed (allocation and free are excluded).
type Fig7Result struct {
	Scale   Scale
	Threads int
	Points  []Fig7Point
}

// RunFig7 measures the migration memcpy cost.
func RunFig7(s Scale) (*Fig7Result, error) {
	threads := s.NumPEs()
	res := &Fig7Result{Scale: s, Threads: threads}
	sizes := []int64{2 * GB, 4 * GB, 6 * GB, 8 * GB, 10 * GB, 12 * GB, 14 * GB, 15 * GB}
	if s == Small {
		sizes = []int64{GB / 4, GB / 2, GB, 3 * GB / 2}
	}
	for _, total := range sizes {
		d2h, err := measureMemcpy(s, threads, total, topology.DDRNodeID, topology.HBMNodeID)
		if err != nil {
			return nil, err
		}
		h2d, err := measureMemcpy(s, threads, total, topology.HBMNodeID, topology.DDRNodeID)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig7Point{TotalBytes: total, DDRToHBM: d2h, HBMToDDR: h2d})
	}
	return res, nil
}

// measureMemcpy has threads workers each copy (total/threads) bytes
// between pre-allocated buffers on src and dst nodes, and returns the
// time until the last copy finishes.
func measureMemcpy(s Scale, threads int, total int64, srcNode, dstNode int) (sim.Time, error) {
	e := sim.NewEngine(1)
	defer e.Close()
	mach, err := s.Machine().Build(e)
	if err != nil {
		return 0, err
	}
	alloc := mach.Alloc
	alloc.MemcpyRateCap = mach.Spec.MemcpyBW
	per := total / int64(threads)

	var wg sim.WaitGroup
	wg.Add(threads)
	var end sim.Time
	for i := 0; i < threads; i++ {
		src, err := alloc.AllocOnNode(per, srcNode)
		if err != nil {
			return 0, fmt.Errorf("exp: fig7 source alloc: %w", err)
		}
		dst, err := alloc.AllocOnNode(per, dstNode)
		if err != nil {
			return 0, fmt.Errorf("exp: fig7 destination alloc: %w", err)
		}
		e.Spawn(fmt.Sprintf("cp%d", i), func(p *sim.Proc) {
			if _, err := alloc.Memcpy(p, dst, src); err != nil {
				panic(err)
			}
			wg.Done()
		})
	}
	e.Spawn("join", func(p *sim.Proc) {
		wg.Wait(p)
		end = p.Now()
	})
	e.RunAll()
	return end, nil
}

// Table renders the figure.
func (r *Fig7Result) Table() Table {
	t := Table{
		Title:  "Fig 7: memcpy cost for data migration",
		Header: []string{"total moved", "DDR->HBM (s)", "HBM->DDR (s)"},
		Notes: []string{
			"paper: memcpy costs for HBM to DDR4 are slightly higher",
			fmt.Sprintf("%d concurrent threads, memcpy step only", r.Threads),
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{gbs(p.TotalBytes), f3(p.DDRToHBM), f3(p.HBMToDDR)})
	}
	return t
}

// Asymmetric reports whether every point shows HBM->DDR costing at
// least as much as DDR->HBM (the paper's observation).
func (r *Fig7Result) Asymmetric() bool {
	for _, p := range r.Points {
		if p.HBMToDDR < p.DDRToHBM {
			return false
		}
	}
	return true
}
