package exp

import "testing"

// TestAuditCleanAcrossFigures runs a representative mix of figure
// drivers with the invariant auditor enabled on every environment they
// build: the ablation sweeps that exercise the three fixed races
// (IO-thread counts, prefetch-depth bounds) plus a capacity-pressure
// figure. Every run must finish with zero violations and produce a
// coherent metrics snapshot.
func TestAuditCleanAcrossFigures(t *testing.T) {
	SetAudit(true)
	defer SetAudit(false)

	if _, err := RunAblationIOThreads(Small); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAblationPrefetchDepth(Small); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFig8(Small); err != nil {
		t.Fatal(err)
	}

	snaps, violations := DrainAudit()
	if len(snaps) == 0 {
		t.Fatal("no audited environments registered")
	}
	if violations != 0 {
		for _, s := range snaps {
			for _, v := range s.Violations {
				t.Errorf("%s: %v", s.Mode, v)
			}
		}
		t.Fatalf("%d invariant violation(s) across %d runs", violations, len(snaps))
	}
	for _, s := range snaps {
		if s.Mode == "" {
			t.Fatal("snapshot missing mode")
		}
		if s.HBMBudget <= 0 {
			t.Fatalf("snapshot missing budget: %+v", s)
		}
		if s.Fetches > 0 && s.FetchHist.N != s.Fetches {
			t.Fatalf("%s: fetch histogram %d samples for %d fetches", s.Mode, s.FetchHist.N, s.Fetches)
		}
	}
	// The registry must have drained.
	if again, _ := DrainAudit(); len(again) != 0 {
		t.Fatal("DrainAudit did not clear the registry")
	}
}

// TestAuditOffByDefault: without SetAudit, drivers build unaudited
// environments and DrainAudit has nothing.
func TestAuditOffByDefault(t *testing.T) {
	if _, err := RunAblationQueues(Small); err != nil {
		t.Fatal(err)
	}
	if snaps, _ := DrainAudit(); len(snaps) != 0 {
		t.Fatalf("unaudited run registered %d snapshots", len(snaps))
	}
}
