package exp

import (
	"testing"

	"github.com/hetmem/hetmem/internal/core"
)

// TestX11ReplayAcceptance is the ISSUE's acceptance bar for the replay
// engine: the fidelity leg must reproduce the recorded schedule
// byte-identically, and the what-if leg's policy deltas must agree
// directionally with X10's real fixed runs — non-vacuously (the decl
// replay must actually force evictions for lookahead to avoid).
func TestX11ReplayAcceptance(t *testing.T) {
	SetAudit(false)
	res, err := RunX11(Small)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())

	if !res.Identical {
		t.Errorf("fidelity: replayed schedule diverged from recorded (makespan %v vs %v)",
			res.ReplayedMakespan, res.RecordedMakespan)
	}
	if res.Tasks == 0 || res.Events == 0 {
		t.Errorf("fidelity: empty capture (%d tasks, %d events)", res.Tasks, res.Events)
	}
	// Recording must add zero virtual time (the <=5% acceptance bar
	// holds with an exact-zero expectation).
	if res.OverheadPct != 0 {
		t.Errorf("capture overhead %.6f%% virtual-time delta, want 0 (traced %v vs untraced %v)",
			res.OverheadPct, res.RecordedMakespan, res.UntracedMakespan)
	}

	decl, look := res.Row(core.DeclOrder.Name()), res.Row(core.Lookahead.Name())
	if decl == nil || look == nil {
		t.Fatalf("what-if rows missing: %+v", res.WhatIf)
	}
	if decl.ReplayForced == 0 {
		t.Errorf("what-if: decl replay forced no evictions; the comparison is vacuous")
	}
	if !res.Consistent() {
		t.Errorf("what-if: replayed deltas inconsistent with real runs:\n decl: %+v\n look: %+v", decl, look)
	}
}

// TestX11Deterministic: the rendered table embeds both makespans to
// full precision and every counter of the what-if comparison, so any
// nondeterminism in capture, reconstruction or replay shows up as a
// table diff between two complete runs.
func TestX11Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full X11 runs")
	}
	SetAudit(false)
	a, err := RunX11(Small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunX11(Small)
	if err != nil {
		t.Fatal(err)
	}
	if at, bt := a.Table().String(), b.Table().String(); at != bt {
		t.Errorf("X11 is nondeterministic:\nfirst:\n%s\nsecond:\n%s", at, bt)
	}
}
