package exp

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
)

// Fig2Result compares Stencil3D on HBM vs DDR4 when the dataset fits
// within HBM (Fig. 2): placement is the only difference, no movement.
type Fig2Result struct {
	Scale Scale

	// Total application time per iteration.
	HBMIterTime sim.Time
	DDRIterTime sim.Time

	// Compute-kernel PE-seconds ("total time spent in bandwidth
	// sensitive task" in the figure).
	HBMKernelTime sim.Time
	DDRKernelTime sim.Time
}

// RunFig2 runs the fitting working set on pure-HBM (Baseline placement
// with a fitting set puts everything in MCDRAM) and on pure DDR4.
func RunFig2(s Scale) (*Fig2Result, error) {
	// A grid that fits the HBM budget entirely.
	total := 8 * GB
	if s == Small {
		total = GB
	}
	run := func(mode core.Mode) (sim.Time, sim.Time, error) {
		cfg := s.StencilConfig(total)
		cfg.TotalBytes = total // reduced == total: no over-subscription
		env := s.newEnv(s.options(mode), true)
		defer env.Close()
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			return 0, 0, err
		}
		if _, err := app.Run(); err != nil {
			return 0, 0, err
		}
		sum := env.Tracer.Summarize()
		return app.AvgIterTime(), sum.Totals[projections.Compute], nil
	}
	hbmIter, hbmKern, err := run(core.Baseline)
	if err != nil {
		return nil, err
	}
	ddrIter, ddrKern, err := run(core.DDROnly)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		Scale:       s,
		HBMIterTime: hbmIter, DDRIterTime: ddrIter,
		HBMKernelTime: hbmKern, DDRKernelTime: ddrKern,
	}, nil
}

// IterRatio returns DDR/HBM iteration-time ratio.
func (r *Fig2Result) IterRatio() float64 { return float64(r.DDRIterTime) / float64(r.HBMIterTime) }

// KernelRatio returns DDR/HBM compute-kernel-time ratio.
func (r *Fig2Result) KernelRatio() float64 {
	return float64(r.DDRKernelTime) / float64(r.HBMKernelTime)
}

// Table renders the figure.
func (r *Fig2Result) Table() Table {
	return Table{
		Title:  "Fig 2: Stencil3D on HBM vs DDR4, dataset fits in HBM",
		Header: []string{"placement", "iter time (s)", "kernel PE-s"},
		Rows: [][]string{
			{"HBM (MCDRAM)", f3(r.HBMIterTime), f2(r.HBMKernelTime)},
			{"DDR4", f3(r.DDRIterTime), f2(r.DDRKernelTime)},
			{"ratio DDR/HBM", f2(r.IterRatio()), f2(r.KernelRatio())},
		},
		Notes: []string{
			"paper: performance on HBM is 3X higher than on DDR4",
			fmt.Sprintf("%s scale", r.Scale),
		},
	}
}
