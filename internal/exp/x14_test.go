package exp

import (
	"encoding/json"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
)

// TestX14GateAcceptance is the acceptance bar for the depth sweep:
// Lookahead beats DeclOrder outright on every chain deeper than the
// paper's, and its absolute advantage widens strictly from 2 to 3 to 4
// tiers on both apps (Pass checks both). The demotion split must also
// match the policies' rules: DeclOrder victims never stop at an
// intermediate tier, Lookahead victims never go past the adjacent one.
func TestX14GateAcceptance(t *testing.T) {
	SetAudit(false)
	res, err := RunX14(Small)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())
	if err := res.Pass(); err != nil {
		t.Error(err)
	}
	for _, row := range res.Rows {
		if row.Depth == 2 {
			// On the paper's machine the adjacent tier is the bottom;
			// both policies demote there.
			if row.DemotedDeep != 0 {
				t.Errorf("%s depth 2 %s: demoted %d bytes past the only far tier",
					row.App, row.Policy, row.DemotedDeep)
			}
			continue
		}
		switch row.Policy {
		case core.DeclOrder.Name():
			if row.DemotedNext != 0 {
				t.Errorf("%s depth %d decl: %d bytes stopped at the adjacent tier; decl drops to bottom",
					row.App, row.Depth, row.DemotedNext)
			}
		case core.Lookahead.Name():
			if row.DemotedDeep != 0 {
				t.Errorf("%s depth %d lookahead: %d bytes went past the adjacent tier; lookahead demotes one level",
					row.App, row.Depth, row.DemotedDeep)
			}
		}
	}
}

// TestX14Deterministic: two full sweeps must render byte-identical
// tables and benchmark JSON — the determinism half of the acceptance
// criteria, at test scale.
func TestX14Deterministic(t *testing.T) {
	SetAudit(false)
	r1, err := RunX14(Small)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunX14(Small)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := r1.Table().String(), r2.Table().String(); a != b {
		t.Errorf("X14 tables differ across runs:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	j1, err := json.Marshal(r1.Bench())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2.Bench())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("X14 bench JSON differs across runs:\n%s\n%s", j1, j2)
	}
}

// TestThreeTierEvictionDemotion drives the cyclic-sweep shift workload
// on a 3-tier chain under all three victim policies and checks the
// demotion semantics end to end through the per-edge byte counters:
// DeclOrder and LRU drop victims to the bottom tier (no bytes stop at
// DDR4), Lookahead demotes one level (no bytes reach the bottom), and
// the cheaper refetch path makes Lookahead's post-shift phase faster
// than DeclOrder's.
func TestThreeTierEvictionDemotion(t *testing.T) {
	SetAudit(false)
	s := Small
	spec, err := s.TieredMachine(3)
	if err != nil {
		t.Fatal(err)
	}
	postShift := make(map[string]float64)
	for _, pol := range core.EvictPolicies() {
		env := kernels.NewEnv(kernels.EnvConfig{
			Spec:   spec,
			NumPEs: s.NumPEs(),
			Opts:   x10Options(s, pol),
			Params: charm.DefaultParams(),
		})
		app, err := kernels.NewShift(env.MG, s.ShiftConfig())
		if err != nil {
			env.Close()
			t.Fatal(err)
		}
		if _, err := app.Run(); err != nil {
			env.Close()
			t.Fatal(err)
		}
		postShift[pol.Name()] = float64(app.PostShiftTime())

		chain := env.Mach.Chain()
		near, next, bottom := chain[0].Name, chain[1].Name, chain[2].Name
		edges := env.MG.Stats.EdgeBytes
		toNext, toBottom := edges[near+"->"+next], edges[near+"->"+bottom]
		switch pol.DemoteTarget() {
		case core.DemoteBottom:
			if toNext != 0 {
				t.Errorf("%s: %d bytes stopped at %s; demote-to-bottom policies must not", pol.Name(), toNext, next)
			}
			if toBottom == 0 {
				t.Errorf("%s: no bytes evicted to %s; the workload exerts no pressure", pol.Name(), bottom)
			}
		case core.DemoteNext:
			if toBottom != 0 {
				t.Errorf("%s: %d bytes dropped to %s; one-level demotion must stop at %s", pol.Name(), toBottom, bottom, next)
			}
			if toNext == 0 {
				t.Errorf("%s: no bytes demoted to %s; the workload exerts no pressure", pol.Name(), next)
			}
		}
		env.Close()
	}
	decl, look := postShift[core.DeclOrder.Name()], postShift[core.Lookahead.Name()]
	if look >= decl {
		t.Errorf("post-shift time: lookahead %.3f s not faster than decl %.3f s on the 3-tier chain", look, decl)
	}
}
