package exp

import (
	"testing"

	"github.com/hetmem/hetmem/internal/core"
)

// TestX10PolicyAcceptance is the ISSUE's acceptance bar for the victim
// policies: on the Fig 8 overflow point and on the shift workload,
// Lookahead must force strictly fewer evictions of still-needed blocks
// and cause strictly fewer refetches than declaration order — and the
// comparison must be non-vacuous (DeclOrder actually forces some).
func TestX10PolicyAcceptance(t *testing.T) {
	SetAudit(false)
	res, err := RunX10(Small)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())

	for _, workload := range []string{"fig8-stencil", "shift"} {
		decl := res.Row(workload, core.DeclOrder.Name())
		look := res.Row(workload, core.Lookahead.Name())
		if decl == nil || look == nil {
			t.Fatalf("%s: missing policy rows", workload)
		}
		if decl.Forced == 0 {
			t.Errorf("%s: DeclOrder forced no evictions; the point exerts no pressure", workload)
		}
		if look.Forced >= decl.Forced {
			t.Errorf("%s: lookahead forced %d evictions, decl %d; want strictly fewer",
				workload, look.Forced, decl.Forced)
		}
		if look.Refetches >= decl.Refetches {
			t.Errorf("%s: lookahead caused %d refetches, decl %d; want strictly fewer",
				workload, look.Refetches, decl.Refetches)
		}
	}

	// Adaptive run: the settled-phase guard must detect the shift and
	// re-open the climb, the victim watch must upgrade to Lookahead,
	// and the controller must settle again after the shift.
	if res.Reopens < 1 {
		t.Errorf("adaptive: controller never reopened the climb (trace below)\n%s", res.Table())
	}
	if res.FinalPolicy() != core.Lookahead.Name() {
		t.Errorf("adaptive: final victim policy %s, want %s", res.FinalPolicy(), core.Lookahead.Name())
	}
	if res.ConvergedWindow < 0 {
		t.Errorf("adaptive: controller did not re-settle after the shift")
	} else if res.ReopenWindow >= 0 && res.ConvergedWindow <= res.ReopenWindow {
		t.Errorf("adaptive: settled w%d not after reopen w%d", res.ConvergedWindow, res.ReopenWindow)
	}
}

// TestX10Deterministic: the rendered table embeds the counters of all
// six fixed runs and the adaptive decision trace, so any divergence in
// policy ranking or controller behaviour shows up as a diff.
func TestX10Deterministic(t *testing.T) {
	SetAudit(false)
	assertDeterministic(t, "x10", func() (string, error) {
		r, err := RunX10(Small)
		if err != nil {
			return "", err
		}
		return r.Table().String(), nil
	})
}

// TestFig8DeterministicPerPolicy re-runs the Fig 8 sweep under each
// victim policy: every policy must be deterministic, not just the
// default.
func TestFig8DeterministicPerPolicy(t *testing.T) {
	SetAudit(false)
	defer SetEvictPolicy(nil)
	for _, pol := range core.EvictPolicies() {
		SetEvictPolicy(pol)
		assertDeterministic(t, "fig8/"+pol.Name(), func() (string, error) {
			r, err := RunFig8(Small)
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		})
	}
}

// TestAuditCleanPerPolicy runs the capacity-pressure figure with the
// full invariant auditor under each victim policy: reordering victims
// must never break conservation, staging or transition invariants.
func TestAuditCleanPerPolicy(t *testing.T) {
	defer SetEvictPolicy(nil)
	for _, pol := range core.EvictPolicies() {
		SetEvictPolicy(pol)
		SetAudit(true)
		if _, err := RunFig8(Small); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		snaps, violations := DrainAudit()
		SetAudit(false)
		if len(snaps) == 0 {
			t.Fatalf("%s: no audited environments registered", pol.Name())
		}
		if violations != 0 {
			for _, s := range snaps {
				for _, v := range s.Violations {
					t.Errorf("%s/%s: %v", pol.Name(), s.Mode, v)
				}
			}
			t.Fatalf("%s: %d invariant violation(s)", pol.Name(), violations)
		}
	}
}
