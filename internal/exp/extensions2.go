package exp

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// --- X5: NVM far memory (the paper's extension target) ---

// NVMRow compares one mode's stencil time on the two far-memory
// technologies.
type NVMRow struct {
	Mode     core.Mode
	DDRTime  sim.Time
	NVMTime  sim.Time
	Speedups struct {
		DDR float64 // vs Naive on the DDR machine
		NVM float64 // vs Naive on the NVM machine
	}
}

// NVMResult is experiment X5: the paper's conclusion predicts that
// "architectures with heterogeneity in both latency and bandwidth
// would benefit even more" from runtime-managed movement; this runs
// the Fig. 8 stencil with an NVM far memory to test it.
type NVMResult struct {
	Scale Scale
	Rows  []NVMRow
}

// nvmMachine returns the scale's machine with the far memory replaced
// by the NVM tier.
func (s Scale) nvmMachine() topology.MachineSpec {
	nvm := topology.KNLWithNVM()
	spec := s.Machine() // for the scaled HBM/core parameters
	spec.Name = nvm.Name
	spec.FarKind = nvm.FarKind
	// Scale the NVM bandwidths like the other node parameters.
	div := 1.0
	if s == Small {
		div = 8
	}
	spec.DDRCap = nvm.DDRCap
	if s == Small {
		spec.DDRCap = nvm.DDRCap / 8
	}
	spec.DDRReadBW = nvm.DDRReadBW / div
	spec.DDRWriteBW = nvm.DDRWriteBW / div
	spec.DDRTotalBW = nvm.DDRTotalBW / div
	spec.DDRLatency = nvm.DDRLatency
	return spec
}

// RunNVM compares Naive vs the strategies on DDR-far and NVM-far
// machines.
func RunNVM(s Scale) (*NVMResult, error) {
	res := &NVMResult{Scale: s}
	cfg := s.StencilConfig(s.StencilReducedSizes()[1])
	run := func(spec topology.MachineSpec, mode core.Mode) (sim.Time, error) {
		env := kernels.NewEnv(kernels.EnvConfig{
			Spec:   spec,
			NumPEs: s.NumPEs(),
			Opts:   s.options(mode),
			Params: charm.DefaultParams(),
		})
		registerAudit(env)
		defer env.Close()
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			return 0, err
		}
		return app.Run()
	}
	ddrSpec := s.Machine()
	nvmSpec := s.nvmMachine()
	var naiveDDR, naiveNVM sim.Time
	for _, mode := range []core.Mode{core.Baseline, core.NoIO, core.MultiIO} {
		ddr, err := run(ddrSpec, mode)
		if err != nil {
			return nil, fmt.Errorf("exp: nvm %v on DDR: %w", mode, err)
		}
		nvm, err := run(nvmSpec, mode)
		if err != nil {
			return nil, fmt.Errorf("exp: nvm %v on NVM: %w", mode, err)
		}
		if mode == core.Baseline {
			naiveDDR, naiveNVM = ddr, nvm
		}
		row := NVMRow{Mode: mode, DDRTime: ddr, NVMTime: nvm}
		row.Speedups.DDR = float64(naiveDDR) / float64(ddr)
		row.Speedups.NVM = float64(naiveNVM) / float64(nvm)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders X5.
func (r *NVMResult) Table() Table {
	t := Table{
		Title:  "X5: DDR4 vs NVM far memory (Stencil3D)",
		Header: []string{"strategy", "DDR4-far (s)", "speedup", "NVM-far (s)", "speedup"},
		Notes: []string{
			"paper conclusion: 'architectures with heterogeneity in both",
			"latency and bandwidth would benefit even more'",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Mode.String(),
			f2(row.DDRTime), f2(row.Speedups.DDR),
			f2(row.NVMTime), f2(row.Speedups.NVM),
		})
	}
	return t
}

// --- X6: prefetch depth (the §IV-D "when to prefetch" trade-off) ---

// PrefetchDepthRow is one point of the depth sweep.
type PrefetchDepthRow struct {
	Depth   int // 0 = unlimited
	Time    sim.Time
	Fetches int64
}

// PrefetchDepthResult is experiment X6: bounding how far ahead the
// MultiIO IO threads stage.
type PrefetchDepthResult struct {
	Scale Scale
	Rows  []PrefetchDepthRow
}

// RunAblationPrefetchDepth sweeps the MultiIO prefetch depth on the
// stencil.
func RunAblationPrefetchDepth(s Scale) (*PrefetchDepthResult, error) {
	res := &PrefetchDepthResult{Scale: s}
	for _, depth := range []int{1, 2, 4, 8, 0} {
		opts := s.options(core.MultiIO)
		opts.PrefetchDepth = depth
		cfg := s.StencilConfig(s.StencilReducedSizes()[1])
		env := s.newEnv(opts, false)
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			env.Close()
			return nil, err
		}
		total, err := app.Run()
		fetches := env.MG.Stats.Fetches
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("exp: prefetch depth %d: %w", depth, err)
		}
		res.Rows = append(res.Rows, PrefetchDepthRow{Depth: depth, Time: total, Fetches: fetches})
	}
	return res, nil
}

// Table renders X6.
func (r *PrefetchDepthResult) Table() Table {
	t := Table{
		Title:  "X6 (ablation): MultiIO prefetch depth (Stencil3D)",
		Header: []string{"depth", "total (s)", "fetches"},
		Notes: []string{
			"§IV-D: prefetch must overlap computation; depth 1 serialises",
			"staging behind each task, deeper pipelines hide it",
		},
	}
	for _, row := range r.Rows {
		d := fmt.Sprint(row.Depth)
		if row.Depth == 0 {
			d = "unlimited"
		}
		t.Rows = append(t.Rows, []string{d, f2(row.Time), fmt.Sprint(row.Fetches)})
	}
	return t
}

// --- X7: load balancing of an imbalanced stencil ---

// LoadBalanceResult is experiment X7: the over-decomposition +
// migratability benefit the paper's background section motivates,
// exercised with a skewed per-chare load.
type LoadBalanceResult struct {
	Scale Scale

	UnbalancedTime sim.Time
	BalancedTime   sim.Time
	Migrations     int

	// Per-iteration times show the rebalance taking effect after
	// iteration 1.
	UnbalancedIters []sim.Time
	BalancedIters   []sim.Time
}

// RunLoadBalance runs a stencil whose first quarter of chares carries
// 4x the arithmetic, block-mapped so the skew lands on a quarter of
// the PEs, with and without the greedy rebalancer.
func RunLoadBalance(s Scale) (*LoadBalanceResult, error) {
	res := &LoadBalanceResult{Scale: s}
	build := func(lb bool) (sim.Time, []sim.Time, int, error) {
		cfg := s.StencilConfig(s.StencilReducedSizes()[1])
		n := cfg.NumChares()
		cfg.Weight = func(i int) float64 {
			if i < n/4 {
				return 4
			}
			return 1
		}
		cfg.BlockMapping = true
		cfg.LoadBalance = lb
		cfg.Iterations = 4
		env := s.newEnv(s.options(core.MultiIO), false)
		defer env.Close()
		app, err := kernels.NewStencil(env.MG, cfg)
		if err != nil {
			return 0, nil, 0, err
		}
		total, err := app.Run()
		if err != nil {
			return 0, nil, 0, err
		}
		iters := make([]sim.Time, len(app.IterEnd))
		prev := sim.Time(0)
		for i, t := range app.IterEnd {
			iters[i] = t - prev
			prev = t
		}
		return total, iters, app.Migrations, nil
	}
	var err error
	res.UnbalancedTime, res.UnbalancedIters, _, err = build(false)
	if err != nil {
		return nil, err
	}
	res.BalancedTime, res.BalancedIters, res.Migrations, err = build(true)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders X7.
func (r *LoadBalanceResult) Table() Table {
	t := Table{
		Title:  "X7: greedy load balancing of an imbalanced Stencil3D (MultiIO)",
		Header: []string{"configuration", "total (s)", "iter 1 (s)", "last iter (s)"},
		Rows: [][]string{
			{"no balancing", f2(r.UnbalancedTime),
				f2(r.UnbalancedIters[0]), f2(r.UnbalancedIters[len(r.UnbalancedIters)-1])},
			{fmt.Sprintf("greedy LB after iter 1 (%d moved)", r.Migrations), f2(r.BalancedTime),
				f2(r.BalancedIters[0]), f2(r.BalancedIters[len(r.BalancedIters)-1])},
		},
		Notes: []string{
			"the over-decomposition benefit of §III-A: 'over-decomposition",
			"with migratability allows for load balancing of chares'",
		},
	}
	return t
}
