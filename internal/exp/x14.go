package exp

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
)

// X14 sweeps the memory chain depth: the Fig 8 stencil overflow point
// and the Fig 9 matmul largest working set run on 2-, 3- and 4-tier
// machines (HBM → DDR4, + NVM, + Remote per topology.TieredKNL) under
// the DeclOrder and Lookahead victim policies.
//
// The two policies differ in where victims land. DeclOrder drops them
// to the bottom of the chain (the paper's two-tier behaviour continued
// literally), so on deeper chains every wrong victim is refetched at
// NVM or remote-link bandwidth. Lookahead demotes one level — a block
// it mispredicts waits in DDR4, and the refetch costs what it did on
// the paper's machine. The acceptance bar is therefore that
// Lookahead's absolute advantage (time(decl) − time(lookahead)) widens
// strictly as the chain deepens, on both applications, and that
// Lookahead wins outright wherever the chain is deeper than the
// paper's. (On the 2-tier machine the demotion rules coincide and the
// policies may tie or trade places within noise — Fig 9's matmul
// slightly favours DeclOrder there.)

// x14Apps and x14Depths fix the sweep axes (and the ordering the gate
// checks).
var (
	x14Apps   = []string{"fig8-stencil", "fig9-matmul"}
	x14Depths = []int{2, 3, 4}
)

// x14Policies are the two policies the gate compares. LRU is omitted:
// it shares DeclOrder's demote-to-bottom rule, so depth moves it the
// same way (the 3-tier eviction tests cover it).
func x14Policies() []core.EvictPolicy {
	return []core.EvictPolicy{core.DeclOrder, core.Lookahead}
}

// X14Row is one app × depth × policy run.
type X14Row struct {
	App    string
	Depth  int
	Policy string
	Time   float64
	// Counter block, from the metrics snapshot.
	Fetches   int64
	Refetches int64
	Evictions int64
	Forced    int64
	// Per-edge demotion split: bytes evicted from HBM to the adjacent
	// tier versus to anything deeper. DeclOrder rows put everything in
	// DemotedDeep (or DemotedNext on 2-tier chains, where the adjacent
	// tier is the bottom); Lookahead rows put everything in
	// DemotedNext.
	DemotedNext int64
	DemotedDeep int64
}

// X14Result is the finished sweep.
type X14Result struct {
	Scale Scale
	Rows  []X14Row
}

// Row returns the row for an app/depth/policy triple, or nil.
func (r *X14Result) Row(app string, depth int, policy string) *X14Row {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.App == app && row.Depth == depth && row.Policy == policy {
			return row
		}
	}
	return nil
}

// Gap returns time(decl) − time(lookahead) for an app at a depth — the
// absolute advantage the gate requires to widen with depth. The
// initial load from the bottom tier slows both policies equally, so it
// cancels here; what remains is the miss-cost difference the demotion
// rules create.
func (r *X14Result) Gap(app string, depth int) float64 {
	d := r.Row(app, depth, core.DeclOrder.Name())
	l := r.Row(app, depth, core.Lookahead.Name())
	if d == nil || l == nil {
		return 0
	}
	return d.Time - l.Time
}

// Pass checks the acceptance bar: on every chain deeper than two tiers
// Lookahead beats DeclOrder outright, and for each app the gap widens
// strictly as the chain deepens (including from the 2-tier baseline,
// where the policies may tie or trade places).
func (r *X14Result) Pass() error {
	for _, app := range x14Apps {
		prevGap := 0.0
		for i, depth := range x14Depths {
			d := r.Row(app, depth, core.DeclOrder.Name())
			l := r.Row(app, depth, core.Lookahead.Name())
			if d == nil || l == nil {
				return fmt.Errorf("exp: x14 %s depth %d: missing rows", app, depth)
			}
			if depth > 2 && l.Time >= d.Time {
				return fmt.Errorf("exp: x14 %s depth %d: lookahead (%.3f s) not faster than decl (%.3f s)",
					app, depth, l.Time, d.Time)
			}
			gap := d.Time - l.Time
			if i > 0 && gap <= prevGap {
				return fmt.Errorf("exp: x14 %s: gap did not widen from depth %d (%.3f s) to depth %d (%.3f s)",
					app, x14Depths[i-1], prevGap, depth, gap)
			}
			prevGap = gap
		}
	}
	return nil
}

// runX14 runs one app on a depth-tier chain under one policy.
func runX14(s Scale, app string, depth int, pol core.EvictPolicy) (X14Row, error) {
	row := X14Row{App: app, Depth: depth, Policy: pol.Name()}
	spec, err := s.TieredMachine(depth)
	if err != nil {
		return row, err
	}
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   spec,
		NumPEs: s.NumPEs(),
		Opts:   x10Options(s, pol),
		Params: charm.DefaultParams(),
	})
	registerAudit(env)
	defer env.Close()

	switch app {
	case "fig8-stencil":
		sizes := s.StencilReducedSizes()
		a, err := kernels.NewStencil(env.MG, s.StencilConfig(sizes[len(sizes)-1]))
		if err != nil {
			return row, err
		}
		t, err := a.Run()
		if err != nil {
			return row, fmt.Errorf("exp: x14 stencil depth %d %s: %w", depth, pol.Name(), err)
		}
		row.Time = float64(t)
	case "fig9-matmul":
		sizes := s.MatMulTotalSizes()
		a, err := kernels.NewMatMul(env.MG, s.MatMulConfig(sizes[len(sizes)-1]))
		if err != nil {
			return row, err
		}
		t, err := a.Run()
		if err != nil {
			return row, fmt.Errorf("exp: x14 matmul depth %d %s: %w", depth, pol.Name(), err)
		}
		row.Time = float64(t)
	default:
		return row, fmt.Errorf("exp: x14 unknown app %q", app)
	}

	snap, ok := env.MG.MetricsSnapshot()
	if !ok {
		return row, fmt.Errorf("exp: x14 %s depth %d %s ran without metrics", app, depth, pol.Name())
	}
	row.Fetches = snap.Fetches
	row.Refetches = snap.Refetches
	row.Evictions = snap.Evictions
	row.Forced = snap.ForcedEvictions

	chain := env.Mach.Chain()
	near, next := chain[0].Name, chain[1].Name
	keys := make([]string, 0, len(snap.TierEdges))
	for key := range snap.TierEdges {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		src, dst, ok := strings.Cut(key, "->")
		if !ok || src != near {
			continue
		}
		if dst == next {
			row.DemotedNext += snap.TierEdges[key]
		} else {
			row.DemotedDeep += snap.TierEdges[key]
		}
	}
	return row, nil
}

// RunX14 runs the full depth sweep at the given scale.
func RunX14(s Scale) (*X14Result, error) {
	res := &X14Result{Scale: s}
	for _, app := range x14Apps {
		for _, depth := range x14Depths {
			for _, pol := range x14Policies() {
				row, err := runX14(s, app, depth, pol)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// Table renders the sweep with the per-depth gaps in the notes.
func (r *X14Result) Table() Table {
	t := Table{
		Title: "X14: victim policy vs memory chain depth (2 = paper's machine, 3 = +NVM, 4 = +remote pool)",
		Header: []string{"app", "tiers", "policy", "time (s)", "fetches", "refetches",
			"evictions", "forced", "demoted next", "demoted deep"},
		Notes: []string{
			"decl drops victims to the bottom tier; lookahead demotes one level",
			"demoted next/deep = bytes evicted from HBM to the adjacent tier vs anything deeper",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.App,
			fmt.Sprintf("%d", row.Depth),
			row.Policy,
			f3(row.Time),
			fmt.Sprintf("%d", row.Fetches),
			fmt.Sprintf("%d", row.Refetches),
			fmt.Sprintf("%d", row.Evictions),
			fmt.Sprintf("%d", row.Forced),
			gbs(row.DemotedNext),
			gbs(row.DemotedDeep),
		})
	}
	for _, app := range x14Apps {
		var gaps []string
		for _, depth := range x14Depths {
			gaps = append(gaps, fmt.Sprintf("%d-tier %.3f s", depth, r.Gap(app, depth)))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s lookahead advantage: %s", app, strings.Join(gaps, ", ")))
	}
	return t
}

// X14BenchRow is the JSON snapshot of one run for BENCH_tiers.json.
type X14BenchRow struct {
	App         string  `json:"app"`
	Depth       int     `json:"tiers"`
	Policy      string  `json:"policy"`
	Time        float64 `json:"time_s"`
	Fetches     int64   `json:"fetches"`
	Refetches   int64   `json:"refetches"`
	Evictions   int64   `json:"evictions"`
	Forced      int64   `json:"forced_evictions"`
	DemotedNext int64   `json:"demoted_next_bytes"`
	DemotedDeep int64   `json:"demoted_deep_bytes"`
}

// X14Bench is the benchmark snapshot emitted by hmrepro -bench-tiers.
type X14Bench struct {
	Scale string        `json:"scale"`
	Rows  []X14BenchRow `json:"rows"`
}

// Bench converts the result for JSON emission, rows sorted so the file
// is byte-identical across runs.
func (r *X14Result) Bench() X14Bench {
	b := X14Bench{Scale: r.Scale.String()}
	for _, row := range r.Rows {
		b.Rows = append(b.Rows, X14BenchRow{
			App:         row.App,
			Depth:       row.Depth,
			Policy:      row.Policy,
			Time:        row.Time,
			Fetches:     row.Fetches,
			Refetches:   row.Refetches,
			Evictions:   row.Evictions,
			Forced:      row.Forced,
			DemotedNext: row.DemotedNext,
			DemotedDeep: row.DemotedDeep,
		})
	}
	sort.SliceStable(b.Rows, func(i, j int) bool {
		if b.Rows[i].App != b.Rows[j].App {
			return b.Rows[i].App < b.Rows[j].App
		}
		if b.Rows[i].Depth != b.Rows[j].Depth {
			return b.Rows[i].Depth < b.Rows[j].Depth
		}
		return b.Rows[i].Policy < b.Rows[j].Policy
	})
	return b
}
