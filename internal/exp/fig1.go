package exp

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/stream"
	"github.com/hetmem/hetmem/internal/topology"
)

// Fig1Result is the STREAM bandwidth comparison (Fig. 1): the four
// STREAM kernels on DDR4 and MCDRAM with 64 threads.
type Fig1Result struct {
	Scale Scale
	DDR   []stream.Result
	HBM   []stream.Result
}

// RunFig1 measures STREAM on both memory nodes.
func RunFig1(s Scale) (*Fig1Result, error) {
	spec := s.Machine()
	threads := s.NumPEs()
	arr := int64(256 << 20)
	if s == Small {
		arr = 64 << 20
	}
	ddr, err := stream.Measure(spec, topology.DDRNodeID, threads, arr)
	if err != nil {
		return nil, err
	}
	hbm, err := stream.Measure(spec, topology.HBMNodeID, threads, arr)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Scale: s, DDR: ddr, HBM: hbm}, nil
}

// Ratio returns the MCDRAM/DDR4 bandwidth ratio for kernel i.
func (r *Fig1Result) Ratio(i int) float64 {
	return r.HBM[i].Bandwidth / r.DDR[i].Bandwidth
}

// Table renders the figure.
func (r *Fig1Result) Table() Table {
	t := Table{
		Title:  "Fig 1: STREAM bandwidth, DDR4 vs MCDRAM",
		Header: []string{"kernel", "DDR4 GB/s", "MCDRAM GB/s", "ratio"},
		Notes: []string{
			"paper: MCDRAM has over 4x higher bandwidth than DDR4",
			fmt.Sprintf("%d threads, %s scale", r.DDR[0].Threads, r.Scale),
		},
	}
	for i := range r.DDR {
		t.Rows = append(t.Rows, []string{
			r.DDR[i].Kernel,
			f2(r.DDR[i].Bandwidth / topology.GBf),
			f2(r.HBM[i].Bandwidth / topology.GBf),
			f2(r.Ratio(i)),
		})
	}
	return t
}
