package exp

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/sim"
)

// Fig8Row is one x-position of the Stencil3D speedup figure: a reduced
// working set size with the naive time and per-strategy speedups.
type Fig8Row struct {
	ReducedBytes int64
	NaiveTime    sim.Time
	Times        map[core.Mode]sim.Time
	Speedups     map[core.Mode]float64
	Fetches      map[core.Mode]int64
}

// Fig8Result is the Stencil3D strategy comparison (Fig. 8): 32 GB
// total working set, reduced working set varied, speedup normalised to
// the Naive baseline.
type Fig8Result struct {
	Scale Scale
	Total int64
	Rows  []Fig8Row
}

// RunFig8 sweeps the reduced working set sizes over all strategies.
func RunFig8(s Scale) (*Fig8Result, error) {
	res := &Fig8Result{Scale: s}
	for _, red := range s.StencilReducedSizes() {
		row := Fig8Row{
			ReducedBytes: red,
			Times:        make(map[core.Mode]sim.Time),
			Speedups:     make(map[core.Mode]float64),
			Fetches:      make(map[core.Mode]int64),
		}
		modes := append([]core.Mode{core.Baseline}, StrategyModes()...)
		for _, mode := range modes {
			cfg := s.StencilConfig(red)
			res.Total = cfg.TotalBytes
			env := s.newEnv(s.options(mode), false)
			app, err := kernels.NewStencil(env.MG, cfg)
			if err != nil {
				env.Close()
				return nil, err
			}
			total, err := app.Run()
			env.Close()
			if err != nil {
				return nil, fmt.Errorf("exp: fig8 %v at %s: %w", mode, gbs(red), err)
			}
			row.Times[mode] = total
			row.Fetches[mode] = env.MG.Stats.Fetches
		}
		row.NaiveTime = row.Times[core.Baseline]
		for mode, tm := range row.Times {
			row.Speedups[mode] = float64(row.NaiveTime) / float64(tm)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig8Result) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Fig 8: Stencil3D speedup vs Naive (total WS %s)", gbs(r.Total)),
		Header: []string{"reduced WS", "naive (s)",
			"Single IO", "No IO", "Multiple IO"},
		Notes: []string{
			"paper: Single IO thread is significantly slow (speedup < 1);",
			"Multiple IO threads best (~2x); No IO thread in between",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			gbs(row.ReducedBytes),
			f2(row.NaiveTime),
			f2(row.Speedups[core.SingleIO]),
			f2(row.Speedups[core.NoIO]),
			f2(row.Speedups[core.MultiIO]),
		})
	}
	return t
}
