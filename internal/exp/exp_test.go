package exp

import (
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/core"
)

func TestScaleMachines(t *testing.T) {
	full := Full.Machine()
	small := Small.Machine()
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if Full.NumPEs() != 64 || Small.NumPEs() != 8 {
		t.Fatal("PE counts")
	}
	// The small machine preserves the bandwidth ratios.
	fr := full.HBMReadBW / full.DDRReadBW
	sr := small.HBMReadBW / small.DDRReadBW
	if fr != sr {
		t.Fatalf("bandwidth ratio drifted: %v vs %v", fr, sr)
	}
	if Full.String() != "full" || Small.String() != "small" {
		t.Fatal("scale names")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxxx", "1"}, {"y", "2"}},
		Notes:  []string{"a note"},
	}
	out := tab.String()
	for _, want := range []string{"## demo", "long-header", "xxxxxx", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	r, err := RunFig1(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DDR) != 4 || len(r.HBM) != 4 {
		t.Fatalf("kernel counts %d/%d", len(r.DDR), len(r.HBM))
	}
	for i := range r.DDR {
		if ratio := r.Ratio(i); ratio < 4 {
			t.Errorf("%s MCDRAM/DDR ratio %.2f < 4", r.DDR[i].Kernel, ratio)
		}
	}
	if !strings.Contains(r.Table().String(), "STREAM") {
		t.Error("table title")
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := RunFig2(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.IterRatio() < 2 {
		t.Errorf("DDR/HBM iteration ratio %.2f, want >= 2 (paper ~3x)", r.IterRatio())
	}
	if r.KernelRatio() < 2 {
		t.Errorf("DDR/HBM kernel ratio %.2f, want >= 2", r.KernelRatio())
	}
	if !strings.Contains(r.Table().String(), "Stencil3D") {
		t.Error("table title")
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := RunFig7(Small)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Asymmetric() {
		t.Error("HBM->DDR should cost at least as much as DDR->HBM")
	}
	// Cost grows with volume.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].DDRToHBM <= r.Points[i-1].DDRToHBM {
			t.Errorf("DDR->HBM cost not increasing at point %d", i)
		}
	}
	if len(r.Table().Rows) != len(r.Points) {
		t.Error("table rows")
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := RunFig8(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		multi := row.Speedups[core.MultiIO]
		single := row.Speedups[core.SingleIO]
		no := row.Speedups[core.NoIO]
		if multi <= 1.2 {
			t.Errorf("reduced %s: MultiIO speedup %.2f, want > 1.2", gbs(row.ReducedBytes), multi)
		}
		if single >= no || single >= multi {
			t.Errorf("reduced %s: SingleIO (%.2f) should be the slowest strategy (no=%.2f multi=%.2f)",
				gbs(row.ReducedBytes), single, no, multi)
		}
	}
	// SingleIO's absolute slowdown (< 1) only reproduces at the full
	// 64-PE scale where one IO thread serves 8x more workers; the
	// small slice preserves the ordering but not that signature (see
	// TestFig8FullScale).
}

func TestFig8FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure run")
	}
	r, err := RunFig8(Full)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// The paper's headline signatures at 64 PEs: SingleIO is a
		// slowdown, MultiIO gives ~2x or better.
		if s := row.Speedups[core.SingleIO]; s >= 1.0 {
			t.Errorf("reduced %s: SingleIO speedup %.2f, want < 1", gbs(row.ReducedBytes), s)
		}
		if m := row.Speedups[core.MultiIO]; m < 2.0 {
			t.Errorf("reduced %s: MultiIO speedup %.2f, want >= 2", gbs(row.ReducedBytes), m)
		}
	}
}

func TestFig9FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure run")
	}
	r, err := RunFig9(Full)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	if m := last.Speedups[core.MultiIO]; m < 1.5 {
		t.Errorf("54GB MultiIO speedup %.2f, want >= 1.5", m)
	}
	// Fig 9's contrast with Fig 8: thanks to read-only reuse,
	// SingleIO is no longer a dramatic slowdown and sits within ~2x
	// of MultiIO at the largest size.
	if ratio := last.Speedups[core.MultiIO] / last.Speedups[core.SingleIO]; ratio > 2 {
		t.Errorf("54GB MultiIO/SingleIO gap %.2f, want <= 2", ratio)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := RunFig9(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if ddr := row.Speedups[core.DDROnly]; ddr >= 1 {
			t.Errorf("total %s: DDR4only speedup %.2f, want < 1", gbs(row.TotalBytes), ddr)
		}
	}
	// Speedups grow with the total working set (naive degrades).
	first := r.Rows[0].Speedups[core.MultiIO]
	last := r.Rows[len(r.Rows)-1].Speedups[core.MultiIO]
	if last <= first {
		t.Errorf("MultiIO speedup should grow with total WS: %.2f -> %.2f", first, last)
	}
	if last <= 1.2 {
		t.Errorf("MultiIO at largest WS only %.2f, want > 1.2", last)
	}
}

func TestFig56Shape(t *testing.T) {
	r, err := RunFig56(Small)
	if err != nil {
		t.Fatal(err)
	}
	single := r.Runs[core.SingleIO]
	multi := r.Runs[core.MultiIO]
	noio := r.Runs[core.NoIO]
	// Fig 5: single IO has much more overhead (red) than multi IO.
	if single.OverheadShare <= multi.OverheadShare {
		t.Errorf("SingleIO overhead %.3f should exceed MultiIO %.3f",
			single.OverheadShare, multi.OverheadShare)
	}
	if single.IdleShare <= multi.IdleShare {
		t.Errorf("SingleIO idle %.3f should exceed MultiIO %.3f", single.IdleShare, multi.IdleShare)
	}
	// Fig 6: synchronous strategy shows per-task pre-processing time
	// on worker lanes; asynchronous strategy masks it.
	if noio.WorkerFetchPerTask <= 10*multi.WorkerFetchPerTask {
		t.Errorf("NoIO per-task sync fetch %.2gms should dwarf MultiIO's %.2gms",
			1e3*noio.WorkerFetchPerTask, 1e3*multi.WorkerFetchPerTask)
	}
	if noio.WorkerFetchPerTask <= 0 {
		t.Error("NoIO shows no sync fetch time")
	}
	if !strings.Contains(r.Table().String(), "Projections") {
		t.Error("table title")
	}
	if r.Runs[core.SingleIO].Timeline == "" {
		t.Error("missing timeline")
	}
}

func TestCacheModeShape(t *testing.T) {
	r, err := RunCacheMode(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Cache mode degrades monotonically as the working set grows.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].HitRate >= r.Rows[i-1].HitRate {
			t.Errorf("hit rate not decreasing at row %d", i)
		}
	}
	// When the working set is far over capacity, the runtime-managed
	// flat mode beats hardware caching.
	lastRow := r.Rows[len(r.Rows)-1]
	if lastRow.FlatIterTime >= lastRow.CacheIterTime {
		t.Errorf("flat+MultiIO (%.3f) should beat cache mode (%.3f) at %s",
			lastRow.FlatIterTime, lastRow.CacheIterTime, gbs(lastRow.TotalBytes))
	}
}

func TestAblationQueues(t *testing.T) {
	r, err := RunAblationQueues(Small)
	if err != nil {
		t.Fatal(err)
	}
	// The shared queue must not beat per-PE queues, and it shows more
	// load imbalance.
	if r.SharedTime < r.PerPETime*0.99 {
		t.Errorf("shared queue (%.2f) unexpectedly beats per-PE queues (%.2f)",
			r.SharedTime, r.PerPETime)
	}
	if !strings.Contains(r.Table().String(), "wait-queue") {
		t.Error("table title")
	}
}

func TestAblationIOThreads(t *testing.T) {
	r, err := RunAblationIOThreads(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// More IO threads should help the bandwidth-starved single-thread
	// configuration.
	first := r.Rows[0].Time
	last := r.Rows[len(r.Rows)-1].Time
	if last >= first {
		t.Errorf("IO thread scaling: 1 thread %.2fs, %d threads %.2fs — no improvement",
			first, r.Rows[len(r.Rows)-1].Threads, last)
	}
}

func TestAblationEviction(t *testing.T) {
	r, err := RunAblationEviction(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.LazyFet > row.EagerFet {
			t.Errorf("%s: lazy eviction fetched more (%d) than eager (%d)",
				row.App, row.LazyFet, row.EagerFet)
		}
	}
}

func TestNVMExtension(t *testing.T) {
	r, err := RunNVM(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows[1:] { // skip Naive (speedup 1 by definition)
		if row.Speedups.NVM <= row.Speedups.DDR {
			t.Errorf("%v: NVM-far speedup %.2f should exceed DDR-far %.2f (paper: 'would benefit even more')",
				row.Mode, row.Speedups.NVM, row.Speedups.DDR)
		}
		if row.Speedups.DDR <= 1 {
			t.Errorf("%v: DDR speedup %.2f, want > 1", row.Mode, row.Speedups.DDR)
		}
	}
	if !strings.Contains(r.Table().String(), "NVM") {
		t.Error("table title")
	}
}

func TestAblationPrefetchDepth(t *testing.T) {
	r, err := RunAblationPrefetchDepth(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// Depth 1 (staging serialised behind each task) must be the
	// slowest; unlimited the fastest or tied.
	depth1 := r.Rows[0].Time
	unlimited := r.Rows[len(r.Rows)-1].Time
	if unlimited >= depth1 {
		t.Errorf("unlimited depth (%.2f) should beat depth 1 (%.2f)", unlimited, depth1)
	}
}

func TestLoadBalanceExtension(t *testing.T) {
	r, err := RunLoadBalance(Small)
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations == 0 {
		t.Fatal("load balancer moved nothing despite skewed load")
	}
	if r.BalancedTime >= r.UnbalancedTime {
		t.Errorf("balanced run (%.2f) not faster than unbalanced (%.2f)",
			r.BalancedTime, r.UnbalancedTime)
	}
	// After the rebalance, iterations get faster; without it they
	// stay skewed.
	lastB := r.BalancedIters[len(r.BalancedIters)-1]
	lastU := r.UnbalancedIters[len(r.UnbalancedIters)-1]
	if lastB >= lastU {
		t.Errorf("post-LB iteration (%.2f) not faster than unbalanced (%.2f)", lastB, lastU)
	}
}

func TestClusterExtension(t *testing.T) {
	r, err := RunCluster(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Speedup <= 1 {
			t.Errorf("%d nodes: MultiIO speedup %.2f, want > 1", row.Nodes, row.Speedup)
		}
		if row.WeakSlowdn > 1.3 {
			t.Errorf("%d nodes: weak-scaling overhead %.2f, want <= 1.3", row.Nodes, row.WeakSlowdn)
		}
	}
	if r.Rows[0].HaloBytes != 0 {
		t.Error("single node should have no fabric traffic")
	}
	if r.Rows[3].HaloBytes <= r.Rows[1].HaloBytes {
		t.Error("halo traffic should grow with node count")
	}
	if !strings.Contains(r.Table().String(), "weak scaling") {
		t.Error("table title")
	}
}
