package exp

import "testing"

// TestX15SmallGates runs the closed-loop tuning experiment at Small
// scale and checks its acceptance gates: warm-started adaptation beats
// the cold climb to settle on every X9 point, and the offline search
// over the shift capture recommends the lookahead victim policy.
func TestX15SmallGates(t *testing.T) {
	r, err := RunX15(Small)
	if err != nil {
		t.Fatalf("RunX15: %v", err)
	}
	if got := len(r.Points); got != len(Small.StencilReducedSizes())+len(Small.MatMulTotalSizes()) {
		t.Fatalf("X15 covered %d points, want every X9 point", got)
	}
	if err := r.Pass(); err != nil {
		t.Fatalf("X15 gate: %v\n%s", err, r.Table())
	}
	t.Logf("\n%s", r.Table())
}

// TestX15Deterministic: two runs produce identical tables (all numbers
// are virtual-time; nothing may leak wall clock or map order).
func TestX15Deterministic(t *testing.T) {
	a, err := RunX15(Small)
	if err != nil {
		t.Fatalf("RunX15: %v", err)
	}
	b, err := RunX15(Small)
	if err != nil {
		t.Fatalf("RunX15: %v", err)
	}
	if at, bt := a.Table().String(), b.Table().String(); at != bt {
		t.Fatalf("X15 runs diverged:\n--- run 1\n%s\n--- run 2\n%s", at, bt)
	}
	if a.Tune.CaptureDigest != b.Tune.CaptureDigest {
		t.Fatalf("shift capture digest diverged: %s vs %s", a.Tune.CaptureDigest, b.Tune.CaptureDigest)
	}
}
