package exp

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/sim"
)

// Fig9Row is one x-position of the MatMul speedup figure.
type Fig9Row struct {
	TotalBytes int64
	NaiveTime  sim.Time
	Times      map[core.Mode]sim.Time
	Speedups   map[core.Mode]float64
	Fetches    map[core.Mode]int64
}

// Fig9Result is the MatMul strategy comparison (Fig. 9): total working
// set varied 24-54 GB with the reduced working set held constant by
// the decomposition; DDR4-only bar plus the three strategies, speedup
// normalised to Naive.
type Fig9Result struct {
	Scale Scale
	Rows  []Fig9Row
}

// RunFig9 sweeps the total working set sizes over all modes.
func RunFig9(s Scale) (*Fig9Result, error) {
	res := &Fig9Result{Scale: s}
	for _, total := range s.MatMulTotalSizes() {
		row := Fig9Row{
			TotalBytes: total,
			Times:      make(map[core.Mode]sim.Time),
			Speedups:   make(map[core.Mode]float64),
			Fetches:    make(map[core.Mode]int64),
		}
		modes := append([]core.Mode{core.DDROnly, core.Baseline}, StrategyModes()...)
		for _, mode := range modes {
			cfg := s.MatMulConfig(total)
			env := s.newEnv(s.options(mode), false)
			app, err := kernels.NewMatMul(env.MG, cfg)
			if err != nil {
				env.Close()
				return nil, err
			}
			t, err := app.Run()
			env.Close()
			if err != nil {
				return nil, fmt.Errorf("exp: fig9 %v at %s: %w", mode, gbs(total), err)
			}
			row.Times[mode] = t
			row.Fetches[mode] = env.MG.Stats.Fetches
		}
		row.NaiveTime = row.Times[core.Baseline]
		for mode, tm := range row.Times {
			row.Speedups[mode] = float64(row.NaiveTime) / float64(tm)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig9Result) Table() Table {
	t := Table{
		Title: "Fig 9: MatMul speedup vs Naive (reduced WS held constant)",
		Header: []string{"total WS", "naive (s)", "DDR4only",
			"Single IO", "No IO", "Multiple IO"},
		Notes: []string{
			"paper: all three strategies comparable (read-only block reuse);",
			"Naive degrades as total WS grows, so speedups rise with size",
		},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			gbs(row.TotalBytes),
			f2(row.NaiveTime),
			f2(row.Speedups[core.DDROnly]),
			f2(row.Speedups[core.SingleIO]),
			f2(row.Speedups[core.NoIO]),
			f2(row.Speedups[core.MultiIO]),
		})
	}
	return t
}
