package serve

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/audit"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/trace"
)

// State is a session's lifecycle stage.
type State int

const (
	// Queued sessions passed validation but wait for budget.
	Queued State = iota
	// Running sessions own a budget grant and advance each window.
	Running
	// Done sessions completed their workload.
	Done
	// Failed sessions deadlocked or tripped an audit invariant.
	Failed
	// Canceled sessions were killed by the client or by drain.
	Canceled
)

// String names the state for JSON and tables.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Finished reports whether the state is terminal.
func (s State) Finished() bool { return s == Done || s == Failed || s == Canceled }

// WorkloadSpec is one submission: a named kernel plus the knobs the
// single-workload drivers expose as flags. Zero value fields take
// machine-scaled defaults (see normalize).
type WorkloadSpec struct {
	// Tenant names the submitting tenant (required).
	Tenant string `json:"tenant"`
	// Kernel picks the workload: "stencil", "matmul" or "shift"
	// (plus any kernel registered via RegisterKernel).
	Kernel string `json:"kernel"`

	// Bytes is the total working set. Default: 2x the session
	// footprint (an out-of-core run).
	Bytes int64 `json:"bytes,omitempty"`
	// Reduced is the active working set (stencil reduced set, shift
	// hot set). Default: half the footprint.
	Reduced int64 `json:"reduced,omitempty"`
	// Iterations is the outer iteration count. Default 2 (shift: one
	// pre- and one post-shift iteration).
	Iterations int `json:"iterations,omitempty"`
	// Sweeps is the temporal-tiling depth. Default 20.
	Sweeps int `json:"sweeps,omitempty"`

	// Footprint is the HBM grant the session asks for. Default:
	// Reduced plus half, i.e. the active set with staging headroom.
	Footprint int64 `json:"footprint,omitempty"`

	// Strategy is the data-movement mode: "single", "noio" or
	// "multi" (default "multi").
	Strategy string `json:"strategy,omitempty"`
	// IOThreads sets the IO thread count (single strategy only).
	IOThreads int `json:"io_threads,omitempty"`
	// PrefetchDepth bounds in-flight prefetches (multi strategy).
	PrefetchDepth int `json:"prefetch_depth,omitempty"`
	// EvictPolicy picks the eviction victim policy: "decl", "lru" or
	// "lookahead".
	EvictPolicy string `json:"evict_policy,omitempty"`
	// EvictLazily defers eviction until capacity pressure.
	EvictLazily bool `json:"evict_lazily,omitempty"`
	// Adapt attaches the online adaptive controller.
	Adapt bool `json:"adapt,omitempty"`
	// Trace records a per-session JSONL capture, downloadable from
	// the trace endpoint.
	Trace bool `json:"trace,omitempty"`
	// Seed overrides the session engine seed (default BaseSeed+id).
	Seed int64 `json:"seed,omitempty"`
}

// App is a seedable workload running on a session's private engine.
// Start seeds the first wave of work without driving the engine; the
// scheduler then advances the engine window by window until Done.
type App interface {
	Start()
	Done() bool
	// FinishedAt returns the engine-local completion time; valid
	// once Done reports true.
	FinishedAt() sim.Time
}

// AppBuilder instantiates a kernel on a freshly built session
// environment. The spec is fully normalized (all defaults resolved).
type AppBuilder func(env *kernels.Env, spec WorkloadSpec) (App, error)

// stencilApp adapts kernels.StencilApp to App.
type stencilApp struct{ *kernels.StencilApp }

func (a stencilApp) FinishedAt() sim.Time { return a.IterEnd[len(a.IterEnd)-1] }

// shiftApp adapts kernels.ShiftApp to App.
type shiftApp struct{ *kernels.ShiftApp }

func (a shiftApp) FinishedAt() sim.Time { return a.IterEnd[len(a.IterEnd)-1] }

// matmulApp adapts kernels.MatMulApp to App.
type matmulApp struct{ *kernels.MatMulApp }

func (a matmulApp) FinishedAt() sim.Time { return a.End }

// iterApp is implemented by kernels with an iteration-boundary hook;
// Adapt submissions wire the controller's Barrier there so strategy
// switches happen at the quiescent points, exactly like X9/X10.
type iterApp interface{ SetOnIteration(func(int, func())) }

func (a stencilApp) SetOnIteration(f func(int, func())) { a.OnIteration = f }
func (a shiftApp) SetOnIteration(f func(int, func()))   { a.OnIteration = f }

// buildStencil is the "stencil" kernel builder.
func buildStencil(env *kernels.Env, spec WorkloadSpec) (App, error) {
	cfg := kernels.DefaultStencilConfig()
	cfg.NumPEs = env.RT.NumPEs()
	cfg.TotalBytes = spec.Bytes
	cfg.ReducedBytes = spec.Reduced
	cfg.Iterations = spec.Iterations
	cfg.Sweeps = spec.Sweeps
	app, err := kernels.NewStencil(env.MG, cfg)
	if err != nil {
		return nil, err
	}
	return stencilApp{app}, nil
}

// buildShift is the "shift" kernel builder: the hot set is Reduced,
// the shift widens it to Bytes.
func buildShift(env *kernels.Env, spec WorkloadSpec) (App, error) {
	pes := env.RT.NumPEs()
	chares := 4 * pes
	pre := spec.Iterations / 2
	if pre < 1 {
		pre = 1
	}
	post := spec.Iterations - pre
	if post < 1 {
		post = 1
	}
	cfg := kernels.ShiftConfig{
		HotBytes:     roundUp(spec.Reduced, int64(chares)),
		ColdBytes:    roundUp(spec.Bytes-spec.Reduced, int64(chares)),
		NumChares:    chares,
		PreIters:     pre,
		PostIters:    post,
		Sweeps:       spec.Sweeps,
		NumPEs:       pes,
		FlopsPerByte: 1.0,
	}
	app, err := kernels.NewShift(env.MG, cfg)
	if err != nil {
		return nil, err
	}
	return shiftApp{app}, nil
}

// buildMatMul is the "matmul" kernel builder.
func buildMatMul(env *kernels.Env, spec WorkloadSpec) (App, error) {
	cfg := kernels.DefaultMatMulConfig()
	cfg.NumPEs = env.RT.NumPEs()
	cfg.TotalBytes = spec.Bytes
	cfg.Grid = kernels.GridFor(spec.Bytes, spec.Footprint, cfg.NumPEs)
	app, err := kernels.NewMatMul(env.MG, cfg)
	if err != nil {
		return nil, err
	}
	return matmulApp{app}, nil
}

// builtinKernels returns the default kernel registry.
func builtinKernels() map[string]AppBuilder {
	return map[string]AppBuilder{
		"stencil": buildStencil,
		"shift":   buildShift,
		"matmul":  buildMatMul,
	}
}

// roundUp rounds n up to a positive multiple of q.
func roundUp(n, q int64) int64 {
	if n < q {
		return q
	}
	if r := n % q; r != 0 {
		n += q - r
	}
	return n
}

// Session is one submission's job record. Fields are owned by the
// scheduler; the HTTP layer reads them under the server mutex.
type Session struct {
	id     int
	ID     string
	Tenant string
	Spec   WorkloadSpec

	State State
	// Err describes why the session Failed (or was Canceled).
	Err string

	// Arrival, Started and Finished are global virtual times;
	// Makespan() is Finished-Arrival and includes queue wait.
	Arrival  sim.Time
	Started  sim.Time
	Finished sim.Time

	// Footprint is the HBM grant (bytes).
	Footprint int64

	opts core.Options
	ten  *tenant

	// base is the global virtual time at which the session's private
	// engine (whose clock starts at 0) was started.
	base sim.Time
	env  *kernels.Env
	app  App
	ctl  *adapt.Controller
	rec  *trace.Recorder

	// released guards exactly-once budget release.
	released bool

	// metrics is the manager's final counter snapshot, captured at
	// the terminal transition (the engine is closed afterwards).
	metrics   audit.Snapshot
	hasMetric bool
}

// Makespan returns arrival-to-finish in virtual seconds (0 while
// unfinished).
func (s *Session) Makespan() sim.Time {
	if !s.State.Finished() {
		return 0
	}
	return s.Finished - s.Arrival
}

// MetricsSnapshot returns the session's audit/metrics counters: the
// live manager's while running, the preserved final snapshot once
// finished.
func (s *Session) MetricsSnapshot() (audit.Snapshot, bool) {
	if s.hasMetric {
		return s.metrics, true
	}
	if s.env == nil {
		return audit.Snapshot{}, false
	}
	return s.env.MG.MetricsSnapshot()
}

// TraceCapture returns the session's recorded capture, or nil if the
// session was not submitted with Trace.
func (s *Session) TraceCapture() *trace.Capture {
	if s.rec == nil {
		return nil
	}
	return s.rec.Capture()
}
