package serve

import (
	"fmt"
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/topology"
)

// testSpec is the 1/8 KNL slice the exp package uses for unit tests.
func testSpec() topology.MachineSpec {
	spec := topology.KNL7250()
	spec.Cores = 8
	spec.TilesL2 = 4
	spec.HBMCap = 2 * topology.GB
	spec.DDRCap = 12 * topology.GB
	spec.HBMReadBW /= 8
	spec.HBMWriteBW /= 8
	spec.HBMTotalBW /= 8
	spec.DDRReadBW /= 8
	spec.DDRWriteBW /= 8
	spec.DDRTotalBW /= 8
	spec.MemcpyBW /= 8
	return spec
}

const (
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func testConfig() Config {
	return Config{
		Spec:   testSpec(),
		NumPEs: 8,
		Fair:   true,
		Audit:  true,
	}
}

// smallStencil is a fast out-of-core stencil submission.
func smallStencil(tenant string) WorkloadSpec {
	return WorkloadSpec{
		Tenant:     tenant,
		Kernel:     "stencil",
		Bytes:      512 * mb,
		Reduced:    128 * mb,
		Footprint:  192 * mb,
		Iterations: 2,
		Sweeps:     4,
	}
}

func mustScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	return s
}

func mustSubmit(t *testing.T, s *Scheduler, spec WorkloadSpec) *Session {
	t.Helper()
	sess, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return sess
}

func TestSessionLifecycleAllKernels(t *testing.T) {
	for _, kernel := range []string{"stencil", "shift", "matmul"} {
		t.Run(kernel, func(t *testing.T) {
			s := mustScheduler(t, testConfig())
			spec := smallStencil("acme")
			spec.Kernel = kernel
			sess := mustSubmit(t, s, spec)
			if sess.State != Running {
				t.Fatalf("state after submit with free budget = %v, want running", sess.State)
			}
			if err := s.RunUntilIdle(0); err != nil {
				t.Fatal(err)
			}
			if sess.State != Done {
				t.Fatalf("state = %v (err %q), want done", sess.State, sess.Err)
			}
			if sess.Makespan() <= 0 {
				t.Fatalf("makespan = %v, want > 0", sess.Makespan())
			}
			if sess.Finished <= sess.Started {
				t.Fatalf("finished %v <= started %v", sess.Finished, sess.Started)
			}
			if _, granted := s.Budget(); granted != 0 {
				t.Fatalf("granted after completion = %d, want 0", granted)
			}
			snap, ok := sess.MetricsSnapshot()
			if !ok {
				t.Fatal("no metrics snapshot after completion")
			}
			if snap.ViolationCount != 0 {
				t.Fatalf("audit violations: %d", snap.ViolationCount)
			}
		})
	}
}

func TestAdmissionQueuesOnTenantBudget(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{{Name: "acme", Budget: 256 * mb}}
	s := mustScheduler(t, cfg)
	first := mustSubmit(t, s, smallStencil("acme"))
	second := mustSubmit(t, s, smallStencil("acme"))
	if first.State != Running || second.State != Queued {
		t.Fatalf("states = %v/%v, want running/queued", first.State, second.State)
	}
	// Another tenant is not blocked by acme's exhausted budget.
	other := mustSubmit(t, s, smallStencil("beta"))
	if other.State != Running {
		t.Fatalf("other tenant state = %v, want running (tenant budgets must isolate)", other.State)
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	for _, sess := range []*Session{first, second, other} {
		if sess.State != Done {
			t.Fatalf("%s state = %v (err %q), want done", sess.ID, sess.State, sess.Err)
		}
	}
	// The queued session could only start after the first released
	// the tenant budget.
	if second.Started < first.Finished {
		t.Fatalf("second started %v before first finished %v despite exhausted tenant budget",
			second.Started, first.Finished)
	}
}

func TestGlobalBudgetIsFIFO(t *testing.T) {
	cfg := testConfig()
	// Tenant budgets large enough that only the machine blocks.
	cfg.Tenants = []TenantConfig{
		{Name: "a", Budget: 2 * gb}, {Name: "b", Budget: 2 * gb},
	}
	s := mustScheduler(t, cfg)
	big := smallStencil("a")
	big.Footprint = 1536 * mb
	big.Reduced = 1024 * mb
	big.Bytes = 2 * gb
	first := mustSubmit(t, s, big)
	blockedBig := mustSubmit(t, s, big) // machine-blocked: 2x1536MB > 2GB
	small := mustSubmit(t, s, smallStencil("b"))
	if first.State != Running {
		t.Fatalf("first = %v, want running", first.State)
	}
	if blockedBig.State != Queued || small.State != Queued {
		t.Fatalf("queue states = %v/%v, want queued/queued (no overtaking past a machine-blocked head)",
			blockedBig.State, small.State)
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if blockedBig.Started > small.Started {
		t.Fatalf("FIFO violated: blocked head started %v after the session behind it %v",
			blockedBig.Started, small.Started)
	}
}

func TestRejections(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{{Name: "acme", Budget: 256 * mb}}
	cfg.MaxQueue = 1
	s := mustScheduler(t, cfg)

	over := smallStencil("acme")
	over.Footprint = 512 * mb
	if _, err := s.Submit(over); err == nil || !strings.Contains(err.Error(), "exceeds budget") {
		t.Fatalf("over-budget submit err = %v, want ErrOverBudget", err)
	}
	if _, err := s.Submit(WorkloadSpec{Tenant: "acme", Kernel: "nope"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := s.Submit(WorkloadSpec{Kernel: "stencil"}); err == nil {
		t.Fatal("missing tenant accepted")
	}
	bad := smallStencil("acme")
	bad.Strategy = "multi"
	bad.IOThreads = 4 // only legal for single
	if _, err := s.Submit(bad); err == nil {
		t.Fatal("invalid knob combination accepted")
	}
	tiny := smallStencil("acme")
	tiny.Footprint = 1 * mb // cannot hold one chare's blocks
	if _, err := s.Submit(tiny); err == nil {
		t.Fatal("footprint below one task's dependences accepted")
	}

	// Queue-full: fill the one slot, then overflow.
	mustSubmit(t, s, smallStencil("acme")) // runs
	mustSubmit(t, s, smallStencil("acme")) // queued
	if _, err := s.Submit(smallStencil("acme")); err != ErrQueueFull {
		t.Fatalf("queue overflow err = %v, want ErrQueueFull", err)
	}
	// Rejected submissions never become sessions.
	if n := len(s.Sessions()); n != 2 {
		t.Fatalf("sessions = %d, want 2", n)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{{Name: "acme", Budget: 256 * mb}}
	s := mustScheduler(t, cfg)
	running := mustSubmit(t, s, smallStencil("acme"))
	queued := mustSubmit(t, s, smallStencil("acme"))
	if _, err := s.Cancel(queued.ID, "test"); err != nil {
		t.Fatal(err)
	}
	if queued.State != Canceled {
		t.Fatalf("state = %v, want canceled", queued.State)
	}
	if _, err := s.Cancel(queued.ID, "again"); err != ErrFinished {
		t.Fatalf("second cancel err = %v, want ErrFinished", err)
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if running.State != Done {
		t.Fatalf("running session = %v (err %q), want done", running.State, running.Err)
	}
	if _, granted := s.Budget(); granted != 0 {
		t.Fatalf("granted = %d after all sessions finished, want 0", granted)
	}
}

func TestCancelMidStaging(t *testing.T) {
	s := mustScheduler(t, testConfig())
	sess := mustSubmit(t, s, smallStencil("acme"))
	// A few windows in, staging is in full flight.
	for i := 0; i < 3; i++ {
		s.Step()
	}
	if sess.State != Running {
		t.Fatalf("state = %v, want running after 3 windows", sess.State)
	}
	if _, granted := s.Budget(); granted != sess.Footprint {
		t.Fatalf("granted = %d, want %d", granted, sess.Footprint)
	}
	if _, err := s.Cancel(sess.ID, "test"); err != nil {
		t.Fatal(err)
	}
	if sess.State != Canceled {
		t.Fatalf("state = %v, want canceled", sess.State)
	}
	if _, granted := s.Budget(); granted != 0 {
		t.Fatalf("granted = %d after mid-staging cancel, want 0 (released exactly once)", granted)
	}
	if _, err := s.Cancel(sess.ID, "again"); err != ErrFinished {
		t.Fatalf("double cancel err = %v, want ErrFinished", err)
	}
	if _, granted := s.Budget(); granted != 0 {
		t.Fatalf("granted = %d after double cancel, want 0", granted)
	}
	// The scheduler stays usable: a fresh session admits and runs.
	next := mustSubmit(t, s, smallStencil("acme"))
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if next.State != Done {
		t.Fatalf("next session = %v (err %q), want done", next.State, next.Err)
	}
}

// signature renders every externally observable outcome of a run.
func signature(s *Scheduler) string {
	var b strings.Builder
	for _, sess := range s.Sessions() {
		fmt.Fprintf(&b, "%s %s %s %v %v %v %d\n",
			sess.ID, sess.Tenant, sess.State, sess.Arrival, sess.Started, sess.Finished, sess.Footprint)
	}
	st := s.StatsSnapshot()
	fmt.Fprintf(&b, "%+v\n", st)
	return b.String()
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		cfg := testConfig()
		cfg.Tenants = []TenantConfig{
			{Name: "a", Budget: 512 * mb, Weight: 2},
			{Name: "b", Budget: 512 * mb, Weight: 1},
		}
		s := mustScheduler(t, cfg)
		for i := 0; i < 2; i++ {
			mustSubmit(t, s, smallStencil("a"))
			sh := smallStencil("b")
			sh.Kernel = "shift"
			mustSubmit(t, s, sh)
		}
		// Staggered arrivals: step a few windows between submissions.
		for i := 0; i < 5; i++ {
			s.Step()
		}
		mm := smallStencil("a")
		mm.Kernel = "matmul"
		mustSubmit(t, s, mm)
		if err := s.RunUntilIdle(0); err != nil {
			t.Fatal(err)
		}
		return signature(s)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}

func TestWRRAssignFollowsWeights(t *testing.T) {
	w := newWRR()
	ents := []laneEntity{{key: "a", weight: 3}, {key: "b", weight: 1}}
	totals := map[string]int{}
	for round := 0; round < 100; round++ {
		counts, total := w.assign(ents, 8)
		if total != 8 {
			t.Fatalf("total = %d, want 8", total)
		}
		if counts[0]+counts[1] != 8 {
			t.Fatalf("lane counts %v do not sum to 8", counts)
		}
		if counts[0] < 1 || counts[1] < 1 {
			t.Fatalf("floor violated: %v", counts)
		}
		totals["a"] += counts[0]
		totals["b"] += counts[1]
	}
	// 6 extra lanes per round at weights 3:1 -> 4.5:1.5 plus the
	// 1-lane floors: 5.5 vs 2.5 per round.
	if totals["a"] != 550 || totals["b"] != 250 {
		t.Fatalf("cumulative lanes = %v, want a=550 b=250", totals)
	}
}

func TestWRRFloorWhenOversubscribed(t *testing.T) {
	w := newWRR()
	var ents []laneEntity
	for i := 0; i < 12; i++ {
		ents = append(ents, laneEntity{key: fmt.Sprintf("t%d", i), weight: 1})
	}
	counts, total := w.assign(ents, 8)
	if total != 12 {
		t.Fatalf("total = %d, want 12 (floor oversubscribes the fabric)", total)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("entity %d got %d lanes, want exactly the floor", i, c)
		}
	}
}

// hogSpec is a staging-heavy session: the active set overflows the
// footprint, so the run is migration-bound.
func hogSpec(tenant string) WorkloadSpec {
	return WorkloadSpec{
		Tenant:     tenant,
		Kernel:     "stencil",
		Bytes:      768 * mb,
		Reduced:    256 * mb,
		Footprint:  160 * mb, // < reduced: continuous refetch
		Iterations: 2,
		Sweeps:     2,
	}
}

// isolationMakespan runs one small-tenant session against nHogs
// concurrent hog sessions and returns the small session's makespan.
func isolationMakespan(t *testing.T, fair bool, nHogs int) float64 {
	t.Helper()
	cfg := testConfig()
	cfg.Audit = false
	cfg.Fair = fair
	cfg.Tenants = []TenantConfig{
		{Name: "small", Budget: 256 * mb},
		{Name: "hog", Budget: gb},
	}
	s := mustScheduler(t, cfg)
	for i := 0; i < nHogs; i++ {
		mustSubmit(t, s, hogSpec("hog"))
	}
	small := mustSubmit(t, s, smallStencil("small"))
	if small.State != Running {
		t.Fatalf("small tenant queued behind hogs: %v (budgets must pre-admit it)", small.State)
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	if small.State != Done {
		t.Fatalf("small session = %v (err %q), want done", small.State, small.Err)
	}
	return float64(small.Makespan())
}

func TestFairSharingProtectsSmallTenant(t *testing.T) {
	alone := isolationMakespan(t, true, 0)
	fair := isolationMakespan(t, true, 4)
	unfair := isolationMakespan(t, false, 4)
	if fair >= unfair {
		t.Fatalf("fair makespan %.3f >= unfair %.3f: weighted-fair lanes did not protect the small tenant",
			fair, unfair)
	}
	// Equal weights, two tenants: the fair-share bound is 2x alone
	// (compute is unshared, staging at worst halves).
	if bound := 2.05 * alone; fair > bound {
		t.Fatalf("fair makespan %.3f exceeds fair-share bound %.3f (alone %.3f)", fair, bound, alone)
	}
}
