// Package serve turns the single-workload runtime into a multi-tenant
// service: many workload sessions, each an isolated engine + machine +
// manager built from one shared machine spec, scheduled in lockstep on
// a shared virtual clock with per-tenant HBM budgets, admission
// control and weighted-fair sharing of the IO staging fabric.
//
// The design splits into two layers:
//
//   - Scheduler (scheduler.go) is the deterministic core: a session
//     registry + job store (submit -> queued -> running -> done /
//     failed / canceled), budget accounting, a FIFO admission queue
//     and the windowed lockstep step loop. It is single-threaded and
//     uses only virtual time, so any fixed submission sequence yields
//     a byte-identical outcome.
//
//   - Server (server.go) is the HTTP/JSON front end: it serialises
//     handler access to the scheduler behind one mutex, drives the
//     step loop, and implements graceful drain (503 on submit, cancel
//     queued, finish running, flush trace captures with their stats
//     footer).
//
// Budget enforcement point: a session's machine is built with
// HBMCap equal to its granted footprint, so the manager's existing
// reservation path (reserveCapacity / consumeReservation /
// refundReservation, audited by internal/audit) enforces the grant —
// serve never second-guesses the manager, it only sizes the machine.
//
// IO fairness point: every migration memcpy reads the allocator's
// MemcpyRateCap when its flow starts. The scheduler re-divides the
// shared fabric bandwidth between the running sessions at each window
// boundary (lanes.go), so a grant persists for in-flight transfers and
// changes take effect on the next migration — deterministic, and no
// locks anywhere near the staging hot path.
package serve

import (
	"errors"
	"fmt"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// Submission and lifecycle errors surfaced by the scheduler; the HTTP
// layer maps them to status codes.
var (
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("serve: draining, not accepting submissions")
	// ErrQueueFull rejects submissions when the admission queue is at
	// capacity (503).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrOverBudget rejects sessions whose declared footprint can
	// never fit the tenant's (or the machine's) HBM budget (422).
	ErrOverBudget = errors.New("serve: declared footprint exceeds budget")
	// ErrUnknownSession is returned for lookups of ids never issued
	// (404).
	ErrUnknownSession = errors.New("serve: unknown session")
	// ErrFinished is returned for cancels of already-finished
	// sessions (409).
	ErrFinished = errors.New("serve: session already finished")
)

// TenantConfig declares one tenant's share of the machine.
type TenantConfig struct {
	// Name identifies the tenant in submissions.
	Name string `json:"name"`
	// Budget is the HBM bytes the tenant's running sessions may hold
	// in aggregate. Zero means the scheduler's DefaultBudget.
	Budget int64 `json:"budget"`
	// Weight is the tenant's share of the IO staging fabric under
	// fair sharing. Zero means 1.
	Weight int `json:"weight"`
}

// Config parameterises a Scheduler (and therefore a Server).
type Config struct {
	// Spec is the shared machine model. Every session gets its own
	// simulated machine built from this spec with HBMCap cut down to
	// the session's granted footprint.
	Spec topology.MachineSpec
	// NumPEs is the worker count of every session's runtime.
	NumPEs int
	// Reserve is global HBM headroom never granted to sessions.
	Reserve int64
	// Window is the scheduling quantum of virtual time: admission,
	// completion detection and IO-share recomputation happen at
	// window boundaries. Default 5e-3 s.
	Window sim.Time
	// Lanes is the number of IO staging lanes the weighted-fair
	// scheduler distributes each window. Default 8.
	Lanes int
	// Fair selects per-tenant weighted-fair IO sharing. When false,
	// the fabric is split per running session (max-min per migration
	// stream), which is what a tenancy-unaware runtime would do — a
	// tenant flooding sessions grabs bandwidth proportional to its
	// session count.
	Fair bool
	// Audit attaches the invariant auditor to every session manager
	// and checks conservation at session completion.
	Audit bool
	// MaxQueue bounds the admission queue. Default 64.
	MaxQueue int
	// DefaultBudget is the HBM budget for tenants first seen at
	// submit time (not pre-registered). Default: a quarter of the
	// grantable budget.
	DefaultBudget int64
	// BaseSeed offsets every session's engine seed (session i runs
	// with seed BaseSeed+i). Default 1.
	BaseSeed int64
	// Tenants pre-registers tenants in a deterministic order.
	Tenants []TenantConfig
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() (Config, error) {
	if err := c.Spec.Validate(); err != nil {
		return c, fmt.Errorf("serve: machine spec: %w", err)
	}
	if c.NumPEs <= 0 {
		return c, fmt.Errorf("serve: config needs PEs")
	}
	if c.Reserve < 0 || c.Reserve >= c.Spec.HBMCap {
		return c, fmt.Errorf("serve: reserve %d outside [0, HBMCap)", c.Reserve)
	}
	if c.Window == 0 {
		c.Window = 5e-3
	}
	if c.Window <= 0 {
		return c, fmt.Errorf("serve: window must be positive")
	}
	if c.Lanes == 0 {
		c.Lanes = 8
	}
	if c.Lanes < 0 {
		return c, fmt.Errorf("serve: lanes must be positive")
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = (c.Spec.HBMCap - c.Reserve) / 4
	}
	if c.DefaultBudget <= 0 {
		return c, fmt.Errorf("serve: default tenant budget must be positive")
	}
	return c, nil
}

// tenant is the scheduler's accounting record for one tenant.
type tenant struct {
	name   string
	budget int64
	weight int

	granted   int64 // bytes held by running sessions
	running   int   // running session count
	admitted  int64 // sessions ever admitted
	completed int64 // sessions finished as Done
	rejected  int64 // submissions refused outright

	// makespans collects finished sessions' (finish - arrival)
	// durations for the stats endpoint, in completion order.
	makespans []float64

	// warm is the converged option set of the tenant's most recently
	// finished adaptive session. The next Adapt submission seeds its
	// controller from it (adapt.Config.Warm), skipping the probe
	// phase — cross-session warm start. Only the retunable knobs are
	// ever applied, so a different footprint or audit setting on the
	// next session cannot invalidate it.
	warm *core.Options
}
