package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestConcurrentSubmitsRaceLastSlice drives many concurrent HTTP
// submissions at a machine with room for exactly one more footprint.
// Exactly one session may hold the last slice at a time; the rest queue
// FIFO and the grant ledger must balance to zero at the end. Run under
// -race this also exercises the handler/driver locking.
func TestConcurrentSubmitsRaceLastSlice(t *testing.T) {
	cfg := testConfig()
	// One footprint fits; a second does not (2 GB machine, 1.2 GB each).
	spec := smallStencil("")
	spec.Footprint = 1200 * mb
	spec.Reduced = 512 * mb
	spec.Bytes = 1 * gb
	cfg.Tenants = []TenantConfig{
		{Name: "a", Budget: 2 * gb}, {Name: "b", Budget: 2 * gb},
		{Name: "c", Budget: 2 * gb}, {Name: "d", Budget: 2 * gb},
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := spec
			s.Tenant = string(rune('a' + i%4))
			codes[i], _ = post(t, ts, s)
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202 (queue, don't reject)", i, code)
		}
	}
	sched := srv.Scheduler()
	if got := len(sched.running); got != 1 {
		t.Fatalf("%d sessions hold the last slice, want exactly 1", got)
	}
	if _, granted := sched.Budget(); granted != spec.Footprint {
		t.Fatalf("granted = %d, want one footprint %d", granted, spec.Footprint)
	}
	if err := srv.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	for _, sess := range sched.Sessions() {
		if sess.State != Done {
			t.Fatalf("%s = %v (err %q), want done", sess.ID, sess.State, sess.Err)
		}
		snap, ok := sess.MetricsSnapshot()
		if !ok || snap.ViolationCount != 0 {
			t.Fatalf("%s audit: ok=%v violations=%d", sess.ID, ok, snap.ViolationCount)
		}
	}
	if _, granted := sched.Budget(); granted != 0 {
		t.Fatalf("granted = %d after all sessions done, want 0", granted)
	}
	// Serialized execution: with room for only one session, runtimes
	// must not overlap.
	sessions := sched.Sessions()
	for i := 1; i < len(sessions); i++ {
		if sessions[i].Started < sessions[i-1].Finished {
			t.Fatalf("%s started %v before %s finished %v despite exclusive budget",
				sessions[i].ID, sessions[i].Started, sessions[i-1].ID, sessions[i-1].Finished)
		}
	}
}

// TestCancelRaceAgainstLoop cancels sessions over HTTP while the Loop
// goroutine is stepping them — grants must release exactly once no
// matter which side wins, and the ledger must come back to zero.
func TestCancelRaceAgainstLoop(t *testing.T) {
	cfg := testConfig()
	cfg.Audit = false
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	loopDone := make(chan struct{})
	go func() { srv.Loop(); close(loopDone) }()

	var ids []string
	for i := 0; i < 6; i++ {
		code, sess := post(t, ts, hogSpec("acme"))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, sess.ID)
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			// 200 (canceled) or 409 (already finished) are both
			// legitimate outcomes of the race.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
				t.Errorf("cancel %s = %d", id, resp.StatusCode)
			}
		}(id)
	}
	wg.Wait()
	srv.Close()
	<-loopDone

	sched := srv.Scheduler()
	for _, sess := range sched.Sessions() {
		if !sess.State.Finished() {
			t.Fatalf("%s left %v after cancel race", sess.ID, sess.State)
		}
	}
	if _, granted := sched.Budget(); granted != 0 {
		t.Fatalf("granted = %d after cancel race, want 0 (double release or leak)", granted)
	}
	for _, ten := range sched.StatsSnapshot().Tenants {
		if ten.Granted != 0 {
			t.Fatalf("tenant %s granted = %d, want 0", ten.Name, ten.Granted)
		}
	}
}

// TestAuditConservationAcrossSessions checks the per-session auditors
// under a concurrent multi-tenant mix: every completed session must
// pass the quiescent conservation check (the scheduler runs it on the
// finish path) and report a clean snapshot over HTTP.
func TestAuditConservationAcrossSessions(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{
		{Name: "a", Budget: 512 * mb, Weight: 2},
		{Name: "b", Budget: 512 * mb, Weight: 1},
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	kernels := []string{"stencil", "shift", "matmul"}
	for i := 0; i < 6; i++ {
		spec := smallStencil([]string{"a", "b"}[i%2])
		spec.Kernel = kernels[i%3]
		if code, _ := post(t, ts, spec); code != http.StatusAccepted {
			t.Fatalf("submit %d rejected", i)
		}
	}
	if err := srv.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}
	for _, sess := range srv.Scheduler().Sessions() {
		if sess.State != Done {
			t.Fatalf("%s = %v (err %q)", sess.ID, sess.State, sess.Err)
		}
		code, raw := get(t, ts, "/v1/sessions/"+sess.ID+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("metrics %s = %d", sess.ID, code)
		}
		var mw metricsWire
		if err := json.Unmarshal(raw, &mw); err != nil {
			t.Fatal(err)
		}
		if mw.Metrics.ViolationCount != 0 {
			t.Fatalf("%s conservation violations: %d", sess.ID, mw.Metrics.ViolationCount)
		}
		if mw.Metrics.HBMHighWater > sess.Footprint {
			t.Fatalf("%s HBM high water %d exceeds granted footprint %d",
				sess.ID, mw.Metrics.HBMHighWater, sess.Footprint)
		}
	}
}
