package serve

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/trace"
)

// Scheduler is the deterministic multi-session core: registry, job
// store, budget ledger, admission queue and the lockstep step loop.
// It is not safe for concurrent use; Server serialises access.
type Scheduler struct {
	cfg    Config
	budget int64 // total grantable HBM bytes

	granted int64 // bytes held by running sessions

	now sim.Time

	tenants     map[string]*tenant
	tenantOrder []string // registration order, the deterministic walk

	kernels map[string]AppBuilder

	sessions []*Session // dense by numeric id
	queue    []*Session // admission FIFO
	running  []*Session // admission order

	lanes *wrr

	// Counters for the aggregate stats endpoint.
	submitted int64
	rejected  int64
	completed int64
	failed    int64
	canceled  int64
	windows   int64
}

// NewScheduler validates the config and builds an empty scheduler.
func NewScheduler(cfg Config) (*Scheduler, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     cfg,
		budget:  cfg.Spec.HBMCap - cfg.Reserve,
		tenants: make(map[string]*tenant),
		kernels: builtinKernels(),
		lanes:   newWRR(),
	}
	for _, tc := range cfg.Tenants {
		if err := s.AddTenant(tc); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// RegisterKernel adds (or replaces) a named workload builder. The
// built-ins are "stencil", "matmul" and "shift".
func (s *Scheduler) RegisterKernel(name string, b AppBuilder) { s.kernels[name] = b }

// AddTenant pre-registers a tenant with an explicit budget and weight.
func (s *Scheduler) AddTenant(tc TenantConfig) error {
	if tc.Name == "" {
		return fmt.Errorf("serve: tenant needs a name")
	}
	if _, ok := s.tenants[tc.Name]; ok {
		return fmt.Errorf("serve: tenant %q already registered", tc.Name)
	}
	if tc.Budget == 0 {
		tc.Budget = s.cfg.DefaultBudget
	}
	if tc.Budget < 0 || tc.Budget > s.budget {
		return fmt.Errorf("serve: tenant %q budget %d outside (0, %d]", tc.Name, tc.Budget, s.budget)
	}
	if tc.Weight == 0 {
		tc.Weight = 1
	}
	if tc.Weight < 0 {
		return fmt.Errorf("serve: tenant %q weight must be positive", tc.Name)
	}
	s.tenants[tc.Name] = &tenant{name: tc.Name, budget: tc.Budget, weight: tc.Weight}
	s.tenantOrder = append(s.tenantOrder, tc.Name)
	return nil
}

// Now returns the shared virtual clock.
func (s *Scheduler) Now() sim.Time { return s.now }

// Active reports whether any session is queued or running.
func (s *Scheduler) Active() bool { return len(s.queue) > 0 || len(s.running) > 0 }

// Budget returns (total grantable, currently granted) HBM bytes.
func (s *Scheduler) Budget() (total, granted int64) { return s.budget, s.granted }

// Sessions returns every session ever submitted, in id order.
func (s *Scheduler) Sessions() []*Session {
	out := make([]*Session, len(s.sessions))
	copy(out, s.sessions)
	return out
}

// Session looks a session up by its public id.
func (s *Scheduler) Session(id string) (*Session, error) {
	for _, sess := range s.sessions {
		if sess.ID == id {
			return sess, nil
		}
	}
	return nil, ErrUnknownSession
}

// tenantFor returns the tenant record, auto-registering first-seen
// names with the default budget and weight 1.
func (s *Scheduler) tenantFor(name string) *tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	t := &tenant{name: name, budget: s.cfg.DefaultBudget, weight: 1}
	s.tenants[name] = t
	s.tenantOrder = append(s.tenantOrder, name)
	return t
}

// strategyModes maps submission strategy names to manager modes.
var strategyModes = map[string]core.Mode{
	"single": core.SingleIO,
	"noio":   core.NoIO,
	"multi":  core.MultiIO,
}

// normalize resolves the spec's defaults against the machine and
// validates everything the manager would otherwise reject mid-run.
// The returned options are ready for NewManager.
func (s *Scheduler) normalize(spec *WorkloadSpec) (core.Options, error) {
	if spec.Tenant == "" {
		return core.Options{}, fmt.Errorf("serve: submission needs a tenant")
	}
	if _, ok := s.kernels[spec.Kernel]; !ok {
		return core.Options{}, fmt.Errorf("serve: unknown kernel %q", spec.Kernel)
	}
	if spec.Strategy == "" {
		spec.Strategy = "multi"
	}
	mode, ok := strategyModes[spec.Strategy]
	if !ok {
		return core.Options{}, fmt.Errorf("serve: unknown strategy %q (want single, noio or multi)", spec.Strategy)
	}
	if spec.Footprint == 0 {
		if spec.Reduced == 0 {
			spec.Reduced = s.budget / 8
		}
		spec.Footprint = spec.Reduced + spec.Reduced/2
	}
	if spec.Footprint <= 0 {
		return core.Options{}, fmt.Errorf("serve: footprint must be positive")
	}
	if spec.Reduced == 0 {
		spec.Reduced = spec.Footprint * 2 / 3
	}
	if spec.Bytes == 0 {
		spec.Bytes = 2 * spec.Footprint
	}
	if spec.Bytes < spec.Reduced {
		return core.Options{}, fmt.Errorf("serve: total bytes %d below active set %d", spec.Bytes, spec.Reduced)
	}
	if spec.Bytes > s.cfg.Spec.DDRCap {
		return core.Options{}, fmt.Errorf("serve: total bytes %d exceed far-memory capacity %d", spec.Bytes, s.cfg.Spec.DDRCap)
	}
	if spec.Iterations == 0 {
		spec.Iterations = 2
	}
	if spec.Sweeps == 0 {
		spec.Sweeps = 20
	}
	// Stencil/shift block sizing divides the active set across the
	// PEs (resp. chares); round to keep the kernels' validators
	// happy. Chare count for shift is 4 PEs' worth.
	spec.Reduced = roundUp(spec.Reduced, int64(4*s.cfg.NumPEs))

	opts := core.DefaultOptions(mode)
	opts.HBMReserve = 0 // the footprint-sized machine IS the budget
	opts.Metrics = true
	opts.Audit = s.cfg.Audit
	opts.IOThreads = spec.IOThreads
	opts.PrefetchDepth = spec.PrefetchDepth
	opts.EvictLazily = spec.EvictLazily
	if spec.EvictPolicy != "" {
		pol, err := core.ParseEvictPolicy(spec.EvictPolicy)
		if err != nil {
			return core.Options{}, fmt.Errorf("serve: %w", err)
		}
		opts.EvictPolicy = pol
	}
	if err := opts.Validate(); err != nil {
		return core.Options{}, fmt.Errorf("serve: options: %w", err)
	}
	return opts, nil
}

// minFootprint returns the smallest grant that can make progress: one
// task's dependence set must fit the session's whole HBM.
func minFootprint(spec WorkloadSpec, numPEs int) int64 {
	switch spec.Kernel {
	case "stencil":
		// One chare's A+B copies.
		return spec.Reduced / int64(numPEs)
	case "shift":
		// Post-shift: one chare's hot + cold block.
		chares := int64(4 * numPEs)
		return roundUp(spec.Reduced, chares)/chares +
			roundUp(spec.Bytes-spec.Reduced, chares)/chares
	case "matmul":
		g := int64(kernels.GridFor(spec.Bytes, spec.Footprint, numPEs))
		return 3 * (spec.Bytes / 3) / (g * g)
	}
	return 1
}

// Submit validates a submission, stores it as a Queued session and
// tries immediate admission. Rejections return an error and record no
// session.
func (s *Scheduler) Submit(spec WorkloadSpec) (*Session, error) {
	s.submitted++
	opts, err := s.normalize(&spec)
	if err != nil {
		s.rejected++
		return nil, err
	}
	ten := s.tenantFor(spec.Tenant)
	if spec.Footprint > ten.budget || spec.Footprint > s.budget {
		s.rejected++
		ten.rejected++
		return nil, fmt.Errorf("%w: footprint %d, tenant budget %d, machine budget %d",
			ErrOverBudget, spec.Footprint, ten.budget, s.budget)
	}
	if min := minFootprint(spec, s.cfg.NumPEs); spec.Footprint < min {
		s.rejected++
		ten.rejected++
		return nil, fmt.Errorf("serve: footprint %d cannot hold one task's dependences (%d)", spec.Footprint, min)
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.rejected++
		ten.rejected++
		return nil, ErrQueueFull
	}
	sess := &Session{
		id:        len(s.sessions),
		ID:        fmt.Sprintf("s%04d", len(s.sessions)),
		Tenant:    spec.Tenant,
		Spec:      spec,
		State:     Queued,
		Arrival:   s.now,
		Footprint: spec.Footprint,
		opts:      opts,
		ten:       ten,
	}
	s.sessions = append(s.sessions, sess)
	s.queue = append(s.queue, sess)
	s.admit()
	return sess, nil
}

// admit starts queued sessions while budgets allow. The walk is FIFO;
// a session blocked on the *machine* budget blocks everything behind
// it (no overtaking, so large sessions cannot starve), while a session
// blocked only on its own tenant's budget is skipped (it must not
// block other tenants — that is the point of per-tenant budgets).
func (s *Scheduler) admit() {
	kept := s.queue[:0]
	blocked := false
	for _, sess := range s.queue {
		if blocked {
			kept = append(kept, sess)
			continue
		}
		if sess.Footprint > s.budget-s.granted {
			blocked = true
			kept = append(kept, sess)
			continue
		}
		if sess.Footprint > sess.ten.budget-sess.ten.granted {
			kept = append(kept, sess)
			continue
		}
		s.start(sess)
	}
	s.queue = kept
}

// start grants the budget and brings the session up: private machine
// sized to the grant, manager, optional controller and recorder, app
// seeded. Builder errors fail the session (the grant is returned).
func (s *Scheduler) start(sess *Session) {
	sess.ten.granted += sess.Footprint
	sess.ten.running++
	sess.ten.admitted++
	s.granted += sess.Footprint
	sess.State = Running
	sess.Started = s.now
	sess.base = s.now

	spec := s.cfg.Spec
	spec.HBMCap = sess.Footprint
	seed := sess.Spec.Seed
	if seed == 0 {
		seed = s.cfg.BaseSeed + int64(sess.id)
	}
	sess.env = kernels.NewEnv(kernels.EnvConfig{
		Spec:   spec,
		NumPEs: s.cfg.NumPEs,
		Opts:   sess.opts,
		Params: charm.DefaultParams(),
		// The controller's feedback loop reads the projections
		// tracer; without it adapt.New rejects the session outright.
		Trace: sess.Spec.Adapt,
		Seed:  seed,
	})
	if sess.Spec.Trace {
		sess.rec = trace.NewSessionRecorder(sess.env.MG, sess.ID, sess.Tenant)
		sess.rec.Attach()
	}
	if sess.Spec.Adapt {
		ctl, err := adapt.New(sess.env.MG, adapt.Config{Warm: sess.ten.warm})
		if err != nil {
			s.fail(sess, fmt.Sprintf("adapt: %v", err))
			return
		}
		sess.ctl = ctl
		ctl.Attach()
		if sess.rec != nil {
			sess.rec.AttachController(ctl)
		}
	}
	app, err := s.kernels[sess.Spec.Kernel](sess.env, sess.Spec)
	if err != nil {
		s.fail(sess, fmt.Sprintf("build %s: %v", sess.Spec.Kernel, err))
		return
	}
	sess.app = app
	if it, ok := app.(iterApp); ok && sess.ctl != nil {
		ctl := sess.ctl
		it.SetOnIteration(func(_ int, resume func()) {
			ctl.Barrier()
			resume()
		})
	}
	app.Start()
	s.running = append(s.running, sess)
}

// release returns the budget grant exactly once.
func (s *Scheduler) release(sess *Session) {
	if sess.released {
		return
	}
	sess.released = true
	sess.ten.granted -= sess.Footprint
	sess.ten.running--
	s.granted -= sess.Footprint
	s.lanes.forget(sess.ID)
}

// snapshotMetrics preserves the manager counters before the engine is
// torn down.
func (s *Scheduler) snapshotMetrics(sess *Session) {
	if sess.env == nil {
		return
	}
	if snap, ok := sess.env.MG.MetricsSnapshot(); ok {
		snap.Label = sess.ID
		sess.metrics, sess.hasMetric = snap, true
	}
}

// terminal moves a running (or just-started) session into a terminal
// state: budget released, recorder finished, engine reaped.
func (s *Scheduler) terminal(sess *Session, state State, reason string) {
	sess.State = state
	sess.Err = reason
	sess.Finished = s.now
	s.release(sess)
	s.snapshotMetrics(sess)
	if sess.rec != nil {
		sess.rec.Finish()
	}
	if sess.env != nil {
		sess.env.Close()
	}
}

// fail marks a session Failed.
func (s *Scheduler) fail(sess *Session, reason string) {
	s.failed++
	s.terminal(sess, Failed, reason)
}

// finish completes a session successfully, pinning the finish time to
// the app's recorded completion instant (not the window edge).
func (s *Scheduler) finish(sess *Session) {
	sess.Finished = sess.base + sess.app.FinishedAt()
	if r := sess.env.MG.ReservedBytes(); r != 0 {
		s.fail(sess, fmt.Sprintf("reservation leak: %d bytes still reserved at completion", r))
		return
	}
	if s.cfg.Audit {
		if aud := sess.env.MG.Auditor(); aud != nil {
			aud.CheckQuiescent()
			if err := aud.Err(); err != nil {
				s.fail(sess, fmt.Sprintf("audit: %v", err))
				return
			}
		}
	}
	s.completed++
	sess.ten.completed++
	sess.ten.makespans = append(sess.ten.makespans, float64(sess.Finished-sess.Arrival))
	if sess.ctl != nil && sess.ctl.Converged() {
		o := sess.ctl.FinalOptions()
		sess.ten.warm = &o
	}
	fin := sess.Finished
	s.terminal(sess, Done, "")
	sess.Finished = fin
}

// Cancel kills a session. Queued sessions leave the queue with nothing
// to release; running sessions release their grant (exactly once) and
// their engine is reaped mid-flight. Finished sessions are left alone.
func (s *Scheduler) Cancel(id, reason string) (*Session, error) {
	sess, err := s.Session(id)
	if err != nil {
		return nil, err
	}
	switch sess.State {
	case Queued:
		kept := s.queue[:0]
		for _, q := range s.queue {
			if q != sess {
				kept = append(kept, q)
			}
		}
		s.queue = kept
		s.canceled++
		sess.State = Canceled
		sess.Err = reason
		sess.Finished = s.now
		return sess, nil
	case Running:
		kept := s.running[:0]
		for _, r := range s.running {
			if r != sess {
				kept = append(kept, r)
			}
		}
		s.running = kept
		s.canceled++
		s.terminal(sess, Canceled, reason)
		return sess, nil
	}
	return sess, ErrFinished
}

// DrainQueue cancels every queued session (graceful shutdown).
func (s *Scheduler) DrainQueue(reason string) int {
	n := len(s.queue)
	for len(s.queue) > 0 {
		_, _ = s.Cancel(s.queue[0].ID, reason)
	}
	return n
}

// assignShares re-divides the staging fabric for the next window.
// Fair: lanes go to tenants by weight (smooth WRR), then split evenly
// across the tenant's running sessions. Unfair: lanes go to sessions
// directly with equal weight — a tenant flooding sessions grabs
// bandwidth in proportion, which is the behaviour the fairness mode
// exists to prevent.
func (s *Scheduler) assignShares() {
	if len(s.running) == 0 {
		return
	}
	fabric := s.cfg.Spec.MemcpyBW
	if s.cfg.Fair {
		var ents []laneEntity
		counts := make(map[string]int)
		for _, name := range s.tenantOrder {
			t := s.tenants[name]
			if t.running > 0 {
				ents = append(ents, laneEntity{key: name, weight: t.weight})
			}
		}
		lane, total := s.lanes.assign(ents, s.cfg.Lanes)
		for i, e := range ents {
			counts[e.key] = lane[i]
		}
		for _, sess := range s.running {
			bw := fabric * float64(counts[sess.Tenant]) / float64(total)
			sess.env.Mach.Alloc.MemcpyRateCap = bw / float64(sess.ten.running)
			if sess.rec != nil {
				sess.rec.LaneAssigned(int(s.windows), counts[sess.Tenant], total, len(s.running))
			}
		}
		return
	}
	ents := make([]laneEntity, len(s.running))
	for i, sess := range s.running {
		ents[i] = laneEntity{key: sess.ID, weight: 1}
	}
	lane, total := s.lanes.assign(ents, s.cfg.Lanes)
	for i, sess := range s.running {
		sess.env.Mach.Alloc.MemcpyRateCap = fabric * float64(lane[i]) / float64(total)
		if sess.rec != nil {
			sess.rec.LaneAssigned(int(s.windows), lane[i], total, len(s.running))
		}
	}
}

// Step advances the service by one window: admit what fits, re-divide
// the fabric, advance every running session's engine in lockstep, and
// collect completions and deadlocks. It reports whether any session
// remains queued or running.
func (s *Scheduler) Step() bool {
	s.windows++
	s.admit()
	s.assignShares()
	until := s.now + s.cfg.Window

	// Walk a snapshot: finish/fail mutate s.running.
	snap := make([]*Session, len(s.running))
	copy(snap, s.running)
	var done []*Session
	for _, sess := range snap {
		sess.env.Eng.Run(until - sess.base)
		if sess.app.Done() {
			done = append(done, sess)
		} else if sess.env.Eng.Idle() {
			done = append(done, sess)
		}
	}
	s.now = until
	for _, sess := range done {
		kept := s.running[:0]
		for _, r := range s.running {
			if r != sess {
				kept = append(kept, r)
			}
		}
		s.running = kept
		if sess.app.Done() {
			s.finish(sess)
		} else {
			s.fail(sess, fmt.Sprintf("deadlock: engine idle before completion (blocked: %v)",
				sess.env.Eng.BlockedProcNames()))
		}
	}
	return s.Active()
}

// RunUntilIdle steps until no session is queued or running, bounded by
// maxWindows (0 means 10 million) as a runaway guard.
func (s *Scheduler) RunUntilIdle(maxWindows int) error {
	if maxWindows <= 0 {
		maxWindows = 10_000_000
	}
	for i := 0; i < maxWindows; i++ {
		if !s.Step() {
			return nil
		}
	}
	return fmt.Errorf("serve: still active after %d windows (queued %d, running %d)",
		maxWindows, len(s.queue), len(s.running))
}

// TenantStat is one tenant's aggregate for the stats endpoint.
type TenantStat struct {
	Name         string  `json:"name"`
	Budget       int64   `json:"budget"`
	Granted      int64   `json:"granted"`
	Weight       int     `json:"weight"`
	Running      int     `json:"running"`
	Admitted     int64   `json:"admitted"`
	Completed    int64   `json:"completed"`
	Rejected     int64   `json:"rejected"`
	MeanMakespan float64 `json:"mean_makespan_s"`
	P99Makespan  float64 `json:"p99_makespan_s"`
}

// Stats is the aggregate service snapshot.
type Stats struct {
	VirtualNow float64      `json:"virtual_now_s"`
	Windows    int64        `json:"windows"`
	Budget     int64        `json:"budget"`
	Granted    int64        `json:"granted"`
	Queued     int          `json:"queued"`
	Running    int          `json:"running"`
	Submitted  int64        `json:"submitted"`
	Rejected   int64        `json:"rejected"`
	Completed  int64        `json:"completed"`
	Failed     int64        `json:"failed"`
	Canceled   int64        `json:"canceled"`
	Fair       bool         `json:"fair"`
	Lanes      int          `json:"lanes"`
	Tenants    []TenantStat `json:"tenants"`
}

// StatsSnapshot assembles the aggregate stats (tenants in
// registration order — never map order).
func (s *Scheduler) StatsSnapshot() Stats {
	st := Stats{
		VirtualNow: float64(s.now),
		Windows:    s.windows,
		Budget:     s.budget,
		Granted:    s.granted,
		Queued:     len(s.queue),
		Running:    len(s.running),
		Submitted:  s.submitted,
		Rejected:   s.rejected,
		Completed:  s.completed,
		Failed:     s.failed,
		Canceled:   s.canceled,
		Fair:       s.cfg.Fair,
		Lanes:      s.cfg.Lanes,
	}
	for _, name := range s.tenantOrder {
		t := s.tenants[name]
		ts := TenantStat{
			Name: t.name, Budget: t.budget, Granted: t.granted,
			Weight: t.weight, Running: t.running, Admitted: t.admitted,
			Completed: t.completed, Rejected: t.rejected,
		}
		if len(t.makespans) > 0 {
			var sum float64
			for _, m := range t.makespans {
				sum += m
			}
			ts.MeanMakespan = sum / float64(len(t.makespans))
			ts.P99Makespan = Percentile(t.makespans, 0.99)
		}
		st.Tenants = append(st.Tenants, ts)
	}
	return st
}

// Percentile returns the q-quantile (0<q<=1) of the samples by the
// nearest-rank method on a sorted copy; deterministic for any input
// order.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	// Insertion sort: sample sets here are small (per-tenant session
	// counts), and this avoids pulling in sort for one call site.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	rank := int(q*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
