package serve

// laneEntity is one claimant in a lane distribution round: a tenant
// under fair sharing, a session when fairness is off.
type laneEntity struct {
	key    string
	weight int
}

// wrr distributes integer IO lanes with the smooth weighted
// round-robin discipline. Per-entity credit persists across windows so
// fractional shares average out to the weight ratio over time, and the
// whole walk is driven by caller-ordered slices — no map iteration, so
// the assignment is deterministic.
type wrr struct {
	credit map[string]int
}

func newWRR() *wrr { return &wrr{credit: make(map[string]int)} }

// assign hands out lanes to the entities (in the caller's order):
// every entity gets a floor of one lane — a zero-lane window would
// stall that claimant's in-flight staging indefinitely, since a
// migration's rate is read once at flow start — and the remaining
// lanes (if any) go one at a time to the highest-credit entity,
// smooth-WRR style. The returned counts align with ents; total is the
// divisor for bandwidth shares (max(lanes, len(ents)) when the floor
// oversubscribes the fabric).
func (w *wrr) assign(ents []laneEntity, lanes int) (counts []int, total int) {
	n := len(ents)
	if n == 0 {
		return nil, 0
	}
	counts = make([]int, n)
	total = lanes
	if total < n {
		total = n
	}
	sumW := 0
	for i, e := range ents {
		counts[i] = 1
		if e.weight <= 0 {
			e.weight = 1
			ents[i] = e
		}
		sumW += e.weight
	}
	for extra := lanes - n; extra > 0; extra-- {
		best := 0
		for i, e := range ents {
			w.credit[e.key] += e.weight
			if w.credit[e.key] > w.credit[ents[best].key] {
				best = i
			}
		}
		w.credit[ents[best].key] -= sumW
		counts[best]++
	}
	return counts, total
}

// forget drops the credit state of an entity that left the system so
// the map does not grow with session churn.
func (w *wrr) forget(key string) { delete(w.credit, key) }
