package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"github.com/hetmem/hetmem/internal/audit"
)

// Server is the HTTP/JSON front end over one Scheduler. All access to
// the scheduler — handlers and the drive loop alike — is serialised
// behind mu, so the deterministic single-threaded core never sees
// concurrency. Handlers use no wall clock and render every collection
// in id or registration order, so responses are deterministic for a
// fixed submission sequence.
type Server struct {
	mu    sync.Mutex
	cond  *sync.Cond
	sched *Scheduler

	draining bool
	closed   bool
	looping  bool

	mux *http.ServeMux
}

// NewServer builds a server (and its scheduler) from the config.
func NewServer(cfg Config) (*Server, error) {
	sched, err := NewScheduler(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{sched: sched}
	s.cond = sync.NewCond(&s.mu)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/sessions/{id}/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleTrace)
	return s, nil
}

// Handler returns the HTTP handler (for httptest or net/http).
func (s *Server) Handler() http.Handler { return s.mux }

// Scheduler exposes the underlying scheduler for in-process drivers
// (experiments, tests). Callers must not race it with a running Loop;
// use Step for locked stepping.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Step advances one window under the server lock.
func (s *Server) Step() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched.Step()
}

// RunUntilIdle steps under the lock until idle.
func (s *Server) RunUntilIdle(maxWindows int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched.RunUntilIdle(maxWindows)
}

// Loop is the daemon driver: it steps whenever sessions are active and
// parks on the condvar otherwise, so virtual time is frozen while the
// service is idle. It returns once Close is called, or once a drain
// completes with nothing left to run.
func (s *Server) Loop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.looping = true
	defer func() {
		s.looping = false
		s.cond.Broadcast()
	}()
	for {
		for !s.closed && !s.sched.Active() && !s.draining {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		if !s.sched.Active() {
			// Draining and idle: the drain is complete.
			s.cond.Broadcast()
			return
		}
		s.sched.Step()
		if s.draining && !s.sched.Active() {
			s.cond.Broadcast()
			return
		}
	}
}

// Drain starts a graceful shutdown: new submissions get 503, queued
// sessions are canceled, running sessions keep stepping until done.
// It blocks until the service is idle, then finishes every open trace
// capture (the recorder writes its stats footer) and returns the
// terminal sessions.
func (s *Server) Drain() []*Session {
	s.mu.Lock()
	s.draining = true
	s.sched.DrainQueue("shutdown")
	s.cond.Broadcast()
	for s.looping && s.sched.Active() && !s.closed {
		s.cond.Wait()
	}
	// With no Loop driving (in-process use), run the remaining
	// sessions down inline.
	if s.sched.Active() && !s.closed {
		_ = s.sched.RunUntilIdle(0)
	}
	for _, sess := range s.sched.Sessions() {
		if sess.rec != nil {
			sess.rec.Finish()
		}
	}
	out := s.sched.Sessions()
	s.mu.Unlock()
	return out
}

// Close stops the Loop without draining (tests).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Draining reports drain state (for tests).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// sessionJSON is the wire form of a session record.
type sessionJSON struct {
	ID        string  `json:"id"`
	Tenant    string  `json:"tenant"`
	Kernel    string  `json:"kernel"`
	State     string  `json:"state"`
	Error     string  `json:"error,omitempty"`
	Footprint int64   `json:"footprint"`
	Arrival   float64 `json:"arrival_s"`
	Started   float64 `json:"started_s"`
	Finished  float64 `json:"finished_s"`
	Makespan  float64 `json:"makespan_s"`
}

func sessionWire(sess *Session) sessionJSON {
	return sessionJSON{
		ID:        sess.ID,
		Tenant:    sess.Tenant,
		Kernel:    sess.Spec.Kernel,
		State:     sess.State.String(),
		Error:     sess.Err,
		Footprint: sess.Footprint,
		Arrival:   float64(sess.Arrival),
		Started:   float64(sess.Started),
		Finished:  float64(sess.Finished),
		Makespan:  float64(sess.Makespan()),
	}
}

// writeJSON emits one JSON body with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the uniform error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	body := map[string]any{
		"status":        status,
		"virtual_now_s": float64(s.sched.Now()),
		"queued":        len(s.sched.queue),
		"running":       len(s.sched.running),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.sched.StatsSnapshot()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec WorkloadSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad submission body: %w", err))
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	sess, err := s.sched.Submit(spec)
	if err == nil {
		s.cond.Broadcast() // wake the Loop for the new work
	}
	s.mu.Unlock()
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrOverBudget):
			writeError(w, http.StatusUnprocessableEntity, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.mu.Lock()
	body := sessionWire(sess)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, body)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	all := s.sched.Sessions()
	out := make([]sessionJSON, 0, len(all))
	for _, sess := range all {
		out = append(out, sessionWire(sess))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// withSession resolves {id} and runs fn under the lock.
func (s *Server) withSession(w http.ResponseWriter, r *http.Request, fn func(*Session) (int, any)) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, err := s.sched.Session(id)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, err)
		return
	}
	status, body := fn(sess)
	s.mu.Unlock()
	if err, ok := body.(error); ok {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, body)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(sess *Session) (int, any) {
		return http.StatusOK, sessionWire(sess)
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, err := s.sched.Cancel(id, "client cancel")
	s.mu.Unlock()
	if err != nil {
		if errors.Is(err, ErrUnknownSession) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeError(w, http.StatusConflict, err)
		return
	}
	s.mu.Lock()
	body := sessionWire(sess)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(sess *Session) (int, any) {
		snap, ok := sess.MetricsSnapshot()
		if !ok {
			return http.StatusConflict, fmt.Errorf("serve: session %s has no metrics yet (state %s)", sess.ID, sess.State)
		}
		snap.Label = sess.ID
		return http.StatusOK, metricsWire{Session: sess.ID, Tenant: sess.Tenant, Metrics: snap}
	})
}

// metricsWire wraps an audit snapshot with its session identity.
type metricsWire struct {
	Session string         `json:"session"`
	Tenant  string         `json:"tenant"`
	Metrics audit.Snapshot `json:"metrics"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, err := s.sched.Session(id)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, err)
		return
	}
	if sess.rec == nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: session %s was not submitted with trace", id))
		return
	}
	if !sess.State.Finished() {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("serve: session %s still %s; trace downloads after finish", id, sess.State))
		return
	}
	body := sess.TraceCapture().Bytes()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", strings.ReplaceAll(id, `"`, "")+".jsonl"))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
