package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/trace"
)

// post submits spec to the test server and returns the status code and
// decoded body.
func post(t *testing.T, ts *httptest.Server, spec WorkloadSpec) (int, sessionJSON) {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body sessionJSON
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp.StatusCode, body
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestHTTPEndToEnd(t *testing.T) {
	srv, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	traced := smallStencil("acme")
	traced.Trace = true
	code, first := post(t, ts, traced)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if first.ID == "" || first.State != "running" {
		t.Fatalf("submit response = %+v, want a running session id", first)
	}
	sh := smallStencil("beta")
	sh.Kernel = "shift"
	code, second := post(t, ts, sh)
	if code != http.StatusAccepted {
		t.Fatalf("second submit status = %d, want 202", code)
	}

	// Metrics of a running session come from the live manager.
	code, raw := get(t, ts, "/v1/sessions/"+first.ID+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("live metrics status = %d: %s", code, raw)
	}

	if err := srv.RunUntilIdle(0); err != nil {
		t.Fatal(err)
	}

	// Both sessions report done with valid metrics JSON.
	for _, id := range []string{first.ID, second.ID} {
		code, raw := get(t, ts, "/v1/sessions/"+id)
		if code != http.StatusOK {
			t.Fatalf("get %s = %d", id, code)
		}
		var got sessionJSON
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got.State != "done" || got.Makespan <= 0 {
			t.Fatalf("session %s = %+v, want done with positive makespan", id, got)
		}
		code, raw = get(t, ts, "/v1/sessions/"+id+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("metrics %s = %d: %s", id, code, raw)
		}
		var mw metricsWire
		if err := json.Unmarshal(raw, &mw); err != nil {
			t.Fatalf("metrics %s does not decode: %v", id, err)
		}
		if mw.Session != id || mw.Metrics.TasksStaged+mw.Metrics.TasksInline == 0 {
			t.Fatalf("metrics %s = %+v, want completed tasks under the right session", id, mw)
		}
	}

	// The traced session's capture downloads and carries a stats footer.
	code, raw = get(t, ts, "/v1/sessions/"+first.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace download = %d: %s", code, raw)
	}
	cap, err := trace.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("trace capture does not decode: %v", err)
	}
	if cap.Meta() == nil || cap.Meta().Session != first.ID || cap.Meta().Tenant != "acme" {
		t.Fatalf("capture meta = %+v, want session/tenant identity", cap.Meta())
	}
	if cap.Stats() == nil || cap.Stats().Tasks == 0 {
		t.Fatal("capture has no stats footer after session finish")
	}
	// The untraced session has no capture.
	if code, _ := get(t, ts, "/v1/sessions/"+second.ID+"/trace"); code != http.StatusNotFound {
		t.Fatalf("untraced trace download = %d, want 404", code)
	}

	// List and stats endpoints.
	code, raw = get(t, ts, "/v1/sessions")
	if code != http.StatusOK || !strings.Contains(string(raw), first.ID) {
		t.Fatalf("list = %d: %s", code, raw)
	}
	code, raw = get(t, ts, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats does not decode: %v", err)
	}
	if st.Submitted != 2 || st.Completed != 2 || len(st.Tenants) != 2 {
		t.Fatalf("stats = %+v, want 2 submitted, 2 completed, 2 tenants", st)
	}
	code, raw = get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(raw), `"status": "ok"`) {
		t.Fatalf("healthz = %d: %s", code, raw)
	}
}

func TestHTTPErrors(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{{Name: "acme", Budget: 256 * mb}}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Malformed body -> 400.
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit = %d, want 400", resp.StatusCode)
	}
	// Footprint over the tenant budget -> 422.
	over := smallStencil("acme")
	over.Footprint = 512 * mb
	if code, _ := post(t, ts, over); code != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget submit = %d, want 422", code)
	}
	// Unknown session -> 404 on every per-session route.
	for _, path := range []string{"/v1/sessions/s9999", "/v1/sessions/s9999/metrics", "/v1/sessions/s9999/trace"} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, code)
		}
	}
	// Metrics of a queued session -> 409.
	post(t, ts, smallStencil("acme")) // running
	code, queued := post(t, ts, smallStencil("acme"))
	if code != http.StatusAccepted || queued.State != "queued" {
		t.Fatalf("second submit = %d %+v, want a queued session", code, queued)
	}
	if code, _ := get(t, ts, "/v1/sessions/"+queued.ID+"/metrics"); code != http.StatusConflict {
		t.Fatalf("queued metrics = %d, want 409", code)
	}
	// Cancel it, cancel again -> 409; cancel unknown -> 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+queued.ID, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d, want 200", resp.StatusCode)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel = %d, want 409", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/s9999", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", resp.StatusCode)
	}
}

func TestDrainGracefulShutdown(t *testing.T) {
	srv, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	loopDone := make(chan struct{})
	go func() { srv.Loop(); close(loopDone) }()

	traced := smallStencil("acme")
	traced.Trace = true
	code, sess := post(t, ts, traced)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	code, queuedSess := post(t, ts, smallStencil("acme"))
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}

	done := srv.Drain()
	// Every session reached a terminal state: running ones completed,
	// still-queued ones were canceled (completion racing the drain is
	// fine either way).
	for _, s := range done {
		if !s.State.Finished() {
			t.Fatalf("session %s left %v after drain", s.ID, s.State)
		}
	}
	var found *Session
	for _, s := range done {
		if s.ID == sess.ID {
			found = s
		}
	}
	if found == nil || found.State != Done {
		t.Fatalf("traced running session not completed by drain: %+v", found)
	}
	_ = queuedSess

	// Submissions during/after drain -> 503, health reports draining.
	if code, _ := post(t, ts, smallStencil("acme")); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
	code, raw := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(raw), "draining") {
		t.Fatalf("healthz while draining = %d: %s", code, raw)
	}

	// The flushed trace has a valid stats footer.
	code, raw = get(t, ts, "/v1/sessions/"+sess.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace after drain = %d", code)
	}
	cap, err := trace.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cap.Stats() == nil {
		t.Fatal("drained capture missing stats footer")
	}

	srv.Close()
	<-loopDone
}

func TestLoopDrivesSubmissions(t *testing.T) {
	srv, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	go srv.Loop()
	defer srv.Close()

	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		code, sess := post(t, ts, smallStencil(fmt.Sprintf("t%d", i)))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, sess.ID)
	}
	// The Loop alone must finish them; poll the HTTP surface.
	for _, id := range ids {
		for tries := 0; ; tries++ {
			_, raw := get(t, ts, "/v1/sessions/"+id)
			var got sessionJSON
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatal(err)
			}
			if got.State == "done" {
				break
			}
			if got.State == "failed" || got.State == "canceled" {
				t.Fatalf("session %s ended %s: %s", id, got.State, got.Error)
			}
			if tries > 10000 {
				t.Fatalf("session %s stuck in %s", id, got.State)
			}
		}
	}
}
