package serve

import (
	"testing"

	"github.com/hetmem/hetmem/internal/trace"
)

// adaptiveStencil is a stencil submission long enough for the online
// controller to climb and settle within the session.
func adaptiveStencil(tenant string) WorkloadSpec {
	spec := smallStencil(tenant)
	spec.Iterations = 12
	spec.Adapt = true
	return spec
}

// TestAdaptiveSessionRuns pins the tracer wiring: an Adapt submission
// needs the projections tracer in its private environment, and without
// it the controller constructor rejects the session outright.
func TestAdaptiveSessionRuns(t *testing.T) {
	s := mustScheduler(t, testConfig())
	sess := mustSubmit(t, s, adaptiveStencil("acme"))
	if sess.State != Running {
		t.Fatalf("adaptive session did not start: state %v, err %q", sess.State, sess.Err)
	}
	if sess.ctl == nil {
		t.Fatalf("adaptive session has no controller")
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if sess.State != Done {
		t.Fatalf("adaptive session finished %v (%s), want done", sess.State, sess.Err)
	}
}

// TestWarmStartCarriesAcrossSessions: a tenant's converged controller
// verdict seeds the tenant's next adaptive session, which adopts the
// configuration at its first scored window instead of re-climbing —
// so it settles strictly earlier (in engine-local time).
func TestWarmStartCarriesAcrossSessions(t *testing.T) {
	s := mustScheduler(t, testConfig())
	first := mustSubmit(t, s, adaptiveStencil("acme"))
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if first.State != Done {
		t.Fatalf("first session finished %v (%s), want done", first.State, first.Err)
	}
	if first.ctl.WarmStarted() {
		t.Fatalf("first session of a tenant must start cold")
	}
	if !first.ctl.Converged() {
		t.Fatalf("first adaptive session did not converge; cannot test warm start")
	}
	if first.ten.warm == nil {
		t.Fatalf("converged session left no warm verdict on the tenant")
	}

	second := mustSubmit(t, s, adaptiveStencil("acme"))
	if second.State != Running {
		t.Fatalf("second session did not start: %v (%s)", second.State, second.Err)
	}
	if !second.ctl.WarmStarted() {
		t.Fatalf("second adaptive session of the tenant did not warm start")
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if second.State != Done {
		t.Fatalf("second session finished %v (%s), want done", second.State, second.Err)
	}
	if !second.ctl.Converged() {
		t.Fatalf("warm-started session did not settle")
	}
	cold, warm := first.ctl.SettledTime(), second.ctl.SettledTime()
	if warm >= cold {
		t.Fatalf("warm start settled at %v, cold at %v; want strictly earlier", warm, cold)
	}
	// A different tenant stays cold: warm verdicts are per-tenant.
	other := mustSubmit(t, s, adaptiveStencil("globex"))
	if other.ctl.WarmStarted() {
		t.Fatalf("another tenant's session inherited a foreign warm verdict")
	}
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
}

// TestLaneEventsInCapture: traced sessions record the per-window lane
// grants the scheduler hands their tenant, so an exported capture shows
// the contention a session ran under.
func TestLaneEventsInCapture(t *testing.T) {
	s := mustScheduler(t, testConfig())
	specA := smallStencil("acme")
	specA.Trace = true
	specB := smallStencil("globex")
	specB.Trace = true
	a := mustSubmit(t, s, specA)
	b := mustSubmit(t, s, specB)
	if err := s.RunUntilIdle(0); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	for _, sess := range []*Session{a, b} {
		if sess.State != Done {
			t.Fatalf("%s finished %v (%s), want done", sess.ID, sess.State, sess.Err)
		}
		c := sess.TraceCapture()
		if c == nil {
			t.Fatalf("%s has no capture", sess.ID)
		}
		var lanes []*trace.LaneAssign
		for _, ev := range c.Events {
			if la, ok := ev.(*trace.LaneAssign); ok {
				lanes = append(lanes, la)
			}
		}
		if len(lanes) == 0 {
			t.Fatalf("%s capture has no lane-assignment events", sess.ID)
		}
		prev := -1
		for _, la := range lanes {
			if la.Window <= prev {
				t.Fatalf("%s lane windows not increasing: %d after %d", sess.ID, la.Window, prev)
			}
			prev = la.Window
			if la.Lanes < 0 || la.Total <= 0 || la.Lanes > la.Total {
				t.Fatalf("%s lane grant out of range: %d of %d", sess.ID, la.Lanes, la.Total)
			}
			if la.Active < 1 {
				t.Fatalf("%s lane event with no active sessions", sess.ID)
			}
		}
	}
}
