package topology

import (
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/sim"
)

func TestKNLPreset(t *testing.T) {
	s := KNL7250()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cores != 68 || s.SMTWays != 4 || s.TilesL2 != 34 {
		t.Fatalf("core config %d/%d/%d", s.Cores, s.SMTWays, s.TilesL2)
	}
	if s.HardwareThreads() != 272 {
		t.Fatalf("hardware threads = %d, want 272", s.HardwareThreads())
	}
	if s.HBMCap != 16*GB || s.DDRCap != 96*GB {
		t.Fatal("memory capacities wrong")
	}
	if ratio := s.HBMReadBW / s.DDRReadBW; ratio < 4 || ratio > 5 {
		t.Fatalf("HBM/DDR read ratio = %.2f, want >4 (paper: 'over 4X')", ratio)
	}
	if s.DDRCap/s.HBMCap != 6 {
		t.Fatal("paper states DDR capacity is 6 times HBM")
	}
}

func TestBuildFlat(t *testing.T) {
	e := sim.NewEngine(1)
	m := KNL7250().MustBuild(e)
	if m.DDR().ID != DDRNodeID || m.HBM().ID != HBMNodeID {
		t.Fatal("node id convention: DDR must be node 0, HBM node 1")
	}
	if m.DDR().Kind != memsim.DDR || m.HBM().Kind != memsim.HBM {
		t.Fatal("node kinds wrong")
	}
	if m.HBM().Cap != 16*GB {
		t.Fatal("flat mode must expose full MCDRAM")
	}
}

func TestClusterModeBandwidth(t *testing.T) {
	spec := KNL7250()
	e1 := sim.NewEngine(1)
	spec.ClusterMode = AllToAll
	a2a := spec.MustBuild(e1)
	e2 := sim.NewEngine(1)
	spec.ClusterMode = Quadrant
	quad := spec.MustBuild(e2)
	if a2a.HBM().ReadBW() >= quad.HBM().ReadBW() {
		t.Fatal("all-to-all should have lower bandwidth than quadrant")
	}
}

func TestHybridModeShrinksHBM(t *testing.T) {
	spec := KNL7250()
	spec.MemoryMode = Hybrid
	spec.HybridCacheFraction = 0.5
	e := sim.NewEngine(1)
	m := spec.MustBuild(e)
	if m.HBM().Cap != 8*GB {
		t.Fatalf("hybrid HBM cap = %d, want 8GB", m.HBM().Cap)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []func(*MachineSpec){
		func(s *MachineSpec) { s.Cores = 0 },
		func(s *MachineSpec) { s.SMTWays = 0 },
		func(s *MachineSpec) { s.HBMCap = 0 },
		func(s *MachineSpec) { s.DDRReadBW = 0 },
		func(s *MachineSpec) { s.CoreStreamBW = 0 },
		func(s *MachineSpec) { s.CoreFlops = 0 },
		func(s *MachineSpec) { s.MemoryMode = Hybrid; s.HybridCacheFraction = 0 },
		func(s *MachineSpec) { s.MemoryMode = Hybrid; s.HybridCacheFraction = 1.5 },
	}
	for i, mutate := range cases {
		s := KNL7250()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec passed Validate", i)
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	s := KNL7250()
	s.Cores = -1
	if _, err := s.Build(sim.NewEngine(1)); err == nil {
		t.Fatal("Build accepted invalid spec")
	}
}

func TestModeStrings(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{Flat.String(), "flat"},
		{Cache.String(), "cache"},
		{Hybrid.String(), "hybrid"},
		{AllToAll.String(), "all-to-all"},
		{Quadrant.String(), "quadrant"},
		{SNC4.String(), "snc-4"},
	} {
		if tc.got != tc.want {
			t.Errorf("mode string %q, want %q", tc.got, tc.want)
		}
	}
	if !strings.HasPrefix(MemoryMode(7).String(), "MemoryMode(") {
		t.Error("unknown memory mode string")
	}
	if !strings.HasPrefix(ClusterMode(7).String(), "ClusterMode(") {
		t.Error("unknown cluster mode string")
	}
}

func TestAllocatorWired(t *testing.T) {
	e := sim.NewEngine(1)
	m := KNL7250().MustBuild(e)
	b, err := m.Alloc.AllocOnNode(4*GB, HBMNodeID)
	if err != nil {
		t.Fatal(err)
	}
	if m.HBM().Used() != 4*GB {
		t.Fatal("allocator not wired to machine nodes")
	}
	b.Free()
}

func TestKNLWithNVMPreset(t *testing.T) {
	s := KNLWithNVM()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.FarKind != memsim.NVM {
		t.Fatal("far kind not NVM")
	}
	base := KNL7250()
	if s.DDRReadBW >= base.DDRReadBW/2 {
		t.Fatal("NVM read bandwidth should be well below DDR4's")
	}
	if s.DDRWriteBW >= s.DDRReadBW {
		t.Fatal("NVM must have a read/write asymmetry")
	}
	if s.DDRLatency <= 0 {
		t.Fatal("NVM needs access latency")
	}
	if s.DDRCap <= base.DDRCap {
		t.Fatal("NVM tier should be larger than DDR4")
	}
	e := sim.NewEngine(1)
	m := s.MustBuild(e)
	if m.Far().Kind != memsim.NVM || m.Far().Name != "NVM" {
		t.Fatalf("far node %s/%v, want NVM", m.Far().Name, m.Far().Kind)
	}
	if m.HBM().Kind != memsim.HBM {
		t.Fatal("HBM node kind wrong on NVM machine")
	}
}

func TestFarDefaultsToDDR(t *testing.T) {
	e := sim.NewEngine(1)
	m := KNL7250().MustBuild(e)
	if m.Far() != m.DDR() {
		t.Fatal("Far() must alias DDR()")
	}
	if m.Far().Name != "DDR4" || m.Far().Kind != memsim.DDR {
		t.Fatalf("default far node %s/%v", m.Far().Name, m.Far().Kind)
	}
}

func TestValidateMemcpyAndMigration(t *testing.T) {
	s := KNL7250()
	s.MemcpyBW = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero MemcpyBW accepted")
	}
	s = KNL7250()
	s.MigrationOpCost = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative MigrationOpCost accepted")
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	s := KNL7250()
	s.Cores = 0
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	s.MustBuild(sim.NewEngine(1))
}

// TestTieredKNL checks the depth presets build chains whose accessors
// resolve by kind: HBM stays the near tier and the far tier deepens
// with the chain, while the two-tier node-ID convention is preserved.
func TestTieredKNL(t *testing.T) {
	farKinds := map[int]memsim.NodeKind{2: memsim.DDR, 3: memsim.NVM, 4: memsim.Remote}
	for depth := 2; depth <= 4; depth++ {
		s, err := TieredKNL(depth)
		if err != nil {
			t.Fatal(err)
		}
		if s.TierDepth() != depth {
			t.Fatalf("depth %d: TierDepth = %d", depth, s.TierDepth())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		m := s.MustBuild(sim.NewEngine(1))
		if m.NumTiers() != depth {
			t.Fatalf("depth %d: NumTiers = %d", depth, m.NumTiers())
		}
		if m.HBM().Kind != memsim.HBM || m.HBM().ID != HBMNodeID {
			t.Fatalf("depth %d: HBM() resolved node %q (id %d)", depth, m.HBM().Name, m.HBM().ID)
		}
		if m.DDR().Kind != memsim.DDR || m.DDR().ID != DDRNodeID {
			t.Fatalf("depth %d: DDR() resolved node %q (id %d)", depth, m.DDR().Name, m.DDR().ID)
		}
		chain := m.Chain()
		if chain[0] != m.HBM() || chain[len(chain)-1] != m.Far() {
			t.Fatalf("depth %d: chain ends are not HBM()/Far()", depth)
		}
		for i := 1; i < len(chain); i++ {
			if chain[i].Kind.TierRank() <= chain[i-1].Kind.TierRank() {
				t.Fatalf("depth %d: chain rank not strictly deepening at %d", depth, i)
			}
		}
		if m.Far().Kind != farKinds[depth] {
			t.Fatalf("depth %d: far tier kind %s, want %s", depth, m.Far().Kind, farKinds[depth])
		}
	}
	for _, depth := range []int{1, 5} {
		if _, err := TieredKNL(depth); err == nil {
			t.Fatalf("TieredKNL(%d) should fail", depth)
		}
	}
}

// TestValidateRejectsNonDeepeningTier: extra tiers must strictly deepen
// the chain.
func TestValidateRejectsNonDeepeningTier(t *testing.T) {
	s := KNL7250()
	s.ExtraTiers = append(s.ExtraTiers, TierSpec{
		Kind: memsim.DDR, Cap: GB, ReadBW: GBf, WriteBW: GBf, TotalBW: GBf,
	})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "deepen") {
		t.Fatalf("Validate = %v, want non-deepening chain error", err)
	}
}
