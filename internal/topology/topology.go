// Package topology describes the node architecture the runtime executes
// on: core count, tiles, SMT, the heterogeneous memory nodes and the
// KNL-style memory and cluster modes. A MachineSpec is a pure
// description; Build instantiates it as a memsim.System plus a
// numa.Allocator on a simulation engine.
//
// The KNL7250 preset encodes the machine used in the paper's
// evaluation: an Intel Xeon Phi Knights Landing node from Stampede 2.0
// in Flat / All-to-All mode — 68 cores (4-way SMT, 272 hardware
// threads), 34 L2 tiles, 16 GB MCDRAM, 96 GB DDR4, MCDRAM bandwidth
// about 4x DDR4.
package topology

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/numa"
	"github.com/hetmem/hetmem/internal/sim"
)

// GB is one gibibyte in bytes, the unit the paper reports capacities in.
const GB = int64(1) << 30

// GBf is GB as a float64, for bandwidth arithmetic.
const GBf = float64(GB)

// MemoryMode is the KNL MCDRAM configuration.
type MemoryMode int

const (
	// Flat exposes MCDRAM and DDR4 as separate memory nodes (the mode
	// the paper evaluates: programmer-controlled placement).
	Flat MemoryMode = iota
	// Cache configures MCDRAM as a direct-mapped cache in front of
	// DDR4 (modelled by internal/cachemode).
	Cache
	// Hybrid splits MCDRAM between a flat portion and a cache portion.
	Hybrid
)

// String names the mode as KNL documentation does.
func (m MemoryMode) String() string {
	switch m {
	case Flat:
		return "flat"
	case Cache:
		return "cache"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("MemoryMode(%d)", int(m))
	}
}

// ClusterMode is the KNL on-die mesh affinity configuration.
type ClusterMode int

const (
	// AllToAll distributes memory addresses uniformly across all tag
	// directories. It has the largest impact on (i.e. lowest) memory
	// bandwidth; the paper uses it to stress heterogeneity.
	AllToAll ClusterMode = iota
	// Quadrant localises tag directories to the quadrant owning the
	// memory controller, yielding slightly higher bandwidth.
	Quadrant
	// SNC4 exposes quadrants as NUMA domains (not used by the paper;
	// provided for completeness).
	SNC4
)

// String names the mode.
func (c ClusterMode) String() string {
	switch c {
	case AllToAll:
		return "all-to-all"
	case Quadrant:
		return "quadrant"
	case SNC4:
		return "snc-4"
	default:
		return fmt.Sprintf("ClusterMode(%d)", int(c))
	}
}

// bandwidthFactor scales nominal (quadrant) bandwidth for the cluster
// mode. Calibrated from Rosales et al. [12]: all-to-all loses a few
// percent versus quadrant.
func (c ClusterMode) bandwidthFactor() float64 {
	switch c {
	case AllToAll:
		return 0.93
	case Quadrant:
		return 1.0
	case SNC4:
		return 1.02
	default:
		return 1.0
	}
}

// MachineSpec describes a many-core node with heterogeneous memory.
type MachineSpec struct {
	Name string

	// Cores is the number of physical cores; SMTWays the hardware
	// threads per core; TilesL2 the number of shared L2 tiles.
	Cores   int
	SMTWays int
	TilesL2 int

	// HBM (near/fast memory) parameters. Bandwidths are nominal
	// quadrant-mode aggregates in bytes/second; TotalBW is the shared
	// bus limit for mixed read/write traffic (what STREAM measures).
	HBMCap     int64
	HBMReadBW  float64
	HBMWriteBW float64
	HBMTotalBW float64
	HBMLatency sim.Time

	// DDR (far/slow memory) parameters. FarKind lets the same slot
	// describe an NVM tier instead (the paper's extension target:
	// "architectures with heterogeneity in both latency and bandwidth
	// would benefit even more"); zero value means DDR.
	DDRCap     int64
	DDRReadBW  float64
	DDRWriteBW float64
	DDRTotalBW float64
	DDRLatency sim.Time
	FarKind    memsim.NodeKind

	// CoreStreamBW is the maximum bandwidth a single core can draw
	// from any memory node, in bytes/second: the per-flow rate cap.
	CoreStreamBW float64

	// MemcpyBW is the rate one thread sustains copying data between
	// memory nodes (the migration memcpy of Fig. 7). It is well below
	// CoreStreamBW on KNL: the copy loop alternates loads and stores
	// across two memory controllers from a single weak core.
	MemcpyBW float64

	// MigrationOpCost is the fixed per-block cost of one migration
	// beyond the memcpy itself: numa_alloc_onnode (mmap), first-touch
	// page faults on the destination, numa_free, and runtime
	// bookkeeping. The paper's Fig. 7 deliberately measures only "the
	// main step performed as part of the data migration routine,
	// memcpy"; this constant is the rest of that routine. It is what
	// makes many-small-block workloads (Stencil3D) expensive for a
	// single IO thread while few-large-block workloads (MatMul)
	// amortise it — the contrast between Figs. 8 and 9.
	MigrationOpCost sim.Time

	// CoreFlops is a core's sustained double-precision rate with
	// vectorisation, in flop/s — the compute roof of the roofline
	// model used by kernels.
	CoreFlops float64

	MemoryMode  MemoryMode
	ClusterMode ClusterMode

	// HybridCacheFraction is the MCDRAM share configured as cache in
	// Hybrid mode (typically 0.25 or 0.5).
	HybridCacheFraction float64

	// ExtraTiers extends the chain below the DDR/far slot: each entry
	// becomes one more memory node (NVM, then a remote/CXL pool),
	// ordered by increasing distance from the cores. Empty for the
	// paper's two-tier machine; the json tag keeps older encodings
	// (trace meta headers) byte-identical.
	ExtraTiers []TierSpec `json:",omitempty"`
}

// TierSpec describes one additional memory tier below the HBM/DDR
// pair. For a Remote tier, TotalBW is the shared-link cap (DOLMA): all
// reads and writes crossing the link contend for it.
type TierSpec struct {
	Kind    memsim.NodeKind
	Cap     int64
	ReadBW  float64
	WriteBW float64
	TotalBW float64
	Latency sim.Time
}

// KNL7250 returns the machine used in the paper's evaluation, in Flat /
// All-to-All mode. Bandwidth figures follow the paper's STREAM
// measurements (Fig. 1: MCDRAM over 4x DDR4) and public KNL data:
// MCDRAM ~ 450 GB/s read, DDR4 ~ 90 GB/s, 6:1 capacity ratio.
func KNL7250() MachineSpec {
	return MachineSpec{
		Name:    "Intel Xeon Phi 7250 (KNL)",
		Cores:   68,
		SMTWays: 4,
		TilesL2: 34,

		HBMCap:     16 * GB,
		HBMReadBW:  450 * GBf,
		HBMWriteBW: 385 * GBf,
		HBMTotalBW: 465 * GBf,
		HBMLatency: 0, // comparable latency to DDR4; only bandwidth differs

		DDRCap:     96 * GB,
		DDRReadBW:  95 * GBf,
		DDRWriteBW: 80 * GBf,
		DDRTotalBW: 90 * GBf,
		DDRLatency: 0,

		CoreStreamBW:    11 * GBf, // single-core sustainable stream rate
		MemcpyBW:        8 * GBf,  // single-thread inter-node copy rate
		MigrationOpCost: 6e-3,     // alloc + page faults + free per block
		CoreFlops:       22e9,     // ~1.4 GHz x 8 DP lanes x 2 FMA

		MemoryMode:  Flat,
		ClusterMode: AllToAll,
	}
}

// Validate reports configuration errors.
func (s MachineSpec) Validate() error {
	switch {
	case s.Cores <= 0:
		return fmt.Errorf("topology: %q has no cores", s.Name)
	case s.SMTWays <= 0:
		return fmt.Errorf("topology: %q has SMTWays %d", s.Name, s.SMTWays)
	case s.HBMCap <= 0 || s.DDRCap <= 0:
		return fmt.Errorf("topology: %q has non-positive memory capacity", s.Name)
	case s.HBMReadBW <= 0 || s.HBMWriteBW <= 0 || s.DDRReadBW <= 0 || s.DDRWriteBW <= 0:
		return fmt.Errorf("topology: %q has non-positive bandwidth", s.Name)
	case s.CoreStreamBW <= 0:
		return fmt.Errorf("topology: %q has non-positive core stream bandwidth", s.Name)
	case s.MemcpyBW <= 0:
		return fmt.Errorf("topology: %q has non-positive memcpy bandwidth", s.Name)
	case s.MigrationOpCost < 0:
		return fmt.Errorf("topology: %q has negative migration op cost", s.Name)
	case s.CoreFlops <= 0:
		return fmt.Errorf("topology: %q has non-positive core flops", s.Name)
	case s.MemoryMode == Hybrid && (s.HybridCacheFraction <= 0 || s.HybridCacheFraction >= 1):
		return fmt.Errorf("topology: hybrid mode needs cache fraction in (0,1), got %v", s.HybridCacheFraction)
	}
	prev := s.FarKind.TierRank()
	for _, t := range s.ExtraTiers {
		switch {
		case t.Cap <= 0 || t.ReadBW <= 0 || t.WriteBW <= 0:
			return fmt.Errorf("topology: %q tier %v has non-positive capacity or bandwidth", s.Name, t.Kind)
		case t.Latency < 0:
			return fmt.Errorf("topology: %q tier %v has negative latency", s.Name, t.Kind)
		case t.Kind.TierRank() <= prev:
			return fmt.Errorf("topology: %q extra tier %v does not deepen the chain", s.Name, t.Kind)
		}
		prev = t.Kind.TierRank()
	}
	return nil
}

// HardwareThreads returns cores x SMT ways.
func (s MachineSpec) HardwareThreads() int { return s.Cores * s.SMTWays }

// Machine is an instantiated MachineSpec: memory system + allocator on
// an engine. Node ids follow the paper: DDR is node 0, HBM node 1.
type Machine struct {
	Spec  MachineSpec
	Eng   *sim.Engine
	Mem   *memsim.System
	Alloc *numa.Allocator
}

// DDRNodeID and HBMNodeID are the flat-mode KNL node numbers.
const (
	DDRNodeID = 0
	HBMNodeID = 1
)

// Build instantiates the machine on e. In Cache mode the HBM node is
// still created (the cache model draws on its bandwidth) but callers
// should not allocate on it directly. In Hybrid mode the HBM node
// capacity is reduced by the cache fraction.
func (s MachineSpec) Build(e *sim.Engine) (*Machine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	f := s.ClusterMode.bandwidthFactor()
	hbmCap := s.HBMCap
	if s.MemoryMode == Hybrid {
		hbmCap = int64(float64(hbmCap) * (1 - s.HybridCacheFraction))
	}
	specs := []memsim.NodeSpec{
		{
			Name: farName(s.FarKind), Kind: s.FarKind, Cap: s.DDRCap,
			ReadBW: s.DDRReadBW * f, WriteBW: s.DDRWriteBW * f,
			TotalBW: s.DDRTotalBW * f, Latency: s.DDRLatency,
		},
		{
			Name: "MCDRAM", Kind: memsim.HBM, Cap: hbmCap,
			ReadBW: s.HBMReadBW * f, WriteBW: s.HBMWriteBW * f,
			TotalBW: s.HBMTotalBW * f, Latency: s.HBMLatency,
		},
	}
	// Deeper tiers append after the classic pair so node IDs 0 (far)
	// and 1 (HBM) are stable for existing two-tier callers. The
	// on-mesh bandwidth factor does not apply: NVM DIMM rates and the
	// remote link cap are not mesh-limited.
	for _, t := range s.ExtraTiers {
		specs = append(specs, memsim.NodeSpec{
			Name: tierName(t.Kind), Kind: t.Kind, Cap: t.Cap,
			ReadBW: t.ReadBW, WriteBW: t.WriteBW,
			TotalBW: t.TotalBW, Latency: t.Latency,
		})
	}
	mem := memsim.NewSystem(e, specs)
	return &Machine{Spec: s, Eng: e, Mem: mem, Alloc: numa.New(mem)}, nil
}

// MustBuild is Build panicking on error, for presets known to be valid.
func (s MachineSpec) MustBuild(e *sim.Engine) *Machine {
	m, err := s.Build(e)
	if err != nil {
		panic(err)
	}
	return m
}

// farName labels the far-memory node by its kind.
func farName(k memsim.NodeKind) string {
	if k == memsim.NVM {
		return "NVM"
	}
	return "DDR4"
}

// tierName labels an extra-tier node by its kind.
func tierName(k memsim.NodeKind) string {
	switch k {
	case memsim.HBM:
		return "MCDRAM"
	case memsim.Remote:
		return "Remote"
	default:
		return farName(k)
	}
}

// KNLWithNVM returns the KNL preset with the far memory replaced by an
// NVM tier: larger, with roughly a third of DDR4's bandwidth, a
// read/write asymmetry typical of persistent memory, and microsecond
// access latency — the paper's "both latency and bandwidth restricted"
// slow memory ([9], [10]).
func KNLWithNVM() MachineSpec {
	s := KNL7250()
	s.Name = "Intel Xeon Phi 7250 (KNL) + NVM far memory"
	s.FarKind = memsim.NVM
	s.DDRCap = 384 * GB
	s.DDRReadBW = 32 * GBf
	s.DDRWriteBW = 12 * GBf
	s.DDRTotalBW = 34 * GBf
	s.DDRLatency = 1.5e-6
	return s
}

// TieredKNL returns the KNL preset extended to the given chain depth:
//
//	2: HBM → DDR4 (the paper's machine, identical to KNL7250)
//	3: HBM → DDR4 → NVM (Unimem-style heterogeneous main memory)
//	4: HBM → DDR4 → NVM → Remote (DOLMA-style disaggregated pool
//	   behind a shared-link bandwidth cap)
//
// The NVM tier reuses the KNLWithNVM numbers; the remote pool is a
// 1 TB CXL/network tier whose TotalBW is the shared link.
func TieredKNL(depth int) (MachineSpec, error) {
	s := KNL7250()
	switch depth {
	case 2:
		return s, nil
	case 3, 4:
		s.Name = fmt.Sprintf("%s, %d-tier chain", s.Name, depth)
		s.ExtraTiers = append(s.ExtraTiers, TierSpec{
			Kind: memsim.NVM, Cap: 384 * GB,
			ReadBW: 32 * GBf, WriteBW: 12 * GBf, TotalBW: 34 * GBf,
			Latency: 1.5e-6,
		})
		if depth == 4 {
			s.ExtraTiers = append(s.ExtraTiers, TierSpec{
				Kind: memsim.Remote, Cap: 1024 * GB,
				ReadBW: 16 * GBf, WriteBW: 16 * GBf, TotalBW: 16 * GBf,
				Latency: 3e-6,
			})
		}
		return s, nil
	default:
		return MachineSpec{}, fmt.Errorf("topology: tier depth %d not in 2..4", depth)
	}
}

// TierDepth returns the number of memory tiers the spec describes.
func (s MachineSpec) TierDepth() int { return 2 + len(s.ExtraTiers) }

// Chain returns the memory nodes ordered near to far by kind rank
// (HBM first), independent of the order nodes were created in.
func (m *Machine) Chain() []*memsim.Node { return m.Mem.Chain() }

// Tier returns the i-th node of the chain, 0 being the nearest (HBM).
func (m *Machine) Tier(i int) *memsim.Node { return m.Chain()[i] }

// NumTiers returns the chain length.
func (m *Machine) NumTiers() int { return m.Mem.NumNodes() }

// HBM returns the near-memory node, resolved by kind — never by node
// ID, so machines whose specs list nodes in any order still find the
// right one.
func (m *Machine) HBM() *memsim.Node {
	n := m.Mem.NodeByKind(memsim.HBM)
	if n == nil {
		panic("topology: machine has no HBM node")
	}
	return n
}

// DDR returns the first tier below HBM (DDR4, or NVM on FarKind=NVM
// machines): the chain neighbour evictions demote to first.
func (m *Machine) DDR() *memsim.Node { return m.Tier(1) }

// Far returns the deepest tier of the chain — the capacity backstop
// where blocks are born and where full demotions land.
func (m *Machine) Far() *memsim.Node {
	chain := m.Chain()
	return chain[len(chain)-1]
}
