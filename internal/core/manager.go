package core

import (
	"errors"
	"fmt"

	"github.com/hetmem/hetmem/internal/audit"
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/numa"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// Mode selects the evaluation configuration for data placement and
// movement, matching the bars of Figures 8 and 9.
type Mode int

const (
	// DDROnly places every block in DDR4 and never moves data (the
	// "DDR4only" bar of Fig. 9).
	DDROnly Mode = iota
	// Baseline is the paper's Naive scheme: fill HBM at allocation
	// time (numa_alloc_onnode with preferred-HBM placement), overflow
	// to DDR4, never move data.
	Baseline
	// SingleIO stages tasks through per-PE wait queues served by one
	// IO thread.
	SingleIO
	// NoIO has workers fetch and evict their own dependences
	// synchronously in pre-/post-processing.
	NoIO
	// MultiIO runs one asynchronous IO thread per PE (on the SMT
	// sibling hyperthread), overlapping fetch/evict with compute.
	MultiIO
)

// String names the mode as the paper's figure legends do.
func (m Mode) String() string {
	switch m {
	case DDROnly:
		return "DDR4only"
	case Baseline:
		return "Naive"
	case SingleIO:
		return "Single IO thread"
	case NoIO:
		return "No IO thread"
	case MultiIO:
		return "Multiple IO threads"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Moves reports whether the mode performs prefetch/eviction.
func (m Mode) Moves() bool { return m == SingleIO || m == NoIO || m == MultiIO }

// Options configure a Manager.
type Options struct {
	// Mode is the placement/movement configuration.
	Mode Mode
	// HBMReserve is HBM headroom never used for data blocks. The
	// paper's Baseline "allocates close to 15GB or more on HBM ...
	// ensuring we do not over-subscribe"; movement strategies keep
	// the same headroom so "HBM full" means the same thing everywhere.
	HBMReserve int64
	// EvictLazily keeps dead blocks in HBM until space is needed (the
	// paper's planned memory-pool optimisation; used by the eviction
	// ablation). The paper's own strategies evict eagerly.
	EvictLazily bool
	// IOThreads overrides the IO thread count for SingleIO (ablation
	// X3 sweeps 1..N threads round-robining over all wait queues).
	// Zero means the mode's natural count.
	IOThreads int
	// SharedWaitQueue collapses the per-PE wait queues into one global
	// queue (ablation X2: the load-imbalance configuration the paper
	// argues against). Only meaningful for SingleIO.
	SharedWaitQueue bool
	// EvictPolicy orders eviction victims when capacity must be
	// reclaimed (makeRoom): DeclOrder (default), LRU or Lookahead.
	// Read dynamically at each reclaim, so Retune can switch it
	// online. Nil means DeclOrder.
	EvictPolicy EvictPolicy
	// PrefetchDepth bounds how many tasks per PE may be staged (in
	// the run queue or executing) at once under MultiIO; 0 means
	// unlimited, i.e. prefetch as far ahead as HBM capacity allows —
	// the paper's behaviour. The X6 ablation sweeps this to show the
	// overlap-vs-capacity-pressure trade-off of §IV-D ("when to
	// prefetch").
	PrefetchDepth int
	// Audit enables the invariant-audit layer (internal/audit):
	// conservation checks on every accounting change, a quiescence
	// watchdog that reports silent stalls, and structured snapshots via
	// AuditSnapshot. Audit implies Metrics.
	Audit bool
	// Metrics enables the cheap counter collector alone (histograms,
	// peaks, retry counts — the feedback the adaptive controller
	// samples) without the auditor's shadow ledger and per-event
	// invariant checks.
	Metrics bool
}

// DefaultOptions returns the paper-faithful configuration for a mode.
func DefaultOptions(mode Mode) Options {
	return Options{Mode: mode, HBMReserve: 1 * topology.GB}
}

// Manager owns the managed handles, the HBM budget and the scheduling
// strategy; it implements charm.Interceptor.
type Manager struct {
	rt    *charm.Runtime
	mach  *topology.Machine
	opts  Options
	strat strategy

	// tiers is the machine's memory chain cached near-to-far: tiers[0]
	// is HBM, tiers[len-1] the capacity backstop blocks are born on.
	// Resolved by kind rank, never by node ID, so spec order cannot
	// swap near and far memory.
	tiers []*memsim.Node

	handles []*Handle

	// dist/distSeen are epoch-stamped scratch slices for
	// queueDistances, indexed by Handle.id; distBusy flags an
	// in-progress scan so a concurrently parked second scanner falls
	// back to a private map instead of corrupting the shared scratch.
	dist      []int
	distSeen  []uint64
	distEpoch uint64
	distBusy  bool

	// reserved protects HBM capacity promised to staging tasks whose
	// fetches have not yet allocated it. Reserving the full remaining
	// dependence footprint atomically before the first fetch prevents
	// the partial-acquisition deadlock that concurrent IO threads
	// would otherwise hit when several tasks each pin part of their
	// blocks and wait forever for the rest.
	reserved int64

	// aud is the optional invariant auditor; nil when Options.Audit is
	// off (every audit.Auditor method is a no-op on nil).
	aud *audit.Auditor
	// met is the optional metrics collector; nil unless Options.Metrics
	// or Options.Audit is set (nil-safe like the auditor).
	met *audit.Metrics
	// obs holds the runtime observers (adaptive controller, trace
	// recorder, ...); TaskDone fans out to each in registration order.
	obs []Observer
	// ts is the optional trace sink; nil when no recorder is attached.
	ts TraceSink

	// Stats aggregates data-movement activity.
	Stats struct {
		Fetches      int64
		Evictions    int64
		BytesFetched int64
		BytesEvicted int64
		FetchTime    sim.Time
		EvictTime    sim.Time
		TasksStaged  int64
		TasksInline  int64
		// Refetches counts fetches of blocks that had been resident
		// before — traffic an ideal eviction order would avoid.
		Refetches int64
		// StageRetries counts staging attempts aborted for lack of
		// HBM capacity.
		StageRetries int64
		// ForcedEvictions counts evictions of blocks that a queued
		// task still needed (capacity pressure overrode affinity).
		ForcedEvictions int64
		// EdgeBytes attributes moved bytes to the directed tier edge
		// they actually crossed, keyed "SRC->DST" by node name. Fetch
		// edges end at the near tier, evict edges leave it; on a
		// two-tier machine the map holds exactly the classic
		// DDR4->MCDRAM / MCDRAM->DDR4 pair. BytesFetched/BytesEvicted
		// above remain the HBM-side aggregates (each byte counted on
		// exactly one edge, so the per-direction edge sums equal them).
		EdgeBytes map[string]int64
	}
}

// NewManager builds a manager for rt under opts and installs it as the
// runtime's interceptor when the mode moves data.
func NewManager(rt *charm.Runtime, opts Options) *Manager {
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	m := &Manager{rt: rt, mach: rt.Machine(), opts: opts}
	m.tiers = m.mach.Chain()
	if opts.Audit || opts.Metrics {
		m.met = audit.NewMetrics(rt.Engine(), rt.NumPEs())
	}
	if opts.Audit {
		m.aud = audit.New(rt.Engine(), audit.Config{
			Budget:   m.HBMBudget(),
			Queues:   rt.NumPEs(),
			Metrics:  m.met,
			NearTier: m.hbm().Name,
			Probe: func() audit.Probe {
				return audit.Probe{HBMUsed: m.hbm().Used(), Reserved: m.reserved}
			},
		})
		rt.Engine().SetQuiesceHook(m.auditQuiesce)
	}
	// A migration memcpy is a single thread's copy loop (Fig. 7's
	// cost basis); the full routine adds the fixed alloc/free cost.
	if m.mach.Alloc.MemcpyRateCap == 0 {
		m.mach.Alloc.MemcpyRateCap = m.mach.Spec.MemcpyBW
	}
	if m.mach.Alloc.MigrateOpCost == 0 {
		m.mach.Alloc.MigrateOpCost = m.mach.Spec.MigrationOpCost
	}
	m.installStrategy()
	if m.strat != nil {
		rt.SetInterceptor(m)
	}
	return m
}

// installStrategy builds the scheduling strategy for the current mode.
// Called at construction and again by Retune on a mode switch.
func (m *Manager) installStrategy() {
	switch m.opts.Mode {
	case DDROnly, Baseline:
		// No interception: placement only.
		m.strat = nil
	case SingleIO:
		m.strat = newSingleIO(m)
	case NoIO:
		m.strat = newNoIO(m)
	case MultiIO:
		m.strat = newMultiIO(m)
	}
}

// Runtime returns the runtime this manager serves.
func (m *Manager) Runtime() *charm.Runtime { return m.rt }

// Mode returns the configured mode.
func (m *Manager) Mode() Mode { return m.opts.Mode }

// Options returns the manager's configuration.
func (m *Manager) Options() Options { return m.opts }

// hbm is the near end of the tier chain; bottom the far end, where
// blocks are born and full demotions land. On the paper's machine the
// two-entry chain makes bottom the DDR4 node.
func (m *Manager) hbm() *memsim.Node    { return m.tiers[0] }
func (m *Manager) bottom() *memsim.Node { return m.tiers[len(m.tiers)-1] }

// tierOf returns the chain index of the node currently holding h's
// buffer (managed buffers always live on a single node).
func (m *Manager) tierOf(h *Handle) int {
	node := h.buf.Part(0).Node
	for i, t := range m.tiers {
		if t == node {
			return i
		}
	}
	panic(fmt.Sprintf("core: block %s on unknown node %s", h.name, node.Name))
}

// noteEdge attributes n moved bytes to the src→dst tier edge, in both
// the manager's Stats and the metrics collector.
func (m *Manager) noteEdge(src, dst *memsim.Node, n int64) {
	if m.Stats.EdgeBytes == nil {
		m.Stats.EdgeBytes = make(map[string]int64)
	}
	m.Stats.EdgeBytes[src.Name+"->"+dst.Name] += n
	m.met.EdgeMove(src.Name, dst.Name, n)
}

// HBMBudget returns the bytes of HBM available for data blocks.
func (m *Manager) HBMBudget() int64 { return m.hbm().Cap - m.opts.HBMReserve }

// ReservedBytes returns the HBM capacity currently promised to staging
// tasks but not yet allocated. At quiescence it must be zero — every
// reservation consumed or refunded exactly once — which the serve
// layer checks at session completion even when the full auditor is
// off.
func (m *Manager) ReservedBytes() int64 { return m.reserved }

// hbmFits reports whether size more bytes can be placed in HBM without
// touching the reserve headroom or capacity promised to other staging
// tasks.
func (m *Manager) hbmFits(size int64) bool {
	return m.hbm().Free()-m.opts.HBMReserve-m.reserved >= size
}

// reserveCapacity atomically claims need bytes of HBM budget for an
// imminent sequence of fetches, reclaiming dead resident blocks on
// demand if required. It reports whether the claim succeeded.
func (m *Manager) reserveCapacity(p *sim.Proc, lane int, need int64) bool {
	if !m.hbmFits(need) && !m.makeRoom(p, lane, need) {
		return false
	}
	m.reserved += need
	m.notePressure()
	m.aud.Reserve(need)
	return true
}

// notePressure samples the HBM usage and reservation high-water marks
// into the metrics collector; called wherever either counter moves.
func (m *Manager) notePressure() {
	m.met.Pressure(m.hbm().Used(), m.reserved)
}

// consumeReservation converts n reserved bytes into an imminent HBM
// allocation (a fetch about to migrate).
func (m *Manager) consumeReservation(n int64) {
	m.reserved -= n
	if m.reserved < 0 {
		panic("core: reservation underflow")
	}
	m.notePressure()
	m.aud.ConsumeReservation(n)
}

// refundReservation returns n reserved bytes untouched by an aborted
// staging attempt. Every granted reservation is consumed or refunded
// exactly once; the auditor's ledger verifies this at quiescence.
func (m *Manager) refundReservation(n int64) {
	m.reserved -= n
	if m.reserved < 0 {
		panic("core: reservation underflow")
	}
	m.notePressure()
	m.aud.RefundReservation(n)
}

// NewHandle declares a managed data block of the given size. Placement
// follows the mode: movement strategies and DDROnly start on the
// bottom tier (DDR4 on the paper's machine, the deepest tier of longer
// chains); Baseline fills HBM block-by-block until only the reserve is
// left.
func (m *Manager) NewHandle(name string, size int64) *Handle {
	if size <= 0 {
		panic("core: handle needs positive size")
	}
	h := &Handle{mgr: m, id: len(m.handles), name: name, size: size}
	h.mu.AcquireCost = m.rt.Params().LockCost

	alloc := m.mach.Alloc
	switch m.opts.Mode {
	case Baseline:
		if m.hbmFits(size) {
			buf, err := alloc.AllocOnNode(size, m.hbm().ID)
			if err != nil {
				panic(fmt.Sprintf("core: baseline HBM alloc of %s failed: %v", name, err))
			}
			h.buf, h.state = buf, InHBM
			break
		}
		fallthrough
	default: // DDROnly and all movement strategies allocate on the bottom tier
		buf, err := alloc.AllocOnNode(size, m.bottom().ID)
		if err != nil {
			panic(fmt.Sprintf("core: %s alloc of %s (%d bytes) failed: %v", m.bottom().Name, name, size, err))
		}
		h.buf, h.state = buf, InDDR
	}
	m.handles = append(m.handles, h)
	if m.ts != nil {
		m.ts.HandleDeclared(h, h.state.String())
	}
	return h
}

// Handles returns every handle declared through the manager. The slice
// is a copy; the handles themselves are shared.
func (m *Manager) Handles() []*Handle {
	return append([]*Handle(nil), m.handles...)
}

// ResidentBytes returns the bytes of managed blocks currently in HBM.
func (m *Manager) ResidentBytes() int64 {
	hbm := m.hbm().ID
	var total int64
	for _, h := range m.handles {
		total += h.buf.BytesOn(hbm)
	}
	return total
}

// errHBMBudget reports that a fetch lost a capacity race and should be
// retried after the next eviction.
var errHBMBudget = fmt.Errorf("core: HBM budget exhausted")

// fetch migrates h into HBM, holding the block lock for the duration.
// When hasReservation is set the caller pre-claimed h.size bytes with
// reserveCapacity; the reservation is consumed here exactly once
// (whether or not a migration turns out to be needed). Otherwise the
// budget check sits directly before the migration, after all lock
// waits, so check-and-allocate is atomic in virtual time.
func (m *Manager) fetch(p *sim.Proc, lane int, h *Handle, hasReservation bool) error {
	lockEnd := m.rt.Tracer().Begin(lane, projections.LockWait, "blk:"+h.name)
	h.mu.Lock(p)
	lockEnd()
	defer h.mu.Unlock(p)
	if hasReservation {
		m.consumeReservation(h.size)
	}
	if h.state == InHBM {
		return nil
	}
	if h.state == Fetching || h.state == Evicting {
		panic("core: block " + h.name + " in transition while lock held")
	}
	if !hasReservation && !m.hbmFits(h.size) {
		return errHBMBudget
	}
	src := m.tiers[m.tierOf(h)]
	h.state = Fetching
	if m.ts != nil {
		m.ts.FetchStart(lane, h)
	}
	end := m.rt.Tracer().Begin(lane, projections.Fetch, h.name)
	d, err := m.mach.Alloc.Migrate(p, h.buf, m.hbm().ID)
	end()
	if err != nil {
		h.state = InDDR
		return err
	}
	h.state = InHBM
	h.Fetches++
	m.Stats.Fetches++
	m.Stats.BytesFetched += h.size
	m.Stats.FetchTime += d
	m.met.FetchDone(h.size, d)
	m.noteEdge(src, m.hbm(), h.size)
	if h.Fetches > 1 {
		m.Stats.Refetches++
		m.met.Refetch(m.evictPolicy().Name())
	}
	if m.ts != nil {
		m.ts.FetchDone(lane, h, d, h.Fetches > 1, src.Name)
	}
	m.notePressure()
	m.aud.CheckNow()
	return nil
}

// evict migrates h out of HBM if it is resident, unreferenced, and —
// unless force is set — not needed by any queued task. makeRoom forces
// eviction of pending-use blocks as a last resort under capacity
// pressure.
//
// The landing tier is the policy's demotion target: DemoteBottom drops
// the victim to the far end of the chain (the paper's behaviour, and
// the only option on a two-tier machine), DemoteNext one level below
// HBM, keeping a likely-returning block on the cheapest miss edge.
// When the target tier is full the victim cascades one tier deeper;
// only the bottom tier is a capacity backstop whose failure panics.
func (m *Manager) evict(p *sim.Proc, lane int, h *Handle, force bool) {
	lockEnd := m.rt.Tracer().Begin(lane, projections.LockWait, "blk:"+h.name)
	h.mu.Lock(p)
	lockEnd()
	defer h.mu.Unlock(p)
	if h.state != InHBM || h.InUse() || h.claims > 0 {
		return
	}
	if !force && h.pendingUses > 0 {
		return
	}
	forced := force && h.pendingUses > 0
	if forced {
		m.Stats.ForcedEvictions++
	}
	ti := 1 // one level below HBM
	if m.evictPolicy().DemoteTarget() == DemoteBottom {
		ti = len(m.tiers) - 1
	}
	h.state = Evicting
	end := m.rt.Tracer().Begin(lane, projections.Evict, h.name)
	var (
		dst *memsim.Node
		d   sim.Time
		err error
	)
	for ; ti < len(m.tiers); ti++ {
		dst = m.tiers[ti]
		// Migrate claims destination capacity atomically up front, so
		// an ErrNoSpace here costs no virtual time and cascading to
		// the next tier is free.
		d, err = m.mach.Alloc.Migrate(p, h.buf, dst.ID)
		if err == nil || !errors.Is(err, numa.ErrNoSpace) {
			break
		}
	}
	end()
	if err != nil {
		// The bottom tier is the capacity backstop; failure there (or
		// any non-capacity error) is a configuration error.
		panic(fmt.Sprintf("core: eviction of %s failed: %v", h.name, err))
	}
	h.state = InDDR
	h.Evictions++
	m.Stats.Evictions++
	m.Stats.BytesEvicted += h.size
	m.Stats.EvictTime += d
	m.met.EvictDone(h.size, d, forced)
	m.met.PolicyEvict(m.evictPolicy().Name(), forced)
	m.noteEdge(m.hbm(), dst, h.size)
	if m.ts != nil {
		m.ts.EvictDone(lane, h, d, forced, m.evictPolicy().Name(), dst.Name)
	}
	m.aud.CheckNow()
}

// evictPolicy returns the configured victim-selection policy.
func (m *Manager) evictPolicy() EvictPolicy {
	if m.opts.EvictPolicy != nil {
		return m.opts.EvictPolicy
	}
	return DeclOrder
}

// evictCandidates snapshots the dead resident blocks (InHBM,
// unreferenced, unclaimed) in declaration order. The checks run
// without the block locks — exactly as precise as the declaration-order
// walk this generalises — because evict re-validates every condition
// under the lock before moving data.
func (m *Manager) evictCandidates() []*Handle {
	var cands []*Handle
	for _, h := range m.handles {
		if h.state == InHBM && !h.InUse() && h.claims == 0 {
			cands = append(cands, h)
		}
	}
	return cands
}

// queueDistances records, for every handle some wait-queued task
// depends on, the queue position of its first consumer (minimum across
// queues) into the manager's epoch-stamped scratch slices, indexed by
// Handle.id — no per-view map allocation on the eviction hot path.
// Walks each wait queue under its lock; no strategy holds a queue lock
// while staging, so a staging process may take them here. Returns the
// epoch that stamps this scan's entries.
func (m *Manager) queueDistances(p *sim.Proc) uint64 {
	m.distEpoch++
	epoch := m.distEpoch
	if n := len(m.handles); len(m.dist) < n {
		m.dist = append(m.dist, make([]int, n-len(m.dist))...)
		m.distSeen = append(m.distSeen, make([]uint64, n-len(m.distSeen))...)
	}
	if m.strat == nil {
		return epoch
	}
	m.distBusy = true
	defer func() { m.distBusy = false }()
	m.strat.scanWaiting(p, func(pos int, ot *OOCTask) {
		for _, d := range ot.deps {
			id := d.h.id
			if m.distSeen[id] != epoch || pos < m.dist[id] {
				m.distSeen[id] = epoch
				m.dist[id] = pos
			}
		}
	})
	return epoch
}

// queueDistancesMap is the map-building fallback used when a second
// process needs distances while the shared scratch is mid-scan (the
// scanning process parked on a queue lock). Rare: only multi-IO-thread
// configurations under queue-lock contention reach it.
func (m *Manager) queueDistancesMap(p *sim.Proc) map[*Handle]int {
	dist := make(map[*Handle]int)
	if m.strat == nil {
		return dist
	}
	m.strat.scanWaiting(p, func(pos int, ot *OOCTask) {
		for _, d := range ot.deps {
			if cur, ok := dist[d.h]; !ok || pos < cur {
				dist[d.h] = pos
			}
		}
	})
	return dist
}

// policyView builds the runtime view handed to EvictPolicy.Rank. The
// queue walk behind NextUse runs at most once per view, on first
// demand, so policies that never ask (DeclOrder, LRU) pay nothing.
func (m *Manager) policyView(p *sim.Proc) PolicyView {
	var epoch uint64
	var fallback map[*Handle]int
	resolved := false
	return PolicyView{
		Now: m.rt.Engine().Now(),
		NextUse: func(h *Handle) int {
			if h.pendingUses == 0 {
				return NoNextUse
			}
			if !resolved {
				if m.distBusy {
					fallback = m.queueDistancesMap(p)
				} else {
					epoch = m.queueDistances(p)
				}
				resolved = true
			}
			if fallback != nil {
				if d, ok := fallback[h]; ok {
					return d + 1
				}
				return 0
			}
			if m.distSeen[h.id] == epoch {
				return m.dist[h.id] + 1
			}
			// Pending but not in any wait queue: its consumer is
			// created or already staged — imminent.
			return 0
		},
	}
}

// makeRoom evicts dead (resident, unreferenced) blocks until need bytes
// fit in the HBM budget, in the order the configured EvictPolicy ranks
// them. Under lazy eviction this is the memory pool's reclamation path;
// under eager eviction it is a liveness backstop for blocks stranded
// resident by aborted staging attempts. Reports whether enough space
// was freed.
func (m *Manager) makeRoom(p *sim.Proc, lane int, need int64) bool {
	pol := m.evictPolicy()
	// First pass: blocks no queued task needs. Second pass: any dead
	// block, even one with pending uses — capacity beats affinity.
	// Candidates are re-collected for the forced pass because blocks
	// change state while the first pass blocks on locks and
	// migrations.
	for _, force := range []bool{false, true} {
		for _, h := range pol.Rank(m.policyView(p), m.evictCandidates()) {
			if m.hbmFits(need) {
				return true
			}
			if !force && h.pendingUses > 0 {
				// Pass 1 never takes a pending-use block; skipping
				// up front spares the no-op lock round-trip.
				continue
			}
			m.evict(p, lane, h, force)
		}
		if m.hbmFits(need) {
			return true
		}
	}
	return false
}

// TaskCreated implements charm.Interceptor: record queued consumers of
// each dependence block at send time.
func (m *Manager) TaskCreated(t *charm.Task) {
	for _, d := range t.Deps {
		if h, ok := d.Handle.(*Handle); ok && h.mgr == m {
			h.pendingUses++
			m.aud.PendingUse(1)
		}
	}
}

// taskDone balances TaskCreated when a task finishes, stamping each
// dependence's last-use time for the LRU eviction policy.
func (m *Manager) taskDone(t *charm.Task) {
	now := m.rt.Engine().Now()
	for _, d := range t.Deps {
		if h, ok := d.Handle.(*Handle); ok && h.mgr == m {
			if h.pendingUses == 0 {
				panic("core: pendingUses underflow on " + h.name)
			}
			h.pendingUses--
			h.lastUse = now
			m.aud.PendingUse(-1)
		}
	}
}

// Intercept implements charm.Interceptor: the generated pre-processing
// step for [prefetch] entry methods.
func (m *Manager) Intercept(p *sim.Proc, pe *charm.PE, t *charm.Task) bool {
	ot := newOOCTask(m, pe, t)
	t.Ctx = ot
	if ot.depBytes > m.HBMBudget() {
		panic(fmt.Sprintf("core: task %s needs %d dep bytes, exceeding the %d-byte HBM budget; decompose further",
			t, ot.depBytes, m.HBMBudget()))
	}
	staged := m.strat.admit(p, ot)
	if m.ts != nil {
		m.ts.TaskAdmitted(t, pe.ID(), ot.depBytes, staged)
	}
	return staged
}

// PostProcess implements charm.Interceptor: the generated
// post-processing (eviction) step after a [prefetch] entry runs.
func (m *Manager) PostProcess(p *sim.Proc, pe *charm.PE, t *charm.Task) {
	m.taskDone(t)
	ot, _ := t.Ctx.(*OOCTask)
	if ot != nil {
		m.strat.complete(p, ot)
	}
	for _, obs := range m.obs {
		obs.TaskDone(t)
	}
}

// strategy is the scheduling policy plugged into the manager.
type strategy interface {
	name() string
	// admit is pre-processing: returns true if the task was staged
	// (owned by the strategy), false to execute inline now.
	admit(p *sim.Proc, ot *OOCTask) bool
	// complete is post-processing after the entry method ran.
	complete(p *sim.Proc, ot *OOCTask)
	// queued snapshots every task parked in the strategy's wait
	// queues, indexed by queue. Called only when no process is running
	// (the engine's quiesce hook, or a barrier callback via
	// retuneQuiescent), so no locks are needed.
	queued() [][]*OOCTask
	// scanWaiting visits every wait-queued task with its position in
	// its queue, under the queue locks — the Lookahead eviction
	// policy's view of upcoming declared uses. Callers must not hold
	// any wait-queue lock.
	scanWaiting(p *sim.Proc, visit func(pos int, ot *OOCTask))
}

// Observer receives runtime notifications the adaptive layer hooks.
// TaskDone fires once per completed task, after the strategy's
// post-processing, from the worker's process context — implementations
// may mutate knobs (a Retune that keeps the mode) but must not switch
// strategies there.
type Observer interface {
	TaskDone(t *charm.Task)
}

// AddObserver appends an observer to the dispatch list. Multiple
// observers (an adapt.Controller and a trace.Recorder, say) coexist;
// each TaskDone fans out to all of them in registration order.
func (m *Manager) AddObserver(obs Observer) {
	if obs == nil {
		panic("core: AddObserver(nil)")
	}
	m.obs = append(m.obs, obs)
}

// RemoveObserver detaches a previously added observer. Removing an
// observer that is not registered is a no-op.
func (m *Manager) RemoveObserver(obs Observer) {
	for i, o := range m.obs {
		if o == obs {
			m.obs = append(m.obs[:i], m.obs[i+1:]...)
			return
		}
	}
}

// SetObserver replaces the whole observer list with obs (nil detaches
// every observer). Kept for callers that want exclusive ownership; use
// AddObserver to coexist with other observers.
func (m *Manager) SetObserver(obs Observer) {
	if obs == nil {
		m.obs = nil
		return
	}
	m.obs = []Observer{obs}
}

// TraceSink receives the manager's data-movement events: handle
// declaration, task admission, fetch/evict completion, staging retries
// under capacity pressure, kernel completion and online retunes. The
// trace recorder (internal/trace) implements it; every call site is
// nil-guarded so an unattached manager pays one pointer test. Sinks run
// at zero virtual-time cost and must not block or mutate runtime state.
type TraceSink interface {
	// HandleDeclared fires once per NewHandle; node is the initial
	// placement (a BlockState string).
	HandleDeclared(h *Handle, node string)
	// TaskAdmitted fires after the strategy's admission decision for an
	// intercepted [prefetch] task. staged reports whether the task was
	// queued for staging (true) or will execute inline (false).
	TaskAdmitted(t *charm.Task, pe int, depBytes int64, staged bool)
	// FetchStart/FetchDone bracket a block migration into HBM on an IO
	// lane. refetch marks blocks that had been resident before; src is
	// the tier node the block was fetched from.
	FetchStart(lane int, h *Handle)
	FetchDone(lane int, h *Handle, d sim.Time, refetch bool, src string)
	// EvictDone fires after a block migrates out of HBM; dst is the
	// tier node the victim landed on (the policy's demotion target, or
	// deeper if that tier was full).
	EvictDone(lane int, h *Handle, d sim.Time, forced bool, policy string, dst string)
	// StageRetry fires when a staging attempt aborts for lack of HBM
	// capacity, with the usage picture at the moment of the abort.
	StageRetry(pe int, t *charm.Task, need, used, reserved int64)
	// KernelDone fires after RunKernel finishes a compute kernel.
	// start is the exact virtual time the kernel began (passed
	// explicitly — reconstructing it as now-d loses a ULP, which is
	// enough to break byte-identical replay).
	KernelDone(p *sim.Proc, spec KernelSpec, start, d sim.Time)
	// Retuned fires after a successful Retune with the new options.
	Retuned(o Options)
}

// SetTraceSink installs (or, with nil, removes) the trace sink.
func (m *Manager) SetTraceSink(ts TraceSink) { m.ts = ts }

// Retune applies a new option set to a running manager. Knob-only
// changes (IOThreads, PrefetchDepth, EvictLazily, EvictPolicy) take effect
// immediately — the strategies read those dynamically — and are safe
// from any context. A mode change rebuilds the strategy and is only
// legal between the movement modes (SingleIO, NoIO, MultiIO) at a
// quiescent point: no task staged or queued anywhere and no handle
// referenced, the state an application barrier guarantees. The fixed
// structural fields (HBMReserve, SharedWaitQueue, Audit, Metrics)
// cannot be retuned.
func (m *Manager) Retune(o Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	cur := m.opts
	switch {
	case o.HBMReserve != cur.HBMReserve:
		return fmt.Errorf("core: Retune cannot change HBMReserve (%d -> %d)", cur.HBMReserve, o.HBMReserve)
	case o.SharedWaitQueue != cur.SharedWaitQueue:
		return fmt.Errorf("core: Retune cannot change SharedWaitQueue")
	case o.Audit != cur.Audit || o.Metrics != cur.Metrics:
		return fmt.Errorf("core: Retune cannot change Audit/Metrics")
	}
	if o.Mode != cur.Mode {
		if !cur.Mode.Moves() || !o.Mode.Moves() {
			return fmt.Errorf("core: Retune cannot switch between %v and %v (only movement strategies)", cur.Mode, o.Mode)
		}
		if !m.retuneQuiescent() {
			return fmt.Errorf("core: Retune mode switch %v -> %v outside a quiescent barrier", cur.Mode, o.Mode)
		}
		m.opts = o
		// The old strategy's parked IO processes are abandoned; the
		// engine reaps them at Close, and the watchdog ignores them
		// because they hold no tasks.
		m.installStrategy()
		if m.ts != nil {
			m.ts.Retuned(o)
		}
		return nil
	}
	if o.IOThreads != cur.IOThreads {
		if s, ok := m.strat.(*singleIO); ok {
			s.setIOThreads(o.IOThreads)
		}
	}
	// PrefetchDepth, EvictLazily and EvictPolicy are read dynamically
	// at each staging/release/reclaim decision; updating the options
	// is enough.
	m.opts = o
	if m.ts != nil {
		m.ts.Retuned(o)
	}
	return nil
}

// retuneQuiescent reports whether the staging protocol is at a
// barrier-quiescent point: every wait queue empty and every handle
// unreferenced, unclaimed and not in transition. Only called when no
// process is running (a reduction callback or the quiesce hook), which
// is what makes the unlocked queue snapshot safe.
func (m *Manager) retuneQuiescent() bool {
	if m.strat != nil {
		for _, q := range m.strat.queued() {
			if len(q) > 0 {
				return false
			}
		}
	}
	for _, h := range m.handles {
		if h.refs != 0 || h.claims != 0 || h.state == Fetching || h.state == Evicting {
			return false
		}
	}
	return true
}

// Auditor returns the invariant auditor, or nil when Options.Audit is
// off.
func (m *Manager) Auditor() *audit.Auditor { return m.aud }

// Metrics returns the counter collector, or nil when neither
// Options.Metrics nor Options.Audit is set.
func (m *Manager) Metrics() *audit.Metrics { return m.met }

// MetricsSnapshot exports the metrics counters filled in with the
// manager-side fields; unlike AuditSnapshot it works without the
// auditor. ok is false when metrics are off.
func (m *Manager) MetricsSnapshot() (s audit.Snapshot, ok bool) {
	if m.met == nil {
		return audit.Snapshot{}, false
	}
	s = m.met.Snapshot()
	s.HBMBudget = m.HBMBudget()
	s.Mode = m.opts.Mode.String()
	s.EvictPolicy = m.evictPolicy().Name()
	s.TasksStaged = m.Stats.TasksStaged
	s.TasksInline = m.Stats.TasksInline
	return s, true
}

// AuditSnapshot exports the auditor's metrics, filled in with the
// manager-side fields. ok is false when auditing is disabled.
func (m *Manager) AuditSnapshot() (s audit.Snapshot, ok bool) {
	if m.aud == nil {
		return audit.Snapshot{}, false
	}
	s = m.aud.Snapshot()
	s.Mode = m.opts.Mode.String()
	s.EvictPolicy = m.evictPolicy().Name()
	s.TasksStaged = m.Stats.TasksStaged
	s.TasksInline = m.Stats.TasksInline
	return s, true
}

// auditQuiesce is the watchdog, installed as the engine's quiesce hook:
// it runs whenever the event queue drains. If staged tasks are still
// parked in wait queues at that point nothing will ever wake them — a
// lost wakeup or starvation — so it files a StallReport naming the
// stuck tasks and their blocking handles. Otherwise the system is truly
// quiescent and the conservation invariants must all balance to zero.
func (m *Manager) auditQuiesce() {
	if m.aud == nil {
		return
	}
	var stuck []audit.StuckTask
	if m.strat != nil {
		for qi, q := range m.strat.queued() {
			for _, ot := range q {
				st := audit.StuckTask{Task: ot.t.String(), PE: ot.pe.ID(), Queue: qi}
				for _, d := range ot.deps {
					st.Deps = append(st.Deps, audit.BlockInfo{
						Name:        d.h.name,
						Size:        d.h.size,
						State:       d.h.state.String(),
						Refs:        d.h.refs,
						Claims:      d.h.claims,
						PendingUses: d.h.pendingUses,
					})
				}
				stuck = append(stuck, st)
			}
		}
	}
	var msgs, runs []int
	undelivered := 0
	for i := 0; i < m.rt.NumPEs(); i++ {
		mq, rq := m.rt.PE(i).QueueLengths()
		msgs = append(msgs, mq)
		runs = append(runs, rq)
		undelivered += mq + rq
	}
	if len(stuck) > 0 || undelivered > 0 {
		m.aud.Stall(&audit.StallReport{
			Time:         m.rt.Engine().Now(),
			BlockedProcs: m.rt.Engine().BlockedProcNames(),
			Stuck:        stuck,
			PEQueueMsgs:  msgs,
			PEQueueRuns:  runs,
			HBMUsed:      m.hbm().Used(),
			Reserved:     m.reserved,
			Budget:       m.HBMBudget(),
		})
		return
	}
	m.aud.CheckQuiescent()
	for _, h := range m.handles {
		if h.refs != 0 || h.claims != 0 {
			m.aud.Violate("quiescence-handle", "block %s: refs=%d claims=%d at quiescence",
				h.name, h.refs, h.claims)
		}
		if h.state == Fetching || h.state == Evicting {
			m.aud.Violate("quiescence-state", "block %s stuck in %v at quiescence", h.name, h.state)
		}
	}
}
