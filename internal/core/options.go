package core

import "fmt"

// Validate reports configuration errors: negative knobs and knob/mode
// combinations that would silently misbehave. NewManager and Retune
// reject invalid options up front so a typo in an experiment driver (or
// a bad adaptive decision) fails loudly instead of running a different
// configuration than the one named.
func (o Options) Validate() error {
	switch {
	case o.Mode < DDROnly || o.Mode > MultiIO:
		return fmt.Errorf("core: unknown mode %v", o.Mode)
	case o.HBMReserve < 0:
		return fmt.Errorf("core: negative HBM reserve %d", o.HBMReserve)
	case o.IOThreads < 0:
		return fmt.Errorf("core: negative IOThreads %d", o.IOThreads)
	case o.PrefetchDepth < 0:
		return fmt.Errorf("core: negative PrefetchDepth %d", o.PrefetchDepth)
	case o.SharedWaitQueue && o.Mode != SingleIO:
		return fmt.Errorf("core: SharedWaitQueue is only meaningful for SingleIO, not %v", o.Mode)
	case o.IOThreads > 0 && o.Mode != SingleIO:
		return fmt.Errorf("core: IOThreads override is only meaningful for SingleIO, not %v (MultiIO always runs one per PE)", o.Mode)
	case o.PrefetchDepth > 0 && o.Mode != MultiIO:
		return fmt.Errorf("core: PrefetchDepth is only meaningful for MultiIO, not %v", o.Mode)
	case o.EvictLazily && !o.Mode.Moves():
		return fmt.Errorf("core: EvictLazily is meaningless under %v, which never evicts", o.Mode)
	case o.EvictPolicy != nil && !o.Mode.Moves():
		return fmt.Errorf("core: EvictPolicy is meaningless under %v, which never evicts", o.Mode)
	}
	return nil
}
