package core

import (
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

const gb = topology.GB

// tinySpec is a small machine that makes capacity arithmetic obvious:
// 4 GB HBM (3 GB budget after the 1 GB reserve), 32 GB DDR, HBM 4x DDR
// bandwidth.
func tinySpec() topology.MachineSpec {
	return topology.MachineSpec{
		Name:    "tiny",
		Cores:   8,
		SMTWays: 2,
		TilesL2: 4,

		HBMCap:     4 * gb,
		HBMReadBW:  400 * topology.GBf,
		HBMWriteBW: 380 * topology.GBf,

		DDRCap:     32 * gb,
		DDRReadBW:  100 * topology.GBf,
		DDRWriteBW: 80 * topology.GBf,

		CoreStreamBW: 40 * topology.GBf,
		MemcpyBW:     20 * topology.GBf,
		CoreFlops:    20e9,

		MemoryMode:  topology.Flat,
		ClusterMode: topology.Quadrant,
	}
}

// env bundles a ready-to-run simulated runtime + manager.
type env struct {
	e  *sim.Engine
	m  *topology.Machine
	rt *charm.Runtime
	mg *Manager
	tr *projections.Tracer
}

func newEnv(t *testing.T, numPEs int, opts Options) *env {
	t.Helper()
	// Every strategy test runs with the invariant auditor enabled; the
	// quiescence checks in assertQuiescent assert it stayed clean.
	opts.Audit = true
	e := sim.NewEngine(42)
	m := tinySpec().MustBuild(e)
	tr := projections.NewTracer(e, numPEs)
	rt := charm.NewRuntime(m, numPEs, charm.DefaultParams(), tr)
	mg := NewManager(rt, opts)
	t.Cleanup(e.Close)
	return &env{e: e, m: m, rt: rt, mg: mg, tr: tr}
}

func TestModeStrings(t *testing.T) {
	for mode, want := range map[Mode]string{
		DDROnly:  "DDR4only",
		Baseline: "Naive",
		SingleIO: "Single IO thread",
		NoIO:     "No IO thread",
		MultiIO:  "Multiple IO threads",
	} {
		if mode.String() != want {
			t.Errorf("%d.String() = %q, want %q", mode, mode.String(), want)
		}
	}
	if !strings.HasPrefix(Mode(99).String(), "Mode(") {
		t.Error("unknown mode string")
	}
	if DDROnly.Moves() || Baseline.Moves() {
		t.Error("static modes claim to move data")
	}
	if !SingleIO.Moves() || !NoIO.Moves() || !MultiIO.Moves() {
		t.Error("movement modes deny moving data")
	}
}

func TestBlockStateStrings(t *testing.T) {
	for st, want := range map[BlockState]string{
		InDDR: "INDDR", InHBM: "INHBM", Fetching: "FETCHING", Evicting: "EVICTING",
	} {
		if st.String() != want {
			t.Errorf("state %d = %q, want %q", st, st.String(), want)
		}
	}
}

func TestHandlePlacementByMode(t *testing.T) {
	for _, tc := range []struct {
		mode Mode
		want BlockState
	}{
		{DDROnly, InDDR},
		{SingleIO, InDDR},
		{NoIO, InDDR},
		{MultiIO, InDDR},
		{Baseline, InHBM},
	} {
		env := newEnv(t, 2, DefaultOptions(tc.mode))
		h := env.mg.NewHandle("b", 1*gb)
		if h.State() != tc.want {
			t.Errorf("mode %v: initial state %v, want %v", tc.mode, h.State(), tc.want)
		}
	}
}

func TestBaselineFillsHBMThenOverflows(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(Baseline))
	// Budget is 3 GB (4 GB - 1 GB reserve): three 1 GB blocks in HBM,
	// the fourth overflows to DDR whole.
	var handles []*Handle
	for i := 0; i < 4; i++ {
		handles = append(handles, env.mg.NewHandle("b", 1*gb))
	}
	for i := 0; i < 3; i++ {
		if handles[i].State() != InHBM {
			t.Fatalf("block %d not in HBM", i)
		}
	}
	if handles[3].State() != InDDR {
		t.Fatal("overflow block not on DDR")
	}
	if env.m.HBM().Used() != 3*gb {
		t.Fatalf("HBM used %d, want 3GB", env.m.HBM().Used())
	}
}

func TestNewHandleValidation(t *testing.T) {
	env := newEnv(t, 1, DefaultOptions(DDROnly))
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size handle did not panic")
		}
	}()
	env.mg.NewHandle("bad", 0)
}

func TestHBMBudget(t *testing.T) {
	env := newEnv(t, 1, DefaultOptions(SingleIO))
	if env.mg.HBMBudget() != 3*gb {
		t.Fatalf("budget %d, want 3GB", env.mg.HBMBudget())
	}
	if !env.mg.hbmFits(3 * gb) {
		t.Fatal("3GB should fit")
	}
	if env.mg.hbmFits(3*gb + 1) {
		t.Fatal("3GB+1 should not fit")
	}
}

// oocApp is a minimal out-of-core application: n chares, each owning a
// private ReadWrite block, each running iters [prefetch] kernel
// invocations synchronised by a barrier.
type oocApp struct {
	env     *env
	arr     *charm.Array
	kern    *charm.Entry
	handles []*Handle
	done    bool
	iters   int
	curIter int
	iterEnd []sim.Time
	// onBarrier, when non-nil, runs at each iteration boundary (the
	// quiescent point where Retune is legal).
	onBarrier func()
}

type oocChare struct{ block *Handle }

func buildApp(env *env, nChares int, blockSize int64, iters int, shared []*Handle) *oocApp {
	app := &oocApp{env: env, iters: iters}
	for i := 0; i < nChares; i++ {
		app.handles = append(app.handles, env.mg.NewHandle("blk", blockSize))
	}
	app.arr = env.rt.NewArray("ooc", nChares, func(i int) charm.Chare {
		return &oocChare{block: app.handles[i]}
	}, nil)
	var red *charm.Reduction
	red = env.rt.NewReduction(nChares, func() {
		app.curIter++
		app.iterEnd = append(app.iterEnd, env.e.Now())
		if app.onBarrier != nil {
			app.onBarrier()
		}
		if app.curIter < app.iters {
			app.arr.Broadcast(-1, app.kern, nil)
		} else {
			app.done = true
		}
	})
	app.kern = app.arr.Register(charm.Entry{
		Name:     "kern",
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			deps := []charm.DataDep{{Handle: el.Obj.(*oocChare).block, Mode: charm.ReadWrite}}
			for _, h := range shared {
				deps = append(deps, charm.DataDep{Handle: h, Mode: charm.ReadOnly})
			}
			return deps
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			env.mg.RunKernel(p, el.Array().Entry("kern").Deps(el, msg), KernelSpec{TrafficScale: 1})
			red.Contribute()
		},
	})
	return app
}

func (app *oocApp) run(t *testing.T) {
	t.Helper()
	app.env.rt.Main(func(p *sim.Proc) { app.arr.Broadcast(-1, app.kern, nil) })
	app.env.e.RunAll()
	if !app.done {
		t.Fatalf("application deadlocked: %d/%d iterations, blocked procs %v",
			app.curIter, app.iters, app.env.e.BlockedProcNames())
	}
}

// assertQuiescent checks post-run invariants: no pins left, budget
// respected at peak, every block back in a stable state.
func assertQuiescent(t *testing.T, env *env) {
	t.Helper()
	for _, h := range env.mg.Handles() {
		if h.Refs() != 0 {
			t.Fatalf("block %s still has %d refs after quiescence", h.BlockName(), h.Refs())
		}
		if h.State() == Fetching || h.State() == Evicting {
			t.Fatalf("block %s stuck in %v", h.BlockName(), h.State())
		}
	}
	if peak := env.m.HBM().PeakUsed; peak > env.m.HBM().Cap-env.mg.Options().HBMReserve {
		t.Fatalf("HBM peak %d exceeded budget %d", peak, env.mg.HBMBudget())
	}
	if aud := env.mg.Auditor(); aud != nil && !aud.Ok() {
		t.Fatalf("auditor recorded violations: %v", aud.Err())
	}
}

func TestEndToEndStrategies(t *testing.T) {
	// Working set: 12 chares x 512 MB = 6 GB against a 3 GB budget —
	// data must cycle through HBM.
	for _, mode := range []Mode{SingleIO, NoIO, MultiIO} {
		t.Run(mode.String(), func(t *testing.T) {
			env := newEnv(t, 4, DefaultOptions(mode))
			app := buildApp(env, 12, 512*1024*1024, 3, nil)
			app.run(t)
			assertQuiescent(t, env)
			if env.mg.Stats.Fetches == 0 {
				t.Fatal("no fetches happened despite out-of-core working set")
			}
			if env.mg.Stats.Evictions == 0 {
				t.Fatal("no evictions happened")
			}
			if env.rt.Stats.TasksExecuted != 12*3 {
				t.Fatalf("executed %d tasks, want 36", env.rt.Stats.TasksExecuted)
			}
		})
	}
}

func TestWorkingSetFitsNoEvictionsNeeded(t *testing.T) {
	// 4 chares x 512 MB = 2 GB fits the 3 GB budget; with eager
	// eviction blocks still bounce, but with lazy eviction each block
	// is fetched exactly once.
	opts := DefaultOptions(MultiIO)
	opts.EvictLazily = true
	env := newEnv(t, 4, opts)
	app := buildApp(env, 4, 512*1024*1024, 5, nil)
	app.run(t)
	assertQuiescent(t, env)
	if env.mg.Stats.Fetches != 4 {
		t.Fatalf("fetches = %d, want 4 (one per block, then resident)", env.mg.Stats.Fetches)
	}
	if env.mg.Stats.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 under lazy eviction with fitting WS", env.mg.Stats.Evictions)
	}
}

func TestEagerEvictionCyclesBlocks(t *testing.T) {
	// Under NoIO, eviction is synchronous in post-processing, before
	// the next iteration's messages exist: every task completion
	// evicts its block, which must be re-fetched next iteration.
	env := newEnv(t, 4, DefaultOptions(NoIO))
	app := buildApp(env, 4, 512*1024*1024, 5, nil)
	app.run(t)
	assertQuiescent(t, env)
	// Some completions race the barrier broadcast (whose TaskCreated
	// lookahead then retains the block), so the exact count varies,
	// but well over half the tasks must re-fetch.
	if f := env.mg.Stats.Fetches; f <= 10 || f > 20 {
		t.Fatalf("fetches = %d, want in (10,20] under eager eviction", f)
	}
	if env.mg.Stats.Evictions < 8 {
		t.Fatalf("evictions = %d, want >= 8", env.mg.Stats.Evictions)
	}
}

func TestAsyncEvictionSkipsBlocksWithQueuedUses(t *testing.T) {
	// Under MultiIO, eviction is asynchronous: by the time the IO
	// thread processes the eviction request, the next iteration's
	// task has been enqueued and its dependence lookahead
	// (pendingUses) keeps the block resident — one fetch per block
	// for the whole run.
	env := newEnv(t, 4, DefaultOptions(MultiIO))
	app := buildApp(env, 4, 512*1024*1024, 5, nil)
	app.run(t)
	assertQuiescent(t, env)
	if env.mg.Stats.Fetches != 4 {
		t.Fatalf("fetches = %d, want 4 (lookahead keeps blocks resident)", env.mg.Stats.Fetches)
	}
}

func TestSharedReadOnlyBlocksNotEvictedWhileInUse(t *testing.T) {
	// All chares share one read-only block (matmul-style reuse): the
	// refcount keeps it resident while any task is scheduled on it.
	env := newEnv(t, 4, DefaultOptions(SingleIO))
	shared := env.mg.NewHandle("sharedRO", 1*gb)
	app := buildApp(env, 8, 128*1024*1024, 2, []*Handle{shared})
	app.run(t)
	assertQuiescent(t, env)
	// The shared block is fetched far fewer times than it is used:
	// reuse across the 8 tasks per iteration.
	if shared.Fetches >= 16 {
		t.Fatalf("shared block fetched %d times for 16 uses — no reuse", shared.Fetches)
	}
	if shared.Fetches < 1 {
		t.Fatal("shared block never fetched")
	}
}

func TestSingleIOFastPathInline(t *testing.T) {
	// Second iteration under lazy eviction finds all blocks resident:
	// the fast path runs tasks inline without staging.
	opts := DefaultOptions(SingleIO)
	opts.EvictLazily = true
	env := newEnv(t, 2, opts)
	app := buildApp(env, 2, 256*1024*1024, 3, nil)
	app.run(t)
	if env.mg.Stats.TasksInline == 0 {
		t.Fatal("fast path never taken despite resident blocks")
	}
	assertQuiescent(t, env)
}

func TestOversizedTaskPanics(t *testing.T) {
	env := newEnv(t, 1, DefaultOptions(SingleIO))
	h := env.mg.NewHandle("huge", 10*gb) // over the 3 GB budget
	arr := env.rt.NewArray("a", 1, func(i int) charm.Chare { return nil }, nil)
	kern := arr.Register(charm.Entry{
		Name:     "kern",
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{{Handle: h, Mode: charm.ReadWrite}}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {},
	})
	env.rt.Main(func(p *sim.Proc) { arr.Send(-1, 0, kern, nil) })
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "HBM budget") {
			t.Fatalf("oversized task panic = %v", r)
		}
	}()
	env.e.RunAll()
}

func TestKernelHBMvsDDRRatio(t *testing.T) {
	// Fig. 2's microcosm: the same kernel on an HBM-resident block vs
	// a DDR-resident block, many cores at once.
	measure := func(baselineHBM bool) sim.Time {
		mode := Baseline
		if !baselineHBM {
			mode = DDROnly
		}
		env := newEnv(t, 8, DefaultOptions(mode))
		app := buildApp(env, 8, 256*1024*1024, 1, nil)
		app.run(t)
		return app.iterEnd[0]
	}
	hbm := measure(true)
	ddr := measure(false)
	ratio := float64(ddr) / float64(hbm)
	if ratio < 2.0 {
		t.Fatalf("DDR/HBM kernel time ratio %.2f, want >= 2 (paper: ~3x)", ratio)
	}
}

func TestKernelFlopFloor(t *testing.T) {
	env := newEnv(t, 1, DefaultOptions(Baseline))
	h := env.mg.NewHandle("b", 1024*1024) // 1 MB: memory time tiny
	var dur sim.Time
	env.e.Spawn("k", func(p *sim.Proc) {
		dur = env.mg.RunKernel(p,
			[]charm.DataDep{{Handle: h, Mode: charm.ReadOnly}},
			KernelSpec{Flops: 20e9}) // exactly 1 s at 20 GF/s
	})
	env.e.RunAll()
	if dur < 0.999 || dur > 1.001 {
		t.Fatalf("compute-bound kernel took %v, want ~1s", dur)
	}
}

func TestKernelTrafficScale(t *testing.T) {
	env := newEnv(t, 1, DefaultOptions(DDROnly))
	h := env.mg.NewHandle("b", 1*gb)
	run := func(scale float64) sim.Time {
		var dur sim.Time
		env.e.Spawn("k", func(p *sim.Proc) {
			dur = env.mg.RunKernel(p,
				[]charm.DataDep{{Handle: h, Mode: charm.ReadOnly}},
				KernelSpec{TrafficScale: scale})
		})
		env.e.RunAll()
		return dur
	}
	d1, d3 := run(1), run(3)
	if d3 < 2.9*d1 || d3 > 3.1*d1 {
		t.Fatalf("traffic scale 3 gave %v vs %v (want 3x)", d3, d1)
	}
}

func TestKernelReadWriteOverlap(t *testing.T) {
	// A ReadWrite dep streams reads and writes concurrently, so the
	// kernel takes about max(read, write) time, not the sum.
	env := newEnv(t, 1, DefaultOptions(DDROnly))
	h := env.mg.NewHandle("b", 1*gb)
	var dur sim.Time
	env.e.Spawn("k", func(p *sim.Proc) {
		dur = env.mg.RunKernel(p,
			[]charm.DataDep{{Handle: h, Mode: charm.ReadWrite}},
			KernelSpec{TrafficScale: 1})
	})
	env.e.RunAll()
	// 1 GB read and 1 GB write at a 40 GB/s core cap each: ~1/40 s
	// overlapped; serial would be ~1/20 s.
	want := 1.0 / 40.0
	if dur < want*0.99 || dur > want*1.3 {
		t.Fatalf("RW kernel took %v, want ~%v (overlapped)", dur, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(MultiIO))
	app := buildApp(env, 4, 512*1024*1024, 2, nil)
	app.run(t)
	st := env.mg.Stats
	if st.BytesFetched != st.Fetches*512*1024*1024 {
		t.Fatalf("fetch byte accounting inconsistent: %v fetches, %v bytes", st.Fetches, st.BytesFetched)
	}
	if st.FetchTime <= 0 || st.EvictTime <= 0 {
		t.Fatal("movement time not accounted")
	}
	if st.TasksStaged == 0 {
		t.Fatal("no tasks staged under MultiIO")
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (sim.Time, int64) {
		e := sim.NewEngine(7)
		m := tinySpec().MustBuild(e)
		rt := charm.NewRuntime(m, 4, charm.DefaultParams(), nil)
		mg := NewManager(rt, DefaultOptions(MultiIO))
		env := &env{e: e, m: m, rt: rt, mg: mg}
		app := buildApp(env, 12, 512*1024*1024, 3, nil)
		app.env.rt.Main(func(p *sim.Proc) { app.arr.Broadcast(-1, app.kern, nil) })
		e.RunAll()
		defer e.Close()
		if !app.done {
			t.Fatal("deadlock")
		}
		return app.iterEnd[len(app.iterEnd)-1], mg.Stats.Fetches
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
}

func TestTracerSeesFetchAndIdle(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(NoIO))
	app := buildApp(env, 6, 512*1024*1024, 2, nil)
	app.run(t)
	s := env.tr.Summarize()
	if s.Totals[projections.Fetch] <= 0 {
		t.Fatal("NoIO sync fetches must appear on worker lanes")
	}
	if s.Totals[projections.Compute] <= 0 {
		t.Fatal("no compute recorded")
	}
}

func TestMultiIOFetchOnIOThreadLane(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(MultiIO))
	app := buildApp(env, 6, 512*1024*1024, 2, nil)
	app.run(t)
	s := env.tr.Summarize()
	// Lanes 0..1 are workers, lanes 2..3 the IO threads; fetch time
	// must land on IO lanes, not worker lanes.
	var workerFetch, ioFetch sim.Time
	for pe, cats := range s.PerPE {
		if pe < 2 {
			workerFetch += cats[projections.Fetch]
		} else {
			ioFetch += cats[projections.Fetch]
		}
	}
	if ioFetch <= 0 {
		t.Fatal("no fetch time on IO lanes")
	}
	if workerFetch > 0 {
		t.Fatalf("async strategy charged %v fetch to workers", workerFetch)
	}
}

func TestUnpinUnderflowPanics(t *testing.T) {
	env := newEnv(t, 1, DefaultOptions(SingleIO))
	h := env.mg.NewHandle("b", 1024)
	defer func() {
		if recover() == nil {
			t.Fatal("unpin underflow did not panic")
		}
	}()
	h.unpin()
}

func TestForeignHandlePanics(t *testing.T) {
	env := newEnv(t, 1, DefaultOptions(SingleIO))
	env2 := newEnv(t, 1, DefaultOptions(SingleIO))
	h2 := env2.mg.NewHandle("foreign", 1024)
	arr := env.rt.NewArray("a", 1, func(i int) charm.Chare { return nil }, nil)
	kern := arr.Register(charm.Entry{
		Name:     "kern",
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{{Handle: h2, Mode: charm.ReadOnly}}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {},
	})
	env.rt.Main(func(p *sim.Proc) { arr.Send(-1, 0, kern, nil) })
	defer func() {
		if recover() == nil {
			t.Fatal("foreign handle did not panic")
		}
	}()
	env.e.RunAll()
}

func TestNoIOCapacityStallUsesWaitQueues(t *testing.T) {
	// 3 PEs, blocks of 1.2 GB against a 3 GB budget, 6 chares: two
	// running tasks hold 2.4 GB, so the third PE's first delivery
	// cannot stage inline and parks in its wait queue, to be staged
	// later by a completing worker on another PE (the cross-PE
	// helping path).
	env := newEnv(t, 3, DefaultOptions(NoIO))
	app := buildApp(env, 6, 6*gb/5, 2, nil)
	app.run(t)
	assertQuiescent(t, env)
	if env.mg.Stats.TasksStaged == 0 {
		t.Fatal("no tasks went through the NoIO wait queues despite capacity pressure")
	}
	if env.mg.Stats.TasksInline == 0 {
		t.Fatal("no tasks staged inline")
	}
}

func TestNoIOFIFOUnderPressure(t *testing.T) {
	// With a queue already formed, later arrivals must queue behind
	// it rather than overtake (the admit fast path is disabled while
	// the wait queue is non-empty).
	env := newEnv(t, 1, DefaultOptions(NoIO))
	app := buildApp(env, 5, 1*gb, 1, nil)
	app.run(t)
	assertQuiescent(t, env)
	if env.rt.Stats.TasksExecuted != 5 {
		t.Fatalf("executed %d", env.rt.Stats.TasksExecuted)
	}
}

func TestAccessors(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(SingleIO))
	h := env.mg.NewHandle("acc", 4096)
	if h.BlockName() != "acc" || h.Size() != 4096 {
		t.Fatal("handle accessors")
	}
	if h.Buffer() == nil || h.Buffer().Size() != 4096 {
		t.Fatal("handle buffer")
	}
	if env.mg.Runtime() != env.rt {
		t.Fatal("manager runtime")
	}
	if env.mg.Mode() != SingleIO {
		t.Fatal("manager mode")
	}
	if env.mg.ResidentBytes() != 0 {
		t.Fatal("nothing should be resident yet")
	}
	if env.mg.Options().Mode != SingleIO {
		t.Fatal("options")
	}
}

func TestResidentBytesTracksHBM(t *testing.T) {
	env := newEnv(t, 1, DefaultOptions(Baseline))
	env.mg.NewHandle("a", 1*gb) // baseline -> HBM
	if env.mg.ResidentBytes() != 1*gb {
		t.Fatalf("resident %d, want 1GB", env.mg.ResidentBytes())
	}
}
