package core

import "github.com/hetmem/hetmem/internal/sim"

// noIO is the paper's "Multiple queues, no IO thread" strategy: fetch
// and eviction are performed synchronously by the worker threads
// themselves. In pre-processing a task fetches its own dependences if
// HBM has room (blocking its PE — the overhead Fig. 6a shows before
// each kernel); otherwise it joins the PE's wait queue. In
// post-processing a task evicts its own dead dependences and then uses
// the freed space to stage a waiting task.
type noIO struct {
	m   *Manager
	wqs []*waitQueue
}

func newNoIO(m *Manager) *noIO {
	s := &noIO{m: m}
	for i := 0; i < m.rt.NumPEs(); i++ {
		s.wqs = append(s.wqs, newWaitQueue(m.rt.Params().LockCost))
	}
	return s
}

func (s *noIO) name() string { return "no-io" }

func (s *noIO) admit(p *sim.Proc, ot *OOCTask) bool {
	pe := ot.pe.ID()
	// "When a task arrives on a PE, if there is sufficient allocation
	// space in HBM, it fetches its own data in the preprocessing step"
	// — synchronous: the fetch time lands on the worker's own lane.
	// FIFO fairness: if older tasks already wait on this PE, queue
	// behind them instead of overtaking.
	if s.wqs[pe].len(p) == 0 && ot.stage(p, pe) {
		s.m.Stats.TasksInline++
		return false
	}
	depth := s.wqs[pe].push(p, ot)
	s.m.met.QueueDepth(pe, depth)
	s.m.Stats.TasksStaged++
	return true
}

func (s *noIO) complete(p *sim.Proc, ot *OOCTask) {
	pe := ot.pe.ID()
	// Synchronous eviction of the task's own dead dependences.
	ot.release(p, pe)
	// "After evicting its own data, it checks in the wait queue on
	// its PE, to see if there are any tasks waiting to be scheduled."
	s.drain(p, s.wqs[pe])
	// Liveness beyond the paper's prose: a PE whose tasks are all
	// parked in its wait queue has no completions of its own to stage
	// them, so a completing worker that finds its own queue empty
	// helps other PEs' queues (documented deviation; without it the
	// tail of an iteration can deadlock when evictions happen only on
	// PEs with empty queues).
	if s.wqs[pe].len(p) == 0 {
		for i := range s.wqs {
			if i != pe {
				s.drain(p, s.wqs[i])
			}
		}
	}
}

// queued implements the watchdog's stuck-task snapshot.
func (s *noIO) queued() [][]*OOCTask {
	out := make([][]*OOCTask, len(s.wqs))
	for i, wq := range s.wqs {
		out[i] = wq.quiescentTasks()
	}
	return out
}

// scanWaiting visits every wait-queued task under the queue locks.
func (s *noIO) scanWaiting(p *sim.Proc, visit func(pos int, ot *OOCTask)) {
	for _, wq := range s.wqs {
		wq.scan(p, visit)
	}
}

// drain stages as many waiting tasks from wq as capacity allows,
// scheduling each onto its own PE's run queue.
func (s *noIO) drain(p *sim.Proc, wq *waitQueue) {
	for {
		wot := wq.pop(p)
		if wot == nil {
			return
		}
		if wot.stage(p, wot.pe.ID()) {
			wot.Staged = true
			wot.pe.PushRun(p, wot.t)
			continue
		}
		wq.pushFront(p, wot)
		return
	}
}
