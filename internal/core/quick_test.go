package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/sim"
)

// oocPlan is a random out-of-core workload: chare count, block sizes,
// iteration count, sharing pattern, strategy and eviction policy.
type oocPlan struct {
	mode     Mode
	lazy     bool
	numPEs   int
	chares   int
	blockMB  int
	iters    int
	sharedMB int // 0 = no shared read-only block
}

// Generate implements quick.Generator.
func (oocPlan) Generate(r *rand.Rand, size int) reflect.Value {
	modes := []Mode{SingleIO, NoIO, MultiIO}
	p := oocPlan{
		mode:    modes[r.Intn(len(modes))],
		lazy:    r.Intn(2) == 0,
		numPEs:  1 + r.Intn(4),
		chares:  1 + r.Intn(12),
		blockMB: 32 * (1 + r.Intn(8)), // 32..256 MB
		iters:   1 + r.Intn(3),
	}
	if r.Intn(2) == 0 {
		p.sharedMB = 64 * (1 + r.Intn(4))
	}
	return reflect.ValueOf(p)
}

// TestQuickOOCInvariants: for any random workload and strategy, the
// application terminates with every task executed, the HBM budget
// respected at its peak, all reference counts and claims at zero, no
// block stuck in a transitional state, and the reservation counter
// drained.
func TestQuickOOCInvariants(t *testing.T) {
	check := func(plan oocPlan) bool {
		e := sim.NewEngine(1234)
		mach := tinySpec().MustBuild(e)
		rt := charm.NewRuntime(mach, plan.numPEs, charm.DefaultParams(), nil)
		opts := DefaultOptions(plan.mode)
		opts.EvictLazily = plan.lazy
		opts.Audit = true
		mg := NewManager(rt, opts)
		defer e.Close()

		var shared []*Handle
		if plan.sharedMB > 0 {
			shared = append(shared, mg.NewHandle("shared", int64(plan.sharedMB)<<20))
		}
		env := &env{e: e, m: mach, rt: rt, mg: mg}
		app := buildApp(env, plan.chares, int64(plan.blockMB)<<20, plan.iters, shared)

		// A single task's dependences must fit the budget, or the
		// manager correctly panics; skip impossible plans.
		if int64(plan.blockMB+plan.sharedMB)<<20 > mg.HBMBudget() {
			return true
		}

		app.env.rt.Main(func(p *sim.Proc) { app.arr.Broadcast(-1, app.kern, nil) })
		e.RunAll()

		if !app.done {
			return false // deadlock
		}
		if rt.Stats.TasksExecuted != int64(plan.chares*plan.iters) {
			return false
		}
		for _, h := range mg.Handles() {
			if h.Refs() != 0 || h.claims != 0 || h.pendingUses != 0 {
				return false
			}
			if h.State() == Fetching || h.State() == Evicting {
				return false
			}
		}
		if mg.reserved != 0 {
			return false
		}
		if mach.HBM().PeakUsed > mach.HBM().Cap-opts.HBMReserve {
			return false
		}
		// Byte accounting is consistent.
		st := mg.Stats
		if st.BytesFetched < 0 || st.BytesEvicted > st.BytesFetched {
			return false
		}
		// The auditor ran through the whole workload and saw nothing.
		if !mg.Auditor().Ok() {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism: any plan run twice produces identical end
// times and fetch counts.
func TestQuickDeterminism(t *testing.T) {
	run := func(plan oocPlan) (sim.Time, int64, bool) {
		e := sim.NewEngine(7)
		mach := tinySpec().MustBuild(e)
		rt := charm.NewRuntime(mach, plan.numPEs, charm.DefaultParams(), nil)
		opts := DefaultOptions(plan.mode)
		opts.EvictLazily = plan.lazy
		mg := NewManager(rt, opts)
		defer e.Close()
		if int64(plan.blockMB)<<20 > mg.HBMBudget() {
			return 0, 0, false
		}
		env := &env{e: e, m: mach, rt: rt, mg: mg}
		app := buildApp(env, plan.chares, int64(plan.blockMB)<<20, plan.iters, nil)
		app.env.rt.Main(func(p *sim.Proc) { app.arr.Broadcast(-1, app.kern, nil) })
		e.RunAll()
		return e.Now(), mg.Stats.Fetches, app.done
	}
	check := func(plan oocPlan) bool {
		t1, f1, ok1 := run(plan)
		t2, f2, ok2 := run(plan)
		return ok1 == ok2 && t1 == t2 && f1 == f2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
