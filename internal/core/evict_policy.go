package core

import (
	"fmt"
	"sort"

	"github.com/hetmem/hetmem/internal/sim"
)

// EvictPolicy orders eviction candidates: given the dead resident
// blocks (InHBM, unreferenced, unclaimed), Rank returns them
// best-victim-first. makeRoom evicts in that order until the requested
// capacity fits, so the policy decides which resident data is bounced
// to DDR under pressure — and therefore how much of it must be fetched
// back (§IV's eviction step, generalised from the implicit
// declaration-order reclaim of the original runtime).
//
// Implementations must return a permutation of cands: makeRoom already
// filtered out in-use, claimed and in-transition blocks, and eviction
// re-checks every condition under the block lock, so a policy only
// chooses order — it can neither add victims nor veto them.
type EvictPolicy interface {
	// Name is the stable identifier used in flags, metrics and
	// snapshots.
	Name() string
	// Rank orders cands best-victim-first. cands arrives in
	// declaration order and may be reordered in place.
	Rank(v PolicyView, cands []*Handle) []*Handle
	// DemoteTarget picks the tier a victim moves to on chains deeper
	// than two: the bottom of the chain, or the tier just below HBM.
	// On a two-tier machine the two coincide, so every policy behaves
	// identically there.
	DemoteTarget() DemoteTarget
}

// DemoteTarget is an EvictPolicy's landing tier for evictions.
type DemoteTarget int

const (
	// DemoteBottom sends victims to the deepest tier — the paper's
	// "back to far memory" rule, and the cheapest write when the
	// victim is truly dead.
	DemoteBottom DemoteTarget = iota
	// DemoteNext sends victims one level below HBM, so a block that
	// returns pays the cheapest possible miss. Used by Lookahead,
	// which has the dependence information to know most of its
	// victims return.
	DemoteNext
)

// String names the target for tables and snapshots.
func (t DemoteTarget) String() string {
	if t == DemoteNext {
		return "next"
	}
	return "bottom"
}

// NoNextUse is the lookahead distance of a block no enqueued task
// declares as a dependence.
const NoNextUse = int(^uint(0) >> 1)

// PolicyView is the read-only runtime state a policy may consult.
type PolicyView struct {
	// Now is the current virtual time.
	Now sim.Time
	// NextUse reports how soon a block is needed again by declared
	// dependences: 0 means a created-or-staged task needs it
	// imminently, k > 0 means its first consumer sits k deep in a
	// wait queue, NoNextUse means no enqueued task lists it. The
	// first call walks the strategy's wait queues under their locks;
	// the distances are then cached for the rest of the ranking.
	NextUse func(h *Handle) int
}

// The built-in policies, as comparable singletons so Options values
// still compare with ==.
var (
	// DeclOrder evicts dead blocks in declaration order, preferring
	// blocks with no pending uses. Pass 1 of makeRoom is byte-for-byte
	// the original runtime's reclaim; the preference fixes the forced
	// pass, which used to evict a pending-use block even when a
	// later-declared truly-dead block would have freed the space.
	DeclOrder EvictPolicy = declOrder{}
	// LRU evicts the block whose last completed use is oldest in
	// virtual time (Handle.lastUse, stamped at task completion), the
	// classic recency heuristic.
	LRU EvictPolicy = lru{}
	// Lookahead evicts the block whose next declared use is farthest
	// away, consulting pendingUses and the wait queues — Belady's rule
	// over the dependence information the runtime already has.
	Lookahead EvictPolicy = lookahead{}
)

// EvictPolicies lists the built-in policies in presentation order.
func EvictPolicies() []EvictPolicy {
	return []EvictPolicy{DeclOrder, LRU, Lookahead}
}

// ParseEvictPolicy resolves a policy name from a flag value.
func ParseEvictPolicy(name string) (EvictPolicy, error) {
	for _, p := range EvictPolicies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: unknown eviction policy %q (want decl, lru or lookahead)", name)
}

type declOrder struct{}

func (declOrder) Name() string { return "decl" }

// Declaration order knows nothing about reuse, so victims drop all the
// way down (the original runtime's rule).
func (declOrder) DemoteTarget() DemoteTarget { return DemoteBottom }

func (declOrder) Rank(v PolicyView, cands []*Handle) []*Handle {
	// Stable partition: truly-dead blocks first, pending-use blocks
	// last, declaration order within each class (cands arrives in
	// declaration order).
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].pendingUses == 0 && cands[j].pendingUses > 0
	})
	return cands
}

type lru struct{}

func (lru) Name() string { return "lru" }

// Recency says a cold block stays cold; demote fully.
func (lru) DemoteTarget() DemoteTarget { return DemoteBottom }

func (lru) Rank(v PolicyView, cands []*Handle) []*Handle {
	// Oldest last use first; declaration order breaks ties (blocks
	// never used complete with lastUse zero and go first).
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].lastUse < cands[j].lastUse
	})
	return cands
}

type lookahead struct{}

func (lookahead) Name() string { return "lookahead" }

// Lookahead evicts exactly the blocks whose next use is farthest — but
// in the cyclic programs this runtime hosts they do come back, so it
// parks victims one tier down where the refetch edge is cheapest. The
// advantage over full demotion grows with every tier the chain adds.
func (lookahead) DemoteTarget() DemoteTarget { return DemoteNext }

func (lookahead) Rank(v PolicyView, cands []*Handle) []*Handle {
	// Farthest next declared use first. Distances are resolved once
	// up front — NextUse may take queue locks, and a comparator must
	// not reorder mid-sort as the world advances under it.
	//
	// Ties (NoNextUse in particular) break by last use, most recent
	// first: the queues only show the current iteration, and in the
	// iterative programs this runtime hosts, a block released longest
	// ago is the one coming back soonest next iteration. Declaration
	// order breaks ties among dead blocks to Belady's worst case on a
	// cyclic sweep — every victim is refetched before the blocks kept.
	dist := make([]int, len(cands))
	for i, h := range cands {
		dist[i] = v.NextUse(h)
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if dist[idx[a]] != dist[idx[b]] {
			return dist[idx[a]] > dist[idx[b]]
		}
		return cands[idx[a]].lastUse > cands[idx[b]].lastUse
	})
	out := make([]*Handle, len(cands))
	for i, j := range idx {
		out[i] = cands[j]
	}
	return out
}
