package core

import (
	"testing"
)

func TestParseEvictPolicy(t *testing.T) {
	for _, p := range EvictPolicies() {
		got, err := ParseEvictPolicy(p.Name())
		if err != nil || got != p {
			t.Errorf("ParseEvictPolicy(%q) = %v, %v; want %v", p.Name(), got, err, p)
		}
	}
	if _, err := ParseEvictPolicy("belady"); err == nil {
		t.Error("ParseEvictPolicy accepted an unknown name")
	}
}

func TestEvictPolicyRejectedOnStaticModes(t *testing.T) {
	for _, mode := range []Mode{DDROnly, Baseline} {
		o := DefaultOptions(mode)
		o.EvictPolicy = Lookahead
		if err := o.Validate(); err == nil {
			t.Errorf("mode %v accepted an eviction policy but never evicts", mode)
		}
	}
}

// mkCands builds detached handles with the given pendingUses and
// lastUse stamps, named a, b, c, ... in declaration order.
func mkCands(env *env, pending []int, lastUse []float64) []*Handle {
	cands := make([]*Handle, len(pending))
	for i := range pending {
		h := env.mg.NewHandle(string(rune('a'+i)), 1)
		h.pendingUses = pending[i]
		h.lastUse = lastUse[i]
		cands[i] = h
	}
	return cands
}

func names(hs []*Handle) string {
	var s string
	for _, h := range hs {
		s += h.name
	}
	return s
}

func TestDeclOrderRankPartitionsDeadFirst(t *testing.T) {
	// Satellite of the forced-pass fix: a later-declared dead block
	// must rank ahead of an earlier-declared pending one, while
	// declaration order is kept within each class.
	env := newEnv(t, 2, DefaultOptions(MultiIO))
	cands := mkCands(env, []int{1, 0, 2, 0}, []float64{0, 0, 0, 0})
	if got := names(DeclOrder.Rank(PolicyView{}, cands)); got != "bdac" {
		t.Fatalf("DeclOrder rank = %q, want bdac", got)
	}
}

func TestLRURankOldestFirst(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(MultiIO))
	cands := mkCands(env, []int{0, 0, 0}, []float64{5, 1, 3})
	if got := names(LRU.Rank(PolicyView{}, cands)); got != "bca" {
		t.Fatalf("LRU rank = %q, want bca", got)
	}
}

func TestLookaheadRankFarthestFirst(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(MultiIO))
	// a: next use 2 deep, b: none visible, c: imminent, d: none
	// visible but released after b. Want: most-recently-released dead
	// block first (cyclic prior), then by distance descending.
	cands := mkCands(env, []int{1, 0, 1, 0}, []float64{0, 1, 0, 2})
	dist := map[string]int{"a": 2, "c": 0}
	v := PolicyView{NextUse: func(h *Handle) int {
		if h.pendingUses == 0 {
			return NoNextUse
		}
		return dist[h.name]
	}}
	if got := names(Lookahead.Rank(v, cands)); got != "dbac" {
		t.Fatalf("Lookahead rank = %q, want dbac", got)
	}
}

// TestPoliciesEndToEnd runs an out-of-core working set under every
// policy and every movement mode with the invariant auditor on: no
// policy may break conservation, evict an in-use or claimed block
// (the auditor and assertQuiescent would catch both), or strand the
// run. Per-policy metrics must attribute the evictions.
func TestPoliciesEndToEnd(t *testing.T) {
	for _, mode := range []Mode{SingleIO, NoIO, MultiIO} {
		for _, pol := range EvictPolicies() {
			t.Run(mode.String()+"/"+pol.Name(), func(t *testing.T) {
				opts := DefaultOptions(mode)
				opts.EvictLazily = true
				opts.EvictPolicy = pol
				env := newEnv(t, 4, opts)
				app := buildApp(env, 12, 512*1024*1024, 3, nil)
				app.run(t)
				assertQuiescent(t, env)
				if env.mg.Stats.Evictions == 0 {
					t.Fatal("no evictions despite out-of-core working set")
				}
				snap, ok := env.mg.AuditSnapshot()
				if !ok {
					t.Fatal("no audit snapshot")
				}
				if snap.EvictPolicy != pol.Name() {
					t.Fatalf("snapshot policy %q, want %q", snap.EvictPolicy, pol.Name())
				}
				pc := snap.PolicyStats[pol.Name()]
				if pc.Evictions != env.mg.Stats.Evictions {
					t.Fatalf("policy counters saw %d evictions, manager %d",
						pc.Evictions, env.mg.Stats.Evictions)
				}
				if pc.Refetches != env.mg.Stats.Refetches {
					t.Fatalf("policy counters saw %d refetches, manager %d",
						pc.Refetches, env.mg.Stats.Refetches)
				}
			})
		}
	}
}

// TestRetuneSwitchesEvictPolicy: the policy is a dynamic knob — a
// Retune mid-quiescence changes which policy subsequent reclaims use
// and how their evictions are attributed.
func TestRetuneSwitchesEvictPolicy(t *testing.T) {
	opts := DefaultOptions(MultiIO)
	opts.EvictLazily = true
	env := newEnv(t, 4, opts)
	app := buildApp(env, 12, 512*1024*1024, 3, nil)
	app.onBarrier = func() {
		if app.curIter == 1 {
			o := env.mg.Options()
			o.EvictPolicy = Lookahead
			if err := env.mg.Retune(o); err != nil {
				t.Errorf("retune: %v", err)
			}
		}
	}
	app.run(t)
	assertQuiescent(t, env)
	snap, ok := env.mg.AuditSnapshot()
	if !ok {
		t.Fatal("no audit snapshot")
	}
	if snap.EvictPolicy != Lookahead.Name() {
		t.Fatalf("final policy %q, want lookahead", snap.EvictPolicy)
	}
	decl := snap.PolicyStats[DeclOrder.Name()]
	look := snap.PolicyStats[Lookahead.Name()]
	if decl.Evictions == 0 || look.Evictions == 0 {
		t.Fatalf("want evictions attributed to both policies, got decl=%d lookahead=%d",
			decl.Evictions, look.Evictions)
	}
	if decl.Evictions+look.Evictions != env.mg.Stats.Evictions {
		t.Fatalf("attribution split %d+%d != total %d",
			decl.Evictions, look.Evictions, env.mg.Stats.Evictions)
	}
}

// TestHandlesReturnsCopy: mutating the returned slice must not corrupt
// the manager's internal registry (it used to alias it).
func TestHandlesReturnsCopy(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(MultiIO))
	a := env.mg.NewHandle("a", 1)
	env.mg.NewHandle("b", 1)
	hs := env.mg.Handles()
	if len(hs) != 2 {
		t.Fatalf("Handles() = %d entries, want 2", len(hs))
	}
	hs[0] = nil
	hs = append(hs[:1], hs[1:]...)
	again := env.mg.Handles()
	if len(again) != 2 || again[0] != a {
		t.Fatal("mutating the returned slice corrupted the registry")
	}
}
