package core

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/sim"
)

// depRef is one resolved data dependence of a task.
type depRef struct {
	h    *Handle
	mode charm.AccessMode
}

// OOCTask is the paper's out-of-core task wrapper: the object, its
// input message and its annotated data dependences, encapsulated during
// pre-processing.
type OOCTask struct {
	m  *Manager
	pe *charm.PE
	t  *charm.Task

	deps     []depRef
	pinned   []bool
	claimed  []bool // this attempt holds a claim on the dep's block
	reserved []bool // this attempt reserved capacity for the dep
	depBytes int64

	// Staged is set once the task has been admitted to a run queue
	// (diagnostics).
	Staged bool
}

// newOOCTask resolves a charm task's declared dependences into managed
// handles.
func newOOCTask(m *Manager, pe *charm.PE, t *charm.Task) *OOCTask {
	ot := &OOCTask{m: m, pe: pe, t: t}
	for _, d := range t.Deps {
		h, ok := d.Handle.(*Handle)
		if !ok {
			panic(fmt.Sprintf("core: task %s depends on foreign handle %T", t, d.Handle))
		}
		if h.mgr != m {
			panic(fmt.Sprintf("core: task %s depends on handle %q from another manager", t, h.name))
		}
		ot.deps = append(ot.deps, depRef{h: h, mode: d.Mode})
		ot.depBytes += h.size
	}
	ot.pinned = make([]bool, len(ot.deps))
	ot.claimed = make([]bool, len(ot.deps))
	ot.reserved = make([]bool, len(ot.deps))
	return ot
}

// Task returns the wrapped charm task.
func (ot *OOCTask) Task() *charm.Task { return ot.t }

// PE returns the task's home PE.
func (ot *OOCTask) PE() *charm.PE { return ot.pe }

// DepBytes returns the total size of the task's dependences.
func (ot *OOCTask) DepBytes() int64 { return ot.depBytes }

// ready reports whether every dependence is resident in HBM right now.
func (ot *OOCTask) ready() bool {
	for _, d := range ot.deps {
		if !d.h.resident() {
			return false
		}
	}
	return true
}

// pinAll pins every dependence (used on the fast path when all blocks
// are already resident). Pins must be balanced by unpinAll.
func (ot *OOCTask) pinAll() {
	for i, d := range ot.deps {
		if !ot.pinned[i] {
			d.h.pin()
			ot.pinned[i] = true
		}
	}
}

// unpinAll releases every pin the task holds.
func (ot *OOCTask) unpinAll() {
	for i, d := range ot.deps {
		if ot.pinned[i] {
			d.h.unpin()
			ot.pinned[i] = false
		}
	}
}

// stage makes all dependences resident and pinned, or none at all.
//
// Protocol, all in one atomic virtual-time section:
//  1. pin every block already in HBM (free — the space is in use);
//  2. claim every non-resident block; the FIRST claimant of a block
//     reserves HBM capacity for it, later claimants count on that
//     fetch, so concurrent tasks sharing read-only blocks (matmul rows
//     and columns) do not multiply the capacity demand;
//  3. if the total reservation fails, back out completely (no pins, no
//     claims kept) and return false for a later retry.
//
// Then the fetch phase migrates the claimed blocks; fetching a block
// someone else is migrating just waits on its lock. Reserving before
// the first fetch means a task that starts fetching always finishes
// staging, so concurrent IO threads cannot deadlock holding partial
// dependence sets.
func (ot *OOCTask) stage(p *sim.Proc, lane int) bool {
	m := ot.m
	var need int64
	for i, d := range ot.deps {
		if ot.pinned[i] {
			continue
		}
		h := d.h
		if h.resident() {
			h.pin()
			ot.pinned[i] = true
			continue
		}
		ot.claimed[i] = true
		h.claims++
		m.aud.Claim(1)
		if h.claims == 1 {
			ot.reserved[i] = true
			need += h.size
		}
	}
	if need > 0 && !m.reserveCapacity(p, lane, need) {
		// Nothing was granted: clear bookkeeping without refunding.
		m.Stats.StageRetries++
		m.met.StageRetry()
		if m.ts != nil {
			m.ts.StageRetry(ot.pe.ID(), ot.t, need, m.hbm().Used(), m.reserved)
		}
		for j := range ot.deps {
			ot.dropClaim(j)
		}
		ot.unpinAll()
		return false
	}
	for i, d := range ot.deps {
		if ot.pinned[i] {
			continue
		}
		if err := m.fetch(p, lane, d.h, ot.reserved[i]); err != nil {
			// A non-reserved dep lost a capacity race (its original
			// claimant aborted). Refund untouched reservations and
			// back out. fetch already consumed dep i's reservation.
			ot.reserved[i] = false
			ot.backOut(i + 1)
			return false
		}
		d.h.pin()
		ot.pinned[i] = true
		ot.dropClaim(i)
	}
	// All pinned; claims were dropped as each block landed.
	return true
}

// dropClaim releases the staging claim on dep i, if held.
func (ot *OOCTask) dropClaim(i int) {
	if ot.claimed[i] {
		ot.deps[i].h.claims--
		ot.m.aud.Claim(-1)
		ot.claimed[i] = false
		ot.reserved[i] = false
	}
}

// backOut aborts a staging attempt: reservations for deps at index >=
// from are refunded (earlier ones were already consumed by fetch), and
// all pins and claims are dropped.
func (ot *OOCTask) backOut(from int) {
	for j := from; j < len(ot.deps); j++ {
		if ot.reserved[j] {
			ot.m.refundReservation(ot.deps[j].h.size)
		}
	}
	for j := range ot.deps {
		ot.dropClaim(j)
	}
	ot.unpinAll()
}

// release runs the post-processing eviction protocol: drop the task's
// pins, then evict every dependence whose reference count reached zero
// ("it evicts its own data dependences ... as long as they are not in
// use by other tasks, by checking the reference count"). Under lazy
// eviction (the memory-pool ablation) dead blocks stay resident.
func (ot *OOCTask) release(p *sim.Proc, lane int) {
	ot.unpinAll()
	if ot.m.opts.EvictLazily {
		return
	}
	for _, d := range ot.deps {
		if !d.h.InUse() {
			ot.m.evict(p, lane, d.h, false)
		}
	}
}

// waitQueue is a FIFO of staged tasks guarded by a virtual-time lock
// (the paper's per-PE wait queue; one instance total under the shared-
// queue ablation).
type waitQueue struct {
	mu    sim.Mutex
	tasks []*OOCTask
}

func newWaitQueue(lockCost sim.Time) *waitQueue {
	wq := &waitQueue{}
	wq.mu.AcquireCost = lockCost
	return wq
}

// push appends a task (worker side: "the worker thread locks the
// corresponding PE's wait queue and adds the task") and returns the
// resulting depth, so callers can record queue-depth metrics without a
// second lock round-trip.
func (wq *waitQueue) push(p *sim.Proc, ot *OOCTask) int {
	wq.mu.Lock(p)
	wq.tasks = append(wq.tasks, ot)
	n := len(wq.tasks)
	wq.mu.Unlock(p)
	return n
}

// pop removes and returns the first task, or nil when empty.
func (wq *waitQueue) pop(p *sim.Proc) *OOCTask {
	wq.mu.Lock(p)
	defer wq.mu.Unlock(p)
	if len(wq.tasks) == 0 {
		return nil
	}
	ot := wq.tasks[0]
	wq.tasks = wq.tasks[1:]
	return ot
}

// pushFront reinserts a partially staged task at the head so FIFO order
// is preserved across capacity stalls. Returns the resulting depth.
func (wq *waitQueue) pushFront(p *sim.Proc, ot *OOCTask) int {
	wq.mu.Lock(p)
	wq.tasks = append([]*OOCTask{ot}, wq.tasks...)
	n := len(wq.tasks)
	wq.mu.Unlock(p)
	return n
}

// len returns the queue length under the queue lock. Callers make real
// scheduling decisions from it (NoIO's FIFO-fairness gate, MultiIO's
// cross-PE kicks), so it must observe a consistent queue, and it pays
// the same lock cost every other queue operation does.
func (wq *waitQueue) len(p *sim.Proc) int {
	wq.mu.Lock(p)
	n := len(wq.tasks)
	wq.mu.Unlock(p)
	return n
}

// scan visits each queued task with its queue position under the queue
// lock (the Lookahead eviction policy's dependence walk). The callback
// must not touch this queue or block.
func (wq *waitQueue) scan(p *sim.Proc, visit func(pos int, ot *OOCTask)) {
	wq.mu.Lock(p)
	for i, ot := range wq.tasks {
		visit(i, ot)
	}
	wq.mu.Unlock(p)
}

// quiescentTasks snapshots the queue contents without the lock. Only
// the engine's quiesce hook may call it: with the event queue drained
// no process is running, so the unguarded read cannot race.
func (wq *waitQueue) quiescentTasks() []*OOCTask {
	return append([]*OOCTask(nil), wq.tasks...)
}
