package core

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/sim"
)

// singleIO is the paper's "Multiple queues, Single IO thread" strategy:
// one wait queue per PE (or one shared queue under the X2 ablation),
// served round-robin by a single IO thread that prefetches dependences
// and moves ready tasks to the PEs' run queues. Workers evict their own
// dependences in post-processing and wake the IO thread afterwards.
//
// The per-PE queues exist to avoid load imbalance: "with a single wait
// queue, it is possible that the IO thread prefetches data for n tasks
// on PE0 instead of fetching data for n tasks on n PEs". The X3
// ablation raises the thread count: every IO thread round-robins over
// all queues.
type singleIO struct {
	m   *Manager
	wqs []*waitQueue

	ioMu   sim.Mutex
	ioCond *sim.Cond
	// gen counts kicks. Each IO thread remembers the last generation it
	// served and re-runs a pass while gen has moved past it. A single
	// shared boolean is wrong with IOThreads > 1 (the X3 ablation): the
	// first thread to wake consumes the flag, and a sibling thread that
	// was mid-pass — holding a popped task it is about to push back —
	// re-waits even though the kick was meant for work it still owes,
	// losing the wakeup and stranding the task.
	gen uint64

	// active is the number of IO threads currently serving passes;
	// spawned is how many processes exist. setIOThreads retargets the
	// pool online (the adaptive controller's IOThreads knob): surplus
	// threads park on the condition variable, missing ones are spawned
	// on demand.
	active  int
	spawned int
}

func newSingleIO(m *Manager) *singleIO {
	s := &singleIO{m: m}
	s.ioMu.AcquireCost = m.rt.Params().LockCost
	s.ioCond = sim.NewCond(&s.ioMu)
	nq := m.rt.NumPEs()
	if m.opts.SharedWaitQueue {
		nq = 1
	}
	for i := 0; i < nq; i++ {
		s.wqs = append(s.wqs, newWaitQueue(m.rt.Params().LockCost))
	}
	threads := m.opts.IOThreads
	if threads <= 0 {
		threads = 1
	}
	s.ensureSpawned(threads)
	s.active = threads
	return s
}

// ensureSpawned grows the process pool to n IO threads. Newly spawned
// threads start parked: they serve no pass until a kick moves gen.
func (s *singleIO) ensureSpawned(n int) {
	for s.spawned < n {
		i := s.spawned
		lane := s.m.rt.NumPEs() + i
		s.m.rt.Engine().Spawn(fmt.Sprintf("IO%d", i), func(q *sim.Proc) { s.ioLoop(q, i, lane) })
		s.spawned++
	}
}

// setIOThreads retargets the pool at n serving threads online (n <= 0
// means the mode's natural count, 1) — the adaptive controller's
// IOThreads knob. Threads beyond n park in ioLoop's wait guard until
// re-enabled. Safe from any context: the counter writes are atomic in
// the cooperative simulation, the generation bump makes freshly enabled
// threads run a catch-up pass, and Broadcast needs no process.
func (s *singleIO) setIOThreads(n int) {
	if n <= 0 {
		n = 1
	}
	s.ensureSpawned(n)
	s.active = n
	s.gen++
	s.ioCond.Broadcast()
}

func (s *singleIO) name() string { return "single-io" }

// queueFor returns the wait queue a PE's tasks join.
func (s *singleIO) queueFor(pe int) *waitQueue {
	if len(s.wqs) == 1 {
		return s.wqs[0]
	}
	return s.wqs[pe]
}

// kick wakes the IO thread(s): every thread whose last served
// generation predates this one will run another pass.
func (s *singleIO) kick(p *sim.Proc) {
	s.ioMu.Lock(p)
	s.gen++
	s.ioMu.Unlock(p)
	s.ioCond.Broadcast()
}

func (s *singleIO) admit(p *sim.Proc, ot *OOCTask) bool {
	// Fast path from the paper: "A task checks if it is ready to
	// execute, i.e. if all the data dependences are in INHBM; if so,
	// the task is immediately added to the run queue."  Running it
	// inline is equivalent to queueing it at the head of the run
	// queue and avoids a scheduler round-trip.
	if ot.ready() {
		ot.pinAll()
		s.m.Stats.TasksInline++
		return false
	}
	pe := ot.pe.ID()
	qi := 0
	if len(s.wqs) > 1 {
		qi = pe
	}
	depth := s.queueFor(pe).push(p, ot)
	s.m.met.QueueDepth(qi, depth)
	s.m.Stats.TasksStaged++
	s.kick(p)
	return true
}

func (s *singleIO) complete(p *sim.Proc, ot *OOCTask) {
	// Post-processing: the worker evicts its own dead dependences,
	// then wakes the sleeping IO thread so freed space can be reused.
	ot.release(p, ot.pe.ID())
	s.kick(p)
}

// queued implements the watchdog's stuck-task snapshot.
func (s *singleIO) queued() [][]*OOCTask {
	out := make([][]*OOCTask, len(s.wqs))
	for i, wq := range s.wqs {
		out[i] = wq.quiescentTasks()
	}
	return out
}

// scanWaiting visits every wait-queued task under the queue locks.
func (s *singleIO) scanWaiting(p *sim.Proc, visit func(pos int, ot *OOCTask)) {
	for _, wq := range s.wqs {
		wq.scan(p, visit)
	}
}

// ioLoop is Algorithm 1: while space remains in HBM, pop the first task
// of each wait queue in turn, bring in its data, and move it to the run
// queue; sleep when out of tasks or capacity. Thread id parks whenever
// the pool is retargeted below it.
func (s *singleIO) ioLoop(q *sim.Proc, id, lane int) {
	var seen uint64
	for {
		s.ioMu.Lock(q)
		for s.gen == seen || id >= s.active {
			s.ioCond.Wait(q)
		}
		seen = s.gen
		s.ioMu.Unlock(q)

		for progress := true; progress; {
			progress = false
			// Serve each queue once per pass so all PEs advance
			// together ("serving all PEs equally").
			for _, wq := range s.wqs {
				ot := wq.pop(q)
				if ot == nil {
					continue
				}
				if ot.stage(q, lane) {
					ot.Staged = true
					ot.pe.PushRun(q, ot.t)
					progress = true
				} else {
					// HBM full: keep FIFO order and stall this
					// queue until an eviction wakes us.
					wq.pushFront(q, ot)
				}
			}
		}
	}
}
