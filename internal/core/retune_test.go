package core

import (
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/sim"
)

// retuneApp is buildApp with a hook at each reduction barrier — the
// quiescent point the adaptive controller retunes from.
type retuneApp struct {
	*oocApp
	onBarrier func(iter int)
}

func buildRetuneApp(env *env, nChares int, blockSize int64, iters int) *retuneApp {
	app := &retuneApp{oocApp: &oocApp{env: env, iters: iters}}
	for i := 0; i < nChares; i++ {
		app.handles = append(app.handles, env.mg.NewHandle("blk", blockSize))
	}
	app.arr = env.rt.NewArray("ooc", nChares, func(i int) charm.Chare {
		return &oocChare{block: app.handles[i]}
	}, nil)
	var red *charm.Reduction
	red = env.rt.NewReduction(nChares, func() {
		app.curIter++
		app.iterEnd = append(app.iterEnd, env.e.Now())
		if app.onBarrier != nil {
			app.onBarrier(app.curIter)
		}
		if app.curIter < app.iters {
			app.arr.Broadcast(-1, app.kern, nil)
		} else {
			app.done = true
		}
	})
	app.kern = app.arr.Register(charm.Entry{
		Name:     "kern",
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{{Handle: el.Obj.(*oocChare).block, Mode: charm.ReadWrite}}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			env.mg.RunKernel(p, el.Array().Entry("kern").Deps(el, msg), KernelSpec{TrafficScale: 1})
			red.Contribute()
		},
	})
	return app
}

// TestRetuneIOThreadsOnline raises and lowers the SingleIO thread pool
// at iteration barriers; the run must stay live and audit-clean, and
// the pool must actually grow.
func TestRetuneIOThreadsOnline(t *testing.T) {
	env := newEnv(t, 4, DefaultOptions(SingleIO))
	app := buildRetuneApp(env, 12, 512*1024*1024, 4)
	app.onBarrier = func(iter int) {
		o := env.mg.Options()
		switch iter {
		case 1:
			o.IOThreads = 3
		case 2:
			o.IOThreads = 1
		}
		if err := env.mg.Retune(o); err != nil {
			t.Errorf("retune at barrier %d: %v", iter, err)
		}
	}
	app.run(t)
	assertQuiescent(t, env)
	s := env.mg.strat.(*singleIO)
	if s.spawned != 3 || s.active != 1 {
		t.Fatalf("pool spawned=%d active=%d, want 3/1", s.spawned, s.active)
	}
	if env.rt.Stats.TasksExecuted != 12*4 {
		t.Fatalf("executed %d tasks, want 48", env.rt.Stats.TasksExecuted)
	}
}

// TestRetuneModeSwitchAtBarrier switches SingleIO -> MultiIO at a
// barrier, then tightens the prefetch depth: the whole-strategy switch
// the adaptive controller performs when wait share stays dominant.
func TestRetuneModeSwitchAtBarrier(t *testing.T) {
	env := newEnv(t, 4, DefaultOptions(SingleIO))
	app := buildRetuneApp(env, 12, 512*1024*1024, 4)
	app.onBarrier = func(iter int) {
		o := env.mg.Options()
		switch iter {
		case 1:
			o.Mode = MultiIO
			o.IOThreads = 0
		case 2:
			o.PrefetchDepth = 1
		}
		if err := env.mg.Retune(o); err != nil {
			t.Errorf("retune at barrier %d: %v", iter, err)
		}
	}
	app.run(t)
	assertQuiescent(t, env)
	if _, ok := env.mg.strat.(*multiIO); !ok {
		t.Fatalf("strategy after switch is %s, want multi-io", env.mg.strat.name())
	}
	if env.mg.Mode() != MultiIO || env.mg.Options().PrefetchDepth != 1 {
		t.Fatalf("options not updated: %+v", env.mg.Options())
	}
	if env.rt.Stats.TasksExecuted != 12*4 {
		t.Fatalf("executed %d tasks, want 48", env.rt.Stats.TasksExecuted)
	}
}

// taskCounter is a minimal Observer.
type taskCounter struct {
	n      int
	onTask func(n int)
}

func (c *taskCounter) TaskDone(task *charm.Task) {
	c.n++
	if c.onTask != nil {
		c.onTask(c.n)
	}
}

// TestObserverSeesEveryTask: the TaskDone hook fires once per executed
// task, including inline fast-path ones.
func TestObserverSeesEveryTask(t *testing.T) {
	env := newEnv(t, 4, DefaultOptions(MultiIO))
	ctr := &taskCounter{}
	env.mg.SetObserver(ctr)
	app := buildApp(env, 12, 512*1024*1024, 3, nil)
	app.run(t)
	if want := int(env.rt.Stats.TasksExecuted); ctr.n != want {
		t.Fatalf("observer saw %d tasks, runtime executed %d", ctr.n, want)
	}
}

// TestRetuneModeSwitchRejectedMidFlight: a mode switch attempted from a
// task's completion hook — staging protocol busy — must be refused.
func TestRetuneModeSwitchRejectedMidFlight(t *testing.T) {
	env := newEnv(t, 4, DefaultOptions(SingleIO))
	var switchErr error
	seen := false
	ctr := &taskCounter{onTask: func(n int) {
		if n != 6 { // mid-run: plenty of tasks still staged or queued
			return
		}
		seen = true
		o := env.mg.Options()
		o.Mode = MultiIO
		switchErr = env.mg.Retune(o)
	}}
	env.mg.SetObserver(ctr)
	app := buildApp(env, 12, 512*1024*1024, 3, nil)
	app.run(t)
	if !seen {
		t.Fatal("observer hook never reached task 6")
	}
	if switchErr == nil {
		t.Fatal("mid-flight mode switch was accepted")
	}
	if !strings.Contains(switchErr.Error(), "quiescent") {
		t.Fatalf("error %q does not explain the quiescence requirement", switchErr)
	}
}

// TestRetuneRejectsStructuralChanges: the fixed fields cannot move.
func TestRetuneRejectsStructuralChanges(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(SingleIO))
	for name, mut := range map[string]func(*Options){
		"HBMReserve":      func(o *Options) { o.HBMReserve += 1 },
		"SharedWaitQueue": func(o *Options) { o.SharedWaitQueue = true },
		"Audit":           func(o *Options) { o.Audit = false },
		"mode to naive":   func(o *Options) { o.Mode = Baseline },
		"invalid knob":    func(o *Options) { o.IOThreads = -1 },
	} {
		o := env.mg.Options()
		mut(&o)
		if err := env.mg.Retune(o); err == nil {
			t.Errorf("%s: retune accepted", name)
		}
	}
}
