package core

import (
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
)

// TestOptionsValidate covers the nonsensical-combination rejections:
// each invalid option set must fail with an error naming the problem.
func TestOptionsValidate(t *testing.T) {
	valid := func(mut func(*Options)) Options {
		o := DefaultOptions(SingleIO)
		mut(&o)
		return o
	}
	cases := []struct {
		name string
		opts Options
		want string // substring of the error; empty means valid
	}{
		{"default single", valid(func(o *Options) {}), ""},
		{"default multi", DefaultOptions(MultiIO), ""},
		{"io threads on single", valid(func(o *Options) { o.IOThreads = 4 }), ""},
		{"shared queue on single", valid(func(o *Options) { o.SharedWaitQueue = true }), ""},
		{"depth on multi", valid(func(o *Options) { o.Mode = MultiIO; o.PrefetchDepth = 2 }), ""},
		{"lazy on no-io", valid(func(o *Options) { o.Mode = NoIO; o.EvictLazily = true }), ""},

		{"unknown mode", valid(func(o *Options) { o.Mode = Mode(42) }), "unknown mode"},
		{"negative reserve", valid(func(o *Options) { o.HBMReserve = -1 }), "negative HBM reserve"},
		{"negative io threads", valid(func(o *Options) { o.IOThreads = -2 }), "negative IOThreads"},
		{"negative depth", valid(func(o *Options) { o.Mode = MultiIO; o.PrefetchDepth = -1 }), "negative PrefetchDepth"},
		{"shared queue on multi", valid(func(o *Options) { o.Mode = MultiIO; o.SharedWaitQueue = true }), "SharedWaitQueue"},
		{"shared queue on ddr", valid(func(o *Options) {
			o.Mode = DDROnly
			o.SharedWaitQueue = false
			o.Mode = DDROnly
			o.SharedWaitQueue = true
		}), "SharedWaitQueue"},
		{"io threads on multi", valid(func(o *Options) { o.Mode = MultiIO; o.IOThreads = 2 }), "IOThreads"},
		{"io threads on no-io", valid(func(o *Options) { o.Mode = NoIO; o.IOThreads = 2 }), "IOThreads"},
		{"depth on single", valid(func(o *Options) { o.PrefetchDepth = 2 }), "PrefetchDepth"},
		{"lazy on naive", valid(func(o *Options) { o.Mode = Baseline; o.EvictLazily = true }), "EvictLazily"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid options accepted: %+v", c.opts)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not name the problem (%q)", err, c.want)
			}
		})
	}
}

// TestNewManagerRejectsInvalidOptions: construction panics loudly on an
// invalid option set instead of running a different configuration.
func TestNewManagerRejectsInvalidOptions(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewManager accepted SharedWaitQueue under MultiIO")
		}
		if !strings.Contains(r.(string), "SharedWaitQueue") {
			t.Fatalf("panic %v does not name the problem", r)
		}
	}()
	env := newEnv(t, 2, DefaultOptions(SingleIO)) // engine/runtime scaffolding
	opts := DefaultOptions(MultiIO)
	opts.SharedWaitQueue = true
	NewManager(env.rt, opts)
}

// TestMetricsWithoutAudit: Options.Metrics alone collects counters but
// builds no auditor — the cheap half the adaptive controller runs on.
func TestMetricsWithoutAudit(t *testing.T) {
	opts := DefaultOptions(MultiIO)
	opts.Metrics = true
	env := newEnvNoAudit(t, 4, opts)
	app := buildApp(env, 12, 512*1024*1024, 2, nil)
	app.run(t)

	if env.mg.Auditor() != nil {
		t.Fatal("Metrics alone must not build an auditor")
	}
	if _, ok := env.mg.AuditSnapshot(); ok {
		t.Fatal("AuditSnapshot must report ok=false without Audit")
	}
	snap, ok := env.mg.MetricsSnapshot()
	if !ok {
		t.Fatal("MetricsSnapshot must work with Metrics alone")
	}
	if snap.Fetches == 0 || snap.HBMHighWater == 0 {
		t.Fatalf("metrics not collected: %+v", snap)
	}
	if c := env.mg.Metrics().Counters(); c.Fetches != snap.Fetches {
		t.Fatalf("Counters()/Snapshot disagree: %d vs %d", c.Fetches, snap.Fetches)
	}
}

// newEnvNoAudit is newEnv without the forced auditor, for testing the
// metrics-only configuration.
func newEnvNoAudit(t *testing.T, numPEs int, opts Options) *env {
	t.Helper()
	e := sim.NewEngine(42)
	m := tinySpec().MustBuild(e)
	tr := projections.NewTracer(e, numPEs)
	rt := charm.NewRuntime(m, numPEs, charm.DefaultParams(), tr)
	mg := NewManager(rt, opts)
	t.Cleanup(e.Close)
	return &env{e: e, m: m, rt: rt, mg: mg, tr: tr}
}
