// Package core implements the paper's primary contribution: the
// memory-heterogeneity-aware prefetch/evict layer for the Charm-like
// runtime. Data blocks are declared as Handles (the paper's CkIOHandle)
// with INHBM/INDDR state and reference counts; [prefetch]-annotated
// entry methods are intercepted at the converse scheduler, wrapped into
// OOCTasks, staged through per-PE wait queues, and admitted to run
// queues once their dependences reside in HBM. Three scheduling
// strategies are provided, matching §IV-B of the paper: a single IO
// thread (SingleIO), synchronous worker-driven fetch/evict (NoIO) and
// one asynchronous IO thread per PE (MultiIO), plus the Baseline and
// DDROnly placement modes used in the evaluation.
package core

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/numa"
	"github.com/hetmem/hetmem/internal/sim"
)

// BlockState is the residence state stored in a handle's metadata.
type BlockState int

const (
	// InDDR means the block currently resides in far memory (the
	// paper's INDDR state).
	InDDR BlockState = iota
	// InHBM means the block resides in high-bandwidth memory (INHBM).
	InHBM
	// Fetching means a fetch DDR->HBM is in flight.
	Fetching
	// Evicting means an eviction HBM->DDR is in flight.
	Evicting
)

// String names the state like the paper's constants.
func (s BlockState) String() string {
	switch s {
	case InDDR:
		return "INDDR"
	case InHBM:
		return "INHBM"
	case Fetching:
		return "FETCHING"
	case Evicting:
		return "EVICTING"
	default:
		return fmt.Sprintf("BlockState(%d)", int(s))
	}
}

// Handle is a managed data block: the runtime-level metadata object the
// paper calls CkIOHandle. It implements charm.DataHandle.
type Handle struct {
	mgr  *Manager
	id   int // dense index into the manager's handle table
	name string
	size int64

	// mu is the data-block lock; it is held across in-flight
	// migrations so concurrent fetchers/evictors of the same block
	// serialise (the paper's "data block locks").
	mu sim.Mutex

	state BlockState
	buf   *numa.Buffer
	refs  int // tasks currently scheduled/running against this block
	// claims counts staging attempts currently counting on this
	// (non-resident) block becoming resident. Only the first claimant
	// reserves HBM capacity for it, so concurrent tasks sharing
	// read-only blocks do not multiply the capacity demand.
	claims int
	// pendingUses counts enqueued-but-not-completed tasks that list
	// this block as a dependence. Eviction prefers blocks with no
	// pending uses, so data a queued task is about to need is not
	// bounced to DDR and back (matmul's accumulated C blocks and
	// shared stage panels).
	pendingUses int
	// lastUse is the virtual time at which a task depending on this
	// block most recently completed; the LRU eviction policy orders
	// victims by it.
	lastUse sim.Time

	// Stats.
	Fetches   int64
	Evictions int64
}

// BlockName returns the handle's name (charm.DataHandle).
func (h *Handle) BlockName() string { return h.name }

// Size returns the block size in bytes (charm.DataHandle).
func (h *Handle) Size() int64 { return h.size }

// State returns the current residence state.
func (h *Handle) State() BlockState { return h.state }

// Refs returns the current reference count.
func (h *Handle) Refs() int { return h.refs }

// Buffer returns the backing allocation (for kernels to derive traffic
// placement).
func (h *Handle) Buffer() *numa.Buffer { return h.buf }

// InUse reports whether any scheduled or running task references the
// block.
func (h *Handle) InUse() bool { return h.refs > 0 }

// resident reports whether the block is fully in HBM and not in
// transition.
func (h *Handle) resident() bool { return h.state == InHBM }

// pin increments the reference count ("incremented every time a task
// depending on the block is scheduled").
func (h *Handle) pin() {
	h.refs++
	h.mgr.aud.Pin(1)
}

// unpin decrements the reference count.
func (h *Handle) unpin() {
	if h.refs == 0 {
		panic("core: unpin of unreferenced block " + h.name)
	}
	h.refs--
	h.mgr.aud.Pin(-1)
}
