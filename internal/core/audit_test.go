package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/sim"
)

// TestSingleIOThreadSweep is the X3 regression for the lost-wakeup bug:
// with IOThreads > 1 all threads shared one work flag, so a thread that
// consumed a kick on behalf of a sibling mid-pass could strand the
// sibling's pushed-back task in a wait queue forever. The generation
// counter makes every kick visible to every thread. Heavy capacity
// pressure (1 GB blocks against a 3 GB budget) maximises concurrent
// push-back/kick interleavings.
func TestSingleIOThreadSweep(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 4, 6, 8} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			opts := DefaultOptions(SingleIO)
			opts.IOThreads = threads
			env := newEnv(t, 4, opts)
			app := buildApp(env, 12, 1*gb, 3, nil)
			app.run(t)
			assertQuiescent(t, env)
			if env.rt.Stats.TasksExecuted != 12*3 {
				t.Fatalf("executed %d tasks, want 36", env.rt.Stats.TasksExecuted)
			}
		})
	}
}

// TestSingleIOThreadSweepSharedQueue covers the X2+X3 cross product:
// many IO threads round-robining a single shared wait queue.
func TestSingleIOThreadSweepSharedQueue(t *testing.T) {
	opts := DefaultOptions(SingleIO)
	opts.IOThreads = 4
	opts.SharedWaitQueue = true
	env := newEnv(t, 4, opts)
	app := buildApp(env, 12, 1*gb, 3, nil)
	app.run(t)
	assertQuiescent(t, env)
}

// TestPrefetchDepthBoundHeld asserts, via the auditor, that the MultiIO
// in-flight bound is never exceeded — the bug was complete()
// decrementing inflight outside ioMu while ioLoop read it against the
// bound.
func TestPrefetchDepthBoundHeld(t *testing.T) {
	for _, depth := range []int{1, 2} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			opts := DefaultOptions(MultiIO)
			opts.PrefetchDepth = depth
			env := newEnv(t, 4, opts)
			app := buildApp(env, 12, 512*1024*1024, 3, nil)
			app.run(t)
			assertQuiescent(t, env)
			snap, ok := env.mg.AuditSnapshot()
			if !ok {
				t.Fatal("auditor not enabled")
			}
			for pe, peak := range snap.InflightPeak {
				if peak > depth {
					t.Fatalf("PE %d staged %d tasks in flight, bound %d", pe, peak, depth)
				}
			}
			for _, v := range snap.Violations {
				if v.Rule == "prefetch-depth" {
					t.Fatalf("auditor saw bound violation: %v", v)
				}
			}
		})
	}
}

// TestAuditorCatchesSeededViolation proves the oracle actually fires:
// corrupt the reservation counter behind the auditor's back and the
// ledger cross-check must report it.
func TestAuditorCatchesSeededViolation(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(SingleIO))
	env.mg.reserved += 1 * gb // deliberate corruption
	env.mg.aud.CheckNow()
	aud := env.mg.Auditor()
	if aud.Ok() {
		t.Fatal("auditor missed a corrupted reservation counter")
	}
	var found bool
	for _, v := range aud.Violations() {
		if v.Rule == "reservation-ledger" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a reservation-ledger violation, got %v", aud.Violations())
	}
	env.mg.reserved -= 1 * gb // restore so Cleanup paths stay sane
}

// TestAuditorCatchesCapacityViolation seeds the other invariant:
// shadow and real reservation agree but together with residency they
// overshoot the budget.
func TestAuditorCatchesCapacityViolation(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(SingleIO))
	env.mg.reserved += 10 * gb
	env.mg.aud.Reserve(10 * gb) // ledger agrees; capacity cannot
	aud := env.mg.Auditor()
	if aud.Ok() {
		t.Fatal("auditor missed a budget overshoot")
	}
	var found bool
	for _, v := range aud.Violations() {
		if v.Rule == "capacity" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a capacity violation, got %v", aud.Violations())
	}
}

// TestWatchdogReportsStrandedTask plants a task in a wait queue without
// the kick that should accompany it — exactly the state a lost wakeup
// leaves behind — and checks the quiesce watchdog turns it into a
// diagnostic naming the task and its blocking handle.
func TestWatchdogReportsStrandedTask(t *testing.T) {
	env := newEnv(t, 2, DefaultOptions(SingleIO))
	h := env.mg.NewHandle("stuckblk", 1*gb)
	arr := env.rt.NewArray("a", 1, func(i int) charm.Chare { return nil }, nil)
	kern := arr.Register(charm.Entry{
		Name:     "kern",
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{{Handle: h, Mode: charm.ReadWrite}}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {},
	})
	strat := env.mg.strat.(*singleIO)
	env.e.Spawn("planter", func(p *sim.Proc) {
		task := &charm.Task{Elem: arr.Elem(0), Entry: kern, Msg: &charm.Message{}}
		task.Deps = kern.Deps(arr.Elem(0), task.Msg)
		ot := newOOCTask(env.mg, env.rt.PE(0), task)
		strat.wqs[0].push(p, ot) // no kick: simulated lost wakeup
	})
	env.e.RunAll()

	aud := env.mg.Auditor()
	report := aud.StallReport()
	if report == nil {
		t.Fatal("watchdog did not report the stranded task")
	}
	if len(report.Stuck) != 1 {
		t.Fatalf("stuck tasks = %d, want 1", len(report.Stuck))
	}
	st := report.Stuck[0]
	if st.PE != 0 || len(st.Deps) != 1 || st.Deps[0].Name != "stuckblk" {
		t.Fatalf("report misnames the stuck task: %+v", st)
	}
	if !strings.Contains(report.String(), "stuckblk") {
		t.Fatalf("rendered report omits the blocking handle:\n%s", report)
	}
	if aud.Ok() {
		t.Fatal("a stall must count as a violation")
	}
}

// TestAuditSnapshotJSON exercises the metrics export path end to end:
// run a real workload, snapshot, marshal, unmarshal, sanity-check.
func TestAuditSnapshotJSON(t *testing.T) {
	env := newEnv(t, 4, DefaultOptions(MultiIO))
	app := buildApp(env, 12, 512*1024*1024, 3, nil)
	app.run(t)
	assertQuiescent(t, env)

	snap, ok := env.mg.AuditSnapshot()
	if !ok {
		t.Fatal("auditor not enabled")
	}
	if snap.Mode != MultiIO.String() {
		t.Fatalf("mode %q", snap.Mode)
	}
	if snap.Fetches == 0 || snap.Evictions == 0 {
		t.Fatal("snapshot missing movement counts")
	}
	if snap.HBMHighWater <= 0 || snap.HBMHighWater > snap.HBMBudget {
		t.Fatalf("high water %d outside (0, budget %d]", snap.HBMHighWater, snap.HBMBudget)
	}
	if snap.FetchHist.N != snap.Fetches {
		t.Fatalf("fetch histogram has %d samples for %d fetches", snap.FetchHist.N, snap.Fetches)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mode", "hbm_high_water_bytes", "fetch_hist", "queue_depth_peak"} {
		if _, present := back[key]; !present {
			t.Fatalf("snapshot JSON missing %q: %s", key, raw)
		}
	}
}

// TestAuditDisabledIsInert verifies the nil-auditor fast path: no
// auditor object, no snapshot, identical behaviour.
func TestAuditDisabledIsInert(t *testing.T) {
	e := sim.NewEngine(42)
	m := tinySpec().MustBuild(e)
	rt := charm.NewRuntime(m, 2, charm.DefaultParams(), nil)
	mg := NewManager(rt, DefaultOptions(MultiIO))
	t.Cleanup(e.Close)
	if mg.Auditor() != nil {
		t.Fatal("auditor created without opts.Audit")
	}
	if _, ok := mg.AuditSnapshot(); ok {
		t.Fatal("snapshot available without auditing")
	}
	env := &env{e: e, m: m, rt: rt, mg: mg}
	app := buildApp(env, 4, 512*1024*1024, 2, nil)
	app.run(t)
}
