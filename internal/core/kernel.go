package core

import (
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/sim"
)

// KernelSpec describes the resource demand of one bandwidth-sensitive
// entry-method execution on one core.
type KernelSpec struct {
	// Flops is the kernel's arithmetic work; the compute roof is
	// Flops / CoreFlops.
	Flops float64
	// TrafficScale multiplies each dependence's size to get the bytes
	// the kernel actually streams (e.g. >1 when a kernel makes
	// multiple passes over its blocks).
	TrafficScale float64
}

// segment is a sequential piece of a kernel's memory traffic.
type segment struct {
	node  *memsim.Node
	bytes float64
}

// RunKernel executes the memory/compute cost model of a
// bandwidth-sensitive kernel on the calling PE's core: its read traffic
// streams sequentially from the node(s) where each dependence actually
// resides, its write traffic likewise (reads and writes overlap, each
// capped at the core's stream rate), and the total time is floored by
// the flop roof. Returns the kernel's elapsed virtual time.
//
// This is where placement becomes performance: blocks in DDR stream at
// the (contended) DDR bandwidth, blocks in HBM at HBM bandwidth — the
// 3x HBM-vs-DDR kernel gap of Fig. 2 and all Fig. 8/9 effects follow
// from it.
func (m *Manager) RunKernel(p *sim.Proc, deps []charm.DataDep, spec KernelSpec) sim.Time {
	start := p.Now()
	scale := spec.TrafficScale
	if scale <= 0 {
		scale = 1
	}
	var reads, writes []segment
	for _, d := range deps {
		h, ok := d.Handle.(*Handle)
		if !ok {
			panic("core: RunKernel on foreign handle")
		}
		// Indexed Part access keeps the per-kernel path allocation-free.
		for i := 0; i < h.buf.NumParts(); i++ {
			part := h.buf.Part(i)
			b := float64(part.Size) * scale
			switch d.Mode {
			case charm.ReadOnly:
				reads = append(reads, segment{part.Node, b})
			case charm.WriteOnly:
				writes = append(writes, segment{part.Node, b})
			case charm.ReadWrite:
				reads = append(reads, segment{part.Node, b})
				writes = append(writes, segment{part.Node, b})
			}
		}
	}

	cap := m.mach.Spec.CoreStreamBW
	runChain := func(q *sim.Proc, segs []segment, acc memsim.Access) {
		for _, s := range segs {
			f := m.mach.Mem.StartFlow(memsim.FlowSpec{
				Bytes:   s.bytes,
				Demands: []memsim.Demand{{Node: s.node, Access: acc}},
				RateCap: cap,
			})
			f.Wait(q)
		}
	}

	if len(writes) > 0 && len(reads) > 0 {
		var wg sim.WaitGroup
		wg.Add(1)
		p.Spawn("kern-wr", func(q *sim.Proc) {
			runChain(q, writes, memsim.Write)
			wg.Done()
		})
		runChain(p, reads, memsim.Read)
		wg.Wait(p)
	} else if len(reads) > 0 {
		runChain(p, reads, memsim.Read)
	} else if len(writes) > 0 {
		runChain(p, writes, memsim.Write)
	}

	// Flop roof: a compute-bound kernel is not faster on HBM.
	if m.mach.Spec.CoreFlops > 0 && spec.Flops > 0 {
		flopTime := spec.Flops / m.mach.Spec.CoreFlops
		if elapsed := p.Now() - start; flopTime > elapsed {
			p.Sleep(flopTime - elapsed)
		}
	}
	d := p.Now() - start
	if m.ts != nil {
		m.ts.KernelDone(p, spec, start, d)
	}
	return d
}
