package core

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/sim"
)

// multiIO is the paper's "Multiple queues, Multiple IO threads"
// strategy: one IO thread per PE (placed on the hyperthread sibling so
// no extra physical cores are used), one wait queue per PE, and fully
// asynchronous fetch AND eviction — a completing task only drops its
// pins and hands its dead blocks to its PE's IO thread, so neither
// movement direction blocks a worker. This is the configuration whose
// Projections timeline (Fig. 5b/6b) shows the pre-processing overhead
// masked.
type multiIO struct {
	m      *Manager
	wqs    []*waitQueue
	evictq []*waitQueueH
	ioMu   []sim.Mutex
	ioCond []*sim.Cond
	work   []bool
	// inflight counts staged-but-uncompleted tasks per PE, bounded by
	// Options.PrefetchDepth when non-zero. Guarded by ioMu[pe]: the IO
	// thread increments it while staging and the worker decrements it
	// in complete, so an unguarded read could admit a task past the
	// bound between the worker's decrement and its kick.
	inflight []int
}

// waitQueueH is a small FIFO of eviction candidates.
type waitQueueH struct {
	mu     sim.Mutex
	blocks []*Handle
}

func (q *waitQueueH) push(p *sim.Proc, h *Handle) {
	q.mu.Lock(p)
	q.blocks = append(q.blocks, h)
	q.mu.Unlock(p)
}

func (q *waitQueueH) pop(p *sim.Proc) *Handle {
	q.mu.Lock(p)
	defer q.mu.Unlock(p)
	if len(q.blocks) == 0 {
		return nil
	}
	h := q.blocks[0]
	q.blocks = q.blocks[1:]
	return h
}

func newMultiIO(m *Manager) *multiIO {
	n := m.rt.NumPEs()
	s := &multiIO{
		m:        m,
		ioMu:     make([]sim.Mutex, n),
		ioCond:   make([]*sim.Cond, n),
		work:     make([]bool, n),
		inflight: make([]int, n),
	}
	lockCost := m.rt.Params().LockCost
	for i := 0; i < n; i++ {
		s.wqs = append(s.wqs, newWaitQueue(lockCost))
		eq := &waitQueueH{}
		eq.mu.AcquireCost = lockCost
		s.evictq = append(s.evictq, eq)
		s.ioMu[i].AcquireCost = lockCost
		s.ioCond[i] = sim.NewCond(&s.ioMu[i])
		i := i
		lane := n + i // IO thread lane: the SMT sibling of PE i
		m.rt.Engine().Spawn(fmt.Sprintf("IO-PE%d", i), func(q *sim.Proc) { s.ioLoop(q, i, lane) })
	}
	return s
}

func (s *multiIO) name() string { return "multi-io" }

// kick wakes PE i's IO thread.
func (s *multiIO) kick(p *sim.Proc, i int) {
	s.ioMu[i].Lock(p)
	s.work[i] = true
	s.ioMu[i].Unlock(p)
	s.ioCond[i].Signal()
}

func (s *multiIO) admit(p *sim.Proc, ot *OOCTask) bool {
	// "When a task arrives at its preprocessing step, it simply adds
	// itself to the corresponding PE's wait queue. The IO thread is
	// then woken up by the worker thread."
	pe := ot.pe.ID()
	depth := s.wqs[pe].push(p, ot)
	s.m.met.QueueDepth(pe, depth)
	s.m.Stats.TasksStaged++
	s.kick(p, pe)
	return true
}

func (s *multiIO) complete(p *sim.Proc, ot *OOCTask) {
	pe := ot.pe.ID()
	// The in-flight count is shared with the PE's IO thread, which
	// reads it against the prefetch-depth bound; decrement under the
	// same mutex so the bound is never transiently over-admitted.
	s.ioMu[pe].Lock(p)
	s.inflight[pe]--
	if s.inflight[pe] < 0 {
		panic("core: multiIO inflight underflow")
	}
	s.ioMu[pe].Unlock(p)
	// Drop pins now (reference counts must be exact), but hand the
	// data movement to the IO thread so eviction is asynchronous too.
	ot.unpinAll()
	if !s.m.opts.EvictLazily {
		for _, d := range ot.deps {
			if !d.h.InUse() {
				s.evictq[pe].push(p, d.h)
			}
		}
	}
	// "It then wakes up the IO thread for the PE, since it has
	// evicted data, allowing more tasks to have their data prefetched."
	s.kick(p, pe)
}

// ioLoop serves PE i: evictions first (freeing capacity), then stage
// waiting tasks until HBM fills, then sleep.
func (s *multiIO) ioLoop(q *sim.Proc, i, lane int) {
	for {
		s.ioMu[i].Lock(q)
		for !s.work[i] {
			s.ioCond[i].Wait(q)
		}
		s.work[i] = false
		s.ioMu[i].Unlock(q)

		evicted := false
		for {
			h := s.evictq[i].pop(q)
			if h == nil {
				break
			}
			// Re-check under the block's own protocol: the block may
			// have been re-pinned by a newly staged task since it was
			// queued, in which case evict is a no-op.
			before := h.Evictions
			s.m.evict(q, lane, h, false)
			if h.Evictions != before {
				evicted = true
			}
		}

		staged := 0
		depth := s.m.opts.PrefetchDepth
		for {
			// Claim an in-flight slot under the mutex before staging;
			// staging parks on locks and migrations, and the bound must
			// hold across those waits.
			s.ioMu[i].Lock(q)
			free := depth == 0 || s.inflight[i] < depth
			if free {
				s.inflight[i]++
				s.m.met.Inflight(i, s.inflight[i])
				s.m.aud.CheckInflight(i, s.inflight[i], depth)
			}
			s.ioMu[i].Unlock(q)
			if !free {
				break
			}
			ot := s.wqs[i].pop(q)
			if ot == nil {
				s.releaseSlot(q, i)
				break
			}
			if ot.stage(q, lane) {
				ot.Staged = true
				ot.pe.PushRun(q, ot.t)
				staged++
				continue
			}
			s.releaseSlot(q, i)
			s.wqs[i].pushFront(q, ot)
			break
		}

		// Cross-PE liveness: space freed here — by explicit eviction
		// or by staging-triggered reclamation (makeRoom under lazy
		// eviction) — may be what another PE's stalled IO thread is
		// waiting for. All IO threads are "likely working in
		// parallel, hence there is no starvation problem" under
		// symmetric load; the explicit kick makes it a guarantee.
		if evicted || staged > 0 {
			for j := range s.wqs {
				if j != i && s.wqs[j].len(q) > 0 {
					s.kick(q, j)
				}
			}
		}
	}
}

// releaseSlot returns an unused in-flight slot claimed by ioLoop.
func (s *multiIO) releaseSlot(q *sim.Proc, i int) {
	s.ioMu[i].Lock(q)
	s.inflight[i]--
	s.ioMu[i].Unlock(q)
}

// scanWaiting visits every wait-queued task under the queue locks.
func (s *multiIO) scanWaiting(p *sim.Proc, visit func(pos int, ot *OOCTask)) {
	for _, wq := range s.wqs {
		wq.scan(p, visit)
	}
}

// queued implements the watchdog's stuck-task snapshot.
func (s *multiIO) queued() [][]*OOCTask {
	out := make([][]*OOCTask, len(s.wqs))
	for i, wq := range s.wqs {
		out[i] = wq.quiescentTasks()
	}
	return out
}
