package stream

import (
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/topology"
)

func TestKernelsCanonical(t *testing.T) {
	ks := Kernels()
	if len(ks) != 4 {
		t.Fatalf("got %d kernels", len(ks))
	}
	names := []string{"Copy", "Scale", "Add", "Triad"}
	for i, k := range ks {
		if k.Name != names[i] {
			t.Fatalf("kernel %d = %s, want %s", i, k.Name, names[i])
		}
		if k.Writes != 1 {
			t.Fatalf("%s writes %d arrays", k.Name, k.Writes)
		}
	}
	if ks[0].Reads != 1 || ks[2].Reads != 2 || ks[3].Reads != 2 {
		t.Fatal("read array counts wrong")
	}
}

func TestMeasureValidation(t *testing.T) {
	if _, err := Measure(topology.KNL7250(), 0, 0, 1); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := Measure(topology.KNL7250(), 0, 1, 0); err == nil {
		t.Fatal("zero array accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	spec := topology.KNL7250()
	const arr = 256 * 1024 * 1024
	ddr, err := Measure(spec, topology.DDRNodeID, 64, arr)
	if err != nil {
		t.Fatal(err)
	}
	hbm, err := Measure(spec, topology.HBMNodeID, 64, arr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ddr {
		ratio := hbm[i].Bandwidth / ddr[i].Bandwidth
		if ratio < 4.0 {
			t.Errorf("%s: MCDRAM/DDR4 ratio %.2f, want > 4 (paper: 'over 4X')", ddr[i].Kernel, ratio)
		}
		// Absolute sanity: DDR in the tens of GB/s, MCDRAM in the
		// hundreds.
		if bw := ddr[i].Bandwidth / topology.GBf; bw < 50 || bw > 120 {
			t.Errorf("%s DDR bandwidth %.1f GB/s out of plausible range", ddr[i].Kernel, bw)
		}
		if bw := hbm[i].Bandwidth / topology.GBf; bw < 300 || bw > 500 {
			t.Errorf("%s MCDRAM bandwidth %.1f GB/s out of plausible range", hbm[i].Kernel, bw)
		}
	}
}

func TestSingleThreadCoreBound(t *testing.T) {
	// One thread cannot exceed ~2x the core stream rate (read+write
	// overlap), regardless of the node's aggregate bandwidth.
	spec := topology.KNL7250()
	res, err := Measure(spec, topology.HBMNodeID, 1, 64*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Bandwidth > 2.1*spec.CoreStreamBW {
			t.Errorf("%s single-thread bandwidth %.1f GB/s exceeds core capability", r.Kernel, r.Bandwidth/topology.GBf)
		}
	}
}

func TestBandwidthScalesWithThreads(t *testing.T) {
	spec := topology.KNL7250()
	one, _ := Measure(spec, topology.DDRNodeID, 1, 64*1024*1024)
	many, _ := Measure(spec, topology.DDRNodeID, 64, 64*1024*1024)
	if many[3].Bandwidth < 3*one[3].Bandwidth {
		t.Fatalf("triad did not scale: 1 thread %.1f, 64 threads %.1f GB/s",
			one[3].Bandwidth/topology.GBf, many[3].Bandwidth/topology.GBf)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Kernel: "Triad", Node: "MCDRAM", Threads: 64, Bandwidth: 450 * topology.GBf}
	s := r.String()
	if !strings.Contains(s, "Triad") || !strings.Contains(s, "450.0 GB/s") {
		t.Fatalf("row = %q", s)
	}
}

func TestDeterministicMeasurement(t *testing.T) {
	spec := topology.KNL7250()
	a, _ := Measure(spec, topology.DDRNodeID, 16, 64*1024*1024)
	b, _ := Measure(spec, topology.DDRNodeID, 16, 64*1024*1024)
	for i := range a {
		if a[i].Bandwidth != b[i].Bandwidth {
			t.Fatalf("kernel %s nondeterministic", a[i].Kernel)
		}
	}
}
