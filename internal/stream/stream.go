// Package stream implements a STREAM-style memory bandwidth benchmark
// (McCalpin) on the simulated machine: Copy, Scale, Add and Triad
// kernels executed by many concurrent cores against one memory node.
// It regenerates Figure 1 of the paper — the MCDRAM-vs-DDR4 bandwidth
// comparison that motivates the whole runtime.
package stream

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// Kernel describes one STREAM kernel by its per-element array traffic.
type Kernel struct {
	Name string
	// Reads and Writes are the number of arrays read and written per
	// element operation (Copy: c=a reads 1, writes 1; Triad:
	// a=b+s*c reads 2, writes 1).
	Reads  int
	Writes int
}

// Kernels lists the four STREAM kernels in canonical order.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "Copy", Reads: 1, Writes: 1},
		{Name: "Scale", Reads: 1, Writes: 1},
		{Name: "Add", Reads: 2, Writes: 1},
		{Name: "Triad", Reads: 2, Writes: 1},
	}
}

// Result is one measured kernel bandwidth.
type Result struct {
	Kernel    string
	Node      string
	Threads   int
	Bytes     float64  // total bytes moved
	Elapsed   sim.Time // wall time
	Bandwidth float64  // bytes/second aggregate
}

// String renders the result as a table row.
func (r Result) String() string {
	return fmt.Sprintf("%-6s %-8s %3d threads  %8.1f GB/s",
		r.Kernel, r.Node, r.Threads, r.Bandwidth/topology.GBf)
}

// Measure runs all four kernels with the given thread count against
// one memory node of a freshly built machine and returns their
// aggregate bandwidths. arrayBytes is the per-thread size of each
// STREAM array.
func Measure(spec topology.MachineSpec, nodeID, threads int, arrayBytes int64) ([]Result, error) {
	if threads <= 0 || arrayBytes <= 0 {
		return nil, fmt.Errorf("stream: need positive threads and array size")
	}
	e := sim.NewEngine(1)
	m, err := spec.Build(e)
	if err != nil {
		return nil, err
	}
	node := m.Mem.Node(nodeID)
	var results []Result
	for _, k := range Kernels() {
		results = append(results, runKernel(e, m, node, k, threads, arrayBytes))
	}
	return results, nil
}

// runKernel executes one kernel: each thread streams its read arrays
// and write arrays concurrently, each direction capped at the core
// stream rate, and the aggregate is bytes moved over the slowest
// thread's finish time (as STREAM's OpenMP barrier semantics give).
func runKernel(e *sim.Engine, m *topology.Machine, node *memsim.Node, k Kernel, threads int, arrayBytes int64) Result {
	start := e.Now()
	var wg sim.WaitGroup
	wg.Add(threads)
	cap := m.Spec.CoreStreamBW
	for i := 0; i < threads; i++ {
		e.Spawn(fmt.Sprintf("%s-t%d", k.Name, i), func(p *sim.Proc) {
			var inner sim.WaitGroup
			if k.Writes > 0 {
				inner.Add(1)
				wb := float64(k.Writes) * float64(arrayBytes)
				p.Spawn("wr", func(q *sim.Proc) {
					f := m.Mem.StartFlow(memsim.FlowSpec{
						Bytes:   wb,
						Demands: []memsim.Demand{{Node: node, Access: memsim.Write}},
						RateCap: cap,
					})
					f.Wait(q)
					inner.Done()
				})
			}
			if k.Reads > 0 {
				f := m.Mem.StartFlow(memsim.FlowSpec{
					Bytes:   float64(k.Reads) * float64(arrayBytes),
					Demands: []memsim.Demand{{Node: node, Access: memsim.Read}},
					RateCap: cap,
				})
				f.Wait(p)
			}
			inner.Wait(p)
			wg.Done()
		})
	}
	var end sim.Time
	e.Spawn("join", func(p *sim.Proc) {
		wg.Wait(p)
		end = p.Now()
	})
	e.RunAll()
	bytes := float64(threads) * float64(k.Reads+k.Writes) * float64(arrayBytes)
	elapsed := end - start
	return Result{
		Kernel:    k.Name,
		Node:      node.Name,
		Threads:   threads,
		Bytes:     bytes,
		Elapsed:   elapsed,
		Bandwidth: bytes / elapsed,
	}
}
