package charm

import (
	"fmt"
	"sort"

	"github.com/hetmem/hetmem/internal/sim"
)

// Chare migration and measurement-based load balancing. The paper's
// background section motivates over-decomposition with exactly this:
// "Over-decomposition with migratability allows for load balancing of
// chares. ... Objects do not migrate at anytime, they migrate only
// when load balancing explicitly moves them to a different PE."
//
// Migration here follows the Charm++ discipline: it happens at
// application-chosen synchronisation points (typically a reduction at
// an iteration boundary), when the element has no entry method
// executing. Messages sent after the migration route to the new PE;
// messages already enqueued on the old PE still execute there once
// (delivery forwarding).

// MigrateTo moves the element to the given PE for all future message
// deliveries.
func (el *Element) MigrateTo(pe int) {
	rt := el.arr.rt
	if pe < 0 || pe >= rt.NumPEs() {
		panic(fmt.Sprintf("charm: migrate of %s[%d] to invalid PE %d", el.arr.name, el.Index, pe))
	}
	if pe != el.PE {
		rt.Stats.Migrations++
	}
	el.PE = pe
}

// Load returns the accumulated entry-method execution time of the
// element since the last TakeLoad.
func (el *Element) Load() sim.Time { return el.load }

// TakeLoad returns the accumulated load and resets the accumulator
// (called by load balancers at each balancing step).
func (el *Element) TakeLoad() sim.Time {
	l := el.load
	el.load = 0
	return l
}

// GreedyRebalance reassigns the array's elements to PEs with the
// classic longest-processing-time-first heuristic, using each
// element's measured load since the last call. It returns the number
// of elements that changed PE. Call it from a quiescent point (e.g. a
// reduction callback) so no entry method is mid-flight.
func GreedyRebalance(arr *Array, numPEs int) int {
	type item struct {
		el   *Element
		load sim.Time
	}
	items := make([]item, 0, arr.Len())
	for _, el := range arr.elems {
		items = append(items, item{el: el, load: el.TakeLoad()})
	}
	// LPT: heaviest first, each onto the currently least-loaded PE.
	sort.SliceStable(items, func(i, j int) bool { return items[i].load > items[j].load })
	peLoad := make([]sim.Time, numPEs)
	moved := 0
	for _, it := range items {
		best := 0
		for pe := 1; pe < numPEs; pe++ {
			if peLoad[pe] < peLoad[best] {
				best = pe
			}
		}
		peLoad[best] += it.load
		if it.el.PE != best {
			moved++
		}
		it.el.MigrateTo(best)
	}
	return moved
}

// MaxLoadImbalance returns max/mean of the per-PE load implied by the
// elements' current placement and accumulated loads — 1.0 is perfectly
// balanced. Diagnostic for tests and the X7 experiment.
func MaxLoadImbalance(arr *Array, numPEs int) float64 {
	peLoad := make([]sim.Time, numPEs)
	var total sim.Time
	for _, el := range arr.elems {
		peLoad[el.PE] += el.load
		total += el.load
	}
	if total == 0 {
		return 1
	}
	mean := total / sim.Time(numPEs)
	max := peLoad[0]
	for _, l := range peLoad[1:] {
		if l > max {
			max = l
		}
	}
	return float64(max / mean)
}
