package charm

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/sim"
)

// Message carries a payload to a chare element's entry method.
type Message struct {
	// Data is the application payload.
	Data interface{}
	// From identifies the sending element index, or -1 for mainchare
	// sends.
	From int
	// SentAt is the virtual send time.
	SentAt sim.Time
}

// EntryFn is the body of an entry method. It runs inside the PE's
// scheduler process (p); elem.Obj is the chare instance.
type EntryFn func(p *sim.Proc, pe *PE, elem *Element, msg *Message)

// DepsFn resolves the data dependences of a task at delivery time,
// mirroring the .ci declaration "[readwrite:A, writeonly:B]".
type DepsFn func(elem *Element, msg *Message) []DataDep

// Entry describes one entry method of a chare array. Prefetch marks it
// with the paper's [prefetch] attribute; Deps declares its data
// dependence blocks.
type Entry struct {
	Name     string
	Fn       EntryFn
	Prefetch bool
	Deps     DepsFn
}

// Element is one chare of an array, mapped to a PE. Chares migrate
// only when load balancing explicitly moves them (see loadbalance.go).
type Element struct {
	arr   *Array
	Index int
	PE    int
	Obj   Chare

	// load accumulates entry-method execution time for load
	// balancing (see loadbalance.go).
	load sim.Time
}

// Array returns the owning chare array.
func (el *Element) Array() *Array { return el.arr }

// Array is an over-decomposed 1-D chare array. Applications impose 2-D
// or 3-D index structure on top of the flat index (as Charm++ dense
// arrays do internally).
type Array struct {
	rt      *Runtime
	name    string
	elems   []*Element
	entries map[string]*Entry
}

// MapRoundRobin maps element i to PE i mod numPEs (Charm++'s default
// block-cyclic placement for dense arrays).
func MapRoundRobin(numPEs int) func(i int) int {
	return func(i int) int { return i % numPEs }
}

// MapBlock maps contiguous chunks of elements to each PE.
func MapBlock(n, numPEs int) func(i int) int {
	per := (n + numPEs - 1) / numPEs
	return func(i int) int { return i / per }
}

// NewArray creates an array of n chares. factory builds element i's
// object; mapFn assigns elements to PEs (nil means round-robin).
func (rt *Runtime) NewArray(name string, n int, factory func(i int) Chare, mapFn func(i int) int) *Array {
	if n <= 0 {
		panic("charm: array needs at least one element")
	}
	if _, dup := rt.arrays[name]; dup {
		panic("charm: duplicate array " + name)
	}
	if mapFn == nil {
		mapFn = MapRoundRobin(rt.NumPEs())
	}
	arr := &Array{rt: rt, name: name, entries: make(map[string]*Entry)}
	for i := 0; i < n; i++ {
		pe := mapFn(i)
		if pe < 0 || pe >= rt.NumPEs() {
			panic(fmt.Sprintf("charm: element %d mapped to invalid PE %d", i, pe))
		}
		arr.elems = append(arr.elems, &Element{arr: arr, Index: i, PE: pe, Obj: factory(i)})
	}
	rt.arrays[name] = arr
	return arr
}

// Name returns the array name.
func (a *Array) Name() string { return a.name }

// Len returns the number of elements.
func (a *Array) Len() int { return len(a.elems) }

// Elem returns element i.
func (a *Array) Elem(i int) *Element {
	if i < 0 || i >= len(a.elems) {
		panic(fmt.Sprintf("charm: array %s has no element %d", a.name, i))
	}
	return a.elems[i]
}

// Register declares an entry method on the array. It panics on
// duplicates, mirroring charmxi rejecting duplicate entry names.
func (a *Array) Register(e Entry) *Entry {
	if e.Name == "" || e.Fn == nil {
		panic("charm: entry needs a name and a function")
	}
	if _, dup := a.entries[e.Name]; dup {
		panic("charm: duplicate entry " + e.Name + " on array " + a.name)
	}
	if e.Prefetch && e.Deps == nil {
		panic("charm: [prefetch] entry " + e.Name + " must declare data dependences")
	}
	ent := &e
	a.entries[e.Name] = ent
	return ent
}

// Entry looks up a registered entry method.
func (a *Array) Entry(name string) *Entry {
	e, ok := a.entries[name]
	if !ok {
		panic("charm: unknown entry " + name + " on array " + a.name)
	}
	return e
}

// Send delivers msg data to element idx's entry method after the
// runtime's message latency. from is the sending element index (-1 from
// main). Send never blocks; it may be called from entry methods, the
// main process, or engine callbacks.
func (a *Array) Send(from, idx int, entry *Entry, data interface{}) {
	el := a.Elem(idx)
	rt := a.rt
	msg := &Message{Data: data, From: from, SentAt: rt.Engine().Now()}
	t := &Task{
		Elem:        el,
		Entry:       entry,
		Msg:         msg,
		Seq:         rt.taskSeq,
		EnqueueTime: rt.Engine().Now(),
	}
	rt.taskSeq++
	if entry.Deps != nil {
		t.Deps = entry.Deps(el, msg)
	}
	if entry.Prefetch && rt.interceptor != nil {
		rt.interceptor.TaskCreated(t)
	}
	if rt.traceHook != nil {
		rt.traceHook.TaskSent(t)
	}
	rt.Stats.MessagesSent++
	pe := rt.PE(el.PE)
	rt.Engine().After(rt.params.MsgLatency, func() { pe.enqueueMsg(t) })
}

// Broadcast sends data to every element's entry method.
func (a *Array) Broadcast(from int, entry *Entry, data interface{}) {
	for i := range a.elems {
		a.Send(from, i, entry, data)
	}
}
