package charm

import (
	"testing"

	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// testRT builds a small runtime for scheduler tests.
func testRT(t *testing.T, numPEs int) (*sim.Engine, *Runtime) {
	t.Helper()
	e := sim.NewEngine(1)
	m := topology.KNL7250().MustBuild(e)
	rt := NewRuntime(m, numPEs, DefaultParams(), nil)
	t.Cleanup(e.Close)
	return e, rt
}

type counterChare struct{ runs int }

func TestEntryExecution(t *testing.T) {
	e, rt := testRT(t, 2)
	arr := rt.NewArray("c", 4, func(i int) Chare { return &counterChare{} }, nil)
	hit := arr.Register(Entry{
		Name: "hit",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			el.Obj.(*counterChare).runs++
		},
	})
	rt.Main(func(p *sim.Proc) {
		arr.Broadcast(-1, hit, nil)
	})
	e.RunAll()
	for i := 0; i < 4; i++ {
		if got := arr.Elem(i).Obj.(*counterChare).runs; got != 1 {
			t.Fatalf("element %d ran %d times", i, got)
		}
	}
	if rt.Stats.MessagesSent != 4 || rt.Stats.TasksExecuted != 4 {
		t.Fatalf("stats: %+v", rt.Stats)
	}
}

func TestRoundRobinMapping(t *testing.T) {
	_, rt := testRT(t, 4)
	arr := rt.NewArray("c", 8, func(i int) Chare { return nil }, nil)
	for i := 0; i < 8; i++ {
		if arr.Elem(i).PE != i%4 {
			t.Fatalf("element %d on PE %d, want %d", i, arr.Elem(i).PE, i%4)
		}
	}
}

func TestBlockMapping(t *testing.T) {
	_, rt := testRT(t, 4)
	arr := rt.NewArray("c", 8, func(i int) Chare { return nil }, MapBlock(8, 4))
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, w := range want {
		if arr.Elem(i).PE != w {
			t.Fatalf("block map elem %d -> PE %d, want %d", i, arr.Elem(i).PE, w)
		}
	}
}

func TestSerialExecutionPerPE(t *testing.T) {
	// Two chares on the same PE must not overlap execution.
	e, rt := testRT(t, 1)
	var active, maxActive int
	arr := rt.NewArray("c", 2, func(i int) Chare { return nil }, nil)
	slow := arr.Register(Entry{
		Name: "slow",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(1)
			active--
		},
	})
	rt.Main(func(p *sim.Proc) { arr.Broadcast(-1, slow, nil) })
	e.RunAll()
	if maxActive != 1 {
		t.Fatalf("max concurrent entries on one PE = %d, want 1", maxActive)
	}
}

func TestParallelAcrossPEs(t *testing.T) {
	e, rt := testRT(t, 2)
	arr := rt.NewArray("c", 2, func(i int) Chare { return nil }, nil)
	var finished []sim.Time
	slow := arr.Register(Entry{
		Name: "slow",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			p.Sleep(1)
			finished = append(finished, p.Now())
		},
	})
	rt.Main(func(p *sim.Proc) { arr.Broadcast(-1, slow, nil) })
	e.RunAll()
	if len(finished) != 2 {
		t.Fatalf("finished %d", len(finished))
	}
	// Both ran in parallel: completion within scheduling epsilon.
	if finished[1]-finished[0] > 1e-4 {
		t.Fatalf("PEs did not run in parallel: %v", finished)
	}
}

func TestChainedSends(t *testing.T) {
	e, rt := testRT(t, 2)
	arr := rt.NewArray("c", 2, func(i int) Chare { return &counterChare{} }, nil)
	var pong, ping *Entry
	pong = arr.Register(Entry{
		Name: "pong",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			el.Obj.(*counterChare).runs++
		},
	})
	ping = arr.Register(Entry{
		Name: "ping",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			arr.Send(el.Index, 1-el.Index, pong, "ball")
		},
	})
	rt.Main(func(p *sim.Proc) { arr.Send(-1, 0, ping, nil) })
	e.RunAll()
	if arr.Elem(1).Obj.(*counterChare).runs != 1 {
		t.Fatal("entry-to-entry send failed")
	}
}

func TestMessagePayloadAndFrom(t *testing.T) {
	e, rt := testRT(t, 1)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	var gotData interface{}
	var gotFrom int
	ent := arr.Register(Entry{
		Name: "recv",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			gotData, gotFrom = msg.Data, msg.From
		},
	})
	rt.Main(func(p *sim.Proc) { arr.Send(7, 0, ent, 42) })
	e.RunAll()
	if gotData != 42 || gotFrom != 7 {
		t.Fatalf("payload %v from %d", gotData, gotFrom)
	}
}

// fakeInterceptor queues every intercepted task and releases them all
// when released is called.
type fakeInterceptor struct {
	held []*struct {
		pe *PE
		t  *Task
	}
	intercepted int
	postCalls   int
	created     int
	admit       bool // when true, Intercept declines ownership
}

func (f *fakeInterceptor) Intercept(p *sim.Proc, pe *PE, t *Task) bool {
	f.intercepted++
	if f.admit {
		return false
	}
	f.held = append(f.held, &struct {
		pe *PE
		t  *Task
	}{pe, t})
	return true
}

func (f *fakeInterceptor) PostProcess(p *sim.Proc, pe *PE, t *Task) { f.postCalls++ }

func (f *fakeInterceptor) TaskCreated(t *Task) { f.created++ }

type fakeHandle struct {
	name string
	size int64
}

func (h *fakeHandle) Size() int64       { return h.size }
func (h *fakeHandle) BlockName() string { return h.name }

func TestInterceptorFlow(t *testing.T) {
	e, rt := testRT(t, 1)
	ic := &fakeInterceptor{}
	rt.SetInterceptor(ic)
	h := &fakeHandle{name: "A", size: 64}
	arr := rt.NewArray("c", 1, func(i int) Chare { return &counterChare{} }, nil)
	kern := arr.Register(Entry{
		Name:     "kern",
		Prefetch: true,
		Deps: func(el *Element, msg *Message) []DataDep {
			return []DataDep{{Handle: h, Mode: ReadWrite}}
		},
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			el.Obj.(*counterChare).runs++
		},
	})
	rt.Main(func(p *sim.Proc) { arr.Send(-1, 0, kern, nil) })
	e.RunAll()
	if ic.intercepted != 1 {
		t.Fatalf("intercepted = %d, want 1", ic.intercepted)
	}
	if arr.Elem(0).Obj.(*counterChare).runs != 0 {
		t.Fatal("held task ran anyway")
	}
	// Release: push to run queue from a fresh process.
	held := ic.held[0]
	e.Spawn("release", func(p *sim.Proc) { held.pe.PushRun(p, held.t) })
	e.RunAll()
	if arr.Elem(0).Obj.(*counterChare).runs != 1 {
		t.Fatal("released task did not run")
	}
	if ic.postCalls != 1 {
		t.Fatalf("postCalls = %d, want 1 (post-processing after prefetch entry)", ic.postCalls)
	}
	// Run-queue delivery must not re-intercept.
	if ic.intercepted != 1 {
		t.Fatalf("task re-intercepted from run queue")
	}
}

func TestInterceptorDecline(t *testing.T) {
	e, rt := testRT(t, 1)
	ic := &fakeInterceptor{admit: true}
	rt.SetInterceptor(ic)
	arr := rt.NewArray("c", 1, func(i int) Chare { return &counterChare{} }, nil)
	kern := arr.Register(Entry{
		Name:     "kern",
		Prefetch: true,
		Deps:     func(el *Element, msg *Message) []DataDep { return nil },
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			el.Obj.(*counterChare).runs++
		},
	})
	rt.Main(func(p *sim.Proc) { arr.Send(-1, 0, kern, nil) })
	e.RunAll()
	if arr.Elem(0).Obj.(*counterChare).runs != 1 {
		t.Fatal("declined task should execute inline")
	}
	if ic.postCalls != 1 {
		t.Fatal("post-processing skipped for inline prefetch task")
	}
}

func TestNonPrefetchNotIntercepted(t *testing.T) {
	e, rt := testRT(t, 1)
	ic := &fakeInterceptor{}
	rt.SetInterceptor(ic)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	plain := arr.Register(Entry{
		Name: "plain",
		Fn:   func(p *sim.Proc, pe *PE, el *Element, msg *Message) {},
	})
	rt.Main(func(p *sim.Proc) { arr.Send(-1, 0, plain, nil) })
	e.RunAll()
	if ic.intercepted != 0 {
		t.Fatal("plain entry was intercepted")
	}
	if ic.postCalls != 0 {
		t.Fatal("plain entry got post-processing")
	}
}

func TestRunQueuePriority(t *testing.T) {
	// A task pushed to the run queue runs before queued messages.
	e, rt := testRT(t, 1)
	var order []string
	arr := rt.NewArray("c", 2, func(i int) Chare { return nil }, MapBlock(2, 1))
	note := arr.Register(Entry{
		Name: "note",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			order = append(order, msg.Data.(string))
			p.Sleep(0.1)
		},
	})
	rt.Main(func(p *sim.Proc) {
		// Fill the message queue while PE is busy with the first.
		arr.Send(-1, 0, note, "m1")
		arr.Send(-1, 0, note, "m2")
		arr.Send(-1, 1, note, "m3")
		p.Sleep(0.05) // m1 is executing; m2, m3 queued
		rt.PE(0).PushRun(p, &Task{
			Elem:  arr.Elem(1),
			Entry: note,
			Msg:   &Message{Data: "ready", From: -1, SentAt: p.Now()},
		})
	})
	e.RunAll()
	if len(order) != 4 || order[0] != "m1" || order[1] != "ready" {
		t.Fatalf("order = %v, want ready to preempt queued messages", order)
	}
}

func TestReductionBarrier(t *testing.T) {
	e, rt := testRT(t, 2)
	arr := rt.NewArray("c", 4, func(i int) Chare { return nil }, nil)
	iterations := 0
	var work *Entry
	red := rt.NewReduction(4, func() {
		iterations++
		if iterations < 3 {
			arr.Broadcast(-1, work, nil)
		}
	})
	work = arr.Register(Entry{
		Name: "work",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			p.Sleep(0.01)
			red.Contribute()
		},
	})
	rt.Main(func(p *sim.Proc) { arr.Broadcast(-1, work, nil) })
	e.RunAll()
	if iterations != 3 {
		t.Fatalf("iterations = %d, want 3 (reusable barrier)", iterations)
	}
}

func TestReductionOverContributePanics(t *testing.T) {
	_, rt := testRT(t, 1)
	red := rt.NewReduction(1, func() {})
	red.Contribute()
	// Counter reset after firing; two more are fine, a third in the
	// same epoch is fine too (reusable). Over-contribution within an
	// epoch is n+1 contributions before callback fires, which cannot
	// happen through the public API without app bugs; simulate one:
	red.arrived = red.expect
	defer func() {
		if recover() == nil {
			t.Fatal("over-contribution did not panic")
		}
	}()
	red.Contribute()
	red.Contribute()
}

func TestNodegroup(t *testing.T) {
	_, rt := testRT(t, 1)
	type cache struct{ hits int }
	rt.RegisterGroup("blockCache", &cache{})
	g := rt.Group("blockCache").(*cache)
	g.hits++
	if rt.Group("blockCache").(*cache).hits != 1 {
		t.Fatal("nodegroup not shared")
	}
}

func TestNodegroupDuplicatePanics(t *testing.T) {
	_, rt := testRT(t, 1)
	rt.RegisterGroup("g", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate nodegroup did not panic")
		}
	}()
	rt.RegisterGroup("g", 2)
}

func TestIdleTraced(t *testing.T) {
	e := sim.NewEngine(1)
	m := topology.KNL7250().MustBuild(e)
	tr := projections.NewTracer(e, 1)
	rt := NewRuntime(m, 1, DefaultParams(), tr)
	defer e.Close()
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	work := arr.Register(Entry{
		Name: "w",
		Fn:   func(p *sim.Proc, pe *PE, el *Element, msg *Message) { p.Sleep(1) },
	})
	rt.Main(func(p *sim.Proc) {
		p.Sleep(2) // PE idles for 2s first
		arr.Send(-1, 0, work, nil)
	})
	e.RunAll()
	s := tr.Summarize()
	if s.Totals[projections.IdleWait] < 1.9 {
		t.Fatalf("idle time %v, want ~2s", s.Totals[projections.IdleWait])
	}
	if s.Totals[projections.Compute] < 0.99 {
		t.Fatalf("compute time %v, want ~1s", s.Totals[projections.Compute])
	}
}

func TestAccessModeStrings(t *testing.T) {
	if ReadOnly.String() != "readonly" || ReadWrite.String() != "readwrite" || WriteOnly.String() != "writeonly" {
		t.Fatal("access mode names")
	}
	if AccessMode(9).String() != "AccessMode(9)" {
		t.Fatal("unknown access mode")
	}
}

func TestConstructionPanics(t *testing.T) {
	e, rt := testRT(t, 2)
	_ = e
	cases := []func(){
		func() { rt.NewArray("", 0, func(i int) Chare { return nil }, nil) },
		func() {
			rt.NewArray("dup", 1, func(i int) Chare { return nil }, nil)
			rt.NewArray("dup", 1, func(i int) Chare { return nil }, nil)
		},
		func() {
			rt.NewArray("badmap", 1, func(i int) Chare { return nil }, func(i int) int { return 99 })
		},
		func() {
			a := rt.NewArray("ents", 1, func(i int) Chare { return nil }, nil)
			a.Register(Entry{Name: ""})
		},
		func() {
			a := rt.NewArray("ents2", 1, func(i int) Chare { return nil }, nil)
			a.Register(Entry{Name: "p", Prefetch: true, Fn: func(*sim.Proc, *PE, *Element, *Message) {}})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTaskString(t *testing.T) {
	_, rt := testRT(t, 1)
	arr := rt.NewArray("stencil", 2, func(i int) Chare { return nil }, nil)
	ent := arr.Register(Entry{Name: "kern", Fn: func(*sim.Proc, *PE, *Element, *Message) {}})
	task := &Task{Elem: arr.Elem(1), Entry: ent}
	if got := task.String(); got != "stencil[1].kern" {
		t.Fatalf("Task.String() = %q", got)
	}
}

func TestManyMessagesStress(t *testing.T) {
	e, rt := testRT(t, 8)
	arr := rt.NewArray("c", 64, func(i int) Chare { return &counterChare{} }, nil)
	work := arr.Register(Entry{
		Name: "w",
		Fn: func(p *sim.Proc, pe *PE, el *Element, msg *Message) {
			el.Obj.(*counterChare).runs++
			p.Sleep(0.001)
		},
	})
	rt.Main(func(p *sim.Proc) {
		for round := 0; round < 10; round++ {
			arr.Broadcast(-1, work, round)
		}
	})
	e.RunAll()
	for i := 0; i < 64; i++ {
		if got := arr.Elem(i).Obj.(*counterChare).runs; got != 10 {
			t.Fatalf("element %d ran %d times, want 10", i, got)
		}
	}
	if rt.Stats.MessagesDelivered != 640 {
		t.Fatalf("delivered %d, want 640", rt.Stats.MessagesDelivered)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	e, rt := testRT(t, 2)
	if rt.Engine() != e {
		t.Fatal("Engine()")
	}
	if rt.Machine() == nil || rt.Machine().Spec.Cores != 68 {
		t.Fatal("Machine()")
	}
	if rt.Tracer() != nil {
		t.Fatal("Tracer() should be nil here")
	}
	if rt.Params().SchedOverhead != DefaultParams().SchedOverhead {
		t.Fatal("Params()")
	}
	arr := rt.NewArray("acc", 2, func(i int) Chare { return nil }, nil)
	if arr.Name() != "acc" || arr.Len() != 2 {
		t.Fatal("array accessors")
	}
	if arr.Elem(0).Array() != arr {
		t.Fatal("Element.Array()")
	}
	ent := arr.Register(Entry{Name: "e", Fn: func(*sim.Proc, *PE, *Element, *Message) {}})
	if arr.Entry("e") != ent {
		t.Fatal("Entry lookup")
	}
	pe := rt.PE(0)
	if pe.Runtime() != rt || pe.ID() != 0 {
		t.Fatal("PE accessors")
	}
	if m, r := pe.QueueLengths(); m != 0 || r != 0 {
		t.Fatal("queue lengths")
	}
}

func TestElemOutOfRangePanics(t *testing.T) {
	_, rt := testRT(t, 1)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Elem did not panic")
		}
	}()
	arr.Elem(5)
}

func TestUnknownEntryPanics(t *testing.T) {
	_, rt := testRT(t, 1)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown entry did not panic")
		}
	}()
	arr.Entry("missing")
}

func TestUnknownGroupPanics(t *testing.T) {
	_, rt := testRT(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown group did not panic")
		}
	}()
	rt.Group("missing")
}

func TestMessageLatencyObserved(t *testing.T) {
	e, rt := testRT(t, 1)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	var deliveredAt sim.Time
	ent := arr.Register(Entry{
		Name: "w",
		Fn:   func(p *sim.Proc, pe *PE, el *Element, msg *Message) { deliveredAt = msg.SentAt },
	})
	rt.Main(func(p *sim.Proc) {
		p.Sleep(1)
		arr.Send(-1, 0, ent, nil)
	})
	e.RunAll()
	if deliveredAt != 1 {
		t.Fatalf("SentAt = %v, want 1", deliveredAt)
	}
}

func TestSchedOverheadAccumulates(t *testing.T) {
	e := sim.NewEngine(1)
	m := topology.KNL7250().MustBuild(e)
	params := Params{SchedOverhead: 0.5} // gigantic, to dominate
	rt := NewRuntime(m, 1, params, nil)
	defer e.Close()
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	ent := arr.Register(Entry{Name: "w", Fn: func(*sim.Proc, *PE, *Element, *Message) {}})
	rt.Main(func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			arr.Send(-1, 0, ent, nil)
		}
	})
	end := e.RunAll()
	if end < 2.0 {
		t.Fatalf("4 dispatches at 0.5s overhead each ended at %v, want >= 2", end)
	}
}
