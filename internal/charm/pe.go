package charm

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
)

// Task is a deliverable unit: a message bound for one chare element's
// entry method. The OOC layer wraps Tasks (plus their data dependences)
// into OOCTasks.
type Task struct {
	Elem  *Element
	Entry *Entry
	Msg   *Message

	// Seq is the runtime-wide send-order sequence number, assigned by
	// Array.Send (Broadcast included). Dense and monotonic from 0, it
	// lets per-task side tables (the trace recorder's ID table, for
	// one) live in slices instead of maps.
	Seq int64

	// Deps is resolved from the entry's dependence declaration when
	// the task is created.
	Deps []DataDep

	// EnqueueTime is when the task entered the system (send time).
	EnqueueTime sim.Time

	// Ctx is interceptor-private state attached during pre-processing
	// (the OOC layer stores its OOCTask wrapper here).
	Ctx interface{}
}

// String renders the task for diagnostics.
func (t *Task) String() string {
	return fmt.Sprintf("%s[%d].%s", t.Elem.arr.name, t.Elem.Index, t.Entry.Name)
}

// PE is a processing element: one worker with a converse scheduler
// process, a FIFO message queue and a FIFO run queue of OOC-ready
// tasks. The run queue has priority, matching the paper ("tasks are
// picked up in FIFO order from the run queue and scheduled").
type PE struct {
	rt *Runtime
	id int

	mu       sim.Mutex
	notEmpty *sim.Cond
	msgq     []*Task
	runq     []*Task

	proc *sim.Proc

	// Stats for this PE.
	Delivered int64
	Executed  int64
}

func newPE(rt *Runtime, id int) *PE {
	pe := &PE{rt: rt, id: id}
	pe.mu.AcquireCost = rt.params.LockCost
	pe.notEmpty = sim.NewCond(&pe.mu)
	return pe
}

// ID returns the PE index.
func (pe *PE) ID() int { return pe.id }

// Runtime returns the owning runtime.
func (pe *PE) Runtime() *Runtime { return pe.rt }

func (pe *PE) start() {
	pe.proc = pe.rt.Engine().Spawn(fmt.Sprintf("PE%d", pe.id), pe.loop)
}

// enqueueMsg appends a task to the message queue (called from the
// sender's context via an engine event after MsgLatency).
func (pe *PE) enqueueMsg(t *Task) {
	pe.msgq = append(pe.msgq, t)
	pe.notEmpty.Signal()
}

// PushRun adds an OOC-ready task to this PE's run queue and wakes the
// scheduler. It may be called from any process (IO threads, other PEs).
func (pe *PE) PushRun(p *sim.Proc, t *Task) {
	pe.mu.Lock(p)
	pe.runq = append(pe.runq, t)
	pe.mu.Unlock(p)
	pe.notEmpty.Signal()
}

// QueueLengths returns the current message- and run-queue lengths.
func (pe *PE) QueueLengths() (msgs, ready int) { return len(pe.msgq), len(pe.runq) }

// loop is the converse scheduler: pop run-queue tasks first, then
// messages; intercept [prefetch] messages; execute entry methods to
// completion, serially per PE.
func (pe *PE) loop(p *sim.Proc) {
	rt := pe.rt
	for {
		pe.mu.Lock(p)
		for len(pe.runq) == 0 && len(pe.msgq) == 0 {
			idleEnd := rt.tracer.Begin(pe.id, projections.IdleWait, "idle")
			pe.notEmpty.Wait(p)
			idleEnd()
		}
		var t *Task
		fromRunQueue := false
		if len(pe.runq) > 0 {
			t = pe.runq[0]
			pe.runq = pe.runq[1:]
			fromRunQueue = true
		} else {
			t = pe.msgq[0]
			pe.msgq = pe.msgq[1:]
		}
		pe.mu.Unlock(p)

		if rt.params.SchedOverhead > 0 {
			ovEnd := rt.tracer.Begin(pe.id, projections.Overhead, "sched")
			p.Sleep(rt.params.SchedOverhead)
			ovEnd()
		}
		rt.Stats.MessagesDelivered++
		pe.Delivered++

		// Interception point: fresh [prefetch] messages go through
		// the OOC layer's pre-processing. Tasks arriving from the run
		// queue were already admitted and run directly.
		if !fromRunQueue && t.Entry.Prefetch && rt.interceptor != nil {
			rt.Stats.TasksIntercepted++
			if rt.interceptor.Intercept(p, pe, t) {
				continue
			}
		}

		pe.execute(p, t)
	}
}

// execute runs the entry method and, for [prefetch] entries under an
// interceptor, the generated post-processing (eviction) step.
func (pe *PE) execute(p *sim.Proc, t *Task) {
	rt := pe.rt
	end := rt.tracer.Begin(pe.id, projections.Compute, t.Entry.Name)
	if rt.traceHook != nil {
		rt.traceHook.TaskRunStart(p, pe, t)
	}
	start := p.Now()
	t.Entry.Fn(p, pe, t.Elem, t.Msg)
	t.Elem.load += p.Now() - start
	if rt.traceHook != nil {
		rt.traceHook.TaskRunEnd(p, pe, t)
	}
	end()
	rt.Stats.TasksExecuted++
	pe.Executed++
	if t.Entry.Prefetch && rt.interceptor != nil {
		rt.interceptor.PostProcess(p, pe, t)
	}
}
