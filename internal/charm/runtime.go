// Package charm implements a Charm++-like over-decomposed task runtime
// on the simulation engine: chare arrays, entry methods with the
// [prefetch] attribute and declared data dependences, per-PE converse
// schedulers with FIFO message queues and run queues, reductions
// (barriers) and node-level groups.
//
// The memory-heterogeneity-aware layer (internal/core) plugs into this
// runtime through the Interceptor interface, exactly where the paper
// modifies Charm++: "Before a chare's entry method is about to be
// executed by delivery of its input message, we intercept the call and
// check whether the entry method needs prefetching of data."
package charm

import (
	"fmt"

	"github.com/hetmem/hetmem/internal/projections"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// Chare is an application object; any type can be a chare.
type Chare interface{}

// AccessMode is the declared use of a data dependence, matching the
// paper's .ci annotations (readonly:, readwrite:, writeonly:).
type AccessMode int

const (
	// ReadOnly blocks may be shared across concurrently-scheduled
	// tasks (matrix A and B blocks in the paper's MatMul).
	ReadOnly AccessMode = iota
	// ReadWrite blocks are private to one task at a time.
	ReadWrite
	// WriteOnly blocks are written without being read first; they
	// still need HBM residence before the kernel runs.
	WriteOnly
)

// String names the mode as the .ci syntax does.
func (m AccessMode) String() string {
	switch m {
	case ReadOnly:
		return "readonly"
	case ReadWrite:
		return "readwrite"
	case WriteOnly:
		return "writeonly"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// DataHandle is the runtime's view of a managed data block (the paper's
// CkIOHandle); internal/core provides the implementation.
type DataHandle interface {
	// Size returns the block size in bytes.
	Size() int64
	// BlockName identifies the block in traces.
	BlockName() string
}

// DataDep pairs a handle with its declared access mode.
type DataDep struct {
	Handle DataHandle
	Mode   AccessMode
}

// Interceptor is the hook the OOC layer installs. Intercept runs in the
// PE's scheduler process before a [prefetch] entry is delivered; if it
// returns true the interceptor has taken ownership (queued the task)
// and the scheduler moves on. PostProcess runs after a [prefetch] entry
// method finishes (the generated post-processing step that evicts).
type Interceptor interface {
	Intercept(p *sim.Proc, pe *PE, t *Task) bool
	PostProcess(p *sim.Proc, pe *PE, t *Task)
	// TaskCreated is called when a [prefetch] task is enqueued (at
	// send time), before delivery. The OOC layer uses it to track
	// which blocks have queued consumers — "the runtime system can
	// use the knowledge of data block dependences for tasks to
	// prefetch and evict" — so eviction prefers blocks with no
	// upcoming use.
	TaskCreated(t *Task)
}

// TraceHook observes scheduler activity for every entry method, not
// just [prefetch] ones: task creation at send time and the start/end of
// entry-method execution. Unlike Interceptor it has no influence on
// scheduling — hooks run at zero virtual-time cost — so an installed
// hook never perturbs the schedule it records (internal/trace relies on
// this for its capture-overhead guarantee).
type TraceHook interface {
	// TaskSent runs in the sender's context when a task is created,
	// after dependence resolution and before delivery is scheduled.
	TaskSent(t *Task)
	// TaskRunStart runs in the PE scheduler process immediately before
	// the entry-method body.
	TaskRunStart(p *sim.Proc, pe *PE, t *Task)
	// TaskRunEnd runs immediately after the entry-method body returns.
	TaskRunEnd(p *sim.Proc, pe *PE, t *Task)
}

// Params are runtime cost knobs, all in seconds. They give the
// simulated scheduler the small constant costs whose accumulation the
// paper's Projections traces show.
type Params struct {
	// SchedOverhead is charged per message dispatch by the converse
	// scheduler.
	SchedOverhead sim.Time
	// MsgLatency delays delivery of a sent message.
	MsgLatency sim.Time
	// LockCost is charged per queue/data-block lock acquisition.
	LockCost sim.Time
}

// DefaultParams returns costs representative of a tuned runtime on KNL:
// microsecond-scale scheduling, sub-microsecond locks.
func DefaultParams() Params {
	return Params{
		SchedOverhead: 2e-6,
		MsgLatency:    1e-6,
		LockCost:      0.3e-6,
	}
}

// Runtime is a node-level Charm-like runtime instance.
type Runtime struct {
	mach   *topology.Machine
	params Params
	pes    []*PE
	arrays map[string]*Array
	groups map[string]interface{}

	interceptor Interceptor
	traceHook   TraceHook
	tracer      *projections.Tracer
	taskSeq     int64 // next Task.Seq, incremented per Array.Send

	// Stats counts scheduler activity.
	Stats struct {
		MessagesSent      int64
		MessagesDelivered int64
		TasksIntercepted  int64
		TasksExecuted     int64
		Migrations        int64
	}
}

// NewRuntime builds a runtime with numPEs worker PEs on machine m.
// tracer may be nil.
func NewRuntime(m *topology.Machine, numPEs int, params Params, tracer *projections.Tracer) *Runtime {
	if numPEs <= 0 {
		panic("charm: need at least one PE")
	}
	if numPEs > m.Spec.Cores {
		panic(fmt.Sprintf("charm: %d PEs exceed %d cores", numPEs, m.Spec.Cores))
	}
	rt := &Runtime{
		mach:   m,
		params: params,
		arrays: make(map[string]*Array),
		groups: make(map[string]interface{}),
		tracer: tracer,
	}
	for i := 0; i < numPEs; i++ {
		pe := newPE(rt, i)
		rt.pes = append(rt.pes, pe)
		pe.start()
	}
	return rt
}

// SetInterceptor installs the OOC layer. It must be called before any
// messages are sent.
func (rt *Runtime) SetInterceptor(ic Interceptor) { rt.interceptor = ic }

// SetTraceHook installs (or, with nil, removes) the event-trace hook.
// Like SetInterceptor it must be called before any messages are sent.
func (rt *Runtime) SetTraceHook(th TraceHook) { rt.traceHook = th }

// Machine returns the machine the runtime executes on.
func (rt *Runtime) Machine() *topology.Machine { return rt.mach }

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.mach.Eng }

// Tracer returns the tracer (possibly nil).
func (rt *Runtime) Tracer() *projections.Tracer { return rt.tracer }

// Params returns the runtime cost knobs.
func (rt *Runtime) Params() Params { return rt.params }

// NumPEs returns the worker PE count.
func (rt *Runtime) NumPEs() int { return len(rt.pes) }

// PE returns PE i.
func (rt *Runtime) PE(i int) *PE { return rt.pes[i] }

// RegisterGroup stores a node-level shared object (Charm++ nodegroup),
// used by the MatMul kernel to cache read-only blocks at node level.
func (rt *Runtime) RegisterGroup(name string, obj interface{}) {
	if _, dup := rt.groups[name]; dup {
		panic("charm: duplicate nodegroup " + name)
	}
	rt.groups[name] = obj
}

// Group returns a registered nodegroup.
func (rt *Runtime) Group(name string) interface{} {
	g, ok := rt.groups[name]
	if !ok {
		panic("charm: unknown nodegroup " + name)
	}
	return g
}

// Main spawns the application's main process (the equivalent of the
// mainchare): setup code that sends the initial messages.
func (rt *Runtime) Main(body func(p *sim.Proc)) *sim.Proc {
	return rt.Engine().Spawn("main", body)
}

// Reduction is a counting barrier: when Expect contributions have
// arrived, the callback runs once (as an engine event). It mirrors
// Charm++ contribute/reduction with a CkCallback.
type Reduction struct {
	rt       *Runtime
	expect   int
	arrived  int
	callback func()
}

// NewReduction creates a reduction expecting expect contributions.
func (rt *Runtime) NewReduction(expect int, callback func()) *Reduction {
	if expect <= 0 {
		panic("charm: reduction must expect at least one contribution")
	}
	return &Reduction{rt: rt, expect: expect, callback: callback}
}

// Contribute adds one contribution; the final one fires the callback.
func (r *Reduction) Contribute() {
	r.arrived++
	if r.arrived > r.expect {
		panic("charm: too many reduction contributions")
	}
	if r.arrived == r.expect {
		r.arrived = 0 // reusable, like a Charm++ reduction per iteration
		cb := r.callback
		r.rt.Engine().Schedule(r.rt.Engine().Now(), cb)
	}
}
