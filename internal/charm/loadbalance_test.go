package charm

import (
	"testing"

	"github.com/hetmem/hetmem/internal/sim"
)

func TestMigrateToRoutesFutureMessages(t *testing.T) {
	e, rt := testRT(t, 2)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	var ranOn []int
	work := arr.Register(Entry{
		Name: "w",
		Fn:   func(p *sim.Proc, pe *PE, el *Element, msg *Message) { ranOn = append(ranOn, pe.ID()) },
	})
	rt.Main(func(p *sim.Proc) {
		arr.Send(-1, 0, work, nil)
		p.Sleep(0.1)
		arr.Elem(0).MigrateTo(1)
		arr.Send(-1, 0, work, nil)
	})
	e.RunAll()
	if len(ranOn) != 2 || ranOn[0] != 0 || ranOn[1] != 1 {
		t.Fatalf("executions on PEs %v, want [0 1]", ranOn)
	}
	if rt.Stats.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", rt.Stats.Migrations)
	}
}

func TestMigrateToInvalidPEPanics(t *testing.T) {
	_, rt := testRT(t, 2)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid migration target did not panic")
		}
	}()
	arr.Elem(0).MigrateTo(9)
}

func TestMigrateToSamePENotCounted(t *testing.T) {
	_, rt := testRT(t, 2)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	arr.Elem(0).MigrateTo(arr.Elem(0).PE)
	if rt.Stats.Migrations != 0 {
		t.Fatal("no-op migration counted")
	}
}

func TestLoadAccumulatesAndTakes(t *testing.T) {
	e, rt := testRT(t, 1)
	arr := rt.NewArray("c", 1, func(i int) Chare { return nil }, nil)
	work := arr.Register(Entry{
		Name: "w",
		Fn:   func(p *sim.Proc, pe *PE, el *Element, msg *Message) { p.Sleep(2) },
	})
	rt.Main(func(p *sim.Proc) {
		arr.Send(-1, 0, work, nil)
		arr.Send(-1, 0, work, nil)
	})
	e.RunAll()
	if got := arr.Elem(0).Load(); got != 4 {
		t.Fatalf("load = %v, want 4", got)
	}
	if got := arr.Elem(0).TakeLoad(); got != 4 {
		t.Fatalf("TakeLoad = %v", got)
	}
	if arr.Elem(0).Load() != 0 {
		t.Fatal("TakeLoad did not reset")
	}
}

func TestGreedyRebalanceEvensLoad(t *testing.T) {
	_, rt := testRT(t, 4)
	// 8 elements, all initially on PE 0, loads 8,7,...,1.
	arr := rt.NewArray("c", 8, func(i int) Chare { return nil }, func(i int) int { return 0 })
	for i := 0; i < 8; i++ {
		arr.Elem(i).load = sim.Time(8 - i)
	}
	if imb := MaxLoadImbalance(arr, 4); imb < 3.9 {
		t.Fatalf("setup: imbalance %.2f, want ~4 (everything on one PE)", imb)
	}
	moved := GreedyRebalance(arr, 4)
	if moved == 0 {
		t.Fatal("rebalance moved nothing")
	}
	// LPT on loads 8..1 over 4 PEs gives a perfect 9/9/9/9 split:
	// {8,1},{7,2},{6,3},{5,4}.
	per := map[int]sim.Time{}
	loads := []sim.Time{8, 7, 6, 5, 4, 3, 2, 1}
	for i := 0; i < 8; i++ {
		per[arr.Elem(i).PE] += loads[i]
	}
	for pe, l := range per {
		if l != 9 {
			t.Fatalf("PE %d load %v after LPT, want 9", pe, l)
		}
	}
	// Loads were consumed by TakeLoad.
	if arr.Elem(0).Load() != 0 {
		t.Fatal("rebalance did not reset loads")
	}
}

func TestMaxLoadImbalanceUniform(t *testing.T) {
	_, rt := testRT(t, 4)
	arr := rt.NewArray("c", 8, func(i int) Chare { return nil }, nil)
	for i := 0; i < 8; i++ {
		arr.Elem(i).load = 1
	}
	if imb := MaxLoadImbalance(arr, 4); imb != 1 {
		t.Fatalf("uniform imbalance %.2f, want 1", imb)
	}
	// Zero load: defined as balanced.
	for i := 0; i < 8; i++ {
		arr.Elem(i).load = 0
	}
	if imb := MaxLoadImbalance(arr, 4); imb != 1 {
		t.Fatalf("zero-load imbalance %.2f, want 1", imb)
	}
}
