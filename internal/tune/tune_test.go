package tune_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
	"github.com/hetmem/hetmem/internal/tune"
)

// captureStencil records the Small Fig8 overflow stencil under MultiIO —
// the same workload the replay-fidelity tests pin.
func captureStencil(t *testing.T) *trace.Capture {
	t.Helper()
	o := core.DefaultOptions(core.MultiIO)
	o.HBMReserve = exp.Small.HBMReserve()
	o.Metrics = true
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: exp.Small.NumPEs(),
		Opts:   o,
		Params: charm.DefaultParams(),
	})
	defer env.Close()
	rec := trace.NewRecorder(env.MG)
	rec.Attach()
	sizes := exp.Small.StencilReducedSizes()
	app, err := kernels.NewStencil(env.MG, exp.Small.StencilConfig(sizes[len(sizes)-1]))
	if err != nil {
		t.Fatalf("NewStencil: %v", err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatalf("stencil run: %v", err)
	}
	rec.Finish()
	return rec.Capture()
}

// TestAbandonedReplayIsSound pins the abandon proof at the replay layer:
// a replay abandoned at bound B must, when replayed fully, have a
// makespan >= B; and a bound above the true makespan must not perturb
// the result.
func TestAbandonedReplayIsSound(t *testing.T) {
	c := captureStencil(t)
	w, err := trace.Reconstruct(c)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	full, err := w.Replay(trace.ReplayConfig{})
	if err != nil {
		t.Fatalf("full replay: %v", err)
	}
	// Bound at half the true makespan: must abandon, and the claimed
	// lower bound must hold.
	half := full.Makespan / 2
	part, err := w.Replay(trace.ReplayConfig{AbandonAbove: half})
	if err != nil {
		t.Fatalf("bounded replay: %v", err)
	}
	if !part.Abandoned {
		t.Fatalf("replay bounded at %v did not abandon (full makespan %v)", half, full.Makespan)
	}
	if full.Makespan < part.Makespan {
		t.Fatalf("abandon bound %v is not a lower bound on the true makespan %v", part.Makespan, full.Makespan)
	}
	// Bound above the true makespan: completes with the exact result.
	loose, err := w.Replay(trace.ReplayConfig{AbandonAbove: full.Makespan * 2})
	if err != nil {
		t.Fatalf("loose-bound replay: %v", err)
	}
	if loose.Abandoned || loose.Makespan != full.Makespan {
		t.Fatalf("loose bound perturbed the replay: abandoned=%v makespan %v, want %v",
			loose.Abandoned, loose.Makespan, full.Makespan)
	}
}

// TestAbandonNeverEliminatesWinner is the search-level soundness
// property: over seeded sub-spaces of the knob grid, the abandoning
// search must recommend exactly the combination the no-abandon oracle
// ranks first — an abandoned partial replay may only ever discard
// candidates that a full replay would also rank behind the winner.
func TestAbandonNeverEliminatesWinner(t *testing.T) {
	c := captureStencil(t)
	def := tune.DefaultSpace()
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Sample a random sub-space: a subset of modes (never empty), a
		// sub-ladder, a subset of policies, both lazy settings.
		sub := tune.Space{Lazy: def.Lazy}
		for _, m := range def.Modes {
			if rng.Intn(2) == 0 {
				sub.Modes = append(sub.Modes, m)
			}
		}
		if len(sub.Modes) == 0 {
			sub.Modes = []string{def.Modes[rng.Intn(len(def.Modes))]}
		}
		sub.IOThreads = def.IOThreads[:1+rng.Intn(len(def.IOThreads))]
		sub.PrefetchDepths = def.PrefetchDepths[:1+rng.Intn(len(def.PrefetchDepths))]
		sub.EvictPolicies = def.EvictPolicies[rng.Intn(len(def.EvictPolicies)):]

		oracle, err := tune.Tune(c, tune.Config{Space: sub, NoAbandon: true})
		if err != nil {
			t.Fatalf("seed %d: oracle tune: %v", seed, err)
		}
		fast, err := tune.Tune(c, tune.Config{Space: sub})
		if err != nil {
			t.Fatalf("seed %d: tune: %v", seed, err)
		}
		if fast.Knobs != oracle.Knobs {
			t.Errorf("seed %d: abandoning search picked %+v, oracle picked %+v", seed, fast.Knobs, oracle.Knobs)
		}
		if fast.PredictedMakespanS != oracle.PredictedMakespanS {
			t.Errorf("seed %d: predicted makespan %v != oracle %v", seed, fast.PredictedMakespanS, oracle.PredictedMakespanS)
		}
		if fast.Abandoned == 0 && len(sub.Modes) > 1 {
			t.Logf("seed %d: note: no candidate was abandoned (space %v)", seed, sub.Modes)
		}
	}
}

// TestTuneDeterministic: two tune runs over the same capture produce
// byte-identical artifacts (modulo the digest, which is itself a pure
// function of the capture — so full byte identity).
func TestTuneDeterministic(t *testing.T) {
	c := captureStencil(t)
	a, err := tune.Tune(c, tune.Config{})
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	b, err := tune.Tune(c, tune.Config{})
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two tune runs over the same capture differ:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
	if a.Replays == 0 || len(a.Trace) == 0 {
		t.Fatalf("artifact carries no search trace: %+v", a)
	}
	if a.CaptureDigest == "" || a.Version != tune.ArtifactVersion {
		t.Fatalf("artifact missing provenance: %+v", a)
	}
}

// TestEvaluatorMemoizes: asking the evaluator for the same combination
// twice must not replay twice.
func TestEvaluatorMemoizes(t *testing.T) {
	c := captureStencil(t)
	ev, err := tune.NewEvaluator(c)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	k := ev.Base()
	k.EvictPolicy = core.Lookahead.Name()
	first, cached, err := ev.Eval(k, 0)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if cached {
		t.Fatalf("first eval reported a memo hit")
	}
	second, cached, err := ev.Eval(k, 0)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !cached || second.Makespan != first.Makespan {
		t.Fatalf("memo miss on repeat query: cached=%v makespan %v vs %v", cached, second.Makespan, first.Makespan)
	}
	replays, _, hits := ev.Stats()
	if replays != 1 || hits != 1 {
		t.Fatalf("replays=%d hits=%d, want 1 and 1", replays, hits)
	}
}

// TestArtifactRoundTrip: Save -> Load preserves the verdict and rejects
// foreign versions.
func TestArtifactRoundTrip(t *testing.T) {
	c := captureStencil(t)
	rc, err := tune.Tune(c, tune.Config{Space: tune.Space{
		Modes:         []string{core.MultiIO.String()},
		EvictPolicies: []string{core.DeclOrder.Name()},
	}})
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	path := t.TempDir() + "/" + tune.ArtifactName
	if err := rc.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := tune.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Knobs != rc.Knobs || got.CaptureDigest != rc.CaptureDigest {
		t.Fatalf("round trip changed the artifact: %+v vs %+v", got, rc)
	}
	if _, err := got.Options(); err != nil {
		t.Fatalf("recommended knobs do not rebuild options: %v", err)
	}
}
