// Package tune implements the trace-driven offline autotuner: given a
// capture (the JSONL trace of a real run), it searches the retunable
// knob space — movement strategy × IOThreads × PrefetchDepth ×
// eviction victim policy × lazy eviction — by replaying the captured
// workload through the real scheduler, and emits a versioned
// RecommendedConfig artifact naming the winner.
//
// The search is a coarse grid pass followed by hill-climb refinement.
// The grid walks every strategy's knob ladder under each victim policy
// and both eviction disciplines — the policy × laziness cross matters,
// because under eager eviction the victim policies often tie exactly
// (the block evicted next is the block just released either way) and a
// grid that fixed one discipline would hand the tie to visit order and
// strand the climb at a local optimum one coordinated move away from
// the winner. The climb then refines the best grid point one neighbour
// at a time — ladder rung up/down, victim policy switch, lazy toggle —
// accepting strict improvements until none remains.
// Every replay after the first runs with an early-abandon bound at the
// incumbent's makespan: virtual time only moves forward, so a replay
// still holding pending events at the bound provably cannot win and is
// cut off mid-flight (trace.ReplayConfig.AbandonAbove). Abandonment is
// sound — a discarded candidate's makespan is >= the incumbent's, so
// the full-replay winner is never eliminated — and the property test in
// tune_test.go checks exactly that against a no-abandon oracle.
//
// Everything is deterministic: the space is walked in declaration
// order, replays run in virtual time, and the artifact is a pure
// function of the capture bytes — two tune runs over the same capture
// are byte-identical, which `hmtrace tune` run twice demonstrates.
//
// The online side consumes the artifact as a warm start:
// adapt.Config.Warm opens the controller directly in the recommended
// configuration (skipping its probe phase), and hetmemd seeds each
// tenant's next adaptive session with the last settled verdict —
// DESIGN.md section 16 describes the full handshake.
package tune

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/trace"
)

// ArtifactVersion is the RecommendedConfig format version; Load rejects
// artifacts from a different version.
const ArtifactVersion = 1

// ArtifactName is the conventional file name for the artifact inside a
// capture directory — `hmtrace summary <dir>` looks for it there to
// print tune provenance next to the captures.
const ArtifactName = "tune.json"

// Space is the searched knob space. Zero-value fields fall back to
// DefaultSpace's. IOThreads applies to the Single-IO strategy's ladder,
// PrefetchDepths to Multi-IO's (0 = unlimited); the No-IO strategy has
// no ladder knob.
type Space struct {
	Modes          []string `json:"modes"`
	IOThreads      []int    `json:"io_threads"`
	PrefetchDepths []int    `json:"prefetch_depths"`
	EvictPolicies  []string `json:"evict_policies"`
	Lazy           []bool   `json:"lazy"`
}

// DefaultSpace returns the full search space: the three movement
// strategies, power-of-two ladders matching the online controller's,
// all victim policies, both eviction disciplines.
func DefaultSpace() Space {
	var policies []string
	for _, p := range core.EvictPolicies() {
		policies = append(policies, p.Name())
	}
	return Space{
		Modes:          []string{core.SingleIO.String(), core.NoIO.String(), core.MultiIO.String()},
		IOThreads:      []int{1, 2, 4, 8},
		PrefetchDepths: []int{1, 2, 4, 8, 0},
		EvictPolicies:  policies,
		Lazy:           []bool{false, true},
	}
}

// fill replaces zero-value fields with DefaultSpace's.
func (s Space) fill() Space {
	def := DefaultSpace()
	if len(s.Modes) == 0 {
		s.Modes = def.Modes
	}
	if len(s.IOThreads) == 0 {
		s.IOThreads = def.IOThreads
	}
	if len(s.PrefetchDepths) == 0 {
		s.PrefetchDepths = def.PrefetchDepths
	}
	if len(s.EvictPolicies) == 0 {
		s.EvictPolicies = def.EvictPolicies
	}
	if len(s.Lazy) == 0 {
		s.Lazy = def.Lazy
	}
	return s
}

// ladder returns the knob ladder a mode climbs, or nil for modes
// without one.
func (s Space) ladder(mode string) []int {
	switch mode {
	case core.SingleIO.String():
		return s.IOThreads
	case core.MultiIO.String():
		return s.PrefetchDepths
	}
	return nil
}

// Config parameterises a tune run.
type Config struct {
	// Space restricts the search; zero-value fields take DefaultSpace's.
	Space Space
	// NoAbandon disables early abandon, replaying every candidate to
	// completion. The search visits the same candidates and returns the
	// same winner (abandonment only ever discards provably-worse
	// candidates); the property test uses this mode as its oracle.
	NoAbandon bool
}

// Step is one search-trace entry: a candidate judged, in visit order.
type Step struct {
	Phase     string      `json:"phase"` // "grid" or "climb"
	Knobs     trace.Knobs `json:"knobs"`
	MakespanS float64     `json:"makespan_s"`
	Abandoned bool        `json:"abandoned,omitempty"`
	Memoized  bool        `json:"memoized,omitempty"`
	Best      bool        `json:"best,omitempty"` // became the incumbent
}

// RecommendedConfig is the tune verdict artifact: the winning knob set,
// its predicted makespan, the capture it was computed from (by digest),
// and the full search trace. It is versioned JSON, deterministic down
// to the byte for a given capture.
type RecommendedConfig struct {
	Version            int         `json:"version"`
	CaptureDigest      string      `json:"capture_digest"`
	RecordedKnobs      trace.Knobs `json:"recorded_knobs"`
	RecordedMakespanS  float64     `json:"recorded_makespan_s,omitempty"`
	Knobs              trace.Knobs `json:"knobs"`
	PredictedMakespanS float64     `json:"predicted_makespan_s"`
	Replays            int         `json:"replays"`
	Abandoned          int         `json:"abandoned"`
	MemoHits           int         `json:"memo_hits"`
	Trace              []Step      `json:"search_trace"`
}

// Options rebuilds the recommended core option set — what a warm start
// feeds to adapt.Config.Warm.
func (rc *RecommendedConfig) Options() (core.Options, error) {
	return rc.Knobs.Options()
}

// Bytes returns the canonical artifact encoding (indented JSON plus
// trailing newline) — the byte-identity surface for determinism checks.
func (rc *RecommendedConfig) Bytes() []byte {
	b, err := json.MarshalIndent(rc, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("tune: marshal artifact: %v", err))
	}
	return append(b, '\n')
}

// Save writes the artifact to path.
func (rc *RecommendedConfig) Save(path string) error {
	return os.WriteFile(path, rc.Bytes(), 0o644)
}

// Load reads and version-checks an artifact.
func Load(path string) (*RecommendedConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rc := &RecommendedConfig{}
	if err := json.Unmarshal(b, rc); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	if rc.Version != ArtifactVersion {
		return nil, fmt.Errorf("tune: %s: artifact version %d, this build supports %d", path, rc.Version, ArtifactVersion)
	}
	return rc, nil
}

// Tune searches the space over the capture and returns the verdict.
func Tune(c *trace.Capture, cfg Config) (*RecommendedConfig, error) {
	ev, err := NewEvaluator(c)
	if err != nil {
		return nil, err
	}
	return TuneWith(ev, cfg)
}

// searcher carries the incumbent through grid and climb.
type searcher struct {
	ev    *Evaluator
	cfg   Config
	space Space
	steps []Step
	best  Eval
	found bool
}

// bound returns the early-abandon bound for the next candidate: the
// incumbent's makespan, or 0 (replay fully) before one exists or when
// abandonment is disabled.
func (s *searcher) bound() float64 {
	if s.cfg.NoAbandon || !s.found {
		return 0
	}
	return s.best.Makespan
}

// judge evaluates one candidate and updates the incumbent. A candidate
// wins only by strict improvement: abandoned replays proved makespan >=
// incumbent, completed ones compare directly (the replay bound already
// cuts at the incumbent, so a completed run under a bound is strictly
// better by construction).
func (s *searcher) judge(phase string, k trace.Knobs) (bool, error) {
	v, cached, err := s.ev.Eval(k, s.bound())
	if err != nil {
		return false, err
	}
	st := Step{Phase: phase, Knobs: k, MakespanS: v.Makespan, Abandoned: v.Abandoned, Memoized: cached}
	improved := !v.Abandoned && (!s.found || v.Makespan < s.best.Makespan)
	if improved {
		s.best = v
		s.found = true
		st.Best = true
	}
	s.steps = append(s.steps, st)
	return improved, nil
}

// candidate derives a searchable knob set from the capture's recorded
// knobs: searched fields overridden, everything else (HBM reserve,
// wait-queue topology, metrics) kept as recorded. Ladder knobs that the
// mode does not read are zeroed so equivalent candidates memoize to the
// same key.
func (s *searcher) candidate(mode string, rung int, policy string, lazy bool) trace.Knobs {
	k := s.ev.Base()
	k.Mode = mode
	k.IOThreads = 0
	k.PrefetchDepth = 0
	switch mode {
	case core.SingleIO.String():
		k.IOThreads = rung
	case core.MultiIO.String():
		k.PrefetchDepth = rung
	}
	k.EvictPolicy = policy
	k.EvictLazily = lazy
	return k
}

// TuneWith runs the search over an existing evaluator (so a caller can
// share the evaluator — and its memo — with other queries).
func TuneWith(ev *Evaluator, cfg Config) (*RecommendedConfig, error) {
	s := &searcher{ev: ev, cfg: cfg, space: cfg.Space.fill()}

	// Grid pass: every strategy's full ladder under each victim policy
	// and eviction discipline. Early abandon keeps the cross cheap —
	// once an incumbent exists, losing candidates stop at its makespan.
	for _, mode := range s.space.Modes {
		ladder := s.space.ladder(mode)
		if ladder == nil {
			ladder = []int{0}
		}
		for _, rung := range ladder {
			for _, pol := range s.space.EvictPolicies {
				for _, lazy := range s.space.Lazy {
					if _, err := s.judge("grid", s.candidate(mode, rung, pol, lazy)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if !s.found {
		return nil, fmt.Errorf("tune: no candidate completed a replay (empty search space?)")
	}

	// Hill-climb refinement from the grid winner: ladder rung up/down,
	// each other victim policy, lazy toggle — first improvement restarts
	// the scan, no improvement ends the search. The strategy is fixed
	// (the grid already ranked all of them on their full ladders).
	for improved := true; improved; {
		improved = false
		for _, n := range s.neighbours(s.best.Knobs) {
			won, err := s.judge("climb", n)
			if err != nil {
				return nil, err
			}
			if won {
				improved = true
				break
			}
		}
	}

	replays, abandons, hits := ev.Stats()
	rc := &RecommendedConfig{
		Version:            ArtifactVersion,
		CaptureDigest:      ev.Digest(),
		RecordedKnobs:      ev.Base(),
		RecordedMakespanS:  float64(ev.RecordedMakespan()),
		Knobs:              s.best.Knobs,
		PredictedMakespanS: float64(s.best.Makespan),
		Replays:            replays,
		Abandoned:          abandons,
		MemoHits:           hits,
		Trace:              s.steps,
	}
	return rc, nil
}

// neighbours enumerates the climb moves from k in deterministic order:
// ladder rung down, rung up, each other victim policy, lazy toggle.
func (s *searcher) neighbours(k trace.Knobs) []trace.Knobs {
	var out []trace.Knobs
	ladder := s.space.ladder(k.Mode)
	if ladder != nil {
		rung := k.IOThreads
		if k.Mode == core.MultiIO.String() {
			rung = k.PrefetchDepth
		}
		at := -1
		for i, v := range ladder {
			if v == rung {
				at = i
				break
			}
		}
		if at > 0 {
			out = append(out, s.candidate(k.Mode, ladder[at-1], k.EvictPolicy, k.EvictLazily))
		}
		if at >= 0 && at+1 < len(ladder) {
			out = append(out, s.candidate(k.Mode, ladder[at+1], k.EvictPolicy, k.EvictLazily))
		}
	}
	rung := k.IOThreads + k.PrefetchDepth // exactly one is set, or neither
	for _, pol := range s.space.EvictPolicies {
		if pol != k.EvictPolicy {
			out = append(out, s.candidate(k.Mode, rung, pol, k.EvictLazily))
		}
	}
	for _, lz := range s.space.Lazy {
		if lz != k.EvictLazily {
			out = append(out, s.candidate(k.Mode, rung, k.EvictPolicy, lz))
		}
	}
	return out
}
