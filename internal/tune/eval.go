package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/trace"
)

// Eval is one judged knob combination: the makespan the replay engine
// measured for it, or — when Abandoned — the proof that its makespan is
// at least Bound (the replay was cut off as soon as that was certain).
type Eval struct {
	Knobs     trace.Knobs `json:"knobs"`
	Makespan  sim.Time    `json:"makespan_s"`
	Abandoned bool        `json:"abandoned,omitempty"`
	// Bound is the abandon bound the replay ran under (0 = none). An
	// abandoned Eval proves Makespan >= Bound and nothing tighter, so a
	// memo hit is only conclusive for queries with bounds <= Bound.
	Bound sim.Time `json:"-"`
}

// Evaluator turns a capture into a reusable makespan oracle: the
// workload is reconstructed once, every judged knob set replays through
// the real scheduler, and results are memoized so a search (or a
// what-if loop) never pays for the same combination twice. It is the
// single replay path shared by `hmtrace tune`, `hmtrace whatif` and the
// X15 driver.
type Evaluator struct {
	cap    *trace.Capture
	w      *trace.Workload
	base   trace.Knobs
	digest string
	memo   map[string]*Eval

	replays  int
	abandons int
	hits     int
}

// Digest fingerprints a capture: SHA-256 hex of its canonical encoding.
// It is the identity artifacts carry, and what `hmtrace summary` checks
// before attributing an artifact's verdict to a capture.
func Digest(c *trace.Capture) string {
	sum := sha256.Sum256(c.Bytes())
	return hex.EncodeToString(sum[:])
}

// NewEvaluator reconstructs the capture's workload and fingerprints the
// capture so artifacts can name the exact input they were computed from.
func NewEvaluator(c *trace.Capture) (*Evaluator, error) {
	w, err := trace.Reconstruct(c)
	if err != nil {
		return nil, err
	}
	return &Evaluator{
		cap:    c,
		w:      w,
		base:   w.Meta.Knobs,
		digest: Digest(c),
		memo:   make(map[string]*Eval),
	}, nil
}

// Base returns the capture's recorded knob set — the template judged
// combinations are derived from (fields outside the search space keep
// their recorded values).
func (e *Evaluator) Base() trace.Knobs { return e.base }

// Digest returns the capture fingerprint (SHA-256 hex).
func (e *Evaluator) Digest() string { return e.digest }

// Workload returns the reconstructed workload.
func (e *Evaluator) Workload() *trace.Workload { return e.w }

// RecordedMakespan returns the makespan of the original run from the
// capture's stats footer, or 0 for a truncated capture without one.
func (e *Evaluator) RecordedMakespan() sim.Time {
	if st := e.cap.Stats(); st != nil {
		return st.Makespan
	}
	return 0
}

// Stats reports how many replays ran, how many of those were abandoned
// early, and how many queries the memo answered without replaying.
func (e *Evaluator) Stats() (replays, abandons, memoHits int) {
	return e.replays, e.abandons, e.hits
}

// key canonicalises a knob set for memoization. Knobs is a flat struct,
// so its JSON image (declaration-order fields) is a stable identity.
func key(k trace.Knobs) string {
	b, err := json.Marshal(k)
	if err != nil {
		panic(fmt.Sprintf("tune: marshal knobs: %v", err))
	}
	return string(b)
}

// Eval judges one knob combination. bound > 0 enables early abandon:
// the replay stops as soon as its makespan provably cannot beat the
// bound (trace.ReplayConfig.AbandonAbove). cached reports a memo hit.
//
// Memo semantics under abandonment: a completed Eval answers any query;
// an abandoned one proves only Makespan >= its Bound, so it satisfies a
// new query only when the new bound is <= the proven one. A search
// whose incumbent only improves always passes shrinking bounds, so its
// memo hits are always conclusive; a looser query re-replays and the
// stored entry is upgraded.
func (e *Evaluator) Eval(k trace.Knobs, bound sim.Time) (Eval, bool, error) {
	id := key(k)
	if v, ok := e.memo[id]; ok {
		if !v.Abandoned || (bound > 0 && bound <= v.Bound) {
			e.hits++
			return *v, true, nil
		}
	}
	if _, err := e.Replay(k, bound); err != nil {
		return Eval{}, false, err
	}
	return *e.memo[id], false, nil
}

// Replay judges k like Eval but returns the full replay result, capture
// included — what `hmtrace whatif` renders its comparison table from.
// The verdict still lands in the memo (so a following search benefits),
// but a memo hit cannot reproduce a capture, so Replay always re-drives
// the workload.
func (e *Evaluator) Replay(k trace.Knobs, bound sim.Time) (*trace.ReplayResult, error) {
	res, err := e.w.Replay(trace.ReplayConfig{Knobs: &k, AbandonAbove: bound})
	if err != nil {
		return nil, err
	}
	e.replays++
	if res.Abandoned {
		e.abandons++
	}
	e.memo[key(k)] = &Eval{Knobs: k, Makespan: res.Makespan, Abandoned: res.Abandoned, Bound: bound}
	return res, nil
}
