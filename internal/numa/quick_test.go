package numa

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/sim"
)

// TestQuickAllocFreeAccounting: random alloc/free/migrate sequences
// keep node usage consistent with the set of live buffers and end at
// zero.
func TestQuickAllocFreeAccounting(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(1)
		sys := memsim.NewSystem(e, []memsim.NodeSpec{
			{Name: "DDR", Kind: memsim.DDR, Cap: 64 * gb, ReadBW: 100 * float64(gb), WriteBW: 80 * float64(gb)},
			{Name: "HBM", Kind: memsim.HBM, Cap: 8 * gb, ReadBW: 400 * float64(gb), WriteBW: 380 * float64(gb)},
		})
		a := New(sys)
		var live []*Buffer
		ok := true
		e.Spawn("driver", func(p *sim.Proc) {
			for step := 0; step < 120 && ok; step++ {
				switch r.Intn(4) {
				case 0, 1: // allocate
					size := int64(1+r.Intn(512)) * (1 << 20)
					node := r.Intn(2)
					policy := Policy(r.Intn(3))
					b, err := a.Alloc(size, policy, node)
					if err != nil {
						if !errors.Is(err, ErrNoSpace) {
							ok = false
						}
						continue
					}
					live = append(live, b)
				case 2: // free
					if len(live) == 0 {
						continue
					}
					k := r.Intn(len(live))
					if err := live[k].Free(); err != nil {
						ok = false
					}
					live = append(live[:k], live[k+1:]...)
				case 3: // migrate
					if len(live) == 0 {
						continue
					}
					k := r.Intn(len(live))
					if _, err := a.Migrate(p, live[k], r.Intn(2)); err != nil && !errors.Is(err, ErrNoSpace) {
						ok = false
					}
				}
				// Invariant: node usage equals the sum of live parts.
				var want [2]int64
				for _, b := range live {
					for n := 0; n < 2; n++ {
						want[n] += b.BytesOn(n)
					}
				}
				for n := 0; n < 2; n++ {
					if sys.Node(n).Used() != want[n] {
						ok = false
					}
				}
			}
			for _, b := range live {
				if err := b.Free(); err != nil {
					ok = false
				}
			}
			if sys.Node(0).Used() != 0 || sys.Node(1).Used() != 0 {
				ok = false
			}
			if a.LiveBuffers != 0 {
				ok = false
			}
		})
		e.RunAll()
		e.Close()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBufferSizeConserved: a buffer's parts always sum to its
// size, under any policy and after any migration.
func TestQuickBufferSizeConserved(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(1)
		sys := memsim.NewSystem(e, []memsim.NodeSpec{
			{Name: "DDR", Kind: memsim.DDR, Cap: 64 * gb, ReadBW: float64(gb), WriteBW: float64(gb)},
			{Name: "HBM", Kind: memsim.HBM, Cap: 4 * gb, ReadBW: float64(gb), WriteBW: float64(gb)},
		})
		a := New(sys)
		size := int64(1+r.Intn(6*1024)) * (1 << 20)
		b, err := a.Alloc(size, Policy(r.Intn(3)), r.Intn(2))
		if err != nil {
			return true // no space is fine
		}
		sumParts := func() int64 {
			var s int64
			for _, p := range b.Parts() {
				s += p.Size
			}
			return s
		}
		if sumParts() != size {
			return false
		}
		ok := true
		e.Spawn("mig", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				a.Migrate(p, b, r.Intn(2))
				if sumParts() != size {
					ok = false
				}
			}
		})
		e.RunAll()
		e.Close()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
