// Package numa provides a libnuma-like allocation API over the
// simulated memory system: AllocOnNode/Free with placement policies
// (bind, preferred, interleave) plus the alloc-copy-free migration
// routine the paper uses to move data blocks between MCDRAM and DDR4
// ("create space in destination memory and then move the data ...
// copy to destination and then freeing the source").
//
// Node numbering follows the paper's flat-mode KNL convention: DDR4 is
// memory node 0, HBM (MCDRAM) is memory node 1.
package numa

import (
	"errors"
	"fmt"

	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/sim"
)

// ErrNoSpace is returned when an allocation cannot be satisfied on the
// requested node(s).
var ErrNoSpace = errors.New("numa: insufficient capacity on requested node")

// ErrFreed is returned when operating on an already-freed buffer.
var ErrFreed = errors.New("numa: buffer already freed")

// Policy selects where an Alloc places data, mirroring numactl
// policies.
type Policy int

const (
	// Bind allocates strictly on the given node and fails when full
	// (numactl --membind).
	Bind Policy = iota
	// Preferred allocates on the given node, overflowing to the other
	// nodes in id order when full (numactl --preferred). This is the
	// paper's Naive/Baseline placement.
	Preferred
	// Interleave spreads the allocation evenly across all nodes with
	// space (numactl --interleave).
	Interleave
)

// String returns the numactl-style name of the policy.
func (p Policy) String() string {
	switch p {
	case Bind:
		return "membind"
	case Preferred:
		return "preferred"
	case Interleave:
		return "interleave"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Part is a contiguous portion of a buffer resident on one node.
type Part struct {
	Node *memsim.Node
	Size int64
}

// Buffer is an allocated region, possibly spread over several nodes
// (under Interleave or Preferred overflow).
type Buffer struct {
	a     *Allocator
	parts []Part
	size  int64
	freed bool
}

// Allocator tracks allocations against a memory system.
type Allocator struct {
	sys *memsim.System

	// MemcpyRateCap bounds the rate of a single migration memcpy in
	// bytes/second (one thread cannot saturate a memory controller by
	// itself). Zero means uncapped.
	MemcpyRateCap float64

	// MigrateOpCost is a fixed virtual-time charge per Migrate call:
	// the destination allocation (mmap + first-touch faults), source
	// free and bookkeeping around the memcpy itself.
	MigrateOpCost sim.Time

	// Statistics.
	LiveBuffers    int
	TotalAllocs    int64
	TotalFrees     int64
	BytesMigrated  float64
	MigrationTime  sim.Time
	MigrationCount int64
}

// New returns an allocator over sys.
func New(sys *memsim.System) *Allocator { return &Allocator{sys: sys} }

// System returns the underlying memory system.
func (a *Allocator) System() *memsim.System { return a.sys }

// AllocOnNode allocates size bytes strictly on the node with the given
// id (numa_alloc_onnode). It fails with ErrNoSpace when the node cannot
// hold the allocation.
func (a *Allocator) AllocOnNode(size int64, node int) (*Buffer, error) {
	n := a.sys.Node(node)
	if !n.Reserve(size) {
		return nil, fmt.Errorf("%w: %d bytes on %s (%d free)", ErrNoSpace, size, n.Name, n.Free())
	}
	a.LiveBuffers++
	a.TotalAllocs++
	return &Buffer{a: a, size: size, parts: []Part{{Node: n, Size: size}}}, nil
}

// Alloc allocates size bytes according to policy. node names the target
// node for Bind and Preferred and is ignored for Interleave.
func (a *Allocator) Alloc(size int64, policy Policy, node int) (*Buffer, error) {
	switch policy {
	case Bind:
		return a.AllocOnNode(size, node)
	case Preferred:
		return a.allocPreferred(size, node)
	case Interleave:
		return a.allocInterleave(size)
	default:
		return nil, fmt.Errorf("numa: unknown policy %v", policy)
	}
}

// allocPreferred fills the preferred node first and overflows the
// remainder to the other nodes in id order.
func (a *Allocator) allocPreferred(size int64, node int) (*Buffer, error) {
	order := []*memsim.Node{a.sys.Node(node)}
	for _, n := range a.sys.Nodes() {
		if n.ID != node {
			order = append(order, n)
		}
	}
	var parts []Part
	left := size
	for _, n := range order {
		if left == 0 {
			break
		}
		take := n.Free()
		if take > left {
			take = left
		}
		if take <= 0 {
			continue
		}
		if !n.Reserve(take) {
			continue
		}
		parts = append(parts, Part{Node: n, Size: take})
		left -= take
	}
	if left > 0 {
		for _, p := range parts {
			p.Node.Release(p.Size)
		}
		return nil, fmt.Errorf("%w: %d bytes under preferred policy", ErrNoSpace, size)
	}
	return &Buffer{a: a, size: size, parts: parts, freed: false}, a.noteAlloc()
}

// allocInterleave spreads size evenly over all nodes, proportionally
// shrinking shares for nodes without room.
func (a *Allocator) allocInterleave(size int64) (*Buffer, error) {
	nodes := a.sys.Nodes()
	share := size / int64(len(nodes))
	var parts []Part
	left := size
	for i, n := range nodes {
		take := share
		if i == len(nodes)-1 {
			take = left
		}
		if take > n.Free() {
			take = n.Free()
		}
		if take <= 0 {
			continue
		}
		if !n.Reserve(take) {
			continue
		}
		parts = append(parts, Part{Node: n, Size: take})
		left -= take
	}
	// Second pass: push any remainder wherever there is room.
	for _, n := range nodes {
		if left == 0 {
			break
		}
		take := n.Free()
		if take > left {
			take = left
		}
		if take <= 0 {
			continue
		}
		if !n.Reserve(take) {
			continue
		}
		parts = append(parts, Part{Node: n, Size: take})
		left -= take
	}
	if left > 0 {
		for _, p := range parts {
			p.Node.Release(p.Size)
		}
		return nil, fmt.Errorf("%w: %d bytes under interleave policy", ErrNoSpace, size)
	}
	return &Buffer{a: a, size: size, parts: parts}, a.noteAlloc()
}

func (a *Allocator) noteAlloc() error {
	a.LiveBuffers++
	a.TotalAllocs++
	return nil
}

// Size returns the buffer's size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// Parts returns a copy of the buffer's per-node layout; mutating it
// does not affect the buffer. Hot paths iterate with NumParts/Part to
// avoid the per-call allocation.
func (b *Buffer) Parts() []Part { return append([]Part(nil), b.parts...) }

// NumParts returns the number of layout parts.
func (b *Buffer) NumParts() int { return len(b.parts) }

// Part returns the i-th layout part by value.
func (b *Buffer) Part(i int) Part { return b.parts[i] }

// Freed reports whether the buffer has been freed.
func (b *Buffer) Freed() bool { return b.freed }

// OnNode reports whether the whole buffer resides on the node with the
// given id.
func (b *Buffer) OnNode(id int) bool {
	return len(b.parts) == 1 && b.parts[0].Node.ID == id
}

// BytesOn returns how many of the buffer's bytes live on node id.
func (b *Buffer) BytesOn(id int) int64 {
	var total int64
	for _, p := range b.parts {
		if p.Node.ID == id {
			total += p.Size
		}
	}
	return total
}

// Free releases the buffer's capacity (numa_free). Double-free returns
// ErrFreed.
func (b *Buffer) Free() error {
	if b.freed {
		return ErrFreed
	}
	for _, p := range b.parts {
		p.Node.Release(p.Size)
	}
	b.freed = true
	b.a.LiveBuffers--
	b.a.TotalFrees++
	return nil
}

// Memcpy copies src's contents into dst in virtual time, charging source
// read and destination write bandwidth for each (src part × dst part)
// overlap. Both buffers must be live and the same size. It returns the
// elapsed time.
func (a *Allocator) Memcpy(p *sim.Proc, dst, src *Buffer) (sim.Time, error) {
	if dst.freed || src.freed {
		return 0, ErrFreed
	}
	if dst.size != src.size {
		return 0, fmt.Errorf("numa: memcpy size mismatch (%d vs %d)", dst.size, src.size)
	}
	t0 := p.Now()
	// Walk both part lists in tandem, emitting one flow per
	// (src-part, dst-part) overlap; flows run in parallel and the copy
	// completes when all do.
	var wg sim.WaitGroup
	si, di := 0, 0
	sOff, dOff := int64(0), int64(0)
	lat := sim.Time(0)
	for si < len(src.parts) && di < len(dst.parts) {
		sp, dp := src.parts[si], dst.parts[di]
		chunk := sp.Size - sOff
		if r := dp.Size - dOff; r < chunk {
			chunk = r
		}
		if l := sp.Node.Latency + dp.Node.Latency; l > lat {
			lat = l
		}
		wg.Add(1)
		a.sys.StartFlow(memsim.FlowSpec{
			Bytes: float64(chunk),
			Demands: []memsim.Demand{
				{Node: sp.Node, Access: memsim.Read},
				{Node: dp.Node, Access: memsim.Write},
			},
			RateCap: a.MemcpyRateCap,
			OnDone:  wg.Done,
		})
		sOff += chunk
		dOff += chunk
		if sOff == sp.Size {
			si++
			sOff = 0
		}
		if dOff == dp.Size {
			di++
			dOff = 0
		}
	}
	if lat > 0 {
		p.Sleep(lat)
	}
	wg.Wait(p)
	return p.Now() - t0, nil
}

// Migrate moves a live buffer to the given node using the paper's
// routine: allocate a same-sized destination buffer, memcpy, free the
// source. On success the buffer's layout is updated in place. A buffer
// already entirely on the target node migrates in zero time.
func (a *Allocator) Migrate(p *sim.Proc, b *Buffer, node int) (sim.Time, error) {
	if b.freed {
		return 0, ErrFreed
	}
	if b.OnNode(node) {
		return 0, nil
	}
	// Allocate the destination before charging the fixed op cost: the
	// capacity claim must be visible to other processes at the instant
	// the caller's staging reservation is consumed, or two concurrent
	// migrations can both see the same free space during the op-cost
	// sleep and over-commit the target node.
	dst, err := a.AllocOnNode(b.size, node)
	if err != nil {
		return 0, err
	}
	if a.MigrateOpCost > 0 {
		p.Sleep(a.MigrateOpCost)
	}
	t0 := p.Now()
	if _, err := a.Memcpy(p, dst, b); err != nil {
		dst.Free()
		return 0, err
	}
	d := p.Now() - t0 + a.MigrateOpCost
	// Free the old location and adopt the new one.
	for _, part := range b.parts {
		part.Node.Release(part.Size)
	}
	b.parts = dst.parts
	// dst's identity dissolves into b; account it as freed.
	dst.freed = true
	a.LiveBuffers--
	a.TotalFrees++
	a.BytesMigrated += float64(b.size)
	a.MigrationTime += d
	a.MigrationCount++
	return d, nil
}
