package numa

import (
	"errors"
	"math"
	"testing"

	"github.com/hetmem/hetmem/internal/memsim"
	"github.com/hetmem/hetmem/internal/sim"
)

const gb = int64(1) << 30

func testSetup() (*sim.Engine, *memsim.System, *Allocator) {
	e := sim.NewEngine(1)
	sys := memsim.NewSystem(e, []memsim.NodeSpec{
		{Name: "DDR4", Kind: memsim.DDR, Cap: 96 * gb, ReadBW: 100 * float64(gb), WriteBW: 80 * float64(gb)},
		{Name: "MCDRAM", Kind: memsim.HBM, Cap: 16 * gb, ReadBW: 400 * float64(gb), WriteBW: 380 * float64(gb)},
	})
	return e, sys, New(sys)
}

func TestPolicyString(t *testing.T) {
	if Bind.String() != "membind" || Preferred.String() != "preferred" || Interleave.String() != "interleave" {
		t.Fatal("policy names")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy name")
	}
}

func TestAllocOnNode(t *testing.T) {
	_, sys, a := testSetup()
	b, err := a.AllocOnNode(4*gb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !b.OnNode(1) || b.Size() != 4*gb {
		t.Fatal("buffer not on HBM or wrong size")
	}
	if sys.Node(1).Used() != 4*gb {
		t.Fatal("HBM usage not accounted")
	}
	if err := b.Free(); err != nil {
		t.Fatal(err)
	}
	if sys.Node(1).Used() != 0 {
		t.Fatal("free did not release")
	}
	if err := b.Free(); !errors.Is(err, ErrFreed) {
		t.Fatalf("double free err = %v, want ErrFreed", err)
	}
}

func TestAllocOnNodeNoSpace(t *testing.T) {
	_, _, a := testSetup()
	if _, err := a.AllocOnNode(17*gb, 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestPreferredOverflow(t *testing.T) {
	_, _, a := testSetup()
	// 20 GB preferred on 16 GB HBM: 16 on HBM, 4 overflow to DDR.
	b, err := a.Alloc(20*gb, Preferred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.BytesOn(1); got != 16*gb {
		t.Fatalf("bytes on HBM = %d, want 16GB", got)
	}
	if got := b.BytesOn(0); got != 4*gb {
		t.Fatalf("bytes on DDR = %d, want 4GB", got)
	}
	if b.OnNode(1) {
		t.Fatal("split buffer claims single node")
	}
}

func TestPreferredNoOverflowNeeded(t *testing.T) {
	_, _, a := testSetup()
	b, err := a.Alloc(8*gb, Preferred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !b.OnNode(1) {
		t.Fatal("should be entirely on HBM")
	}
}

func TestPreferredTotallyFull(t *testing.T) {
	_, _, a := testSetup()
	if _, err := a.Alloc(200*gb, Preferred, 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// Failure must not leak reservations.
	_, sys, _ := testSetup()
	if sys.Node(0).Used() != 0 || sys.Node(1).Used() != 0 {
		t.Fatal("failed alloc leaked reservations")
	}
}

func TestInterleave(t *testing.T) {
	_, sys, a := testSetup()
	b, err := a.Alloc(8*gb, Interleave, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.BytesOn(0) != 4*gb || b.BytesOn(1) != 4*gb {
		t.Fatalf("interleave split %d/%d, want 4GB/4GB", b.BytesOn(0), b.BytesOn(1))
	}
	b.Free()
	if sys.Node(0).Used() != 0 || sys.Node(1).Used() != 0 {
		t.Fatal("interleave free leaked")
	}
}

func TestInterleaveSkewedWhenNodeFull(t *testing.T) {
	_, _, a := testSetup()
	// Fill HBM to 15 GB, then interleave 10 GB: HBM can only take 1.
	pre, err := a.AllocOnNode(15*gb, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pre.Free()
	b, err := a.Alloc(10*gb, Interleave, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.BytesOn(1) != 1*gb || b.BytesOn(0) != 9*gb {
		t.Fatalf("skewed interleave %d HBM / %d DDR, want 1/9", b.BytesOn(1), b.BytesOn(0))
	}
}

func TestMemcpyTime(t *testing.T) {
	e, _, a := testSetup()
	src, _ := a.AllocOnNode(10*gb, 0)
	dst, _ := a.AllocOnNode(10*gb, 1)
	var dur sim.Time
	e.Spawn("cp", func(p *sim.Proc) {
		d, err := a.Memcpy(p, dst, src)
		if err != nil {
			t.Error(err)
		}
		dur = d
	})
	e.RunAll()
	want := 10.0 / 100.0 // DDR read 100 GB/s is the bottleneck
	if math.Abs(dur-want) > 1e-9 {
		t.Fatalf("memcpy took %v, want %v", dur, want)
	}
}

func TestMemcpySizeMismatch(t *testing.T) {
	e, _, a := testSetup()
	src, _ := a.AllocOnNode(1*gb, 0)
	dst, _ := a.AllocOnNode(2*gb, 1)
	e.Spawn("cp", func(p *sim.Proc) {
		if _, err := a.Memcpy(p, dst, src); err == nil {
			t.Error("size mismatch not detected")
		}
	})
	e.RunAll()
}

func TestMemcpyFreedBuffer(t *testing.T) {
	e, _, a := testSetup()
	src, _ := a.AllocOnNode(1*gb, 0)
	dst, _ := a.AllocOnNode(1*gb, 1)
	src.Free()
	e.Spawn("cp", func(p *sim.Proc) {
		if _, err := a.Memcpy(p, dst, src); !errors.Is(err, ErrFreed) {
			t.Errorf("err = %v, want ErrFreed", err)
		}
	})
	e.RunAll()
}

func TestMemcpySplitBuffers(t *testing.T) {
	// A split source (overflowed Preferred alloc) copies correctly to
	// a single-node destination.
	e, _, a := testSetup()
	fill, _ := a.AllocOnNode(14*gb, 1)
	src, err := a.Alloc(4*gb, Preferred, 1) // 2GB HBM + 2GB DDR
	if err != nil {
		t.Fatal(err)
	}
	if src.BytesOn(1) != 2*gb {
		t.Fatalf("setup: src HBM bytes = %d", src.BytesOn(1))
	}
	fill.Free()
	dst, _ := a.AllocOnNode(4*gb, 0)
	var dur sim.Time
	e.Spawn("cp", func(p *sim.Proc) {
		d, err := a.Memcpy(p, dst, src)
		if err != nil {
			t.Error(err)
		}
		dur = d
	})
	e.RunAll()
	// Two parallel 2GB flows; bottleneck DDR write 80 GB/s shared by
	// both flows (HBM->DDR and DDR->DDR): 4GB / 80 GB/s = 0.05 s.
	if math.Abs(dur-0.05) > 1e-9 {
		t.Fatalf("split memcpy took %v, want 0.05", dur)
	}
}

func TestMigrate(t *testing.T) {
	e, sys, a := testSetup()
	b, _ := a.AllocOnNode(8*gb, 0)
	e.Spawn("mig", func(p *sim.Proc) {
		d, err := a.Migrate(p, b, 1)
		if err != nil {
			t.Error(err)
		}
		if d <= 0 {
			t.Error("migration took no time")
		}
	})
	e.RunAll()
	if !b.OnNode(1) {
		t.Fatal("buffer not on HBM after migrate")
	}
	if sys.Node(0).Used() != 0 {
		t.Fatal("migration did not free DDR")
	}
	if sys.Node(1).Used() != 8*gb {
		t.Fatal("migration did not reserve HBM")
	}
	if a.MigrationCount != 1 || a.BytesMigrated != float64(8*gb) {
		t.Fatalf("migration stats: count=%d bytes=%g", a.MigrationCount, a.BytesMigrated)
	}
}

func TestMigrateNoopWhenAlreadyThere(t *testing.T) {
	e, _, a := testSetup()
	b, _ := a.AllocOnNode(1*gb, 1)
	e.Spawn("mig", func(p *sim.Proc) {
		d, err := a.Migrate(p, b, 1)
		if err != nil || d != 0 {
			t.Errorf("noop migrate: d=%v err=%v", d, err)
		}
	})
	e.RunAll()
}

func TestMigrateNeedsTransientSpace(t *testing.T) {
	// The paper's routine allocates destination space before copying:
	// migrating 10 GB into HBM with only 8 GB free must fail.
	e, _, a := testSetup()
	fill, _ := a.AllocOnNode(8*gb, 1)
	defer fill.Free()
	b, _ := a.AllocOnNode(10*gb, 0)
	e.Spawn("mig", func(p *sim.Proc) {
		if _, err := a.Migrate(p, b, 1); !errors.Is(err, ErrNoSpace) {
			t.Errorf("err = %v, want ErrNoSpace", err)
		}
	})
	e.RunAll()
	if !b.OnNode(0) {
		t.Fatal("failed migration moved the buffer")
	}
}

func TestMigrateFreedBuffer(t *testing.T) {
	e, _, a := testSetup()
	b, _ := a.AllocOnNode(1*gb, 0)
	b.Free()
	e.Spawn("mig", func(p *sim.Proc) {
		if _, err := a.Migrate(p, b, 1); !errors.Is(err, ErrFreed) {
			t.Errorf("err = %v, want ErrFreed", err)
		}
	})
	e.RunAll()
}

func TestMemcpyRateCap(t *testing.T) {
	e, _, a := testSetup()
	a.MemcpyRateCap = 10 * float64(gb)
	src, _ := a.AllocOnNode(10*gb, 0)
	dst, _ := a.AllocOnNode(10*gb, 1)
	var dur sim.Time
	e.Spawn("cp", func(p *sim.Proc) {
		dur, _ = a.Memcpy(p, dst, src)
	})
	e.RunAll()
	if math.Abs(dur-1.0) > 1e-9 {
		t.Fatalf("capped memcpy took %v, want 1.0", dur)
	}
}

func TestAllocatorStats(t *testing.T) {
	_, _, a := testSetup()
	b1, _ := a.AllocOnNode(1*gb, 0)
	b2, _ := a.Alloc(1*gb, Preferred, 1)
	if a.LiveBuffers != 2 || a.TotalAllocs != 2 {
		t.Fatalf("live=%d allocs=%d", a.LiveBuffers, a.TotalAllocs)
	}
	b1.Free()
	b2.Free()
	if a.LiveBuffers != 0 || a.TotalFrees != 2 {
		t.Fatalf("live=%d frees=%d", a.LiveBuffers, a.TotalFrees)
	}
}

func TestAllocUnknownPolicy(t *testing.T) {
	_, _, a := testSetup()
	if _, err := a.Alloc(1, Policy(42), 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMigrateOpCostCharged(t *testing.T) {
	e, _, a := testSetup()
	a.MigrateOpCost = 0.5
	b, _ := a.AllocOnNode(1*gb, 0)
	var dur sim.Time
	e.Spawn("m", func(p *sim.Proc) {
		d, err := a.Migrate(p, b, 1)
		if err != nil {
			t.Error(err)
		}
		dur = d
	})
	e.RunAll()
	// 1 GB at 100 GB/s = 0.01 s copy + 0.5 s fixed cost.
	if dur < 0.5 || dur > 0.52 {
		t.Fatalf("migration with op cost took %v, want ~0.51", dur)
	}
}
