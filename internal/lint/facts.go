package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The facts layer is hmlint's second-generation foundation: a bottom-up
// pass over every analysis-target package that summarises each declared
// function before any analyzer runs. PR 4's analyzers were strictly
// per-package and intraprocedural; the bug classes that bit the repo
// since (positional tier lookups fixed in PR 8, condvar discipline in
// the hetmemd service, goroutine lifecycles in the parallel cluster)
// all span call chains, so the interprocedural analyzers — lockorder
// and goroleak — consume these summaries instead of re-walking bodies.
//
// Identity is types.Func: the loader type-checks each package exactly
// once and dependents import the same *types.Package, so a function
// object is canonical across the whole graph and the call graph can be
// keyed on it directly.

// Facts is the cross-package summary database handed to analyzers via
// Pass.Facts when any selected analyzer sets NeedsFacts.
type Facts struct {
	fset  *token.FileSet
	fns   map[*types.Func]*FnFact
	order []*FnFact // deterministic (package, then source) order

	cycles       []lockCycle
	cyclesCached bool
}

// FnFact is one function's summary: its static call sites annotated
// with the lock classes held at the call, its own lock acquisitions,
// and whether its body contains completion-signalling operations
// (channel send/close, WaitGroup.Done, Cond.Signal/Broadcast).
type FnFact struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Calls    []CallSite
	Acquires []LockAcq

	// LocalSignal reports a completion signal lexically inside the
	// function (including its closures): a channel send or close, a
	// WaitGroup.Done, or a Cond.Signal/Broadcast.
	LocalSignal bool

	// transAcq is the fixpoint of lock classes acquired by this
	// function or any transitive callee; filled by transAcquires.
	transAcq map[string]token.Pos

	signal int8 // memo for Signals: 0 unknown, 1 yes, -1 visiting/no
}

// CallSite is one static call to another analysis-target function.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
	Held   []heldLock // lock classes held at the call, sorted by class
}

// LockAcq is one mutex acquisition, with the classes already held.
type LockAcq struct {
	Class string
	Pos   token.Pos
	Held  []heldLock
}

type heldLock struct {
	Class string
	Pos   token.Pos
}

// ComputeFacts builds the facts database over pkgs. Packages come from
// the loader in dependency order, so iteration order — and therefore
// every derived report — is deterministic.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{fns: make(map[*types.Func]*FnFact)}
	for _, pkg := range pkgs {
		if f.fset == nil {
			f.fset = pkg.Fset
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fact := &FnFact{Fn: obj, Decl: fd, Pkg: pkg}
				w := &factsWalker{pkg: pkg, fact: fact}
				w.walkBody(fd.Body.List, newHeldState())
				f.fns[obj] = fact
				f.order = append(f.order, fact)
			}
		}
	}
	return f
}

// Fn returns the summary for a function object, or nil for functions
// outside the analysis target (standard library, interface methods).
func (f *Facts) Fn(obj *types.Func) *FnFact { return f.fns[obj] }

// Functions returns every summarised function in deterministic order.
// The slice is a copy; the database itself stays append-only.
func (f *Facts) Functions() []*FnFact { return append([]*FnFact(nil), f.order...) }

// Signals reports whether fn — or any function it statically calls,
// transitively — contains a completion signal (channel send/close,
// WaitGroup.Done, Cond.Signal/Broadcast). goroleak uses it to accept
// `go s.Loop()`-style spawns whose join evidence lives down the call
// chain. Recursion through cycles resolves to the local evidence only.
func (f *Facts) Signals(obj *types.Func) bool {
	fact := f.fns[obj]
	if fact == nil {
		return false
	}
	switch fact.signal {
	case 1:
		return true
	case -1:
		return false // resolved no, or currently on the DFS stack
	}
	fact.signal = -1 // visiting: cycles contribute nothing
	result := fact.LocalSignal
	if !result {
		for _, c := range fact.Calls {
			if f.Signals(c.Callee) {
				result = true
				break
			}
		}
	}
	if result {
		fact.signal = 1
	}
	return result
}

// --- held-lock state tracking ---

// heldState is the walker's lock bookkeeping at one program point,
// mirroring locksafe's lockState but keyed by global lock class.
type heldState struct {
	held map[string]token.Pos
}

func newHeldState() *heldState { return &heldState{held: map[string]token.Pos{}} }

func (st *heldState) clone() *heldState {
	c := newHeldState()
	for k, v := range st.held {
		c.held[k] = v
	}
	return c
}

func (st *heldState) snapshot() []heldLock {
	if len(st.held) == 0 {
		return nil
	}
	out := make([]heldLock, 0, len(st.held))
	for k, v := range st.held {
		out = append(out, heldLock{Class: k, Pos: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// factsWalker records acquisitions, call sites and signal evidence for
// one function, tracking held lock classes in source order with branch
// cloning (the same approximation locksafe uses: a class counts as held
// after a branch only when every falling-through path holds it).
type factsWalker struct {
	pkg  *Package
	fact *FnFact
}

// lockClass canonicalises a mutex expression into a global class name:
//
//	s.mu      (s *serve.Server)  -> "serve.Server.mu"
//	s.ioMu[i] (s *core.multiIO)  -> "core.multiIO.ioMu[]"
//	pkgVar                       -> "pkg.pkgVar"
//	local                        -> "pkg.Func.local"
//
// Indexed families collapse onto one class: acquiring two members of a
// per-PE mutex array without a rank order is itself a lock-order
// hazard, so the coarsening errs on the reporting side.
func (w *factsWalker) lockClass(e ast.Expr) string {
	suffix := ""
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			suffix = "[]"
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			if owner := namedFrom(w.pkg.Info.TypeOf(x.X)); owner != nil {
				return owner.Obj().Pkg().Name() + "." + owner.Obj().Name() + "." + x.Sel.Name + suffix
			}
			return w.pkg.Name + "." + x.Sel.Name + suffix
		case *ast.Ident:
			if obj := w.pkg.Info.ObjectOf(x); obj != nil && obj.Parent() == w.pkg.Types.Scope() {
				return w.pkg.Name + "." + x.Name + suffix
			}
			return w.pkg.Name + "." + w.fact.Fn.Name() + "." + x.Name + suffix
		default:
			return w.pkg.Name + "." + exprString(e) + suffix
		}
	}
}

func (w *factsWalker) isMutexExpr(e ast.Expr) bool {
	t := w.pkg.Info.TypeOf(e)
	return isNamedType(t, "internal/sim", "Mutex") || isNamedType(t, "sync", "Mutex") ||
		isNamedType(t, "sync", "RWMutex")
}

// calleeOf resolves a call expression to its static callee, or nil for
// dynamic calls (function values, interface methods outside the facts
// database still resolve to their *types.Func — the lookup in Facts.Fn
// filters those out).
func (w *factsWalker) calleeOf(call *ast.CallExpr) *types.Func {
	return staticCallee(w.pkg.Info, call)
}

// staticCallee resolves a call expression to the *types.Func it
// statically names, or nil for dynamic calls through function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (w *factsWalker) walkBody(stmts []ast.Stmt, st *heldState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *factsWalker) walkStmt(s ast.Stmt, st *heldState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.walkExpr(s.X, st)
	case *ast.SendStmt:
		w.fact.LocalSignal = true
		w.walkExpr(s.Chan, st)
		w.walkExpr(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e, st)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X, st)
	case *ast.DeferStmt:
		if recv := selectorCall(s.Call, "Unlock"); recv != nil && w.isMutexExpr(recv) {
			// The unlock runs at exit; the mutex stays held for the
			// rest of the body, which is exactly what matters for
			// ordering edges — no state change.
			return false
		}
		w.walkCallParts(s.Call, newHeldState())
	case *ast.GoStmt:
		// The goroutine runs without the spawner's locks.
		w.walkCallParts(s.Call, newHeldState())
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, st)
		}
		return true
	case *ast.BlockStmt:
		return w.walkBody(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkBody(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		w.merge(st, thenSt, thenTerm, elseSt, elseTerm)
		return thenTerm && elseTerm && s.Else != nil
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st)
		}
		w.walkBody(s.Body.List, st.clone())
	case *ast.RangeStmt:
		w.walkExpr(s.X, st)
		w.walkBody(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkBody(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkBody(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if snd, ok := cc.Comm.(*ast.SendStmt); ok {
					w.walkStmt(snd, st.clone())
				}
				w.walkBody(cc.Body, st.clone())
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	}
	return false
}

// merge intersects the fall-through held sets of a branch.
func (w *factsWalker) merge(st, thenSt *heldState, thenTerm bool, elseSt *heldState, elseTerm bool) {
	exits := make([]*heldState, 0, 2)
	if !thenTerm {
		exits = append(exits, thenSt)
	}
	if !elseTerm {
		exits = append(exits, elseSt)
	}
	if len(exits) == 0 {
		return
	}
	held := map[string]token.Pos{}
	for k, v := range exits[0].held {
		inAll := true
		for _, e := range exits[1:] {
			if _, ok := e.held[k]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			held[k] = v
		}
	}
	st.held = held
}

func (w *factsWalker) walkExpr(e ast.Expr, st *heldState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures run in their own context; lock state does not
			// flow in, but their acquisitions, calls and signals are
			// attributed to the enclosing function.
			w.walkBody(n.Body.List, newHeldState())
			return false
		case *ast.CallExpr:
			w.handleCall(n, st)
		}
		return true
	})
}

// walkCallParts analyses the function-literal parts of a go/defer call
// with a fresh lock context.
func (w *factsWalker) walkCallParts(call *ast.CallExpr, st *heldState) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		w.walkBody(fl.Body.List, st)
	} else {
		w.handleCall(call, st)
	}
	for _, a := range call.Args {
		if fl, ok := a.(*ast.FuncLit); ok {
			w.walkBody(fl.Body.List, newHeldState())
		}
	}
}

func (w *factsWalker) handleCall(call *ast.CallExpr, st *heldState) {
	if recv := selectorCall(call, "Lock"); recv != nil && w.isMutexExpr(recv) {
		class := w.lockClass(recv)
		w.fact.Acquires = append(w.fact.Acquires, LockAcq{
			Class: class, Pos: call.Pos(), Held: st.snapshot(),
		})
		st.held[class] = call.Pos()
		return
	}
	if recv := selectorCall(call, "RLock"); recv != nil && w.isMutexExpr(recv) {
		class := w.lockClass(recv)
		w.fact.Acquires = append(w.fact.Acquires, LockAcq{
			Class: class, Pos: call.Pos(), Held: st.snapshot(),
		})
		st.held[class] = call.Pos()
		return
	}
	if recv := selectorCall(call, "Unlock"); recv != nil && w.isMutexExpr(recv) {
		delete(st.held, w.lockClass(recv))
		return
	}
	if recv := selectorCall(call, "RUnlock"); recv != nil && w.isMutexExpr(recv) {
		delete(st.held, w.lockClass(recv))
		return
	}
	// Signal evidence: close(ch), WaitGroup.Done, Cond.Signal/Broadcast.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			w.fact.LocalSignal = true
		}
	}
	for _, name := range [...]string{"Done", "Signal", "Broadcast"} {
		if recv := selectorCall(call, name); recv != nil {
			t := w.pkg.Info.TypeOf(recv)
			if isNamedType(t, "sync", "WaitGroup") || isNamedType(t, "internal/sim", "WaitGroup") ||
				isNamedType(t, "sync", "Cond") || isNamedType(t, "internal/sim", "Cond") {
				w.fact.LocalSignal = true
			}
		}
	}
	if callee := w.calleeOf(call); callee != nil {
		w.fact.Calls = append(w.fact.Calls, CallSite{
			Callee: callee, Pos: call.Pos(), Held: st.snapshot(),
		})
	}
}

// --- lock-order graph ---

// lockEdge is one "from is held while to is acquired" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	rel      string // RelPath of the package owning pos
	via      string // callee name for interprocedural edges, "" for direct
}

// lockCycle is one reportable inconsistency in the global order graph.
type lockCycle struct {
	pos token.Pos
	rel string
	msg string
}

// transAcquires computes, for every function, the set of lock classes
// acquired by it or any transitive callee (the classic bottom-up
// summary fixpoint; the graph is small, so round-robin iteration to a
// fixed point is fine).
func (f *Facts) transAcquires() {
	for _, fn := range f.order {
		fn.transAcq = map[string]token.Pos{}
		for _, a := range fn.Acquires {
			fn.transAcq[a.Class] = a.Pos
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range f.order {
			for _, c := range fn.Calls {
				callee := f.fns[c.Callee]
				if callee == nil {
					continue
				}
				// Sorted iteration keeps the propagated witness positions
				// (and so the reports) independent of map order.
				classes := make([]string, 0, len(callee.transAcq))
				for class := range callee.transAcq {
					classes = append(classes, class)
				}
				sort.Strings(classes)
				for _, class := range classes {
					if _, ok := fn.transAcq[class]; !ok {
						fn.transAcq[class] = c.Pos
						changed = true
					}
				}
			}
		}
	}
}

// LockCycles detects cycles in the global lock-order graph. An edge
// A -> B exists when some function acquires B (directly, or anywhere
// down a call chain) while holding A. A cycle means two call paths
// acquire the same locks in conflicting order — the classic deadlock
// precondition. Each cycle is reported once, anchored at its
// smallest-position edge, in that edge's package (so suppressions at
// the site work).
func (f *Facts) LockCycles() []lockCycle {
	if !f.cyclesCached {
		f.cyclesCached = true
		f.computeLockCycles()
	}
	return append([]lockCycle(nil), f.cycles...)
}

func (f *Facts) computeLockCycles() {
	f.transAcquires()

	// Collect edges, keeping the smallest-position witness per pair.
	edges := map[string]map[string]lockEdge{}
	add := func(e lockEdge) {
		if e.from == e.to && e.via == "" {
			// Direct recursive locking is locksafe's report, and the
			// sim runtime panics on it at run time; the order graph
			// cares about distinct classes and call-chain recursion.
			return
		}
		m := edges[e.from]
		if m == nil {
			m = map[string]lockEdge{}
			edges[e.from] = m
		}
		if old, ok := m[e.to]; !ok || e.pos < old.pos {
			m[e.to] = e
		}
	}
	for _, fn := range f.order {
		for _, a := range fn.Acquires {
			for _, h := range a.Held {
				add(lockEdge{from: h.Class, to: a.Class, pos: a.Pos, rel: fn.Pkg.RelPath})
			}
		}
		for _, c := range fn.Calls {
			if len(c.Held) == 0 {
				continue
			}
			callee := f.fns[c.Callee]
			if callee == nil {
				continue
			}
			for class := range callee.transAcq {
				for _, h := range c.Held {
					add(lockEdge{from: h.Class, to: class, pos: c.Pos,
						rel: fn.Pkg.RelPath, via: c.Callee.Name()})
				}
			}
		}
	}

	// Tarjan SCC over the class graph, with sorted iteration for
	// deterministic output.
	nodes := make([]string, 0, len(edges))
	seen := map[string]bool{}
	for from, m := range edges {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range m {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)
	succ := func(n string) []string {
		m := edges[n]
		out := make([]string, 0, len(m))
		for to := range m {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(n string)
	strongconnect = func(n string) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range succ(n) {
			if _, ok := index[m]; !ok {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}

	f.cycles = nil
	for _, scc := range sccs {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		var member []lockEdge
		for _, from := range scc {
			for _, to := range succ(from) {
				if inSCC[to] {
					member = append(member, edges[from][to])
				}
			}
		}
		// Single nodes without a self-edge are not cycles.
		if len(scc) == 1 && len(member) == 0 {
			continue
		}
		sort.Slice(member, func(i, j int) bool { return member[i].pos < member[j].pos })
		var b strings.Builder
		fmt.Fprintf(&b, "lock-order cycle among %s:", strings.Join(scc, ", "))
		for i, e := range member {
			if i > 0 {
				b.WriteString(";")
			}
			p := f.fset.Position(e.pos)
			if e.via != "" {
				fmt.Fprintf(&b, " %s -> %s via %s (%s:%d)", e.from, e.to, e.via, p.Filename, p.Line)
			} else {
				fmt.Fprintf(&b, " %s -> %s (%s:%d)", e.from, e.to, p.Filename, p.Line)
			}
		}
		b.WriteString("; inconsistent acquisition order can deadlock")
		f.cycles = append(f.cycles, lockCycle{pos: member[0].pos, rel: member[0].rel, msg: b.String()})
	}
	sort.Slice(f.cycles, func(i, j int) bool { return f.cycles[i].pos < f.cycles[j].pos })
}
