// Package tierchain exercises the positional-node-access ban: raw
// node IDs and node-list indices are not tier positions; only the
// kind-ranked chain is.
package tierchain

import "github.com/hetmem/hetmem/internal/memsim"

type runtime struct {
	sys   *memsim.System
	tiers []*memsim.Node
}

func (r *runtime) init() {
	r.tiers = r.sys.Chain()
}

// hbmByID assumes node 1 is the HBM — exactly the PR 8 bug: a spec
// listing DDR first makes node 1 the HBM, any other order does not.
func hbmByID(sys *memsim.System) *memsim.Node {
	return sys.Node(1) // want `positional node lookup sys\.Node\(1\) assumes node IDs follow tier order`
}

// nearByIndex indexes the raw id-ordered list.
func nearByIndex(sys *memsim.System) *memsim.Node {
	return sys.Nodes()[1] // want `positional index sys\.Nodes\(\)\[1\] of a raw memsim node list`
}

// viaLocal is the same bug behind a local variable.
func viaLocal(sys *memsim.System) *memsim.Node {
	nodes := sys.Nodes()
	return nodes[1] // want `positional index nodes\[1\] of a raw memsim node list`
}

// chainAccess is the sanctioned positional surface: Chain sorts by
// tier rank before indexing.
func chainAccess(sys *memsim.System) *memsim.Node {
	return sys.Chain()[0]
}

// chainLocal keeps working through a chain-derived variable.
func chainLocal(sys *memsim.System) *memsim.Node {
	chain := sys.Chain()
	return chain[0]
}

// chainField keeps working through a chain-derived struct field
// (assigned in init above).
func (r *runtime) near() *memsim.Node {
	return r.tiers[0]
}

// byKind and variable indices are fine.
func byKind(sys *memsim.System) *memsim.Node {
	return sys.NodeByKind(memsim.HBM)
}

func nth(sys *memsim.System, i int) *memsim.Node {
	return sys.Chain()[i]
}
