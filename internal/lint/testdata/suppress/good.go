// Package fixture exercises the //hmlint:ignore suppression protocol.
package fixture

import "time"

// startup may read the wall clock: the value feeds an operator-facing
// log line, never a table. The directive documents exactly that.
func startup() time.Time {
	//hmlint:ignore determinism operator-facing log line, never reaches a table
	return time.Now()
}
