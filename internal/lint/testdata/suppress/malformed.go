package fixture

import "time"

// malformed carries an ignore directive without a reason: the directive
// itself becomes a finding and suppresses nothing.
func malformed() time.Time {
	//hmlint:ignore determinism
	return time.Now()
}
