// Package fixture exercises the optionsmut analyzer: core.Options must
// flow through the NewManager/Retune Validate funnel; stray field
// writes configure nothing.
package fixture

import (
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
)

func deadCopy(m *core.Manager) {
	o := m.Options()
	o.PrefetchDepth = 4 // want `configures nothing and bypasses Validate`
}

func retuned(m *core.Manager) error {
	o := m.Options()
	o.PrefetchDepth = 4
	return m.Retune(o)
}

func validated(m *core.Manager) error {
	o := m.Options()
	o.PrefetchDepth = 4
	return o.Validate()
}

func lateWrite(m *core.Manager) error {
	o := m.Options()
	o.PrefetchDepth = 4
	err := m.Retune(o)
	o.PrefetchDepth = 8 // want `mutated after it was handed to Retune`
	return err
}

func postConstruct(rt *charm.Runtime) *core.Manager {
	o := core.Options{Mode: core.MultiIO}
	m := core.NewManager(rt, o)
	o.PrefetchDepth = 2 // want `options mutated after NewManager already copied them`
	return m
}
