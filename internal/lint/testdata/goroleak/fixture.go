// Package goroleak exercises the goroutine-lifecycle check: every
// spawn needs reachable join or completion evidence.
package goroleak

import "sync"

// fireAndForget has no way to signal completion or be stopped.
func fireAndForget(work func()) {
	go func() { // want `goroutine has no reachable join or completion signal`
		work()
	}()
}

// joined signals through the WaitGroup.
func joined(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// channelled reports completion over a channel.
func channelled(work func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- work() }()
	return <-errc
}

// closer closes a done channel.
func closer(work func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// drainer ranges over a channel: the spawner ends it by closing ch.
func drainer(ch chan int, f func(int)) {
	go func() {
		for v := range ch {
			f(v)
		}
	}()
}

// loopForever is a named spawn with no signal anywhere down its
// (trivial) call chain.
func loopForever() {
	for {
	}
}

func spawnLoop() {
	go loopForever() // want `goroutine loopForever has no reachable join or completion signal`
}

// runAndClose signals transitively: the spawned named function closes
// its channel, so the facts layer's Signals fixpoint accepts it.
type server struct {
	done chan struct{}
}

func (s *server) run() {
	close(s.done)
}

func (s *server) start() {
	go s.run()
}

// indirectSignal reaches the evidence two calls deep.
func (s *server) finish() { s.run() }

func (s *server) startIndirect() {
	go s.finish()
}
