// Package encodeparity exercises the fast-encoder coverage check:
// every encodable field of a type-switch case's event struct must be
// referenced in that case.
package encodeparity

import "strconv"

type Hdr struct {
	Kind string
	T    float64
}

type sendEvent struct {
	Hdr
	Dst   string
	Bytes int64
}

type evictEvent struct {
	Hdr
	Block  string
	Bytes  int64
	Forced bool

	cached bool // unexported: not part of the JSON shape
}

type statsEvent struct {
	Hdr
	Rows  int
	Notes string `json:"-"`
}

func appendHdr(b []byte, h *Hdr) []byte {
	b = append(b, h.Kind...)
	return strconv.AppendFloat(b, h.T, 'g', -1, 64)
}

func appendEvt(b []byte, e interface{}) ([]byte, bool) {
	switch ev := e.(type) {
	case *sendEvent:
		b = appendHdr(b, &ev.Hdr)
		b = append(b, ev.Dst...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
		return b, true
	case *evictEvent: // want `fast-path encoder case for evictEvent does not reference field Forced`
		b = appendHdr(b, &ev.Hdr)
		b = append(b, ev.Block...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
		return b, true
	case *statsEvent:
		// Notes is json:"-" and so not required here.
		b = appendHdr(b, &ev.Hdr)
		b = strconv.AppendInt(b, int64(ev.Rows), 10)
		return b, true
	}
	// Anything else takes the reflective slow path; absence from the
	// switch is not a finding.
	return b, false
}
