// Package fixture exercises the metricsattr analyzer: every Stats
// movement-counter update must attribute the same event to
// audit.Metrics in the same function.
package fixture

import (
	"github.com/hetmem/hetmem/internal/audit"
	"github.com/hetmem/hetmem/internal/sim"
)

// bookkeeping mirrors the manager's Stats block.
type bookkeeping struct {
	Fetches      int64
	Refetches    int64
	Evictions    int64
	StageRetries int64
}

type mover struct {
	Stats bookkeeping
	met   *audit.Metrics
}

func (m *mover) goodFetch(n int64, d sim.Time) {
	m.Stats.Fetches++
	m.met.FetchDone(n, d)
}

func (m *mover) goodRetry() {
	m.Stats.StageRetries++
	m.met.StageRetry()
}

func (m *mover) goodEvict(n int64, d sim.Time) {
	m.Stats.Evictions++
	m.met.EvictDone(n, d, false)
}

func (m *mover) badFetch() {
	m.Stats.Fetches++ // want `Stats\.Fetches updated without attributing to audit\.Metrics`
}

func (m *mover) badEvict() {
	m.Stats.Evictions += 1 // want `Stats\.Evictions updated without attributing to audit\.Metrics`
}

// wrongMethod attributes the wrong event: a refetch must be credited
// through Refetch, not FetchDone.
func (m *mover) wrongMethod(n int64, d sim.Time) {
	m.Stats.Refetches++ // want `Stats\.Refetches updated without attributing to audit\.Metrics`
	m.met.FetchDone(n, d)
}
