// Package fixture exercises the locksafe analyzer against the staging
// protocol's lock-discipline shapes from the PR-1 singleIO/multiIO
// races.
package fixture

import (
	"github.com/hetmem/hetmem/internal/sim"
)

// station mirrors the singleIO staging structures: a mutex, its
// condition variable, and a notification channel.
type station struct {
	mu    sim.Mutex
	other sim.Mutex
	cond  *sim.Cond
	gen   int
	ch    chan struct{}
}

func newStation() *station {
	s := &station{ch: make(chan struct{}, 1)}
	s.cond = sim.NewCond(&s.mu)
	return s
}

func (s *station) goodWait(p *sim.Proc) {
	s.mu.Lock(p)
	for s.gen == 0 {
		s.cond.Wait(p)
	}
	s.mu.Unlock(p)
}

func (s *station) goodDefer(p *sim.Proc) int {
	s.mu.Lock(p)
	defer s.mu.Unlock(p)
	if s.gen > 0 {
		return s.gen
	}
	return 0
}

func (s *station) goodSend(p *sim.Proc) {
	s.mu.Lock(p)
	g := s.gen
	s.mu.Unlock(p)
	if g > 0 {
		s.ch <- struct{}{}
	}
}

func (s *station) badSend(p *sim.Proc) {
	s.mu.Lock(p)
	s.ch <- struct{}{} // want `channel operation while mutex s\.mu is held`
	s.mu.Unlock(p)
}

func (s *station) badRecv(p *sim.Proc) {
	s.mu.Lock(p)
	<-s.ch // want `channel operation while mutex s\.mu is held`
	s.mu.Unlock(p)
}

func (s *station) badWaitNoLock(p *sim.Proc) {
	s.cond.Wait(p) // want `s\.cond\.Wait without holding its mutex mu`
}

func (s *station) badWaitForeign(p *sim.Proc) {
	s.mu.Lock(p)
	s.other.Lock(p)
	for s.gen == 0 {
		s.cond.Wait(p) // want `mutex s\.other held across s\.cond\.Wait`
	}
	s.other.Unlock(p)
	s.mu.Unlock(p)
}

func (s *station) badReturn(p *sim.Proc, early bool) {
	s.mu.Lock(p)
	if early {
		return // want `return with mutex s\.mu still held`
	}
	s.mu.Unlock(p)
}

func (s *station) badRecursive(p *sim.Proc) {
	s.mu.Lock(p)
	s.mu.Lock(p) // want `recursive lock of s\.mu`
	s.mu.Unlock(p)
	s.mu.Unlock(p)
}
