// Package lockorder exercises the global lock-order graph: two
// functions acquiring the same two mutexes in opposite order, plus an
// interprocedural variant where the second acquisition hides behind a
// call. The two cycles use disjoint lock pairs so each forms its own
// strongly connected component and is reported separately.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
}

type B struct {
	mu sync.Mutex
}

type C struct {
	mu sync.Mutex
}

type D struct {
	mu sync.Mutex
}

var (
	a A
	b B
	c C
	d D
)

// ab and ba acquire A.mu and B.mu in conflicting order: the cycle is
// anchored at the earliest conflicting acquisition.
func ab() {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle among lockorder\.A\.mu, lockorder\.B\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// The C.mu <-> D.mu conflict only exists through the call chain:
// cThenD holds C.mu across a call that locks D.mu, while dThenC holds
// D.mu across a call that locks C.mu. Interprocedural edges anchor at
// the call site made under the held lock.
func cThenD() {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD() // want `lock-order cycle among lockorder\.C\.mu, lockorder\.D\.mu`
}

func lockD() {
	d.mu.Lock()
	d.mu.Unlock()
}

func dThenC() {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockC()
}

func lockC() {
	c.mu.Lock()
	c.mu.Unlock()
}

// Nested same-order acquisition is not a cycle.
func abAgain() {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
