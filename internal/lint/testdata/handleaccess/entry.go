// Package fixture exercises the handleaccess analyzer: kernel bodies
// may only touch handles through dependences the entry declared, in
// the declared access mode.
package fixture

import (
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
)

// kern is a toy chare whose entries exercise the contract.
type kern struct {
	mg   *core.Manager
	a, b *core.Handle
}

func (k *kern) goodEntry() charm.Entry {
	return charm.Entry{
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{
				{Handle: k.a, Mode: charm.ReadOnly},
				{Handle: k.b, Mode: charm.ReadWrite},
			}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			k.mg.RunKernel(p, []charm.DataDep{
				{Handle: k.a, Mode: charm.ReadOnly},
				{Handle: k.b, Mode: charm.ReadWrite},
			}, core.KernelSpec{Flops: 1})
		},
	}
}

func (k *kern) badUndeclared() charm.Entry {
	return charm.Entry{
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{
				{Handle: k.a, Mode: charm.ReadOnly},
			}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			k.mg.RunKernel(p, []charm.DataDep{
				{Handle: k.a, Mode: charm.ReadOnly},
				{Handle: k.b, Mode: charm.ReadOnly}, // want `kernel accesses k\.b without a declared dependence`
			}, core.KernelSpec{Flops: 1})
		},
	}
}

func (k *kern) badWrite() charm.Entry {
	return charm.Entry{
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{
				{Handle: k.a, Mode: charm.ReadOnly},
			}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			k.mg.RunKernel(p, []charm.DataDep{
				{Handle: k.a, Mode: charm.ReadWrite}, // want `kernel writes k\.a but the entry declares it readonly`
			}, core.KernelSpec{Flops: 1})
		},
	}
}

func (k *kern) badRead() charm.Entry {
	return charm.Entry{
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{
				{Handle: k.b, Mode: charm.WriteOnly},
			}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			k.mg.RunKernel(p, []charm.DataDep{
				{Handle: k.b, Mode: charm.ReadOnly}, // want `kernel reads k\.b but the entry declares it writeonly`
			}, core.KernelSpec{Flops: 1})
		},
	}
}

func (k *kern) badBuffer() charm.Entry {
	return charm.Entry{
		Prefetch: true,
		Deps: func(el *charm.Element, msg *charm.Message) []charm.DataDep {
			return []charm.DataDep{
				{Handle: k.a, Mode: charm.ReadOnly},
			}
		},
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			_ = k.b.Buffer() // want `kernel reads backing buffer of k\.b, which is not a declared dependence`
		},
	}
}

// computedDeps shares a deps closure between Deps and RunKernel — the
// repository's matmul idiom. The analyzer only judges what it can
// prove static, so this is skipped, not flagged.
func (k *kern) computedDeps(deps charm.DepsFn) charm.Entry {
	return charm.Entry{
		Prefetch: true,
		Deps:     deps,
		Fn: func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
			k.mg.RunKernel(p, deps(el, msg), core.KernelSpec{Flops: 1})
		},
	}
}
