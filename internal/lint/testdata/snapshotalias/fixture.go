// Package snapshotalias exercises the snapshot-accessor check:
// exported methods must not hand out internal slices or maps by
// reference.
package snapshotalias

type registry struct {
	names  []string
	counts map[string]int
	Public []int
	inner  struct {
		tags []string
	}
}

// Names aliases the internal slice.
func (r *registry) Names() []string {
	return r.names // want `exported method Names returns internal field r\.names by reference`
}

// Counts aliases the internal map.
func (r *registry) Counts() map[string]int {
	return r.counts // want `exported method Counts returns internal field r\.counts by reference`
}

// Tags aliases through a nested field.
func (r *registry) Tags() []string {
	return r.inner.tags // want `exported method Tags returns internal field r\.inner\.tags by reference`
}

// NamesCopy is the sanctioned shape.
func (r *registry) NamesCopy() []string {
	return append([]string(nil), r.names...)
}

// PublicInts returns an exported field: callers can already reach it,
// so returning it is API, not leakage.
func (r *registry) PublicInts() []int {
	return r.Public
}

// names is unexported: internal helpers may share state.
func (r *registry) namesRef() []string {
	return r.names
}

// Count returns a scalar; only containers alias.
func (r *registry) Count(k string) int {
	return r.counts[k]
}
