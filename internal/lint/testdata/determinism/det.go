// Package fixture exercises the determinism analyzer: wall-clock
// reads, global math/rand draws, and order-dependent map iteration.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clocks() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func draws() int {
	r := rand.New(rand.NewSource(7))  // constructors carry their own seed
	return r.Intn(10) + rand.Intn(10) // want `rand\.Intn uses the process-seeded global source`
}

func emit(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds output \(fmt\.Println\)`
		fmt.Println(k, v)
	}
}

// collectSorted is the canonical collect-then-sort idiom; the sort
// erases the iteration order, so the loop is legal.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order feeds state outside the loop \(keys\)`
		keys = append(keys, k)
	}
	return keys
}

// accumulate folds map values into a float in iteration order; float
// addition is not associative, so the sum is order-dependent.
func accumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order feeds state outside the loop \(sum\)`
		sum += v
	}
	return sum
}

// transfer writes each key independently into another map; no ordering
// can be observed.
func transfer(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}
