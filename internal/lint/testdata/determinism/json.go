// JSON-encoding fixtures: the trace capture format requires
// byte-identical encode→decode→encode round trips, so JSON assembled by
// walking a map bakes the iteration order into the bytes. The legal
// idioms are to marshal a struct (fields encode in declaration order),
// marshal the map itself (encoding/json sorts map keys), or restore an
// explicit order before building the array.
package fixture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// handRolled streams object members while ranging the map; the byte
// order of the emitted JSON permutes run to run.
func handRolled(m map[string]int) []byte {
	var b bytes.Buffer
	b.WriteByte('{')
	for k, v := range m { // want `map iteration order feeds output \(fmt\.Fprintf\)`
		fmt.Fprintf(&b, "%q:%d,", k, v)
	}
	b.WriteByte('}')
	return b.Bytes()
}

// entry marshals deterministically on its own — struct fields encode in
// declaration order — but an array of entries is only as ordered as the
// loop that built it.
type entry struct {
	Key string `json:"key"`
	Val int    `json:"val"`
}

// entriesUnsorted collects the map into an array-of-objects without
// restoring an order; the marshalled array permutes even though every
// element is deterministic.
func entriesUnsorted(m map[string]int) ([]byte, error) {
	var es []entry
	for k, v := range m { // want `map iteration order feeds state outside the loop \(es\)`
		es = append(es, entry{Key: k, Val: v})
	}
	return json.Marshal(es)
}

// entriesSorted restores a deterministic order before marshalling; the
// sort erases the iteration order, so the loop is legal.
func entriesSorted(m map[string]int) ([]byte, error) {
	var es []entry
	for k, v := range m {
		es = append(es, entry{Key: k, Val: v})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
	return json.Marshal(es)
}

// marshalDirect hands the map straight to encoding/json, which sorts
// object keys itself.
func marshalDirect(m map[string]int) ([]byte, error) {
	return json.Marshal(m)
}
