// Package waitloop exercises the condvar discipline: Wait must sit in
// a predicate-re-checking for loop with the paired mutex held.
package waitloop

import "sync"

type q struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
	items []int
}

func newQ() *q {
	s := &q{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// good is the canonical shape: lock, loop on the predicate, wait.
func (s *q) good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.items) == 0 {
		s.cond.Wait()
	}
	v := s.items[0]
	s.items = s.items[1:]
	return v
}

// goodGuarded re-checks via an if inside an infinite loop.
func (s *q) goodGuarded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.ready {
			return
		}
		s.cond.Wait()
	}
}

// bareWait has no loop at all: a spurious wake-up proceeds on a stale
// predicate.
func (s *q) bareWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cond.Wait() // want `cond\.Wait outside a for loop`
}

// rangeWait cannot re-check the predicate per iteration.
func (s *q) rangeWait(ticks []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range ticks {
		s.cond.Wait() // want `cond\.Wait inside a range loop`
	}
}

// spinWait loops but never re-checks anything.
func (s *q) spinWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.cond.Wait() // want `cond\.Wait in an unconditional for loop without a predicate check`
	}
}

// unlockedWait loops correctly but never takes the paired mutex.
func (s *q) unlockedWait() {
	for !s.ready {
		s.cond.Wait() // want `cond\.Wait without locking its paired mutex mu`
	}
}
