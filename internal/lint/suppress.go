package lint

import (
	"strings"
)

// ignoreDirective is one parsed //hmlint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int // the comment's own line
	checks map[string]bool
	reason string
}

const ignorePrefix = "hmlint:ignore"

// suppressions indexes the ignore directives of one package.
type suppressions struct {
	// byLine maps file -> line -> directive. A directive suppresses
	// findings on its own line and on the line directly below it (the
	// standalone-comment-above-the-statement form).
	byLine map[string]map[int]*ignoreDirective
}

// collectSuppressions parses every //hmlint:ignore directive in the
// package. A directive must name a check (or "all") and carry a
// non-empty reason; a malformed directive is itself reported, so
// suppressions cannot silently accumulate without justification.
func collectSuppressions(pkg *Package, diags *[]Diagnostic) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]*ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Analyzer: "hmlint",
						Pos:      pos,
						Message:  "malformed //hmlint:ignore directive: want \"//hmlint:ignore <check> <reason>\"",
					})
					continue
				}
				d := &ignoreDirective{
					file:   pos.Filename,
					line:   pos.Line,
					checks: map[string]bool{},
					reason: strings.Join(fields[1:], " "),
				}
				for _, name := range strings.Split(fields[0], ",") {
					d.checks[name] = true
				}
				if s.byLine[d.file] == nil {
					s.byLine[d.file] = make(map[int]*ignoreDirective)
				}
				s.byLine[d.file][d.line] = d
			}
		}
	}
	return s
}

// filter drops the findings covered by a directive.
func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	if len(s.byLine) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "hmlint" && s.covered(d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (s *suppressions) covered(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir := lines[line]; dir != nil {
			if dir.checks["all"] || dir.checks[d.Analyzer] {
				return true
			}
		}
	}
	return false
}
