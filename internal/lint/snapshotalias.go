package lint

import (
	"go/ast"
	"go/types"
)

// SnapshotAlias flags exported methods that hand out their receiver's
// unexported slice or map fields by reference. The runtime's metrics
// and topology accessors promise snapshots (Scheduler.Sessions,
// Metrics.Snapshot copy before returning); an accessor that returns
// the internal slice itself gives callers a window into state mutated
// under the owner's lock — reads race, and appends by the caller
// corrupt the owner. Returning an element pointer is fine; returning
// the container is not, unless the site carries a justified
// //hmlint:ignore snapshotalias suppression documenting the alias.
var SnapshotAlias = &Analyzer{
	Name: "snapshotalias",
	Doc:  "flag exported methods returning internal slice/map fields without copying",
	Run:  runSnapshotAlias,
}

func runSnapshotAlias(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recvName := receiverName(fd)
			if recvName == "" {
				continue
			}
			checkAliasReturns(p, fd, recvName)
		}
	}
}

func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func checkAliasReturns(p *Pass, fd *ast.FuncDecl, recvName string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Closures are not the method's API surface.
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			field, ok := receiverField(res, recvName)
			if !ok || field.Sel.Name == "" || ast.IsExported(field.Sel.Name) {
				continue
			}
			t := p.TypeOf(res)
			if t == nil {
				continue
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				p.Reportf(res.Pos(),
					"exported method %s returns internal field %s by reference; copy it (callers would alias state guarded by the receiver)",
					fd.Name.Name, exprString(res))
			}
		}
		return true
	})
}

// receiverField matches a selector chain rooted at the receiver
// identifier (r.f, r.inner.f) and returns its final selector.
func receiverField(e ast.Expr, recvName string) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	x := sel.X
	for {
		switch xx := ast.Unparen(x).(type) {
		case *ast.Ident:
			return sel, xx.Name == recvName
		case *ast.SelectorExpr:
			x = xx.X
		default:
			return nil, false
		}
	}
}
