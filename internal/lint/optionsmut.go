package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OptionsMut enforces the Options lifecycle: every configuration passes
// through Validate exactly once, at NewManager or Retune. Two misuse
// shapes are flagged anywhere in the module (core itself mutates m.opts
// only by whole-struct replacement inside Retune, which this analyzer
// does not match):
//
//   - mutating a copy obtained from Manager.Options() without handing
//     it back to Retune (or Validate/NewManager) in the same function —
//     Options returns a value, so the write silently configures
//     nothing and bypasses validation;
//   - mutating the options variable after it was already passed to
//     NewManager — the manager copied it at construction, so the write
//     is dead; the running manager must be reconfigured through
//     Retune, which re-validates.
var OptionsMut = &Analyzer{
	Name: "optionsmut",
	Doc:  "flag core.Options field writes that bypass the NewManager/Retune Validate funnel",
	Run:  runOptionsMut,
}

func runOptionsMut(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkOptionsFlow(fd.Body)
		}
	}
}

// optionsVar tracks one local core.Options variable's lifecycle events
// in source order.
type optionsVar struct {
	fromOptions  bool // initialised from Manager.Options()
	mutations    []ast.Node
	consumedAt   token.Pos // earliest later pass to Retune/Validate/NewManager
	constructedA token.Pos // earliest pass to NewManager (for post-construction writes)
}

func isOptionsType(t types.Type) bool {
	return isNamedType(t, "internal/core", "Options")
}

// checkOptionsFlow runs the per-function lifecycle analysis.
func (p *Pass) checkOptionsFlow(body *ast.BlockStmt) {
	vars := map[types.Object]*optionsVar{}
	get := func(id *ast.Ident) *optionsVar {
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil || !isOptionsType(obj.Type()) {
			return nil
		}
		v := vars[obj]
		if v == nil {
			v = &optionsVar{}
			vars[obj] = v
		}
		return v
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// o := mgr.Options()
				if id, ok := lhs.(*ast.Ident); ok && i < len(n.Rhs) {
					if call, ok := n.Rhs[i].(*ast.CallExpr); ok {
						if recv := selectorCall(call, "Options"); recv != nil &&
							isNamedType(p.TypeOf(recv), "internal/core", "Manager") {
							if v := get(id); v != nil {
								v.fromOptions = true
							}
							continue
						}
					}
					// Whole-value reassignment resets the lifecycle.
					if v := get(id); v != nil && n.Tok == token.ASSIGN {
						v.fromOptions = false
						v.mutations = nil
						v.constructedA = token.NoPos
					}
					continue
				}
				// o.Field = ... — a field mutation.
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if v := get(id); v != nil {
							v.mutations = append(v.mutations, n)
						}
					}
				}
			}
		case *ast.CallExpr:
			fnName := ""
			switch fun := fun(n).(type) {
			case *ast.SelectorExpr:
				fnName = fun.Sel.Name
			case *ast.Ident:
				fnName = fun.Name
			}
			consume := fnName == "Retune" || fnName == "Validate"
			construct := fnName == "NewManager"
			if !consume && !construct {
				return true
			}
			args := n.Args
			if fnName == "Validate" {
				// o.Validate() — the receiver is the consumed value.
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					args = append([]ast.Expr{sel.X}, args...)
				}
			}
			for _, a := range args {
				id, ok := a.(*ast.Ident)
				if !ok {
					continue
				}
				if v := get(id); v != nil {
					if v.consumedAt == token.NoPos || n.Pos() < v.consumedAt {
						v.consumedAt = n.Pos()
					}
					if construct && (v.constructedA == token.NoPos || n.Pos() < v.constructedA) {
						v.constructedA = n.Pos()
					}
				}
			}
		}
		return true
	})

	for _, v := range vars {
		for _, mut := range v.mutations {
			switch {
			case v.fromOptions && v.consumedAt == token.NoPos:
				p.Reportf(mut.Pos(),
					"mutating a copy of Manager.Options() configures nothing and bypasses Validate; pass the modified options to Retune")
			case v.consumedAt != token.NoPos && v.fromOptions && mut.Pos() > v.consumedAt:
				p.Reportf(mut.Pos(),
					"options copy mutated after it was handed to Retune/NewManager; the write is dead")
			case v.constructedA != token.NoPos && mut.Pos() > v.constructedA:
				p.Reportf(mut.Pos(),
					"options mutated after NewManager already copied them; reconfigure the manager through Retune")
			}
		}
	}
}

// fun unwraps a call's function expression through parens.
func fun(call *ast.CallExpr) ast.Expr {
	e := call.Fun
	for {
		if pe, ok := e.(*ast.ParenExpr); ok {
			e = pe.X
			continue
		}
		return e
	}
}
