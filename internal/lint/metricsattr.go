package lint

import (
	"go/ast"
	"strings"
)

// MetricsAttr keeps the audit.Metrics feedback counters honest in
// internal/core: every function that advances one of the manager's
// movement/retry Stats counters must attribute the same event to the
// metrics collector in the same function, or the adaptive controller's
// feedback (and the per-policy X10 attribution) silently rots while the
// printed Stats still look right. The pairing is:
//
//	Stats.Fetches          -> Metrics.FetchDone
//	Stats.Refetches        -> Metrics.Refetch
//	Stats.Evictions        -> Metrics.EvictDone
//	Stats.ForcedEvictions  -> Metrics.EvictDone (forced flag) or PolicyEvict
//	Stats.StageRetries     -> Metrics.StageRetry
//
// The nil-safety of *audit.Metrics makes the call free when metrics are
// off, so there is never a reason to skip it.
var MetricsAttr = &Analyzer{
	Name:  "metricsattr",
	Doc:   "require audit.Metrics attribution alongside every Stats movement-counter update in internal/core",
	Match: func(rel string) bool { return matchPrefix(rel, "internal/core") },
	Run:   runMetricsAttr,
}

// statsPairing maps a Stats counter to the Metrics methods that
// attribute it.
var statsPairing = map[string][]string{
	"Fetches":         {"FetchDone"},
	"Refetches":       {"Refetch"},
	"Evictions":       {"EvictDone"},
	"ForcedEvictions": {"EvictDone", "PolicyEvict"},
	"StageRetries":    {"StageRetry"},
}

func runMetricsAttr(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkStatsAttribution(fd)
		}
	}
}

func (p *Pass) checkStatsAttribution(fd *ast.FuncDecl) {
	type update struct {
		counter string
		at      ast.Node
	}
	var updates []update
	called := map[string]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if c := statsCounter(n.X); c != "" {
				updates = append(updates, update{c, n})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if c := statsCounter(lhs); c != "" {
					updates = append(updates, update{c, n})
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isNamedType(p.TypeOf(sel.X), "internal/audit", "Metrics") {
					called[sel.Sel.Name] = true
				}
			}
		}
		return true
	})

	for _, u := range updates {
		attributed := false
		for _, m := range statsPairing[u.counter] {
			if called[m] {
				attributed = true
				break
			}
		}
		if !attributed {
			p.Reportf(u.at.Pos(),
				"Stats.%s updated without attributing to audit.Metrics (call %s on the collector in %s)",
				u.counter, strings.Join(statsPairing[u.counter], " or "), fd.Name.Name)
		}
	}
}

// statsCounter matches an expression of the form <recv>.Stats.<Counter>
// for a tracked counter and returns the counter name.
func statsCounter(e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if _, tracked := statsPairing[sel.Sel.Name]; !tracked {
		return ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Stats" {
		return ""
	}
	return sel.Sel.Name
}
