// Package lint implements hmlint: a domain-specific static-analysis
// suite that mechanically enforces the runtime's object-level contracts
// — the staging protocol's lock discipline, the declared-dependence
// access modes of the kernel API, the determinism rules behind the
// byte-identical experiment tables, the Options/Retune validation
// funnel, and the audit.Metrics attribution pairing.
//
// The suite mirrors the golang.org/x/tools/go/analysis architecture
// (Analyzer values with a Run func over a type-checked Pass, a
// multichecker driver in cmd/hmlint, want-comment fixture tests) but is
// built purely on the standard library's go/ast, go/parser and go/types:
// the repository has no third-party dependencies and the loader
// (load.go) type-checks the full package graph itself from
// `go list -deps -json` output.
//
// Findings can be suppressed at the site with a justification:
//
//	//hmlint:ignore <check> <reason>
//
// on the flagged line or the line directly above it (see suppress.go).
// A directive without a reason is itself a finding, so suppressions
// stay documented.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the check in findings and ignore directives.
	Name string
	// Doc is the one-line description shown by hmlint -list.
	Doc string
	// Match reports whether the analyzer applies to a package, given
	// its module-relative import path (e.g. "internal/core",
	// "cmd/hmrepro", "examples/quickstart"). A nil Match applies the
	// analyzer everywhere.
	Match func(relPath string) bool
	// NeedsFacts requests the cross-package facts layer (call graph +
	// lock summaries); when any selected analyzer sets it, Run computes
	// the facts once over the whole package set and exposes them via
	// Pass.Facts.
	NeedsFacts bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelPath is the module-relative import path ("" for the module
	// root package).
	RelPath string
	// Facts is the interprocedural facts layer, non-nil iff the
	// analyzer declared NeedsFacts. It spans every package of the run,
	// not just the one this pass inspects.
	Facts *Facts

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form,
// naming the analyzer so CI output and the acceptance criteria can be
// matched mechanically.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Run applies the analyzers to every package, honouring each analyzer's
// Match scope and the //hmlint:ignore suppressions, and returns the
// surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var facts *Facts
	for _, a := range analyzers {
		if a.NeedsFacts {
			facts = ComputeFacts(pkgs)
			break
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg, &diags)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.RelPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				Facts:    facts,
				diags:    &diags,
			}
			a.Run(pass)
		}
		diags = sup.filter(diags)
	}
	diags = dedupe(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// dedupe drops byte-identical findings. A package can reach the driver
// both as a root and as a dependency of another root (hmlint
// ./internal/core ./...), and a facts-backed analyzer can derive the
// same global report from two packages; the finding must still print
// exactly once.
func dedupe(diags []Diagnostic) []Diagnostic {
	seen := make(map[Diagnostic]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// --- shared helpers used by several analyzers ---

// isPkgPath reports whether pkg (possibly nil) is the package whose
// import path equals full or ends with "/"+suffix. Matching by suffix
// keeps the analyzers working when the module is vendored or a fixture
// re-creates the layout under another module name.
func isPkgPath(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// namedFrom returns the named type behind t (unwrapping pointers and
// aliases), or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		// A pointer's element may itself be named.
		if ptr, ok := t.(*types.Pointer); ok {
			n, _ = ptr.Elem().(*types.Named)
		}
	}
	return n
}

// isNamedType reports whether t is (a pointer to) the named type
// pkgSuffix.name.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && isPkgPath(obj.Pkg(), pkgSuffix)
}

// exprString renders an expression in canonical single-line form for
// structural comparison (e.g. matching a kernel's handle expression
// against the declared dependence list).
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExpr(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, e.X)
		b.WriteByte('[')
		writeExpr(b, e.Index)
		b.WriteByte(']')
	case *ast.CallExpr:
		writeExpr(b, e.Fun)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, e.X)
	case *ast.UnaryExpr:
		b.WriteString(e.Op.String())
		writeExpr(b, e.X)
	case *ast.ParenExpr:
		writeExpr(b, e.X)
	case *ast.BasicLit:
		b.WriteString(e.Value)
	case *ast.BinaryExpr:
		writeExpr(b, e.X)
		b.WriteString(e.Op.String())
		writeExpr(b, e.Y)
	default:
		fmt.Fprintf(b, "%T", e)
	}
}

// baseName returns the trailing field/variable name of a lock or cond
// expression with any indexing stripped: s.ioMu[i] and s.ioMu both
// yield "ioMu". Analyzers use it to pair condition variables with the
// mutexes that guard them across per-PE arrays.
func baseName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		default:
			return exprString(e)
		}
	}
}

// selectorCall matches a call of the form recv.Name(args...) and
// returns the receiver expression, or nil when e is not such a call.
func selectorCall(e *ast.CallExpr, name string) ast.Expr {
	sel, ok := e.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	return sel.X
}
