package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// EncodeParity guards the hand-rolled fast trace encoder against the
// one way it rots: someone adds a field to an event struct in
// trace.go, encoding/json picks it up reflectively, and the
// appendEvent type switch keeps emitting the old shape — the
// byte-identity contract between the fast and reflective paths (and
// the TestEncodeFastParity table) breaks only for captures that
// exercise that event.
//
// The check is structural: inside every `append*` function of the
// trace package, each type-switch case over a pointer-to-struct event
// must mention every encodable field of that struct (exported, not
// json:"-") on the case variable. Structs absent from the switch are
// fine — they take the reflective slow path by design (Meta, Retune,
// Stats carry maps and interface values).
var EncodeParity = &Analyzer{
	Name: "encodeparity",
	Doc:  "require fast-path trace encoder cases to cover every encodable field of their event struct",
	Match: func(rel string) bool {
		return matchPrefix(rel, "internal/trace")
	},
	Run: runEncodeParity,
}

func runEncodeParity(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "append") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSwitchStmt)
				if !ok {
					return true
				}
				checkEncodeSwitch(p, ts)
				return true
			})
		}
	}
}

func checkEncodeSwitch(p *Pass, ts *ast.TypeSwitchStmt) {
	// The case variable from `switch ev := e.(type)`; the loader's Info
	// has no Implicits map, so case-body references are matched by
	// identifier name.
	varName := ""
	if as, ok := ts.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			varName = id.Name
		}
	}
	if varName == "" {
		return
	}
	for _, c := range ts.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok || len(cc.List) != 1 {
			// Multi-type cases can only touch the common interface, not
			// struct fields; they are not per-field encoders.
			continue
		}
		st := eventStruct(p, cc.List[0])
		if st == nil {
			continue
		}
		used := make(map[string]bool)
		for _, s := range cc.Body {
			ast.Inspect(s, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == varName {
					used[sel.Sel.Name] = true
				}
				return true
			})
		}
		tn := namedFrom(p.TypeOf(cc.List[0]))
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if !fld.Exported() || jsonSkipped(st.Tag(i)) {
				continue
			}
			if !used[fld.Name()] {
				p.Reportf(cc.Pos(),
					"fast-path encoder case for %s does not reference field %s; the fast and reflective encodings diverge",
					tn.Obj().Name(), fld.Name())
			}
		}
	}
}

// eventStruct returns the struct type behind a `case *T:` expression
// when T is declared in the package under analysis, else nil.
func eventStruct(p *Pass, e ast.Expr) *types.Struct {
	n := namedFrom(p.TypeOf(e))
	if n == nil || n.Obj().Pkg() != p.Pkg {
		return nil
	}
	st, _ := n.Underlying().(*types.Struct)
	return st
}

// jsonSkipped reports whether a struct tag opts the field out of JSON.
func jsonSkipped(tag string) bool {
	v, ok := lookupTag(tag, "json")
	return ok && (v == "-" || strings.HasPrefix(v, "-,"))
}

// lookupTag is reflect.StructTag.Lookup without importing reflect's
// value machinery into the analyzer.
func lookupTag(tag, key string) (string, bool) {
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' {
			i++
		}
		if i == 0 || i+1 >= len(tag) || tag[i] != ':' || tag[i+1] != '"' {
			break
		}
		name := tag[:i]
		tag = tag[i+1:]
		i = 1
		for i < len(tag) && tag[i] != '"' {
			if tag[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(tag) {
			break
		}
		val := tag[1:i]
		tag = tag[i+1:]
		if name == key {
			return val, true
		}
	}
	return "", false
}
