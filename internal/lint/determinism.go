package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism bans the nondeterminism sources that would break the
// byte-identical experiment tables (Fig 8/9, X9, X10): wall-clock reads
// (time.Now / time.Since / time.Until), the process-seeded global
// math/rand source, and map iteration feeding output or ordering
// decisions. The simulation must derive every number from virtual time
// and every random draw from the engine's seeded source, and every
// table row from a deterministically ordered walk — the regression
// tests catch drift at run time, this analyzer catches it at review
// time.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "ban wall-clock time, unseeded math/rand, and map-order-dependent output in internal/ and cmd/",
	Match: func(rel string) bool {
		return matchPrefix(rel, "internal") || matchPrefix(rel, "cmd")
	},
	Run: runDeterminism,
}

// matchPrefix reports whether rel is dir or below it.
func matchPrefix(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}

// wallClockFuncs are the time-package functions that read the host
// clock. time.Sleep blocks real time but returns no value, so it cannot
// leak into a table; it is still absent from simulation code paths.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandAllowed lists the math/rand package-level names that do not
// touch the global source.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		sorted := collectSortCalls(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				p.checkClockAndRand(n)
			case *ast.RangeStmt:
				p.checkMapRange(n, sorted)
			}
			return true
		})
	}
}

// pkgOf resolves a selector base identifier to the package it names, or
// nil when the base is not a package.
func (p *Pass) pkgOf(e ast.Expr) *types.Package {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

func (p *Pass) checkClockAndRand(sel *ast.SelectorExpr) {
	pkg := p.pkgOf(sel.X)
	if pkg == nil {
		return
	}
	name := sel.Sel.Name
	switch pkg.Path() {
	case "time":
		if wallClockFuncs[name] {
			p.Reportf(sel.Pos(),
				"time.%s reads the wall clock and breaks byte-identical tables; use the engine's virtual time", name)
		}
	case "math/rand", "math/rand/v2":
		if globalRandAllowed[name] {
			return
		}
		if obj, ok := p.Info.Uses[sel.Sel]; ok {
			if _, isFunc := obj.(*types.Func); !isFunc {
				return // a type or const like rand.Rand / rand.Source
			}
		}
		p.Reportf(sel.Pos(),
			"%s.%s uses the process-seeded global source; draw from the engine's seeded *rand.Rand instead", pkg.Name(), name)
	}
}

// checkMapRange flags `for k := range m` over a map when the loop body
// does anything whose result depends on iteration order: emitting
// output, appending to or assigning state declared outside the loop.
// Pure map-to-map transfers (`dst[k] = v`) and deletes are order-free
// and stay legal, as is the collect-keys idiom — appending to a slice
// that a later sort.*/slices.* call in the same file reorders.
func (p *Pass) checkMapRange(rs *ast.RangeStmt, sorted map[types.Object][]token.Pos) {
	t := p.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	inner := localObjs(p, rs)
	if reason := orderDependent(p, rs, inner, sorted); reason != "" {
		p.Reportf(rs.Pos(),
			"map iteration order feeds %s; iterate a sorted key slice instead", reason)
	}
}

// localObjs collects the objects declared by the range statement itself
// and inside its body; writes to those are order-free.
func localObjs(p *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if o := p.Info.Defs[id]; o != nil {
				objs[o] = true
			}
		}
	}
	add(rs.Key)
	add(rs.Value)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := p.Info.Defs[id]; o != nil {
				objs[o] = true
			}
		}
		return true
	})
	return objs
}

// orderDependent scans a map-range body for order-sensitive effects and
// returns a short description of the first one, or "".
func orderDependent(p *Pass, rs *ast.RangeStmt, local map[types.Object]bool, sorted map[types.Object][]token.Pos) string {
	var reason string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := outputCall(p, n); name != "" {
				reason = "output (" + name + ")"
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				// append builds an ordered slice; appending inside a
				// map range bakes the iteration order into it — unless
				// the slice is sorted again after the loop.
				if len(n.Args) > 0 && !isLocalTarget(p, n.Args[0], local) &&
					!sortedAfter(p, n.Args[0], rs.End(), sorted) {
					reason = "slice ordering (append)"
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if isOrderFreeTarget(p, lhs, local) {
					continue
				}
				if i < len(n.Rhs) && isSortedAppendGrow(p, lhs, n.Rhs[i], rs.End(), sorted) {
					continue
				}
				reason = "state outside the loop (" + exprString(lhs) + ")"
				return false
			}
		case *ast.IncDecStmt:
			if !isOrderFreeTarget(p, n.X, local) {
				reason = "state outside the loop (" + exprString(n.X) + ")"
				return false
			}
		case *ast.FuncLit:
			return false // separate execution context
		}
		return true
	})
	return reason
}

// isOrderFreeTarget reports whether assigning lhs inside a map range
// cannot observe iteration order: targets declared inside the loop, and
// map-index stores (each key written independently).
func isOrderFreeTarget(p *Pass, lhs ast.Expr, local map[types.Object]bool) bool {
	switch lhs := lhs.(type) {
	case *ast.IndexExpr:
		if t := p.TypeOf(lhs.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				return true
			}
		}
		return false
	case *ast.Ident:
		return lhs.Name == "_" || isLocalTarget(p, lhs, local)
	default:
		return isLocalTarget(p, lhs, local)
	}
}

// isLocalTarget reports whether e's root object was declared by or
// inside the range loop.
func isLocalTarget(p *Pass, e ast.Expr, local map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if o := p.Info.Defs[x]; o != nil && local[o] {
				return true
			}
			if o := p.Info.Uses[x]; o != nil && local[o] {
				return true
			}
			return false
		default:
			return false
		}
	}
}

// outputCall reports whether call writes program output (fmt printing,
// builder/writer writes, log, os.Std* writes) and names the callee.
func outputCall(p *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg := p.pkgOf(fun.X); pkg != nil {
			switch pkg.Path() {
			case "fmt":
				if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
					strings.HasPrefix(name, "Sprint") {
					return "fmt." + name
				}
			case "log":
				return "log." + name
			}
			return ""
		}
		// Method writes on builders/writers.
		if strings.HasPrefix(name, "Write") {
			if t := p.TypeOf(fun.X); t != nil {
				if isNamedType(t, "strings", "Builder") || isNamedType(t, "bytes", "Buffer") {
					return exprString(fun.X) + "." + name
				}
			}
		}
	case *ast.Ident:
		if fun.Name == "print" || fun.Name == "println" {
			return fun.Name
		}
	}
	return ""
}

// sortFuncs are the sort/slices package functions whose first argument
// ends up deterministically ordered.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// collectSortCalls indexes every sort.*/slices.Sort* call in the file
// by the object its first argument names, so map-range appends into a
// slice that is sorted afterwards can be recognised as order-free.
func collectSortCalls(p *Pass, f *ast.File) map[types.Object][]token.Pos {
	var out map[types.Object][]token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncs[sel.Sel.Name] {
			return true
		}
		pkg := p.pkgOf(sel.X)
		if pkg == nil || (pkg.Path() != "sort" && pkg.Path() != "slices") {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil {
			if out == nil {
				out = make(map[types.Object][]token.Pos)
			}
			out[obj] = append(out[obj], call.Pos())
		}
		return true
	})
	return out
}

// sortedAfter reports whether target (an identifier) is the argument of
// a sort call positioned after `after` — the collect-then-sort idiom.
func sortedAfter(p *Pass, target ast.Expr, after token.Pos, sorted map[types.Object][]token.Pos) bool {
	for _, pos := range sorted[objOf(p, target)] {
		if pos > after {
			return true
		}
	}
	return false
}

// isSortedAppendGrow recognises `s = append(s, ...)` where s is sorted
// after the loop: the canonical collect-keys idiom.
func isSortedAppendGrow(p *Pass, lhs, rhs ast.Expr, after token.Pos, sorted map[types.Object][]token.Pos) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	obj := objOf(p, lhs)
	if obj == nil || obj != objOf(p, call.Args[0]) {
		return false
	}
	return sortedAfter(p, lhs, after, sorted)
}

// objOf resolves an identifier expression to its object, or nil.
func objOf(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}
