package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeak checks that every goroutine spawned by the long-running
// layers — the cluster engine pool, the hetmemd serve loop, and the
// cmd/* binaries — carries reachable join or completion evidence:
// a WaitGroup.Done, a channel send or close, a Cond.Signal/Broadcast,
// or a drain loop (range over a channel), either lexically in the
// spawned function or anywhere down its statically-resolved call
// chain (via the facts layer's Signals fixpoint).
//
// A goroutine with none of these has no way to tell anyone it
// finished and nothing that terminates it: in a daemon that is a leak
// per request, and in the parallel DES it desynchronises the barrier
// protocol. Simulation-internal goroutines (internal/sim schedules
// procs on virtual time) and test helpers are out of scope.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "require spawned goroutines to have reachable join/completion evidence (WaitGroup, channel, Cond)",
	Match: func(rel string) bool {
		return matchPrefix(rel, "internal/cluster") ||
			matchPrefix(rel, "internal/serve") ||
			matchPrefix(rel, "cmd")
	},
	NeedsFacts: true,
	Run:        runGoroLeak,
}

func runGoroLeak(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				if !litJoins(p, fl.Body) {
					p.Reportf(gs.Pos(),
						"goroutine has no reachable join or completion signal (WaitGroup.Done, channel send/close, Cond.Signal/Broadcast, or drain loop); it can leak")
				}
				return true
			}
			callee := staticCallee(p.Info, gs.Call)
			if callee != nil && p.Facts.Signals(callee) {
				return true
			}
			p.Reportf(gs.Pos(),
				"goroutine %s has no reachable join or completion signal down its call chain; it can leak", exprString(gs.Call.Fun))
			return true
		})
	}
}

// litJoins reports whether a go func(){...}() body contains join or
// completion evidence, looking through nested closures and into
// statically-resolved callees via the facts layer.
func litJoins(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.RangeStmt:
			// Draining a channel until close is a lifecycle: the spawner
			// terminates the goroutine by closing the channel.
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
			for _, name := range [...]string{"Done", "Signal", "Broadcast"} {
				if recv := selectorCall(n, name); recv != nil {
					t := p.TypeOf(recv)
					if isNamedType(t, "sync", "WaitGroup") || isNamedType(t, "internal/sim", "WaitGroup") ||
						isNamedType(t, "sync", "Cond") || isNamedType(t, "internal/sim", "Cond") {
						found = true
						return false
					}
				}
			}
			if callee := staticCallee(p.Info, n); callee != nil && p.Facts.Signals(callee) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
