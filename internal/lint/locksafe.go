package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Locksafe enforces the staging protocol's lock discipline in
// internal/core — the exact shapes behind the PR-1 singleIO/multiIO
// races:
//
//   - a mutex (sim.Mutex or sync.Mutex) held across a channel
//     send/receive or select, which in the cooperative simulation is a
//     lost-wakeup/deadlock shape;
//   - Cond.Wait without holding the condition's owning mutex, or while
//     additionally holding an unrelated mutex (Wait releases only its
//     own lock, so anything else stays held across the park);
//   - unlock-path divergence: a return with a mutex still held and no
//     deferred unlock, i.e. one exit path forgets the unlock that the
//     others perform.
//
// The tracking is per-function and source-ordered with branch cloning —
// an approximation, but one tuned to the protocol code's shapes; the
// documented escape hatch for a deliberate pattern is
// //hmlint:ignore locksafe <reason>.
var Locksafe = &Analyzer{
	Name:  "locksafe",
	Doc:   "flag mutexes held across blocking operations, condvar misuse, and divergent unlock paths in internal/core",
	Match: func(rel string) bool { return matchPrefix(rel, "internal/core") },
	Run:   runLocksafe,
}

func runLocksafe(p *Pass) {
	condOwners := condOwnerMap(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{p: p, condOwner: condOwners}
			w.walkBody(fd.Body.List, newLockState())
		}
	}
}

// condOwnerMap pairs condition variables with their owning mutexes from
// the package's sim.NewCond(&mu) assignments; it is the sim-only view
// of the shared newCondOwners helper (waitloop.go).
func condOwnerMap(p *Pass) map[string]string {
	return newCondOwners(p, "internal/sim")
}

// lockState is the walker's held-mutex bookkeeping at one program
// point. Keys are canonical receiver strings (s.ioMu[i]); deferred keys
// have an unlock scheduled at function exit.
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k := range st.deferred {
		c.deferred[k] = true
	}
	return c
}

type lockWalker struct {
	p         *Pass
	condOwner map[string]string
}

// isMutex reports whether e has mutex type (sim.Mutex or sync.Mutex).
func (w *lockWalker) isMutex(e ast.Expr) bool {
	t := w.p.TypeOf(e)
	return isNamedType(t, "internal/sim", "Mutex") || isNamedType(t, "sync", "Mutex") ||
		isNamedType(t, "sync", "RWMutex")
}

// isCond reports whether e has condition-variable type.
func (w *lockWalker) isCond(e ast.Expr) bool {
	t := w.p.TypeOf(e)
	return isNamedType(t, "internal/sim", "Cond") || isNamedType(t, "sync", "Cond")
}

// walkBody processes statements in source order, mutating st; it
// returns true when the statement list always terminates (return,
// panic) before falling through.
func (w *lockWalker) walkBody(stmts []ast.Stmt, st *lockState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.walkExpr(s.X, st)
	case *ast.SendStmt:
		w.reportChanOp(s.Pos(), st)
		w.walkExpr(s.Chan, st)
		w.walkExpr(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e, st)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X, st)
	case *ast.DeferStmt:
		if recv := selectorCall(s.Call, "Unlock"); recv != nil && w.isMutex(recv) {
			st.deferred[exprString(recv)] = true
			return false
		}
		// Other deferred calls: scan for channel ops in a fresh context.
		w.walkFuncLitArgs(s.Call)
	case *ast.GoStmt:
		w.walkFuncLitArgs(s.Call)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, st)
		}
		for key, pos := range st.held {
			if !st.deferred[key] {
				w.p.Reportf(s.Pos(),
					"return with mutex %s still held (locked at %s); unlock on every path or defer the unlock",
					key, w.p.Fset.Position(pos))
			}
		}
		return true
	case *ast.BlockStmt:
		return w.walkBody(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkBody(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		merge(st, thenSt, thenTerm, elseSt, elseTerm)
		return thenTerm && elseTerm && s.Else != nil
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st)
		}
		w.walkBody(s.Body.List, st.clone())
	case *ast.RangeStmt:
		w.walkExpr(s.X, st)
		w.walkBody(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkBody(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkBody(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		w.reportChanOp(s.Pos(), st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkBody(cc.Body, st.clone())
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	}
	return false
}

// merge computes the fall-through state after a branch: a mutex counts
// as held only when every falling-through path holds it (intersection),
// which under-approximates but never manufactures a false "still held".
func merge(st, thenSt *lockState, thenTerm bool, elseSt *lockState, elseTerm bool) {
	exits := make([]*lockState, 0, 2)
	if !thenTerm {
		exits = append(exits, thenSt)
	}
	if !elseTerm {
		exits = append(exits, elseSt)
	}
	if len(exits) == 0 {
		return // unreachable continuation; keep entry state
	}
	held := map[string]token.Pos{}
	for k, v := range exits[0].held {
		inAll := true
		for _, e := range exits[1:] {
			if _, ok := e.held[k]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			held[k] = v
		}
	}
	st.held = held
	for _, e := range exits {
		for k := range e.deferred {
			st.deferred[k] = true
		}
	}
}

// walkExpr scans an expression for lock-protocol calls and channel
// receives.
func (w *lockWalker) walkExpr(e ast.Expr, st *lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A function literal runs in its own context (worker or IO
			// process body); analyse it with a fresh state.
			w.walkBody(n.Body.List, newLockState())
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportChanOp(n.Pos(), st)
			}
		case *ast.CallExpr:
			w.handleCall(n, st)
		}
		return true
	})
}

// walkFuncLitArgs analyses function-literal arguments of a go/defer
// call in a fresh context.
func (w *lockWalker) walkFuncLitArgs(call *ast.CallExpr) {
	for _, a := range call.Args {
		if fl, ok := a.(*ast.FuncLit); ok {
			w.walkBody(fl.Body.List, newLockState())
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		w.walkBody(fl.Body.List, newLockState())
	}
}

func (w *lockWalker) handleCall(call *ast.CallExpr, st *lockState) {
	if recv := selectorCall(call, "Lock"); recv != nil && w.isMutex(recv) {
		key := exprString(recv)
		if pos, ok := st.held[key]; ok {
			w.p.Reportf(call.Pos(),
				"recursive lock of %s (already locked at %s)", key, w.p.Fset.Position(pos))
		}
		st.held[key] = call.Pos()
		return
	}
	if recv := selectorCall(call, "Unlock"); recv != nil && w.isMutex(recv) {
		delete(st.held, exprString(recv))
		return
	}
	if recv := selectorCall(call, "Wait"); recv != nil && w.isCond(recv) {
		w.checkCondWait(call, recv, st)
		return
	}
}

// checkCondWait verifies that the cond's owning mutex — resolved from
// the package's NewCond(&mu) pairings — is held, and that nothing else
// is.
func (w *lockWalker) checkCondWait(call *ast.CallExpr, recv ast.Expr, st *lockState) {
	owner, known := w.condOwner[baseName(recv)]
	keys := make([]string, 0, len(st.held))
	for key := range st.held {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	ownerHeld := false
	for _, key := range keys {
		base := keyBase(key)
		if known && base == owner {
			ownerHeld = true
			continue
		}
		w.p.Reportf(call.Pos(),
			"mutex %s held across %s.Wait, which parks without releasing it", key, exprString(recv))
	}
	if known && !ownerHeld {
		w.p.Reportf(call.Pos(),
			"%s.Wait without holding its mutex %s", exprString(recv), owner)
	}
}

// keyBase extracts a held-key's base name: keys come from exprString,
// so the base is the last selector segment before any index
// ("s.ioMu[i]" -> "ioMu").
func keyBase(key string) string {
	if i := strings.IndexByte(key, '['); i >= 0 {
		key = key[:i]
	}
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		key = key[i+1:]
	}
	return key
}

// reportChanOp flags a channel operation while any mutex is held.
func (w *lockWalker) reportChanOp(pos token.Pos, st *lockState) {
	for key := range st.held {
		w.p.Reportf(pos, "channel operation while mutex %s is held; move the send/receive outside the critical section", key)
	}
}
