package lint

// LockOrder builds the global lock-order graph from the facts layer —
// an edge A -> B whenever some function acquires mutex class B while
// holding A, either directly or anywhere down a statically-resolved
// call chain — and reports every cycle as a potential deadlock.
//
// Classes are (package, type, field) families: serve.Server.mu,
// core.multiIO.ioMu[] (per-PE arrays collapse onto one class, since
// acquiring two members without a rank order is itself a hazard). The
// analysis spans every package of the run; each cycle is reported
// exactly once, anchored at its smallest-position edge so a
// //hmlint:ignore lockorder <reason> at that site can suppress a
// deliberate ordering.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "report cycles in the global mutex acquisition-order graph (potential deadlocks)",
	NeedsFacts: true,
	Run:        runLockOrder,
}

func runLockOrder(p *Pass) {
	for _, c := range p.Facts.LockCycles() {
		// The cycle is global; report it only in the pass whose package
		// owns the anchoring edge, so the run emits it once and local
		// suppressions apply.
		if c.rel == p.RelPath {
			p.Reportf(c.pos, "%s", c.msg)
		}
	}
}
