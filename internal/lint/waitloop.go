package lint

import (
	"go/ast"
	"go/token"
)

// WaitLoop enforces the condition-variable discipline behind the
// condvar-parked serve.Loop pattern (and the staging protocol's IO
// loops): every Cond.Wait — sync.Cond or sim.Cond — must
//
//  1. sit inside a for loop that re-checks its predicate (a loop
//     condition, or an if-guard inside an infinite loop): wake-ups are
//     hints, not guarantees, and a straight-line Wait turns a spurious
//     or stale wake-up into lost work or a hang;
//  2. run with the condition's paired mutex locked in the same
//     function, resolved from the package's NewCond(&mu) pairings —
//     sync.Cond.Wait without the lock panics only at run time, and
//     only on the path that actually parks.
//
// locksafe already checks cross-mutex interactions for internal/core;
// waitloop is the loop-shape half, and it applies everywhere.
var WaitLoop = &Analyzer{
	Name: "waitloop",
	Doc:  "require every Cond.Wait to sit in a predicate-re-checking for loop under its paired mutex",
	Run:  runWaitLoop,
}

func runWaitLoop(p *Pass) {
	owners := newCondOwners(p, "internal/sim", "sync")
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv := selectorCall(call, "Wait")
			if recv == nil || !isCondExpr(p, recv) {
				return true
			}
			checkWaitShape(p, call, recv, stack, owners)
			return true
		})
	}
}

func isCondExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	return isNamedType(t, "internal/sim", "Cond") || isNamedType(t, "sync", "Cond")
}

// newCondOwners pairs condition variables with their owning mutexes by
// scanning the package for NewCond(&mu) assignments from any of the
// given packages (internal/sim's constructor and sync.NewCond share
// the shape). The cond's field/variable base name maps to the mutex's
// base name, so indexed per-PE pairs (ioCond[i] / ioMu[i]) resolve too.
func newCondOwners(p *Pass, pkgs ...string) map[string]string {
	owners := make(map[string]string)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					continue
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "NewCond" {
					continue
				}
				pkg := p.pkgOf(sel.X)
				matched := false
				for _, want := range pkgs {
					if isPkgPath(pkg, want) {
						matched = true
						break
					}
				}
				if !matched {
					continue
				}
				arg := call.Args[0]
				if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					arg = ue.X
				}
				owners[baseName(as.Lhs[i])] = baseName(arg)
			}
			return true
		})
	}
	return owners
}

// checkWaitShape validates one Cond.Wait against the loop and mutex
// rules, given the ancestor stack from the file root to the call.
func checkWaitShape(p *Pass, call *ast.CallExpr, recv ast.Expr, stack []ast.Node, owners map[string]string) {
	// Walk the ancestors innermost-first up to the enclosing function,
	// looking for the nearest loop and whether a condition (if/switch)
	// guards the Wait inside it.
	var loop ast.Stmt
	guarded := false
	var enclosing ast.Node // innermost FuncDecl or FuncLit body owner
scan:
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt, *ast.SwitchStmt:
			guarded = true
		case *ast.ForStmt:
			loop = n
			enclosingAt(stack, i, &enclosing)
			break scan
		case *ast.RangeStmt:
			loop = n
			enclosingAt(stack, i, &enclosing)
			break scan
		case *ast.FuncDecl, *ast.FuncLit:
			enclosing = n
			break scan
		}
	}
	name := exprString(recv)
	switch l := loop.(type) {
	case nil:
		p.Reportf(call.Pos(),
			"%s.Wait outside a for loop: wake-ups are hints; re-check the predicate in a loop", name)
	case *ast.RangeStmt:
		p.Reportf(call.Pos(),
			"%s.Wait inside a range loop cannot re-check its predicate; use a for loop over the condition", name)
	case *ast.ForStmt:
		// An infinite loop is fine when something inside it checks a
		// predicate: an if/switch wrapping the Wait, or one anywhere in
		// the loop body (the serve.Loop shape tests the exit condition
		// as a sibling of the Wait).
		if l.Cond == nil && !guarded && !bodyHasBranch(l.Body) {
			p.Reportf(call.Pos(),
				"%s.Wait in an unconditional for loop without a predicate check; guard the wait with the condition it waits for", name)
		}
	}

	// Mutex pairing: the owning mutex must be locked in the same
	// function, lexically before the wait.
	owner, known := owners[baseName(recv)]
	if !known {
		return
	}
	if enclosing == nil {
		enclosingAt(stack, len(stack)-1, &enclosing)
	}
	var body *ast.BlockStmt
	switch fn := enclosing.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}
	locked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if locked {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() >= call.Pos() {
			return true
		}
		if r := selectorCall(c, "Lock"); r != nil && baseName(r) == owner {
			locked = true
		}
		return true
	})
	if !locked {
		p.Reportf(call.Pos(),
			"%s.Wait without locking its paired mutex %s in this function", name, owner)
	}
}

// bodyHasBranch reports whether a loop body contains an if or switch
// outside nested function literals — the predicate re-check that makes
// an unconditional wait loop sound.
func bodyHasBranch(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			found = true
		}
		return !found
	})
	return found
}

// enclosingAt fills enc with the innermost FuncDecl/FuncLit at or above
// stack index i, if not already set.
func enclosingAt(stack []ast.Node, i int, enc *ast.Node) {
	if *enc != nil {
		return
	}
	for j := i; j >= 0; j-- {
		switch stack[j].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			*enc = stack[j]
			return
		}
	}
}
