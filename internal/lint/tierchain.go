package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TierChain bans positional memsim node access outside the memsim
// package itself: `sys.Node(1)` and `sys.Nodes()[1]` encode the
// assumption that node IDs follow tier order, which broke silently
// when the N-tier generalisation let machine specs declare tiers in
// any order (the PR 8 bug class: DDR-first specs made "node 1" the
// HBM on some machines and the NVM on others).
//
// The sanctioned positional surface is the kind-ranked chain:
// System.Chain() and Machine.Tier(i) sort by TierRank before
// indexing, and System.NodeByKind looks up by kind. Indexing a
// variable assigned from a Chain() call is accepted — the chain is
// positional by construction — but raw node lists are not.
var TierChain = &Analyzer{
	Name: "tierchain",
	Doc:  "ban positional memsim node lookups (Node(i), Nodes()[i]) that bypass the kind-ranked tier chain",
	Match: func(rel string) bool {
		// memsim implements the accessors; everywhere else consumes them.
		return !matchPrefix(rel, "internal/memsim")
	},
	Run: runTierChain,
}

func runTierChain(p *Pass) {
	chainVars := chainDerivedVars(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				recv := selectorCall(n, "Node")
				if recv == nil || len(n.Args) != 1 || !intLiteral(n.Args[0]) {
					return true
				}
				if isNamedType(p.TypeOf(recv), "internal/memsim", "System") {
					p.Reportf(n.Pos(),
						"positional node lookup %s.Node(%s) assumes node IDs follow tier order; use System.Chain, System.NodeByKind, or Machine.Tier",
						exprString(recv), exprString(n.Args[0]))
				}
			case *ast.IndexExpr:
				if !intLiteral(n.Index) || !isMemsimNodeSlice(p.TypeOf(n.X)) {
					return true
				}
				if isChainExpr(p, n.X, chainVars) {
					return true
				}
				p.Reportf(n.Pos(),
					"positional index %s of a raw memsim node list bypasses the kind-ranked chain; use System.Chain()[%s] or Machine.Tier(%s)",
					exprString(n), exprString(n.Index), exprString(n.Index))
			}
			return true
		})
	}
}

// intLiteral reports whether e is a plain integer literal.
func intLiteral(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Kind == token.INT
}

// isMemsimNodeSlice reports whether t is []*memsim.Node (or an array).
func isMemsimNodeSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	return isNamedType(elem, "internal/memsim", "Node")
}

// isChainExpr reports whether e is a Chain() call or a variable/field
// the package assigns from one.
func isChainExpr(p *Pass, e ast.Expr, chainVars map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return selectorCall(e, "Chain") != nil
	case *ast.Ident:
		return chainVars[p.Info.ObjectOf(e)]
	case *ast.SelectorExpr:
		return chainVars[p.Info.ObjectOf(e.Sel)]
	}
	return false
}

// chainDerivedVars collects the objects of variables and struct fields
// assigned from a Chain() call anywhere in the package, so both
// `chain := m.Chain(); chain[0]` and the Manager's cached
// `m.tiers = m.mach.Chain(); m.tiers[0]` keep working without a
// suppression. Field objects are canonical per package, so an
// assignment in the constructor covers uses in every other file.
func chainDerivedVars(p *Pass) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || selectorCall(call, "Chain") == nil {
			return
		}
		var obj types.Object
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj = p.Info.ObjectOf(lhs)
		case *ast.SelectorExpr:
			obj = p.Info.ObjectOf(lhs.Sel)
		}
		if obj != nil {
			vars[obj] = true
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Values {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return vars
}
