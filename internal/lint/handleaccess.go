package lint

import (
	"go/ast"
)

// HandleAccess enforces the dependence API's object-level contract in
// internal/kernels and examples/: a kernel body may only touch a
// handle's backing data through dependences the entry method declared,
// and only in the declared access mode. Concretely, inside a
// charm.Entry{Prefetch: true, Deps: ..., Fn: ...} literal whose Deps
// function returns a static []charm.DataDep literal, every DataDep the
// Fn body hands to Manager.RunKernel (and every Handle.Buffer() access)
// must match a declared dependence:
//
//   - an access to a handle absent from Deps is an undeclared
//     dependence — the runtime never staged it, so the kernel would
//     stream from wherever the block happens to live;
//   - a write (WriteOnly/ReadWrite) against a ReadOnly declaration
//     breaks the sharing contract that lets concurrent tasks stage one
//     copy of a read-only block;
//   - a read (ReadOnly/ReadWrite) against a WriteOnly declaration reads
//     bytes the staging protocol is allowed to skip fetching.
//
// Entries whose Deps are computed (a named function, a loop) are
// skipped: the analyzer only judges what it can prove, and the common
// idiom of sharing one deps closure between Deps and RunKernel is
// consistent by construction.
var HandleAccess = &Analyzer{
	Name: "handleaccess",
	Doc:  "match kernel data accesses against declared dependences and their access modes in internal/kernels and examples/",
	Match: func(rel string) bool {
		return matchPrefix(rel, "internal/kernels") || matchPrefix(rel, "examples")
	},
	Run: runHandleAccess,
}

// accessMode mirrors charm.AccessMode for static reasoning.
type accessMode int

const (
	modeUnknown accessMode = iota
	modeReadOnly
	modeReadWrite
	modeWriteOnly
)

// declaredDep is one statically-declared dependence.
type declaredDep struct {
	handle string // canonical handle expression
	mode   accessMode
}

func runHandleAccess(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isEntryLiteral(p, cl) {
				return true
			}
			p.checkEntry(cl)
			return true
		})
	}
}

// isEntryLiteral reports whether cl is a charm.Entry composite literal
// (directly or through the hetmem facade alias).
func isEntryLiteral(p *Pass, cl *ast.CompositeLit) bool {
	t := p.TypeOf(cl)
	return isNamedType(t, "internal/charm", "Entry")
}

// checkEntry cross-checks one Entry literal's Fn accesses against its
// Deps declarations.
func (p *Pass) checkEntry(cl *ast.CompositeLit) {
	var depsFn, bodyFn *ast.FuncLit
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Deps":
			depsFn, _ = kv.Value.(*ast.FuncLit)
		case "Fn":
			bodyFn, _ = kv.Value.(*ast.FuncLit)
		}
	}
	if depsFn == nil || bodyFn == nil {
		return
	}
	declared, static := p.declaredDeps(depsFn)
	if !static {
		return
	}
	p.checkFnAccesses(bodyFn, declared)
}

// declaredDeps extracts the []charm.DataDep literals returned by the
// Deps function. static is false when any return is not a plain
// composite literal of DataDep literals.
func (p *Pass) declaredDeps(fn *ast.FuncLit) (deps []declaredDep, static bool) {
	static = true
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			lit, ok := res.(*ast.CompositeLit)
			if !ok {
				static = false
				continue
			}
			for _, elt := range lit.Elts {
				dep, ok := p.dataDepLiteral(elt)
				if !ok {
					static = false
					continue
				}
				deps = append(deps, dep)
			}
		}
		return true
	})
	return deps, static
}

// dataDepLiteral parses a charm.DataDep{Handle: ..., Mode: ...}
// composite literal.
func (p *Pass) dataDepLiteral(e ast.Expr) (declaredDep, bool) {
	cl, ok := e.(*ast.CompositeLit)
	if !ok {
		return declaredDep{}, false
	}
	dep := declaredDep{mode: modeUnknown}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return declaredDep{}, false
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return declaredDep{}, false
		}
		switch key.Name {
		case "Handle":
			dep.handle = exprString(kv.Value)
		case "Mode":
			dep.mode = p.modeOf(kv.Value)
		}
	}
	if dep.handle == "" {
		return declaredDep{}, false
	}
	return dep, true
}

// modeOf resolves an expression naming a charm.AccessMode constant.
func (p *Pass) modeOf(e ast.Expr) accessMode {
	var name string
	switch e := e.(type) {
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.Ident:
		name = e.Name
	default:
		return modeUnknown
	}
	if t := p.TypeOf(e); !isNamedType(t, "internal/charm", "AccessMode") {
		return modeUnknown
	}
	switch name {
	case "ReadOnly":
		return modeReadOnly
	case "ReadWrite":
		return modeReadWrite
	case "WriteOnly":
		return modeWriteOnly
	}
	return modeUnknown
}

// checkFnAccesses walks the Fn body for RunKernel dependence lists and
// Buffer() calls and validates each against the declarations.
func (p *Pass) checkFnAccesses(fn *ast.FuncLit, declared []declaredDep) {
	find := func(handle string) *declaredDep {
		for i := range declared {
			if declared[i].handle == handle {
				return &declared[i]
			}
		}
		return nil
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv := selectorCall(call, "RunKernel"); recv != nil && len(call.Args) >= 2 {
			if isNamedType(p.TypeOf(recv), "internal/core", "Manager") {
				p.checkKernelDeps(call.Args[1], find)
			}
			return true
		}
		if recv := selectorCall(call, "Buffer"); recv != nil {
			if isNamedType(p.TypeOf(recv), "internal/core", "Handle") {
				if d := find(exprString(recv)); d == nil {
					p.Reportf(call.Pos(),
						"kernel reads backing buffer of %s, which is not a declared dependence of this entry",
						exprString(recv))
				}
			}
		}
		return true
	})
}

// checkKernelDeps validates the []charm.DataDep argument of a RunKernel
// call. Non-literal dependence lists (a shared deps closure) are
// consistent by construction and skipped.
func (p *Pass) checkKernelDeps(arg ast.Expr, find func(string) *declaredDep) {
	lit, ok := arg.(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		dep, ok := p.dataDepLiteral(elt)
		if !ok {
			continue
		}
		decl := find(dep.handle)
		if decl == nil {
			p.Reportf(elt.Pos(),
				"kernel accesses %s without a declared dependence; add it to the entry's Deps", dep.handle)
			continue
		}
		p.checkModes(elt, dep, decl)
	}
}

// checkModes flags access-mode violations: the kernel's use must be
// covered by the declaration.
func (p *Pass) checkModes(at ast.Expr, use declaredDep, decl *declaredDep) {
	if use.mode == modeUnknown || decl.mode == modeUnknown {
		return
	}
	writes := use.mode == modeReadWrite || use.mode == modeWriteOnly
	reads := use.mode == modeReadWrite || use.mode == modeReadOnly
	if writes && decl.mode == modeReadOnly {
		p.Reportf(at.Pos(),
			"kernel writes %s but the entry declares it readonly; declare readwrite or drop the write", use.handle)
	}
	if reads && decl.mode == modeWriteOnly {
		p.Reportf(at.Pos(),
			"kernel reads %s but the entry declares it writeonly; declare readwrite or drop the read", use.handle)
	}
}
