package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest on the standard
// library alone: testdata packages are parsed and type-checked against
// the repository's real package graph (so fixtures import
// internal/sim, internal/core, ... with full type information), the
// analyzer under test runs over them, and findings are matched against
// `// want `+"`regexp`"+` comments on the flagged lines.

var (
	repoOnce sync.Once
	repoG    *graph
	repoErr  error
)

// repoGraph loads and type-checks the repository once per test binary.
func repoGraph(t *testing.T) *graph {
	t.Helper()
	repoOnce.Do(func() {
		repoG, repoErr = load("../..", "./...")
	})
	if repoErr != nil {
		t.Fatalf("loading repository package graph: %v", repoErr)
	}
	return repoG
}

// runFixture type-checks testdata/<dir> as a package with the given
// fictitious import path and runs the analyzer over it.
func runFixture(t *testing.T, a *Analyzer, dir, importPath string) ([]Diagnostic, []*ast.File) {
	t.Helper()
	g := repoGraph(t)

	names, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files under testdata/%s: %v", dir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(g.fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		files = append(files, f)
	}

	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if tp, ok := g.checked[path]; ok {
			return tp, nil
		}
		return nil, fmt.Errorf("fixture imports %q, which is not in the repository graph", path)
	})}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tp, err := conf.Check(importPath, g.fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture testdata/%s: %v", dir, err)
	}

	rel := strings.TrimPrefix(importPath, "github.com/hetmem/hetmem/")
	pkg := &Package{
		Path:    importPath,
		RelPath: rel,
		Name:    tp.Name(),
		Fset:    g.fset,
		Files:   files,
		Types:   tp,
		Info:    info,
	}
	return Run([]*Package{pkg}, []*Analyzer{a}), files
}

// wantExp is one expected finding, parsed from a // want `re` comment.
type wantExp struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantPattern = regexp.MustCompile("`([^`]*)`")

func collectWants(t *testing.T, g *graph, files []*ast.File) []*wantExp {
	t.Helper()
	var wants []*wantExp
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := g.fset.Position(c.Pos())
				matches := wantPattern.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want comment without a backquoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &wantExp{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkFixture asserts that the analyzer's findings over testdata/<dir>
// are exactly the fixture's want comments.
func checkFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	got, files := runFixture(t, a, dir, importPath)
	wants := collectWants(t, repoGraph(t), files)

	for _, d := range got {
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, Determinism, "determinism", "github.com/hetmem/hetmem/internal/lintfixture/determinism")
}

func TestLocksafeFixture(t *testing.T) {
	checkFixture(t, Locksafe, "locksafe", "github.com/hetmem/hetmem/internal/core/lintfixture")
}

func TestHandleAccessFixture(t *testing.T) {
	checkFixture(t, HandleAccess, "handleaccess", "github.com/hetmem/hetmem/internal/kernels/lintfixture")
}

func TestOptionsMutFixture(t *testing.T) {
	checkFixture(t, OptionsMut, "optionsmut", "github.com/hetmem/hetmem/internal/lintfixture/optionsmut")
}

func TestMetricsAttrFixture(t *testing.T) {
	checkFixture(t, MetricsAttr, "metricsattr", "github.com/hetmem/hetmem/internal/core/lintfixture2")
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, LockOrder, "lockorder", "github.com/hetmem/hetmem/internal/lintfixture/lockorder")
}

func TestWaitLoopFixture(t *testing.T) {
	checkFixture(t, WaitLoop, "waitloop", "github.com/hetmem/hetmem/internal/lintfixture/waitloop")
}

func TestGoroLeakFixture(t *testing.T) {
	// The import path matters: goroleak scopes to the long-running
	// layers (cluster, serve, cmd).
	checkFixture(t, GoroLeak, "goroleak", "github.com/hetmem/hetmem/internal/cluster/lintfixture")
}

func TestTierChainFixture(t *testing.T) {
	checkFixture(t, TierChain, "tierchain", "github.com/hetmem/hetmem/internal/lintfixture/tierchain")
}

func TestEncodeParityFixture(t *testing.T) {
	// Scoped to internal/trace, where the fast encoder lives.
	checkFixture(t, EncodeParity, "encodeparity", "github.com/hetmem/hetmem/internal/trace/lintfixture")
}

func TestSnapshotAliasFixture(t *testing.T) {
	checkFixture(t, SnapshotAlias, "snapshotalias", "github.com/hetmem/hetmem/internal/lintfixture/snapshotalias")
}

// TestFactsLayer asserts the interprocedural summaries directly: the
// call graph, the held-lock annotations, and the Signals fixpoint that
// lockorder and goroleak consume.
func TestFactsLayer(t *testing.T) {
	var facts *Facts
	grab := &Analyzer{Name: "grab", NeedsFacts: true, Run: func(p *Pass) { facts = p.Facts }}
	runFixture(t, grab, "lockorder", "github.com/hetmem/hetmem/internal/lintfixture/lockorder")
	if facts == nil {
		t.Fatal("NeedsFacts analyzer ran without a facts layer")
	}

	byName := map[string]*FnFact{}
	for _, fn := range facts.Functions() {
		byName[fn.Fn.Name()] = fn
	}
	ab := byName["ab"]
	if ab == nil {
		t.Fatal("facts missing function ab")
	}
	if len(ab.Acquires) != 2 {
		t.Fatalf("ab acquires = %d locks, want 2 (%v)", len(ab.Acquires), ab.Acquires)
	}
	if got := ab.Acquires[1]; got.Class != "lockorder.B.mu" || len(got.Held) != 1 || got.Held[0].Class != "lockorder.A.mu" {
		t.Fatalf("ab second acquisition = %+v, want lockorder.B.mu held under lockorder.A.mu", got)
	}

	cThenD := byName["cThenD"]
	if cThenD == nil {
		t.Fatal("facts missing function cThenD")
	}
	var callsLockD *CallSite
	for i := range cThenD.Calls {
		if cThenD.Calls[i].Callee.Name() == "lockD" {
			callsLockD = &cThenD.Calls[i]
		}
	}
	if callsLockD == nil {
		t.Fatal("cThenD call graph does not include lockD")
	}
	if len(callsLockD.Held) != 1 || callsLockD.Held[0].Class != "lockorder.C.mu" {
		t.Fatalf("lockD call site held = %v, want [lockorder.C.mu] (deferred unlock keeps the lock held)", callsLockD.Held)
	}

	cycles := facts.LockCycles()
	if len(cycles) != 2 {
		t.Fatalf("LockCycles = %d cycles, want 2 (A<->B direct, C<->D via calls):\n%v", len(cycles), cycles)
	}
	if !strings.Contains(cycles[1].msg, "via lockD") {
		t.Errorf("interprocedural cycle message should name the via callee, got: %s", cycles[1].msg)
	}

	// Signals: ab signals nothing; a function is not its own evidence.
	if facts.Signals(ab.Fn) {
		t.Error("Signals(ab) = true, want false (no channel/WaitGroup/Cond operations)")
	}
}

// TestSuppressions checks the //hmlint:ignore protocol end to end: a
// justified directive silences its finding, a reason-less directive is
// itself reported and suppresses nothing.
func TestSuppressions(t *testing.T) {
	got, _ := runFixture(t, Determinism, "suppress", "github.com/hetmem/hetmem/internal/lintfixture/suppress")
	var kinds []string
	for _, d := range got {
		kinds = append(kinds, d.Analyzer+":"+filepath.Base(d.Pos.Filename))
	}
	want := []string{"hmlint:malformed.go", "determinism:malformed.go"}
	sort.Strings(kinds)
	sort.Strings(want)
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Fatalf("suppression fixture findings = %v, want the malformed directive and its unsuppressed finding\nfull: %v", kinds, got)
	}
	for _, d := range got {
		if d.Analyzer == "hmlint" && !strings.Contains(d.Message, "malformed") {
			t.Errorf("hmlint finding should flag the malformed directive, got: %s", d)
		}
	}
}

// TestRepoIsClean dogfoods the full suite over the repository itself:
// the tree must stay finding-free (modulo in-tree justified
// suppressions), which is also the make-lint acceptance gate.
func TestRepoIsClean(t *testing.T) {
	g := repoGraph(t)
	diags := Run(g.pkgs, All())
	for _, d := range diags {
		t.Errorf("finding on clean tree: %s", d)
	}
}

// TestByName covers the driver's -checks selection.
func TestByName(t *testing.T) {
	all, ok := ByName(nil)
	if !ok || len(all) != 11 {
		t.Fatalf("ByName(nil) = %d analyzers, ok=%v; want all 11", len(all), ok)
	}
	sel, ok := ByName([]string{"determinism", "locksafe"})
	if !ok || len(sel) != 2 || sel[0].Name != "determinism" || sel[1].Name != "locksafe" {
		t.Fatalf("ByName(determinism,locksafe) = %v, ok=%v", sel, ok)
	}
	if _, ok := ByName([]string{"nope"}); ok {
		t.Fatal("ByName(nope) should fail")
	}
}
