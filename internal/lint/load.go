package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package of the analysis target, plus the
// metadata the analyzers scope on.
type Package struct {
	// Path is the full import path; RelPath is the path relative to the
	// module root ("" for the root package itself).
	Path    string
	RelPath string
	Name    string
	Dir     string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg mirrors the fields we request from `go list -json`.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// graph is the loader's complete result: the analysis-target packages
// plus the type-checked import universe (standard library included),
// which the fixture test harness uses to type-check testdata packages
// against the real repository types.
type graph struct {
	fset    *token.FileSet
	pkgs    []*Package
	checked map[string]*types.Package
}

// Load type-checks the packages matched by patterns (typically "./...")
// in dir, together with their full dependency graph, and returns the
// non-standard-library packages in deterministic (dependency) order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	g, err := load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return g.pkgs, nil
}

// load is the graph-retaining implementation behind Load.
//
// The loader deliberately uses only the standard library: it shells out
// to `go list -deps -json` for package metadata — which lists
// dependencies before dependents — and type-checks the graph bottom-up
// with go/types, feeding each package's imports from the packages
// already checked. The repository has no third-party modules, so the
// whole graph (stdlib included) resolves offline.
func load(dir string, patterns ...string) (*graph, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Standard,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO off: keeps the file lists pure Go so go/types can check every
	// package from source alone.
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	var metas []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		metas = append(metas, &p)
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{"unsafe": types.Unsafe}
	importer := importerFunc(func(path string) (*types.Package, error) {
		if tp, ok := checked[path]; ok {
			return tp, nil
		}
		return nil, fmt.Errorf("lint: package %q not in dependency graph", path)
	})

	var pkgs []*Package
	loaded := make(map[string]bool, len(metas))
	for _, meta := range metas {
		if meta.ImportPath == "unsafe" {
			continue
		}
		// go list -deps lists a package once per occurrence across
		// patterns in odd invocations (a package named both as a root
		// and reached as a dependency); checking the same package twice
		// would double every diagnostic in it.
		if loaded[meta.ImportPath] {
			continue
		}
		loaded[meta.ImportPath] = true
		var files []*ast.File
		for _, name := range meta.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
			}
			files = append(files, af)
		}
		var typeErr error
		conf := types.Config{
			Importer: importer,
			Error: func(err error) {
				if typeErr == nil {
					typeErr = err
				}
			},
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tp, err := conf.Check(meta.ImportPath, fset, files, info)
		if err != nil && !meta.Standard {
			// Standard-library packages occasionally use compiler
			// intrinsics go/types cannot fully model; the analysis
			// targets must check cleanly.
			if typeErr != nil {
				err = typeErr
			}
			return nil, fmt.Errorf("lint: type-checking %s: %v", meta.ImportPath, err)
		}
		checked[meta.ImportPath] = tp
		if meta.Standard {
			continue
		}
		rel := meta.ImportPath
		if meta.Module != nil && meta.Module.Path != "" {
			rel = strings.TrimPrefix(rel, meta.Module.Path)
			rel = strings.TrimPrefix(rel, "/")
		}
		pkgs = append(pkgs, &Package{
			Path:    meta.ImportPath,
			RelPath: rel,
			Name:    meta.Name,
			Dir:     meta.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tp,
			Info:    info,
		})
	}
	return &graph{fset: fset, pkgs: pkgs, checked: checked}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
