package lint

// All returns the full hmlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		EncodeParity,
		GoroLeak,
		HandleAccess,
		LockOrder,
		Locksafe,
		MetricsAttr,
		OptionsMut,
		SnapshotAlias,
		TierChain,
		WaitLoop,
	}
}

// ByName resolves a comma-separated selection of analyzer names; nil
// names selects all.
func ByName(names []string) ([]*Analyzer, bool) {
	if len(names) == 0 {
		return All(), true
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
