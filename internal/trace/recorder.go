package trace

import (
	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
)

// Recorder captures the runtime's event stream into a Capture. It
// implements charm.TraceHook (task send/run events), core.TraceSink
// (data-movement events), core.Observer (task completion) and
// adapt.DecisionSink (controller decisions); Attach installs all four
// hooks. Recording adds zero virtual time, so a traced run produces the
// same schedule as an untraced one.
//
// Task IDs are assigned at send time, monotonically — replaying a
// capture re-sends tasks in ID order, which reproduces the IDs and
// makes recorded and replayed schedules directly comparable.
type Recorder struct {
	mg  *core.Manager
	eng *sim.Engine
	cap *Capture
	seq int64

	nextID int64
	// ids is indexed by Task.Seq (dense send-order numbering from the
	// runtime); -1 means not yet assigned. Trace IDs are still handed
	// out in first-sight order, so captures are byte-identical to the
	// map-based recorder's.
	ids []int64
	// running is indexed by Proc.ID(); id -1 marks a free slot.
	running []runRef
	tasks   int64
	// tiers is the machine's chain in near-to-far node-name order,
	// recorded in the meta header. multiTier gates the Evict Dst field:
	// on a two-tier machine the destination is unambiguous and omitted,
	// keeping classic captures free of the field.
	tiers     []string
	multiTier bool

	finished bool
}

// runRef ties a PE scheduler process to the task it is executing, so
// kernel events can be attributed to tasks.
type runRef struct {
	id int64
	pe int
}

// NewRecorder builds a recorder for mg and emits the meta event. Call
// Attach before the run starts.
func NewRecorder(mg *core.Manager) *Recorder {
	return NewSessionRecorder(mg, "", "")
}

// NewSessionRecorder is NewRecorder with the serve-layer session and
// tenant identity stamped into the meta event, so captures pulled out
// of a multi-session directory remain attributable. Empty labels
// produce a meta event identical to NewRecorder's.
func NewSessionRecorder(mg *core.Manager, session, tenant string) *Recorder {
	rt := mg.Runtime()
	r := &Recorder{
		mg:  mg,
		eng: rt.Engine(),
		cap: &Capture{},
	}
	for _, n := range rt.Machine().Chain() {
		r.tiers = append(r.tiers, n.Name)
	}
	r.multiTier = len(r.tiers) > 2
	r.emit(&Meta{
		Version: Version,
		NumPEs:  rt.NumPEs(),
		Seed:    r.eng.Seed(),
		Session: session,
		Tenant:  tenant,
		Tiers:   r.tiers,
		Knobs:   KnobsOf(mg.Options()),
		Params:  rt.Params(),
		Spec:    rt.Machine().Spec,
	})
	return r
}

// Attach installs the recorder's hooks on the runtime, the manager and
// (optionally, via AttachController) the adaptive controller. Existing
// observers keep firing: the manager fans TaskDone out to all of them.
func (r *Recorder) Attach() {
	r.mg.Runtime().SetTraceHook(r)
	r.mg.SetTraceSink(r)
	r.mg.AddObserver(r)
}

// AttachController additionally records the controller's decisions.
func (r *Recorder) AttachController(c *adapt.Controller) {
	c.SetDecisionSink(r)
}

// emit stamps and appends one event.
func (r *Recorder) emit(e Event) {
	h := e.header()
	h.K = e.Kind()
	h.Seq = r.seq
	h.T = r.eng.Now()
	r.seq++
	r.cap.Events = append(r.cap.Events, e)
}

// taskID returns the send-time ID of t, assigning one if the task was
// created before the recorder attached.
func (r *Recorder) taskID(t *charm.Task) int64 {
	for int(t.Seq) >= len(r.ids) {
		r.ids = append(r.ids, -1)
	}
	id := r.ids[t.Seq]
	if id < 0 {
		id = r.nextID
		r.nextID++
		r.ids[t.Seq] = id
	}
	return id
}

// TaskSent implements charm.TraceHook.
func (r *Recorder) TaskSent(t *charm.Task) {
	id := r.taskID(t)
	ev := &Send{
		ID:       id,
		Arr:      t.Elem.Array().Name(),
		Idx:      t.Elem.Index,
		Entry:    t.Entry.Name,
		PE:       t.Elem.PE,
		From:     t.Msg.From,
		Prefetch: t.Entry.Prefetch,
	}
	for _, d := range t.Deps {
		ev.Deps = append(ev.Deps, Dep{
			Block: d.Handle.BlockName(),
			Bytes: d.Handle.Size(),
			Mode:  d.Mode.String(),
		})
	}
	r.tasks++
	r.emit(ev)
}

// TaskRunStart implements charm.TraceHook.
func (r *Recorder) TaskRunStart(p *sim.Proc, pe *charm.PE, t *charm.Task) {
	id := r.taskID(t)
	r.setRunning(p.ID(), runRef{id: id, pe: pe.ID()})
	r.emit(&RunStart{ID: id, PE: pe.ID()})
}

// TaskRunEnd implements charm.TraceHook.
func (r *Recorder) TaskRunEnd(p *sim.Proc, pe *charm.PE, t *charm.Task) {
	r.emit(&RunEnd{ID: r.taskID(t), PE: pe.ID()})
	r.setRunning(p.ID(), runRef{id: -1, pe: -1})
}

// setRunning stores the task a scheduler process is executing, growing
// the pid-indexed table on demand.
func (r *Recorder) setRunning(pid int, ref runRef) {
	for pid >= len(r.running) {
		r.running = append(r.running, runRef{id: -1, pe: -1})
	}
	r.running[pid] = ref
}

// HandleDeclared implements core.TraceSink.
func (r *Recorder) HandleDeclared(h *core.Handle, node string) {
	r.emit(&HandleDecl{Block: h.BlockName(), Bytes: h.Size(), Node: node})
}

// TaskAdmitted implements core.TraceSink.
func (r *Recorder) TaskAdmitted(t *charm.Task, pe int, depBytes int64, staged bool) {
	r.emit(&Admit{ID: r.taskID(t), PE: pe, Bytes: depBytes, Staged: staged})
}

// FetchStart implements core.TraceSink.
func (r *Recorder) FetchStart(lane int, h *core.Handle) {
	r.emit(&FetchStart{Lane: lane, Block: h.BlockName(), Bytes: h.Size()})
}

// FetchDone implements core.TraceSink. src is the tier node the bytes
// came from — on longer chains a refetch of a one-level demotion reads
// from DDR while first touches come from the bottom tier.
func (r *Recorder) FetchDone(lane int, h *core.Handle, d sim.Time, refetch bool, src string) {
	r.emit(&FetchEnd{Lane: lane, Block: h.BlockName(), Bytes: h.Size(), Dur: d, Src: src, Refetch: refetch})
}

// EvictDone implements core.TraceSink. The destination tier is only
// recorded on chains deeper than two, where it carries information.
func (r *Recorder) EvictDone(lane int, h *core.Handle, d sim.Time, forced bool, policy string, dst string) {
	ev := &Evict{Lane: lane, Block: h.BlockName(), Bytes: h.Size(), Dur: d, Forced: forced, Policy: policy}
	if r.multiTier {
		ev.Dst = dst
	}
	r.emit(ev)
}

// StageRetry implements core.TraceSink.
func (r *Recorder) StageRetry(pe int, t *charm.Task, need, used, reserved int64) {
	r.emit(&Pressure{PE: pe, Task: t.String(), Need: need, Used: used, Reserved: reserved, Budget: r.mg.HBMBudget()})
}

// KernelDone implements core.TraceSink. Kernels run inside entry
// methods on PE scheduler processes; attribution falls back to -1 for
// kernels issued outside any traced task.
func (r *Recorder) KernelDone(p *sim.Proc, spec core.KernelSpec, start, d sim.Time) {
	ref := runRef{id: -1, pe: -1}
	if pid := p.ID(); pid < len(r.running) {
		ref = r.running[pid]
	}
	r.emit(&Kernel{ID: ref.id, PE: ref.pe, Flops: spec.Flops, Scale: spec.TrafficScale, Start: start, Dur: d})
}

// Retuned implements core.TraceSink.
func (r *Recorder) Retuned(o core.Options) {
	r.emit(&Retune{Knobs: KnobsOf(o)})
}

// TaskDone implements core.Observer.
func (r *Recorder) TaskDone(t *charm.Task) {
	r.emit(&TaskDone{ID: r.taskID(t)})
}

// LaneAssigned records one multi-tenant scheduler window's IO-lane
// verdict for this session. The serve scheduler calls it from its
// share-assignment step; nothing else emits the kind.
func (r *Recorder) LaneAssigned(window, lanes, total, active int) {
	r.emit(&LaneAssign{Window: window, Lanes: lanes, Total: total, Active: active})
}

// Decided implements adapt.DecisionSink.
func (r *Recorder) Decided(d adapt.Decision) {
	r.emit(&Adapt{Window: d.Window, Action: d.Action})
}

// Finish appends the stats footer (once; later calls are no-ops) and
// detaches nothing — the recorder may keep observing, but a finished
// capture should be treated as complete.
func (r *Recorder) Finish() {
	if r.finished {
		return
	}
	r.finished = true
	st := &Stats{
		Makespan:        r.eng.Now(),
		Tasks:           r.tasks,
		Fetches:         r.mg.Stats.Fetches,
		Refetches:       r.mg.Stats.Refetches,
		Evictions:       r.mg.Stats.Evictions,
		ForcedEvictions: r.mg.Stats.ForcedEvictions,
		StageRetries:    r.mg.Stats.StageRetries,
		BytesFetched:    r.mg.Stats.BytesFetched,
		BytesEvicted:    r.mg.Stats.BytesEvicted,
		TasksStaged:     r.mg.Stats.TasksStaged,
		TasksInline:     r.mg.Stats.TasksInline,
	}
	r.emit(st)
}

// Capture finalises (if needed) and returns the recorded event stream.
func (r *Recorder) Capture() *Capture {
	r.Finish()
	return r.cap
}
