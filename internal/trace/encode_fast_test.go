package trace

import (
	"encoding/json"
	"math"
	"testing"
)

// floatRegimes covers every branch of encoding/json's float renderer:
// zero, plain 'f' range, both 'e' ranges, single- and multi-digit
// exponents (the "e-0X" trim), negatives and extremes.
var floatRegimes = []float64{
	0, 1, -1, 0.5, 2.25e-3,
	1e-6, 1.5e-6, 9.999999e-7, 1e-7, -3.25e-9, 4.25e-21,
	1e21, -2.5e21, 1.7976931348623157e308, 5e-324,
	123456.789, 0.1, 1.0 / 3.0,
	math.Copysign(0, -1), // negative zero renders as "-0"
}

// TestAppendEventMatchesJSON pins the hard requirement on the fast
// encoder: for every hot event kind and every float regime, the bytes
// must equal json.Marshal's exactly.
func TestAppendEventMatchesJSON(t *testing.T) {
	var events []Event
	for i, f := range floatRegimes {
		hdr := Ev{Seq: int64(i), T: f}
		events = append(events,
			&HandleDecl{Ev: hdr, Block: "A.halo_0", Bytes: 1 << 20, Node: "HBM"},
			&Send{Ev: hdr, ID: int64(i), Arr: "stencil", Idx: i, Entry: "iterate", PE: i % 8, From: -1, Prefetch: true,
				Deps: []Dep{{Block: "blk_0", Bytes: 4096, Mode: "RW"}, {Block: "blk_1", Bytes: 0, Mode: "RO"}}},
			&Send{Ev: hdr, ID: 7, Arr: "a", Idx: 0, Entry: "e", PE: 0, From: 3, Prefetch: false}, // no deps: omitempty
			&Admit{Ev: hdr, ID: 2, PE: 1, Bytes: 123, Staged: i%2 == 0},
			&RunStart{Ev: hdr, ID: 3, PE: 2},
			&RunEnd{Ev: hdr, ID: 3, PE: 2},
			&Kernel{Ev: hdr, ID: -1, PE: -1, Flops: f, Scale: 0.75, Start: f, Dur: f},
			&FetchStart{Ev: hdr, Lane: 0, Block: "b", Bytes: 1},
			&FetchEnd{Ev: hdr, Lane: 1, Block: "b", Bytes: 1, Dur: f, Src: "DDR4", Refetch: true},
			&Evict{Ev: hdr, Lane: 2, Block: "b", Bytes: 9, Dur: f, Forced: false, Policy: "lookahead"},
			&Evict{Ev: hdr, Lane: 2, Block: "b", Bytes: 9, Dur: f, Forced: true, Policy: "decl", Dst: "NVM"}, // multi-tier: dst recorded
			&Pressure{Ev: hdr, PE: 4, Task: "stencil[3].iterate", Need: 5, Used: 6, Reserved: 7, Budget: 8},
			&LaneAssign{Ev: hdr, Window: i, Lanes: i % 4, Total: 8, Active: 2},
			&Adapt{Ev: hdr, Window: i, Action: "switch:multiio"},
			&TaskDone{Ev: hdr, ID: int64(i)},
		)
	}
	for _, e := range events {
		e.header().K = e.Kind()
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json.Marshal(%T): %v", e, err)
		}
		got, ok := appendEvent(nil, e)
		if !ok {
			t.Fatalf("appendEvent(%T) took the fallback for safe input %s", e, want)
		}
		if string(got) != string(want) {
			t.Errorf("%T encoding mismatch:\n fast: %s\n json: %s", e, got, want)
		}
	}
}

// TestAppendEventFallsBackOnUnsafeStrings: strings needing escapes must
// refuse the fast path so json.Marshal keeps its exact escaping.
func TestAppendEventFallsBackOnUnsafeStrings(t *testing.T) {
	unsafe := []string{`a"b`, `a\b`, "a<b", "a>b", "a&b", "a\nb", "héllo"}
	for _, s := range unsafe {
		ev := &HandleDecl{Block: s, Bytes: 1, Node: "HBM"}
		ev.K = ev.Kind()
		if _, ok := appendEvent(nil, ev); ok {
			t.Errorf("appendEvent accepted unsafe string %q", s)
		}
	}
}

// TestEncodeMixedFallback: a capture mixing fast-path and fallback
// events encodes identically to a pure json.Marshal loop.
func TestEncodeMixedFallback(t *testing.T) {
	c := &Capture{}
	meta := &Meta{Version: Version, NumPEs: 4, Seed: 9}
	meta.K = meta.Kind()
	c.Events = append(c.Events, meta)
	re := &Retune{Knobs: Knobs{Mode: "multiio", EvictPolicy: "lru"}}
	re.K = re.Kind()
	weird := &HandleDecl{Block: "needs<escape>", Bytes: 2, Node: "DDR4"}
	weird.K = weird.Kind()
	done := &TaskDone{ID: 1}
	done.K = done.Kind()
	done.T = 3.5e-8
	c.Events = append(c.Events, re, weird, done)

	var want []byte
	for _, e := range c.Events {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, b...)
		want = append(want, '\n')
	}
	if got := c.Bytes(); string(got) != string(want) {
		t.Fatalf("Encode mismatch:\n got: %s\nwant: %s", got, want)
	}
}
