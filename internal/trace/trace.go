// Package trace implements task-level event tracing for the runtime:
// capture (a Recorder hooked into the charm scheduler, the core manager
// and the adapt controller), a versioned deterministic JSONL encoding,
// export to Chrome trace_event JSON plus a terminal summary, and a
// replay/what-if engine that reconstructs the captured workload and
// re-drives it through the real scheduler under different knobs.
//
// The encoding is deliberately boring: one JSON object per line, every
// event a plain Go struct (encoding/json emits struct fields in
// declaration order, so output never depends on map iteration), all
// timestamps virtual time, no wall clock anywhere. That makes
// encode -> decode -> encode byte-identical, which in turn makes replay
// fidelity a byte-comparison (DESIGN.md section 11).
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/topology"
)

// Version is the capture-format version written into the meta event.
// Decoders reject captures from a different major version.
const Version = 1

// Ev is the header embedded in every event: kind, global sequence
// number and virtual timestamp in seconds.
type Ev struct {
	K   string   `json:"k"`
	Seq int64    `json:"seq"`
	T   sim.Time `json:"t"`
}

func (e *Ev) header() *Ev { return e }

// Event is one captured runtime event. The concrete types below form
// the complete taxonomy; Kind returns the stable discriminator stored
// in the "k" field.
type Event interface {
	header() *Ev
	Kind() string
}

// Knobs is the JSON image of the retunable core.Options fields — enough
// to rebuild an equivalent Options for replay.
type Knobs struct {
	Mode            string `json:"mode"`
	HBMReserve      int64  `json:"hbm_reserve"`
	EvictLazily     bool   `json:"evict_lazily"`
	IOThreads       int    `json:"io_threads"`
	SharedWaitQueue bool   `json:"shared_wait_queue"`
	EvictPolicy     string `json:"evict_policy"`
	PrefetchDepth   int    `json:"prefetch_depth"`
	Metrics         bool   `json:"metrics"`
}

// KnobsOf snapshots the replay-relevant fields of an option set.
func KnobsOf(o core.Options) Knobs {
	pol := core.DeclOrder.Name()
	if o.EvictPolicy != nil {
		pol = o.EvictPolicy.Name()
	}
	return Knobs{
		Mode:            o.Mode.String(),
		HBMReserve:      o.HBMReserve,
		EvictLazily:     o.EvictLazily,
		IOThreads:       o.IOThreads,
		SharedWaitQueue: o.SharedWaitQueue,
		EvictPolicy:     pol,
		PrefetchDepth:   o.PrefetchDepth,
		Metrics:         o.Metrics,
	}
}

// parseMode inverts core.Mode.String.
func parseMode(s string) (core.Mode, error) {
	for _, m := range []core.Mode{core.DDROnly, core.Baseline, core.SingleIO, core.NoIO, core.MultiIO} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown mode %q", s)
}

// Options rebuilds a core.Options from the knob image.
func (k Knobs) Options() (core.Options, error) {
	mode, err := parseMode(k.Mode)
	if err != nil {
		return core.Options{}, err
	}
	o := core.Options{
		Mode:            mode,
		HBMReserve:      k.HBMReserve,
		EvictLazily:     k.EvictLazily,
		IOThreads:       k.IOThreads,
		SharedWaitQueue: k.SharedWaitQueue,
		PrefetchDepth:   k.PrefetchDepth,
		Metrics:         k.Metrics,
	}
	if mode.Moves() {
		pol, err := core.ParseEvictPolicy(k.EvictPolicy)
		if err != nil {
			return core.Options{}, err
		}
		o.EvictPolicy = pol
	}
	return o, nil
}

// Meta is the first event of every capture: everything needed to
// rebuild the machine and runtime for replay. Session and Tenant are
// set only on captures recorded by the multi-tenant service (hetmemd);
// both are omitted from single-workload captures, which therefore stay
// byte-identical to pre-service recorders.
type Meta struct {
	Ev
	Version int    `json:"version"`
	NumPEs  int    `json:"num_pes"`
	Seed    int64  `json:"seed"`
	Session string `json:"session,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	// Tiers is the memory chain the capture ran on, node names in
	// near-to-far order (e.g. ["MCDRAM","DDR4","NVM"]). Replay refuses
	// a capture whose recorded chain differs from the machine the spec
	// rebuilds — a tier-aware capture must not silently replay against
	// the wrong topology. Absent on captures recorded before tier
	// chains existed; those skip the check.
	Tiers  []string             `json:"tiers,omitempty"`
	Knobs  Knobs                `json:"knobs"`
	Params charm.Params         `json:"params"`
	Spec   topology.MachineSpec `json:"spec"`
}

func (*Meta) Kind() string { return "meta" }

// HandleDecl records a managed block declaration and its initial
// placement node (a core.BlockState string).
type HandleDecl struct {
	Ev
	Block string `json:"block"`
	Bytes int64  `json:"bytes"`
	Node  string `json:"node"`
}

func (*HandleDecl) Kind() string { return "handle" }

// Dep is one declared data dependence of a task.
type Dep struct {
	Block string `json:"block"`
	Bytes int64  `json:"bytes"`
	Mode  string `json:"mode"`
}

// Send records task creation: the recorder assigns the capture-unique
// task ID here, in send order.
type Send struct {
	Ev
	ID       int64  `json:"id"`
	Arr      string `json:"arr"`
	Idx      int    `json:"idx"`
	Entry    string `json:"entry"`
	PE       int    `json:"pe"`
	From     int    `json:"from"`
	Prefetch bool   `json:"prefetch"`
	Deps     []Dep  `json:"deps,omitempty"`
}

func (*Send) Kind() string { return "send" }

// Admit records the strategy's admission decision for an intercepted
// [prefetch] task: staged into a wait queue, or executed inline.
type Admit struct {
	Ev
	ID     int64 `json:"id"`
	PE     int   `json:"pe"`
	Bytes  int64 `json:"bytes"`
	Staged bool  `json:"staged"`
}

func (*Admit) Kind() string { return "admit" }

// RunStart marks entry-method execution beginning on a PE.
type RunStart struct {
	Ev
	ID int64 `json:"id"`
	PE int   `json:"pe"`
}

func (*RunStart) Kind() string { return "run-start" }

// RunEnd marks entry-method execution completing.
type RunEnd struct {
	Ev
	ID int64 `json:"id"`
	PE int   `json:"pe"`
}

func (*RunEnd) Kind() string { return "run-end" }

// Kernel records one RunKernel completion inside a task. T is the end
// time; Start is the exact begin time (recorded separately because
// T-Dur can differ from the true start by a ULP, which would break
// byte-identical replay).
type Kernel struct {
	Ev
	ID    int64    `json:"id"`
	PE    int      `json:"pe"`
	Flops float64  `json:"flops"`
	Scale float64  `json:"scale"`
	Start sim.Time `json:"start"`
	Dur   sim.Time `json:"dur"`
}

func (*Kernel) Kind() string { return "kernel" }

// FetchStart marks a block migration into HBM beginning on an IO lane.
type FetchStart struct {
	Ev
	Lane  int    `json:"lane"`
	Block string `json:"block"`
	Bytes int64  `json:"bytes"`
}

func (*FetchStart) Kind() string { return "fetch-start" }

// FetchEnd marks the migration completing. Src names the tier node the
// bytes actually came from (the bottom tier for first touches, the
// demotion target for refetches); Refetch marks blocks that had been
// resident before.
type FetchEnd struct {
	Ev
	Lane    int      `json:"lane"`
	Block   string   `json:"block"`
	Bytes   int64    `json:"bytes"`
	Dur     sim.Time `json:"dur"`
	Src     string   `json:"src"`
	Refetch bool     `json:"refetch"`
}

func (*FetchEnd) Kind() string { return "fetch-end" }

// Evict records a block migrating out of HBM (T is the end time; the
// eviction ran over [T-Dur, T]). Dst names the tier the victim landed
// on; it is omitted when it is the far node of a two-tier machine, so
// classic captures stay byte-identical to the pre-tier encoding.
type Evict struct {
	Ev
	Lane   int      `json:"lane"`
	Block  string   `json:"block"`
	Bytes  int64    `json:"bytes"`
	Dur    sim.Time `json:"dur"`
	Forced bool     `json:"forced"`
	Policy string   `json:"policy"`
	Dst    string   `json:"dst,omitempty"`
}

func (*Evict) Kind() string { return "evict" }

// Pressure records a staging attempt aborted for lack of HBM capacity,
// with the usage picture at the moment of the abort.
type Pressure struct {
	Ev
	PE       int    `json:"pe"`
	Task     string `json:"task"`
	Need     int64  `json:"need"`
	Used     int64  `json:"used"`
	Reserved int64  `json:"reserved"`
	Budget   int64  `json:"budget"`
}

func (*Pressure) Kind() string { return "pressure" }

// Retune records a successful online Retune with the new knob set.
type Retune struct {
	Ev
	Knobs Knobs `json:"knobs"`
}

func (*Retune) Kind() string { return "retune" }

// LaneAssign records one multi-tenant scheduler window's IO-lane
// verdict for the capturing session: Lanes of the machine's Total IO
// lanes went to this session's tenant while Active sessions contended.
// Only hetmemd's scheduler emits the kind — single-workload captures
// never carry it and stay byte-identical to pre-service recorders.
type LaneAssign struct {
	Ev
	Window int `json:"window"`
	Lanes  int `json:"lanes"`
	Total  int `json:"total"`
	Active int `json:"active"`
}

func (*LaneAssign) Kind() string { return "lanes" }

// Adapt records one adaptive-controller decision.
type Adapt struct {
	Ev
	Window int    `json:"window"`
	Action string `json:"action"`
}

func (*Adapt) Kind() string { return "adapt" }

// TaskDone records post-processing completion of a [prefetch] task.
type TaskDone struct {
	Ev
	ID int64 `json:"id"`
}

func (*TaskDone) Kind() string { return "done" }

// Stats is the capture footer: the manager's aggregate counters and the
// virtual makespan at the moment the recorder was finalised.
type Stats struct {
	Ev
	Makespan        sim.Time `json:"makespan"`
	Tasks           int64    `json:"tasks"`
	Fetches         int64    `json:"fetches"`
	Refetches       int64    `json:"refetches"`
	Evictions       int64    `json:"evictions"`
	ForcedEvictions int64    `json:"forced_evictions"`
	StageRetries    int64    `json:"stage_retries"`
	BytesFetched    int64    `json:"bytes_fetched"`
	BytesEvicted    int64    `json:"bytes_evicted"`
	TasksStaged     int64    `json:"tasks_staged"`
	TasksInline     int64    `json:"tasks_inline"`
}

func (*Stats) Kind() string { return "stats" }

// newEvent returns a fresh event of the given kind for decoding.
func newEvent(kind string) (Event, error) {
	switch kind {
	case "meta":
		return &Meta{}, nil
	case "handle":
		return &HandleDecl{}, nil
	case "send":
		return &Send{}, nil
	case "admit":
		return &Admit{}, nil
	case "run-start":
		return &RunStart{}, nil
	case "run-end":
		return &RunEnd{}, nil
	case "kernel":
		return &Kernel{}, nil
	case "fetch-start":
		return &FetchStart{}, nil
	case "fetch-end":
		return &FetchEnd{}, nil
	case "evict":
		return &Evict{}, nil
	case "pressure":
		return &Pressure{}, nil
	case "retune":
		return &Retune{}, nil
	case "lanes":
		return &LaneAssign{}, nil
	case "adapt":
		return &Adapt{}, nil
	case "done":
		return &TaskDone{}, nil
	case "stats":
		return &Stats{}, nil
	default:
		return nil, fmt.Errorf("trace: unknown event kind %q", kind)
	}
}

// Capture is a decoded (or freshly recorded) event stream.
type Capture struct {
	Events []Event
}

// Meta returns the capture's meta event, or nil if absent (truncated
// capture).
func (c *Capture) Meta() *Meta {
	for _, e := range c.Events {
		if m, ok := e.(*Meta); ok {
			return m
		}
	}
	return nil
}

// Stats returns the capture's footer, or nil if absent.
func (c *Capture) Stats() *Stats {
	for i := len(c.Events) - 1; i >= 0; i-- {
		if s, ok := c.Events[i].(*Stats); ok {
			return s
		}
	}
	return nil
}

// Encode writes the capture as JSONL. The output is a pure function of
// the events: struct-field order, shortest-round-trip floats, no maps,
// no wall clock. Hot event kinds go through the hand-rolled appenders
// in encode_fast.go (byte-identical to json.Marshal, pinned by test);
// rare kinds and escape-needing strings fall back to the reflective
// encoder.
func (c *Capture) Encode(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var scratch []byte
	for _, e := range c.Events {
		if b, ok := appendEvent(scratch[:0], e); ok {
			scratch = b[:0]
			bw.Write(b)
		} else {
			b, err := json.Marshal(e)
			if err != nil {
				return fmt.Errorf("trace: encode %s event: %w", e.Kind(), err)
			}
			bw.Write(b)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Bytes returns the JSONL encoding.
func (c *Capture) Bytes() []byte {
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		panic(err) // in-memory encode of valid events cannot fail
	}
	return buf.Bytes()
}

// WriteFile writes the JSONL encoding to path.
func (c *Capture) WriteFile(path string) error {
	return os.WriteFile(path, c.Bytes(), 0o644)
}

// Decode parses a JSONL capture. On a malformed or truncated line it
// returns every event successfully parsed before the failure alongside
// the error, so callers can recover the readable prefix of a damaged
// capture.
func Decode(r io.Reader) (*Capture, error) {
	c := &Capture{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			K string `json:"k"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return c, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		e, err := newEvent(probe.K)
		if err != nil {
			return c, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if err := json.Unmarshal(line, e); err != nil {
			return c, fmt.Errorf("trace: line %d: decode %s event: %w", lineNo, probe.K, err)
		}
		if m, ok := e.(*Meta); ok && m.Version != Version {
			return c, fmt.Errorf("trace: line %d: capture version %d, decoder supports %d", lineNo, m.Version, Version)
		}
		c.Events = append(c.Events, e)
	}
	if err := sc.Err(); err != nil {
		return c, fmt.Errorf("trace: line %d: %w", lineNo, err)
	}
	if len(c.Events) == 0 {
		return c, fmt.Errorf("trace: empty capture")
	}
	return c, nil
}

// DecodeFile parses the capture at path, with the same partial-read
// recovery as Decode.
func DecodeFile(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
