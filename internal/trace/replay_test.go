package trace_test

import (
	"errors"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
)

// smallEnv builds a Small-scale environment for one traced run.
func smallEnv(t *testing.T, opts core.Options) *kernels.Env {
	t.Helper()
	return kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: exp.Small.NumPEs(),
		Opts:   opts,
		Params: charm.DefaultParams(),
	})
}

// smallOpts is the MultiIO configuration the replay tests capture under.
func smallOpts() core.Options {
	o := core.DefaultOptions(core.MultiIO)
	o.HBMReserve = exp.Small.HBMReserve()
	o.Metrics = true
	return o
}

// runStencil runs the Small Fig8 overflow point, optionally recording.
func runStencil(t *testing.T, opts core.Options, record bool) (makespan float64, c *trace.Capture) {
	t.Helper()
	env := smallEnv(t, opts)
	defer env.Close()
	var rec *trace.Recorder
	if record {
		rec = trace.NewRecorder(env.MG)
		rec.Attach()
	}
	sizes := exp.Small.StencilReducedSizes()
	app, err := kernels.NewStencil(env.MG, exp.Small.StencilConfig(sizes[len(sizes)-1]))
	if err != nil {
		t.Fatalf("NewStencil: %v", err)
	}
	mk, err := app.Run()
	if err != nil {
		t.Fatalf("stencil run: %v", err)
	}
	if rec != nil {
		rec.Finish()
		c = rec.Capture()
	}
	return float64(mk), c
}

// TestRecordingIsFree is the capture-overhead guarantee in miniature:
// a traced run must produce the identical virtual makespan as an
// untraced run, because hooks add zero virtual time.
func TestRecordingIsFree(t *testing.T) {
	plain, _ := runStencil(t, smallOpts(), false)
	traced, c := runStencil(t, smallOpts(), true)
	if plain != traced {
		t.Fatalf("recording perturbed the run: untraced %v, traced %v", plain, traced)
	}
	if len(c.Events) == 0 {
		t.Fatalf("traced run captured no events")
	}
}

// TestReplayFidelity replays a capture under identical knobs and
// requires the byte-identical per-task schedule (the X11 invariant at
// Small scale).
func TestReplayFidelity(t *testing.T) {
	_, c := runStencil(t, smallOpts(), true)
	w, err := trace.Reconstruct(c)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if len(w.Tasks) == 0 || len(w.Handles) == 0 {
		t.Fatalf("reconstructed workload is empty: %d tasks, %d handles", len(w.Tasks), len(w.Handles))
	}
	res, err := w.Replay(trace.ReplayConfig{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	got, want := res.Capture.ScheduleString(), c.ScheduleString()
	if got != want {
		t.Fatalf("replayed schedule differs from recorded schedule:\nrecorded %d bytes, replayed %d bytes\nfirst recorded lines:\n%s\nfirst replayed lines:\n%s",
			len(want), len(got), head(want, 5), head(got, 5))
	}
	if rm := c.Stats().Makespan; float64(res.Makespan) != float64(rm) {
		t.Fatalf("replay makespan %v != recorded %v", res.Makespan, rm)
	}
}

// TestWhatIfKnobChange replays under a different eviction policy and
// expects a decoded, self-consistent outcome (the X11 what-if leg
// checks directional consistency with X10 at scale).
func TestWhatIfKnobChange(t *testing.T) {
	opts := smallOpts()
	opts.EvictLazily = true
	opts.PrefetchDepth = 1
	_, c := runStencil(t, opts, true)
	w, err := trace.Reconstruct(c)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	knobs := w.Meta.Knobs
	knobs.EvictPolicy = core.Lookahead.Name()
	res, err := w.Replay(trace.ReplayConfig{Knobs: &knobs})
	if err != nil {
		t.Fatalf("Replay(lookahead): %v", err)
	}
	st := res.Capture.Stats()
	if st == nil {
		t.Fatalf("what-if replay produced no stats footer")
	}
	if st.Fetches == 0 {
		t.Fatalf("what-if replay did no fetching")
	}
	if got := res.Capture.Meta().Knobs.EvictPolicy; got != core.Lookahead.Name() {
		t.Fatalf("what-if capture records policy %q, want lookahead", got)
	}
}

func head(s string, n int) string {
	out := ""
	for i := 0; i < len(s) && n > 0; i++ {
		out += string(s[i])
		if s[i] == '\n' {
			n--
		}
	}
	return out
}

// runTieredShift captures the Small shift workload on a 3-tier chain.
func runTieredShift(t *testing.T) *trace.Capture {
	t.Helper()
	spec, err := exp.Small.TieredMachine(3)
	if err != nil {
		t.Fatal(err)
	}
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   spec,
		NumPEs: exp.Small.NumPEs(),
		Opts:   smallOpts(),
		Params: charm.DefaultParams(),
	})
	defer env.Close()
	rec := trace.NewRecorder(env.MG)
	rec.Attach()
	app, err := kernels.NewShift(env.MG, exp.Small.ShiftConfig())
	if err != nil {
		t.Fatalf("NewShift: %v", err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatalf("shift run: %v", err)
	}
	rec.Finish()
	return rec.Capture()
}

// TestReplayTierMismatch: a capture whose recorded tier chain does not
// match the machine its spec rebuilds is refused with ErrTierMismatch —
// a fetch recorded from NVM has no meaning on a machine without that
// tier. Clearing the recorded chain (what a pre-tier capture looks
// like) skips the check for backward compatibility.
func TestReplayTierMismatch(t *testing.T) {
	c := runTieredShift(t)
	if got := len(c.Meta().Tiers); got != 3 {
		t.Fatalf("3-tier capture records %d tier names, want 3", got)
	}

	// Intact capture replays byte-identically on its own chain.
	w, err := trace.Reconstruct(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Replay(trace.ReplayConfig{})
	if err != nil {
		t.Fatalf("Replay on matching 3-tier machine: %v", err)
	}
	if got, want := res.Capture.ScheduleString(), c.ScheduleString(); got != want {
		t.Fatal("3-tier replay schedule differs from recorded schedule")
	}

	// The workloads below share the capture's single Meta event, so each
	// tamper is restored before the next case.
	tiers, extra := w.Meta.Tiers, w.Meta.Spec.ExtraTiers

	// Tampered chain names on an otherwise intact spec: refused.
	w.Meta.Tiers = []string{"MCDRAM", "DDR4"}
	if _, err := w.Replay(trace.ReplayConfig{}); !errors.Is(err, trace.ErrTierMismatch) {
		t.Fatalf("Replay with tampered tier names = %v, want ErrTierMismatch", err)
	}
	w.Meta.Tiers = tiers

	// Spec stripped back to the default two-tier machine: refused.
	w.Meta.Spec.ExtraTiers = nil
	if _, err := w.Replay(trace.ReplayConfig{}); !errors.Is(err, trace.ErrTierMismatch) {
		t.Fatalf("Replay with stripped spec = %v, want ErrTierMismatch", err)
	}

	// Pre-tier captures carry no chain; the check is skipped and the
	// stripped spec replays on whatever machine it describes.
	w.Meta.Tiers = nil
	if _, err := w.Replay(trace.ReplayConfig{}); err != nil {
		t.Fatalf("Replay of tier-less capture: %v", err)
	}
	w.Meta.Tiers, w.Meta.Spec.ExtraTiers = tiers, extra
}
