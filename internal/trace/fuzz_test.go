package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// The fuzz corpus is seeded from a committed X11 capture (the fig8
// overflow run at -scale small, regenerate with
// `go run ./cmd/hmrepro -scale small -replay -trace
// internal/trace/testdata/x11-small.jsonl`), one seed per event kind
// so every decode path and every fast-encoder case starts covered.

// seedEventLines returns the first capture line of each event kind.
func seedEventLines(t testing.TB) [][]byte {
	data, err := os.ReadFile("testdata/x11-small.jsonl")
	if err != nil {
		t.Fatalf("reading seed capture: %v", err)
	}
	seen := map[string]bool{}
	var lines [][]byte
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var probe struct {
			K string `json:"k"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("seed capture has an unparseable line: %v\n%s", err, line)
		}
		if !seen[probe.K] {
			seen[probe.K] = true
			lines = append(lines, line)
		}
	}
	if len(lines) == 0 {
		t.Fatal("seed capture is empty")
	}
	return lines
}

// FuzzDecodeEvent feeds arbitrary JSONL to the capture decoder. The
// invariants: Decode never panics, anything it accepts re-encodes and
// re-decodes to the same event sequence, and the encoding is a fixed
// point (encode(decode(encode(c))) == encode(c)).
func FuzzDecodeEvent(f *testing.F) {
	for _, line := range seedEventLines(f) {
		f.Add(line)
	}
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"k":"nope"}`))
	f.Add([]byte("{\"k\":\"send\",\"seq\":1,\"t\":0.5}\n{\"k\":\"done\",\"seq\":2,\"t\":1}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(bytes.NewReader(data))
		if err != nil {
			// Malformed input: the readable prefix (if any) must still
			// round-trip below on its own; skip here.
			return
		}
		enc := c.Bytes()
		c2, err := Decode(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v\nencoded:\n%s", err, enc)
		}
		if len(c2.Events) != len(c.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(c.Events), len(c2.Events))
		}
		for i := range c.Events {
			if c.Events[i].Kind() != c2.Events[i].Kind() {
				t.Fatalf("round trip changed event %d kind: %s -> %s",
					i, c.Events[i].Kind(), c2.Events[i].Kind())
			}
		}
		if enc2 := c2.Bytes(); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\nfirst:  %s\nsecond: %s", enc, enc2)
		}
	})
}

// FuzzEncodeParity holds the fast encoder to its contract: for every
// event the appendEvent type switch claims, its bytes are identical to
// encoding/json's. Fuzzed field values (negative sizes, huge floats,
// odd strings) must either match byte-for-byte or make the fast path
// decline (ok=false) and defer to the reflective encoder.
func FuzzEncodeParity(f *testing.F) {
	for _, line := range seedEventLines(f) {
		f.Add(line)
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			return
		}
		var probe struct {
			K string `json:"k"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return
		}
		e, err := newEvent(probe.K)
		if err != nil {
			return
		}
		if err := json.Unmarshal(line, e); err != nil {
			return
		}
		fast, ok := appendEvent(nil, e)
		if !ok {
			// Slow-path kind or escape-needing string: reflective
			// encoder takes over, nothing to compare.
			return
		}
		ref, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json.Marshal of decoded %s event failed: %v", e.Kind(), err)
		}
		if !bytes.Equal(fast, ref) {
			t.Fatalf("fast encoding diverges from encoding/json for %s:\nfast: %s\njson: %s",
				e.Kind(), fast, ref)
		}
	})
}
