package trace

import (
	"errors"
	"fmt"
	"strings"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/sim"
)

// ErrTierMismatch marks a replay refused because the capture's
// recorded memory chain does not match the machine its spec rebuilds —
// e.g. a 3-tier capture whose spec was stripped back to the default
// two-tier machine. Callers (hmtrace) treat it like a damaged capture.
var ErrTierMismatch = errors.New("trace: capture tier chain does not match replay machine")

// RKernel is one recorded RunKernel call inside a task: Gap is the
// virtual time the task spent before this kernel (since run start or
// the previous kernel), replayed as a fixed cost; the kernel itself is
// re-executed through the real cost model so its duration responds to
// placement and contention under the replay's knobs.
type RKernel struct {
	Gap   sim.Time
	Flops float64
	Scale float64
}

// RTask is one task reconstructed from a capture: its send-time
// identity plus the recorded compute profile.
type RTask struct {
	*Send
	SentAt  sim.Time
	HasRun  bool
	Kernels []RKernel
	// TailGap is the non-kernel virtual time after the last kernel
	// (for kernel-free tasks, the whole recorded run duration).
	TailGap sim.Time
}

// Workload is a capture reduced to what the scheduler consumed: the
// machine/runtime description, the declared handles in declaration
// order, and the tasks in send (ID) order with their declared deps,
// arrival times and compute costs.
type Workload struct {
	Meta    *Meta
	Handles []*HandleDecl
	Tasks   []*RTask
}

// Reconstruct extracts the replayable workload from a capture. It
// works on truncated captures as long as the meta event survived;
// tasks whose run events were lost replay as zero-cost sends.
func Reconstruct(c *Capture) (*Workload, error) {
	m := c.Meta()
	if m == nil {
		return nil, fmt.Errorf("trace: capture has no meta event; cannot replay")
	}
	w := &Workload{Meta: m}
	byID := make(map[int64]*RTask)
	cursor := make(map[int64]sim.Time)
	for _, e := range c.Events {
		t := e.header().T
		switch ev := e.(type) {
		case *HandleDecl:
			w.Handles = append(w.Handles, ev)
		case *Send:
			rt := &RTask{Send: ev, SentAt: t}
			byID[ev.ID] = rt
			w.Tasks = append(w.Tasks, rt)
		case *RunStart:
			if rt, ok := byID[ev.ID]; ok {
				rt.HasRun = true
				cursor[ev.ID] = t
			}
		case *Kernel:
			if rt, ok := byID[ev.ID]; ok && rt.HasRun {
				gap := ev.Start - cursor[ev.ID]
				if gap < 0 {
					gap = 0
				}
				rt.Kernels = append(rt.Kernels, RKernel{Gap: gap, Flops: ev.Flops, Scale: ev.Scale})
				cursor[ev.ID] = t
			}
		case *RunEnd:
			if rt, ok := byID[ev.ID]; ok && rt.HasRun {
				if tail := t - cursor[ev.ID]; tail > 0 {
					rt.TailGap = tail
				}
			}
		}
	}
	return w, nil
}

// parseAccessMode inverts charm.AccessMode.String.
func parseAccessMode(s string) (charm.AccessMode, error) {
	for _, m := range []charm.AccessMode{charm.ReadOnly, charm.ReadWrite, charm.WriteOnly} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown access mode %q", s)
}

// ReplayConfig parameterises a replay run.
type ReplayConfig struct {
	// Knobs overrides the recorded knob set (what-if mode); nil replays
	// under the recorded configuration.
	Knobs *Knobs
	// AbandonAbove, when positive, stops the replay as soon as it is
	// provable that the makespan cannot beat the bound: only events
	// strictly earlier than the bound are executed, and if work is still
	// pending afterwards the true makespan is >= AbandonAbove. Virtual
	// time only moves forward, so the proof is exact — a search can
	// discard the candidate without paying for the rest of the replay,
	// and a candidate strictly faster than the bound always completes.
	// Zero replays to completion.
	AbandonAbove sim.Time
}

// ReplayResult is a finished replay: its own capture (always recorded,
// so recorded and replayed runs compare symmetrically) and the virtual
// makespan. An abandoned partial replay sets Abandoned; its Makespan is
// then the abandon bound (a proven lower bound on the true makespan,
// not the makespan itself) and its Capture is the truncated prefix.
type ReplayResult struct {
	Capture   *Capture
	Makespan  sim.Time
	Abandoned bool
}

// Replay re-drives the workload through the real scheduler: a fresh
// engine/machine/runtime/manager is built from the capture's meta
// event, handles are declared in recorded order, and a driver process
// re-issues every task at its recorded send time. Entry-method bodies
// re-execute their recorded kernels through the live cost model (so
// bandwidth contention and placement effects respond to the replay's
// knobs) with the recorded non-kernel time slept as fixed gaps.
//
// Under the recorded knobs, the replay reproduces the recorded
// schedule byte-identically (ScheduleString equality — experiment X11
// verifies this at full scale): task IDs are reassigned in the same
// order, same-instant sends are re-issued in their original relative
// order, and message latency is re-applied by the real Send path.
func (w *Workload) Replay(cfg ReplayConfig) (*ReplayResult, error) {
	knobs := w.Meta.Knobs
	if cfg.Knobs != nil {
		knobs = *cfg.Knobs
	}
	opts, err := knobs.Options()
	if err != nil {
		return nil, err
	}
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   w.Meta.Spec,
		NumPEs: w.Meta.NumPEs,
		Opts:   opts,
		Params: w.Meta.Params,
		Seed:   w.Meta.Seed,
	})
	defer env.Close()
	// Tier-aware captures name their chain in the meta header; refuse
	// to replay against a machine with a different one. A fetch
	// recorded from NVM has no meaning on a machine without that tier,
	// and the what-if comparison would silently mix miss costs.
	// Captures from before tier chains (no Tiers field) skip the check.
	if len(w.Meta.Tiers) > 0 {
		var chain []string
		for _, n := range env.Mach.Chain() {
			chain = append(chain, n.Name)
		}
		if strings.Join(chain, ",") != strings.Join(w.Meta.Tiers, ",") {
			return nil, fmt.Errorf("%w: capture recorded [%s], machine has [%s]",
				ErrTierMismatch, strings.Join(w.Meta.Tiers, " -> "), strings.Join(chain, " -> "))
		}
	}
	rec := NewRecorder(env.MG)
	rec.Attach()

	handles := make(map[string]*core.Handle, len(w.Handles))
	for _, hd := range w.Handles {
		handles[hd.Block] = env.MG.NewHandle(hd.Block, hd.Bytes)
	}

	deps := make([][]charm.DataDep, len(w.Tasks))
	for i, rt := range w.Tasks {
		for _, d := range rt.Deps {
			h, ok := handles[d.Block]
			if !ok {
				return nil, fmt.Errorf("trace: task %d depends on undeclared block %q", rt.ID, d.Block)
			}
			mode, err := parseAccessMode(d.Mode)
			if err != nil {
				return nil, err
			}
			deps[i] = append(deps[i], charm.DataDep{Handle: h, Mode: mode})
		}
	}

	// Array shapes, element placement and entry registrations, in first
	// appearance (send) order so construction is deterministic.
	type entryKey struct{ arr, entry string }
	var arrOrder []string
	arrLen := make(map[string]int)
	arrPE := make(map[string]map[int]int)
	var entryOrder []entryKey
	entryPrefetch := make(map[entryKey]*bool)
	for _, rt := range w.Tasks {
		if _, ok := arrLen[rt.Arr]; !ok {
			arrOrder = append(arrOrder, rt.Arr)
			arrPE[rt.Arr] = make(map[int]int)
		}
		if rt.Idx+1 > arrLen[rt.Arr] {
			arrLen[rt.Arr] = rt.Idx + 1
		}
		arrPE[rt.Arr][rt.Idx] = rt.PE
		k := entryKey{rt.Arr, rt.Entry}
		if entryPrefetch[k] == nil {
			entryOrder = append(entryOrder, k)
			pf := rt.Prefetch
			entryPrefetch[k] = &pf
		}
	}

	tasks := w.Tasks
	mg := env.MG
	fn := func(p *sim.Proc, pe *charm.PE, el *charm.Element, msg *charm.Message) {
		i := msg.Data.(int)
		rt := tasks[i]
		for _, k := range rt.Kernels {
			if k.Gap > 0 {
				p.Sleep(k.Gap)
			}
			mg.RunKernel(p, deps[i], core.KernelSpec{Flops: k.Flops, TrafficScale: k.Scale})
		}
		if rt.TailGap > 0 {
			p.Sleep(rt.TailGap)
		}
	}
	depsFn := func(el *charm.Element, msg *charm.Message) []charm.DataDep {
		return deps[msg.Data.(int)]
	}

	arrays := make(map[string]*charm.Array, len(arrOrder))
	for _, name := range arrOrder {
		peOf := arrPE[name]
		numPEs := w.Meta.NumPEs
		arrays[name] = env.RT.NewArray(name, arrLen[name],
			func(i int) charm.Chare { return struct{}{} },
			func(i int) int {
				if pe, ok := peOf[i]; ok {
					return pe
				}
				return i % numPEs
			})
	}
	entries := make(map[entryKey]*charm.Entry, len(entryOrder))
	for _, k := range entryOrder {
		entries[k] = arrays[k.arr].Register(charm.Entry{
			Name:     k.entry,
			Fn:       fn,
			Prefetch: *entryPrefetch[k],
			Deps:     depsFn,
		})
	}

	env.RT.Main(func(p *sim.Proc) {
		for i, rt := range tasks {
			p.SleepUntil(rt.SentAt)
			arrays[rt.Arr].Send(rt.From, rt.Idx, entries[entryKey{rt.Arr, rt.Entry}], i)
		}
	})
	if cfg.AbandonAbove > 0 {
		// RunBefore (not Run) so the clock is never clamped up to the
		// bound on a run that finishes under it: the completed path must
		// report its true makespan.
		env.Eng.RunBefore(cfg.AbandonAbove)
		if !env.Eng.Idle() {
			// Every pending event sits at or beyond the bound, so the
			// candidate's true makespan is >= AbandonAbove; stop here and
			// let env.Close (deferred) kill the blocked processes.
			rec.Finish()
			return &ReplayResult{Capture: rec.Capture(), Makespan: cfg.AbandonAbove, Abandoned: true}, nil
		}
	} else {
		env.Eng.RunAll()
	}
	rec.Finish()
	return &ReplayResult{Capture: rec.Capture(), Makespan: env.Eng.Now()}, nil
}
