package trace

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// Fast JSONL encoding for the hot event kinds. json.Marshal walks the
// struct reflectively on every event, which dominates encode time at
// 100k+ events; these appenders emit the same bytes with plain code.
//
// Byte-identity with encoding/json is a hard requirement — replay
// fidelity and hmtrace diff both compare encoded captures — so the
// helpers replicate its exact float format ('f' for 1e-6 <= |x| < 1e21,
// else 'e' with the "e-0X" exponent trimmed) and bail out to the
// reflective encoder for any string that would need escaping
// (encoding/json escapes <, >, & and control characters).
// encode_fast_test.go pins the equivalence per kind and per float
// regime.

// appendSafeString appends s as a JSON string if no byte needs
// escaping; ok=false tells the caller to fall back to json.Marshal.
func appendSafeString(b []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= utf8.RuneSelf || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return b, false
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"'), true
}

// appendJSONFloat appends f exactly as encoding/json renders a float64.
// ok=false for NaN/Inf (json.Marshal errors on those; let it).
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json cleans up e-09 to e-9.
		n := len(b)
		if n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// appendHeader emits `{"k":<kind>,"seq":N,"t":T` (no trailing comma).
func appendHeader(b []byte, h *Ev) ([]byte, bool) {
	ok := true
	b = append(b, `{"k":`...)
	if b, ok = appendSafeString(b, h.K); !ok {
		return b, false
	}
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, h.Seq, 10)
	b = append(b, `,"t":`...)
	return appendJSONFloat(b, h.T)
}

// appendEvent appends the JSON encoding of e, byte-identical to
// json.Marshal(e). ok=false means this kind (or one of its string
// fields) needs the reflective encoder — Meta, Retune and Stats carry
// nested structs and occur a constant number of times per capture, so
// they always take the slow path.
func appendEvent(b []byte, e Event) ([]byte, bool) {
	var ok bool
	switch ev := e.(type) {
	case *HandleDecl:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"block":`...)
		if b, ok = appendSafeString(b, ev.Block); !ok {
			return b, false
		}
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
		b = append(b, `,"node":`...)
		if b, ok = appendSafeString(b, ev.Node); !ok {
			return b, false
		}
		return append(b, '}'), true

	case *Send:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, ev.ID, 10)
		b = append(b, `,"arr":`...)
		if b, ok = appendSafeString(b, ev.Arr); !ok {
			return b, false
		}
		b = append(b, `,"idx":`...)
		b = strconv.AppendInt(b, int64(ev.Idx), 10)
		b = append(b, `,"entry":`...)
		if b, ok = appendSafeString(b, ev.Entry); !ok {
			return b, false
		}
		b = append(b, `,"pe":`...)
		b = strconv.AppendInt(b, int64(ev.PE), 10)
		b = append(b, `,"from":`...)
		b = strconv.AppendInt(b, int64(ev.From), 10)
		b = append(b, `,"prefetch":`...)
		b = appendBool(b, ev.Prefetch)
		if len(ev.Deps) > 0 {
			b = append(b, `,"deps":[`...)
			for i, d := range ev.Deps {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, `{"block":`...)
				if b, ok = appendSafeString(b, d.Block); !ok {
					return b, false
				}
				b = append(b, `,"bytes":`...)
				b = strconv.AppendInt(b, d.Bytes, 10)
				b = append(b, `,"mode":`...)
				if b, ok = appendSafeString(b, d.Mode); !ok {
					return b, false
				}
				b = append(b, '}')
			}
			b = append(b, ']')
		}
		return append(b, '}'), true

	case *Admit:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, ev.ID, 10)
		b = append(b, `,"pe":`...)
		b = strconv.AppendInt(b, int64(ev.PE), 10)
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
		b = append(b, `,"staged":`...)
		b = appendBool(b, ev.Staged)
		return append(b, '}'), true

	case *RunStart:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, ev.ID, 10)
		b = append(b, `,"pe":`...)
		b = strconv.AppendInt(b, int64(ev.PE), 10)
		return append(b, '}'), true

	case *RunEnd:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, ev.ID, 10)
		b = append(b, `,"pe":`...)
		b = strconv.AppendInt(b, int64(ev.PE), 10)
		return append(b, '}'), true

	case *Kernel:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, ev.ID, 10)
		b = append(b, `,"pe":`...)
		b = strconv.AppendInt(b, int64(ev.PE), 10)
		b = append(b, `,"flops":`...)
		if b, ok = appendJSONFloat(b, ev.Flops); !ok {
			return b, false
		}
		b = append(b, `,"scale":`...)
		if b, ok = appendJSONFloat(b, ev.Scale); !ok {
			return b, false
		}
		b = append(b, `,"start":`...)
		if b, ok = appendJSONFloat(b, ev.Start); !ok {
			return b, false
		}
		b = append(b, `,"dur":`...)
		if b, ok = appendJSONFloat(b, ev.Dur); !ok {
			return b, false
		}
		return append(b, '}'), true

	case *FetchStart:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"lane":`...)
		b = strconv.AppendInt(b, int64(ev.Lane), 10)
		b = append(b, `,"block":`...)
		if b, ok = appendSafeString(b, ev.Block); !ok {
			return b, false
		}
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
		return append(b, '}'), true

	case *FetchEnd:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"lane":`...)
		b = strconv.AppendInt(b, int64(ev.Lane), 10)
		b = append(b, `,"block":`...)
		if b, ok = appendSafeString(b, ev.Block); !ok {
			return b, false
		}
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
		b = append(b, `,"dur":`...)
		if b, ok = appendJSONFloat(b, ev.Dur); !ok {
			return b, false
		}
		b = append(b, `,"src":`...)
		if b, ok = appendSafeString(b, ev.Src); !ok {
			return b, false
		}
		b = append(b, `,"refetch":`...)
		b = appendBool(b, ev.Refetch)
		return append(b, '}'), true

	case *Evict:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"lane":`...)
		b = strconv.AppendInt(b, int64(ev.Lane), 10)
		b = append(b, `,"block":`...)
		if b, ok = appendSafeString(b, ev.Block); !ok {
			return b, false
		}
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, ev.Bytes, 10)
		b = append(b, `,"dur":`...)
		if b, ok = appendJSONFloat(b, ev.Dur); !ok {
			return b, false
		}
		b = append(b, `,"forced":`...)
		b = appendBool(b, ev.Forced)
		b = append(b, `,"policy":`...)
		if b, ok = appendSafeString(b, ev.Policy); !ok {
			return b, false
		}
		// dst carries omitempty: skipped exactly when json.Marshal
		// would skip it (two-tier captures leave it empty).
		if ev.Dst != "" {
			b = append(b, `,"dst":`...)
			if b, ok = appendSafeString(b, ev.Dst); !ok {
				return b, false
			}
		}
		return append(b, '}'), true

	case *Pressure:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"pe":`...)
		b = strconv.AppendInt(b, int64(ev.PE), 10)
		b = append(b, `,"task":`...)
		if b, ok = appendSafeString(b, ev.Task); !ok {
			return b, false
		}
		b = append(b, `,"need":`...)
		b = strconv.AppendInt(b, ev.Need, 10)
		b = append(b, `,"used":`...)
		b = strconv.AppendInt(b, ev.Used, 10)
		b = append(b, `,"reserved":`...)
		b = strconv.AppendInt(b, ev.Reserved, 10)
		b = append(b, `,"budget":`...)
		b = strconv.AppendInt(b, ev.Budget, 10)
		return append(b, '}'), true

	case *LaneAssign:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"window":`...)
		b = strconv.AppendInt(b, int64(ev.Window), 10)
		b = append(b, `,"lanes":`...)
		b = strconv.AppendInt(b, int64(ev.Lanes), 10)
		b = append(b, `,"total":`...)
		b = strconv.AppendInt(b, int64(ev.Total), 10)
		b = append(b, `,"active":`...)
		b = strconv.AppendInt(b, int64(ev.Active), 10)
		return append(b, '}'), true

	case *Adapt:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"window":`...)
		b = strconv.AppendInt(b, int64(ev.Window), 10)
		b = append(b, `,"action":`...)
		if b, ok = appendSafeString(b, ev.Action); !ok {
			return b, false
		}
		return append(b, '}'), true

	case *TaskDone:
		if b, ok = appendHeader(b, &ev.Ev); !ok {
			return b, false
		}
		b = append(b, `,"id":`...)
		b = strconv.AppendInt(b, ev.ID, 10)
		return append(b, '}'), true
	}
	return b, false
}
