package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/charm"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/trace"
)

// allKinds builds a capture containing one of every event kind, with
// every field set to a non-zero, round-trip-hostile value (fractional
// floats, negative IDs, flags on).
func allKinds() *trace.Capture {
	knobs := trace.Knobs{
		Mode:            "Multiple IO threads",
		HBMReserve:      1 << 30,
		EvictLazily:     true,
		IOThreads:       3,
		SharedWaitQueue: true,
		EvictPolicy:     "lookahead",
		PrefetchDepth:   2,
		Metrics:         true,
	}
	events := []trace.Event{
		&trace.Meta{Version: trace.Version, NumPEs: 8, Seed: 42, Knobs: knobs,
			Params: charm.DefaultParams(), Spec: exp.Small.Machine(),
			Session: "sess-0042", Tenant: "acme"},
		&trace.HandleDecl{Block: "A0", Bytes: 1 << 28, Node: "INDDR"},
		&trace.Send{ID: 7, Arr: "stencil3d", Idx: 3, Entry: "compute_kernel",
			PE: 1, From: 0, Prefetch: true,
			Deps: []trace.Dep{{Block: "A0", Bytes: 1 << 28, Mode: "rw"}}},
		&trace.Admit{ID: 7, PE: 1, Bytes: 1 << 28, Staged: true},
		&trace.RunStart{ID: 7, PE: 1},
		&trace.Kernel{ID: 7, PE: 1, Flops: 1.5e9, Scale: 2.0,
			Start: 0.13704970000000002, Dur: 0.6096011349317466},
		&trace.RunEnd{ID: 7, PE: 1},
		&trace.FetchStart{Lane: 9, Block: "A0", Bytes: 1 << 28},
		&trace.FetchEnd{Lane: 9, Block: "A0", Bytes: 1 << 28,
			Dur: 0.030000000000000002, Src: "DDR4", Refetch: true},
		&trace.Evict{Lane: 9, Block: "A0", Bytes: 1 << 28,
			Dur: 1.0 / 3.0, Forced: true, Policy: "lookahead"},
		&trace.Pressure{PE: 2, Task: "stencil3d[3].compute_kernel",
			Need: 1 << 29, Used: 1 << 30, Reserved: 1 << 27, Budget: 1 << 30},
		&trace.Retune{Knobs: knobs},
		&trace.LaneAssign{Window: 11, Lanes: 3, Total: 8, Active: 2},
		&trace.Adapt{Window: 4, Action: "prefetch_depth 1 -> 2"},
		&trace.TaskDone{ID: 7},
		&trace.Stats{Makespan: 12.000000000000004, Tasks: 64, Fetches: 100,
			Refetches: 12, Evictions: 90, ForcedEvictions: 3, StageRetries: 5,
			BytesFetched: 1 << 38, BytesEvicted: 1 << 37, TasksStaged: 60, TasksInline: 4},
	}
	c := &trace.Capture{Events: events}
	for i, e := range events {
		// Stamp headers the way the recorder does.
		h := eventHeader(e)
		h.Seq = int64(i)
		h.T = 0.1 * float64(i) // deliberately inexact decimals
	}
	return c
}

// eventHeader reaches the embedded Ev via the exported fields — every
// concrete event embeds trace.Ev directly.
func eventHeader(e trace.Event) *trace.Ev {
	switch ev := e.(type) {
	case *trace.Meta:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.HandleDecl:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.Send:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.Admit:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.RunStart:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.RunEnd:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.Kernel:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.FetchStart:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.FetchEnd:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.Evict:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.Pressure:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.Retune:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.LaneAssign:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.Adapt:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.TaskDone:
		ev.K = ev.Kind()
		return &ev.Ev
	case *trace.Stats:
		ev.K = ev.Kind()
		return &ev.Ev
	}
	panic("unknown event type")
}

// TestRoundTripAllKinds is the encoding's core property: for every
// event kind, encode -> decode -> encode is byte-identical.
func TestRoundTripAllKinds(t *testing.T) {
	c := allKinds()
	first := c.Bytes()
	dec, err := trace.Decode(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec.Events) != len(c.Events) {
		t.Fatalf("decoded %d events, want %d", len(dec.Events), len(c.Events))
	}
	second := dec.Bytes()
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	// Every kind must actually appear, so a new event type cannot ship
	// without joining this property test.
	seen := map[string]bool{}
	for _, e := range dec.Events {
		seen[e.Kind()] = true
	}
	for _, k := range []string{"meta", "handle", "send", "admit", "run-start",
		"run-end", "kernel", "fetch-start", "fetch-end", "evict", "pressure",
		"retune", "lanes", "adapt", "done", "stats"} {
		if !seen[k] {
			t.Errorf("capture is missing event kind %q", k)
		}
	}
	// hetmemd's session identity survives the round trip.
	if m := dec.Meta(); m == nil || m.Session != "sess-0042" || m.Tenant != "acme" {
		t.Errorf("decoded meta lost session identity: %+v", dec.Meta())
	}
}

// TestRealCaptureRoundTrip round-trips a capture produced by an actual
// run, so recorder-populated fields get the same guarantee.
func TestRealCaptureRoundTrip(t *testing.T) {
	_, c := runStencil(t, smallOpts(), true)
	first := c.Bytes()
	dec, err := trace.Decode(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(first, dec.Bytes()) {
		t.Fatalf("real capture round trip not byte-identical")
	}
}

// TestDecodeTruncated verifies partial-read recovery: a capture cut
// mid-line decodes its intact prefix and reports an error.
func TestDecodeTruncated(t *testing.T) {
	full := allKinds().Bytes()
	lines := bytes.Split(bytes.TrimRight(full, "\n"), []byte("\n"))
	// Keep 5 whole lines plus half of the 6th.
	trunc := append(bytes.Join(lines[:5], []byte("\n")), '\n')
	trunc = append(trunc, lines[5][:len(lines[5])/2]...)
	c, err := trace.Decode(bytes.NewReader(trunc))
	if err == nil {
		t.Fatalf("Decode of truncated capture succeeded")
	}
	if len(c.Events) != 5 {
		t.Fatalf("recovered %d events from truncated capture, want 5", len(c.Events))
	}
}

// TestDecodeRejects covers the hard error paths: unknown kinds, version
// mismatches, and empty input.
func TestDecodeRejects(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantErr string
		wantEvents        int
	}{
		{"unknown kind", `{"k":"meta","version":1,"num_pes":1}` + "\n" + `{"k":"bogus"}` + "\n", "unknown event kind", 1},
		{"bad version", `{"k":"meta","version":99}` + "\n", "version 99", 0},
		{"empty", "", "empty capture", 0},
		{"blank lines only", "\n\n\n", "empty capture", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := trace.Decode(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
			if len(c.Events) != tc.wantEvents {
				t.Fatalf("recovered %d events, want %d", len(c.Events), tc.wantEvents)
			}
		})
	}
}
