package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format
// (catapult's "JSON Array Format"): complete spans (ph "X"), instants
// (ph "i") and thread-name metadata (ph "M"). Timestamps are
// microseconds of virtual time.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args interface{} `json:"args,omitempty"`
}

type chromeThreadName struct {
	Name string `json:"name"`
}

type chromeSpanArgs struct {
	ID      int64  `json:"id,omitempty"`
	Block   string `json:"block,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	Src     string `json:"src,omitempty"`
	Refetch bool   `json:"refetch,omitempty"`
	Forced  bool   `json:"forced,omitempty"`
	Policy  string `json:"policy,omitempty"`
	Task    string `json:"task,omitempty"`
	Action  string `json:"action,omitempty"`
}

// chromeLaneArgs renders a LaneAssign event as a stacked counter:
// lanes granted to this session vs the rest of the pool, so tenant
// contention reads directly off the counter track height split.
type chromeLaneArgs struct {
	Granted int `json:"granted"`
	Others  int `json:"others"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const usec = 1e6 // seconds -> trace_event microseconds

// ExportChrome converts a capture to Chrome trace_event JSON: one track
// (thread) per PE for entry-method execution, one per IO lane for
// fetch/evict spans, instants for pressure, retune and adapt decisions.
// Open the output in any trace viewer (chrome://tracing, Perfetto).
func ExportChrome(c *Capture, w io.Writer) error {
	numPEs := 0
	if m := c.Meta(); m != nil {
		numPEs = m.NumPEs
	}
	var evs []chromeEvent
	taskName := map[int64]string{}
	runOpen := map[int64]float64{}
	lanes := map[int]bool{}

	span := func(name string, ts, dur float64, tid int, args interface{}) {
		evs = append(evs, chromeEvent{Name: name, Ph: "X", Ts: ts, Dur: dur, TID: tid, Args: args})
	}
	for _, e := range c.Events {
		t := float64(e.header().T) * usec
		switch ev := e.(type) {
		case *Send:
			taskName[ev.ID] = fmt.Sprintf("%s[%d].%s", ev.Arr, ev.Idx, ev.Entry)
		case *RunStart:
			runOpen[ev.ID] = t
			lanes[ev.PE] = true
		case *RunEnd:
			if start, ok := runOpen[ev.ID]; ok {
				span(taskName[ev.ID], start, t-start, ev.PE, &chromeSpanArgs{ID: ev.ID})
				delete(runOpen, ev.ID)
			}
		case *FetchEnd:
			lanes[ev.Lane] = true
			span("fetch "+ev.Block, t-float64(ev.Dur)*usec, float64(ev.Dur)*usec, ev.Lane,
				&chromeSpanArgs{Block: ev.Block, Bytes: ev.Bytes, Src: ev.Src, Refetch: ev.Refetch})
		case *Evict:
			lanes[ev.Lane] = true
			span("evict "+ev.Block, t-float64(ev.Dur)*usec, float64(ev.Dur)*usec, ev.Lane,
				&chromeSpanArgs{Block: ev.Block, Bytes: ev.Bytes, Forced: ev.Forced, Policy: ev.Policy})
		case *Pressure:
			lanes[ev.PE] = true
			evs = append(evs, chromeEvent{Name: "pressure", Ph: "i", Ts: t, TID: ev.PE, S: "t",
				Args: &chromeSpanArgs{Task: ev.Task, Bytes: ev.Need}})
		case *LaneAssign:
			evs = append(evs, chromeEvent{Name: "io lanes", Ph: "C", Ts: t,
				Args: &chromeLaneArgs{Granted: ev.Lanes, Others: ev.Total - ev.Lanes}})
		case *Retune:
			evs = append(evs, chromeEvent{Name: "retune " + ev.Knobs.Mode, Ph: "i", Ts: t, S: "g"})
		case *Adapt:
			evs = append(evs, chromeEvent{Name: "adapt", Ph: "i", Ts: t, S: "g",
				Args: &chromeSpanArgs{Action: ev.Action}})
		}
	}

	laneIDs := make([]int, 0, len(lanes))
	for lane := range lanes {
		laneIDs = append(laneIDs, lane)
	}
	sort.Ints(laneIDs)
	meta := make([]chromeEvent, 0, len(laneIDs))
	for _, lane := range laneIDs {
		name := fmt.Sprintf("PE %d", lane)
		if numPEs > 0 && lane >= numPEs {
			name = fmt.Sprintf("IO %d", lane-numPEs)
		}
		meta = append(meta, chromeEvent{Name: "thread_name", Ph: "M", TID: lane,
			Args: &chromeThreadName{Name: name}})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: append(meta, evs...), DisplayTimeUnit: "ms"})
}
