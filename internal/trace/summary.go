package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hetmem/hetmem/internal/sim"
)

// interval is a half-open [Start, End) span of virtual time.
type interval struct {
	Start, End sim.Time
}

// mergeIntervals unions overlapping or touching intervals. The input is
// consumed (sorted in place).
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// measure sums the lengths of a merged interval set.
func measure(ivs []interval) sim.Time {
	var total sim.Time
	for _, iv := range ivs {
		total += iv.End - iv.Start
	}
	return total
}

// intersect measures the overlap between two merged interval sets.
func intersect(a, b []interval) sim.Time {
	var total sim.Time
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}

// LaneStat is per-lane occupancy: worker lanes (PEs) accumulate
// entry-method execution time, IO lanes accumulate fetch/evict time.
type LaneStat struct {
	Lane      int
	Kind      string // "worker" or "io"
	Busy      sim.Time
	Occupancy float64 // Busy / makespan
	Events    int
}

// Summary is the terminal digest of a capture: makespan, per-lane
// occupancy, compute/staging overlap and the exposed staging time.
type Summary struct {
	Makespan sim.Time
	NumPEs   int
	Tasks    int64
	Events   int
	Lanes    []LaneStat

	// ComputeBusy is total entry-method execution time across PEs;
	// StageBusy is total fetch+evict time across lanes.
	ComputeBusy sim.Time
	StageBusy   sim.Time

	// OverlapPct is the share of staged time (union over lanes) hidden
	// under compute (union over PEs). ExposedStage is the complement in
	// seconds: moments when data moved but no PE computed — the
	// fetch-critical-path the paper's overlap claim is about shrinking.
	OverlapPct   float64
	ExposedStage sim.Time

	Fetches, Refetches, Evictions, ForcedEvictions, StageRetries int64
}

// Summarize digests a capture. Works on truncated captures (missing
// footer): counters then come from counting events.
func Summarize(c *Capture) *Summary {
	s := &Summary{Events: len(c.Events)}
	if m := c.Meta(); m != nil {
		s.NumPEs = m.NumPEs
	}
	runOpen := map[int64]sim.Time{} // task id -> run start
	laneBusy := map[int]sim.Time{}
	laneEvents := map[int]int{}
	laneIsIO := map[int]bool{}
	var compute, stage []interval

	note := func(lane int, io bool, start, end sim.Time) {
		laneBusy[lane] += end - start
		laneEvents[lane]++
		if io {
			laneIsIO[lane] = true
			stage = append(stage, interval{start, end})
		} else {
			compute = append(compute, interval{start, end})
		}
	}
	for _, e := range c.Events {
		t := e.header().T
		if t > s.Makespan {
			s.Makespan = t
		}
		switch ev := e.(type) {
		case *Send:
			s.Tasks++
		case *RunStart:
			runOpen[ev.ID] = t
		case *RunEnd:
			if start, ok := runOpen[ev.ID]; ok {
				note(ev.PE, false, start, t)
				delete(runOpen, ev.ID)
			}
		case *FetchEnd:
			s.Fetches++
			if ev.Refetch {
				s.Refetches++
			}
			note(ev.Lane, true, t-ev.Dur, t)
		case *Evict:
			s.Evictions++
			if ev.Forced {
				s.ForcedEvictions++
			}
			note(ev.Lane, true, t-ev.Dur, t)
		case *Pressure:
			s.StageRetries++
		}
	}
	if st := c.Stats(); st != nil {
		// The footer is authoritative where present: it includes
		// movement the event stream may not attribute (counters agree
		// on complete captures).
		s.Fetches, s.Refetches = st.Fetches, st.Refetches
		s.Evictions, s.ForcedEvictions = st.Evictions, st.ForcedEvictions
		s.StageRetries = st.StageRetries
		s.Makespan = st.Makespan
	}

	lanes := make([]int, 0, len(laneBusy))
	for lane := range laneBusy {
		lanes = append(lanes, lane)
	}
	sort.Ints(lanes)
	for _, lane := range lanes {
		kind := "worker"
		if laneIsIO[lane] && (s.NumPEs == 0 || lane >= s.NumPEs) {
			kind = "io"
		}
		ls := LaneStat{Lane: lane, Kind: kind, Busy: laneBusy[lane], Events: laneEvents[lane]}
		if s.Makespan > 0 {
			ls.Occupancy = float64(ls.Busy / s.Makespan)
		}
		s.Lanes = append(s.Lanes, ls)
	}

	cu := mergeIntervals(compute)
	su := mergeIntervals(stage)
	for _, ls := range s.Lanes {
		if ls.Kind == "worker" {
			s.ComputeBusy += ls.Busy
		} else {
			s.StageBusy += ls.Busy
		}
	}
	stagedUnion := measure(su)
	overlapped := intersect(su, cu)
	if stagedUnion > 0 {
		s.OverlapPct = float64(overlapped/stagedUnion) * 100
	}
	s.ExposedStage = stagedUnion - overlapped
	return s
}

// String renders the summary for the terminal.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capture: %d events, %d tasks, makespan %.6f s\n", s.Events, s.Tasks, s.Makespan)
	fmt.Fprintf(&b, "movement: %d fetches (%d refetches), %d evictions (%d forced), %d stage retries\n",
		s.Fetches, s.Refetches, s.Evictions, s.ForcedEvictions, s.StageRetries)
	fmt.Fprintf(&b, "overlap: %.1f%% of staged time hidden under compute; exposed staging %.6f s\n",
		s.OverlapPct, s.ExposedStage)
	fmt.Fprintf(&b, "%-8s %-6s %12s %10s %8s\n", "lane", "kind", "busy (s)", "occupancy", "events")
	for _, ls := range s.Lanes {
		fmt.Fprintf(&b, "%-8d %-6s %12.6f %9.1f%% %8d\n", ls.Lane, ls.Kind, ls.Busy, ls.Occupancy*100, ls.Events)
	}
	return b.String()
}

// fnum renders a float with the shortest exact representation, so
// schedule strings compare byte-for-byte.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ScheduleString extracts the canonical per-task schedule of a capture:
// one line per task in ID order with its send, run-start and run-end
// times and executing PE, floats rendered exactly. Two runs produced
// the same schedule if and only if their ScheduleStrings are equal —
// the replay-fidelity invariant of DESIGN.md section 11.
func (c *Capture) ScheduleString() string {
	type sched struct {
		name       string
		pe         int
		sent       sim.Time
		start, end sim.Time
		ran        bool
	}
	byID := map[int64]*sched{}
	order := []int64{}
	for _, e := range c.Events {
		t := e.header().T
		switch ev := e.(type) {
		case *Send:
			byID[ev.ID] = &sched{
				name: fmt.Sprintf("%s[%d].%s", ev.Arr, ev.Idx, ev.Entry),
				pe:   ev.PE,
				sent: t,
			}
			order = append(order, ev.ID)
		case *RunStart:
			if sc, ok := byID[ev.ID]; ok {
				sc.start, sc.pe, sc.ran = t, ev.PE, true
			}
		case *RunEnd:
			if sc, ok := byID[ev.ID]; ok {
				sc.end = t
			}
		}
	}
	var b strings.Builder
	for _, id := range order {
		sc := byID[id]
		if sc.ran {
			fmt.Fprintf(&b, "%d %s pe=%d sent=%s run=%s..%s\n",
				id, sc.name, sc.pe, fnum(sc.sent), fnum(sc.start), fnum(sc.end))
		} else {
			fmt.Fprintf(&b, "%d %s pe=%d sent=%s run=-\n", id, sc.name, sc.pe, fnum(sc.sent))
		}
	}
	return b.String()
}

// Outcome condenses a capture for recorded-vs-replayed comparison.
type Outcome struct {
	Label           string  `json:"label"`
	Makespan        float64 `json:"makespan_s"`
	Fetches         int64   `json:"fetches"`
	Refetches       int64   `json:"refetches"`
	Evictions       int64   `json:"evictions"`
	ForcedEvictions int64   `json:"forced_evictions"`
	StageRetries    int64   `json:"stage_retries"`
	Knobs           Knobs   `json:"knobs"`
}

// OutcomeOf digests a capture's footer (or, for truncated captures, its
// event stream) into an Outcome.
func OutcomeOf(label string, c *Capture) Outcome {
	s := Summarize(c)
	o := Outcome{
		Label:           label,
		Makespan:        float64(s.Makespan),
		Fetches:         s.Fetches,
		Refetches:       s.Refetches,
		Evictions:       s.Evictions,
		ForcedEvictions: s.ForcedEvictions,
		StageRetries:    s.StageRetries,
	}
	if m := c.Meta(); m != nil {
		o.Knobs = m.Knobs
	}
	return o
}
