package trace_test

import (
	"strings"
	"testing"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
)

// runAdaptiveStencil runs the Small overflow-point stencil with an
// adaptive controller attached, optionally also recording, and returns
// the makespan, the controller's decision trace and the capture.
func runAdaptiveStencil(t *testing.T, record bool) (float64, []adapt.Decision, *trace.Capture) {
	t.Helper()
	opts := smallOpts()
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   exp.Small.Machine(),
		NumPEs: exp.Small.NumPEs(),
		Opts:   opts,
		Trace:  true, // projections tracer: the controller's feedback source
	})
	defer env.Close()

	var rec *trace.Recorder
	if record {
		rec = trace.NewRecorder(env.MG)
		rec.Attach()
	}

	sizes := exp.Small.StencilReducedSizes()
	app, err := kernels.NewStencil(env.MG, exp.Small.StencilConfig(sizes[len(sizes)-1]))
	if err != nil {
		t.Fatalf("NewStencil: %v", err)
	}
	ctl, err := adapt.New(env.MG, adapt.Config{})
	if err != nil {
		t.Fatalf("adapt.New: %v", err)
	}
	ctl.Attach()
	if rec != nil {
		rec.AttachController(ctl)
	}
	app.OnIteration = func(_ int, resume func()) {
		ctl.Barrier()
		resume()
	}
	mk, err := app.Run()
	if err != nil {
		t.Fatalf("adaptive stencil run: %v", err)
	}
	var c *trace.Capture
	if rec != nil {
		c = rec.Capture()
	}
	return float64(mk), ctl.Trace(), c
}

// TestObserverFanOut is the regression test for observer dispatch: with
// both the adaptive controller and a trace recorder attached, the
// controller must keep receiving TaskDone (its decisions still fire)
// and the run must be unperturbed — the manager fans observers out
// instead of keeping only the last one registered.
func TestObserverFanOut(t *testing.T) {
	plainMk, plainDec, _ := runAdaptiveStencil(t, false)
	tracedMk, tracedDec, c := runAdaptiveStencil(t, true)

	if len(tracedDec) == 0 {
		t.Fatalf("controller took no decisions while a recorder was attached")
	}
	if len(tracedDec) != len(plainDec) {
		t.Fatalf("tracing changed the decision count: %d with recorder, %d without",
			len(tracedDec), len(plainDec))
	}
	for i := range plainDec {
		if tracedDec[i].Action != plainDec[i].Action || tracedDec[i].Window != plainDec[i].Window {
			t.Fatalf("decision %d diverged under tracing:\nwith recorder: %v\nwithout:      %v",
				i, tracedDec[i], plainDec[i])
		}
	}
	if tracedMk != plainMk {
		t.Fatalf("tracing perturbed the adaptive run: %v with recorder, %v without", tracedMk, plainMk)
	}

	// The capture must interleave the controller's decisions (via the
	// decision sink) and any retunes they caused.
	var adapts, retunes, dones int
	for _, e := range c.Events {
		switch e.(type) {
		case *trace.Adapt:
			adapts++
		case *trace.Retune:
			retunes++
		case *trace.TaskDone:
			dones++
		}
	}
	if adapts != len(tracedDec) {
		t.Fatalf("capture has %d adapt events, controller took %d decisions", adapts, len(tracedDec))
	}
	if dones == 0 {
		t.Fatalf("capture has no task-done events: recorder's TaskDone hook never fired")
	}
	retuned := 0
	for _, d := range tracedDec {
		for _, prefix := range []string{"adopt", "accept", "probe", "switch",
			"revert", "victim-upgrade", "pressure-revert"} {
			if strings.HasPrefix(d.Action, prefix) && !strings.Contains(d.Action, "refused") {
				retuned++
				break
			}
		}
	}
	if retuned > 0 && retunes == 0 {
		t.Fatalf("controller retuned %d times but the capture has no retune events", retuned)
	}
}
