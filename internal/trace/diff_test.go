package trace

import (
	"strings"
	"testing"
)

// diffFixture builds a small capture with two tasks and some non-task
// traffic.
func diffFixture() *Capture {
	c := &Capture{}
	add := func(e Event, t float64) {
		e.header().K = e.Kind()
		e.header().Seq = int64(len(c.Events))
		e.header().T = t
		c.Events = append(c.Events, e)
	}
	meta := &Meta{Version: Version, NumPEs: 2, Seed: 1}
	add(meta, 0)
	add(&HandleDecl{Block: "blk_0", Bytes: 4096, Node: "HBM"}, 0)
	add(&Send{ID: 0, Arr: "a", Idx: 0, Entry: "run", PE: 0, From: -1}, 0)
	add(&Send{ID: 1, Arr: "a", Idx: 1, Entry: "run", PE: 1, From: -1}, 0)
	add(&FetchStart{Lane: 0, Block: "blk_0", Bytes: 4096}, 0.1)
	add(&Admit{ID: 0, PE: 0, Bytes: 4096, Staged: true}, 0.2)
	add(&RunStart{ID: 0, PE: 0}, 0.3)
	add(&RunEnd{ID: 0, PE: 0}, 0.4)
	add(&TaskDone{ID: 0}, 0.4)
	add(&Admit{ID: 1, PE: 1, Bytes: 4096, Staged: false}, 0.5)
	add(&RunStart{ID: 1, PE: 1}, 0.6)
	add(&RunEnd{ID: 1, PE: 1}, 0.7)
	add(&TaskDone{ID: 1}, 0.7)
	return c
}

func TestDiffIdentical(t *testing.T) {
	r := Diff(diffFixture(), diffFixture())
	if !r.Identical {
		t.Fatalf("identical captures reported as differing: %s", r)
	}
	if r.TasksA != 2 || r.TasksMatched != 2 {
		t.Fatalf("task accounting wrong: %+v", r)
	}
	if !strings.Contains(r.String(), "captures identical") {
		t.Fatalf("report: %s", r)
	}
}

func TestDiffTaskDivergence(t *testing.T) {
	a, b := diffFixture(), diffFixture()
	// Shift task 1's run-start: index 10 in the fixture.
	b.Events[10].header().T = 0.65
	r := Diff(a, b)
	if r.Identical {
		t.Fatal("divergent captures reported identical")
	}
	if r.DivergeIndex != 10 {
		t.Fatalf("first divergent event at %d, want 10", r.DivergeIndex)
	}
	if r.FirstTaskID != 1 || r.FirstTaskKind != "run-start" {
		t.Fatalf("first divergent task %d at %q, want 1 at run-start", r.FirstTaskID, r.FirstTaskKind)
	}
	if r.TasksMatched != 1 {
		t.Fatalf("matched %d tasks, want 1", r.TasksMatched)
	}
	rep := r.String()
	for _, want := range []string{"first divergent event at index 10", `id=1`, "run-start"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestDiffNonTaskDivergence(t *testing.T) {
	a, b := diffFixture(), diffFixture()
	// Perturb only the fetch event: tasks align, streams do not.
	b.Events[4].(*FetchStart).Bytes = 8192
	r := Diff(a, b)
	if r.Identical {
		t.Fatal("divergent captures reported identical")
	}
	if r.DivergeIndex != 4 {
		t.Fatalf("first divergent event at %d, want 4", r.DivergeIndex)
	}
	if r.FirstTaskID != -1 || r.TasksMatched != 2 {
		t.Fatalf("task layer should fully align: %+v", r)
	}
	if !strings.Contains(r.String(), "non-task events") {
		t.Fatalf("report: %s", r)
	}
}

func TestDiffMissingTask(t *testing.T) {
	a, b := diffFixture(), diffFixture()
	// Drop task 1's done event from b.
	b.Events = b.Events[:len(b.Events)-1]
	r := Diff(a, b)
	if r.Identical {
		t.Fatal("truncated capture reported identical")
	}
	if r.FirstTaskID != 1 || r.FirstTaskKind != "done" {
		t.Fatalf("first divergent task %d at %q, want 1 at done", r.FirstTaskID, r.FirstTaskKind)
	}
	if !strings.Contains(r.String(), "<missing>") {
		t.Fatalf("report should mark the missing side:\n%s", r)
	}
}
