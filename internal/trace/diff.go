package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Diff compares two captures for hmtrace diff. Two layers:
//
//   - Stream: the encoded event sequences are compared line by line,
//     and the first divergent event is named. This is the strictest
//     check — byte-identity of the full JSONL streams.
//
//   - Task alignment: task-scoped events (send, admit, run-start,
//     run-end, done) are grouped per task ID and compared task by
//     task, so a single reordered fetch early in a capture does not
//     obscure whether the schedules themselves agree. The first task
//     whose timeline differs is named along with the event kind that
//     diverges.
//
// The task layer is what makes the tool usable on near-miss captures:
// the stream index tells you where the files part ways, the task
// report tells you which unit of work first behaved differently.

// DiffResult is the comparison outcome; render it with String.
type DiffResult struct {
	AEvents, BEvents int
	Identical        bool

	// Stream layer: index of the first differing encoded event, with
	// both renderings ("" when one stream ended early). -1 when the
	// common prefix — and, if Identical, everything — matches.
	DivergeIndex       int
	DivergeA, DivergeB string

	// Task layer.
	TasksA, TasksB int
	TasksMatched   int
	// FirstTaskID is the lowest task ID whose timeline differs, -1 if
	// the task layers agree. FirstTaskKind is the event kind within
	// that task's timeline that first diverges.
	FirstTaskID            int64
	FirstTaskKind          string
	FirstTaskA, FirstTaskB string
}

// encodeLine renders one event exactly as it appears in the JSONL
// capture (fast path or reflective, identical bytes either way).
func encodeLine(e Event) string {
	e.header().K = e.Kind()
	if b, ok := appendEvent(nil, e); ok {
		return string(b)
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Sprintf("<unencodable %s: %v>", e.Kind(), err)
	}
	return string(b)
}

// taskKinds is the per-task timeline order used by the task layer.
var taskKinds = []string{"send", "admit", "run-start", "run-end", "done"}

// taskTimeline groups one task's events by kind, in stream order.
type taskTimeline map[string][]string

// taskID extracts the task ID from a task-scoped event, ok=false for
// every other kind.
func taskID(e Event) (int64, bool) {
	switch ev := e.(type) {
	case *Send:
		return ev.ID, true
	case *Admit:
		return ev.ID, true
	case *RunStart:
		return ev.ID, true
	case *RunEnd:
		return ev.ID, true
	case *TaskDone:
		return ev.ID, true
	}
	return 0, false
}

// taskIndex builds the per-task timelines of a capture.
func taskIndex(c *Capture) map[int64]taskTimeline {
	idx := make(map[int64]taskTimeline)
	for _, e := range c.Events {
		id, ok := taskID(e)
		if !ok {
			continue
		}
		tl := idx[id]
		if tl == nil {
			tl = make(taskTimeline)
			idx[id] = tl
		}
		tl[e.Kind()] = append(tl[e.Kind()], encodeLine(e))
	}
	return idx
}

// diffTimelines returns the first divergent kind and both renderings,
// ok=false when the timelines agree.
func diffTimelines(a, b taskTimeline) (kind, la, lb string, ok bool) {
	for _, k := range taskKinds {
		ea, eb := a[k], b[k]
		n := len(ea)
		if len(eb) > n {
			n = len(eb)
		}
		for i := 0; i < n; i++ {
			var va, vb string
			if i < len(ea) {
				va = ea[i]
			}
			if i < len(eb) {
				vb = eb[i]
			}
			if va != vb {
				return k, va, vb, true
			}
		}
	}
	return "", "", "", false
}

// Diff compares captures a and b.
func Diff(a, b *Capture) *DiffResult {
	r := &DiffResult{
		AEvents:      len(a.Events),
		BEvents:      len(b.Events),
		DivergeIndex: -1,
		FirstTaskID:  -1,
	}

	// Stream layer.
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		la, lb := encodeLine(a.Events[i]), encodeLine(b.Events[i])
		if la != lb {
			r.DivergeIndex, r.DivergeA, r.DivergeB = i, la, lb
			break
		}
	}
	if r.DivergeIndex == -1 && len(a.Events) != len(b.Events) {
		r.DivergeIndex = n
		if n < len(a.Events) {
			r.DivergeA = encodeLine(a.Events[n])
		}
		if n < len(b.Events) {
			r.DivergeB = encodeLine(b.Events[n])
		}
	}

	// Task layer.
	ta, tb := taskIndex(a), taskIndex(b)
	r.TasksA, r.TasksB = len(ta), len(tb)
	ids := make([]int64, 0, len(ta)+len(tb))
	for id := range ta {
		ids = append(ids, id)
	}
	for id := range tb {
		if _, dup := ta[id]; !dup {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		la, lb := ta[id], tb[id]
		if la == nil {
			la = taskTimeline{}
		}
		if lb == nil {
			lb = taskTimeline{}
		}
		kind, va, vb, diverged := diffTimelines(la, lb)
		if !diverged {
			r.TasksMatched++
			continue
		}
		if r.FirstTaskID == -1 {
			r.FirstTaskID, r.FirstTaskKind = id, kind
			r.FirstTaskA, r.FirstTaskB = va, vb
		}
	}

	r.Identical = r.DivergeIndex == -1 && r.FirstTaskID == -1
	return r
}

// String renders the diff report.
func (r *DiffResult) String() string {
	var b strings.Builder
	if r.Identical {
		fmt.Fprintf(&b, "captures identical: %d events, %d tasks\n", r.AEvents, r.TasksA)
		return b.String()
	}
	fmt.Fprintf(&b, "captures differ: a=%d events, b=%d events\n", r.AEvents, r.BEvents)
	if r.DivergeIndex >= 0 {
		fmt.Fprintf(&b, "first divergent event at index %d:\n", r.DivergeIndex)
		fmt.Fprintf(&b, "  a: %s\n  b: %s\n", orMissing(r.DivergeA), orMissing(r.DivergeB))
	}
	fmt.Fprintf(&b, "tasks: a=%d, b=%d, aligned=%d\n", r.TasksA, r.TasksB, r.TasksMatched)
	if r.FirstTaskID >= 0 {
		fmt.Fprintf(&b, "first divergent task id=%d (at its %q event):\n", r.FirstTaskID, r.FirstTaskKind)
		fmt.Fprintf(&b, "  a: %s\n  b: %s\n", orMissing(r.FirstTaskA), orMissing(r.FirstTaskB))
	} else {
		fmt.Fprint(&b, "task timelines agree; the divergence is in non-task events (fetch/evict/adapt/...)\n")
	}
	return b.String()
}

func orMissing(s string) string {
	if s == "" {
		return "<missing>"
	}
	return s
}
