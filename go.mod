module github.com/hetmem/hetmem

go 1.22
