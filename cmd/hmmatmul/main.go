// Command hmmatmul runs the blocked matrix multiplication benchmark
// under a chosen strategy, or the full Fig. 9 sweep.
//
// Usage:
//
//	hmmatmul -fig 9 [-scale full|small]       # strategy sweep (Fig 9)
//	hmmatmul -mode single -total 54           # one run, size in GB
//	hmmatmul -mode multi -total 24 -audit     # with invariant audit + JSON metrics
//	hmmatmul -mode multi -total 24 -adapt     # adaptive run with convergence trace
//	hmmatmul -mode multi -trace out.jsonl     # record the run for hmtrace
//	hmmatmul -mode multi -tiers 3             # run on a 3-tier HBM/DDR4/NVM chain
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem/internal/adapt"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/kernels"
	"github.com/hetmem/hetmem/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmmatmul: ")
	fig := flag.Int("fig", 0, "reproduce figure 9 (0 = single run)")
	scaleName := flag.String("scale", "full", "experiment scale: full or small")
	modeName := flag.String("mode", "multi", "strategy: ddr, naive, single, no, multi")
	total := flag.Int64("total", 24, "total working set in GB (A+B+C)")
	grid := flag.Int("grid", 16, "block grid side G")
	auditOn := flag.Bool("audit", false, "enable the invariant auditor and print a JSON metrics snapshot")
	adaptOn := flag.Bool("adapt", false, "attach the online adaptive controller and print its convergence trace")
	policyName := flag.String("evict-policy", "", "eviction victim policy for movement modes: decl, lru or lookahead")
	traceOut := flag.String("trace", "", "record the single run as a JSONL capture to this file (inspect with hmtrace)")
	tiers := flag.Int("tiers", 2, "memory chain depth for the single run: 2 (HBM/DDR4), 3 (+NVM) or 4 (+remote pool)")
	flag.Parse()

	scale := exp.Full
	if *scaleName == "small" {
		scale = exp.Small
	}
	var pol core.EvictPolicy
	if *policyName != "" {
		var err error
		if pol, err = core.ParseEvictPolicy(*policyName); err != nil {
			log.Fatal(err)
		}
		exp.SetEvictPolicy(pol)
	}
	if *fig == 9 {
		if *traceOut != "" {
			log.Fatal("-trace records a single run; it cannot be combined with -fig (drop -fig, pick -mode)")
		}
		r, err := exp.RunFig9(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Table())
		return
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := kernels.DefaultMatMulConfig()
	cfg.TotalBytes = *total << 30
	cfg.Grid = *grid
	opts := core.DefaultOptions(mode)
	opts.Audit = *auditOn
	opts.Metrics = *auditOn || *adaptOn
	if pol != nil && mode.Moves() {
		opts.EvictPolicy = pol
	}
	spec, err := exp.Full.TieredMachine(*tiers)
	if err != nil {
		log.Fatal(err)
	}
	env := kernels.NewEnv(kernels.EnvConfig{
		Spec:   spec,
		NumPEs: cfg.NumPEs,
		Opts:   opts,
		Trace:  *adaptOn,
	})
	defer env.Close()
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(env.MG)
		rec.Attach()
	}
	app, err := kernels.NewMatMul(env.MG, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var ctl *adapt.Controller
	if *adaptOn {
		// MatMul has no iteration barriers: sample completion windows.
		ctl, err = adapt.New(env.MG, adapt.Config{SampleEvery: 2 * cfg.NumPEs})
		if err != nil {
			log.Fatal(err)
		}
		ctl.Attach()
		if rec != nil {
			rec.AttachController(ctl)
		}
	}
	t, err := app.Run()
	if err != nil {
		log.Fatal(err)
	}
	st := env.MG.Stats
	fmt.Printf("MatMul %s: %d GB total, %dx%d blocks, N=%.0f\n", mode, *total, *grid, *grid, cfg.N())
	fmt.Printf("  total time %8.3f s\n", t)
	fmt.Printf("  fetches    %8d (%.1f GB)\n", st.Fetches, float64(st.BytesFetched)/float64(1<<30))
	fmt.Printf("  evictions  %8d (%.1f GB)\n", st.Evictions, float64(st.BytesEvicted)/float64(1<<30))
	if ctl != nil {
		fmt.Printf("adaptive controller (settled window %d):\n%s", ctl.ConvergedWindow(), ctl.TraceString())
	}
	if rec != nil {
		if err := rec.Capture().WriteFile(*traceOut); err != nil {
			log.Fatalf("write trace: %v", err)
		}
		fmt.Printf("trace: %d events written to %s\n", len(rec.Capture().Events), *traceOut)
	}
	if snap, ok := env.MG.AuditSnapshot(); ok {
		snap.Label = fmt.Sprintf("matmul %s %dGB", mode, *total)
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			log.Fatalf("marshal audit snapshot: %v", err)
		}
		fmt.Printf("audit: %s\n", out)
		if snap.ViolationCount > 0 {
			log.Fatalf("audit: %d invariant violation(s) detected", snap.ViolationCount)
		}
	}
}

func parseMode(name string) (core.Mode, error) {
	switch name {
	case "ddr":
		return core.DDROnly, nil
	case "naive":
		return core.Baseline, nil
	case "single":
		return core.SingleIO, nil
	case "no":
		return core.NoIO, nil
	case "multi":
		return core.MultiIO, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}
