// Command hetmemd serves the heterogeneous-memory runtime as a
// multi-tenant daemon: an HTTP/JSON API over internal/serve, accepting
// workload submissions (stencil / matmul / shift with per-session
// strategy knobs), enforcing per-tenant HBM budgets through admission
// control, and sharing the IO staging fabric with weighted-fair lanes.
//
// The service clock is virtual: a background loop steps the session
// schedulers whenever work is active and parks when idle, so a daemon
// with no running sessions burns no CPU and scheduling decisions never
// read the wall clock (responses are deterministic for a fixed
// submission sequence).
//
//	hetmemd -addr 127.0.0.1:8080 -scale small \
//	    -tenant acme:512MB:2 -tenant beta:512MB:1 -capture-dir traces/
//
// Endpoints:
//
//	GET    /healthz                    liveness + drain state
//	GET    /v1/stats                   aggregate + per-tenant stats
//	POST   /v1/sessions                submit a workload (JSON body)
//	GET    /v1/sessions                list sessions
//	GET    /v1/sessions/{id}           one session's record
//	DELETE /v1/sessions/{id}           cancel (queued or running)
//	GET    /v1/sessions/{id}/metrics   audit.Metrics snapshot
//	GET    /v1/sessions/{id}/trace     finished session's capture (JSONL)
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, queued
// sessions are canceled, running sessions finish, and every traced
// session's capture is flushed (with its stats footer) to -capture-dir.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"github.com/hetmem/hetmem/internal/exp"
	"github.com/hetmem/hetmem/internal/serve"
	"github.com/hetmem/hetmem/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// tenantFlags accumulates repeated -tenant name:budget[:weight] flags.
type tenantFlags []serve.TenantConfig

func (t *tenantFlags) String() string {
	var parts []string
	for _, tc := range *t {
		parts = append(parts, fmt.Sprintf("%s:%d:%d", tc.Name, tc.Budget, tc.Weight))
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(v string) error {
	tc, err := parseTenant(v)
	if err != nil {
		return err
	}
	*t = append(*t, tc)
	return nil
}

// parseTenant parses "name:budget[:weight]", budget with an optional
// KB/MB/GB suffix.
func parseTenant(v string) (serve.TenantConfig, error) {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
		return serve.TenantConfig{}, fmt.Errorf("tenant %q: want name:budget[:weight]", v)
	}
	budget, err := parseBytes(parts[1])
	if err != nil {
		return serve.TenantConfig{}, fmt.Errorf("tenant %q: %w", v, err)
	}
	tc := serve.TenantConfig{Name: parts[0], Budget: budget, Weight: 1}
	if len(parts) == 3 {
		w, err := strconv.Atoi(parts[2])
		if err != nil || w <= 0 {
			return serve.TenantConfig{}, fmt.Errorf("tenant %q: bad weight %q", v, parts[2])
		}
		tc.Weight = w
	}
	return tc, nil
}

// parseBytes parses a byte count with an optional KB/MB/GB suffix.
func parseBytes(v string) (int64, error) {
	s := strings.ToUpper(strings.TrimSpace(v))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}} {
		if strings.HasSuffix(s, u.suffix) {
			s, mult = strings.TrimSuffix(s, u.suffix), u.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad byte count %q", v)
	}
	return n * mult, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hetmemd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		scaleName  = fs.String("scale", "full", "machine scale: full (64-PE KNL) or small (1/8 slice)")
		window     = fs.Float64("window", 5e-3, "scheduling window in virtual seconds")
		lanes      = fs.Int("lanes", 8, "IO staging lanes shared across sessions")
		fair       = fs.Bool("fair", true, "weighted-fair per-tenant IO sharing (false: per-session free-for-all)")
		auditOn    = fs.Bool("audit", false, "attach the invariant auditor to every session")
		queue      = fs.Int("queue", 64, "admission queue capacity")
		seed       = fs.Int64("seed", 1, "base engine seed (session i runs with seed+i)")
		defBudget  = fs.String("default-budget", "", "HBM budget for unregistered tenants (e.g. 512MB); default: a quarter of the machine")
		captureDir = fs.String("capture-dir", "", "directory for trace captures flushed at drain")
		tenants    tenantFlags
	)
	fs.Var(&tenants, "tenant", "pre-register a tenant as name:budget[:weight] (budget like 4GB); repeatable")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg, err := buildConfig(*scaleName, *window, *lanes, *fair, *auditOn, *queue, *seed, *defBudget, tenants)
	if err != nil {
		fmt.Fprintf(stderr, "hetmemd: %v\n", err)
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "hetmemd: %v\n", err)
		return 1
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	return runDaemon(cfg, ln, *captureDir, sigCh, stdout, stderr)
}

// buildConfig assembles the serve.Config from the flag values.
func buildConfig(scaleName string, window float64, lanes int, fair, auditOn bool,
	queue int, seed int64, defBudget string, tenants []serve.TenantConfig) (serve.Config, error) {
	var scale exp.Scale
	switch scaleName {
	case "full":
		scale = exp.Full
	case "small":
		scale = exp.Small
	default:
		return serve.Config{}, fmt.Errorf("unknown scale %q (want full or small)", scaleName)
	}
	cfg := serve.Config{
		Spec:     scale.Machine(),
		NumPEs:   scale.NumPEs(),
		Reserve:  scale.HBMReserve(),
		Window:   sim.Time(window),
		Lanes:    lanes,
		Fair:     fair,
		Audit:    auditOn,
		MaxQueue: queue,
		BaseSeed: seed,
		Tenants:  tenants,
	}
	if defBudget != "" {
		b, err := parseBytes(defBudget)
		if err != nil {
			return serve.Config{}, fmt.Errorf("default-budget: %w", err)
		}
		cfg.DefaultBudget = b
	}
	return cfg, nil
}

// runDaemon serves on ln until a signal arrives, then drains, flushes
// captures and shuts the listener down. Split from run so tests can
// inject the listener and the signal channel.
func runDaemon(cfg serve.Config, ln net.Listener, captureDir string,
	sigCh <-chan os.Signal, stdout, stderr io.Writer) int {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "hetmemd: %v\n", err)
		ln.Close()
		return 2
	}
	loopDone := make(chan struct{})
	go func() { srv.Loop(); close(loopDone) }()

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "hetmemd: listening on %s (scale machine HBM %d bytes, %d tenants pre-registered)\n",
		ln.Addr(), cfg.Spec.HBMCap, len(cfg.Tenants))

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "hetmemd: serve: %v\n", err)
		srv.Close()
		<-loopDone
		return 1
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "hetmemd: %v: draining (new submissions get 503, running sessions finish)\n", sig)
	}

	sessions := srv.Drain()
	var done, canceled, failed int
	for _, s := range sessions {
		switch s.State {
		case serve.Done:
			done++
		case serve.Canceled:
			canceled++
		case serve.Failed:
			failed++
		}
	}
	fmt.Fprintf(stdout, "hetmemd: drained: %d done, %d canceled, %d failed\n", done, canceled, failed)
	if captureDir != "" {
		if err := writeCaptures(captureDir, sessions, stdout); err != nil {
			fmt.Fprintf(stderr, "hetmemd: %v\n", err)
			httpSrv.Shutdown(context.Background())
			srv.Close()
			<-loopDone
			return 1
		}
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(stderr, "hetmemd: shutdown: %v\n", err)
	}
	<-serveErr // Serve has returned ErrServerClosed
	srv.Close()
	<-loopDone
	return 0
}

// writeCaptures flushes every traced session's capture (already
// finished by Drain, so each carries its stats footer) to dir.
func writeCaptures(dir string, sessions []*serve.Session, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for _, s := range sessions {
		cap := s.TraceCapture()
		if cap == nil {
			continue
		}
		path := filepath.Join(dir, s.ID+".jsonl")
		if err := cap.WriteFile(path); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		n++
	}
	fmt.Fprintf(stdout, "hetmemd: flushed %d trace capture(s) to %s\n", n, dir)
	return nil
}
