package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"github.com/hetmem/hetmem/internal/serve"
	"github.com/hetmem/hetmem/internal/sim"
	"github.com/hetmem/hetmem/internal/trace"
)

func TestParseTenant(t *testing.T) {
	cases := []struct {
		in   string
		want serve.TenantConfig
		err  bool
	}{
		{in: "acme:512MB:2", want: serve.TenantConfig{Name: "acme", Budget: 512 << 20, Weight: 2}},
		{in: "beta:1GB", want: serve.TenantConfig{Name: "beta", Budget: 1 << 30, Weight: 1}},
		{in: "c:1024", want: serve.TenantConfig{Name: "c", Budget: 1024, Weight: 1}},
		{in: "d:64KB:1", want: serve.TenantConfig{Name: "d", Budget: 64 << 10, Weight: 1}},
		{in: "noBudget", err: true},
		{in: ":1GB", err: true},
		{in: "w:1GB:0", err: true},
		{in: "w:1GB:x", err: true},
		{in: "w:-5", err: true},
		{in: "a:b:c:d", err: true},
	}
	for _, c := range cases {
		got, err := parseTenant(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseTenant(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseTenant(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseTenant(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("small", 5e-3, 8, true, true, 16, 7, "256MB",
		[]serve.TenantConfig{{Name: "a", Budget: 1 << 30, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumPEs != 8 || cfg.Spec.HBMCap != 2<<30 {
		t.Fatalf("small scale config = %+v", cfg)
	}
	if cfg.DefaultBudget != 256<<20 || cfg.BaseSeed != 7 || !cfg.Audit {
		t.Fatalf("flag passthrough lost: %+v", cfg)
	}
	if cfg.Window != sim.Time(5e-3) {
		t.Fatalf("window = %v", cfg.Window)
	}
	if _, err := buildConfig("medium", 5e-3, 8, true, false, 16, 1, "", nil); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if _, err := buildConfig("small", 5e-3, 8, true, false, 16, 1, "zap", nil); err == nil {
		t.Fatal("bad default budget accepted")
	}
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port, submits a
// traced session over HTTP, waits for completion, then delivers the
// shutdown signal and checks the drain: exit 0, capture flushed to the
// capture dir with a stats footer.
func TestDaemonEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg, err := buildConfig("small", 5e-3, 8, true, false, 16, 1, "",
		[]serve.TenantConfig{{Name: "acme", Budget: 512 << 20, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sigCh := make(chan os.Signal, 1)
	var stdout, stderr bytes.Buffer
	exited := make(chan int, 1)
	go func() { exited <- runDaemon(cfg, ln, dir, sigCh, &stdout, &stderr) }()

	base := "http://" + ln.Addr().String()
	body := strings.NewReader(`{"tenant":"acme","kernel":"stencil","bytes":536870912,"reduced":134217728,"footprint":201326592,"iterations":2,"sweeps":4,"trace":true}`)
	resp, err := http.Post(base+"/v1/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sess.ID == "" {
		t.Fatalf("submit = %d %+v", resp.StatusCode, sess)
	}

	// Poll until the loop finishes the session.
	for tries := 0; ; tries++ {
		resp, err := http.Get(base + "/v1/sessions/" + sess.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.State == "done" {
			break
		}
		if got.State == "failed" || got.State == "canceled" {
			t.Fatalf("session ended %s: %s", got.State, got.Error)
		}
		if tries > 20000 {
			t.Fatalf("session stuck in %s", got.State)
		}
	}

	sigCh <- syscall.SIGTERM
	if code := <-exited; code != 0 {
		t.Fatalf("daemon exit = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "drained: 1 done") {
		t.Fatalf("drain summary missing:\n%s", stdout.String())
	}

	// The capture landed in the capture dir with a stats footer.
	path := filepath.Join(dir, sess.ID+".jsonl")
	cap, err := trace.DecodeFile(path)
	if err != nil {
		t.Fatalf("flushed capture: %v", err)
	}
	if cap.Meta() == nil || cap.Meta().Session != sess.ID || cap.Meta().Tenant != "acme" {
		t.Fatalf("capture meta = %+v", cap.Meta())
	}
	if cap.Stats() == nil || cap.Stats().Tasks == 0 {
		t.Fatal("flushed capture missing stats footer")
	}
}
