// hmlint is the multichecker driver for the domain-specific analyzer
// suite in internal/lint: it mechanically enforces the staging
// protocol's lock discipline (locksafe), the declared-dependence access
// modes of the kernel API (handleaccess), the determinism rules behind
// the byte-identical experiment tables (determinism), the
// Options/Validate lifecycle (optionsmut) and audit.Metrics attribution
// (metricsattr).
//
// Usage:
//
//	hmlint [-checks determinism,locksafe] [-list] [packages]
//
// With no package patterns it analyses ./... in the current directory.
// Exit status: 0 when clean, 1 when any finding is reported, 2 on
// loader/usage errors. Findings print as
//
//	file:line:col: message [analyzer]
//
// and can be suppressed at the site with an inline justification:
//
//	//hmlint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hetmem/hetmem/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("dir", ".", "directory to resolve package patterns in")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hmlint [-checks a,b] [-list] [-dir d] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	analyzers, ok := lint.ByName(names)
	if !ok {
		fmt.Fprintf(os.Stderr, "hmlint: unknown analyzer in -checks %q\n", *checks)
		os.Exit(2)
	}

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
