// hmlint is the multichecker driver for the domain-specific analyzer
// suite in internal/lint: it mechanically enforces the staging
// protocol's lock discipline (locksafe), the declared-dependence access
// modes of the kernel API (handleaccess), the determinism rules behind
// the byte-identical experiment tables (determinism), the
// Options/Validate lifecycle (optionsmut), audit.Metrics attribution
// (metricsattr), and the interprocedural invariants added with the
// facts layer: lock-order acyclicity (lockorder), condvar wait shape
// (waitloop), goroutine lifecycles (goroleak), tier-chain addressing
// (tierchain), fast-encoder field coverage (encodeparity) and
// snapshot-accessor copying (snapshotalias).
//
// Usage:
//
//	hmlint [-checks determinism,locksafe] [-json] [-list] [packages]
//
// With no package patterns it analyses ./... in the current directory.
// Exit status: 0 when clean, 1 when any finding is reported, 2 on
// loader/usage errors. Findings print as
//
//	file:line:col: message [analyzer]
//
// or, with -json, as a JSON array of {file, line, col, message,
// analyzer} objects (in that key order, matching the struct
// declaration) for CI artifact consumption. Findings can be suppressed
// at the site with an inline justification:
//
//	//hmlint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hetmem/hetmem/internal/lint"
)

// jsonFinding is the -json wire shape of one finding. encoding/json
// emits object keys in struct declaration order, so the artifact
// format is stable by construction.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("dir", ".", "directory to resolve package patterns in")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hmlint [-checks a,b] [-json] [-list] [-dir d] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	analyzers, ok := lint.ByName(names)
	if !ok {
		fmt.Fprintf(os.Stderr, "hmlint: unknown analyzer in -checks %q\n", *checks)
		os.Exit(2)
	}

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		// Always an array — an empty tree yields [], not null, so
		// artifact consumers can parse unconditionally.
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
				Analyzer: d.Analyzer,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "hmlint: encoding findings: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
