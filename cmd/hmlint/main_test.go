package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEnd builds the hmlint binary, points it at a throwaway
// module seeded with a determinism violation, and asserts the contract
// the CI gate relies on: exit 1 naming the analyzer on a dirty tree,
// exit 0 once the tree is clean, exit 2 on usage errors.
func TestEndToEnd(t *testing.T) {
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "hmlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building hmlint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "victim")
	writeFile(t, filepath.Join(mod, "go.mod"), "module example.com/victim\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "internal", "exp", "exp.go"), `package exp

import "time"

// Stamp leaks the wall clock into a would-be table row.
func Stamp() time.Time { return time.Now() }
`)

	out, code := runLint(t, bin, "-dir", mod, "./...")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "[determinism]") || !strings.Contains(out, "time.Now") {
		t.Fatalf("dirty module: finding must name the analyzer and the call:\n%s", out)
	}

	writeFile(t, filepath.Join(mod, "internal", "exp", "exp.go"), `package exp

// Stamp is determinism-clean.
func Stamp() int64 { return 42 }
`)
	out, code = runLint(t, bin, "-dir", mod, "./...")
	if code != 0 {
		t.Fatalf("clean module: exit %d, want 0\noutput:\n%s", code, out)
	}

	if _, code = runLint(t, bin, "-checks", "nosuchanalyzer", "-dir", mod, "./..."); code != 2 {
		t.Fatalf("unknown -checks: exit %d, want 2", code)
	}

	out, code = runLint(t, bin, "-list")
	if code != 0 || !strings.Contains(out, "determinism") || !strings.Contains(out, "locksafe") {
		t.Fatalf("-list: exit %d, output:\n%s", code, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runLint(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	return "", -1
}
