package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEnd builds the hmlint binary, points it at a throwaway
// module seeded with a determinism violation, and asserts the contract
// the CI gate relies on: exit 1 naming the analyzer on a dirty tree,
// exit 0 once the tree is clean, exit 2 on usage errors.
func TestEndToEnd(t *testing.T) {
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "hmlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building hmlint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "victim")
	writeFile(t, filepath.Join(mod, "go.mod"), "module example.com/victim\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "internal", "exp", "exp.go"), `package exp

import "time"

// Stamp leaks the wall clock into a would-be table row.
func Stamp() time.Time { return time.Now() }
`)

	out, code := runLint(t, bin, "-dir", mod, "./...")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "[determinism]") || !strings.Contains(out, "time.Now") {
		t.Fatalf("dirty module: finding must name the analyzer and the call:\n%s", out)
	}

	writeFile(t, filepath.Join(mod, "internal", "exp", "exp.go"), `package exp

// Stamp is determinism-clean.
func Stamp() int64 { return 42 }
`)
	out, code = runLint(t, bin, "-dir", mod, "./...")
	if code != 0 {
		t.Fatalf("clean module: exit %d, want 0\noutput:\n%s", code, out)
	}

	if _, code = runLint(t, bin, "-checks", "nosuchanalyzer", "-dir", mod, "./..."); code != 2 {
		t.Fatalf("unknown -checks: exit %d, want 2", code)
	}

	out, code = runLint(t, bin, "-list")
	if code != 0 || !strings.Contains(out, "determinism") || !strings.Contains(out, "locksafe") {
		t.Fatalf("-list: exit %d, output:\n%s", code, out)
	}
}

// buildLint builds the hmlint binary once per temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hmlint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building hmlint: %v\n%s", err, out)
	}
	return bin
}

// TestDeadlockEndToEnd drives the interprocedural suite through the
// binary: a throwaway module whose two mutexes are acquired in
// conflicting order must exit 1 with a lockorder finding, exit 0 once
// the order is fixed, and exit 2 when the module does not load.
func TestDeadlockEndToEnd(t *testing.T) {
	bin := buildLint(t)
	mod := filepath.Join(t.TempDir(), "deadlock")
	writeFile(t, filepath.Join(mod, "go.mod"), "module example.com/deadlock\n\ngo 1.22\n")
	src := filepath.Join(mod, "internal", "svc", "svc.go")
	writeFile(t, src, `package svc

import "sync"

type Server struct {
	mu sync.Mutex
}

type Pool struct {
	mu sync.Mutex
}

var (
	srv  Server
	pool Pool
)

func ServerFirst() {
	srv.mu.Lock()
	pool.mu.Lock()
	pool.mu.Unlock()
	srv.mu.Unlock()
}

func PoolFirst() {
	pool.mu.Lock()
	srv.mu.Lock()
	srv.mu.Unlock()
	pool.mu.Unlock()
}
`)

	out, code := runLint(t, bin, "-dir", mod, "./...")
	if code != 1 {
		t.Fatalf("deadlocking module: exit %d, want 1\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "[lockorder]") ||
		!strings.Contains(out, "svc.Server.mu") || !strings.Contains(out, "svc.Pool.mu") {
		t.Fatalf("finding must name lockorder and both lock classes:\n%s", out)
	}
	if strings.Count(out, "[lockorder]") != 1 {
		t.Fatalf("the cycle must be reported exactly once:\n%s", out)
	}

	// Consistent order: no cycle.
	writeFile(t, src, `package svc

import "sync"

type Server struct {
	mu sync.Mutex
}

type Pool struct {
	mu sync.Mutex
}

var (
	srv  Server
	pool Pool
)

func ServerFirst() {
	srv.mu.Lock()
	pool.mu.Lock()
	pool.mu.Unlock()
	srv.mu.Unlock()
}

func AlsoServerFirst() {
	srv.mu.Lock()
	pool.mu.Lock()
	pool.mu.Unlock()
	srv.mu.Unlock()
}
`)
	if out, code := runLint(t, bin, "-dir", mod, "./..."); code != 0 {
		t.Fatalf("consistent-order module: exit %d, want 0\noutput:\n%s", code, out)
	}

	// Unparseable module: loader error.
	writeFile(t, src, "package svc\n\nfunc broken( {\n")
	if _, code := runLint(t, bin, "-dir", mod, "./..."); code != 2 {
		t.Fatalf("broken module: exit %d, want 2", code)
	}
}

// TestRootAndDependencyDedup loads a package both ways — named
// directly as a root pattern and reached as a dependency of another
// root — and asserts its finding prints exactly once. The loader
// skips re-checking, and Run deduplicates identical diagnostics.
func TestRootAndDependencyDedup(t *testing.T) {
	bin := buildLint(t)
	mod := filepath.Join(t.TempDir(), "dedup")
	writeFile(t, filepath.Join(mod, "go.mod"), "module example.com/dedup\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "internal", "clock", "clock.go"), `package clock

import "time"

func Stamp() time.Time { return time.Now() }
`)
	writeFile(t, filepath.Join(mod, "internal", "uses", "uses.go"), `package uses

import "example.com/dedup/internal/clock"

func Both() int64 { return clock.Stamp().Unix() }
`)

	out, code := runLint(t, bin, "-dir", mod, "./internal/clock", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\noutput:\n%s", code, out)
	}
	if got := strings.Count(out, "[determinism]"); got != 1 {
		t.Fatalf("clock's finding must print exactly once when the package is both root and dependency, got %d lines:\n%s", got, out)
	}
}

// TestJSONOutput checks the -json artifact mode: a JSON array with
// stable keys, [] on a clean tree, same exit codes as text mode.
func TestJSONOutput(t *testing.T) {
	bin := buildLint(t)
	mod := filepath.Join(t.TempDir(), "jsonmode")
	writeFile(t, filepath.Join(mod, "go.mod"), "module example.com/jsonmode\n\ngo 1.22\n")
	src := filepath.Join(mod, "internal", "exp", "exp.go")
	writeFile(t, src, `package exp

import "time"

func Stamp() time.Time { return time.Now() }
`)

	out, code := runLint(t, bin, "-json", "-dir", mod, "./...")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\noutput:\n%s", code, out)
	}
	// The stderr summary trails the JSON; decode the array prefix.
	body := out[:strings.LastIndex(out, "]")+1]
	var findings []map[string]interface{}
	if err := json.Unmarshal([]byte(body), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatalf("-json lost the findings:\n%s", out)
	}
	for _, k := range []string{"file", "line", "col", "message", "analyzer"} {
		if _, ok := findings[0][k]; !ok {
			t.Fatalf("finding object missing key %q: %v", k, findings[0])
		}
	}
	if findings[0]["analyzer"] != "determinism" {
		t.Fatalf("analyzer = %v, want determinism", findings[0]["analyzer"])
	}
	// Keys must appear in declaration order for byte-stable artifacts.
	if i, j := strings.Index(body, `"file"`), strings.Index(body, `"analyzer"`); i < 0 || j < i {
		t.Fatalf("JSON keys not in declaration order:\n%s", body)
	}

	writeFile(t, src, "package exp\n\nfunc Stamp() int64 { return 42 }\n")
	out, code = runLint(t, bin, "-json", "-dir", mod, "./...")
	if code != 0 {
		t.Fatalf("clean module: exit %d, want 0\noutput:\n%s", code, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Fatalf("clean -json output = %q, want []", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runLint(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	return "", -1
}
