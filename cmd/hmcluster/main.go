// Command hmcluster runs the distributed Stencil3D across a simulated
// multi-node cluster (extension X8): per-node working sets with halo
// exchange over a contended fabric.
//
// Usage:
//
//	hmcluster [-nodes 4] [-mode multi] [-scale full|small] [-audit]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem/internal/cluster"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmcluster: ")
	nodes := flag.Int("nodes", 4, "cluster size")
	modeName := flag.String("mode", "multi", "strategy: naive, single, no, multi")
	scaleName := flag.String("scale", "full", "experiment scale: full or small")
	sweep := flag.Bool("sweep", false, "run the full X8 weak-scaling sweep instead of one configuration")
	auditOn := flag.Bool("audit", false, "enable the invariant auditor on every node and print per-node JSON metrics")
	flag.Parse()

	scale := exp.Full
	if *scaleName == "small" {
		scale = exp.Small
	}
	if *auditOn {
		exp.SetAudit(true) // RunCluster and the single-run path both honour it
	}
	if *sweep {
		r, err := exp.RunCluster(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Table())
		return
	}

	var mode core.Mode
	switch *modeName {
	case "naive":
		mode = core.Baseline
	case "single":
		mode = core.SingleIO
	case "no":
		mode = core.NoIO
	case "multi":
		mode = core.MultiIO
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}
	perNode := scale.StencilConfig(scale.StencilReducedSizes()[1])
	opts := core.DefaultOptions(mode)
	opts.HBMReserve = scale.HBMReserve()
	opts.Audit = *auditOn
	c, err := cluster.New(cluster.Config{
		Nodes:  *nodes,
		Spec:   scale.Machine(),
		NumPEs: scale.NumPEs(),
		Opts:   opts,
		Net:    cluster.DefaultNetwork(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	res, err := cluster.RunStencil(c, cluster.StencilConfig{PerNode: perNode, Nodes: *nodes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed Stencil3D, %d nodes x %d PEs, %s\n", *nodes, scale.NumPEs(), mode)
	fmt.Printf("  total %8.3f s   avg iteration %.3f s\n", res.Total, res.AvgIter)
	fmt.Printf("  halo traffic %.2f GB in %d messages\n", res.NetBytes/float64(1<<30), res.NetMessages)
	if *auditOn {
		var violations int64
		for i, nd := range c.Nodes {
			nd.MG.Auditor().CheckQuiescent()
			snap, ok := nd.MG.AuditSnapshot()
			if !ok {
				continue
			}
			snap.Label = fmt.Sprintf("node %d", i)
			out, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				log.Fatalf("marshal audit snapshot: %v", err)
			}
			fmt.Printf("audit[node %d]: %s\n", i, out)
			violations += snap.ViolationCount
		}
		if violations > 0 {
			log.Fatalf("audit: %d invariant violation(s) detected", violations)
		}
	}
}
