// Command hmcluster runs the distributed Stencil3D across a simulated
// multi-node cluster (extension X8): per-node working sets with halo
// exchange over a contended fabric.
//
// Usage:
//
//	hmcluster [-nodes 4] [-mode multi] [-scale full|small]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/hetmem/hetmem/internal/cluster"
	"github.com/hetmem/hetmem/internal/core"
	"github.com/hetmem/hetmem/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hmcluster: ")
	nodes := flag.Int("nodes", 4, "cluster size")
	modeName := flag.String("mode", "multi", "strategy: naive, single, no, multi")
	scaleName := flag.String("scale", "full", "experiment scale: full or small")
	sweep := flag.Bool("sweep", false, "run the full X8 weak-scaling sweep instead of one configuration")
	flag.Parse()

	scale := exp.Full
	if *scaleName == "small" {
		scale = exp.Small
	}
	if *sweep {
		r, err := exp.RunCluster(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Table())
		return
	}

	var mode core.Mode
	switch *modeName {
	case "naive":
		mode = core.Baseline
	case "single":
		mode = core.SingleIO
	case "no":
		mode = core.NoIO
	case "multi":
		mode = core.MultiIO
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}
	perNode := scale.StencilConfig(scale.StencilReducedSizes()[1])
	opts := core.DefaultOptions(mode)
	opts.HBMReserve = scale.HBMReserve()
	c, err := cluster.New(cluster.Config{
		Nodes:  *nodes,
		Spec:   scale.Machine(),
		NumPEs: scale.NumPEs(),
		Opts:   opts,
		Net:    cluster.DefaultNetwork(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	res, err := cluster.RunStencil(c, cluster.StencilConfig{PerNode: perNode, Nodes: *nodes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed Stencil3D, %d nodes x %d PEs, %s\n", *nodes, scale.NumPEs(), mode)
	fmt.Printf("  total %8.3f s   avg iteration %.3f s\n", res.Total, res.AvgIter)
	fmt.Printf("  halo traffic %.2f GB in %d messages\n", res.NetBytes/float64(1<<30), res.NetMessages)
}
